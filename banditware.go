// Package banditware is an online hardware-recommendation library: the
// open-source reproduction of "BanditWare: A Contextual Bandit-based
// Framework for Hardware Prediction" (Coleman et al., HPDC 2025).
//
// BanditWare chooses the best-fitting hardware configuration for each
// incoming workflow using a decaying contextual ε-greedy multi-armed
// bandit (the paper's Algorithm 1). It assumes workflow runtime on
// hardware H_i is linear in the workflow's feature vector x,
//
//	R(H_i, x) = wᵢᵀx + bᵢ,
//
// learns the per-hardware coefficients online from observed runtimes, and
// balances exploration against exploitation with an exploration rate ε
// that decays by a factor α after every observation. Its exploitation
// step is tolerant: among all hardware whose predicted runtime is within
//
//	(1 + ToleranceRatio)·R̂_fastest + ToleranceSeconds
//
// it picks the most resource-efficient configuration, trading a bounded
// slowdown for smaller allocations.
//
// # Quick start
//
//	hw := banditware.HardwareSet{
//		{Name: "H0", CPUs: 2, MemoryGB: 16},
//		{Name: "H1", CPUs: 3, MemoryGB: 24},
//		{Name: "H2", CPUs: 4, MemoryGB: 16},
//	}
//	rec, err := banditware.New(hw, 1, banditware.Options{})
//	// per workflow:
//	d, _ := rec.Recommend([]float64{numTasks})
//	runtime := runWorkflow(hw[d.Arm])      // schedule it, measure it
//	_ = rec.Observe(d.Arm, []float64{numTasks}, runtime)
//
// Recommender is single-stream and not concurrency-safe. For serving —
// many applications, concurrent requests, recommendations issued long
// before their runtimes are observed — use Service: a sharded registry
// of named recommender streams with decision tickets, batch operations,
// whole-service snapshots, and an HTTP front-end (ServiceHandler,
// mounted by `banditware serve`; docs/API.md is the route reference).
// SafeRecommender remains as the lock-guarded single-stream shim.
//
// # Policy selection
//
// Streams are policy-agnostic: StreamConfig.Policy picks the decision
// policy per stream — the paper's Algorithm 1 by default, or LinUCB,
// linear Thompson sampling, fixed ε-greedy, greedy, softmax, and a
// uniform-random baseline (the paper's "more complex contextual bandit
// algorithms" future-work axis), all persisted through the same
// versioned snapshots:
//
//	_ = svc.CreateStream("matmul", banditware.StreamConfig{
//		Hardware: hw, Dim: 1,
//		Policy:   banditware.PolicySpec{Type: banditware.PolicyLinUCB, Beta: 1.5},
//	})
//
// A stream can additionally carry shadow policies (Service.AttachShadow)
// that see all traffic but never serve, accumulating agreement and
// regret counters — live A/B evaluation of a candidate policy before
// switching a stream over.
//
// # Feature schemas
//
// Positional feature vectors make the feature layout an implicit
// contract: a caller who reorders or mis-scales one feature silently
// corrupts every per-arm model. A stream can instead declare a Schema —
// ordered named fields, numeric (bounds, defaults, online min-max or
// z-score normalization) or categorical (one-hot) — and serve named
// contexts:
//
//	_ = svc.CreateStream("bp3d", banditware.StreamConfig{
//		Hardware: hw,
//		Schema: &banditware.Schema{Fields: []banditware.Field{
//			{Name: "num_tasks", Required: true},
//			{Name: "site", Kind: banditware.KindCategorical,
//				Categories: []string{"expanse", "nautilus"}},
//		}},
//	})
//	t, err := svc.RecommendCtx("bp3d", banditware.Context{
//		Numeric:     map[string]float64{"num_tasks": 200},
//		Categorical: map[string]string{"site": "expanse"},
//	})
//
// Malformed contexts fail with per-field errors wrapping
// ErrSchemaViolation (HTTP: 422 with a "fields" list), and schemas —
// including live normalization statistics — persist in service
// snapshots. Raw-vector calls keep working on every stream.
//
// # Structured outcomes and rewards
//
// The paper's goal is not the fastest hardware but hardware that is
// sufficiently good while wasting fewer resources. A stream can
// therefore learn from more than a bare runtime: observations are
// Outcomes (runtime plus optional success/failure and named metrics),
// and StreamConfig.Reward selects how an Outcome plus the chosen arm's
// hardware collapses to the scalar the engine learns from — runtime
// (the default), cost_weighted (runtime + λ·Cost(hw)), deadline
// (graded SLO penalty), or failure_penalty:
//
//	_ = svc.CreateStream("batch", banditware.StreamConfig{
//		Hardware: hw, Dim: 1,
//		Reward:   banditware.RewardSpec{Type: banditware.RewardCostWeighted, Lambda: 0.5},
//	})
//	t, _ := svc.Recommend("batch", []float64{200})
//	_ = svc.ObserveOutcome(t.ID, banditware.Outcome{
//		Runtime: 61.7,
//		Metrics: map[string]float64{"memory_gb": 3.2},
//	})
//
// Malformed outcomes (negative runtime, unknown metric) fail with
// ErrBadOutcome before the ticket is redeemed (HTTP: 422), scalar
// Observe calls map to the default Outcome, and per-stream reward and
// runtime totals surface in StreamInfo and /v1/stats so reward regimes
// can be compared live — including via shadows carrying their own
// RewardSpec.
//
// The internal packages implement every substrate the paper's evaluation
// needs (dataframes, linear algebra, workload generators, a cluster
// simulator, the experiment harness, the serving layer); see DESIGN.md
// for the inventory and cmd/bwbench for the per-figure reproduction
// runners.
package banditware

import (
	"io"

	"banditware/internal/core"
	"banditware/internal/hardware"
	"banditware/internal/regress"
	"banditware/internal/schema"
)

// Hardware describes one hardware configuration (a Kubernetes resource
// request in the paper's deployment): name, CPU cores, memory.
type Hardware = hardware.Config

// HardwareSet is an ordered set of hardware configurations; slice order
// is the bandit's arm order.
type HardwareSet = hardware.Set

// Options are the Algorithm 1 parameters. The zero value selects the
// paper's experimental settings (α = 0.99, ε₀ = 1, zero tolerances).
type Options = core.Options

// Decision records one recommendation: the chosen arm, whether it came
// from exploration, and the per-arm runtime predictions used.
type Decision = core.Decision

// Model is a learned linear runtime model for one hardware arm.
type Model = regress.Model

// ParseHardware parses "H0=2x16" / "(2,16)" style hardware descriptions.
func ParseHardware(s string) (Hardware, error) { return hardware.Parse(s) }

// ParseHardwareSet parses a semicolon- or space-separated hardware list,
// e.g. "H0=2x16;H1=3x24;H2=4x16".
func ParseHardwareSet(s string) (HardwareSet, error) { return hardware.ParseSet(s) }

// NDPHardware returns the paper's Experiment 2 hardware set from the
// National Data Platform: H0=(2,16), H1=(3,24), H2=(4,16).
func NDPHardware() HardwareSet { return hardware.NDPDefault() }

// Schema declares a stream's feature layout as ordered named fields —
// numeric (optional bounds, default, online min-max or z-score
// normalization) and categorical (one-hot expanded into the model
// dimension). Attach one via StreamConfig.Schema (or the HTTP "schema"
// field, or `banditware serve -schema`): the stream's dimension derives
// from it, contexts submitted through Service.RecommendCtx /
// ObserveDirectCtx / RecommendBatchCtx (or HTTP {"context": {...}})
// are validated and deterministically encoded against it, and its
// normalization statistics persist in service snapshots.
type Schema = schema.Schema

// Field is one named feature declaration inside a Schema.
type Field = schema.Field

// FieldStats is the online normalization state of one numeric field
// (count, range, Welford mean/M2), persisted with the schema.
type FieldStats = schema.FieldStats

// Context is one workflow's named feature values — numbers for numeric
// fields, strings for categorical ones. Over HTTP it is a single flat
// JSON object, e.g. {"num_tasks": 200, "site": "expanse"}.
type Context = schema.Context

// FieldError is one field-level schema violation (which field, why).
// It wraps ErrSchemaViolation.
type FieldError = schema.FieldError

// ValidationError aggregates every field-level violation of one context
// in deterministic order; errors.As it to enumerate Fields().
type ValidationError = schema.ValidationError

// Schema field kinds and normalization modes.
const (
	KindNumeric     = schema.KindNumeric
	KindCategorical = schema.KindCategorical
	NormMinMax      = schema.NormMinMax
	NormZScore      = schema.NormZScore
)

// Schema errors, re-exported for errors.Is checks.
var (
	// ErrSchemaViolation is wrapped by every field-level context
	// validation error; the HTTP layer maps it to 422 with a per-field
	// error list.
	ErrSchemaViolation = schema.ErrSchemaViolation
	// ErrInvalidSchema reports a malformed schema declaration.
	ErrInvalidSchema = schema.ErrInvalidSchema
)

// ParseSchema decodes and validates a schema from its JSON form (the
// same document accepted by the HTTP create route and `serve -schema`).
func ParseSchema(data []byte) (*Schema, error) { return schema.Parse(data) }

// IdentitySchema returns the schema equivalent of a bare
// dim-dimensional feature vector: required numeric fields x0..x{dim-1}.
// Streams created without a schema serve context calls through it.
func IdentitySchema(dim int) *Schema { return schema.Identity(dim) }

// NumericContext builds a purely numeric Context.
func NumericContext(values map[string]float64) Context { return schema.Num(values) }

// Recommender is the BanditWare online recommender (Algorithm 1). It is
// not safe for concurrent use; guard it with a mutex or shard per stream.
type Recommender struct {
	b *core.Bandit
}

// New constructs a recommender over the hardware set for workflows
// described by dim-dimensional feature vectors.
func New(hw HardwareSet, dim int, opts Options) (*Recommender, error) {
	b, err := core.New(hw, dim, opts)
	if err != nil {
		return nil, err
	}
	return &Recommender{b: b}, nil
}

// Recommend returns the hardware arm to run a workflow with the given
// features on. It consumes exploration randomness but does not learn;
// pair it with Observe.
func (r *Recommender) Recommend(features []float64) (Decision, error) {
	return r.b.Recommend(features)
}

// Observe records the measured runtime of a workflow on the given arm,
// refits that arm's model, and decays the exploration rate.
func (r *Recommender) Observe(arm int, features []float64, runtime float64) error {
	return r.b.Observe(arm, features, runtime)
}

// Step runs one full Algorithm 1 iteration: recommend, execute the
// workflow via run (which must return the measured runtime on the chosen
// arm), observe.
func (r *Recommender) Step(features []float64, run func(arm int) float64) (Decision, float64, error) {
	return r.b.Step(features, run)
}

// PredictAll returns the current runtime estimate for every arm.
func (r *Recommender) PredictAll(features []float64) ([]float64, error) {
	return r.b.PredictAll(features)
}

// Model returns a snapshot of arm i's learned linear model.
func (r *Recommender) Model(i int) (Model, error) { return r.b.Model(i) }

// Hardware returns the arm set.
func (r *Recommender) Hardware() HardwareSet { return r.b.Hardware() }

// Epsilon returns the current exploration probability.
func (r *Recommender) Epsilon() float64 { return r.b.Epsilon() }

// Round returns how many observations the recommender has absorbed.
func (r *Recommender) Round() int { return r.b.Round() }

// Save serialises the recommender state (models, stored observations,
// exploration rate) as JSON.
func (r *Recommender) Save(w io.Writer) error { return r.b.SaveState(w) }

// Load restores a recommender serialised by Save.
func Load(rd io.Reader) (*Recommender, error) {
	b, err := core.LoadState(rd)
	if err != nil {
		return nil, err
	}
	return &Recommender{b: b}, nil
}

// TolerantSelect exposes Algorithm 1's exploitation rule for callers that
// manage their own models: among arms whose predicted runtime is within
// (1+tr)·min + ts, return the most resource-efficient.
func TolerantSelect(preds []float64, hw HardwareSet, tr, ts float64) int {
	return core.TolerantSelect(preds, hw, tr, ts)
}
