module banditware

go 1.24
