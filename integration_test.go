package banditware

import (
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"banditware/internal/cluster"
	"banditware/internal/rng"
)

// TestEndToEndLifecycle exercises the full deployment story: synthesise a
// historical trace, persist it as CSV, bootstrap a recommender offline
// from the reloaded trace, continue learning online inside the simulated
// cluster, persist the recommender, restore it, and check it still
// recommends sensibly.
func TestEndToEndLifecycle(t *testing.T) {
	trace, err := GenerateCycles(CyclesOptions{Seed: 81})
	if err != nil {
		t.Fatal(err)
	}

	// Persist + reload the history (the Figure-1 input path).
	path := filepath.Join(t.TempDir(), "history.csv")
	if err := WriteTraceCSV(trace, path); err != nil {
		t.Fatal(err)
	}
	history, err := ReadTraceCSV(path, trace.FeatureNames)
	if err != nil {
		t.Fatal(err)
	}

	// Offline bootstrap.
	rec, err := FitOffline(history, Options{Seed: 82, Alpha: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	bootRounds := rec.Round()
	if bootRounds != len(trace.Runs) {
		t.Fatalf("bootstrap absorbed %d rounds, want %d", bootRounds, len(trace.Runs))
	}

	// Online phase inside the cluster simulator.
	specs := make([]cluster.NodeSpec, len(trace.Hardware))
	for i, hw := range trace.Hardware {
		specs[i] = cluster.NodeSpec{Config: hw, Count: 3, Slots: 4}
	}
	cl, err := cluster.New(cluster.Options{Nodes: specs})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(83)
	arrivals := make([]cluster.Arrival, 120)
	tm := 0.0
	for i := range arrivals {
		tm += r.Exp(1.0 / 200)
		arrivals[i] = cluster.Arrival{
			ID: i, Time: tm,
			Features: []float64{float64(100 + r.Intn(401))},
		}
	}
	noise := rng.New(84)
	m, jobs, err := cl.RunOnline(arrivals,
		func(x []float64) (int, error) {
			d, err := rec.Recommend(x)
			return d.Arm, err
		},
		func(arm int, x []float64) float64 {
			rt := trace.SampleRuntime(arm, x, noise)
			if rt < 1 {
				rt = 1
			}
			return rt
		},
		func(arm int, x []float64, rt float64) error { return rec.Observe(arm, x, rt) },
	)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != 120 || len(jobs) != 120 {
		t.Fatalf("cluster completed %d jobs", m.Completed)
	}
	if rec.Round() != bootRounds+120 {
		t.Fatalf("online phase absorbed %d rounds", rec.Round()-bootRounds)
	}

	// Persist, restore, verify recommendations survive.
	statePath := filepath.Join(t.TempDir(), "state.json")
	f, err := os.Create(statePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	in, err := os.Open(statePath)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Load(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	for _, tasks := range []float64{100, 500} {
		a1, err := rec.Exploit([]float64{tasks})
		if err != nil {
			t.Fatal(err)
		}
		a2, err := restored.Exploit([]float64{tasks})
		if err != nil {
			t.Fatal(err)
		}
		if a1 != a2 {
			t.Fatalf("restored recommender disagrees at %v tasks: %d vs %d", tasks, a1, a2)
		}
		if best := trace.BestArm([]float64{tasks}, 0, 0); a1 != best {
			t.Fatalf("at %v tasks recommends arm %d, truth %d", tasks, a1, best)
		}
	}

	// Confidence intervals are finite for arms with data.
	ivs, err := rec.PredictWithCI([]float64{250}, 0)
	if err != nil {
		t.Fatal(err)
	}
	finite := 0
	for _, iv := range ivs {
		if !math.IsInf(iv.Hi, 1) {
			finite++
		}
	}
	if finite == 0 {
		t.Fatal("no arm has a finite interval after 200 observations")
	}
}

func TestSafeRecommenderConcurrent(t *testing.T) {
	safe, err := NewSafe(NDPHardware(), 1, Options{Seed: 85})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const goroutines = 8
	const perG = 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(100 + g))
			for i := 0; i < perG; i++ {
				x := []float64{r.Uniform(1, 100)}
				d, err := safe.Recommend(x)
				if err != nil {
					t.Error(err)
					return
				}
				if err := safe.Observe(d.Arm, x, 2*x[0]+float64(d.Arm)*10); err != nil {
					t.Error(err)
					return
				}
				if _, err := safe.PredictAll(x); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if safe.Round() != goroutines*perG {
		t.Fatalf("rounds = %d, want %d", safe.Round(), goroutines*perG)
	}
	if safe.Epsilon() >= 1 {
		t.Fatal("epsilon did not decay")
	}
	if len(safe.Hardware()) != 3 {
		t.Fatal("hardware lost")
	}
}
