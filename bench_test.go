// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (see DESIGN.md §4 for the experiment index), plus
// ablation benches for the design choices the paper calls out. Each
// benchmark runs a reduced-size configuration of the corresponding
// experiment and reports the headline metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// both exercises every reproduction path and surfaces the reproduced
// numbers. cmd/bwbench runs the full-size versions.
package banditware

import (
	"strconv"
	"sync/atomic"
	"testing"

	"banditware/internal/core"
	"banditware/internal/dataset"
	"banditware/internal/experiment"
	"banditware/internal/frame"
	"banditware/internal/linalg"
	"banditware/internal/policy"
	"banditware/internal/rng"
	"banditware/internal/workloads"
)

// benchCycles / benchBP3D / benchMatMul memoise the generated traces so
// benchmark iterations measure the experiment, not trace generation.
var (
	benchCyclesTrace *workloads.Dataset
	benchBP3DTrace   *workloads.Dataset
	benchMatMulTrace *workloads.Dataset
)

func cyclesTrace(b *testing.B) *workloads.Dataset {
	b.Helper()
	if benchCyclesTrace == nil {
		d, err := workloads.GenerateCycles(workloads.CyclesOptions{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		benchCyclesTrace = d
	}
	return benchCyclesTrace
}

func bp3dTrace(b *testing.B) *workloads.Dataset {
	b.Helper()
	if benchBP3DTrace == nil {
		d, err := workloads.GenerateBP3D(workloads.BP3DOptions{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		benchBP3DTrace = d
	}
	return benchBP3DTrace
}

func matmulTrace(b *testing.B) *workloads.Dataset {
	b.Helper()
	if benchMatMulTrace == nil {
		d, err := workloads.GenerateMatMul(workloads.MatMulOptions{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		benchMatMulTrace = d
	}
	return benchMatMulTrace
}

// runBanditBench runs a bandit experiment per iteration and reports the
// final accuracy and RMSE-vs-baseline ratio.
func runBanditBench(b *testing.B, d *workloads.Dataset, opts core.Options, rounds int) {
	b.Helper()
	var last experiment.RoundStats
	var baseline float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunBandit(experiment.BanditConfig{
			Dataset:        d,
			Options:        opts,
			NRounds:        rounds,
			NSim:           2,
			Seed:           uint64(i + 1),
			AccuracySample: 300,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res.Rounds[len(res.Rounds)-1]
		baseline = res.BaselineRMSE
	}
	b.ReportMetric(last.AccMean, "final-accuracy")
	if baseline > 0 {
		b.ReportMetric(last.RMSEMean/baseline, "rmse-vs-baseline")
	}
}

// BenchmarkFig1MergePipeline — Figure 1: per-hardware frames → retrieve
// useful columns → merge.
func BenchmarkFig1MergePipeline(b *testing.B) {
	d := bp3dTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perHW, err := dataset.PerHardwareFrames(d)
		if err != nil {
			b.Fatal(err)
		}
		useful := make(map[string]*frame.Frame, len(perHW))
		for name, f := range perHW {
			u, err := dataset.RetrieveUseful(f, d.FeatureNames)
			if err != nil {
				b.Fatal(err)
			}
			useful[name] = u
		}
		merged, err := dataset.Merge(useful, d.Hardware.Names())
		if err != nil {
			b.Fatal(err)
		}
		if merged.NumRows() != len(d.Runs) {
			b.Fatal("merge lost rows")
		}
	}
}

// BenchmarkFig2EpsilonGreedy — Figure 2: the classic ε-greedy
// slot-machine bandit (non-contextual).
func BenchmarkFig2EpsilonGreedy(b *testing.B) {
	payouts := []float64{0.3, 0.55, 0.45, 0.7}
	var finalAvg float64
	for i := 0; i < b.N; i++ {
		p, err := policy.NewFixedEpsilonGreedy(len(payouts), 0, 0.1, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		r := rng.New(uint64(i + 2))
		cum := 0.0
		const rounds = 1000
		for t := 0; t < rounds; t++ {
			arm, err := p.Select(nil)
			if err != nil {
				b.Fatal(err)
			}
			reward := 0.0
			if r.Bernoulli(payouts[arm]) {
				reward = 1
			}
			if err := p.Update(arm, nil, -reward); err != nil {
				b.Fatal(err)
			}
			cum += reward
		}
		finalAvg = cum / rounds
	}
	b.ReportMetric(finalAvg, "avg-reward")
}

// BenchmarkFig3CyclesFit — Figure 3: per-hardware fit overlay on the
// Cycles trace.
func BenchmarkFig3CyclesFit(b *testing.B) {
	d := cyclesTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, _, err := experiment.RunFit(experiment.FitConfig{
			Bandit: experiment.BanditConfig{
				Dataset: d, Options: core.Options{}, NRounds: 100, NSim: 1, Seed: uint64(i + 1),
			},
			Feature: "num_tasks", Lo: 100, Hi: 500, Steps: 9,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 4 {
			b.Fatal("expected 4 hardware series")
		}
	}
}

// BenchmarkFig4aCyclesRMSE — Figure 4a: Cycles RMSE over rounds.
func BenchmarkFig4aCyclesRMSE(b *testing.B) {
	runBanditBench(b, cyclesTrace(b), core.Options{}, 100)
}

// BenchmarkFig4bCyclesAccuracy — Figure 4b: Cycles accuracy with the
// paper's 20-second tolerance.
func BenchmarkFig4bCyclesAccuracy(b *testing.B) {
	runBanditBench(b, cyclesTrace(b), core.Options{ToleranceSeconds: 20}, 100)
}

// BenchmarkTable1BP3DSchema — Table 1: the BP3D feature schema drives
// trace generation.
func BenchmarkTable1BP3DSchema(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := workloads.GenerateBP3D(workloads.BP3DOptions{Seed: uint64(i + 1), NumRuns: 200})
		if err != nil {
			b.Fatal(err)
		}
		if d.Dim() != len(workloads.BP3DFeatureNames) {
			b.Fatal("schema mismatch")
		}
	}
}

// BenchmarkFig5BP3DLinReg — Figure 5: 100 linear-regression recommenders
// on 25 BP3D samples (all features vs area only).
func BenchmarkFig5BP3DLinReg(b *testing.B) {
	d := bp3dTrace(b)
	var mean float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunLinReg(experiment.LinRegConfig{
			Dataset: d, NModels: 20, TrainN: 25,
			Normalize: true, ScaleFeatures: true, Pooled: true, Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		s, err := res.RMSESummary()
		if err != nil {
			b.Fatal(err)
		}
		mean = s.Mean
	}
	b.ReportMetric(mean, "nrmse-mean")
}

// BenchmarkFig6BP3DFit — Figure 6: bandit fit vs baseline along the area
// sweep.
func BenchmarkFig6BP3DFit(b *testing.B) {
	d := bp3dTrace(b)
	area, err := d.SelectFeatures("area")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := experiment.RunFit(experiment.FitConfig{
			Bandit: experiment.BanditConfig{
				Dataset: area, Options: core.Options{}, NRounds: 50, NSim: 1, Seed: uint64(i + 1),
			},
			Feature: "area", Lo: 0.9e6, Hi: 2.6e6, Steps: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7BP3DOverTime — Figure 7: BP3D RMSE/accuracy over 50
// rounds with all features.
func BenchmarkFig7BP3DOverTime(b *testing.B) {
	runBanditBench(b, bp3dTrace(b), core.Options{}, 50)
}

// BenchmarkFig8MatMulLinReg — Figure 8: linreg score distributions on
// the matmul trace, full vs truncated.
func BenchmarkFig8MatMulLinReg(b *testing.B) {
	d := matmulTrace(b)
	sizeOnly, err := d.SelectFeatures("size")
	if err != nil {
		b.Fatal(err)
	}
	trunc := workloads.MatMulSubset(sizeOnly, 5000)
	var r2 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunLinReg(experiment.LinRegConfig{
			Dataset: trunc, NModels: 20, TrainN: 200, Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		s, err := res.R2Summary()
		if err != nil {
			b.Fatal(err)
		}
		r2 = s.Mean
	}
	b.ReportMetric(r2, "r2-mean")
}

func matmulSizeOnly(b *testing.B, subset bool) *workloads.Dataset {
	b.Helper()
	d, err := matmulTrace(b).SelectFeatures("size")
	if err != nil {
		b.Fatal(err)
	}
	if subset {
		d = workloads.MatMulSubset(d, 5000)
	}
	return d
}

// BenchmarkFig9MatMulFull — Figure 9: full matmul dataset, no tolerance.
func BenchmarkFig9MatMulFull(b *testing.B) {
	runBanditBench(b, matmulSizeOnly(b, false), core.Options{}, 80)
}

// BenchmarkFig10MatMulSubset — Figure 10: size ≥ 5000 subset, no
// tolerance.
func BenchmarkFig10MatMulSubset(b *testing.B) {
	runBanditBench(b, matmulSizeOnly(b, true), core.Options{}, 80)
}

// BenchmarkFig11MatMulTolerance — Figure 11: full dataset with
// tolerance_seconds = 20.
func BenchmarkFig11MatMulTolerance(b *testing.B) {
	runBanditBench(b, matmulSizeOnly(b, false), core.Options{ToleranceSeconds: 20}, 80)
}

// BenchmarkFig12MatMulRatio — Figure 12: subset with tolerance_ratio 5%.
func BenchmarkFig12MatMulRatio(b *testing.B) {
	runBanditBench(b, matmulSizeOnly(b, true), core.Options{ToleranceRatio: 0.05}, 80)
}

// --- ablations beyond the paper -------------------------------------

// BenchmarkAblationDecay sweeps the ε decay factor α.
func BenchmarkAblationDecay(b *testing.B) {
	for _, alpha := range []float64{0.9, 0.99, 1.0} {
		b.Run(floatName("alpha", alpha), func(b *testing.B) {
			runBanditBench(b, cyclesTrace(b), core.Options{Alpha: alpha}, 60)
		})
	}
}

// BenchmarkAblationEpsilon0 sweeps the initial exploration rate.
func BenchmarkAblationEpsilon0(b *testing.B) {
	for _, eps := range []float64{0.1, 0.5, 1.0} {
		b.Run(floatName("eps0", eps), func(b *testing.B) {
			runBanditBench(b, cyclesTrace(b), core.Options{Epsilon0: eps}, 60)
		})
	}
}

// BenchmarkAblationTolerance sweeps the tolerance knobs on the matmul
// trace (the axis Figures 9–12 explore).
func BenchmarkAblationTolerance(b *testing.B) {
	cases := []struct {
		name   string
		tr, ts float64
	}{
		{"none", 0, 0},
		{"ts20", 0, 20},
		{"tr5pct", 0.05, 0},
	}
	d := matmulSizeOnly(b, false)
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			runBanditBench(b, d, core.Options{ToleranceRatio: c.tr, ToleranceSeconds: c.ts}, 60)
		})
	}
}

// BenchmarkAblationPolicies compares Algorithm 1 against the
// alternative contextual-bandit policies (the paper's future-work axis).
func BenchmarkAblationPolicies(b *testing.B) {
	d := cyclesTrace(b)
	factories := map[string]experiment.PolicyFactory{
		"algorithm1": func(n, dim int, seed uint64) (policy.Policy, error) {
			return policy.NewDecayingEpsilonGreedy(d.Hardware, dim, core.Options{Seed: seed})
		},
		"linucb": func(n, dim int, seed uint64) (policy.Policy, error) {
			return policy.NewLinUCB(n, dim, 2.0)
		},
		"lints": func(n, dim int, seed uint64) (policy.Policy, error) {
			return policy.NewLinTS(n, dim, 1.0, seed)
		},
		"random": func(n, dim int, seed uint64) (policy.Policy, error) {
			return policy.NewRandom(n, dim, seed)
		},
	}
	for name, factory := range factories {
		factory := factory
		b.Run(name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				rows, err := experiment.RunSweep(experiment.SweepConfig{
					Dataset: d, NRounds: 80, NSim: 2, Seed: uint64(i + 1),
					Policies: map[string]experiment.PolicyFactory{name: factory},
				})
				if err != nil {
					b.Fatal(err)
				}
				acc = rows[0].FinalAccuracy
			}
			b.ReportMetric(acc, "final-accuracy")
		})
	}
}

// BenchmarkExtensionDrift measures the non-stationarity extension: a
// forgetting bandit recovering from a mid-run hardware permutation.
func BenchmarkExtensionDrift(b *testing.B) {
	d := cyclesTrace(b)
	var recovered float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunDrift(experiment.DriftConfig{
			Dataset: d, NRounds: 240, NSim: 2, Seed: uint64(i + 1), ForgettingFactor: 0.95,
		})
		if err != nil {
			b.Fatal(err)
		}
		// Mean of the final 20 rounds — single-round values are noisy at
		// NSim=2.
		tail := res.AccForgetting[len(res.AccForgetting)-20:]
		sum := 0.0
		for _, v := range tail {
			sum += v
		}
		recovered = sum / float64(len(tail))
	}
	b.ReportMetric(recovered, "post-drift-accuracy")
}

// BenchmarkExtensionLLM measures the GPU/LLM future-work workload.
func BenchmarkExtensionLLM(b *testing.B) {
	d, err := workloads.GenerateLLM(workloads.LLMOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	runBanditBench(b, d, core.Options{ToleranceRatio: 0.1}, 80)
}

// BenchmarkExtensionRegret measures the cumulative-regret comparison.
func BenchmarkExtensionRegret(b *testing.B) {
	d := cyclesTrace(b)
	var final float64
	for i := 0; i < b.N; i++ {
		curves, err := experiment.RunRegret(experiment.RegretConfig{
			Dataset: d, NRounds: 100, NSim: 2, Seed: uint64(i + 1),
			Policies: map[string]experiment.PolicyFactory{
				"algorithm1": func(n, dim int, seed uint64) (policy.Policy, error) {
					return policy.NewDecayingEpsilonGreedy(d.Hardware, dim, core.Options{Seed: seed})
				},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		final = curves[0].Cumulative[len(curves[0].Cumulative)-1]
	}
	b.ReportMetric(final, "final-regret-s")
}

// BenchmarkParallelExperiment measures the experiment harness's own
// multi-core scaling (simulations fan out across workers).
func BenchmarkParallelExperiment(b *testing.B) {
	d := bp3dTrace(b)
	for _, workers := range []int{1, 4} {
		b.Run(floatName("workers", float64(workers)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := experiment.RunBandit(experiment.BanditConfig{
					Dataset: d, NRounds: 25, NSim: 8, Seed: 1, Parallel: workers,
					AccuracySample: 200,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelMatMulKernel measures the real tiled kernel's scaling
// with worker count — the mechanism behind the matmul trace's hardware
// sensitivity.
func BenchmarkParallelMatMulKernel(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(floatName("workers", float64(workers)), func(b *testing.B) {
			m, err := workloads.GenerateMatrix(workloads.MatMulSpec{
				Size: 256, Sparsity: 0.1, MinValue: -10, MaxValue: 10, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := linalg.Square(m, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func floatName(prefix string, v float64) string {
	return prefix + "=" + strconv.FormatFloat(v, 'g', -1, 64)
}

// --- serving-path throughput ----------------------------------------

// newBenchService builds a service with n identically configured
// streams named s0..s{n-1}, pre-trained with a few observations so the
// recommend path exercises fitted models.
func newBenchService(b *testing.B, n int) *Service {
	b.Helper()
	hw := NDPHardware()
	svc := NewService(ServiceOptions{})
	for i := 0; i < n; i++ {
		name := "s" + strconv.Itoa(i)
		if err := svc.CreateStream(name, StreamConfig{Hardware: hw, Dim: 1, Options: Options{Seed: uint64(i + 1)}}); err != nil {
			b.Fatal(err)
		}
		for j := 1; j <= 8; j++ {
			if err := svc.ObserveDirect(name, j%len(hw), []float64{float64(j)}, float64(3*j)); err != nil {
				b.Fatal(err)
			}
		}
	}
	return svc
}

// BenchmarkServiceRecommendParallel measures concurrent serving
// throughput on the sharded multi-stream service: every goroutine owns
// one stream (round-robin) and does full recommend→observe ticket round
// trips. With streams=1 all goroutines contend on one stream lock — the
// mutex-wrapper regime; more streams spread the load across per-stream
// locks. Compare against BenchmarkSafeRecommenderParallel.
func BenchmarkServiceRecommendParallel(b *testing.B) {
	for _, streams := range []int{1, 4, 16} {
		b.Run("streams="+strconv.Itoa(streams), func(b *testing.B) {
			svc := newBenchService(b, streams)
			var next atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				name := "s" + strconv.Itoa(int(next.Add(1)-1)%streams)
				x := []float64{42}
				for pb.Next() {
					t, err := svc.Recommend(name, x)
					if err != nil {
						b.Fatal(err)
					}
					if err := svc.Observe(t.ID, 100); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkSafeRecommenderParallel is the single-stream global-lock
// baseline: one SafeRecommender (the historical "wrap it in a mutex"
// scaling story) hammered by every goroutine.
func BenchmarkSafeRecommenderParallel(b *testing.B) {
	safe, err := NewSafe(NDPHardware(), 1, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for j := 1; j <= 8; j++ {
		if err := safe.Observe(j%3, []float64{float64(j)}, float64(3*j)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		x := []float64{42}
		for pb.Next() {
			d, err := safe.Recommend(x)
			if err != nil {
				b.Fatal(err)
			}
			if err := safe.Observe(d.Arm, x, 100); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchSchema is the schema-encoding benchmark layout: three numeric
// fields (one bounded, one normalized each way) plus a categorical
// one-hot block — encoded dim 3 + 4 = 7.
func benchSchema(b *testing.B) *Schema {
	b.Helper()
	lo, hi := 0.0, 1e6
	sch := &Schema{Fields: []Field{
		{Name: "num_tasks", Required: true, Min: &lo, Max: &hi},
		{Name: "input_mb", Normalize: NormMinMax},
		{Name: "cpu_usage", Normalize: NormZScore},
		{Name: "site", Kind: KindCategorical, Categories: []string{"expanse", "nautilus", "tscc", "local"}},
	}}
	if err := sch.Validate(); err != nil {
		b.Fatal(err)
	}
	return sch
}

// BenchmarkSchemaEncode measures the per-request cost of the schema
// layer alone: validate + encode (with two live normalizations and a
// one-hot expansion) of one named context.
//
// Recorded baseline (PR 3, linux/amd64 Xeon @2.70GHz): ~545 ns/op,
// 1 alloc/op (the encoded vector) — see BenchmarkRecommendCtx for the
// same cost in proportion to a full recommend→observe round trip.
func BenchmarkSchemaEncode(b *testing.B) {
	sch := benchSchema(b)
	sites := []string{"expanse", "nautilus", "tscc", "local"}
	ctx := Context{
		Numeric:     map[string]float64{"num_tasks": 0, "input_mb": 0, "cpu_usage": 0},
		Categorical: map[string]string{"site": ""},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Numeric["num_tasks"] = float64(i%1000 + 1)
		ctx.Numeric["input_mb"] = float64(i%700 + 5)
		ctx.Numeric["cpu_usage"] = float64(i % 32)
		ctx.Categorical["site"] = sites[i%len(sites)]
		if _, err := sch.Encode(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecommendCtx measures the serving path with named contexts —
// RecommendCtx (validate + encode + select) → Observe — against the
// raw-vector path on an identically shaped (dim 7) stream, so
// schema-encoding overhead on the hot path is tracked from a recorded
// baseline (PR 3, linux/amd64 Xeon @2.70GHz: ~1.57 µs/op ctx vs
// ~1.07 µs/op raw — the encode cost from BenchmarkSchemaEncode riding
// on an in-memory round trip; any real deployment's network hop dwarfs
// it).
func BenchmarkRecommendCtx(b *testing.B) {
	mkService := func(sch *Schema, dim int) *Service {
		svc := NewService(ServiceOptions{})
		if err := svc.CreateStream("s", StreamConfig{
			Hardware: NDPHardware(), Dim: dim, Schema: sch, Options: Options{Seed: 1},
		}); err != nil {
			b.Fatal(err)
		}
		return svc
	}
	b.Run("ctx", func(b *testing.B) {
		svc := mkService(benchSchema(b), 0)
		ctx := Context{
			Numeric:     map[string]float64{"num_tasks": 42, "input_mb": 512, "cpu_usage": 3},
			Categorical: map[string]string{"site": "expanse"},
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t, err := svc.RecommendCtx("s", ctx)
			if err != nil {
				b.Fatal(err)
			}
			if err := svc.Observe(t.ID, 100); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("raw", func(b *testing.B) {
		svc := mkService(nil, 7) // the ctx stream's encoded dimension
		x := []float64{42, 0.5, 0.1, 1, 0, 0, 0}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t, err := svc.Recommend("s", x)
			if err != nil {
				b.Fatal(err)
			}
			if err := svc.Observe(t.ID, 100); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkObserveOutcome measures the structured-outcome observe path
// — recommend → ObserveOutcome with success flag and two named metrics
// — against the scalar path on an identically configured stream, once
// under the default runtime reward and once under cost_weighted, so
// the reward-pipeline overhead on the hot path is tracked from a
// recorded baseline.
//
// Recorded baseline (PR 4, linux/amd64 Xeon @2.70GHz): scalar
// ~0.86 µs/op; outcome/runtime ~1.05 µs/op; outcome/cost_weighted
// ~1.05 µs/op — metric-map validation plus reward scoring cost ~0.2 µs
// of an in-memory round trip and vanish behind any real network hop.
// PR 5 adds per-arm online drift monitoring to every observe (one
// PredictAll for the pre-update residual plus a Page-Hinkley update):
// scalar ~0.95 µs/op, outcome ~1.3 µs/op on the same hardware class.
func BenchmarkObserveOutcome(b *testing.B) {
	mk := func(rw RewardSpec) *Service {
		svc := NewService(ServiceOptions{})
		if err := svc.CreateStream("s", StreamConfig{
			Hardware: NDPHardware(), Dim: 1, Options: Options{Seed: 1}, Reward: rw,
		}); err != nil {
			b.Fatal(err)
		}
		for j := 1; j <= 8; j++ {
			if err := svc.ObserveDirect("s", j%3, []float64{float64(j)}, float64(3*j)); err != nil {
				b.Fatal(err)
			}
		}
		return svc
	}
	ok := true
	outcome := Outcome{
		Runtime: 100,
		Success: &ok,
		Metrics: map[string]float64{"memory_gb": 3.5, "cost_usd": 0.01},
	}
	x := []float64{42}
	b.Run("scalar", func(b *testing.B) {
		svc := mk(RewardSpec{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t, err := svc.Recommend("s", x)
			if err != nil {
				b.Fatal(err)
			}
			if err := svc.Observe(t.ID, 100); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, rw := range []RewardSpec{{}, {Type: RewardCostWeighted, Lambda: 0.5}} {
		name := "outcome/" + RewardRuntime
		if rw.Type != "" {
			name = "outcome/" + rw.Type
		}
		b.Run(name, func(b *testing.B) {
			svc := mk(rw)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t, err := svc.Recommend("s", x)
				if err != nil {
					b.Fatal(err)
				}
				if err := svc.ObserveOutcome(t.ID, outcome); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServiceRecommendBatch measures the amortisation of taking the
// stream lock once per batch instead of once per decision.
func BenchmarkServiceRecommendBatch(b *testing.B) {
	for _, size := range []int{1, 16, 128} {
		b.Run("size="+strconv.Itoa(size), func(b *testing.B) {
			svc := newBenchService(b, 1)
			xs := make([][]float64, size)
			for i := range xs {
				xs[i] = []float64{float64(i + 1)}
			}
			obs := make([]TicketObservation, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tks, err := svc.RecommendBatch("s0", xs)
				if err != nil {
					b.Fatal(err)
				}
				for j, t := range tks {
					obs[j] = TicketObservation{TicketID: t.ID, Runtime: 100}
				}
				if _, err := svc.ObserveBatch(obs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(size), "decisions/op")
		})
	}
}
