// Command bwload is the serving-path load generator and profiling
// harness (distinct from cmd/bwbench, which regenerates the paper's
// offline figures). It synthesises a seeded Zipf-skewed multi-stream
// trace from the internal/workloads generators and replays it against
// one or both serving targets:
//
//   - inproc: a banditware.Service in the same process (engine +
//     registry + ledger cost, no transport);
//   - hotpath: the same in-process Service driven through the
//     zero-allocation API (RecommendInto / RecommendCtxInto with pooled
//     tickets and context maps, seq-keyed observes) — the serving-layer
//     capacity ceiling; -observe-async N routes model updates through
//     the bounded background drainer. BENCH_serve_hotpath.json at the
//     repo root is the pinned-seed hotpath baseline;
//   - http: the HTTP front-end over a real loopback socket, self-hosted
//     with the hardened production server (or an external server via
//     -addr);
//   - fleet: a self-hosted scale-out fleet (-fleet N replicas, default
//     3, behind the consistent-hash router, with background delta
//     replication) — every request takes the client → router → replica
//     path, pricing the extra hop and sync traffic. -chaos adds the
//     kill/restart drill inside the measured run: one replica is
//     hard-killed a third of the way through the trace and restarted
//     (peer bootstrap) at two thirds; failover-window errors are
//     counted, not fatal.
//
// -churn runs the arm-churn drill inside the measured run on any
// target: a warm-started hardware configuration is added to every
// stream a quarter of the way through the trace, drained at half, and
// retired at three quarters, pricing recommendation traffic while the
// arm set grows, reroutes, and shrinks (fleet targets broadcast each
// transition to every replica). BENCH_armset_churn.json at the repo
// root is the pinned-seed churn baseline.
//
// Modes: closed-loop (-mode closed: fixed concurrency, measures
// capacity) and open-loop (-mode open: Poisson arrivals at -qps,
// measures user-visible latency). Results stream into log-bucketed
// histograms and serialize to the stable JSON report schema
// (internal/loadgen.Report); BENCH_serve_baseline.json at the repo
// root is this tool's pinned-seed output.
//
// Profiling: -cpuprofile, -memprofile, and -trace capture pprof/trace
// artifacts of the whole run, wired the same way as the
// SchemaTreeRecommender evaluation harness.
//
// Scenario mode (-scenario serverless) swaps the synthetic trace for
// the internal/scenario serverless-fleet trace: thousands of Zipf-skewed
// function streams with diurnal + flash-crowd arrival patterns and
// end-to-end latencies (service + queueing + cold starts), so scenario
// traffic joins the same perf trajectory and report schema. -quick
// selects the small pinned preset; -n/-streams/-skew/-observe/-app are
// ignored in scenario mode (the scenario pins its own population).
//
// Examples:
//
//	bwload -quick                               # CI smoke: both targets, seconds
//	bwload -target inproc -n 200000 -conc 8     # capacity run
//	bwload -target hotpath -observe-async 4096  # zero-alloc API ceiling
//	bwload -target http -mode open -qps 2000    # latency under offered load
//	bwload -target fleet -quick                 # scale-out fleet through the router
//	bwload -target fleet -chaos -quick          # CI chaos smoke: kill+restart mid-run
//	bwload -churn -quick                        # arm add/drain/retire inside the run
//	bwload -scenario serverless -quick          # serverless-fleet scenario smoke
//	bwload -cpuprofile cpu.out -n 500000        # profile the serving path
//	bwload -validate BENCH_serve_baseline.json  # schema-check a report
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"time"

	"banditware/internal/loadgen"
	"banditware/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "bwload: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bwload", flag.ExitOnError)
	target := fs.String("target", "both", "serving target: inproc, hotpath, http, fleet, or both")
	observeAsync := fs.Int("observe-async", 0, "with -target hotpath: async observe queue capacity (0 = synchronous observes)")
	fleetN := fs.Int("fleet", 3, "replica count for -target fleet")
	chaos := fs.Bool("chaos", false, "with -target fleet: kill a replica a third of the way through the trace and restart it at two thirds (errors in the failover window are counted, not fatal)")
	churn := fs.Bool("churn", false, "run the arm-churn drill inside the measured run: add a warm-started hardware arm to every stream a quarter of the way through the trace, drain it at half, retire it at three quarters")
	addr := fs.String("addr", "", "drive an external HTTP server at this base URL (e.g. http://127.0.0.1:8080) instead of self-hosting; implies -target http")
	mode := fs.String("mode", "closed", "load mode: closed (fixed concurrency) or open (Poisson arrivals at -qps)")
	conc := fs.Int("conc", runtime.GOMAXPROCS(0), "closed-loop workers / open-loop in-flight slots")
	n := fs.Int("n", 50000, "recommend requests in the trace")
	durCap := fs.Duration("duration", 0, "wall-clock cap per run (0 = run the whole trace)")
	streams := fs.Int("streams", 64, "stream population size")
	skew := fs.Float64("skew", 1.1, "Zipf skew of stream popularity (0 < s; ~0 = uniform)")
	observe := fs.Float64("observe", 0.5, "fraction of recommends followed by an observe")
	app := fs.String("app", "cycles", "workload family for contexts and runtimes: cycles, bp3d, matmul, llm, serverless")
	scenarioName := fs.String("scenario", "", "replay a scenario trace instead of a synthetic one: serverless")
	timeScale := fs.Float64("timescale", 0, "compress (>1) or stretch (<1) open-loop arrival times (0 = replay at recorded rate)")
	qps := fs.Float64("qps", 2000, "open-loop target QPS (Poisson arrival rate)")
	seed := fs.Uint64("seed", 1, "trace seed; same seed, same trace")
	raw := fs.Bool("raw", false, "send positional feature vectors instead of named schema contexts")
	out := fs.String("out", "", "write the JSON report to this file (default stdout)")
	quick := fs.Bool("quick", false, "CI smoke preset: small trace, both targets, fail on any error")
	failOnErr := fs.Bool("failonerr", false, "exit non-zero when any request errored")
	validate := fs.String("validate", "", "validate an existing report file against the schema and exit")
	cpuprofile := fs.String("cpuprofile", "", "write cpu profile to `file`")
	memprofile := fs.String("memprofile", "", "write memory profile to `file`")
	traceFile := fs.String("trace", "", "write execution trace to `file`")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *validate != "" {
		return validateReport(*validate)
	}

	if *quick {
		*n = 3000
		*streams = 16
		if *conc > 4 {
			*conc = 4
		}
		if *durCap == 0 {
			*durCap = 20 * time.Second
		}
		// Chaos runs expect failover-window errors and churn runs may
		// lose a handful of tickets to the mid-run retire; every other
		// quick run treats any request error as a smoke failure.
		*failOnErr = !*chaos && !*churn
	}
	if *addr != "" {
		*target = "http"
	}
	if *target != "inproc" && *target != "hotpath" && *target != "http" && *target != "fleet" && *target != "both" {
		return fmt.Errorf("unknown -target %q (want inproc, hotpath, http, fleet, both)", *target)
	}
	if *observeAsync > 0 && *target != "hotpath" {
		return fmt.Errorf("-observe-async needs -target hotpath (the zero-allocation in-process API)")
	}
	if *chaos && *target != "fleet" {
		return fmt.Errorf("-chaos needs -target fleet")
	}
	if *chaos && *failOnErr {
		// The drill's whole point is a bounded failover window; requests
		// caught inside it error by design.
		return fmt.Errorf("-chaos and -failonerr are mutually exclusive (chaos tolerates failover-window errors)")
	}
	if *chaos && *churn {
		// Churn broadcasts need every ring member reachable; a drill that
		// kills one mid-run would fail the lifecycle requests by design.
		return fmt.Errorf("-chaos and -churn are mutually exclusive (churn broadcasts need a fully-live fleet)")
	}
	runMode := loadgen.Mode(*mode)
	if runMode != loadgen.ModeClosed && runMode != loadgen.ModeOpen {
		return fmt.Errorf("unknown -mode %q (want closed, open)", *mode)
	}
	if *scenarioName != "" && *scenarioName != "serverless" {
		return fmt.Errorf("unknown -scenario %q (want serverless)", *scenarioName)
	}

	// Profiling wiring, as in the SchemaTreeRecommender evaluation
	// harness: CPU profile and trace bracket the run; the heap profile
	// snapshots after a final GC on the way out.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("could not create CPU profile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("could not start CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bwload: could not create memory profile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "bwload: could not write memory profile: %v\n", err)
			}
		}()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return fmt.Errorf("could not create trace file: %w", err)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			return fmt.Errorf("could not start tracing: %w", err)
		}
		defer trace.Stop()
	}

	// genTrace builds a fresh copy of the identical trace for each
	// target run. In scenario mode the scenario package pins its own
	// population and arrival process; the trace flags are ignored.
	var genTrace func() (*loadgen.Trace, error)
	var traceCfg loadgen.TraceConfig
	if *scenarioName != "" {
		scfg := scenario.Default(*seed)
		if *quick {
			scfg = scenario.Quick(*seed)
		}
		tr, err := scenario.Trace(scfg)
		if err != nil {
			return err
		}
		traceCfg = tr.Config
		first := tr
		genTrace = func() (*loadgen.Trace, error) {
			if first != nil {
				tr := first
				first = nil
				return tr, nil
			}
			return scenario.Trace(scfg)
		}
	} else {
		traceCfg = loadgen.TraceConfig{
			Seed:         *seed,
			App:          *app,
			Streams:      *streams,
			Requests:     *n,
			ZipfSkew:     *skew,
			ObserveRatio: *observe,
		}
		if runMode == loadgen.ModeOpen {
			traceCfg.QPS = *qps
		}
		genTrace = func() (*loadgen.Trace, error) { return loadgen.Generate(traceCfg) }
	}
	opts := loadgen.RunOptions{
		Mode:        runMode,
		Concurrency: *conc,
		Duration:    *durCap,
		Raw:         *raw,
		TimeScale:   *timeScale,
		Churn:       *churn,
	}

	report := &loadgen.Report{
		Format:    loadgen.ReportFormat,
		Version:   loadgen.ReportVersion,
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Trace:     traceCfg,
	}

	var runErr error
	for _, name := range targetList(*target) {
		// Each target replays an identically-generated trace against a
		// fresh stream population, so results are comparable and runs
		// never share learned state.
		tr, err := genTrace()
		if err != nil {
			return err
		}
		tgt, err := makeTarget(name, *addr, *fleetN, *chaos, *observeAsync)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bwload: %s/%s: %d streams, %d recommends (observe ratio %g, skew %g)...\n",
			name, runMode, len(tr.Streams), len(tr.Ops), tr.Config.ObserveRatio, tr.Config.ZipfSkew)
		res, err := loadgen.Run(tgt, tr, opts)
		cerr := tgt.Close()
		if cerr != nil {
			fmt.Fprintf(os.Stderr, "bwload: closing %s target: %v\n", name, cerr)
		}
		if res != nil {
			// On error this is a failed partial result: it still records
			// the run configuration (target QPS included) so the report
			// stays schema-valid and diffable.
			res.Chaos = name == "fleet" && *chaos
			report.Results = append(report.Results, *res)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bwload: %s/%s failed: %v\n", name, runMode, err)
			runErr = errors.Join(runErr, fmt.Errorf("%s/%s: %w", name, runMode, err))
			continue
		}
		fmt.Fprintf(os.Stderr, "bwload: %s/%s: %.0f req/s, recommend p50 %.1fµs p99 %.1fµs p999 %.1fµs, %d errors\n",
			name, runMode, res.ThroughputRPS, res.Recommend.P50US, res.Recommend.P99US, res.Recommend.P999US, res.Errors)
	}

	if err := report.Validate(); err != nil {
		return errors.Join(runErr, err)
	}
	data, err := report.EncodeJSON()
	if err != nil {
		return errors.Join(runErr, err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return errors.Join(runErr, err)
		}
		fmt.Fprintf(os.Stderr, "bwload: report written to %s\n", *out)
	} else {
		os.Stdout.Write(data)
	}
	if runErr != nil {
		return runErr
	}
	if *failOnErr {
		if errs := report.TotalErrors(); errs > 0 {
			return fmt.Errorf("%d request errors (first: %s)", errs, firstSample(report))
		}
	}
	return nil
}

func targetList(sel string) []string {
	if sel == "both" {
		return []string{"inproc", "http"}
	}
	return []string{sel}
}

func makeTarget(name, addr string, fleetN int, chaos bool, observeAsync int) (loadgen.Target, error) {
	switch name {
	case "inproc":
		return loadgen.NewInProc(), nil
	case "hotpath":
		return loadgen.NewHotPath(observeAsync), nil
	case "http":
		if addr != "" {
			return loadgen.NewHTTP(addr), nil
		}
		return loadgen.NewSelfHTTP()
	case "fleet":
		return loadgen.NewFleet(loadgen.FleetConfig{Replicas: fleetN, Chaos: chaos})
	}
	return nil, fmt.Errorf("unknown target %q", name)
}

func firstSample(r *loadgen.Report) string {
	for i := range r.Results {
		if len(r.Results[i].ErrorSamples) > 0 {
			return r.Results[i].ErrorSamples[0]
		}
	}
	return "no sample recorded"
}

// validateReport strictly parses the report (unknown fields rejected),
// checks the schema invariants, and reports any recorded request
// errors or failed partial results as a failure — the CI smoke
// contract.
func validateReport(path string) error {
	rep, err := loadgen.ReadReport(path)
	if err != nil {
		return err
	}
	var errs uint64
	for i := range rep.Results {
		res := &rep.Results[i]
		if res.Failed != "" {
			return fmt.Errorf("%s: result %d (%s/%s) records a failed run: %s", path, i, res.Target, res.Mode, res.Failed)
		}
		if res.Chaos {
			// A chaos run expects failover-window errors; hold it to the
			// drill's bound instead of zero.
			if allowed := res.Requests / 10; res.Errors > allowed {
				return fmt.Errorf("%s: chaos result %d (%s/%s) records %d errors, failover-window bound is %d",
					path, i, res.Target, res.Mode, res.Errors, allowed)
			}
			continue
		}
		if res.Churn {
			// A churn run may lose the few tickets in flight across the
			// mid-run retire; hold it to a 1% bound instead of zero.
			if allowed := res.Requests / 100; res.Errors > allowed {
				return fmt.Errorf("%s: churn result %d (%s/%s) records %d errors, retire-window bound is %d",
					path, i, res.Target, res.Mode, res.Errors, allowed)
			}
			continue
		}
		errs += res.Errors
	}
	if errs > 0 {
		return fmt.Errorf("%s: report records %d request errors", path, errs)
	}
	fmt.Printf("%s: valid %s v%d, %d result(s), 0 errors\n", path, rep.Format, rep.Version, len(rep.Results))
	for i := range rep.Results {
		res := &rep.Results[i]
		fmt.Printf("  %s/%s: %d reqs, %.0f req/s, recommend p50 %.1fµs p99 %.1fµs p999 %.1fµs\n",
			res.Target, res.Mode, res.Requests, res.ThroughputRPS, res.Recommend.P50US, res.Recommend.P99US, res.Recommend.P999US)
	}
	return nil
}
