package main

import (
	"path/filepath"
	"testing"

	"banditware/internal/loadgen"
)

// TestRunWritesPartialReportOnFailure is the regression test for the
// partial-report contract: when the run dies before measuring (here a
// dead external server), bwload must still write a schema-valid report
// that records the configured target QPS and the failure, and exit
// non-zero.
func TestRunWritesPartialReportOnFailure(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	err := run([]string{
		"-target", "http",
		"-addr", "http://127.0.0.1:1", // reserved port: connection refused
		"-mode", "open",
		"-qps", "123",
		"-n", "40",
		"-streams", "4",
		"-out", out,
	})
	if err == nil {
		t.Fatal("run against a dead server succeeded")
	}
	rep, rerr := loadgen.ReadReport(out)
	if rerr != nil {
		t.Fatalf("partial report is not schema-valid: %v", rerr)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("partial report has %d results, want 1", len(rep.Results))
	}
	res := rep.Results[0]
	if res.Failed == "" {
		t.Fatalf("partial result does not record the failure: %+v", res)
	}
	if res.Target != "http" || res.Mode != "open" {
		t.Fatalf("partial result misattributed: %+v", res)
	}
	if res.TargetQPS != 123 {
		t.Fatalf("partial result target QPS %g, want 123", res.TargetQPS)
	}
	// The failed report must not pass the CI validation gate.
	if verr := validateReport(out); verr == nil {
		t.Fatal("validateReport accepted a report with a failed run")
	}
}

// TestRunScenarioQuick exercises the -scenario serverless path end to
// end against the in-process target: the scenario trace replays with
// zero request errors and lands in the standard report schema with the
// scenario marker set.
func TestRunScenarioQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario replay; run without -short")
	}
	out := filepath.Join(t.TempDir(), "report.json")
	if err := run([]string{
		"-scenario", "serverless",
		"-quick",
		"-target", "inproc",
		"-out", out,
	}); err != nil {
		t.Fatal(err)
	}
	if err := validateReport(out); err != nil {
		t.Fatal(err)
	}
	rep, err := loadgen.ReadReport(out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace.Scenario != "serverless" || rep.Trace.App != "serverless" {
		t.Fatalf("report trace %+v not marked as the serverless scenario", rep.Trace)
	}
	if len(rep.Results) != 1 || rep.Results[0].Errors != 0 {
		t.Fatalf("scenario replay results: %+v", rep.Results)
	}
}

func TestRunRejectsUnknownScenario(t *testing.T) {
	if err := run([]string{"-scenario", "bogus"}); err == nil {
		t.Fatal("unknown -scenario accepted")
	}
}

// TestRunChurnQuick exercises -churn end to end against the in-process
// target: the arm-churn drill completes inside the measured run and the
// report validates with the churn marker and transition count set.
func TestRunChurnQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("load replay; run without -short")
	}
	out := filepath.Join(t.TempDir(), "report.json")
	if err := run([]string{
		"-churn",
		"-quick",
		"-target", "inproc",
		"-out", out,
	}); err != nil {
		t.Fatal(err)
	}
	if err := validateReport(out); err != nil {
		t.Fatal(err)
	}
	rep, err := loadgen.ReadReport(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || !rep.Results[0].Churn || rep.Results[0].ChurnEvents == 0 {
		t.Fatalf("churn replay results: %+v", rep.Results)
	}
}

func TestRunRejectsChaosWithChurn(t *testing.T) {
	if err := run([]string{"-target", "fleet", "-chaos", "-churn"}); err == nil {
		t.Fatal("-chaos with -churn accepted")
	}
}
