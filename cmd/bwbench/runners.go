package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"banditware/internal/core"
	"banditware/internal/dataset"
	"banditware/internal/experiment"
	"banditware/internal/frame"
	"banditware/internal/policy"
	"banditware/internal/rng"
	"banditware/internal/stats"
	"banditware/internal/svgplot"
	"banditware/internal/workloads"
)

// writeFile is a small helper writing text artifacts.
func writeFile(dir, name, content string) error {
	return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
}

// renderSVG writes a plot to dir/name.
func renderSVG(p *svgplot.Plot, dir, name string) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := p.Render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeRounds writes per-round CSV plus RMSE/accuracy SVGs for a bandit
// result, the shared shape of Figures 4, 7, 9, 10, 11, 12.
func writeRounds(dir, title string, res *experiment.BanditResult) error {
	f, err := os.Create(filepath.Join(dir, "data.csv"))
	if err != nil {
		return err
	}
	if err := experiment.WriteRoundsCSV(f, res); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	rounds := make([]float64, len(res.Rounds))
	rmse := make([]float64, len(res.Rounds))
	rmseErr := make([]float64, len(res.Rounds))
	acc := make([]float64, len(res.Rounds))
	accErr := make([]float64, len(res.Rounds))
	for i, r := range res.Rounds {
		rounds[i] = float64(r.Round)
		rmse[i] = r.RMSEMean
		rmseErr[i] = r.RMSEStd
		acc[i] = r.AccMean
		accErr[i] = r.AccStd
	}
	pr := svgplot.New(title+" — RMSE over time", "round", "rmse")
	pr.Add(svgplot.Series{Name: "bandit (mean ± std)", X: rounds, Y: rmse, YErr: rmseErr})
	pr.SetBaseline(res.BaselineRMSE)
	if err := renderSVG(pr, dir, "rmse.svg"); err != nil {
		return err
	}
	pa := svgplot.New(title+" — accuracy over time", "round", "accuracy")
	pa.Add(svgplot.Series{Name: "bandit (mean ± std)", X: rounds, Y: acc, YErr: accErr})
	pa.SetBaseline(res.BaselineAccuracy)
	return renderSVG(pa, dir, "accuracy.svg")
}

// ---------------------------------------------------------------------
// fig1 — framework overview pipeline (per-hardware frames → merge).

func runFig1(cfg benchConfig, dir string) (string, error) {
	d, err := workloads.GenerateBP3D(workloads.BP3DOptions{Seed: cfg.Seed})
	if err != nil {
		return "", err
	}
	perHW, err := dataset.PerHardwareFrames(d)
	if err != nil {
		return "", err
	}
	useful := make(map[string]*frame.Frame, len(perHW))
	var perHWCounts []string
	for _, name := range d.Hardware.Names() {
		u, err := dataset.RetrieveUseful(perHW[name], d.FeatureNames)
		if err != nil {
			return "", err
		}
		useful[name] = u
		perHWCounts = append(perHWCounts, fmt.Sprintf("%s: %d rows", name, u.NumRows()))
	}
	merged, err := dataset.Merge(useful, d.Hardware.Names())
	if err != nil {
		return "", err
	}
	if err := merged.WriteCSVFile(filepath.Join(dir, "data.csv")); err != nil {
		return "", err
	}
	return fmt.Sprintf(
		"Figure 1 pipeline: %d raw BP3D runs split per hardware (%s), "+
			"projected to useful columns, merged back to %d rows × %d cols.",
		len(d.Runs), strings.Join(perHWCounts, ", "), merged.NumRows(), merged.NumCols()), nil
}

// ---------------------------------------------------------------------
// fig2 — ε-greedy multi-armed bandit illustration.

func runFig2(cfg benchConfig, dir string) (string, error) {
	// Four slot machines with different mean payouts; the policy
	// minimises "runtime", so feed negative payouts.
	payouts := []float64{0.3, 0.55, 0.45, 0.7} // arm 3 is best
	const rounds = 2000
	p, err := policy.NewFixedEpsilonGreedy(len(payouts), 0, 0.1, cfg.Seed)
	if err != nil {
		return "", err
	}
	r := rng.New(cfg.Seed)
	pulls := make([]int, len(payouts))
	cum := 0.0
	avg := make([]float64, rounds)
	for i := 0; i < rounds; i++ {
		arm, err := p.Select(nil)
		if err != nil {
			return "", err
		}
		reward := 0.0
		if r.Bernoulli(payouts[arm]) {
			reward = 1
		}
		if err := p.Update(arm, nil, -reward); err != nil {
			return "", err
		}
		pulls[arm]++
		cum += reward
		avg[i] = cum / float64(i+1)
	}
	var b strings.Builder
	b.WriteString("round,avg_reward\n")
	xs := make([]float64, rounds)
	for i := range avg {
		xs[i] = float64(i + 1)
		fmt.Fprintf(&b, "%d,%g\n", i+1, avg[i])
	}
	if err := writeFile(dir, "data.csv", b.String()); err != nil {
		return "", err
	}
	plot := svgplot.New("ε-greedy on 4 slot machines", "round", "average reward")
	plot.Add(svgplot.Series{Name: "ε=0.1", X: xs, Y: avg})
	plot.SetBaseline(payouts[3])
	if err := renderSVG(plot, dir, "figure.svg"); err != nil {
		return "", err
	}
	return fmt.Sprintf(
		"Figure 2 (illustration): ε-greedy (ε=0.1) over 4 Bernoulli arms %v; "+
			"final average reward %.3f (optimal %.2f); best arm pulled %d/%d times.",
		payouts, avg[rounds-1], payouts[3], pulls[3], rounds), nil
}

// ---------------------------------------------------------------------
// fig3 — Cycles fit overlay on four synthetic hardware settings.

func runFig3(cfg benchConfig, dir string) (string, error) {
	d, err := workloads.GenerateCycles(workloads.CyclesOptions{Seed: cfg.Seed})
	if err != nil {
		return "", err
	}
	series, res, err := experiment.RunFit(experiment.FitConfig{
		Bandit: experiment.BanditConfig{
			Dataset: d,
			Options: core.Options{},
			NRounds: 100,
			NSim:    1,
			Seed:    cfg.Seed,
		},
		Feature: "num_tasks",
		Lo:      100, Hi: 500, Steps: 17,
	})
	if err != nil {
		return "", err
	}
	f, err := os.Create(filepath.Join(dir, "data.csv"))
	if err != nil {
		return "", err
	}
	if err := experiment.WriteFitCSV(f, series, "num_tasks"); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	plot := svgplot.New("Cycles: model fit per hardware", "number of tasks", "makespan (s)")
	var fitErrs []string
	for _, s := range series {
		plot.Add(svgplot.Series{Name: s.ArmName + " actual", X: s.X, Y: s.Actual, Style: svgplot.Points})
		plot.Add(svgplot.Series{Name: s.ArmName + " predicted", X: s.X, Y: s.Predicted, Style: svgplot.Lines, Dashed: true})
		rmse, _ := stats.RMSE(s.Predicted, s.Actual)
		fitErrs = append(fitErrs, fmt.Sprintf("%s %.1f", s.ArmName, rmse))
	}
	if err := renderSVG(plot, dir, "figure.svg"); err != nil {
		return "", err
	}
	return fmt.Sprintf(
		"Figure 3: bandit-learned linear fits vs ground truth for 4 synthetic "+
			"hardware settings after 100 rounds (1 sim). Prediction RMSE vs truth "+
			"along the sweep: %s (makespans span ~700–3100 s). Baseline full-fit RMSE %.1f.",
		strings.Join(fitErrs, ", "), res.BaselineRMSE), nil
}

// ---------------------------------------------------------------------
// fig4 — Cycles RMSE (4a) and accuracy with 20 s tolerance (4b).

func runFig4(cfg benchConfig, dir string) (string, error) {
	d, err := workloads.GenerateCycles(workloads.CyclesOptions{Seed: cfg.Seed})
	if err != nil {
		return "", err
	}
	res, err := experiment.RunBandit(experiment.BanditConfig{
		Dataset: d,
		Options: core.Options{ToleranceSeconds: 20},
		NRounds: 100,
		NSim:    cfg.sims(10, 3),
		Seed:    cfg.Seed,
	})
	if err != nil {
		return "", err
	}
	if err := writeRounds(dir, "Cycles", res); err != nil {
		return "", err
	}
	// The paper's headline: the bandit approaches the full-dataset error
	// within tens of samples. Find the first round within 2× baseline.
	reach := -1
	for _, r := range res.Rounds {
		if r.RMSEMean <= 2*res.BaselineRMSE {
			reach = r.Round
			break
		}
	}
	last := res.Rounds[len(res.Rounds)-1]
	return fmt.Sprintf(
		"Figure 4: Cycles over 100 rounds × %d sims (tolerance 20 s).\n%s\n"+
			"First round with mean RMSE within 2× of the full-fit baseline: %d "+
			"(paper: matches baseline error with ~20 samples). "+
			"Final accuracy %.2f ± %.2f.",
		cfg.sims(10, 3), experiment.MarkdownRounds(res, []int{1, 5, 10, 20, 50, 100}),
		reach, last.AccMean, last.AccStd), nil
}

// ---------------------------------------------------------------------
// table1 — BP3D feature schema.

func runTable1(cfg benchConfig, dir string) (string, error) {
	desc := map[string]string{
		"surface_moisture":      "surface fuel moisture",
		"canopy_moisture":       "canopy fuel moisture",
		"wind_direction":        "direction of surface winds",
		"wind_speed":            "speed of surface winds",
		"sim_time":              "maximum simulation steps allowed",
		"run_max_mem_rss_bytes": "maximum RSS bytes allowed per run",
		"area":                  "calculated regional surface area",
	}
	d, err := workloads.GenerateBP3D(workloads.BP3DOptions{Seed: cfg.Seed})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("| Feature Name | Description | generated min | generated max |\n|---|---|---|---|\n")
	for j, name := range d.FeatureNames {
		lo, hi := d.Runs[0].Features[j], d.Runs[0].Features[j]
		for _, r := range d.Runs {
			v := r.Features[j]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		fmt.Fprintf(&b, "| %s | %s | %.4g | %.4g |\n", name, desc[name], lo, hi)
	}
	if err := writeFile(dir, "data.csv", b.String()); err != nil {
		return "", err
	}
	return "Table 1: BurnPro3D inputs (all seven features generated):\n\n" + b.String(), nil
}

// ---------------------------------------------------------------------
// fig5 — 100 linear regressions on 25 BP3D samples (all vs area-only).

func runFig5(cfg benchConfig, dir string) (string, error) {
	d, err := workloads.GenerateBP3D(workloads.BP3DOptions{Seed: cfg.Seed})
	if err != nil {
		return "", err
	}
	area, err := d.SelectFeatures("area")
	if err != nil {
		return "", err
	}
	nm := cfg.sims(100, 20)
	all, err := experiment.RunLinReg(experiment.LinRegConfig{
		Dataset: d, NModels: nm, TrainN: 25, Normalize: true, ScaleFeatures: true,
		Pooled: true, Seed: cfg.Seed,
	})
	if err != nil {
		return "", err
	}
	areaOnly, err := experiment.RunLinReg(experiment.LinRegConfig{
		Dataset: area, NModels: nm, TrainN: 25, Normalize: true, ScaleFeatures: true,
		Pooled: true, Seed: cfg.Seed + 1,
	})
	if err != nil {
		return "", err
	}
	if err := writeLinRegPair(dir, "bp3d", all, areaOnly, "rmse_all", "rmse_area_only", "r2_all", "r2_area_only"); err != nil {
		return "", err
	}
	sAll, _ := all.RMSESummary()
	sArea, _ := areaOnly.RMSESummary()
	rAll, _ := all.R2Summary()
	return fmt.Sprintf(
		"Figure 5: %d linear-regression recommenders on 25 BP3D samples.\n"+
			"Normalised RMSE all-features: mean %.4f range [%.4f, %.4f] (paper: mean 0.7256, range 0.5163–0.855).\n"+
			"Normalised RMSE area-only: mean %.4f.\n"+
			"R² all-features: mean %.4f, range %.4f (paper: mean 12.83%%, range 51.88%%).",
		nm, sAll.Mean, sAll.Min, sAll.Max, sArea.Mean, rAll.Mean, rAll.Max-rAll.Min), nil
}

func writeLinRegPair(dir, tag string, a, b *experiment.LinRegResult, rmseA, rmseB, r2A, r2B string) error {
	var sb strings.Builder
	sb.WriteString("model," + rmseA + "," + rmseB + "," + r2A + "," + r2B + "\n")
	for i := range a.RMSE {
		fmt.Fprintf(&sb, "%d,%g,%g,%g,%g\n", i, a.RMSE[i], b.RMSE[i], a.R2[i], b.R2[i])
	}
	if err := writeFile(dir, "data.csv", sb.String()); err != nil {
		return err
	}
	sa, err := a.RMSESummary()
	if err != nil {
		return err
	}
	sb2, err := b.RMSESummary()
	if err != nil {
		return err
	}
	pr := svgplot.New("RMSE scores ("+tag+")", "", "rmse")
	pr.AddBox(rmseA, sa.Min, sa.Q1, sa.Median, sa.Q3, sa.Max)
	pr.AddBox(rmseB, sb2.Min, sb2.Q1, sb2.Median, sb2.Q3, sb2.Max)
	if err := renderSVG(pr, dir, "rmse.svg"); err != nil {
		return err
	}
	ra, err := a.R2Summary()
	if err != nil {
		return err
	}
	rb, err := b.R2Summary()
	if err != nil {
		return err
	}
	p2 := svgplot.New("R-squared scores ("+tag+")", "", "r2")
	p2.AddBox(r2A, ra.Min, ra.Q1, ra.Median, ra.Q3, ra.Max)
	p2.AddBox(r2B, rb.Min, rb.Q1, rb.Median, rb.Q3, rb.Max)
	return renderSVG(p2, dir, "r2.svg")
}

// ---------------------------------------------------------------------
// fig6 — BP3D bandit fit vs baseline using the area feature only.

func runFig6(cfg benchConfig, dir string) (string, error) {
	d, err := workloads.GenerateBP3D(workloads.BP3DOptions{Seed: cfg.Seed})
	if err != nil {
		return "", err
	}
	area, err := d.SelectFeatures("area")
	if err != nil {
		return "", err
	}
	series, _, err := experiment.RunFit(experiment.FitConfig{
		Bandit: experiment.BanditConfig{
			Dataset: area,
			Options: core.Options{},
			NRounds: 50,
			NSim:    1,
			Seed:    cfg.Seed,
		},
		Feature: "area",
		Lo:      0.9e6, Hi: 2.6e6, Steps: 12,
	})
	if err != nil {
		return "", err
	}
	f, err := os.Create(filepath.Join(dir, "data.csv"))
	if err != nil {
		return "", err
	}
	if err := experiment.WriteFitCSV(f, series, "area"); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	plot := svgplot.New("BP3D: predicted vs actual runtime by area", "area (m²)", "runtime (s)")
	var lines []string
	for _, s := range series {
		plot.Add(svgplot.Series{Name: s.ArmName + " actual", X: s.X, Y: s.Actual, Style: svgplot.Points})
		plot.Add(svgplot.Series{Name: s.ArmName + " predicted", X: s.X, Y: s.Predicted, Style: svgplot.Lines, Dashed: true})
		rmse, _ := stats.RMSE(s.Predicted, s.Actual)
		lines = append(lines, fmt.Sprintf("%s sweep RMSE %.0f", s.ArmName, rmse))
	}
	if err := renderSVG(plot, dir, "figure.svg"); err != nil {
		return "", err
	}
	return "Figure 6: bandit (50 rounds) predicted vs actual runtime along the " +
		"area sweep for H0–H2; " + strings.Join(lines, ", ") +
		". As in the paper, the three curves nearly coincide (no hardware trade-off).", nil
}

// ---------------------------------------------------------------------
// fig7 — BP3D RMSE + accuracy over time, all features.

func runFig7(cfg benchConfig, dir string) (string, error) {
	d, err := workloads.GenerateBP3D(workloads.BP3DOptions{Seed: cfg.Seed})
	if err != nil {
		return "", err
	}
	res, err := experiment.RunBandit(experiment.BanditConfig{
		Dataset: d,
		Options: core.Options{},
		NRounds: 50,
		NSim:    cfg.sims(100, 10),
		Seed:    cfg.Seed,
	})
	if err != nil {
		return "", err
	}
	if err := writeRounds(dir, "BP3D (all features)", res); err != nil {
		return "", err
	}
	r25, r50 := res.Rounds[24], res.Rounds[49]
	pct := func(r experiment.RoundStats) float64 {
		return 100 * (r.RMSEMean - res.BaselineRMSE) / res.BaselineRMSE
	}
	return fmt.Sprintf(
		"Figure 7: BP3D, all features, %d sims × 50 rounds.\n"+
			"Full-fit RMSE %.2f (paper: 12257.43).\n"+
			"Round 25: %.2f ± %.2f (%.1f%% above baseline; paper: 20182.91 ± 12290.82, +17.9%%).\n"+
			"Round 50: %.2f ± %.2f (%.1f%% above baseline; paper: 16493.81 ± 7078.61, +12.6%%).\n"+
			"Final accuracy %.3f (paper: ≈0.342 ≈ random 1/3 — no hardware trade-off).",
		cfg.sims(100, 10), res.BaselineRMSE,
		r25.RMSEMean, r25.RMSEStd, pct(r25),
		r50.RMSEMean, r50.RMSEStd, pct(r50),
		r50.AccMean), nil
}

// ---------------------------------------------------------------------
// fig8 — matmul linear regressions, full vs truncated dataset.

func runFig8(cfg benchConfig, dir string) (string, error) {
	d, err := workloads.GenerateMatMul(workloads.MatMulOptions{Seed: cfg.Seed})
	if err != nil {
		return "", err
	}
	sizeOnly, err := d.SelectFeatures("size")
	if err != nil {
		return "", err
	}
	trunc := workloads.MatMulSubset(sizeOnly, 5000)
	// The paper does not publish the Figure-8 training-sample size; 200
	// rows (~8% of the trace) reproduces its high-R², low-spread regime.
	nm := cfg.sims(100, 20)
	full, err := experiment.RunLinReg(experiment.LinRegConfig{
		Dataset: sizeOnly, NModels: nm, TrainN: 200, Seed: cfg.Seed,
	})
	if err != nil {
		return "", err
	}
	truncated, err := experiment.RunLinReg(experiment.LinRegConfig{
		Dataset: trunc, NModels: nm, TrainN: 200, Seed: cfg.Seed + 1,
	})
	if err != nil {
		return "", err
	}
	if err := writeLinRegPair(dir, "matmul", full, truncated, "rmse_all", "rmse_truncated", "r2_all", "r2_truncated"); err != nil {
		return "", err
	}
	sf, _ := full.RMSESummary()
	st, _ := truncated.RMSESummary()
	rf, _ := full.R2Summary()
	rt, _ := truncated.R2Summary()
	trainSum, _ := stats.Summarize(truncated.TrainSeconds)
	return fmt.Sprintf(
		"Figure 8: %d linreg models on matmul (size feature).\n"+
			"Full-dataset RMSE: mean %.4g s, range [%.4g, %.4g] (paper: 14.97, 5.20–22.45).\n"+
			"Truncated (size ≥ 5000) RMSE: mean %.4g s (paper: 15.07).\n"+
			"R² full: mean %.3f (paper: 0.877); truncated: mean %.3f (paper: 0.882).\n"+
			"Train time per model: mean %.2g s (paper: 1.56 s on their testbed).",
		nm, sf.Mean, sf.Min, sf.Max, st.Mean, rf.Mean, rt.Mean, trainSum.Mean), nil
}

// ---------------------------------------------------------------------
// fig9–fig12 — matmul bandit runs over the four tolerance settings.

func matmulBandit(cfg benchConfig, dir, title string, subset bool, tr, ts float64) (*experiment.BanditResult, error) {
	d, err := workloads.GenerateMatMul(workloads.MatMulOptions{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	sizeOnly, err := d.SelectFeatures("size")
	if err != nil {
		return nil, err
	}
	if subset {
		sizeOnly = workloads.MatMulSubset(sizeOnly, 5000)
	}
	res, err := experiment.RunBandit(experiment.BanditConfig{
		Dataset:        sizeOnly,
		Options:        core.Options{ToleranceRatio: tr, ToleranceSeconds: ts},
		NRounds:        80,
		NSim:           cfg.sims(100, 10),
		Seed:           cfg.Seed,
		AccuracySample: 600,
	})
	if err != nil {
		return nil, err
	}
	return res, writeRounds(dir, title, res)
}

func runFig9(cfg benchConfig, dir string) (string, error) {
	res, err := matmulBandit(cfg, dir, "MatMul full (no tolerance)", false, 0, 0)
	if err != nil {
		return "", err
	}
	last := res.Rounds[len(res.Rounds)-1]
	return fmt.Sprintf(
		"Figure 9: matmul full dataset, size feature, no tolerance.\n"+
			"Final accuracy %.3f (paper: ≈0.3 vs random 0.2 over 5 arms) — small "+
			"matrices dominate the trace and are hardware-insensitive.\nFinal RMSE %.1f "+
			"(baseline %.1f).",
		last.AccMean, last.RMSEMean, res.BaselineRMSE), nil
}

func runFig10(cfg benchConfig, dir string) (string, error) {
	res, err := matmulBandit(cfg, dir, "MatMul subset size>=5000 (no tolerance)", true, 0, 0)
	if err != nil {
		return "", err
	}
	last := res.Rounds[len(res.Rounds)-1]
	return fmt.Sprintf(
		"Figure 10: matmul subset (size ≥ 5000), no tolerance.\n"+
			"Final accuracy %.3f (paper: ≈0.8) — large matrices separate the five "+
			"hardware settings clearly.\nFinal RMSE %.1f (baseline %.1f).",
		last.AccMean, last.RMSEMean, res.BaselineRMSE), nil
}

func runFig11(cfg benchConfig, dir string) (string, error) {
	res, err := matmulBandit(cfg, dir, "MatMul full (tolerance 20 s)", false, 0, 20)
	if err != nil {
		return "", err
	}
	last := res.Rounds[len(res.Rounds)-1]
	return fmt.Sprintf(
		"Figure 11: matmul full dataset with tolerance_seconds = 20.\n"+
			"Final accuracy %.3f (paper: significant improvement over Fig. 9's ≈0.3) — "+
			"sub-minute runs now count as correct when a cheaper config is within 20 s.\n"+
			"Final RMSE %.1f (baseline %.1f).",
		last.AccMean, last.RMSEMean, res.BaselineRMSE), nil
}

func runFig12(cfg benchConfig, dir string) (string, error) {
	res, err := matmulBandit(cfg, dir, "MatMul subset (5% ratio tolerance)", true, 0.05, 0)
	if err != nil {
		return "", err
	}
	last := res.Rounds[len(res.Rounds)-1]
	return fmt.Sprintf(
		"Figure 12: matmul subset with tolerance_ratio = 5%%.\n"+
			"Final accuracy %.3f (paper: high accuracy while selecting more "+
			"resource-efficient hardware).\nFinal RMSE %.1f (baseline %.1f).",
		last.AccMean, last.RMSEMean, res.BaselineRMSE), nil
}

// ---------------------------------------------------------------------
// ablation — decay / ε₀ / tolerance grids on Cycles.

func runAblation(cfg benchConfig, dir string) (string, error) {
	d, err := workloads.GenerateCycles(workloads.CyclesOptions{Seed: cfg.Seed})
	if err != nil {
		return "", err
	}
	sims := cfg.sims(20, 4)
	var b strings.Builder
	b.WriteString("param,value,final_accuracy,final_rmse\n")
	run := func(opts core.Options) (*experiment.BanditResult, error) {
		return experiment.RunBandit(experiment.BanditConfig{
			Dataset: d, Options: opts, NRounds: 60, NSim: sims, Seed: cfg.Seed,
		})
	}
	for _, alpha := range []float64{0.8, 0.9, 0.95, 0.99, 1.0} {
		res, err := run(core.Options{Alpha: alpha})
		if err != nil {
			return "", err
		}
		last := res.Rounds[len(res.Rounds)-1]
		fmt.Fprintf(&b, "alpha,%g,%g,%g\n", alpha, last.AccMean, last.RMSEMean)
	}
	for _, eps := range []float64{0.1, 0.5, 1.0} {
		res, err := run(core.Options{Epsilon0: eps})
		if err != nil {
			return "", err
		}
		last := res.Rounds[len(res.Rounds)-1]
		fmt.Fprintf(&b, "epsilon0,%g,%g,%g\n", eps, last.AccMean, last.RMSEMean)
	}
	points, err := experiment.RunToleranceGrid(experiment.BanditConfig{
		Dataset: d, Options: core.Options{}, NRounds: 60, NSim: sims, Seed: cfg.Seed,
	}, []float64{0, 0.05, 0.2}, []float64{0, 20, 100})
	if err != nil {
		return "", err
	}
	for _, p := range points {
		fmt.Fprintf(&b, "tolerance,%q,%g,%g\n", p.Label, p.FinalAccuracy, p.MeanCost)
	}
	if err := writeFile(dir, "data.csv", b.String()); err != nil {
		return "", err
	}
	return "Ablations on Cycles (60 rounds × " + fmt.Sprint(sims) + " sims): " +
		"decay factor α ∈ {0.8…1.0}, ε₀ ∈ {0.1, 0.5, 1.0}, and the " +
		"tolerance grid (accuracy + mean selected hardware cost). See data.csv.", nil
}

// ---------------------------------------------------------------------
// policies — Algorithm 1 vs LinUCB / LinTS / greedy / random / oracle.

func runPolicies(cfg benchConfig, dir string) (string, error) {
	d, err := workloads.GenerateCycles(workloads.CyclesOptions{Seed: cfg.Seed})
	if err != nil {
		return "", err
	}
	rows, err := experiment.RunSweep(experiment.SweepConfig{
		Dataset: d,
		NRounds: 100,
		NSim:    cfg.sims(20, 4),
		Seed:    cfg.Seed,
		Policies: map[string]experiment.PolicyFactory{
			"algorithm1": func(n, dim int, seed uint64) (policy.Policy, error) {
				return policy.NewDecayingEpsilonGreedy(d.Hardware, dim, core.Options{Seed: seed})
			},
			"linucb": func(n, dim int, seed uint64) (policy.Policy, error) {
				return policy.NewLinUCB(n, dim, 2.0)
			},
			"lints": func(n, dim int, seed uint64) (policy.Policy, error) {
				return policy.NewLinTS(n, dim, 1.0, seed)
			},
			"greedy": func(n, dim int, seed uint64) (policy.Policy, error) {
				return policy.NewGreedy(n, dim)
			},
			"softmax": func(n, dim int, seed uint64) (policy.Policy, error) {
				return policy.NewSoftmax(n, dim, 100, seed)
			},
			"random": func(n, dim int, seed uint64) (policy.Policy, error) {
				return policy.NewRandom(n, dim, seed)
			},
			"oracle": func(n, dim int, seed uint64) (policy.Policy, error) {
				return policy.NewOracle(n, dim, d.Truth)
			},
		},
	})
	if err != nil {
		return "", err
	}
	f, err := os.Create(filepath.Join(dir, "data.csv"))
	if err != nil {
		return "", err
	}
	if err := experiment.WriteSweepCSV(f, rows); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Policy sweep on Cycles (100 rounds):\n\n| policy | final accuracy | mean regret (s) |\n|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %.3f | %.1f |\n", r.Policy, r.FinalAccuracy, r.MeanRegret)
	}
	return b.String(), nil
}

// ---------------------------------------------------------------------
// clustersim — online loop on the simulated NDP cluster.

func runClusterSim(cfg benchConfig, dir string) (string, error) {
	return clusterComparison(cfg, dir)
}
