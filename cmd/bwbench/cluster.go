package main

import (
	"fmt"
	"strings"

	"banditware/internal/cluster"
	"banditware/internal/core"
	"banditware/internal/rng"
	"banditware/internal/workloads"
)

// clusterComparison runs the full online loop on the simulated NDP-like
// cluster: a stream of Cycles workflows is scheduled by (a) BanditWare,
// (b) uniform random selection, and (c) the ground-truth oracle; the
// cluster's queueing and contention dynamics then determine what the
// user actually waits.
func clusterComparison(cfg benchConfig, dir string) (string, error) {
	d, err := workloads.GenerateCycles(workloads.CyclesOptions{Seed: cfg.Seed})
	if err != nil {
		return "", err
	}
	// Sized so the cluster is moderately loaded but not saturated (mean
	// runtime ~1600 s, one arrival per ~120 s, 24 slots per class):
	// queueing then stays second-order and turnaround tracks runtime, the
	// regime the recommendation problem targets.
	const nJobs = 400
	mkArrivals := func(seed uint64) []cluster.Arrival {
		r := rng.New(seed)
		arr := make([]cluster.Arrival, nJobs)
		tm := 0.0
		for i := range arr {
			tm += r.Exp(1.0 / 120)
			tasks := float64(100 + r.Intn(401))
			arr[i] = cluster.Arrival{ID: i, Time: tm, Features: []float64{tasks}}
		}
		return arr
	}
	mkCluster := func() (*cluster.Cluster, error) {
		specs := make([]cluster.NodeSpec, len(d.Hardware))
		for i, hw := range d.Hardware {
			specs[i] = cluster.NodeSpec{Config: hw, Count: 6, Slots: 4}
		}
		return cluster.New(cluster.Options{Nodes: specs, ContentionFactor: 0.05})
	}
	noise := rng.New(cfg.Seed + 99)
	runtimeOf := func(arm int, x []float64) float64 {
		rt := d.SampleRuntime(arm, x, noise)
		if rt < 1 {
			rt = 1
		}
		return rt
	}

	type result struct {
		name string
		m    cluster.Metrics
	}
	var results []result

	// (a) BanditWare.
	b, err := core.New(d.Hardware, 1, core.Options{Seed: cfg.Seed})
	if err != nil {
		return "", err
	}
	cl, err := mkCluster()
	if err != nil {
		return "", err
	}
	m, _, err := cl.RunOnline(mkArrivals(cfg.Seed),
		func(x []float64) (int, error) {
			dec, err := b.Recommend(x)
			return dec.Arm, err
		},
		runtimeOf,
		func(arm int, x []float64, rt float64) error { return b.Observe(arm, x, rt) },
	)
	if err != nil {
		return "", err
	}
	results = append(results, result{"banditware", m})

	// (b) Random selection.
	rr := rng.New(cfg.Seed + 1)
	cl, err = mkCluster()
	if err != nil {
		return "", err
	}
	m, _, err = cl.RunOnline(mkArrivals(cfg.Seed),
		func(x []float64) (int, error) { return rr.Intn(len(d.Hardware)), nil },
		runtimeOf, nil,
	)
	if err != nil {
		return "", err
	}
	results = append(results, result{"random", m})

	// (c) Oracle.
	cl, err = mkCluster()
	if err != nil {
		return "", err
	}
	m, _, err = cl.RunOnline(mkArrivals(cfg.Seed),
		func(x []float64) (int, error) { return d.BestArm(x, 0, 0), nil },
		runtimeOf, nil,
	)
	if err != nil {
		return "", err
	}
	results = append(results, result{"oracle", m})

	var b2 strings.Builder
	b2.WriteString("selector,mean_turnaround_s,mean_wait_s,makespan_s\n")
	for _, r := range results {
		fmt.Fprintf(&b2, "%s,%g,%g,%g\n", r.name, r.m.MeanTurn, r.m.MeanWait, r.m.Makespan)
	}
	if err := writeFile(dir, "data.csv", b2.String()); err != nil {
		return "", err
	}
	var md strings.Builder
	md.WriteString("Online loop on the simulated NDP cluster (400 Cycles workflows, " +
		"Poisson arrivals ~120 s apart, 6 nodes × 4 slots per class, 5% contention):\n\n" +
		"| selector | mean turnaround (s) | mean wait (s) |\n|---|---|---|\n")
	for _, r := range results {
		fmt.Fprintf(&md, "| %s | %.0f | %.1f |\n", r.name, r.m.MeanTurn, r.m.MeanWait)
	}
	md.WriteString("\nBanditWare should land between random and the oracle, close to the oracle.")
	return md.String(), nil
}
