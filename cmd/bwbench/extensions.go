package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"banditware/internal/core"
	"banditware/internal/experiment"
	"banditware/internal/policy"
	"banditware/internal/stats"
	"banditware/internal/svgplot"
	"banditware/internal/workloads"
)

// runDrift is the non-stationarity extension: halfway through the run the
// hardware behaviours are permuted, and we compare the paper's stationary
// bandit against one with exponential forgetting.
func runDrift(cfg benchConfig, dir string) (string, error) {
	d, err := workloads.GenerateCycles(workloads.CyclesOptions{Seed: cfg.Seed})
	if err != nil {
		return "", err
	}
	res, err := experiment.RunDrift(experiment.DriftConfig{
		Dataset:          d,
		NRounds:          240,
		NSim:             cfg.sims(20, 4),
		Seed:             cfg.Seed,
		ForgettingFactor: 0.95,
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("round,acc_static,acc_forgetting\n")
	xs := make([]float64, len(res.Rounds))
	for i := range res.Rounds {
		xs[i] = float64(res.Rounds[i])
		fmt.Fprintf(&b, "%d,%g,%g\n", res.Rounds[i], res.AccStatic[i], res.AccForgetting[i])
	}
	if err := writeFile(dir, "data.csv", b.String()); err != nil {
		return "", err
	}
	plot := svgplot.New("Non-stationary hardware: drift at round "+fmt.Sprint(res.SwapRound),
		"round", "accuracy")
	plot.Add(svgplot.Series{Name: "stationary bandit", X: xs, Y: res.AccStatic})
	plot.Add(svgplot.Series{Name: "forgetting bandit (β=0.95)", X: xs, Y: res.AccForgetting})
	if err := renderSVG(plot, dir, "figure.svg"); err != nil {
		return "", err
	}
	tail := len(res.Rounds) - 20
	endStatic := stats.Mean(res.AccStatic[tail:])
	endForget := stats.Mean(res.AccForgetting[tail:])
	return fmt.Sprintf(
		"Drift extension (paper future work: dynamic environments): hardware "+
			"behaviours permute at round %d. Final-20-round accuracy: stationary "+
			"bandit %.2f vs forgetting bandit %.2f — forgetting recovers, the "+
			"stationary model stays anchored to the pre-drift world.",
		res.SwapRound, endStatic, endForget), nil
}

// runRegret produces cumulative-regret learning curves for the policy
// comparison (common random numbers across policies).
func runRegret(cfg benchConfig, dir string) (string, error) {
	d, err := workloads.GenerateCycles(workloads.CyclesOptions{Seed: cfg.Seed})
	if err != nil {
		return "", err
	}
	curves, err := experiment.RunRegret(experiment.RegretConfig{
		Dataset: d,
		NRounds: 200,
		NSim:    cfg.sims(20, 4),
		Seed:    cfg.Seed,
		Policies: map[string]experiment.PolicyFactory{
			"algorithm1": func(n, dim int, seed uint64) (policy.Policy, error) {
				return policy.NewDecayingEpsilonGreedy(d.Hardware, dim, core.Options{Seed: seed})
			},
			"linucb": func(n, dim int, seed uint64) (policy.Policy, error) {
				return policy.NewLinUCB(n, dim, 2.0)
			},
			"lints": func(n, dim int, seed uint64) (policy.Policy, error) {
				return policy.NewLinTS(n, dim, 1.0, seed)
			},
			"random": func(n, dim int, seed uint64) (policy.Policy, error) {
				return policy.NewRandom(n, dim, seed)
			},
		},
	})
	if err != nil {
		return "", err
	}
	f, err := os.Create(filepath.Join(dir, "data.csv"))
	if err != nil {
		return "", err
	}
	if err := experiment.WriteRegretCSV(f, curves); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	plot := svgplot.New("Cumulative regret on Cycles", "round", "cumulative regret (s)")
	var finals []string
	for _, c := range curves {
		xs := make([]float64, len(c.Cumulative))
		for i := range xs {
			xs[i] = float64(i + 1)
		}
		plot.Add(svgplot.Series{Name: c.Policy, X: xs, Y: c.Cumulative, YErr: c.Std})
		finals = append(finals, fmt.Sprintf("%s %.0f", c.Policy, c.Cumulative[len(c.Cumulative)-1]))
	}
	if err := renderSVG(plot, dir, "figure.svg"); err != nil {
		return "", err
	}
	return "Cumulative regret after 200 rounds (s): " + strings.Join(finals, ", ") +
		". Algorithm 1 pays its fixed exploration schedule up front; the " +
		"confidence-guided policies explore only where uncertain.", nil
}

// runLLM is the GPU/LLM extension: the future-work workload on
// GPU-bearing hardware.
func runLLM(cfg benchConfig, dir string) (string, error) {
	d, err := workloads.GenerateLLM(workloads.LLMOptions{Seed: cfg.Seed})
	if err != nil {
		return "", err
	}
	res, err := experiment.RunBandit(experiment.BanditConfig{
		Dataset:  d,
		Options:  core.Options{ToleranceRatio: 0.10},
		NRounds:  120,
		NSim:     cfg.sims(20, 5),
		Seed:     cfg.Seed,
		Parallel: -1,
	})
	if err != nil {
		return "", err
	}
	if err := writeRounds(dir, "LLM inference on GPU hardware", res); err != nil {
		return "", err
	}
	last := res.Rounds[len(res.Rounds)-1]
	return fmt.Sprintf(
		"LLM extension (paper future work: GPU-aware recommendation): %d runs, "+
			"hardware {CPU, 1/2/4 GPUs}, features {prompt_tokens, gen_tokens, "+
			"batch_size, model_b_params}, 10%% ratio tolerance.\n"+
			"Final accuracy %.2f (random %.2f), final RMSE %.1f vs full-fit %.1f. "+
			"The bandit learns that big models need multi-GPU settings while small "+
			"models run cheapest on fewer devices.",
		len(d.Runs), last.AccMean, res.RandomAccuracy, last.RMSEMean, res.BaselineRMSE), nil
}
