// Command banditware is the command-line interface to the BanditWare
// hardware recommender:
//
//	banditware generate  -app cycles|bp3d|matmul -out trace.csv [-seed N]
//	banditware simulate  -app cycles|bp3d|matmul [-rounds N] [-sims N] [-tr R] [-ts S]
//	banditware init      -state state.json -hardware "H0=2x16;H1=3x24" -dim D
//	banditware recommend -state state.json -features 1,2,...
//	banditware observe   -state state.json -arm K -features 1,2,... -runtime S
//	banditware serve     [-port P] [-state svc.json] [-snapshot 30s] [-ttl 1h] [-pending N] [-create name:dim:hwspec] [-peers URL,URL] [-sync 1s] [-bootstrap]
//	banditware router    -replicas URL,URL,... [-port P] [-poll 2s] [-vnodes N]
//	banditware arms      list|add|drain|promote|retire -addr URL -stream NAME [...]
//	banditware kernel    -size N [-workers W] [-sparsity F]
//
// generate synthesises one of the paper's workload traces; simulate runs
// the online experiment and renders the round-by-round RMSE/accuracy in
// the terminal; init/recommend/observe manage a persistent recommender
// over JSON state (the single-stream deployment loop); serve runs the
// concurrent multi-stream HTTP service — stream management under
// /v1/streams, decision-ticket recommend/observe (single and batch)
// under /v1/streams/{name}/..., and /v1/stats — with optional periodic
// state snapshots, and with -peers it joins a replicated fleet that
// exchanges learning deltas; router fronts such a fleet, consistent-
// hashing streams across the replicas with health-checked membership;
// arms manages a live stream's hardware arm set over that API — the
// add → drain → promote/retire rollout cycle, against a single serve
// instance or a router (which broadcasts the transitions fleet-wide);
// kernel executes the real tiled parallel matrix-squaring workload and
// reports the measured runtime.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"banditware"
	"banditware/internal/core"
	"banditware/internal/experiment"
	"banditware/internal/frame"
	"banditware/internal/textplot"
	"banditware/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "init":
		err = cmdInit(os.Args[2:])
	case "recommend":
		err = cmdRecommend(os.Args[2:])
	case "observe":
		err = cmdObserve(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "router":
		err = cmdRouter(os.Args[2:])
	case "arms":
		err = cmdArms(os.Args[2:])
	case "kernel":
		err = cmdKernel(os.Args[2:])
	case "describe":
		err = cmdDescribe(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "banditware: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "banditware: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: banditware <command> [flags]

commands:
  generate   synthesise a workload trace CSV (cycles, bp3d, matmul)
  simulate   run the online bandit experiment on a generated trace
  init       create a fresh recommender state file
  recommend  recommend hardware for a workflow (reads state)
  observe    record an observed runtime (updates state)
  serve      run the concurrent multi-stream HTTP recommender service
             (-port, -addr, -state snapshot file, -snapshot interval,
              -ttl ticket expiry, -pending ledger capacity,
              -create name:dim:hwspec to register streams at startup;
              -peers URL,URL to join a scale-out fleet, with -sync
              delta push interval, -self advertised URL, and
              -bootstrap to import a peer snapshot before serving)
  router     front a replica fleet with the consistent-hash stream
             router (-replicas URL,URL required; -poll readiness
             interval, -vnodes ring granularity)
  arms       manage a live stream's hardware arm set over the API
             (list, add -hardware "H3=8x64" [-warm pooled] [-trial],
              drain/promote/retire -arm K; -addr picks the serve
              instance or router, -stream the stream)
  kernel     run the real parallel matrix-squaring workload
  describe   summarise a trace CSV (per-column statistics)`)
}

func generateTrace(app string, seed uint64) (*banditware.Trace, error) {
	switch app {
	case "cycles":
		return banditware.GenerateCycles(banditware.CyclesOptions{Seed: seed})
	case "bp3d":
		return banditware.GenerateBP3D(banditware.BP3DOptions{Seed: seed})
	case "matmul":
		return banditware.GenerateMatMul(banditware.MatMulOptions{Seed: seed})
	default:
		return nil, fmt.Errorf("unknown app %q (want cycles, bp3d, or matmul)", app)
	}
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	app := fs.String("app", "cycles", "workload: cycles, bp3d, or matmul")
	out := fs.String("out", "", "output CSV path (required)")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("generate: -out is required")
	}
	trace, err := generateTrace(*app, *seed)
	if err != nil {
		return err
	}
	if err := banditware.WriteTraceCSV(trace, *out); err != nil {
		return err
	}
	fmt.Printf("wrote %d runs (%s, %d hardware settings, features %s) to %s\n",
		len(trace.Runs), trace.App, len(trace.Hardware),
		strings.Join(trace.FeatureNames, ","), *out)
	return nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	app := fs.String("app", "cycles", "workload: cycles, bp3d, or matmul")
	rounds := fs.Int("rounds", 50, "online rounds per simulation")
	sims := fs.Int("sims", 10, "independent simulations")
	tr := fs.Float64("tr", 0, "tolerance ratio")
	ts := fs.Float64("ts", 0, "tolerance seconds")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	trace, err := generateTrace(*app, *seed)
	if err != nil {
		return err
	}
	res, err := experiment.RunBandit(experiment.BanditConfig{
		Dataset: trace,
		Options: core.Options{ToleranceRatio: *tr, ToleranceSeconds: *ts},
		NRounds: *rounds,
		NSim:    *sims,
		Seed:    *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d rounds x %d sims, tolerance (ratio=%g, seconds=%g)\n\n",
		*app, *rounds, *sims, *tr, *ts)
	rmse := make([]float64, len(res.Rounds))
	acc := make([]float64, len(res.Rounds))
	for i, r := range res.Rounds {
		rmse[i] = r.RMSEMean
		acc[i] = r.AccMean
	}
	fmt.Println("RMSE over rounds (dashed line = full-fit baseline):")
	fmt.Print(textplot.Line(rmse, 60, 10, res.BaselineRMSE))
	fmt.Println("\naccuracy over rounds (dashed line = full-fit accuracy):")
	fmt.Print(textplot.Line(acc, 60, 10, res.BaselineAccuracy))
	fmt.Println()
	fmt.Print(experiment.MarkdownRounds(res, nil))
	return nil
}

func parseFeatures(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad feature %q: %w", p, err)
		}
		out[i] = v
	}
	return out, nil
}

func loadState(path string) (*banditware.Recommender, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return banditware.Load(f)
}

func saveState(rec *banditware.Recommender, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdInit(args []string) error {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	state := fs.String("state", "", "state file to create (required)")
	hw := fs.String("hardware", "H0=2x16;H1=3x24;H2=4x16", "hardware set")
	dim := fs.Int("dim", 1, "workflow feature dimension")
	alpha := fs.Float64("alpha", 0.99, "epsilon decay factor")
	eps := fs.Float64("epsilon", 1, "initial exploration rate")
	tr := fs.Float64("tr", 0, "tolerance ratio")
	ts := fs.Float64("ts", 0, "tolerance seconds")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *state == "" {
		return fmt.Errorf("init: -state is required")
	}
	set, err := banditware.ParseHardwareSet(*hw)
	if err != nil {
		return err
	}
	opts := banditware.Options{
		Alpha: *alpha, Epsilon0: *eps, ZeroEpsilon: *eps == 0,
		ToleranceRatio: *tr, ToleranceSeconds: *ts, Seed: *seed,
	}
	rec, err := banditware.New(set, *dim, opts)
	if err != nil {
		return err
	}
	if err := saveState(rec, *state); err != nil {
		return err
	}
	fmt.Printf("initialised recommender over %d hardware settings (dim %d) at %s\n",
		len(set), *dim, *state)
	return nil
}

func cmdRecommend(args []string) error {
	fs := flag.NewFlagSet("recommend", flag.ExitOnError)
	state := fs.String("state", "", "state file (required)")
	features := fs.String("features", "", "comma-separated workflow features")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *state == "" {
		return fmt.Errorf("recommend: -state is required")
	}
	rec, err := loadState(*state)
	if err != nil {
		return err
	}
	x, err := parseFeatures(*features)
	if err != nil {
		return err
	}
	d, err := rec.Recommend(x)
	if err != nil {
		return err
	}
	hw := rec.Hardware()
	mode := "exploit"
	if d.Explored {
		mode = "explore"
	}
	fmt.Printf("recommendation: arm %d = %s (%s, epsilon %.3f)\n", d.Arm, hw[d.Arm], mode, d.Epsilon)
	for i, p := range d.Predicted {
		marker := " "
		if i == d.Arm {
			marker = "*"
		}
		fmt.Printf("  %s %-12s predicted %s\n", marker, hw[i], fmtSeconds(p))
	}
	// Recommendations consume exploration randomness; persist it.
	return saveState(rec, *state)
}

func fmtSeconds(v float64) string {
	if math.Abs(v) >= 3600 {
		return fmt.Sprintf("%.2f h", v/3600)
	}
	return fmt.Sprintf("%.2f s", v)
}

func cmdObserve(args []string) error {
	fs := flag.NewFlagSet("observe", flag.ExitOnError)
	state := fs.String("state", "", "state file (required)")
	arm := fs.Int("arm", -1, "hardware arm the workflow ran on (required)")
	features := fs.String("features", "", "comma-separated workflow features")
	runtime := fs.Float64("runtime", math.NaN(), "observed runtime in seconds (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *state == "" || *arm < 0 || math.IsNaN(*runtime) {
		return fmt.Errorf("observe: -state, -arm and -runtime are required")
	}
	rec, err := loadState(*state)
	if err != nil {
		return err
	}
	x, err := parseFeatures(*features)
	if err != nil {
		return err
	}
	if err := rec.Observe(*arm, x, *runtime); err != nil {
		return err
	}
	if err := saveState(rec, *state); err != nil {
		return err
	}
	fmt.Printf("recorded %.2f s on arm %d (round %d, epsilon now %.3f)\n",
		*runtime, *arm, rec.Round(), rec.Epsilon())
	return nil
}

func cmdDescribe(args []string) error {
	fs := flag.NewFlagSet("describe", flag.ExitOnError)
	in := fs.String("in", "", "trace CSV path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("describe: -in is required")
	}
	f, err := frame.ReadCSVFile(*in)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d rows × %d columns\n\n", *in, f.NumRows(), f.NumCols())
	desc, err := f.Describe()
	if err != nil {
		return err
	}
	return desc.WriteCSV(os.Stdout)
}

func cmdKernel(args []string) error {
	fs := flag.NewFlagSet("kernel", flag.ExitOnError)
	size := fs.Int("size", 512, "matrix edge length")
	workers := fs.Int("workers", 0, "worker goroutines (0 = all cores)")
	sparsity := fs.Float64("sparsity", 0, "fraction of zero entries [0,1)")
	seed := fs.Uint64("seed", 1, "matrix generation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := workloads.RunMatMulKernel(workloads.MatMulSpec{
		Size: *size, Sparsity: *sparsity, MinValue: -10, MaxValue: 10,
		Workers: *workers, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("squared %dx%d matrix (sparsity %.2f) with %d workers in %v (checksum %.4g)\n",
		*size, *size, *sparsity, *workers, res.Elapsed, res.Checksum)
	return nil
}
