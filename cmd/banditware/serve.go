package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"banditware"
	"banditware/internal/dist"
	"banditware/internal/serve"
)

// cmdServe runs the HTTP/JSON serving layer: a multi-stream Service
// behind the /v1 API (see banditware.ServiceHandler for the routes).
// Streams come from three places: a state snapshot (-state, loaded at
// startup when the file exists), -create flags (optionally paired with
// -schema name=path to declare a named feature schema from a JSON
// file, deriving the stream's dimension, with -reward name=spec to
// select the stream's reward function, and with -adapt name=spec to
// select its non-stationarity adaptation and on-drift response), and
// the POST /v1/streams endpoint at runtime. With -state set, the
// service snapshots itself to the file on shutdown and every -snapshot
// interval (atomically, via a temp file and rename).
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "", "listen address (host:port; default uses -port)")
	port := fs.Int("port", 8080, "listen port (ignored when -addr is set)")
	state := fs.String("state", "", "service snapshot file: loaded at startup if present, saved on shutdown")
	snapshot := fs.Duration("snapshot", 0, "periodic snapshot interval, e.g. 30s (0 = only on shutdown; needs -state)")
	pending := fs.Int("pending", 0, "default per-stream pending-ticket capacity (0 = 4096)")
	ttl := fs.Duration("ttl", 0, "default pending-ticket expiry (0 = never)")
	peers := fs.String("peers", "", "comma-separated peer replica base URLs — join a scale-out fleet: serve the dist endpoints and push learning deltas to every peer")
	self := fs.String("self", "", "this replica's advertised base URL, reported in /v1/dist/status (needs -peers)")
	syncEvery := fs.Duration("sync", 0, "delta push interval to peers (0 = 1s; needs -peers)")
	bootstrap := fs.Bool("bootstrap", false, "import a full snapshot from the first reachable peer before serving — the join/rejoin path (needs -peers)")
	var creates []string
	fs.Func("create", "create a stream at startup as name:dim:hwspec[:policy], e.g. jobs:1:\"H0=2x16;H1=3x24\" or jobs:1:\"H0=2x16;H1=3x24\":linucb,beta=2 (repeatable; dim 0 with -schema derives it)", func(v string) error {
		creates = append(creates, v)
		return nil
	})
	schemaFiles := make(map[string]string)
	fs.Func("schema", "attach a feature schema to a -create stream as name=path/to/schema.json (repeatable)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("serve: bad -schema %q (want name=path)", v)
		}
		if _, dup := schemaFiles[name]; dup {
			return fmt.Errorf("serve: duplicate -schema for stream %q", name)
		}
		schemaFiles[name] = path
		return nil
	})
	rewards := make(map[string]banditware.RewardSpec)
	fs.Func("reward", "set a -create stream's reward function as name=type[,key=value...], e.g. jobs=cost_weighted,lambda=0.5 or jobs=deadline,deadline=300,penalty=5 (repeatable; types: runtime, cost_weighted, deadline, failure_penalty)", func(v string) error {
		name, tok, ok := strings.Cut(v, "=")
		if !ok || name == "" || tok == "" {
			return fmt.Errorf("serve: bad -reward %q (want name=spec)", v)
		}
		if _, dup := rewards[name]; dup {
			return fmt.Errorf("serve: duplicate -reward for stream %q", name)
		}
		spec, err := parseRewardToken(tok)
		if err != nil {
			return fmt.Errorf("serve: bad -reward %q: %w", v, err)
		}
		rewards[name] = spec
		return nil
	})
	adapts := make(map[string]banditware.AdaptSpec)
	fs.Func("adapt", "set a -create stream's non-stationarity adaptation as name=mode[,key=value...], e.g. jobs=forgetting,factor=0.95 or jobs=window,n=128,on_drift=reset (repeatable; modes: none, forgetting, window; keys: factor, window/n, on_drift, delta, threshold, min_samples, warmup)", func(v string) error {
		name, tok, ok := strings.Cut(v, "=")
		if !ok || name == "" || tok == "" {
			return fmt.Errorf("serve: bad -adapt %q (want name=spec)", v)
		}
		if _, dup := adapts[name]; dup {
			return fmt.Errorf("serve: duplicate -adapt for stream %q", name)
		}
		spec, err := parseAdaptToken(tok)
		if err != nil {
			return fmt.Errorf("serve: bad -adapt %q: %w", v, err)
		}
		adapts[name] = spec
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *snapshot > 0 && *state == "" {
		return fmt.Errorf("serve: -snapshot needs -state")
	}
	peerURLs := splitURLList(*peers)
	if len(peerURLs) == 0 {
		if *self != "" || *syncEvery != 0 || *bootstrap {
			return fmt.Errorf("serve: -self, -sync and -bootstrap need -peers")
		}
	}

	opts := banditware.ServiceOptions{MaxPending: *pending, TicketTTL: *ttl}
	svc, err := loadOrNewService(*state, opts)
	if err != nil {
		return err
	}
	created := make(map[string]bool, len(creates))
	for _, spec := range creates {
		name, cfg, err := parseCreateSpec(spec)
		if err != nil {
			return err
		}
		if path, ok := schemaFiles[name]; ok {
			sch, err := loadSchemaFile(path)
			if err != nil {
				return fmt.Errorf("serve: -schema %s=%s: %w", name, path, err)
			}
			cfg.Schema = sch
		}
		if rw, ok := rewards[name]; ok {
			cfg.Reward = rw
		}
		if ad, ok := adapts[name]; ok {
			cfg.Adapt = ad
		}
		if err := svc.CreateStream(name, cfg); err != nil {
			return fmt.Errorf("serve: -create %q: %w", spec, err)
		}
		created[name] = true
	}
	for name := range schemaFiles {
		if !created[name] {
			return fmt.Errorf("serve: -schema names stream %q but no -create does", name)
		}
	}
	for name := range rewards {
		if !created[name] {
			return fmt.Errorf("serve: -reward names stream %q but no -create does", name)
		}
	}
	for name := range adapts {
		if !created[name] {
			return fmt.Errorf("serve: -adapt names stream %q but no -create does", name)
		}
	}

	listenAddr := *addr
	if listenAddr == "" {
		listenAddr = fmt.Sprintf(":%d", *port)
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return err
	}
	// Hardened server: read/write/idle timeouts and a header-size cap
	// alongside the header-read timeout, so a slow client (or a load
	// generator gone wrong) can never wedge the serving path. With
	// -peers the service joins a scale-out fleet: the dist endpoints
	// (delta ingest, snapshot, status) mount in front of the plain API
	// and a background loop pushes learning deltas to every peer.
	var server *http.Server
	if len(peerURLs) > 0 {
		rep := dist.NewReplica(svc, dist.ReplicaOptions{
			Self:         *self,
			Peers:        peerURLs,
			SyncInterval: *syncEvery,
		})
		if *bootstrap {
			if err := rep.Bootstrap(); err != nil {
				ln.Close()
				return fmt.Errorf("serve: %w", err)
			}
			fmt.Printf("banditware serve: bootstrapped %d streams from the fleet\n", svc.NumStreams())
		}
		server = serve.NewServer(rep.Handler())
		rep.Start()
		defer rep.Stop()
	} else {
		server = banditware.NewServiceServer(svc)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- server.Serve(ln) }()
	if len(peerURLs) > 0 {
		fmt.Printf("banditware serve: listening on %s (%d streams, %d fleet peers)\n",
			ln.Addr(), svc.NumStreams(), len(peerURLs))
	} else {
		fmt.Printf("banditware serve: listening on %s (%d streams)\n", ln.Addr(), svc.NumStreams())
	}

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *snapshot > 0 {
		ticker = time.NewTicker(*snapshot)
		tick = ticker.C
		defer ticker.Stop()
	}
	for {
		select {
		case <-tick:
			if err := saveServiceAtomic(svc, *state); err != nil {
				fmt.Fprintf(os.Stderr, "banditware serve: snapshot: %v\n", err)
			}
		case err := <-errc:
			if errors.Is(err, http.ErrServerClosed) {
				err = nil
			}
			return err
		case <-ctx.Done():
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			err := server.Shutdown(shutdownCtx)
			cancel()
			if *state != "" {
				if serr := saveServiceAtomic(svc, *state); serr != nil {
					err = errors.Join(err, serr)
				} else {
					fmt.Printf("banditware serve: state saved to %s\n", *state)
				}
			}
			return err
		}
	}
}

// parseCreateSpec parses "name:dim:hwspec[:policy]". Hardware names may
// themselves contain ':', so the remainder after "name:dim:" is first
// tried as a whole hardware spec (the PR-1 form); only when that fails
// is it split at its last colon into hwspec and policy token.
func parseCreateSpec(spec string) (string, banditware.StreamConfig, error) {
	parts := strings.SplitN(spec, ":", 3)
	if len(parts) != 3 {
		return "", banditware.StreamConfig{}, fmt.Errorf("serve: bad -create %q (want name:dim:hwspec[:policy])", spec)
	}
	dim, err := strconv.Atoi(parts[1])
	if err != nil {
		return "", banditware.StreamConfig{}, fmt.Errorf("serve: bad dim in -create %q: %w", spec, err)
	}
	rest := parts[2]
	cfg := banditware.StreamConfig{Dim: dim}
	set, hwErr := banditware.ParseHardwareSet(rest)
	if hwErr != nil {
		i := strings.LastIndex(rest, ":")
		if i < 0 {
			return "", banditware.StreamConfig{}, hwErr
		}
		set, hwErr = banditware.ParseHardwareSet(rest[:i])
		if hwErr != nil {
			return "", banditware.StreamConfig{}, hwErr
		}
		pol, err := parsePolicyToken(rest[i+1:])
		if err != nil {
			return "", banditware.StreamConfig{}, fmt.Errorf("serve: bad policy in -create %q: %w", spec, err)
		}
		cfg.Policy = pol
	}
	cfg.Hardware = set
	return parts[0], cfg, nil
}

// parsePolicyToken parses the CLI policy form "type[,key=value...]",
// e.g. "linucb", "linucb,beta=2", "softmax,temp=0.5,seed=7". Keys:
// beta, eps[ilon], temp[erature], scale (lints posterior scale), seed.
func parsePolicyToken(tok string) (banditware.PolicySpec, error) {
	fields := strings.Split(tok, ",")
	spec := banditware.PolicySpec{Type: strings.TrimSpace(fields[0])}
	for _, kv := range fields[1:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return spec, fmt.Errorf("bad parameter %q (want key=value)", kv)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		var ferr error
		switch k {
		case "beta":
			spec.Beta, ferr = strconv.ParseFloat(v, 64)
		case "eps", "epsilon":
			spec.Epsilon, ferr = strconv.ParseFloat(v, 64)
		case "temp", "temperature":
			spec.Temperature, ferr = strconv.ParseFloat(v, 64)
		case "scale", "posterior_scale":
			spec.PosteriorScale, ferr = strconv.ParseFloat(v, 64)
		case "seed":
			spec.Seed, ferr = strconv.ParseUint(v, 10, 64)
		default:
			return spec, fmt.Errorf("unknown policy parameter %q", k)
		}
		if ferr != nil {
			return spec, fmt.Errorf("bad value for %q: %w", k, ferr)
		}
	}
	return spec, nil
}

// parseRewardToken parses the CLI reward form "type[,key=value...]",
// e.g. "cost_weighted,lambda=0.5", "deadline,deadline=300,penalty=5",
// "failure_penalty,penalty=900". Keys: lambda, deadline
// (deadline_seconds), penalty.
func parseRewardToken(tok string) (banditware.RewardSpec, error) {
	fields := strings.Split(tok, ",")
	spec := banditware.RewardSpec{Type: strings.TrimSpace(fields[0])}
	for _, kv := range fields[1:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return spec, fmt.Errorf("bad parameter %q (want key=value)", kv)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		var ferr error
		switch k {
		case "lambda":
			spec.Lambda, ferr = strconv.ParseFloat(v, 64)
		case "deadline", "deadline_seconds":
			spec.DeadlineSeconds, ferr = strconv.ParseFloat(v, 64)
		case "penalty":
			spec.Penalty, ferr = strconv.ParseFloat(v, 64)
		default:
			return spec, fmt.Errorf("unknown reward parameter %q", k)
		}
		if ferr != nil {
			return spec, fmt.Errorf("bad value for %q: %w", k, ferr)
		}
	}
	return spec, nil
}

// parseAdaptToken parses the CLI adaptation form "mode[,key=value...]",
// e.g. "forgetting,factor=0.95", "window,n=128,on_drift=reset",
// "none,on_drift=reset,threshold=20". Keys: factor, window (n),
// on_drift, delta, threshold, min_samples, warmup.
func parseAdaptToken(tok string) (banditware.AdaptSpec, error) {
	fields := strings.Split(tok, ",")
	spec := banditware.AdaptSpec{Mode: strings.TrimSpace(fields[0])}
	for _, kv := range fields[1:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return spec, fmt.Errorf("bad parameter %q (want key=value)", kv)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		var ferr error
		switch k {
		case "factor":
			spec.Factor, ferr = strconv.ParseFloat(v, 64)
		case "window", "n":
			spec.Window, ferr = strconv.Atoi(v)
		case "on_drift":
			spec.OnDrift = v
		case "delta", "drift_delta":
			spec.DriftDelta, ferr = strconv.ParseFloat(v, 64)
		case "threshold", "drift_threshold":
			spec.DriftThreshold, ferr = strconv.ParseFloat(v, 64)
		case "min_samples", "drift_min_samples":
			spec.DriftMinSamples, ferr = strconv.Atoi(v)
		case "warmup", "drift_warmup":
			spec.DriftWarmup, ferr = strconv.Atoi(v)
		default:
			return spec, fmt.Errorf("unknown adaptation parameter %q", k)
		}
		if ferr != nil {
			return spec, fmt.Errorf("bad value for %q: %w", k, ferr)
		}
	}
	return spec, nil
}

// loadSchemaFile reads and validates a feature-schema JSON file (the
// same document the HTTP create route accepts under "schema").
func loadSchemaFile(path string) (*banditware.Schema, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return banditware.ParseSchema(data)
}

func loadOrNewService(path string, opts banditware.ServiceOptions) (*banditware.Service, error) {
	if path == "" {
		return banditware.NewService(opts), nil
	}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return banditware.NewService(opts), nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	svc, err := banditware.LoadServiceOptions(f, opts)
	if err != nil {
		return nil, fmt.Errorf("serve: loading %s: %w", path, err)
	}
	return svc, nil
}

// saveServiceAtomic snapshots to a temp file in the target directory and
// renames it into place, so a crash mid-write never corrupts the state.
func saveServiceAtomic(svc *banditware.Service, path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := svc.Save(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	// Flush to stable storage before the rename: rename metadata can hit
	// disk before the data does, which would make a crash leave an empty
	// or truncated state file.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
