package main

import (
	"testing"

	"banditware"
)

func TestParseCreateSpec(t *testing.T) {
	cases := []struct {
		spec    string
		name    string
		dim     int
		arms    int
		policy  string
		beta    float64
		wantErr bool
	}{
		// PR-1 forms keep working, including ':' inside hardware names.
		{spec: "jobs:1:H0=2x16;H1=3x24", name: "jobs", dim: 1, arms: 2},
		{spec: "jobs:2:rack:0=2x16;rack:1=3x24", name: "jobs", dim: 2, arms: 2},
		// Policy suffix, with and without parameters.
		{spec: "ucb:1:H0=2x16;H1=3x24:linucb", name: "ucb", dim: 1, arms: 2, policy: "linucb"},
		{spec: "ucb:1:H0=2x16:linucb,beta=2.5,seed=7", name: "ucb", dim: 1, arms: 1, policy: "linucb", beta: 2.5},
		// Colon-bearing names combine with a policy via the last colon.
		{spec: "j:1:rack:0=2x16:softmax,temp=0.5", name: "j", dim: 1, arms: 1, policy: "softmax"},
		{spec: "jobs", wantErr: true},
		{spec: "jobs:x:H0=2x16", wantErr: true},
		{spec: "jobs:1:H0=2x16:linucb,beta=oops", wantErr: true},
		{spec: "jobs:1:notahardware", wantErr: true},
	}
	for _, c := range cases {
		name, cfg, err := parseCreateSpec(c.spec)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseCreateSpec(%q) accepted", c.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseCreateSpec(%q): %v", c.spec, err)
			continue
		}
		if name != c.name || cfg.Dim != c.dim || len(cfg.Hardware) != c.arms ||
			cfg.Policy.Type != c.policy || cfg.Policy.Beta != c.beta {
			t.Errorf("parseCreateSpec(%q) = %q, %+v", c.spec, name, cfg)
		}
		// Every accepted spec must actually create a stream.
		svc := banditware.NewService(banditware.ServiceOptions{})
		if err := svc.CreateStream(name, cfg); err != nil {
			t.Errorf("CreateStream from %q: %v", c.spec, err)
		}
	}
}

func TestParsePolicyToken(t *testing.T) {
	spec, err := parsePolicyToken("lints,scale=0.5,seed=3")
	if err != nil || spec.Type != "lints" || spec.PosteriorScale != 0.5 || spec.Seed != 3 {
		t.Fatalf("parsePolicyToken = %+v, %v", spec, err)
	}
	if _, err := parsePolicyToken("linucb,unknown=1"); err == nil {
		t.Fatal("unknown parameter accepted")
	}
	if _, err := parsePolicyToken("linucb,beta"); err == nil {
		t.Fatal("missing value accepted")
	}
}
