package main

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"banditware"
)

func TestParseCreateSpec(t *testing.T) {
	cases := []struct {
		spec    string
		name    string
		dim     int
		arms    int
		policy  string
		beta    float64
		wantErr bool
	}{
		// PR-1 forms keep working, including ':' inside hardware names.
		{spec: "jobs:1:H0=2x16;H1=3x24", name: "jobs", dim: 1, arms: 2},
		{spec: "jobs:2:rack:0=2x16;rack:1=3x24", name: "jobs", dim: 2, arms: 2},
		// Policy suffix, with and without parameters.
		{spec: "ucb:1:H0=2x16;H1=3x24:linucb", name: "ucb", dim: 1, arms: 2, policy: "linucb"},
		{spec: "ucb:1:H0=2x16:linucb,beta=2.5,seed=7", name: "ucb", dim: 1, arms: 1, policy: "linucb", beta: 2.5},
		// Colon-bearing names combine with a policy via the last colon.
		{spec: "j:1:rack:0=2x16:softmax,temp=0.5", name: "j", dim: 1, arms: 1, policy: "softmax"},
		{spec: "jobs", wantErr: true},
		{spec: "jobs:x:H0=2x16", wantErr: true},
		{spec: "jobs:1:H0=2x16:linucb,beta=oops", wantErr: true},
		{spec: "jobs:1:notahardware", wantErr: true},
	}
	for _, c := range cases {
		name, cfg, err := parseCreateSpec(c.spec)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseCreateSpec(%q) accepted", c.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseCreateSpec(%q): %v", c.spec, err)
			continue
		}
		if name != c.name || cfg.Dim != c.dim || len(cfg.Hardware) != c.arms ||
			cfg.Policy.Type != c.policy || cfg.Policy.Beta != c.beta {
			t.Errorf("parseCreateSpec(%q) = %q, %+v", c.spec, name, cfg)
		}
		// Every accepted spec must actually create a stream.
		svc := banditware.NewService(banditware.ServiceOptions{})
		if err := svc.CreateStream(name, cfg); err != nil {
			t.Errorf("CreateStream from %q: %v", c.spec, err)
		}
	}
}

// TestSchemaFileCreate: a -schema JSON file pairs with a dim-0 -create
// spec — the stream's dimension derives from the schema, and the stream
// then serves named contexts.
func TestSchemaFileCreate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "schema.json")
	blob := []byte(`{
	  "fields": [
	    {"name": "num_tasks", "required": true, "min": 0},
	    {"name": "site", "kind": "categorical", "categories": ["expanse", "nautilus"]}
	  ]
	}`)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	sch, err := loadSchemaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	name, cfg, err := parseCreateSpec("typed:0:H0=2x16;H1=3x24")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Schema = sch
	svc := banditware.NewService(banditware.ServiceOptions{})
	if err := svc.CreateStream(name, cfg); err != nil {
		t.Fatal(err)
	}
	info, err := svc.StreamInfo("typed")
	if err != nil {
		t.Fatal(err)
	}
	if info.Dim != 3 { // 1 numeric + 2 one-hot
		t.Fatalf("derived dim = %d, want 3", info.Dim)
	}
	tk, err := svc.RecommendCtx("typed", banditware.Context{
		Numeric:     map[string]float64{"num_tasks": 12},
		Categorical: map[string]string{"site": "expanse"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Observe(tk.ID, 30); err != nil {
		t.Fatal(err)
	}
	// An invalid schema file is rejected with the schema sentinel.
	if err := os.WriteFile(path, []byte(`{"fields": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSchemaFile(path); !errors.Is(err, banditware.ErrInvalidSchema) {
		t.Fatalf("empty schema file: %v", err)
	}
	if _, err := loadSchemaFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing schema file accepted")
	}
}

// TestParseRewardToken: the CLI reward form pairs with -create exactly
// like a -schema file does, and a stream created from it learns under
// that reward.
func TestParseRewardToken(t *testing.T) {
	spec, err := parseRewardToken("cost_weighted,lambda=0.5")
	if err != nil || spec.Type != banditware.RewardCostWeighted || spec.Lambda != 0.5 {
		t.Fatalf("parseRewardToken = %+v, %v", spec, err)
	}
	spec, err = parseRewardToken("deadline,deadline=300,penalty=5")
	if err != nil || spec.DeadlineSeconds != 300 || spec.Penalty != 5 {
		t.Fatalf("parseRewardToken deadline = %+v, %v", spec, err)
	}
	if _, err := parseRewardToken("cost_weighted,unknown=1"); err == nil {
		t.Fatal("unknown parameter accepted")
	}
	if _, err := parseRewardToken("cost_weighted,lambda=oops"); err == nil {
		t.Fatal("bad value accepted")
	}
	// An accepted token actually parameterises a stream.
	name, cfg, err := parseCreateSpec("jobs:1:H0=2x16;H1=16x64")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Reward, err = parseRewardToken("failure_penalty,penalty=200")
	if err != nil {
		t.Fatal(err)
	}
	svc := banditware.NewService(banditware.ServiceOptions{})
	if err := svc.CreateStream(name, cfg); err != nil {
		t.Fatal(err)
	}
	rw, err := svc.StreamReward("jobs")
	if err != nil || rw.Type != banditware.RewardFailurePenalty || rw.Penalty != 200 {
		t.Fatalf("StreamReward = %+v, %v", rw, err)
	}
	// An unknown reward type surfaces at create time with the sentinel.
	cfg.Reward = banditware.RewardSpec{Type: "??"}
	if err := svc.CreateStream("other", cfg); !errors.Is(err, banditware.ErrBadReward) {
		t.Fatalf("bad reward create: %v", err)
	}
}

func TestParsePolicyToken(t *testing.T) {
	spec, err := parsePolicyToken("lints,scale=0.5,seed=3")
	if err != nil || spec.Type != "lints" || spec.PosteriorScale != 0.5 || spec.Seed != 3 {
		t.Fatalf("parsePolicyToken = %+v, %v", spec, err)
	}
	if _, err := parsePolicyToken("linucb,unknown=1"); err == nil {
		t.Fatal("unknown parameter accepted")
	}
	if _, err := parsePolicyToken("linucb,beta"); err == nil {
		t.Fatal("missing value accepted")
	}
}

func TestParseAdaptToken(t *testing.T) {
	spec, err := parseAdaptToken("forgetting,factor=0.95")
	if err != nil || spec.Mode != "forgetting" || spec.Factor != 0.95 {
		t.Fatalf("parseAdaptToken = %+v, %v", spec, err)
	}
	spec, err = parseAdaptToken("window,n=128,on_drift=reset,threshold=20")
	if err != nil || spec.Mode != "window" || spec.Window != 128 ||
		spec.OnDrift != "reset" || spec.DriftThreshold != 20 {
		t.Fatalf("parseAdaptToken window = %+v, %v", spec, err)
	}
	if _, err := parseAdaptToken("forgetting,unknown=1"); err == nil {
		t.Fatal("unknown adaptation parameter accepted")
	}
	if _, err := parseAdaptToken("window,n=oops"); err == nil {
		t.Fatal("bad window value accepted")
	}
	// The parsed spec drives stream creation end to end.
	svc := banditware.NewService(banditware.ServiceOptions{})
	name, cfg, err := parseCreateSpec(`jobs:1:H0=2x16;H1=3x24`)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Adapt, err = parseAdaptToken("forgetting,factor=0.9")
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.CreateStream(name, cfg); err != nil {
		t.Fatal(err)
	}
	adapt, err := svc.StreamAdapt("jobs")
	if err != nil || adapt.Mode != banditware.AdaptForgetting || adapt.Factor != 0.9 {
		t.Fatalf("created stream adapt = %+v, %v", adapt, err)
	}
	if _, err := parseAdaptToken("none"); err != nil {
		t.Fatalf("bare mode token: %v", err)
	}
}

// TestServeServerHardened pins the serve subcommand's http.Server
// configuration: every slow-client avenue must be bounded, not just
// the header-read timeout.
func TestServeServerHardened(t *testing.T) {
	svc := banditware.NewService(banditware.ServiceOptions{})
	srv := banditware.NewServiceServer(svc)
	if srv.Handler == nil {
		t.Fatal("server has no handler")
	}
	if srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unbounded")
	}
	if srv.ReadTimeout <= 0 {
		t.Error("ReadTimeout unbounded")
	}
	if srv.WriteTimeout <= 0 {
		t.Error("WriteTimeout unbounded")
	}
	if srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout unbounded")
	}
	if srv.MaxHeaderBytes <= 0 {
		t.Error("MaxHeaderBytes unbounded")
	}
}
