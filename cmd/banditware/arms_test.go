package main

import (
	"net/http/httptest"
	"testing"

	"banditware"
)

// TestCmdArmsLifecycle drives every arms verb against a live handler:
// list → add (trial, warm pooled) → promote → drain → retire, plus the
// error paths (missing flags, unknown verb, server rejection).
func TestCmdArmsLifecycle(t *testing.T) {
	svc := banditware.NewService(banditware.ServiceOptions{})
	if err := svc.CreateStream("jobs", banditware.StreamConfig{
		Hardware: mustHardware(t, "H0=2x16;H1=3x24"),
		Dim:      1,
	}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(banditware.ServiceHandler(svc))
	defer srv.Close()

	steps := [][]string{
		{"list", "-addr", srv.URL, "-stream", "jobs"},
		{"add", "-addr", srv.URL, "-stream", "jobs", "-hardware", "H2=8x64", "-warm", "pooled", "-weight", "0.5", "-trial"},
		{"promote", "-addr", srv.URL, "-stream", "jobs", "-arm", "2"},
		{"drain", "-addr", srv.URL, "-stream", "jobs", "-arm", "2"},
		{"retire", "-addr", srv.URL, "-stream", "jobs", "-arm", "2"},
	}
	for _, args := range steps {
		if err := cmdArms(args); err != nil {
			t.Fatalf("arms %v: %v", args, err)
		}
	}
	arms, err := svc.Arms("jobs")
	if err != nil {
		t.Fatal(err)
	}
	if len(arms) != 2 {
		t.Fatalf("after the rollout cycle: %d arms, want the original 2", len(arms))
	}

	failures := [][]string{
		{},
		{"sideways", "-addr", srv.URL, "-stream", "jobs"},
		{"list", "-addr", srv.URL},                                  // missing -stream
		{"add", "-addr", srv.URL, "-stream", "jobs"},                // missing -hardware
		{"drain", "-addr", srv.URL, "-stream", "jobs"},              // missing -arm
		{"drain", "-addr", srv.URL, "-stream", "jobs", "-arm", "7"}, // 404
		{"retire", "-addr", srv.URL, "-stream", "jobs", "-arm", "0"},
		{"list", "-addr", srv.URL, "-stream", "ghost"},
	}
	for _, args := range failures {
		if err := cmdArms(args); err == nil {
			t.Errorf("arms %v succeeded, want an error", args)
		}
	}
}

func mustHardware(t *testing.T, spec string) banditware.HardwareSet {
	t.Helper()
	set, err := banditware.ParseHardwareSet(spec)
	if err != nil {
		t.Fatal(err)
	}
	return set
}
