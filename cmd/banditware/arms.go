package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// cmdArms drives a running serve instance's arm-lifecycle API — the
// operational side of a hardware rollout (docs/OPERATIONS.md has the
// full runbook):
//
//	banditware arms list    -addr URL -stream NAME
//	banditware arms add     -addr URL -stream NAME -hardware "H3=8x64" [-warm pooled|nearest|cold] [-weight W] [-trial]
//	banditware arms drain   -addr URL -stream NAME -arm K
//	banditware arms promote -addr URL -stream NAME -arm K
//	banditware arms retire  -addr URL -stream NAME -arm K
//
// Against a router the lifecycle verbs broadcast to every replica, so
// the fleet's arm sets stay index-aligned.
func cmdArms(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("arms: want a verb: list, add, drain, promote, retire")
	}
	verb, rest := args[0], args[1:]

	fs := flag.NewFlagSet("arms "+verb, flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "base URL of the serve instance or router")
	stream := fs.String("stream", "", "stream name (required)")
	hw := fs.String("hardware", "", "add: new arm's hardware config, \"Name=CPUSxMEM\" form (required)")
	warm := fs.String("warm", "", "add: warm-start mode: cold (default), pooled, or nearest")
	weight := fs.Float64("weight", 0, "add: warm-start donor weight in (0, 1] (0 = server default)")
	trial := fs.Bool("trial", false, "add: add in the trial state (learns but serves no live traffic until promoted)")
	arm := fs.Int("arm", -1, "drain/promote/retire: arm index (required)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if *stream == "" {
		return fmt.Errorf("arms %s: -stream is required", verb)
	}
	base := strings.TrimRight(*addr, "/") + "/v1/streams/" + *stream + "/arms"
	client := &http.Client{Timeout: 10 * time.Second}

	var (
		listing armsListing
		err     error
	)
	switch verb {
	case "list":
		err = armsCall(client, http.MethodGet, base, nil, &listing)
	case "add":
		if *hw == "" {
			return fmt.Errorf("arms add: -hardware is required")
		}
		body := map[string]any{"hardware_spec": *hw}
		if *warm != "" {
			body["warm"] = *warm
		}
		if *weight != 0 {
			body["warm_weight"] = *weight
		}
		if *trial {
			body["trial"] = true
		}
		if err = armsCall(client, http.MethodPost, base, body, &listing); err == nil {
			fmt.Printf("added arm %d to %s\n", listing.Arm, *stream)
		}
	case "drain", "promote":
		if *arm < 0 {
			return fmt.Errorf("arms %s: -arm is required", verb)
		}
		err = armsCall(client, http.MethodPost, fmt.Sprintf("%s/%d/%s", base, *arm, verb), nil, &listing)
	case "retire":
		if *arm < 0 {
			return fmt.Errorf("arms retire: -arm is required")
		}
		err = armsCall(client, http.MethodDelete, fmt.Sprintf("%s/%d", base, *arm), nil, &listing)
	default:
		return fmt.Errorf("arms: unknown verb %q (want list, add, drain, promote, retire)", verb)
	}
	if err != nil {
		return fmt.Errorf("arms %s: %w", verb, err)
	}
	for _, a := range listing.Arms {
		fmt.Printf("  %d  %-16s %s\n", a.Arm, a.Hardware, a.Status)
	}
	return nil
}

// armsListing mirrors the wire shape of every arm-lifecycle response.
type armsListing struct {
	Stream string `json:"stream"`
	Arm    int    `json:"arm"`
	Arms   []struct {
		Arm      int    `json:"arm"`
		Hardware string `json:"hardware"`
		Status   string `json:"status"`
	} `json:"arms"`
}

// armsCall issues one JSON request; a non-2xx status is an error
// carrying the server's error body.
func armsCall(client *http.Client, method, url string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
