package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"banditware/internal/dist"
	"banditware/internal/serve"
)

// cmdRouter runs the fleet front door: a consistent-hash router that
// partitions streams across replica back ends (each a `banditware
// serve -peers ...` process), health-checks the membership via
// /v1/readyz polling, and rebalances a lost replica's streams onto the
// survivors. Clients speak the ordinary /v1 serving API to the router;
// GET /v1/router/replicas reports the fleet view.
func cmdRouter(args []string) error {
	fs := flag.NewFlagSet("router", flag.ExitOnError)
	addr := fs.String("addr", "", "listen address (host:port; default uses -port)")
	port := fs.Int("port", 8090, "listen port (ignored when -addr is set)")
	replicas := fs.String("replicas", "", "comma-separated replica base URLs, e.g. http://10.0.0.1:8080,http://10.0.0.2:8080 (required)")
	poll := fs.Duration("poll", 0, "replica readiness poll interval (0 = 2s)")
	vnodes := fs.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0 = 64)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	urls := splitURLList(*replicas)
	if len(urls) == 0 {
		return fmt.Errorf("router: -replicas is required")
	}

	router, err := dist.NewRouter(urls, dist.RouterOptions{
		VNodes:       *vnodes,
		PollInterval: *poll,
	})
	if err != nil {
		return fmt.Errorf("router: %w", err)
	}

	listenAddr := *addr
	if listenAddr == "" {
		listenAddr = fmt.Sprintf(":%d", *port)
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return err
	}
	server := serve.NewServer(router.Handler())
	router.Start()
	defer router.Stop()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- server.Serve(ln) }()
	ready := router.CheckNow()
	fmt.Printf("banditware router: listening on %s, %d/%d replicas ready\n",
		ln.Addr(), len(ready), len(urls))

	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return server.Shutdown(shutdownCtx)
	}
}

// splitURLList splits a comma-separated URL list, trimming whitespace
// and dropping empty entries.
func splitURLList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
