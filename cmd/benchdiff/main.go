// Command benchdiff compares two `go test -bench` outputs — a base run
// and a head run — and fails when the head regresses. It is the CI
// gate behind .github/bench-regression.sh: the bench job runs the same
// benchmark set on the merge base and on the PR head, then lets this
// tool decide whether the difference is noise or a regression.
//
// Two checks, tuned to what each metric can support:
//
//   - ns/op is noisy on shared runners, so it is tested statistically:
//     a Welch two-sample t-test (internal/stats) across the -count
//     repetitions of each benchmark. A benchmark fails only when the
//     head mean is more than -threshold slower AND the difference is
//     significant at -alpha. Fewer than two samples on either side
//     downgrades the check to informational.
//
//   - allocs/op is deterministic, so it is compared exactly: any
//     increase fails, regardless of magnitude. This is the CI twin of
//     the in-repo allocation pins (internal/serve/alloc_test.go).
//
// Benchmarks present on only one side are reported but never fail the
// run (new or deleted benchmarks are not regressions).
//
// Usage:
//
//	benchdiff [-alpha 0.05] [-threshold 0.10] base.txt head.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"banditware/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("benchdiff", flag.ExitOnError)
	alpha := fs.Float64("alpha", 0.05, "significance level for the ns/op Welch t-test")
	threshold := fs.Float64("threshold", 0.10, "fractional ns/op slowdown tolerated before the t-test applies (0.10 = 10%)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: benchdiff [flags] base.txt head.txt")
	}
	base, err := parseFile(fs.Arg(0))
	if err != nil {
		return err
	}
	head, err := parseFile(fs.Arg(1))
	if err != nil {
		return err
	}
	rows, failures := compare(base, head, *alpha, *threshold)
	for _, r := range rows {
		fmt.Fprintln(out, r)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark regression(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(out, "ok: %d benchmark(s) compared, no regressions\n", len(rows))
	return nil
}

// sample is the per-repetition measurements of one benchmark name.
type sample struct {
	nsPerOp     []float64
	allocsPerOp []float64
}

// parseFile reads `go test -bench` output: every line starting with
// "Benchmark" contributes one repetition. Non-benchmark lines (pkg
// headers, PASS, ok) are ignored.
func parseFile(path string) (map[string]*sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]*sample)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		name, ns, allocs, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		s := out[name]
		if s == nil {
			s = &sample{}
			out[name] = s
		}
		s.nsPerOp = append(s.nsPerOp, ns)
		if allocs >= 0 {
			s.allocsPerOp = append(s.allocsPerOp, allocs)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return out, nil
}

// parseLine extracts (name, ns/op, allocs/op) from one benchmark line.
// allocs is -1 when the line carries no allocs/op column (-benchmem
// not set). The name keeps its -GOMAXPROCS suffix so runs compare like
// against like.
func parseLine(line string) (name string, ns, allocs float64, ok bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", 0, 0, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", 0, 0, false
	}
	name = fields[0]
	allocs = -1
	found := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", 0, 0, false
		}
		switch fields[i+1] {
		case "ns/op":
			ns, found = v, true
		case "allocs/op":
			allocs = v
		}
	}
	if !found {
		return "", 0, 0, false
	}
	return name, ns, allocs, true
}

// compare renders one report row per benchmark and collects failures.
func compare(base, head map[string]*sample, alpha, threshold float64) (rows, failures []string) {
	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	for n := range head {
		if _, dup := base[n]; !dup {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		b, h := base[n], head[n]
		switch {
		case b == nil:
			rows = append(rows, fmt.Sprintf("%-60s only in head (new benchmark)", n))
			continue
		case h == nil:
			rows = append(rows, fmt.Sprintf("%-60s only in base (deleted benchmark)", n))
			continue
		}
		row, fail := compareOne(n, b, h, alpha, threshold)
		rows = append(rows, row)
		failures = append(failures, fail...)
	}
	return rows, failures
}

func compareOne(name string, b, h *sample, alpha, threshold float64) (row string, failures []string) {
	bm, hm := stats.Mean(b.nsPerOp), stats.Mean(h.nsPerOp)
	delta := (hm - bm) / bm
	verdict := "~"
	if len(b.nsPerOp) >= 2 && len(h.nsPerOp) >= 2 {
		res, err := stats.WelchTTest(b.nsPerOp, h.nsPerOp)
		if err == nil {
			switch {
			case delta > threshold && res.P < alpha:
				verdict = fmt.Sprintf("SLOWER (p=%.3g)", res.P)
				failures = append(failures, fmt.Sprintf("%s: ns/op %.1f -> %.1f (%+.1f%%, p=%.3g)", name, bm, hm, 100*delta, res.P))
			case delta < -threshold && res.P < alpha:
				verdict = fmt.Sprintf("faster (p=%.3g)", res.P)
			}
		}
	} else {
		verdict = "~ (single run, no test)"
	}
	row = fmt.Sprintf("%-60s ns/op %10.1f -> %10.1f  %+6.1f%%  %s", name, bm, hm, 100*delta, verdict)
	if len(b.allocsPerOp) > 0 && len(h.allocsPerOp) > 0 {
		// allocs/op is deterministic per build: repetitions agree, so
		// comparing the max against the max is exact, and any increase
		// is a real regression.
		ba, ha := maxOf(b.allocsPerOp), maxOf(h.allocsPerOp)
		row += fmt.Sprintf("  allocs %g -> %g", ba, ha)
		if ha > ba {
			failures = append(failures, fmt.Sprintf("%s: allocs/op %g -> %g (allocation regression)", name, ba, ha))
		}
	}
	return row, failures
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
