package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	name, ns, allocs, ok := parseLine("BenchmarkParallelRecommendObserve1-8   \t 1000000\t      1056 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok || name != "BenchmarkParallelRecommendObserve1-8" || ns != 1056 || allocs != 0 {
		t.Fatalf("got %q %g %g %v", name, ns, allocs, ok)
	}
	// No -benchmem: allocs column absent.
	name, ns, allocs, ok = parseLine("BenchmarkFoo-2 500 2500 ns/op")
	if !ok || name != "BenchmarkFoo-2" || ns != 2500 || allocs != -1 {
		t.Fatalf("got %q %g %g %v", name, ns, allocs, ok)
	}
	for _, line := range []string{
		"PASS",
		"ok  \tbanditware/internal/serve\t1.2s",
		"goos: linux",
		"Benchmark", // name only, no measurements
	} {
		if _, _, _, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) unexpectedly ok", line)
		}
	}
}

func writeBench(t *testing.T, name string, lines ...string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompareDetectsSlowdown(t *testing.T) {
	base, err := parseFile(writeBench(t, "base.txt",
		"BenchmarkHot-1 100 1000 ns/op 0 B/op 0 allocs/op",
		"BenchmarkHot-1 100 1010 ns/op 0 B/op 0 allocs/op",
		"BenchmarkHot-1 100 990 ns/op 0 B/op 0 allocs/op",
		"BenchmarkHot-1 100 1005 ns/op 0 B/op 0 allocs/op",
	))
	if err != nil {
		t.Fatal(err)
	}
	head, err := parseFile(writeBench(t, "head.txt",
		"BenchmarkHot-1 100 2000 ns/op 0 B/op 0 allocs/op",
		"BenchmarkHot-1 100 2020 ns/op 0 B/op 0 allocs/op",
		"BenchmarkHot-1 100 1980 ns/op 0 B/op 0 allocs/op",
		"BenchmarkHot-1 100 2010 ns/op 0 B/op 0 allocs/op",
	))
	if err != nil {
		t.Fatal(err)
	}
	_, failures := compare(base, head, 0.05, 0.10)
	if len(failures) != 1 || !strings.Contains(failures[0], "ns/op") {
		t.Fatalf("failures = %q, want one ns/op regression", failures)
	}
	// The mirror image is an improvement, not a failure.
	_, failures = compare(head, base, 0.05, 0.10)
	if len(failures) != 0 {
		t.Fatalf("speedup reported as regression: %q", failures)
	}
}

func TestCompareNoiseWithinThresholdPasses(t *testing.T) {
	base, err := parseFile(writeBench(t, "base.txt",
		"BenchmarkHot-1 100 1000 ns/op",
		"BenchmarkHot-1 100 1040 ns/op",
		"BenchmarkHot-1 100 960 ns/op",
	))
	if err != nil {
		t.Fatal(err)
	}
	head, err := parseFile(writeBench(t, "head.txt",
		"BenchmarkHot-1 100 1050 ns/op",
		"BenchmarkHot-1 100 1010 ns/op",
		"BenchmarkHot-1 100 1070 ns/op",
	))
	if err != nil {
		t.Fatal(err)
	}
	if _, failures := compare(base, head, 0.05, 0.10); len(failures) != 0 {
		t.Fatalf("~4%% drift inside the 10%% threshold failed: %q", failures)
	}
}

func TestCompareAllocRegressionExact(t *testing.T) {
	// ns/op identical; one extra alloc/op must still fail.
	base, err := parseFile(writeBench(t, "base.txt",
		"BenchmarkHot-1 100 1000 ns/op 0 B/op 0 allocs/op",
		"BenchmarkHot-1 100 1000 ns/op 0 B/op 0 allocs/op",
	))
	if err != nil {
		t.Fatal(err)
	}
	head, err := parseFile(writeBench(t, "head.txt",
		"BenchmarkHot-1 100 1000 ns/op 16 B/op 1 allocs/op",
		"BenchmarkHot-1 100 1000 ns/op 16 B/op 1 allocs/op",
	))
	if err != nil {
		t.Fatal(err)
	}
	_, failures := compare(base, head, 0.05, 0.10)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocation regression") {
		t.Fatalf("failures = %q, want one allocation regression", failures)
	}
}

func TestCompareDisjointBenchmarksInformational(t *testing.T) {
	base, err := parseFile(writeBench(t, "base.txt", "BenchmarkOld-1 100 1000 ns/op"))
	if err != nil {
		t.Fatal(err)
	}
	head, err := parseFile(writeBench(t, "head.txt", "BenchmarkNew-1 100 9000 ns/op"))
	if err != nil {
		t.Fatal(err)
	}
	rows, failures := compare(base, head, 0.05, 0.10)
	if len(failures) != 0 {
		t.Fatalf("disjoint sets failed: %q", failures)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %q, want 2 informational rows", rows)
	}
}
