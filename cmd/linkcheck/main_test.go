package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGithubAnchor(t *testing.T) {
	cases := map[string]string{
		"Feature schemas":                 "feature-schemas",
		"Outcomes and rewards":            "outcomes-and-rewards",
		"`GET /v1/stats`":                 "get-v1stats",
		"Drift response: a runbook":       "drift-response-a-runbook",
		"3. The serving layer (Service)":  "3-the-serving-layer-service",
		"snapshot versions v1–v5":         "snapshot-versions-v1v5",
		"POST /v1/streams — create":       "post-v1streams--create",
		"Adaptation (non-stationarity)":   "adaptation-non-stationarity",
		"What's persisted, what's not":    "whats-persisted-whats-not",
		"A_name with_underscores intact!": "a_name-with_underscores-intact",
	}
	for in, want := range cases {
		if got := githubAnchor(in); got != want {
			t.Errorf("githubAnchor(%q) = %q, want %q", in, got, want)
		}
	}
}

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckFile(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "other.md", "# Other Doc\n\n## Real Section\n")
	good := writeFile(t, dir, "good.md", `# Good

See [other](other.md) and [its section](other.md#real-section), or
[mine](#local-heading) and [the web](https://example.com/x#y).

## Local Heading

`+"```"+`
[not a link check](missing.md) — fenced, ignored
# Not A Heading
`+"```"+`
`)
	msgs, err := checkFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 0 {
		t.Fatalf("good file reported broken links: %v", msgs)
	}
	bad := writeFile(t, dir, "bad.md", `# Bad

[gone](missing.md), [no anchor](other.md#fake-section), [no local](#nope).
`)
	msgs, err = checkFile(bad)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 {
		t.Fatalf("bad file: %d broken links reported, want 3: %v", len(msgs), msgs)
	}
}

func TestDuplicateHeadingSuffixes(t *testing.T) {
	dir := t.TempDir()
	doc := writeFile(t, dir, "dup.md", `# Doc

[first](#section) and [second](#section-1).

## Section

## Section
`)
	msgs, err := checkFile(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 0 {
		t.Fatalf("duplicate-heading anchors reported broken: %v", msgs)
	}
}

func TestExpandWalksDirectories(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.md", "# A\n")
	sub := filepath.Join(dir, "sub")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, sub, "b.md", "# B\n")
	writeFile(t, dir, "ignored.txt", "not markdown")
	files, err := expand([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("expand found %d files, want 2: %v", len(files), files)
	}
}
