// Command linkcheck validates the repository's markdown cross-links so
// stale documentation fails CI instead of rotting silently. For every
// markdown file named (or found under a named directory) it checks each
// inline link `[text](target)`:
//
//   - relative file targets must exist on disk (resolved against the
//     linking file's directory);
//   - fragment targets — `#section` in the same file or `file.md#section`
//     — must match a heading anchor in the target file, using GitHub's
//     anchor algorithm (lowercase, punctuation stripped, spaces to
//     hyphens);
//   - absolute http(s)/mailto targets are skipped: network reachability
//     is not this tool's business.
//
// Links and headings inside fenced code blocks are ignored. Exit status
// is 1 with one line per broken link when anything dangles.
//
//	go run ./cmd/linkcheck README.md DESIGN.md docs
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links and images, capturing the
// target. Reference-style links are rare in this repository and not
// checked.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// headingRe matches ATX headings.
var headingRe = regexp.MustCompile(`^#{1,6}\s+(.*?)\s*#*\s*$`)

// anchorStripRe removes the characters GitHub drops when slugging a
// heading (everything but word characters, spaces, and hyphens).
var anchorStripRe = regexp.MustCompile(`[^\p{L}\p{N} _-]`)

// githubAnchor reproduces GitHub's heading → anchor slug: strip inline
// markup punctuation, lowercase, spaces to hyphens.
func githubAnchor(heading string) string {
	s := strings.TrimSpace(heading)
	// Inline code and emphasis markers vanish in the slug.
	s = strings.NewReplacer("`", "", "*", "", "_", "_").Replace(s)
	s = anchorStripRe.ReplaceAllString(s, "")
	s = strings.ToLower(s)
	s = strings.ReplaceAll(s, " ", "-")
	return s
}

// stripFences removes fenced code blocks so their contents are neither
// scanned for links nor counted as headings.
func stripFences(lines []string) []string {
	out := make([]string, 0, len(lines))
	inFence := false
	for _, line := range lines {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if !inFence {
			out = append(out, line)
		}
	}
	return out
}

// anchorsOf collects the heading anchors of one markdown file,
// including GitHub's -1/-2 suffixes for duplicate headings.
func anchorsOf(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	anchors := make(map[string]bool)
	counts := make(map[string]int)
	for _, line := range stripFences(strings.Split(string(data), "\n")) {
		m := headingRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		a := githubAnchor(m[1])
		if n := counts[a]; n > 0 {
			anchors[fmt.Sprintf("%s-%d", a, n)] = true
		} else {
			anchors[a] = true
		}
		counts[a]++
	}
	return anchors, nil
}

// anchorCache memoises anchorsOf per file: heavily cross-linked docs
// (many fragment links into the same reference file) are read and
// scanned once instead of once per link.
var anchorCache = map[string]map[string]bool{}

func cachedAnchorsOf(path string) (map[string]bool, error) {
	if a, ok := anchorCache[path]; ok {
		return a, nil
	}
	a, err := anchorsOf(path)
	if err != nil {
		return nil, err
	}
	anchorCache[path] = a
	return a, nil
}

// checkFile validates every link in one markdown file, returning one
// message per broken link.
func checkFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var broken []string
	lines := stripFences(strings.Split(string(data), "\n"))
	for _, line := range lines {
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			file, frag, _ := strings.Cut(target, "#")
			resolved := path
			if file != "" {
				resolved = filepath.Join(filepath.Dir(path), file)
				if _, err := os.Stat(resolved); err != nil {
					broken = append(broken, fmt.Sprintf("%s: broken link %q: %s does not exist", path, target, resolved))
					continue
				}
			}
			if frag == "" {
				continue
			}
			if !strings.HasSuffix(strings.ToLower(resolved), ".md") {
				continue // fragments into non-markdown files are not checkable
			}
			anchors, err := cachedAnchorsOf(resolved)
			if err != nil {
				return nil, err
			}
			if !anchors[frag] {
				broken = append(broken, fmt.Sprintf("%s: broken link %q: no heading %q in %s", path, target, frag, resolved))
			}
		}
	}
	return broken, nil
}

// expand resolves the CLI arguments into the markdown files to check:
// files are taken as-is, directories are walked for *.md.
func expand(args []string) ([]string, error) {
	var files []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(strings.ToLower(path), ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return files, nil
}

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck <file.md|dir>...")
		os.Exit(2)
	}
	files, err := expand(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "linkcheck:", err)
		os.Exit(2)
	}
	broken := 0
	for _, f := range files {
		msgs, err := checkFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(2)
		}
		for _, msg := range msgs {
			fmt.Fprintln(os.Stderr, msg)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken links in %d files\n", broken, len(files))
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d files ok\n", len(files))
}
