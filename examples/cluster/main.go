// Cluster: BanditWare embedded in the full scheduling loop.
//
// Simulates an NDP-like Kubernetes cluster (discrete-event: node pools
// per hardware class, FIFO queues, contention) receiving a Poisson stream
// of Cycles workflows. Three selectors are compared on identical arrival
// streams: BanditWare learning online, uniform random selection, and the
// ground-truth oracle.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"banditware"
	"banditware/internal/cluster"
	"banditware/internal/core"
	"banditware/internal/rng"
)

func main() {
	trace, err := banditware.GenerateCycles(banditware.CyclesOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	const nJobs = 300
	mkArrivals := func() []cluster.Arrival {
		r := rng.New(21)
		arr := make([]cluster.Arrival, nJobs)
		t := 0.0
		for i := range arr {
			t += r.Exp(1.0 / 100) // one workflow every ~100 s
			arr[i] = cluster.Arrival{
				ID: i, Time: t,
				Features: []float64{float64(100 + r.Intn(401))},
			}
		}
		return arr
	}
	mkCluster := func() *cluster.Cluster {
		specs := make([]cluster.NodeSpec, len(trace.Hardware))
		for i, hw := range trace.Hardware {
			specs[i] = cluster.NodeSpec{Config: hw, Count: 4, Slots: 4}
		}
		c, err := cluster.New(cluster.Options{Nodes: specs, ContentionFactor: 0.05})
		if err != nil {
			log.Fatal(err)
		}
		return c
	}
	noise := rng.New(33)
	runtimeOf := func(arm int, x []float64) float64 {
		rt := trace.SampleRuntime(arm, x, noise)
		if rt < 1 {
			rt = 1
		}
		return rt
	}

	// BanditWare selector, learning from completions.
	bandit, err := core.New(trace.Hardware, 1, core.Options{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	mB, _, err := mkCluster().RunOnline(mkArrivals(),
		func(x []float64) (int, error) {
			d, err := bandit.Recommend(x)
			return d.Arm, err
		},
		runtimeOf,
		func(arm int, x []float64, rt float64) error { return bandit.Observe(arm, x, rt) },
	)
	if err != nil {
		log.Fatal(err)
	}

	// Random selector.
	rr := rng.New(3)
	mR, _, err := mkCluster().RunOnline(mkArrivals(),
		func(x []float64) (int, error) { return rr.Intn(len(trace.Hardware)), nil },
		runtimeOf, nil,
	)
	if err != nil {
		log.Fatal(err)
	}

	// Oracle selector.
	mO, _, err := mkCluster().RunOnline(mkArrivals(),
		func(x []float64) (int, error) { return trace.BestArm(x, 0, 0), nil },
		runtimeOf, nil,
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d Cycles workflows through the simulated cluster:\n\n", nJobs)
	fmt.Println("selector     mean turnaround   mean wait   makespan")
	for _, row := range []struct {
		name string
		m    cluster.Metrics
	}{
		{"banditware", mB}, {"random", mR}, {"oracle", mO},
	} {
		fmt.Printf("%-12s %12.0f s %9.1f s %9.0f s\n",
			row.name, row.m.MeanTurn, row.m.MeanWait, row.m.Makespan)
	}
	fmt.Printf("\nbandit finished %d observations with epsilon %.3f\n",
		bandit.Round(), bandit.Epsilon())
	fmt.Println("expected: banditware between random and oracle, close to oracle.")
}
