// LLM: GPU-aware hardware recommendation (the paper's future work).
//
// Generates an LLM-inference workload trace over GPU-bearing hardware
// ({CPU-only, 1, 2, 4 GPUs}), trains BanditWare online, and shows how the
// recommendation shifts with model size and how the ratio tolerance
// releases GPUs that small models do not need.
//
//	go run ./examples/llm
package main

import (
	"fmt"
	"log"

	"banditware"
	"banditware/internal/rng"
)

func main() {
	trace, err := banditware.GenerateLLM(banditware.LLMOptions{Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LLM trace: %d runs over %v\n\n", len(trace.Runs), trace.Hardware.Names())

	rec, err := banditware.New(trace.Hardware, trace.Dim(), banditware.Options{
		Seed:  17,
		Alpha: 0.97,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Online loop: sample workloads from the trace, observe synthetic
	// runtimes from the generative model.
	r := rng.New(19)
	for i := 0; i < 300; i++ {
		run := trace.Runs[r.Intn(len(trace.Runs))]
		d, err := rec.Recommend(run.Features)
		if err != nil {
			log.Fatal(err)
		}
		rt := trace.SampleRuntime(d.Arm, run.Features, r)
		if err := rec.Observe(d.Arm, run.Features, rt); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("trained on %d online rounds (epsilon %.3f)\n\n", rec.Round(), rec.Epsilon())

	fmt.Println("recommendations by model size (prompt 1024, gen 256, batch 4):")
	fmt.Println("model     fastest        with 15% tolerance")
	for _, bParams := range []float64{1, 7, 13, 34, 70} {
		x := []float64{1024, 256, 4, bParams}
		preds, err := rec.PredictAll(x)
		if err != nil {
			log.Fatal(err)
		}
		strict := banditware.TolerantSelect(preds, trace.Hardware, 0, 0)
		tolerant := banditware.TolerantSelect(preds, trace.Hardware, 0.15, 0)
		fmt.Printf("%4.0fB     %-12s   %s\n",
			bParams, trace.Hardware[strict].Name, trace.Hardware[tolerant].Name)
	}
	fmt.Println("\nground truth for comparison:")
	for _, bParams := range []float64{1, 7, 13, 34, 70} {
		x := []float64{1024, 256, 4, bParams}
		best := trace.BestArm(x, 0, 0)
		fmt.Printf("%4.0fB     %s\n", bParams, trace.Hardware[best].Name)
	}
}
