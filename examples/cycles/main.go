// Cycles: the paper's Experiment 1 end to end.
//
// Generates the 80-run Cycles agroecosystem-workflow trace on four
// synthetic hardware settings with clear performance trade-offs, runs the
// online bandit experiment (100 rounds × 10 simulations), and renders the
// RMSE/accuracy convergence as ASCII charts — the content of the paper's
// Figures 3 and 4.
//
//	go run ./examples/cycles
package main

import (
	"fmt"
	"log"

	"banditware"
	"banditware/internal/core"
	"banditware/internal/experiment"
	"banditware/internal/textplot"
)

func main() {
	trace, err := banditware.GenerateCycles(banditware.CyclesOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Cycles trace: %d runs on %d synthetic hardware settings\n",
		len(trace.Runs), len(trace.Hardware))
	for i, hw := range trace.Hardware {
		fmt.Printf("  %s: makespan(100 tasks) = %4.0f s, makespan(500 tasks) = %4.0f s\n",
			hw, trace.Truth(i, []float64{100}), trace.Truth(i, []float64{500}))
	}
	fmt.Println("\nbest hardware by workflow size (ground truth):")
	for _, tasks := range []float64{100, 150, 200, 300, 500} {
		best := trace.BestArm([]float64{tasks}, 0, 0)
		fmt.Printf("  %3.0f tasks -> %s\n", tasks, trace.Hardware[best].Name)
	}

	res, err := experiment.RunBandit(experiment.BanditConfig{
		Dataset: trace,
		Options: core.Options{ToleranceSeconds: 20},
		NRounds: 100,
		NSim:    10,
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}

	rmse := make([]float64, len(res.Rounds))
	acc := make([]float64, len(res.Rounds))
	for i, r := range res.Rounds {
		rmse[i] = r.RMSEMean
		acc[i] = r.AccMean
	}
	fmt.Println("\nRMSE over 100 rounds (dashes = full-fit baseline, the paper's red line):")
	fmt.Print(textplot.Line(rmse, 64, 10, res.BaselineRMSE))
	fmt.Println("\naccuracy over 100 rounds (tolerance 20 s):")
	fmt.Print(textplot.Line(acc, 64, 10, res.BaselineAccuracy))

	last := res.Rounds[len(res.Rounds)-1]
	fmt.Printf("\nfinal RMSE %.1f (baseline %.1f), final accuracy %.2f (random %.2f)\n",
		last.RMSEMean, res.BaselineRMSE, last.AccMean, res.RandomAccuracy)
}
