// Serverless fleet: the end-to-end serving scenario as a demo.
//
// Runs the seeded serverless/HPC-fleet simulation from internal/scenario
// — thousands of Zipf-skewed function streams on a five-tier fleet,
// diurnal traffic, a mid-run flash crowd that thrashes two tiers' warm
// pools — through the real banditware service, then renders what the
// acceptance suite asserts: cumulative end-to-end latency regret versus
// the random and hindsight-static baselines, per-phase decision
// accuracy, and how fast the drift detectors localized the flash crowd.
//
//	go run ./examples/serverless            # quick preset (~1 s)
//	go run ./examples/serverless -full      # full acceptance-scale fleet
//	go run ./examples/serverless -svg out.svg
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"banditware/internal/scenario"
	"banditware/internal/svgplot"
	"banditware/internal/textplot"
)

func main() {
	full := flag.Bool("full", false, "run the full acceptance-scale fleet (2000 streams, 100k invocations)")
	seed := flag.Uint64("seed", 1, "scenario seed; same seed, same fleet")
	svg := flag.String("svg", "", "also write the regret curves as an SVG chart to this file")
	flag.Parse()

	cfg := scenario.Quick(*seed)
	if *full {
		cfg = scenario.Default(*seed)
	}
	fmt.Printf("serverless fleet: %d streams, %d invocations over %.0f min, flash crowd at [%.0f s, %.0f s)\n",
		cfg.Streams, cfg.Requests, cfg.Horizon/60, cfg.FlashStart, cfg.FlashEnd)

	res, err := scenario.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if res.Errors != 0 {
		log.Fatalf("%d request errors (first: %v)", res.Errors, res.ErrSamples)
	}

	fmt.Printf("\n%d decisions, %d cold starts, %d/%d streams served\n",
		res.Decisions, res.ColdStarts, res.ServedStreams, cfg.Streams)
	fmt.Printf("cumulative end-to-end latency above oracle (regret, seconds):\n")
	fmt.Printf("  bandit %9.0f\n  static %9.0f  (hindsight-best fixed tier: %s)\n  random %9.0f\n",
		res.BanditRegret(), res.StaticRegret(), cfg.Hardware[res.StaticArm].Name, res.RandomRegret())

	// Regret growth over the run; the dashed baseline is the random
	// policy's final regret.
	bandit := make([]float64, len(res.Curve))
	random := make([]float64, len(res.Curve))
	for i, p := range res.Curve {
		bandit[i] = p.Bandit - p.Oracle
		random[i] = p.Random - p.Oracle
	}
	if len(bandit) > 0 {
		fmt.Println("\ncumulative regret over the run (dashes = random policy's final regret):")
		fmt.Print(textplot.Line(bandit, 64, 10, random[len(random)-1]))
	}

	fmt.Println("\nper-phase decision accuracy (fraction of invocations sent to the truly best tier):")
	labels := make([]string, len(res.Phases))
	accs := make([]float64, len(res.Phases))
	for i, p := range res.Phases {
		labels[i] = fmt.Sprintf("%s (%d)", p.Name, p.Decisions)
		accs[i] = p.Accuracy
	}
	fmt.Print(textplot.Histogram(labels, accs, 48))

	fmt.Println("\nflash-crowd drift detection (Page-Hinkley on reward residuals):")
	for _, fd := range res.FlashDetections {
		if fd.Detected {
			fmt.Printf("  %s: detected %.1f s after onset\n", fd.Stream, fd.DelaySeconds)
		} else {
			fmt.Printf("  %s: NOT detected\n", fd.Stream)
		}
	}
	fmt.Printf("  stray detections outside the flash set: %d\n", res.StrayDetections)

	if *svg != "" {
		t := make([]float64, len(res.Curve))
		for i, p := range res.Curve {
			t[i] = p.T
		}
		plot := svgplot.New("Serverless fleet: cumulative latency regret", "time (s)", "regret (s)")
		plot.Add(svgplot.Series{Name: "bandit", X: t, Y: bandit})
		plot.Add(svgplot.Series{Name: "random", X: t, Y: random, Dashed: true})
		f, err := os.Create(*svg)
		if err != nil {
			log.Fatal(err)
		}
		if err := plot.Render(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nregret chart written to %s\n", *svg)
	}
}
