// Quickstart: the smallest complete BanditWare loop, with named
// contexts and cost-aware rewards.
//
// Three hardware settings with different (unknown to the bandit) linear
// runtime models; workflows described by a declared feature schema —
// a numeric size and a categorical dataset kind that one-hot expands
// into the model. The program runs the online recommend → execute →
// observe loop for 300 workflows, shows a malformed context being
// rejected field by field, and prints the learned models against the
// ground truth. It closes with the reward pipeline: the same workload
// served once by raw runtime and once by the cost_weighted reward,
// which converges to cheaper hardware at a small runtime premium — the
// paper's "sufficiently good while wasting fewer resources" tradeoff.
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"

	"banditware"
	"banditware/internal/rng"
)

func main() {
	hw := banditware.HardwareSet{
		{Name: "small", CPUs: 2, MemoryGB: 16},
		{Name: "medium", CPUs: 4, MemoryGB: 24},
		{Name: "large", CPUs: 8, MemoryGB: 32},
	}
	// Ground truth the bandit has to discover:
	// runtime = slope·size + base (+ sparse penalty when the dataset is
	// sparse — small machines suffer most from the irregular access).
	slopes := []float64{8, 4, 2}
	bases := []float64{30, 90, 200}
	sparsePenalty := []float64{120, 60, 10}

	// The stream's feature layout, declared by name: submitting
	// {"size": ..., "dataset": ...} is the whole client contract — no
	// positional vectors to keep in sync.
	sch := &banditware.Schema{Fields: []banditware.Field{
		{Name: "size", Required: true, Min: fp(0), Max: fp(200)},
		{Name: "dataset", Kind: banditware.KindCategorical, Categories: []string{"dense", "sparse"}},
	}}

	svc := banditware.NewService(banditware.ServiceOptions{})
	if err := svc.CreateStream("quickstart", banditware.StreamConfig{
		Hardware: hw,
		Schema:   sch, // dim (1 numeric + 2 one-hot = 3) derives from the schema
		Options:  banditware.Options{Seed: 42},
	}); err != nil {
		log.Fatal(err)
	}

	r := rng.New(7)
	kinds := []string{"dense", "sparse"}
	for i := 0; i < 300; i++ {
		size := r.Uniform(5, 120)
		kind := kinds[int(r.Uniform(0, 2))]
		t, err := svc.RecommendCtx("quickstart", banditware.Context{
			Numeric:     map[string]float64{"size": size},
			Categorical: map[string]string{"dataset": kind},
		})
		if err != nil {
			log.Fatal(err)
		}
		// "Run" the workflow on the chosen hardware: the measured
		// runtime is the true model plus noise.
		runtime := slopes[t.Arm]*size + bases[t.Arm] + r.Normal(0, 5)
		if kind == "sparse" {
			runtime += sparsePenalty[t.Arm]
		}
		if err := svc.Observe(t.ID, runtime); err != nil {
			log.Fatal(err)
		}
	}

	// A malformed context never reaches the models — it fails with one
	// error per offending field.
	_, err := svc.RecommendCtx("quickstart", banditware.Context{
		Numeric:     map[string]float64{"size": 5000, "cores": 4},
		Categorical: map[string]string{"dataset": "wide"},
	})
	if errors.Is(err, banditware.ErrSchemaViolation) {
		var v *banditware.ValidationError
		errors.As(err, &v)
		fmt.Println("malformed context rejected:")
		for _, fe := range v.Fields() {
			fmt.Printf("  %-8s %s\n", fe.Field+":", fe.Reason)
		}
	}

	info, err := svc.StreamInfo("quickstart")
	if err != nil {
		log.Fatal(err)
	}
	eps, _ := svc.Epsilon("quickstart")
	fmt.Printf("\nafter %d workflows (epsilon now %.3f):\n\n", info.Round, eps)
	fmt.Println("hardware     true model                     learned model")
	for i := range hw {
		m, err := svc.Model("quickstart", i)
		if err != nil {
			log.Fatal(err)
		}
		// Weights follow the schema's declared order: size, then the
		// dense/sparse one-hot block (whose difference is the penalty).
		fmt.Printf("%-12s %5.2f·size + %5.1f·sparse + %6.1f    %5.2f·size + %5.1f·sparse + %6.1f\n",
			hw[i].Name, slopes[i], sparsePenalty[i], bases[i],
			m.Weights[0], m.Weights[2]-m.Weights[1], m.Bias+m.Weights[1])
	}

	fmt.Println("\nrecommendations after learning (exploitation only):")
	for _, c := range []struct {
		size float64
		kind string
	}{{10, "dense"}, {40, "sparse"}, {100, "dense"}} {
		arm, err := svc.Exploit("quickstart", mustEncode(svc, c.size, c.kind))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %5.1f %-6s -> %s\n", c.size, c.kind, hw[arm].Name)
	}

	costAwareDemo(svc)
}

// costAwareDemo serves the same workload through two streams that see
// identical traffic but learn from different rewards: bare runtime vs
// cost_weighted (runtime + λ·Cost(hw)). The big machine is slightly
// faster, so the runtime stream picks it; the cost stream settles on
// the small one, trading a little runtime for a much smaller
// allocation.
func costAwareDemo(svc *banditware.Service) {
	hw := banditware.HardwareSet{
		{Name: "small", CPUs: 2, MemoryGB: 16},  // Cost 6
		{Name: "large", CPUs: 16, MemoryGB: 64}, // Cost 32
	}
	for name, rw := range map[string]banditware.RewardSpec{
		"by-runtime": {},
		"by-cost":    {Type: banditware.RewardCostWeighted, Lambda: 1},
	} {
		if err := svc.CreateStream(name, banditware.StreamConfig{
			Hardware: hw, Dim: 1,
			Options: banditware.Options{Seed: 9},
			Reward:  rw,
		}); err != nil {
			log.Fatal(err)
		}
	}
	r := rng.New(21)
	runtimes := []func(x float64) float64{
		func(x float64) float64 { return 52 + 0.1*x }, // small
		func(x float64) float64 { return 48 + 0.1*x }, // large: barely faster
	}
	for i := 0; i < 200; i++ {
		x := r.Uniform(5, 120)
		for _, name := range []string{"by-runtime", "by-cost"} {
			t, err := svc.Recommend(name, []float64{x})
			if err != nil {
				log.Fatal(err)
			}
			// Structured outcome: runtime plus a named metric; the
			// stream's reward collapses it to the learning signal.
			err = svc.ObserveOutcome(t.ID, banditware.Outcome{
				Runtime: runtimes[t.Arm](x) + r.Normal(0, 2),
				Metrics: map[string]float64{"memory_gb": 2 + x/40},
			})
			if err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Println("\ncost-aware serving (same workload, two reward regimes):")
	for _, name := range []string{"by-runtime", "by-cost"} {
		arm, err := svc.Exploit(name, []float64{60})
		if err != nil {
			log.Fatal(err)
		}
		info, err := svc.StreamInfo(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s (reward %-13s) -> %-5s  mean runtime %.1fs, cumulative reward %.0f\n",
			name, info.Reward.Type, hw[arm].Name,
			info.RuntimeTotal/float64(info.Observed), info.RewardTotal)
	}
}

// mustEncode builds the model-space vector for an exploit query using
// the stream's own schema (Exploit takes raw vectors; the serving
// routes RecommendCtx/ObserveDirectCtx encode internally).
func mustEncode(svc *banditware.Service, size float64, kind string) []float64 {
	sch, err := svc.StreamSchema("quickstart")
	if err != nil {
		log.Fatal(err)
	}
	x, err := sch.Encode(banditware.Context{
		Numeric:     map[string]float64{"size": size},
		Categorical: map[string]string{"dataset": kind},
	})
	if err != nil {
		log.Fatal(err)
	}
	return x
}

func fp(v float64) *float64 { return &v }
