// Quickstart: the smallest complete BanditWare loop.
//
// Three hardware settings with different (unknown to the bandit) linear
// runtime models; workflows described by one feature. The program runs
// the online recommend → execute → observe loop for 200 workflows and
// prints the learned models against the ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"banditware"
	"banditware/internal/rng"
)

func main() {
	hw := banditware.HardwareSet{
		{Name: "small", CPUs: 2, MemoryGB: 16},
		{Name: "medium", CPUs: 4, MemoryGB: 24},
		{Name: "large", CPUs: 8, MemoryGB: 32},
	}
	// Ground truth the bandit has to discover: runtime = slope·x + base.
	slopes := []float64{8, 4, 2}
	bases := []float64{30, 90, 200}

	rec, err := banditware.New(hw, 1, banditware.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	r := rng.New(7)
	explored := 0
	for i := 0; i < 200; i++ {
		x := []float64{r.Uniform(5, 120)} // workflow size
		d, err := rec.Recommend(x)
		if err != nil {
			log.Fatal(err)
		}
		if d.Explored {
			explored++
		}
		// "Run" the workflow on the chosen hardware: the measured
		// runtime is the true model plus noise.
		runtime := slopes[d.Arm]*x[0] + bases[d.Arm] + r.Normal(0, 5)
		if err := rec.Observe(d.Arm, x, runtime); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("after %d workflows (%d explored, epsilon now %.3f):\n\n",
		rec.Round(), explored, rec.Epsilon())
	fmt.Println("hardware     true model          learned model")
	for i := range hw {
		m, err := rec.Model(i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %5.2f·x + %6.2f    %5.2f·x + %6.2f\n",
			hw[i].Name, slopes[i], bases[i], m.Weights[0], m.Bias)
	}

	fmt.Println("\nrecommendations after learning (exploitation only):")
	for _, x := range []float64{10, 40, 100} {
		preds, err := rec.PredictAll([]float64{x})
		if err != nil {
			log.Fatal(err)
		}
		arm := banditware.TolerantSelect(preds, hw, 0, 0)
		fmt.Printf("  workflow size %5.1f -> %s (predicted %.0f s)\n",
			x, hw[arm].Name, preds[arm])
	}
}
