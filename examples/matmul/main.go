// MatMul: the paper's third workload with the *real* kernel.
//
// Runs the actual fully-parallel tiled matrix-squaring kernel at several
// sizes and worker counts (each worker count modelling a hardware
// setting's CPU allocation), feeds the measured wall-clock runtimes to
// BanditWare online, and shows the recommendations shifting from
// "parallelism doesn't matter" at small sizes to "give me all the cores"
// at large sizes.
//
//	go run ./examples/matmul
package main

import (
	"fmt"
	"log"

	"banditware"
	"banditware/internal/rng"
	"banditware/internal/workloads"
)

func main() {
	// Hardware settings = worker caps for the kernel.
	hw := banditware.HardwareSet{
		{Name: "1-core", CPUs: 1, MemoryGB: 8},
		{Name: "2-core", CPUs: 2, MemoryGB: 16},
		{Name: "4-core", CPUs: 4, MemoryGB: 16},
	}
	rec, err := banditware.New(hw, 1, banditware.Options{Seed: 5, Alpha: 0.9})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("online loop over real kernel executions (feature = matrix size):")
	r := rng.New(9)
	sizes := []int{64, 96, 128, 192, 256, 384, 512}
	for round := 0; round < 28; round++ {
		n := sizes[r.Intn(len(sizes))]
		x := []float64{float64(n)}
		d, err := rec.Recommend(x)
		if err != nil {
			log.Fatal(err)
		}
		res, err := workloads.RunMatMulKernel(workloads.MatMulSpec{
			Size: n, Sparsity: 0.1, MinValue: -10, MaxValue: 10,
			Workers: hw[d.Arm].CPUs, Seed: uint64(round),
		})
		if err != nil {
			log.Fatal(err)
		}
		secs := res.Elapsed.Seconds()
		if err := rec.Observe(d.Arm, x, secs); err != nil {
			log.Fatal(err)
		}
		mode := "exploit"
		if d.Explored {
			mode = "explore"
		}
		fmt.Printf("  round %2d: size %4d on %-7s (%s) -> %8.2f ms\n",
			round+1, n, hw[d.Arm].Name, mode, secs*1000)
	}

	fmt.Println("\nlearned runtime models (seconds = w·size + b):")
	for i := range hw {
		m, err := rec.Model(i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s %.6f·size %+.4f\n", hw[i].Name, m.Weights[0], m.Bias)
	}

	fmt.Println("\nrecommendations after learning:")
	for _, n := range []float64{64, 256, 512} {
		preds, err := rec.PredictAll([]float64{n})
		if err != nil {
			log.Fatal(err)
		}
		pick := banditware.TolerantSelect(preds, hw, 0, 0)
		// Allow a 20% slowdown in exchange for fewer cores.
		tolerant := banditware.TolerantSelect(preds, hw, 0.2, 0)
		fmt.Printf("  size %4.0f: fastest %-7s | 20%%-tolerant %s\n",
			n, hw[pick].Name, hw[tolerant].Name)
	}
}
