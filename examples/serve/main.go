// Command serve demonstrates the BanditWare serving layer end to end:
// it starts the HTTP service in-process on a loopback port, creates two
// independent recommender streams over the wire — a BP3D-style stream
// running the paper's Algorithm 1 and a matmul-style stream running
// LinUCB (the serving layer is policy-agnostic) — and attaches a LinUCB
// shadow to the Algorithm 1 stream, so the two policies can be A/B
// compared on the same live traffic without the shadow ever serving.
// Both streams are then hammered concurrently with recommend → run →
// observe round trips, exactly as National Data Platform applications
// would. The demo finishes by printing /v1/stats, each stream's
// exploit-mode choice, and the shadow's evaluation counters.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"sync"

	"banditware"
	"banditware/internal/rng"
)

func main() {
	svc := banditware.NewService(banditware.ServiceOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, banditware.ServiceHandler(svc))
	base := "http://" + ln.Addr().String()
	fmt.Printf("service listening on %s\n\n", base)

	// Create two streams over the wire, like two NDP applications
	// registering themselves. "bp3d" runs the paper's Algorithm 1;
	// "matmul" opts into LinUCB via the policy field.
	post(base+"/v1/streams", map[string]any{
		"name": "bp3d", "hardware_spec": "H0=2x16;H1=3x24;H2=4x16", "dim": 1, "seed": 1,
	})
	post(base+"/v1/streams", map[string]any{
		"name": "matmul", "hardware_spec": "H0=2x16;H1=3x24;H2=4x16;H3=8x32;H4=16x64",
		"dim": 1, "seed": 2,
		"policy": map[string]any{"type": "linucb", "beta": 1.5},
	})

	// Attach a LinUCB shadow to the Algorithm 1 stream: it sees every
	// context and observation but never serves, and its agreement/regret
	// counters answer "what if we switched bp3d to LinUCB?".
	post(base+"/v1/streams/bp3d/shadows", map[string]any{
		"name": "linucb-candidate", "policy": map[string]any{"type": "linucb"},
	})

	// Per-stream ground truth: runtime = slope[arm]·x + intercept + noise.
	truth := map[string][]float64{
		"bp3d":   {5, 3, 1},
		"matmul": {8, 6, 4, 2, 1},
	}

	// Drive both streams from concurrent clients.
	const clientsPerStream, rounds = 4, 50
	var wg sync.WaitGroup
	for stream, slopes := range truth {
		for c := 0; c < clientsPerStream; c++ {
			wg.Add(1)
			go func(stream string, slopes []float64, seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				noise := rng.New(uint64(seed) + 100)
				for i := 0; i < rounds; i++ {
					x := 10 + 90*r.Float64()
					var t banditware.Ticket
					post(base+"/v1/streams/"+stream+"/recommend",
						map[string]any{"features": []float64{x}}, &t)
					runtime := slopes[t.Arm]*x + 20 + noise.Normal(0, 1)
					post(base+"/v1/observe",
						map[string]any{"ticket": t.ID, "runtime": runtime})
				}
			}(stream, slopes, int64(len(stream)*10+c))
		}
	}
	wg.Wait()

	var stats banditware.ServiceStats
	get(base+"/v1/stats", &stats)
	fmt.Println("stream     policy      rounds  epsilon  pending  issued  observed")
	for _, s := range stats.Streams {
		fmt.Printf("%-10s %-10s  %6d  %7.3f  %7d  %6d  %8d\n",
			s.Name, s.Policy, s.Round, s.Epsilon, s.Pending, s.Issued, s.Observed)
	}

	// Both streams should now exploit their cheapest-slope arm for a
	// large workflow.
	fmt.Println()
	for stream, slopes := range truth {
		var t banditware.Ticket
		post(base+"/v1/streams/"+stream+"/recommend",
			map[string]any{"features": []float64{80}}, &t)
		fmt.Printf("%s: recommends %s for x=80 (best slope is arm %d)\n",
			stream, t.Hardware, len(slopes)-1)
	}

	// The shadow's live A/B verdict on bp3d: how often the candidate
	// agreed with Algorithm 1, its replay-estimated mean runtime on
	// agreed rounds, and the model-estimated regret of switching
	// (negative = the candidate's choices look faster).
	var shadows struct {
		Shadows []banditware.ShadowInfo `json:"shadows"`
	}
	get(base+"/v1/streams/bp3d/shadows", &shadows)
	fmt.Println()
	for _, sh := range shadows.Shadows {
		meanMatched := 0.0
		if sh.Agreements > 0 {
			meanMatched = sh.MatchedRuntimeTotal / float64(sh.Agreements)
		}
		fmt.Printf("bp3d shadow %q (%s): %d/%d agreements, replay mean runtime %.1fs, est. regret %+.1fs\n",
			sh.Name, sh.Policy, sh.Agreements, sh.Observations, meanMatched, sh.EstimatedRegret)
	}
}

// post sends a JSON body and decodes the JSON response into out (if any).
func post(url string, body any, out ...any) {
	buf, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST %s: %s: %s", url, resp.Status, e["error"])
	}
	if len(out) > 0 {
		if err := json.NewDecoder(resp.Body).Decode(out[0]); err != nil {
			log.Fatal(err)
		}
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
