// Command serve demonstrates the BanditWare serving layer end to end:
// it starts the HTTP service in-process on a loopback port, creates two
// independent recommender streams over the wire (a BP3D-style stream on
// NDP hardware and a matmul-style stream on a five-option set), then
// hammers both concurrently with recommend → run → observe round trips,
// exactly as National Data Platform applications would. Each stream
// learns its own synthetic runtime surface; the demo finishes by
// printing /v1/stats and each stream's exploit-mode choice.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"sync"

	"banditware"
	"banditware/internal/rng"
)

func main() {
	svc := banditware.NewService(banditware.ServiceOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, banditware.ServiceHandler(svc))
	base := "http://" + ln.Addr().String()
	fmt.Printf("service listening on %s\n\n", base)

	// Create two streams over the wire, like two NDP applications
	// registering themselves.
	post(base+"/v1/streams", map[string]any{
		"name": "bp3d", "hardware_spec": "H0=2x16;H1=3x24;H2=4x16", "dim": 1, "seed": 1,
	})
	post(base+"/v1/streams", map[string]any{
		"name": "matmul", "hardware_spec": "H0=2x16;H1=3x24;H2=4x16;H3=8x32;H4=16x64",
		"dim": 1, "seed": 2, "tolerance_ratio": 0.05,
	})

	// Per-stream ground truth: runtime = slope[arm]·x + intercept + noise.
	truth := map[string][]float64{
		"bp3d":   {5, 3, 1},
		"matmul": {8, 6, 4, 2, 1},
	}

	// Drive both streams from concurrent clients.
	const clientsPerStream, rounds = 4, 50
	var wg sync.WaitGroup
	for stream, slopes := range truth {
		for c := 0; c < clientsPerStream; c++ {
			wg.Add(1)
			go func(stream string, slopes []float64, seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				noise := rng.New(uint64(seed) + 100)
				for i := 0; i < rounds; i++ {
					x := 10 + 90*r.Float64()
					var t banditware.Ticket
					post(base+"/v1/streams/"+stream+"/recommend",
						map[string]any{"features": []float64{x}}, &t)
					runtime := slopes[t.Arm]*x + 20 + noise.Normal(0, 1)
					post(base+"/v1/observe",
						map[string]any{"ticket": t.ID, "runtime": runtime})
				}
			}(stream, slopes, int64(len(stream)*10+c))
		}
	}
	wg.Wait()

	var stats banditware.ServiceStats
	get(base+"/v1/stats", &stats)
	fmt.Println("stream     rounds  epsilon  pending  issued  observed")
	for _, s := range stats.Streams {
		fmt.Printf("%-10s %6d  %7.3f  %7d  %6d  %8d\n",
			s.Name, s.Round, s.Epsilon, s.Pending, s.Issued, s.Observed)
	}

	// Both streams should now exploit their cheapest-slope arm for a
	// large workflow.
	fmt.Println()
	for stream, slopes := range truth {
		var t banditware.Ticket
		post(base+"/v1/streams/"+stream+"/recommend",
			map[string]any{"features": []float64{80}}, &t)
		fmt.Printf("%s: recommends %s for x=80 (best slope is arm %d)\n",
			stream, t.Hardware, len(slopes)-1)
	}
}

// post sends a JSON body and decodes the JSON response into out (if any).
func post(url string, body any, out ...any) {
	buf, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST %s: %s: %s", url, resp.Status, e["error"])
	}
	if len(out) > 0 {
		if err := json.NewDecoder(resp.Body).Decode(out[0]); err != nil {
			log.Fatal(err)
		}
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
