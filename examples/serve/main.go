// Command serve demonstrates the BanditWare serving layer end to end:
// it starts the HTTP service in-process on a loopback port, creates two
// independent recommender streams over the wire — a BP3D-style stream
// running the paper's Algorithm 1 behind a declared feature schema
// (named, validated, normalized contexts) and a matmul-style stream
// running LinUCB on raw vectors (the serving layer is policy- and
// schema-agnostic) — and attaches a LinUCB shadow to the Algorithm 1
// stream, so the two policies can be A/B compared on the same live
// traffic without the shadow ever serving. Both streams are then
// hammered concurrently with recommend → run → observe round trips,
// exactly as National Data Platform applications would. The demo
// finishes by printing a 422 schema rejection, /v1/stats, each
// stream's choice for a large workflow, and the shadow's evaluation
// counters — and closes with the reward pipeline: two streams serving
// the same workload over the wire, one learning from raw runtime and
// one from the cost_weighted reward ({"reward": ...} on create,
// {"outcome": ...} observe bodies), with the cost-aware stream
// converging to cheaper hardware.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"sync"

	"banditware"
	"banditware/internal/rng"
)

func main() {
	svc := banditware.NewService(banditware.ServiceOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, banditware.ServiceHandler(svc))
	base := "http://" + ln.Addr().String()
	fmt.Printf("service listening on %s\n\n", base)

	// Create two streams over the wire, like two NDP applications
	// registering themselves. "bp3d" runs the paper's Algorithm 1 behind
	// a feature schema: clients submit {"area": ..., "fuel": ...} and
	// the service validates, one-hot expands, and encodes — its dim
	// (1 numeric + 2 one-hot = 3) derives from the schema. "matmul"
	// opts into LinUCB and stays on raw positional vectors.
	post(base+"/v1/streams", map[string]any{
		"name": "bp3d", "hardware_spec": "H0=2x16;H1=3x24;H2=4x16", "seed": 1,
		"schema": map[string]any{
			"fields": []map[string]any{
				{"name": "area", "required": true, "min": 0},
				{"name": "fuel", "kind": "categorical", "categories": []string{"grass", "timber"}},
			},
		},
	})
	post(base+"/v1/streams", map[string]any{
		"name": "matmul", "hardware_spec": "H0=2x16;H1=3x24;H2=4x16;H3=8x32;H4=16x64",
		"dim": 1, "seed": 2,
		"policy": map[string]any{"type": "linucb", "beta": 1.5},
	})

	// Attach a LinUCB shadow to the Algorithm 1 stream: it sees every
	// context and observation but never serves, and its agreement/regret
	// counters answer "what if we switched bp3d to LinUCB?".
	post(base+"/v1/streams/bp3d/shadows", map[string]any{
		"name": "linucb-candidate", "policy": map[string]any{"type": "linucb"},
	})

	// Per-stream ground truth. bp3d: runtime = slope[arm]·area +
	// timberPenalty[arm]·timber + 20 + noise; matmul: slope[arm]·x + 20.
	bp3dSlopes := []float64{5, 3, 1}
	bp3dTimber := []float64{90, 50, 15}
	matmulSlopes := []float64{8, 6, 4, 2, 1}
	fuels := []string{"grass", "timber"}

	// Drive both streams from concurrent clients: bp3d posts named
	// contexts, matmul posts raw feature vectors.
	const clientsPerStream, rounds = 4, 50
	var wg sync.WaitGroup
	for c := 0; c < clientsPerStream; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			noise := rng.New(uint64(seed) + 100)
			for i := 0; i < rounds; i++ {
				area := 10 + 90*r.Float64()
				fuel := fuels[r.Intn(2)]
				var t banditware.Ticket
				post(base+"/v1/streams/bp3d/recommend",
					map[string]any{"context": map[string]any{"area": area, "fuel": fuel}}, &t)
				runtime := bp3dSlopes[t.Arm]*area + 20 + noise.Normal(0, 1)
				if fuel == "timber" {
					runtime += bp3dTimber[t.Arm]
				}
				post(base+"/v1/observe",
					map[string]any{"ticket": t.ID, "runtime": runtime})
			}
		}(int64(40 + c))
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			noise := rng.New(uint64(seed) + 100)
			for i := 0; i < rounds; i++ {
				x := 10 + 90*r.Float64()
				var t banditware.Ticket
				post(base+"/v1/streams/matmul/recommend",
					map[string]any{"features": []float64{x}}, &t)
				runtime := matmulSlopes[t.Arm]*x + 20 + noise.Normal(0, 1)
				post(base+"/v1/observe",
					map[string]any{"ticket": t.ID, "runtime": runtime})
			}
		}(int64(60 + c))
	}
	wg.Wait()

	// A malformed context is rejected with 422 and one error per field —
	// it never skews the models.
	status, errBody := postRaw(base+"/v1/streams/bp3d/recommend",
		map[string]any{"context": map[string]any{"area": -5, "fuel": "plasma", "wind": 3}})
	fmt.Printf("malformed context -> %d\n", status)
	for _, f := range errBody.Fields {
		fmt.Printf("  %-6s %s\n", f.Field+":", f.Error)
	}

	var stats banditware.ServiceStats
	get(base+"/v1/stats", &stats)
	fmt.Println("\nstream     policy      rounds  epsilon  pending  issued  observed")
	for _, s := range stats.Streams {
		fmt.Printf("%-10s %-10s  %6d  %7.3f  %7d  %6d  %8d\n",
			s.Name, s.Policy, s.Round, s.Epsilon, s.Pending, s.Issued, s.Observed)
	}

	// Both streams should now pick their cheapest-slope arm for a large
	// workflow — bp3d queried by named context, matmul by raw vector.
	var t banditware.Ticket
	post(base+"/v1/streams/bp3d/recommend",
		map[string]any{"context": map[string]any{"area": 80, "fuel": "grass"}}, &t)
	fmt.Printf("\nbp3d: recommends %s for area=80 grass (best slope is arm %d)\n",
		t.Hardware, len(bp3dSlopes)-1)
	post(base+"/v1/streams/matmul/recommend",
		map[string]any{"features": []float64{80}}, &t)
	fmt.Printf("matmul: recommends %s for x=80 (best slope is arm %d)\n",
		t.Hardware, len(matmulSlopes)-1)

	// The shadow's live A/B verdict on bp3d: how often the candidate
	// agreed with Algorithm 1, its replay-estimated mean runtime on
	// agreed rounds, and the model-estimated regret of switching
	// (negative = the candidate's choices look faster).
	var shadows struct {
		Shadows []banditware.ShadowInfo `json:"shadows"`
	}
	get(base+"/v1/streams/bp3d/shadows", &shadows)
	fmt.Println()
	for _, sh := range shadows.Shadows {
		meanMatched := 0.0
		if sh.Agreements > 0 {
			meanMatched = sh.MatchedRuntimeTotal / float64(sh.Agreements)
		}
		fmt.Printf("bp3d shadow %q (%s): %d/%d agreements, replay mean runtime %.1fs, est. regret %+.1fs\n",
			sh.Name, sh.Policy, sh.Agreements, sh.Observations, meanMatched, sh.EstimatedRegret)
	}

	rewardDemo(base)
}

// rewardDemo drives the reward pipeline over the wire: the same
// workload served by a runtime stream and a cost_weighted one. The
// large machine is barely faster but five times the allocation, so the
// cost-aware stream settles on the small machine.
func rewardDemo(base string) {
	hwSpec := "small=2x16;large=16x64" // Cost 6 vs 32
	post(base+"/v1/streams", map[string]any{
		"name": "wf-runtime", "hardware_spec": hwSpec, "dim": 1, "seed": 5,
	})
	post(base+"/v1/streams", map[string]any{
		"name": "wf-cost", "hardware_spec": hwSpec, "dim": 1, "seed": 5,
		"reward": map[string]any{"type": "cost_weighted", "lambda": 1},
	})
	noise := rng.New(500)
	slowdown := []float64{52.0, 48.0} // small is 4s slower
	for i := 0; i < 150; i++ {
		x := 5 + 95*noise.Float64()
		for _, name := range []string{"wf-runtime", "wf-cost"} {
			var t banditware.Ticket
			post(base+"/v1/streams/"+name+"/recommend",
				map[string]any{"features": []float64{x}}, &t)
			// Structured outcome body: runtime, success, named metrics.
			post(base+"/v1/observe", map[string]any{
				"ticket": t.ID,
				"outcome": map[string]any{
					"runtime": slowdown[t.Arm] + 0.05*x + noise.Normal(0, 1),
					"success": true,
					"metrics": map[string]float64{"memory_gb": 1 + x/50},
				},
			})
		}
	}
	fmt.Println("\ncost-aware serving over the wire (same workload, two rewards):")
	for _, name := range []string{"wf-runtime", "wf-cost"} {
		var t banditware.Ticket
		post(base+"/v1/streams/"+name+"/recommend",
			map[string]any{"features": []float64{60}}, &t)
		var info banditware.StreamInfo
		get(base+"/v1/streams/"+name, &info)
		fmt.Printf("  %-10s (reward %-13s) -> %-18s cumulative reward %.0f, runtime %.0f\n",
			name, info.Reward.Type, t.Hardware, info.RewardTotal, info.RuntimeTotal)
	}
}

// post sends a JSON body and decodes the JSON response into out (if
// any); non-2xx responses are fatal.
func post(url string, body any, out ...any) {
	buf, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e map[string]any
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST %s: %s: %v", url, resp.Status, e["error"])
	}
	if len(out) > 0 {
		if err := json.NewDecoder(resp.Body).Decode(out[0]); err != nil {
			log.Fatal(err)
		}
	}
}

// errorBody is the 422 response shape: the flat message plus the
// per-field violation list.
type errorBody struct {
	Error  string `json:"error"`
	Fields []struct {
		Field string `json:"field"`
		Error string `json:"error"`
	} `json:"fields"`
}

// postRaw sends a JSON body and returns the status code and decoded
// error body, for demonstrating expected failures.
func postRaw(url string, body any) (int, errorBody) {
	buf, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var e errorBody
	json.NewDecoder(resp.Body).Decode(&e)
	return resp.StatusCode, e
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
