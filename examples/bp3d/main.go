// BP3D: the paper's Figure-1 pipeline plus Experiment 2.
//
// Synthesises the 1316-run BurnPro3D trace, walks it through the
// framework's input pipeline (per-hardware tables → retrieve useful
// columns → merge), bootstraps a recommender offline from the merged
// history, and then recommends hardware for new burn units — including
// the tolerance knob that trades a bounded slowdown for smaller
// allocations.
//
//	go run ./examples/bp3d
package main

import (
	"fmt"
	"log"

	"banditware"
	"banditware/internal/dataset"
	"banditware/internal/frame"
)

func main() {
	trace, err := banditware.GenerateBP3D(banditware.BP3DOptions{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	// --- Figure 1 pipeline -------------------------------------------
	perHW, err := dataset.PerHardwareFrames(trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-hardware performance tables (the raw input of Figure 1):")
	useful := make(map[string]*frame.Frame, len(perHW))
	for _, name := range trace.Hardware.Names() {
		u, err := dataset.RetrieveUseful(perHW[name], trace.FeatureNames)
		if err != nil {
			log.Fatal(err)
		}
		useful[name] = u
		fmt.Printf("  %s: %d runs × %d columns\n", name, u.NumRows(), u.NumCols())
	}
	merged, err := dataset.Merge(useful, trace.Hardware.Names())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged training table: %d rows × %d columns\n\n", merged.NumRows(), merged.NumCols())

	// --- offline bootstrap, then online use --------------------------
	rec, err := banditware.FitOffline(trace, banditware.Options{
		Seed:        11,
		ZeroEpsilon: true, // serve recommendations without exploration
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recommender bootstrapped from %d historical runs\n\n", rec.Round())

	// A new burn unit: mid moisture, calm wind, 1.8M m².
	burnUnit := []float64{0.2, 1.0, 180, 5, 4000, 8e9, 1.8e6}
	preds, err := rec.PredictAll(burnUnit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("predicted runtime for a new 1.8M m² burn unit:")
	for i, p := range preds {
		fmt.Printf("  %-10s %8.0f s (cost %.1f)\n", trace.Hardware[i], p, trace.Hardware[i].Cost())
	}

	strict := banditware.TolerantSelect(preds, trace.Hardware, 0, 0)
	tolerant := banditware.TolerantSelect(preds, trace.Hardware, 0.05, 300)
	fmt.Printf("\nstrict selection (fastest):              %s\n", trace.Hardware[strict])
	fmt.Printf("tolerant selection (5%% + 300 s budget):  %s\n", trace.Hardware[tolerant])
	fmt.Println("\nwith near-identical hardware behaviour, the tolerance steers the")
	fmt.Println("choice toward the smallest allocation — the paper's Experiment 2 point.")
}
