package banditware

import (
	"bytes"
	"errors"
	"math"
	"sync"
	"testing"

	"banditware/internal/rng"
)

func serviceHW(t *testing.T) HardwareSet {
	t.Helper()
	hw, err := ParseHardwareSet("H0=2x16;H1=3x24;H2=4x16")
	if err != nil {
		t.Fatal(err)
	}
	return hw
}

// TestServicePublicRoundTrip drives the full public serving flow: two
// streams, ticket recommend/observe, batch ops, stats, snapshot.
func TestServicePublicRoundTrip(t *testing.T) {
	hw := serviceHW(t)
	svc := NewService(ServiceOptions{})
	for name, seed := range map[string]uint64{"bp3d": 1, "matmul": 2} {
		if err := svc.CreateStream(name, StreamConfig{Hardware: hw, Dim: 1, Options: Options{Seed: seed}}); err != nil {
			t.Fatal(err)
		}
	}
	r := rng.New(5)
	slopes := []float64{5, 3, 1}
	for i := 0; i < 100; i++ {
		for _, name := range []string{"bp3d", "matmul"} {
			x := r.Uniform(10, 100)
			tk, err := svc.Recommend(name, []float64{x})
			if err != nil {
				t.Fatal(err)
			}
			if err := svc.Observe(tk.ID, slopes[tk.Arm]*x+20); err != nil {
				t.Fatal(err)
			}
		}
	}
	stats := svc.Stats()
	if stats.TotalObserved != 200 || stats.TotalPending != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// Both streams learned the cheapest-slope arm.
	for _, name := range []string{"bp3d", "matmul"} {
		arm, err := svc.Exploit(name, []float64{80})
		if err != nil {
			t.Fatal(err)
		}
		if arm != 2 {
			t.Fatalf("stream %s exploits arm %d, want 2", name, arm)
		}
	}
	// Batch path.
	tks, err := svc.RecommendBatch("bp3d", [][]float64{{10}, {20}})
	if err != nil || len(tks) != 2 {
		t.Fatalf("batch: %v", err)
	}
	applied, err := svc.ObserveBatch([]TicketObservation{
		{TicketID: tks[0].ID, Runtime: 70},
		{TicketID: tks[1].ID, Runtime: 120},
	})
	if err != nil || applied != 2 {
		t.Fatalf("observe batch: %d, %v", applied, err)
	}
	// Snapshot round trip preserves model state.
	var buf bytes.Buffer
	if err := svc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadService(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"bp3d", "matmul"} {
		want, _ := svc.PredictAll(name, []float64{42})
		got, err := back.PredictAll(name, []float64{42})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-12 {
				t.Fatalf("stream %s predictions drifted across snapshot", name)
			}
		}
	}
}

// TestServiceLoadsLegacyRecommenderState: a state file written by the
// original single-recommender Save loads as a one-stream service.
func TestServiceLoadsLegacyRecommenderState(t *testing.T) {
	rec, err := New(serviceHW(t), 1, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 25; i++ {
		x := []float64{float64(i)}
		d, err := rec.Recommend(x)
		if err != nil {
			t.Fatal(err)
		}
		if err := rec.Observe(d.Arm, x, 3*x[0]); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := rec.Save(&buf); err != nil {
		t.Fatal(err)
	}
	svc, err := LoadService(&buf)
	if err != nil {
		t.Fatal(err)
	}
	info, err := svc.StreamInfo("default")
	if err != nil {
		t.Fatal(err)
	}
	if info.Round != 25 {
		t.Fatalf("round = %d, want 25", info.Round)
	}
}

// TestSafeRecommenderShim: the mutex-era API keeps its exact semantics
// on top of the Service, including the legacy save format.
func TestSafeRecommenderShim(t *testing.T) {
	hw := serviceHW(t)
	safe, err := NewSafe(hw, 1, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	slopes := []float64{5, 3, 1}
	for i := 0; i < 150; i++ {
		x := []float64{r.Uniform(10, 100)}
		d, err := safe.Recommend(x)
		if err != nil {
			t.Fatal(err)
		}
		if err := safe.Observe(d.Arm, x, slopes[d.Arm]*x[0]+20); err != nil {
			t.Fatal(err)
		}
	}
	if safe.Round() != 150 {
		t.Fatalf("round = %d", safe.Round())
	}
	if safe.Epsilon() >= 1 {
		t.Fatal("epsilon did not decay")
	}
	if len(safe.Hardware()) != 3 {
		t.Fatalf("hardware = %v", safe.Hardware())
	}
	if arm, err := safe.Exploit([]float64{80}); err != nil || arm != 2 {
		t.Fatalf("exploit = %d, %v", arm, err)
	}
	if ci, err := safe.PredictWithCI([]float64{50}, 0); err != nil || len(ci) != 3 {
		t.Fatalf("ci = %v, %v", ci, err)
	}
	// Recommend leaves no pending tickets behind.
	if info, err := safe.Service().StreamInfo("default"); err != nil || info.Pending != 0 {
		t.Fatalf("shim leaked tickets: %+v, %v", info, err)
	}

	// Save writes the legacy format: loadable by the single-recommender
	// loader with identical predictions.
	var buf bytes.Buffer
	if err := safe.Save(&buf); err != nil {
		t.Fatal(err)
	}
	rec, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := safe.PredictAll([]float64{60})
	got, err := rec.PredictAll([]float64{60})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-12 {
			t.Fatal("predictions drifted through legacy save")
		}
	}

	// WrapSafe adopts an existing recommender.
	wrapped := WrapSafe(rec)
	if wrapped.Round() != 150 {
		t.Fatalf("wrapped round = %d", wrapped.Round())
	}
	if _, err := wrapped.Recommend([]float64{10}); err != nil {
		t.Fatal(err)
	}
}

// TestServiceConcurrentStreams hammers several public-API streams from
// many goroutines at once (run with -race; the shim equivalent lives in
// integration_test.go as TestSafeRecommenderConcurrent).
func TestServiceConcurrentStreams(t *testing.T) {
	hw := serviceHW(t)
	svc := NewService(ServiceOptions{})
	streams := []string{"a", "b", "c", "d"}
	for i, name := range streams {
		if err := svc.CreateStream(name, StreamConfig{Hardware: hw, Dim: 1, Options: Options{Seed: uint64(i + 1)}}); err != nil {
			t.Fatal(err)
		}
	}
	const goroutines, iters = 16, 60
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := streams[g%len(streams)]
			for i := 0; i < iters; i++ {
				x := []float64{float64(i%40 + 1)}
				tk, err := svc.Recommend(name, x)
				if err != nil {
					t.Error(err)
					return
				}
				if err := svc.Observe(tk.ID, 2*x[0]+float64(tk.Arm)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	stats := svc.Stats()
	if stats.TotalObserved != goroutines*iters {
		t.Fatalf("observed %d, want %d", stats.TotalObserved, goroutines*iters)
	}
	for _, info := range stats.Streams {
		if info.Round != (goroutines/len(streams))*iters {
			t.Fatalf("stream %s round = %d", info.Name, info.Round)
		}
	}
}

// TestServicePolicyStreams: the public API creates policy-typed streams
// and shadows, and the policy/shadow errors are re-exported.
func TestServicePolicyStreams(t *testing.T) {
	hw := serviceHW(t)
	svc := NewService(ServiceOptions{})
	if err := svc.CreateStream("ucb", StreamConfig{
		Hardware: hw, Dim: 1, Policy: PolicySpec{Type: PolicyLinUCB, Beta: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := svc.AttachShadow("ucb", "paper", PolicySpec{Type: PolicyAlgorithm1, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	r := rng.New(8)
	slopes := []float64{5, 3, 1}
	for i := 0; i < 120; i++ {
		x := r.Uniform(10, 100)
		tk, err := svc.Recommend("ucb", []float64{x})
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Observe(tk.ID, slopes[tk.Arm]*x+20); err != nil {
			t.Fatal(err)
		}
	}
	if arm, err := svc.Exploit("ucb", []float64{80}); err != nil || arm != 2 {
		t.Fatalf("exploit = %d, %v", arm, err)
	}
	info, err := svc.StreamInfo("ucb")
	if err != nil {
		t.Fatal(err)
	}
	if info.Policy != PolicyLinUCB || len(info.Shadows) != 1 || info.Shadows[0].Observations != 120 {
		t.Fatalf("info = %+v", info)
	}
	// Snapshot round trip keeps the policy stream and its shadow.
	var buf bytes.Buffer
	if err := svc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadService(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if shadows, err := back.Shadows("ucb"); err != nil || len(shadows) != 1 || shadows[0].Observations != 120 {
		t.Fatalf("restored shadows = %+v, %v", shadows, err)
	}
	// Re-exported sentinels.
	if err := svc.CreateStream("bad", StreamConfig{Hardware: hw, Dim: 1, Policy: PolicySpec{Type: "nope"}}); !errors.Is(err, ErrUnknownPolicy) {
		t.Fatalf("unknown policy: %v", err)
	}
	if _, err := svc.PredictWithCI("ucb", []float64{1}, 0); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("CI on linucb: %v", err)
	}
	if err := svc.DetachShadow("ucb", "ghost"); !errors.Is(err, ErrShadowNotFound) {
		t.Fatalf("detach ghost: %v", err)
	}
	if err := svc.AttachShadow("ucb", "paper", PolicySpec{}); !errors.Is(err, ErrShadowExists) {
		t.Fatalf("duplicate shadow: %v", err)
	}
}

// TestServiceErrorsExported: the re-exported sentinels match what the
// service returns.
func TestServiceErrorsExported(t *testing.T) {
	svc := NewService(ServiceOptions{})
	if _, err := svc.Recommend("ghost", []float64{1}); !errors.Is(err, ErrStreamNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := svc.Observe("bad ticket", 1); !errors.Is(err, ErrBadTicket) {
		t.Fatalf("err = %v", err)
	}
	if err := svc.CreateStream("x/y", StreamConfig{Hardware: serviceHW(t), Dim: 1}); !errors.Is(err, ErrBadStreamName) {
		t.Fatalf("err = %v", err)
	}
	stream, seq, err := ParseTicketID("jobs#2a")
	if err != nil || stream != "jobs" || seq != 42 {
		t.Fatalf("ParseTicketID = %q, %d, %v", stream, seq, err)
	}
}

// TestServiceSchemaPublicSurface drives the exported schema flow end to
// end: declare a schema (numeric + categorical), serve named contexts,
// reject malformed ones via ErrSchemaViolation, and round-trip the
// schema — with live normalization state — through the public snapshot
// API.
func TestServiceSchemaPublicSurface(t *testing.T) {
	sch, err := ParseSchema([]byte(`{
	  "fields": [
	    {"name": "num_tasks", "required": true, "min": 0, "normalize": "minmax"},
	    {"name": "site", "kind": "categorical", "categories": ["expanse", "nautilus"]}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(ServiceOptions{})
	if err := svc.CreateStream("typed", StreamConfig{
		Hardware: serviceHW(t), Schema: sch, Options: Options{Seed: 9},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		tk, err := svc.RecommendCtx("typed", Context{
			Numeric:     map[string]float64{"num_tasks": float64(10 + i*13%90)},
			Categorical: map[string]string{"site": []string{"expanse", "nautilus"}[i%2]},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Observe(tk.ID, float64(25+i%6*8)); err != nil {
			t.Fatal(err)
		}
	}
	// Malformed context: sentinel plus enumerable per-field errors.
	_, err = svc.RecommendCtx("typed", NumericContext(map[string]float64{"num_tasks": -3, "ghost": 1}))
	if !errors.Is(err, ErrSchemaViolation) {
		t.Fatalf("err = %v, want ErrSchemaViolation", err)
	}
	var v *ValidationError
	if !errors.As(err, &v) || len(v.Fields()) != 2 {
		t.Fatalf("validation error = %v", err)
	}
	// Snapshot round trip keeps the schema and its running stats.
	var buf bytes.Buffer
	if err := svc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadService(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := back.StreamSchema("typed")
	if err != nil {
		t.Fatal(err)
	}
	if restored == nil || restored.Fields[0].Stats == nil || restored.Fields[0].Stats.Count != 20 {
		t.Fatalf("restored schema = %+v", restored)
	}
	if _, err := back.RecommendCtx("typed", Context{
		Numeric:     map[string]float64{"num_tasks": 42},
		Categorical: map[string]string{"site": "nautilus"},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestServiceArmLifecycleFacade drives the runtime arm-lifecycle API
// through the public facade: add (warm pooled), drain, promote, retire,
// the exported sentinels, and a snapshot round trip of the churned set.
func TestServiceArmLifecycleFacade(t *testing.T) {
	svc := NewService(ServiceOptions{})
	if err := svc.CreateStream("jobs", StreamConfig{
		Hardware: serviceHW(t), Dim: 1, Options: Options{Seed: 3},
		Cache: &CacheSpec{Capacity: 64},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		x := float64(i%10 + 1)
		tk, err := svc.Recommend("jobs", []float64{x})
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Observe(tk.ID, 5*x+20); err != nil {
			t.Fatal(err)
		}
	}
	cfg, err := ParseHardware("H3=8x64")
	if err != nil {
		t.Fatal(err)
	}
	idx, err := svc.AddArm("jobs", ArmAdd{Hardware: cfg, Warm: "pooled", Trial: true})
	if err != nil {
		t.Fatal(err)
	}
	if idx != 3 {
		t.Fatalf("new arm index %d, want 3", idx)
	}
	arms, err := svc.Arms("jobs")
	if err != nil {
		t.Fatal(err)
	}
	if len(arms) != 4 || arms[3].Status != "trial" {
		t.Fatalf("arms after add: %+v", arms)
	}
	// Exported sentinels map the rejection classes.
	if _, err := svc.AddArm("jobs", ArmAdd{Hardware: cfg}); !errors.Is(err, ErrBadArmRequest) {
		t.Fatalf("duplicate add err = %v, want ErrBadArmRequest", err)
	}
	if err := svc.DrainArm("jobs", 9); !errors.Is(err, ErrArmNotFound) {
		t.Fatalf("drain unknown arm err = %v, want ErrArmNotFound", err)
	}
	if err := svc.RetireArm("jobs", 0); !errors.Is(err, ErrArmLifecycle) {
		t.Fatalf("retire active arm err = %v, want ErrArmLifecycle", err)
	}
	if err := svc.PromoteArm("jobs", 3); err != nil {
		t.Fatal(err)
	}
	if err := svc.DrainArm("jobs", 3); err != nil {
		t.Fatal(err)
	}
	// The lifecycle state survives a snapshot round trip.
	var buf bytes.Buffer
	if err := svc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadService(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.RetireArm("jobs", 3); err != nil {
		t.Fatal(err)
	}
	arms, err = back.Arms("jobs")
	if err != nil {
		t.Fatal(err)
	}
	if len(arms) != 3 {
		t.Fatalf("arms after restored retire: %+v", arms)
	}
	info, err := back.StreamInfo("jobs")
	if err != nil {
		t.Fatal(err)
	}
	if info.Cache == nil || info.Cache.Capacity != 64 {
		t.Fatalf("restored cache info: %+v", info.Cache)
	}
}
