package banditware

import (
	"banditware/internal/dataset"
	"banditware/internal/workloads"
)

// Trace is a workload dataset: recorded runs plus (for generated traces)
// the generative ground truth used by the experiment harness.
type Trace = workloads.Dataset

// TraceRun is one recorded workflow execution.
type TraceRun = workloads.Run

// CyclesOptions configures the Cycles trace generator (paper
// Experiment 1).
type CyclesOptions = workloads.CyclesOptions

// BP3DOptions configures the BurnPro3D trace generator (paper
// Experiment 2).
type BP3DOptions = workloads.BP3DOptions

// MatMulOptions configures the matrix-multiplication trace generator
// (paper Experiment 3).
type MatMulOptions = workloads.MatMulOptions

// LLMOptions configures the LLM-inference trace generator (the paper's
// future-work workload with GPU-bearing hardware).
type LLMOptions = workloads.LLMOptions

// GenerateCycles synthesises the Cycles workload trace: 80 runs over four
// synthetic hardware settings with clear performance trade-offs.
func GenerateCycles(opts CyclesOptions) (*Trace, error) {
	return workloads.GenerateCycles(opts)
}

// GenerateBP3D synthesises the BurnPro3D workload trace: 1316 runs over
// the Table-1 features on three nearly-identical NDP hardware settings.
func GenerateBP3D(opts BP3DOptions) (*Trace, error) {
	return workloads.GenerateBP3D(opts)
}

// GenerateMatMul synthesises the matrix-squaring workload trace: 2520
// runs over five hardware settings, hardware-sensitive only at large
// matrix sizes.
func GenerateMatMul(opts MatMulOptions) (*Trace, error) {
	return workloads.GenerateMatMul(opts)
}

// GenerateLLM synthesises an LLM-inference trace over GPU-bearing
// hardware — the paper's stated future-work direction, implemented.
func GenerateLLM(opts LLMOptions) (*Trace, error) {
	return workloads.GenerateLLM(opts)
}

// WriteTraceCSV persists a trace in the canonical long form
// (id, hardware, cpus, memory_gb, features..., runtime).
func WriteTraceCSV(t *Trace, path string) error { return dataset.WriteCSV(t, path) }

// ReadTraceCSV loads a trace from canonical long-form CSV. Traces loaded
// from CSV carry no generative ground truth (Truth/Noise are nil): they
// support offline training and evaluation but not counterfactual
// simulation.
func ReadTraceCSV(path string, featureNames []string) (*Trace, error) {
	return dataset.ReadCSV(path, featureNames)
}

// FitOffline trains a recommender from a recorded trace by replaying
// every run as an observation (in trace order). This is the "small
// historical dataset" bootstrap from the paper's Figure 1: the returned
// recommender continues to learn online from there. opts.Epsilon0 applies
// from the end of the replay; during the replay no recommendations are
// made, so no exploration randomness is consumed.
func FitOffline(t *Trace, opts Options) (*Recommender, error) {
	rec, err := New(t.Hardware, t.Dim(), opts)
	if err != nil {
		return nil, err
	}
	for _, run := range t.Runs {
		if err := rec.Observe(run.Arm, run.Features, run.Runtime); err != nil {
			return nil, err
		}
	}
	return rec, nil
}
