package banditware

import (
	"io"
	"net/http"

	"banditware/internal/serve"
)

// Service is the concurrent multi-stream serving layer: a registry of
// named recommender streams (one per application or workflow class,
// each with its own hardware set, feature dimension, and options),
// sharded with per-stream locks so independent streams never contend.
//
// Recommend returns a decision Ticket held in a bounded pending ledger;
// Observe(ticketID, runtime) joins the stored features and arm
// automatically — modeling real deployments where a recommendation is
// issued long before its runtime is observed. See DESIGN.md §Service
// and ServiceHandler for the HTTP front-end (`banditware serve`).
type Service = serve.Service

// ServiceOptions configures service-wide defaults (ledger capacity,
// ticket TTL, clock).
type ServiceOptions = serve.ServiceOptions

// StreamConfig describes one recommender stream: hardware set, feature
// dimension, decision policy (Algorithm 1 by default, any PolicySpec
// type otherwise), reward function (runtime by default, any RewardSpec
// type otherwise), Algorithm 1 options, and ledger overrides.
type StreamConfig = serve.StreamConfig

// PolicySpec selects and parameterises a stream's (or shadow's)
// decision policy. The zero value selects the paper's Algorithm 1; the
// alternatives are the internal/policy bandits (LinUCB, linear Thompson
// sampling, fixed ε-greedy, greedy, softmax, random). In JSON a spec may
// be a bare type string ("linucb") or an object with parameters.
type PolicySpec = serve.PolicySpec

// Engine is the pluggable decision core a stream serves from. Algorithm
// 1 and every internal/policy.Policy adapt to it; implementations need
// no internal locking because the owning stream serialises access.
type Engine = serve.Engine

// Outcome is the structured observation of one completed workflow run:
// measured runtime plus optional success/failure and named metrics
// (memory_gb, energy_joules, cost_usd, queue_seconds). Outcome{Runtime:
// rt} reproduces the scalar observation exactly; Service.Observe maps
// to it, so pre-Outcome callers are unchanged.
type Outcome = serve.Outcome

// RewardSpec selects and parameterises a stream's (or shadow's) reward
// function — how an observed Outcome plus the chosen arm's hardware
// collapses to the scalar the engine learns from (lower is better,
// runtime-denominated). The zero value is the runtime reward (the
// paper's Algorithm 1 signal); cost_weighted adds λ·Cost(hw) — the
// paper's runtime-vs-resource-waste tradeoff — deadline grades an SLO
// miss, and failure_penalty prices failed runs. In JSON a spec may be a
// bare type string ("cost_weighted") or an object with parameters.
type RewardSpec = serve.RewardSpec

// Canonical reward types for RewardSpec.Type and StreamInfo.Reward.
const (
	RewardRuntime        = serve.RewardRuntime
	RewardCostWeighted   = serve.RewardCostWeighted
	RewardDeadline       = serve.RewardDeadline
	RewardFailurePenalty = serve.RewardFailurePenalty
	RewardQueueWeighted  = serve.RewardQueueWeighted
)

// AdaptSpec selects and parameterises a stream's adaptation to
// non-stationary environments — how its models forget (mode "none",
// "forgetting", or "window") and how the stream responds to online
// drift detections (on_drift "observe" or "reset", plus Page-Hinkley
// detector tuning). The zero value is mode "none" with observe-only
// detection: infinite-horizon learning, exactly the pre-adaptation
// behaviour. In JSON a spec may be a bare mode string ("forgetting")
// or an object with parameters.
type AdaptSpec = serve.AdaptSpec

// Canonical adaptation modes for AdaptSpec.Mode and the on-drift
// responses for AdaptSpec.OnDrift.
const (
	AdaptNone       = serve.AdaptNone
	AdaptForgetting = serve.AdaptForgetting
	AdaptWindow     = serve.AdaptWindow
	DriftObserve    = serve.DriftObserve
	DriftReset      = serve.DriftReset
)

// DriftInfo is a point-in-time summary of one stream's online drift
// monitoring: the adaptation spec, total detections and auto-resets,
// and each arm's live Page-Hinkley detector state (Service.Drift, or
// GET /v1/streams/{name}/drift over HTTP).
type DriftInfo = serve.DriftInfo

// ArmDrift is one arm's drift-monitoring state inside DriftInfo.
type ArmDrift = serve.ArmDrift

// ShadowInfo summarises one shadow policy's live evaluation counters:
// decisions, observations, agreements with the primary, the
// replay-style matched-runtime total, and the model-estimated
// cumulative regret.
type ShadowInfo = serve.ShadowInfo

// Canonical policy types for PolicySpec.Type and StreamInfo.Policy.
const (
	PolicyAlgorithm1 = serve.PolicyAlgorithm1
	PolicyLinUCB     = serve.PolicyLinUCB
	PolicyLinTS      = serve.PolicyLinTS
	PolicyEpsGreedy  = serve.PolicyEpsGreedy
	PolicyGreedy     = serve.PolicyGreedy
	PolicySoftmax    = serve.PolicySoftmax
	PolicyRandom     = serve.PolicyRandom
)

// ArmAdd describes one runtime arm addition for Service.AddArm: the
// new hardware configuration, the warm-start mode ("", "cold",
// "pooled", or "nearest") with its donor weight, and whether the arm
// starts in the trial state (learning but serving no live traffic
// until promoted). See DESIGN.md §Arm-set elasticity.
type ArmAdd = serve.ArmAdd

// ArmInfo is one arm's listing entry from Service.Arms: index,
// hardware label, and lifecycle status (active, trial, draining).
type ArmInfo = serve.ArmInfo

// CacheSpec configures a stream's optional recommendation cache: a
// bounded context-fingerprint → arm map serving repeated exploit
// decisions without touching the policy, with an exploration budget
// that routes a fraction of would-be hits back to it.
type CacheSpec = serve.CacheSpec

// CacheInfo is the live state of a stream's recommendation cache
// (configuration, size, and hit/miss/fall-through counters).
type CacheInfo = serve.CacheInfo

// Ticket records one issued recommendation; its ID redeems it via
// Service.Observe.
type Ticket = serve.Ticket

// TicketObservation pairs a ticket ID with a measured runtime for
// Service.ObserveBatch.
type TicketObservation = serve.TicketObservation

// StreamInfo is a point-in-time summary of one stream.
type StreamInfo = serve.StreamInfo

// ServiceStats summarises every stream plus service totals.
type ServiceStats = serve.Stats

// Service errors, re-exported for errors.Is checks.
var (
	ErrStreamExists   = serve.ErrStreamExists
	ErrStreamNotFound = serve.ErrStreamNotFound
	ErrBadStreamName  = serve.ErrBadStreamName
	ErrTicketNotFound = serve.ErrTicketNotFound
	ErrTicketExpired  = serve.ErrTicketExpired
	ErrBadTicket      = serve.ErrBadTicket
	ErrUnknownPolicy  = serve.ErrUnknownPolicy
	ErrUnsupported    = serve.ErrUnsupported
	ErrShadowExists   = serve.ErrShadowExists
	ErrShadowNotFound = serve.ErrShadowNotFound
	// ErrBadOutcome reports an Outcome that failed validation (negative
	// or non-finite runtime, unknown metric, negative metric value);
	// outcomes are validated before a ticket is redeemed, so a bad
	// outcome never burns the ticket. ErrBadReward reports a RewardSpec
	// no reward function accepts. ErrBadAdapt reports an AdaptSpec no
	// adaptation mode accepts (or one the stream's policy cannot honour).
	ErrBadOutcome = serve.ErrBadOutcome
	ErrBadReward  = serve.ErrBadReward
	ErrBadAdapt   = serve.ErrBadAdapt
	// Arm-lifecycle errors: ErrArmNotFound reports an arm index outside
	// the stream's current set; ErrArmLifecycle a transition the arm's
	// status does not allow (retiring an active arm, draining the last
	// active arm); ErrBadArmRequest a semantically invalid arm request
	// (unknown warm mode, duplicate hardware name, out-of-range weight).
	ErrArmNotFound   = serve.ErrArmNotFound
	ErrArmLifecycle  = serve.ErrArmLifecycle
	ErrBadArmRequest = serve.ErrBadArmRequest
)

// NewService constructs an empty serving layer. Register streams with
// CreateStream, then drive them with Recommend/Observe (ticket flow),
// RecommendBatch/ObserveBatch, or ObserveDirect (caller-tracked flow).
func NewService(opts ServiceOptions) *Service { return serve.NewService(opts) }

// LoadService restores a service from a snapshot written by
// Service.Save — the current version-7 envelope (arm lifecycle states
// and recommendation-cache specs) or any earlier envelope version
// (6: fleet-merge bookkeeping, 5: adaptation specs and drift-detector
// state, 4: reward specs and outcome aggregates, 3: feature schemas,
// 2: policy-typed streams and shadows, 1: pre-policy). It also accepts
// the legacy single-recommender format written by Recommender.Save,
// restoring it as stream "default".
func LoadService(r io.Reader) (*Service, error) {
	return serve.Load(r, ServiceOptions{})
}

// LoadServiceOptions is LoadService with explicit service defaults
// (ledger capacity, TTL, clock) applied to the restored streams'
// unset fields.
func LoadServiceOptions(r io.Reader, opts ServiceOptions) (*Service, error) {
	return serve.Load(r, opts)
}

// ServiceHandler returns the HTTP/JSON front-end for a service: stream
// management under /v1/streams (including per-stream policy selection
// and shadow attachment), the recommend/observe serving path (single
// and batch), and /v1/stats. `banditware serve` mounts exactly this
// handler; docs/API.md is the route-by-route reference.
func ServiceHandler(svc *Service) http.Handler { return serve.NewHandler(svc) }

// NewServiceServer wraps ServiceHandler(svc) in an http.Server
// hardened against slow or wedged clients: read-header, whole-read,
// write, and idle timeouts plus a header-size cap are all bounded.
// `banditware serve` and the bwload self-hosted HTTP target both run
// exactly this server, so load-test numbers measure the production
// configuration. Callers needing different limits can adjust the
// returned server before Serve.
func NewServiceServer(svc *Service) *http.Server {
	return serve.NewServer(serve.NewHandler(svc))
}

// ParseTicketID splits a decision-ticket ID into its stream name and
// per-stream sequence number.
func ParseTicketID(id string) (stream string, seq uint64, err error) {
	return serve.ParseTicketID(id)
}
