package banditware

import (
	"io"

	"banditware/internal/core"
)

// Interval is a prediction interval for one arm.
type Interval = core.Interval

// PredictWithCI returns per-arm runtime estimates with approximate
// prediction intervals (z <= 0 selects 1.96 ≈ 95%). Arms that have not
// observed at least two runs report infinite intervals.
func (r *Recommender) PredictWithCI(features []float64, z float64) ([]Interval, error) {
	return r.b.PredictWithCI(features, z)
}

// Exploit returns the tolerant selection for the features without
// consuming exploration randomness — use it to serve read-only
// recommendations (dashboards, dry runs) that must not perturb learning.
func (r *Recommender) Exploit(features []float64) (int, error) {
	return r.b.Exploit(features)
}

// safeStream is the stream name backing a SafeRecommender.
const safeStream = "default"

// SafeRecommender is a concurrency-safe single-stream recommender with
// the same method set and semantics as Recommender. It is a thin shim
// over a one-stream Service: historically it wrapped a Recommender with
// one global mutex, and the locking story is unchanged (all methods
// serialise on the stream's lock), but migrating to the multi-stream
// Service is now just s.Service().CreateStream(...).
type SafeRecommender struct {
	svc *Service
}

// NewSafe constructs a concurrency-safe recommender.
func NewSafe(hw HardwareSet, dim int, opts Options) (*SafeRecommender, error) {
	svc := NewService(ServiceOptions{})
	if err := svc.CreateStream(safeStream, StreamConfig{Hardware: hw, Dim: dim, Options: opts}); err != nil {
		return nil, err
	}
	return &SafeRecommender{svc: svc}, nil
}

// WrapSafe wraps an existing Recommender. The caller must not use the
// wrapped Recommender directly afterwards.
func WrapSafe(rec *Recommender) *SafeRecommender {
	svc := NewService(ServiceOptions{})
	// Adopting a valid bandit under a fixed valid name cannot fail.
	if err := svc.AdoptBandit(safeStream, rec.b, 0, 0); err != nil {
		panic("banditware: WrapSafe: " + err.Error())
	}
	return &SafeRecommender{svc: svc}
}

// Service returns the underlying one-stream Service (stream "default"),
// the migration path to multi-stream serving, decision tickets, and the
// HTTP front-end.
func (s *SafeRecommender) Service() *Service { return s.svc }

// Recommend is the lock-guarded Recommender.Recommend. It leaves no
// pending-ticket state; pair it with Observe.
func (s *SafeRecommender) Recommend(features []float64) (Decision, error) {
	return s.svc.RecommendUntracked(safeStream, features)
}

// Observe is the lock-guarded Recommender.Observe.
func (s *SafeRecommender) Observe(arm int, features []float64, runtime float64) error {
	return s.svc.ObserveDirect(safeStream, arm, features, runtime)
}

// Exploit is the lock-guarded Recommender.Exploit.
func (s *SafeRecommender) Exploit(features []float64) (int, error) {
	return s.svc.Exploit(safeStream, features)
}

// PredictAll is the lock-guarded Recommender.PredictAll.
func (s *SafeRecommender) PredictAll(features []float64) ([]float64, error) {
	return s.svc.PredictAll(safeStream, features)
}

// PredictWithCI is the lock-guarded Recommender.PredictWithCI.
func (s *SafeRecommender) PredictWithCI(features []float64, z float64) ([]Interval, error) {
	return s.svc.PredictWithCI(safeStream, features, z)
}

// Epsilon is the lock-guarded Recommender.Epsilon.
func (s *SafeRecommender) Epsilon() float64 {
	eps, _ := s.svc.Epsilon(safeStream)
	return eps
}

// Round is the lock-guarded Recommender.Round.
func (s *SafeRecommender) Round() int {
	n, _ := s.svc.Round(safeStream)
	return n
}

// Hardware returns the arm set (immutable after construction).
func (s *SafeRecommender) Hardware() HardwareSet {
	hw, _ := s.svc.Hardware(safeStream)
	return hw
}

// Save writes the legacy single-recommender state format (the same
// bytes Recommender.Save writes), so state saved through either API
// loads through both Load and LoadService.
func (s *SafeRecommender) Save(w io.Writer) error {
	return s.svc.SaveStream(safeStream, w)
}
