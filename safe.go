package banditware

import (
	"io"
	"sync"

	"banditware/internal/core"
)

// Interval is a prediction interval for one arm.
type Interval = core.Interval

// PredictWithCI returns per-arm runtime estimates with approximate
// prediction intervals (z <= 0 selects 1.96 ≈ 95%). Arms that have not
// observed at least two runs report infinite intervals.
func (r *Recommender) PredictWithCI(features []float64, z float64) ([]Interval, error) {
	return r.b.PredictWithCI(features, z)
}

// Exploit returns the tolerant selection for the features without
// consuming exploration randomness — use it to serve read-only
// recommendations (dashboards, dry runs) that must not perturb learning.
func (r *Recommender) Exploit(features []float64) (int, error) {
	return r.b.Exploit(features)
}

// SafeRecommender wraps a Recommender with a mutex so a single instance
// can serve concurrent request handlers. All methods have the same
// semantics as Recommender's.
type SafeRecommender struct {
	mu  sync.Mutex
	rec *Recommender
}

// NewSafe constructs a concurrency-safe recommender.
func NewSafe(hw HardwareSet, dim int, opts Options) (*SafeRecommender, error) {
	rec, err := New(hw, dim, opts)
	if err != nil {
		return nil, err
	}
	return &SafeRecommender{rec: rec}, nil
}

// WrapSafe wraps an existing Recommender. The caller must not use the
// wrapped Recommender directly afterwards.
func WrapSafe(rec *Recommender) *SafeRecommender {
	return &SafeRecommender{rec: rec}
}

// Recommend is the mutex-guarded Recommender.Recommend.
func (s *SafeRecommender) Recommend(features []float64) (Decision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.Recommend(features)
}

// Observe is the mutex-guarded Recommender.Observe.
func (s *SafeRecommender) Observe(arm int, features []float64, runtime float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.Observe(arm, features, runtime)
}

// Exploit is the mutex-guarded Recommender.Exploit.
func (s *SafeRecommender) Exploit(features []float64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.Exploit(features)
}

// PredictAll is the mutex-guarded Recommender.PredictAll.
func (s *SafeRecommender) PredictAll(features []float64) ([]float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.PredictAll(features)
}

// PredictWithCI is the mutex-guarded Recommender.PredictWithCI.
func (s *SafeRecommender) PredictWithCI(features []float64, z float64) ([]Interval, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.PredictWithCI(features, z)
}

// Epsilon is the mutex-guarded Recommender.Epsilon.
func (s *SafeRecommender) Epsilon() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.Epsilon()
}

// Round is the mutex-guarded Recommender.Round.
func (s *SafeRecommender) Round() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.Round()
}

// Hardware returns the arm set (immutable after construction).
func (s *SafeRecommender) Hardware() HardwareSet { return s.rec.Hardware() }

// Save is the mutex-guarded Recommender.Save.
func (s *SafeRecommender) Save(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.Save(w)
}
