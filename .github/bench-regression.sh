#!/usr/bin/env bash
# bench-regression.sh — base-vs-head benchmark gate for CI.
#
# Runs the serving-layer benchmark set on the merge base (built from a
# detached git worktree, so the working tree is untouched) and on the
# current checkout, then hands both outputs to cmd/benchdiff: ns/op is
# compared with a Welch t-test across the repetitions, allocs/op is
# compared exactly (any increase fails — the CI twin of the in-repo
# allocation pins in internal/serve/alloc_test.go).
#
# Usage: .github/bench-regression.sh [base-ref]
#   base-ref defaults to origin/main (or GITHUB_BASE_REF when set).
# Environment knobs:
#   BENCH_PATTERN  benchmark regexp  (default: the serve hot-path set)
#   BENCH_COUNT    repetitions       (default 6)
#   BENCH_TIME     -benchtime value  (default 20000x — fixed iteration
#                  counts keep run lengths comparable across builds)
#   BENCH_PKGS     packages to bench (default: the root package, which
#                  holds BenchmarkRecommendCtx/BenchmarkObserveOutcome,
#                  plus ./internal/serve/ with the contention set)
set -euo pipefail

base_ref=${1:-${GITHUB_BASE_REF:+origin/$GITHUB_BASE_REF}}
base_ref=${base_ref:-origin/main}
pattern=${BENCH_PATTERN:-'ParallelRecommendObserve|RecommendCtx$|ObserveOutcome$'}
count=${BENCH_COUNT:-6}
benchtime=${BENCH_TIME:-20000x}
pkgs=${BENCH_PKGS:-'./ ./internal/serve/'}

merge_base=$(git merge-base HEAD "$base_ref")
echo "benchdiff: comparing HEAD against merge base $merge_base ($base_ref)" >&2

workdir=$(mktemp -d)
trap 'git worktree remove --force "$workdir/base" 2>/dev/null || true; rm -rf "$workdir"' EXIT
git worktree add --detach "$workdir/base" "$merge_base" >/dev/null

run_bench() { # run_bench <dir> <out-file>
  (cd "$1" && go test -run='^$' -bench="$pattern" -benchmem \
      -count="$count" -benchtime="$benchtime" $pkgs) | tee "$2"
}

echo "benchdiff: benchmarking base..." >&2
run_bench "$workdir/base" "$workdir/bench-base.txt" >/dev/null
echo "benchdiff: benchmarking head..." >&2
run_bench "$PWD" "$workdir/bench-head.txt" >/dev/null

go run ./cmd/benchdiff "$workdir/bench-base.txt" "$workdir/bench-head.txt"
