package banditware

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"banditware/internal/rng"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	hw, err := ParseHardwareSet("H0=2x16;H1=3x24;H2=4x16")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := New(hw, 1, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	slopes := []float64{5, 3, 1}
	for i := 0; i < 200; i++ {
		x := []float64{r.Uniform(10, 100)}
		d, err := rec.Recommend(x)
		if err != nil {
			t.Fatal(err)
		}
		rt := slopes[d.Arm]*x[0] + 20 + r.Normal(0, 1)
		if err := rec.Observe(d.Arm, x, rt); err != nil {
			t.Fatal(err)
		}
	}
	if rec.Round() != 200 {
		t.Fatalf("round = %d", rec.Round())
	}
	if rec.Epsilon() >= 1 {
		t.Fatal("epsilon did not decay")
	}
	preds, err := rec.PredictAll([]float64{50})
	if err != nil {
		t.Fatal(err)
	}
	// Arm 2 has the smallest slope: cheapest at large x.
	if !(preds[2] < preds[0]) {
		t.Fatalf("learned ordering wrong: %v", preds)
	}
	m, err := rec.Model(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Weights[0]-5) > 0.5 {
		t.Fatalf("arm 0 slope = %v, want ~5", m.Weights[0])
	}

	// Persistence.
	var buf bytes.Buffer
	if err := rec.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := back.PredictAll([]float64{50})
	if err != nil {
		t.Fatal(err)
	}
	for i := range preds {
		if math.Abs(preds[i]-p2[i]) > 1e-9 {
			t.Fatal("predictions drifted across Save/Load")
		}
	}
}

func TestStep(t *testing.T) {
	rec, err := New(NDPHardware(), 1, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	d, rt, err := rec.Step([]float64{10}, func(arm int) float64 { return float64(10 * (arm + 1)) })
	if err != nil {
		t.Fatal(err)
	}
	if rt != float64(10*(d.Arm+1)) {
		t.Fatalf("runtime %v inconsistent with arm %d", rt, d.Arm)
	}
}

func TestTolerantSelectExported(t *testing.T) {
	hw := NDPHardware()
	if got := TolerantSelect([]float64{30, 10, 20}, hw, 0, 0); got != 1 {
		t.Fatalf("TolerantSelect = %d, want 1", got)
	}
	// H0 is most efficient; with a wide envelope it should win.
	if got := TolerantSelect([]float64{30, 10, 20}, hw, 0, 100); got != 0 {
		t.Fatalf("TolerantSelect with tolerance = %d, want 0", got)
	}
}

func TestGenerators(t *testing.T) {
	c, err := GenerateCycles(CyclesOptions{Seed: 1})
	if err != nil || len(c.Runs) != 80 {
		t.Fatalf("cycles: %v, %d runs", err, len(c.Runs))
	}
	b, err := GenerateBP3D(BP3DOptions{Seed: 1, NumRuns: 50})
	if err != nil || len(b.Runs) != 50 {
		t.Fatalf("bp3d: %v", err)
	}
	m, err := GenerateMatMul(MatMulOptions{Seed: 1, RepsSmall: 1, RepsLarge: 1})
	if err != nil || len(m.Runs) == 0 {
		t.Fatalf("matmul: %v", err)
	}
}

func TestTraceCSVAndFitOffline(t *testing.T) {
	c, err := GenerateCycles(CyclesOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := WriteTraceCSV(c, path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceCSV(path, c.FeatureNames)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := FitOffline(back, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Round() != len(c.Runs) {
		t.Fatalf("offline fit absorbed %d rounds, want %d", rec.Round(), len(c.Runs))
	}
	// Offline-fitted models should roughly recover the generative slopes
	// (6.0/4.5/3.0/1.5 per arm with only 20 samples each — allow slack).
	m0, err := rec.Model(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m0.Weights[0]-6) > 1 {
		t.Fatalf("arm 0 slope from offline fit = %v, want ~6", m0.Weights[0])
	}
}

func TestParseHardware(t *testing.T) {
	h, err := ParseHardware("H9=4x32")
	if err != nil {
		t.Fatal(err)
	}
	if h.Name != "H9" || h.CPUs != 4 || h.MemoryGB != 32 {
		t.Fatalf("parsed %+v", h)
	}
	if _, err := ParseHardware("garbage"); err == nil {
		t.Fatal("bad hardware should fail")
	}
}
