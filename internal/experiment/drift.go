package experiment

import (
	"errors"
	"fmt"

	"banditware/internal/core"
	"banditware/internal/drift"
	"banditware/internal/rng"
	"banditware/internal/stats"
	"banditware/internal/workloads"
)

// DriftConfig configures a non-stationarity experiment: halfway through
// the run the environment permutes which hardware behaves like which
// (e.g. a cluster upgrade or co-tenancy change), and we measure how fast
// recommenders with and without forgetting recover. This implements the
// paper's "adapting to dynamic environments" motivation as a concrete,
// measurable protocol.
type DriftConfig struct {
	// Dataset supplies features and the pre-drift ground truth.
	Dataset *workloads.Dataset
	// SwapRound is when the drift happens (default NRounds/2).
	SwapRound int
	// NRounds, NSim, Seed as in BanditConfig.
	NRounds int
	NSim    int
	Seed    uint64
	// ForgettingFactor for the adaptive bandit (the baseline bandit runs
	// without forgetting). 0 selects 0.98.
	ForgettingFactor float64
}

// DriftResult reports per-round accuracy for both bandits.
type DriftResult struct {
	// Rounds holds the round index (1-based).
	Rounds []int
	// AccStatic / AccForgetting are mean accuracies per round for the
	// plain bandit and the forgetting bandit.
	AccStatic     []float64
	AccForgetting []float64
	// SwapRound echoes the drift point.
	SwapRound int
}

// driftTruth returns the effective ground truth at a given round: before
// the swap it is the dataset's; after, arms are reversed (arm i behaves
// like arm n-1-i) — a worst-case permutation drift.
func driftTruth(d *workloads.Dataset, swapped bool) func(arm int, x []float64) float64 {
	if !swapped {
		return d.Truth
	}
	n := len(d.Hardware)
	return func(arm int, x []float64) float64 {
		return d.Truth(n-1-arm, x)
	}
}

// RunDrift runs both bandits through the same drifting environment.
func RunDrift(cfg DriftConfig) (*DriftResult, error) {
	if cfg.Dataset == nil {
		return nil, errors.New("experiment: nil dataset")
	}
	if err := cfg.Dataset.Validate(); err != nil {
		return nil, err
	}
	if cfg.NRounds <= 0 || cfg.NSim <= 0 {
		return nil, fmt.Errorf("experiment: need positive rounds/sims, got %d/%d", cfg.NRounds, cfg.NSim)
	}
	if cfg.SwapRound <= 0 {
		cfg.SwapRound = cfg.NRounds / 2
	}
	if cfg.ForgettingFactor == 0 {
		cfg.ForgettingFactor = 0.98
	}
	d := cfg.Dataset
	dim := d.Dim()
	scales := featureScales(d)

	res := &DriftResult{SwapRound: cfg.SwapRound}
	accStatic := make([][]float64, cfg.NRounds)
	accForget := make([][]float64, cfg.NRounds)

	root := rng.New(cfg.Seed)
	for sim := 0; sim < cfg.NSim; sim++ {
		simRng := root.Split()
		mk := func(forget float64) (*core.Bandit, error) {
			return core.New(d.Hardware, dim, core.Options{
				Seed:             simRng.Uint64(),
				FeatureScale:     scales,
				ForgettingFactor: forget,
				// Keep a little exploration alive forever so drift is
				// detectable at all: with the paper's pure decay the
				// post-swap environment would never be sampled.
				MinEpsilon: 0.05,
			})
		}
		static, err := mk(0)
		if err != nil {
			return nil, err
		}
		forgetting, err := mk(cfg.ForgettingFactor)
		if err != nil {
			return nil, err
		}
		for round := 0; round < cfg.NRounds; round++ {
			swapped := round >= cfg.SwapRound
			truth := driftTruth(d, swapped)
			run := d.Runs[simRng.Intn(len(d.Runs))]
			for bi, b := range []*core.Bandit{static, forgetting} {
				dec, err := b.Recommend(run.Features)
				if err != nil {
					return nil, err
				}
				rt := truth(dec.Arm, run.Features) + simRng.Normal(0, d.Noise(dec.Arm, run.Features))
				if err := b.Observe(dec.Arm, run.Features, rt); err != nil {
					return nil, err
				}
				acc := driftAccuracy(b, d, truth, simRng)
				if bi == 0 {
					accStatic[round] = append(accStatic[round], acc)
				} else {
					accForget[round] = append(accForget[round], acc)
				}
			}
		}
	}
	for r := 0; r < cfg.NRounds; r++ {
		res.Rounds = append(res.Rounds, r+1)
		res.AccStatic = append(res.AccStatic, stats.Mean(accStatic[r]))
		res.AccForgetting = append(res.AccForgetting, stats.Mean(accForget[r]))
	}
	return res, nil
}

// driftAccuracy scores strict best-arm accuracy against the *current*
// (possibly swapped) truth over a sample of the trace.
func driftAccuracy(b *core.Bandit, d *workloads.Dataset, truth func(int, []float64) float64, r *rng.Source) float64 {
	const sample = 100
	n := len(d.Runs)
	k := sample
	if k > n {
		k = n
	}
	correct := 0
	for _, i := range r.Sample(n, k) {
		x := d.Runs[i].Features
		sel, err := b.Exploit(x)
		if err != nil {
			return 0
		}
		best, bestV := 0, truth(0, x)
		for a := 1; a < len(d.Hardware); a++ {
			if v := truth(a, x); v < bestV {
				best, bestV = a, v
			}
		}
		if sel == best {
			correct++
		}
	}
	return float64(correct) / float64(k)
}

// AdaptiveDriftModes are the adaptation modes RunAdaptiveDrift
// compares, in result order: infinite-horizon learning, exponential
// forgetting, and a per-arm sliding window.
var AdaptiveDriftModes = []string{"none", "forgetting", "window"}

// AdaptiveDriftConfig configures the online-adaptation counterpart of
// RunDrift: the same mid-run environment swap, but comparing all three
// adaptation modes the serving layer offers (none / forgetting /
// window) with a per-arm Page-Hinkley drift detector running on each
// bandit's chosen-arm residuals — the identical signal a live Service
// stream monitors — so the offline recovery curves and the online
// detection delay can be read together.
type AdaptiveDriftConfig struct {
	// Dataset supplies features and the pre-drift ground truth.
	Dataset *workloads.Dataset
	// SwapRound is when the drift happens (default NRounds/2).
	SwapRound int
	// NRounds, NSim, Seed as in BanditConfig.
	NRounds int
	NSim    int
	Seed    uint64
	// ForgettingFactor for the forgetting bandit (0 selects 0.98) and
	// WindowSize for the windowed bandit (0 selects 64).
	ForgettingFactor float64
	WindowSize       int
	// Detector tunes the per-arm Page-Hinkley detectors; zero fields
	// select the drift package defaults plus a 20-sample warmup.
	Detector drift.Config
}

// AdaptiveDriftResult reports per-round accuracy per mode plus the
// detector outcomes.
type AdaptiveDriftResult struct {
	// Rounds holds the round index (1-based); Acc maps each mode in
	// AdaptiveDriftModes to its mean per-round accuracy.
	Rounds []int
	Acc    map[string][]float64
	// MeanDetections is the mean number of drift detections per
	// simulation per mode; MeanFirstDetection the mean round (1-based)
	// of the first detection among simulations that detected at all (0
	// when none did), and DetectRate the fraction of simulations with
	// at least one detection.
	MeanDetections     map[string]float64
	MeanFirstDetection map[string]float64
	DetectRate         map[string]float64
	// SwapRound echoes the drift point.
	SwapRound int
}

// RunAdaptiveDrift runs the three adaptation modes through the same
// drifting environment with online drift detection.
func RunAdaptiveDrift(cfg AdaptiveDriftConfig) (*AdaptiveDriftResult, error) {
	if cfg.Dataset == nil {
		return nil, errors.New("experiment: nil dataset")
	}
	if err := cfg.Dataset.Validate(); err != nil {
		return nil, err
	}
	if cfg.NRounds <= 0 || cfg.NSim <= 0 {
		return nil, fmt.Errorf("experiment: need positive rounds/sims, got %d/%d", cfg.NRounds, cfg.NSim)
	}
	if cfg.SwapRound <= 0 {
		cfg.SwapRound = cfg.NRounds / 2
	}
	if cfg.ForgettingFactor == 0 {
		cfg.ForgettingFactor = 0.98
	}
	if cfg.WindowSize == 0 {
		cfg.WindowSize = 64
	}
	if cfg.Detector.Warmup == 0 {
		cfg.Detector.Warmup = 20
	}
	if err := cfg.Detector.Validate(); err != nil {
		return nil, err
	}
	d := cfg.Dataset
	dim := d.Dim()
	scales := featureScales(d)
	modes := AdaptiveDriftModes

	res := &AdaptiveDriftResult{
		SwapRound:          cfg.SwapRound,
		Acc:                make(map[string][]float64, len(modes)),
		MeanDetections:     make(map[string]float64, len(modes)),
		MeanFirstDetection: make(map[string]float64, len(modes)),
		DetectRate:         make(map[string]float64, len(modes)),
	}
	acc := make(map[string][][]float64, len(modes))
	for _, m := range modes {
		acc[m] = make([][]float64, cfg.NRounds)
	}
	totalDet := make(map[string]float64, len(modes))
	firstDetSum := make(map[string]float64, len(modes))
	firstDetN := make(map[string]int, len(modes))

	root := rng.New(cfg.Seed)
	for sim := 0; sim < cfg.NSim; sim++ {
		simRng := root.Split()
		mk := func(forget float64, window int) (*core.Bandit, error) {
			return core.New(d.Hardware, dim, core.Options{
				Seed:             simRng.Uint64(),
				FeatureScale:     scales,
				ForgettingFactor: forget,
				WindowSize:       window,
				// Keep a little exploration alive forever so drift is
				// detectable at all (as in RunDrift).
				MinEpsilon: 0.05,
			})
		}
		bandits := make(map[string]*core.Bandit, len(modes))
		detectors := make(map[string][]*drift.PageHinkley, len(modes))
		firstDet := make(map[string]int, len(modes))
		var err error
		for _, m := range modes {
			switch m {
			case "forgetting":
				bandits[m], err = mk(cfg.ForgettingFactor, 0)
			case "window":
				bandits[m], err = mk(0, cfg.WindowSize)
			default:
				bandits[m], err = mk(0, 0)
			}
			if err != nil {
				return nil, err
			}
			ds := make([]*drift.PageHinkley, len(d.Hardware))
			for i := range ds {
				if ds[i], err = drift.New(cfg.Detector); err != nil {
					return nil, err
				}
			}
			detectors[m] = ds
		}
		for round := 0; round < cfg.NRounds; round++ {
			swapped := round >= cfg.SwapRound
			truth := driftTruth(d, swapped)
			run := d.Runs[simRng.Intn(len(d.Runs))]
			for _, m := range modes {
				b := bandits[m]
				dec, err := b.Recommend(run.Features)
				if err != nil {
					return nil, err
				}
				rt := truth(dec.Arm, run.Features) + simRng.Normal(0, d.Noise(dec.Arm, run.Features))
				// The same residual a live stream monitors: observed
				// signal minus the pre-update prediction for the arm.
				if detectors[m][dec.Arm].Add(rt-dec.Predicted[dec.Arm]) && firstDet[m] == 0 {
					firstDet[m] = round + 1
				}
				if err := b.Observe(dec.Arm, run.Features, rt); err != nil {
					return nil, err
				}
				acc[m][round] = append(acc[m][round], driftAccuracy(b, d, truth, simRng))
			}
		}
		for _, m := range modes {
			for _, det := range detectors[m] {
				totalDet[m] += float64(det.Detections())
			}
			if firstDet[m] > 0 {
				firstDetSum[m] += float64(firstDet[m])
				firstDetN[m]++
			}
		}
	}
	for r := 0; r < cfg.NRounds; r++ {
		res.Rounds = append(res.Rounds, r+1)
	}
	for _, m := range modes {
		series := make([]float64, cfg.NRounds)
		for r := 0; r < cfg.NRounds; r++ {
			series[r] = stats.Mean(acc[m][r])
		}
		res.Acc[m] = series
		res.MeanDetections[m] = totalDet[m] / float64(cfg.NSim)
		res.DetectRate[m] = float64(firstDetN[m]) / float64(cfg.NSim)
		if firstDetN[m] > 0 {
			res.MeanFirstDetection[m] = firstDetSum[m] / float64(firstDetN[m])
		}
	}
	return res, nil
}
