package experiment

import (
	"errors"
	"fmt"

	"banditware/internal/core"
	"banditware/internal/rng"
	"banditware/internal/stats"
	"banditware/internal/workloads"
)

// DriftConfig configures a non-stationarity experiment: halfway through
// the run the environment permutes which hardware behaves like which
// (e.g. a cluster upgrade or co-tenancy change), and we measure how fast
// recommenders with and without forgetting recover. This implements the
// paper's "adapting to dynamic environments" motivation as a concrete,
// measurable protocol.
type DriftConfig struct {
	// Dataset supplies features and the pre-drift ground truth.
	Dataset *workloads.Dataset
	// SwapRound is when the drift happens (default NRounds/2).
	SwapRound int
	// NRounds, NSim, Seed as in BanditConfig.
	NRounds int
	NSim    int
	Seed    uint64
	// ForgettingFactor for the adaptive bandit (the baseline bandit runs
	// without forgetting). 0 selects 0.98.
	ForgettingFactor float64
}

// DriftResult reports per-round accuracy for both bandits.
type DriftResult struct {
	// Rounds holds the round index (1-based).
	Rounds []int
	// AccStatic / AccForgetting are mean accuracies per round for the
	// plain bandit and the forgetting bandit.
	AccStatic     []float64
	AccForgetting []float64
	// SwapRound echoes the drift point.
	SwapRound int
}

// driftTruth returns the effective ground truth at a given round: before
// the swap it is the dataset's; after, arms are reversed (arm i behaves
// like arm n-1-i) — a worst-case permutation drift.
func driftTruth(d *workloads.Dataset, swapped bool) func(arm int, x []float64) float64 {
	if !swapped {
		return d.Truth
	}
	n := len(d.Hardware)
	return func(arm int, x []float64) float64 {
		return d.Truth(n-1-arm, x)
	}
}

// RunDrift runs both bandits through the same drifting environment.
func RunDrift(cfg DriftConfig) (*DriftResult, error) {
	if cfg.Dataset == nil {
		return nil, errors.New("experiment: nil dataset")
	}
	if err := cfg.Dataset.Validate(); err != nil {
		return nil, err
	}
	if cfg.NRounds <= 0 || cfg.NSim <= 0 {
		return nil, fmt.Errorf("experiment: need positive rounds/sims, got %d/%d", cfg.NRounds, cfg.NSim)
	}
	if cfg.SwapRound <= 0 {
		cfg.SwapRound = cfg.NRounds / 2
	}
	if cfg.ForgettingFactor == 0 {
		cfg.ForgettingFactor = 0.98
	}
	d := cfg.Dataset
	dim := d.Dim()
	scales := featureScales(d)

	res := &DriftResult{SwapRound: cfg.SwapRound}
	accStatic := make([][]float64, cfg.NRounds)
	accForget := make([][]float64, cfg.NRounds)

	root := rng.New(cfg.Seed)
	for sim := 0; sim < cfg.NSim; sim++ {
		simRng := root.Split()
		mk := func(forget float64) (*core.Bandit, error) {
			return core.New(d.Hardware, dim, core.Options{
				Seed:             simRng.Uint64(),
				FeatureScale:     scales,
				ForgettingFactor: forget,
				// Keep a little exploration alive forever so drift is
				// detectable at all: with the paper's pure decay the
				// post-swap environment would never be sampled.
				MinEpsilon: 0.05,
			})
		}
		static, err := mk(0)
		if err != nil {
			return nil, err
		}
		forgetting, err := mk(cfg.ForgettingFactor)
		if err != nil {
			return nil, err
		}
		for round := 0; round < cfg.NRounds; round++ {
			swapped := round >= cfg.SwapRound
			truth := driftTruth(d, swapped)
			run := d.Runs[simRng.Intn(len(d.Runs))]
			for bi, b := range []*core.Bandit{static, forgetting} {
				dec, err := b.Recommend(run.Features)
				if err != nil {
					return nil, err
				}
				rt := truth(dec.Arm, run.Features) + simRng.Normal(0, d.Noise(dec.Arm, run.Features))
				if err := b.Observe(dec.Arm, run.Features, rt); err != nil {
					return nil, err
				}
				acc := driftAccuracy(b, d, truth, simRng)
				if bi == 0 {
					accStatic[round] = append(accStatic[round], acc)
				} else {
					accForget[round] = append(accForget[round], acc)
				}
			}
		}
	}
	for r := 0; r < cfg.NRounds; r++ {
		res.Rounds = append(res.Rounds, r+1)
		res.AccStatic = append(res.AccStatic, stats.Mean(accStatic[r]))
		res.AccForgetting = append(res.AccForgetting, stats.Mean(accForget[r]))
	}
	return res, nil
}

// driftAccuracy scores strict best-arm accuracy against the *current*
// (possibly swapped) truth over a sample of the trace.
func driftAccuracy(b *core.Bandit, d *workloads.Dataset, truth func(int, []float64) float64, r *rng.Source) float64 {
	const sample = 100
	n := len(d.Runs)
	k := sample
	if k > n {
		k = n
	}
	correct := 0
	for _, i := range r.Sample(n, k) {
		x := d.Runs[i].Features
		sel, err := b.Exploit(x)
		if err != nil {
			return 0
		}
		best, bestV := 0, truth(0, x)
		for a := 1; a < len(d.Hardware); a++ {
			if v := truth(a, x); v < bestV {
				best, bestV = a, v
			}
		}
		if sel == best {
			correct++
		}
	}
	return float64(correct) / float64(k)
}
