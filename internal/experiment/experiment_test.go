package experiment

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"banditware/internal/core"
	"banditware/internal/hardware"
	"banditware/internal/policy"
	"banditware/internal/workloads"
)

func smallCycles(t *testing.T) *workloads.Dataset {
	t.Helper()
	d, err := workloads.GenerateCycles(workloads.CyclesOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRunBanditShapeAndDeterminism(t *testing.T) {
	cfg := BanditConfig{
		Dataset: smallCycles(t),
		Options: core.Options{},
		NRounds: 20,
		NSim:    4,
		Seed:    7,
	}
	res1, err := RunBandit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Rounds) != 20 {
		t.Fatalf("rounds = %d, want 20", len(res1.Rounds))
	}
	if res1.RandomAccuracy != 0.25 {
		t.Fatalf("random accuracy = %v, want 1/4", res1.RandomAccuracy)
	}
	if len(res1.FinalModels) != 4 {
		t.Fatalf("final models = %d, want 4", len(res1.FinalModels))
	}
	// Determinism: same config, same output.
	res2, err := RunBandit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res1.Rounds {
		if res1.Rounds[i] != res2.Rounds[i] {
			t.Fatalf("round %d not deterministic", i)
		}
	}
}

func TestRunBanditConvergesOnCycles(t *testing.T) {
	// The paper's core claim (Figure 4a): within tens of rounds the
	// bandit's RMSE approaches the full-fit baseline.
	cfg := BanditConfig{
		Dataset: smallCycles(t),
		Options: core.Options{},
		NRounds: 100,
		NSim:    10,
		Seed:    11,
	}
	res, err := RunBandit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	early := res.Rounds[2].RMSEMean
	late := res.Rounds[len(res.Rounds)-1].RMSEMean
	if late >= early {
		t.Fatalf("RMSE did not improve: round 3 %v vs final %v", early, late)
	}
	// Final RMSE within 3x of baseline (paper: matches baseline with ~20
	// samples; the looser bound keeps the test robust to seeds).
	if late > 3*res.BaselineRMSE {
		t.Fatalf("final RMSE %v far above baseline %v", late, res.BaselineRMSE)
	}
	// Accuracy should end well above random (0.25) on this separable
	// dataset.
	finalAcc := res.Rounds[len(res.Rounds)-1].AccMean
	if finalAcc < 0.5 {
		t.Fatalf("final accuracy %v, want > 0.5", finalAcc)
	}
}

func TestRunBanditValidation(t *testing.T) {
	d := smallCycles(t)
	if _, err := RunBandit(BanditConfig{Dataset: nil, NRounds: 1, NSim: 1}); err == nil {
		t.Fatal("nil dataset should fail")
	}
	if _, err := RunBandit(BanditConfig{Dataset: d, NRounds: 0, NSim: 1}); err == nil {
		t.Fatal("zero rounds should fail")
	}
	if _, err := RunBandit(BanditConfig{Dataset: d, NRounds: 1, NSim: 0}); err == nil {
		t.Fatal("zero sims should fail")
	}
}

func TestAccuracySampling(t *testing.T) {
	cfg := BanditConfig{
		Dataset:        smallCycles(t),
		Options:        core.Options{},
		NRounds:        10,
		NSim:           2,
		Seed:           3,
		AccuracySample: 20,
	}
	res, err := RunBandit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rounds {
		if r.AccMean < 0 || r.AccMean > 1 {
			t.Fatalf("accuracy %v outside [0,1]", r.AccMean)
		}
	}
}

func TestBP3DAccuracyNearRandom(t *testing.T) {
	// The paper's Experiment 2 negative result: with near-identical
	// hardware, accuracy hovers near 1/3 regardless of training.
	d, err := workloads.GenerateBP3D(workloads.BP3DOptions{Seed: 5, NumRuns: 300})
	if err != nil {
		t.Fatal(err)
	}
	cfg := BanditConfig{
		Dataset: d,
		Options: core.Options{},
		NRounds: 50,
		NSim:    6,
		Seed:    5,
	}
	res, err := RunBandit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	final := res.Rounds[len(res.Rounds)-1].AccMean
	if final > 0.65 {
		t.Fatalf("BP3D accuracy %v suspiciously high for near-identical arms", final)
	}
	// The baseline itself is also near random — that is the point.
	if res.BaselineAccuracy > 0.8 {
		t.Fatalf("BP3D baseline accuracy %v should also be noise-limited", res.BaselineAccuracy)
	}
}

func TestRunLinRegDefaults(t *testing.T) {
	res, err := RunLinReg(LinRegConfig{Dataset: smallCycles(t), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RMSE) != 100 || len(res.R2) != 100 || len(res.TrainSeconds) != 100 {
		t.Fatalf("distribution sizes %d/%d/%d, want 100 each",
			len(res.RMSE), len(res.R2), len(res.TrainSeconds))
	}
	sum, err := res.RMSESummary()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Min < 0 {
		t.Fatal("negative RMSE")
	}
	if _, err := res.R2Summary(); err != nil {
		t.Fatal(err)
	}
}

func TestRunLinRegNormalized(t *testing.T) {
	d, err := workloads.GenerateBP3D(workloads.BP3DOptions{Seed: 9, NumRuns: 400})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLinReg(LinRegConfig{Dataset: d, NModels: 30, TrainN: 25, Normalize: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Normalised RMSE for 25-sample BP3D fits should sit in the paper's
	// sub-2.0 band (Figure 5 shows ~0.5–0.9).
	sum, _ := res.RMSESummary()
	if sum.Median > 3 {
		t.Fatalf("normalised RMSE median = %v, want O(1)", sum.Median)
	}
}

func TestRunLinRegValidation(t *testing.T) {
	if _, err := RunLinReg(LinRegConfig{}); err == nil {
		t.Fatal("nil dataset should fail")
	}
	if _, err := RunLinReg(LinRegConfig{Dataset: smallCycles(t), NModels: -1}); err == nil {
		t.Fatal("negative NModels should fail")
	}
}

func TestRunFit(t *testing.T) {
	d := smallCycles(t)
	series, res, err := RunFit(FitConfig{
		Bandit: BanditConfig{
			Dataset: d,
			Options: core.Options{},
			NRounds: 60,
			NSim:    1,
			Seed:    13,
		},
		Feature: "num_tasks",
		Lo:      100, Hi: 500, Steps: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(series) != 4 {
		t.Fatalf("series = %d, want 4", len(series))
	}
	for _, s := range series {
		if len(s.X) != 9 || len(s.Actual) != 9 || len(s.Predicted) != 9 || len(s.FullFit) != 9 {
			t.Fatalf("series %s has ragged lengths", s.ArmName)
		}
		// Ground truth is increasing in num_tasks.
		if s.Actual[8] <= s.Actual[0] {
			t.Fatalf("series %s actual not increasing", s.ArmName)
		}
		// The full fit should track the truth closely (low noise).
		for i := range s.X {
			if math.Abs(s.FullFit[i]-s.Actual[i]) > 200 {
				t.Fatalf("series %s full fit off truth by %v at %v",
					s.ArmName, s.FullFit[i]-s.Actual[i], s.X[i])
			}
		}
	}
}

func TestRunFitValidation(t *testing.T) {
	d := smallCycles(t)
	base := BanditConfig{Dataset: d, NRounds: 5, NSim: 1, Seed: 1}
	if _, _, err := RunFit(FitConfig{Bandit: base, Feature: "bogus", Lo: 0, Hi: 1, Steps: 3}); err == nil {
		t.Fatal("unknown feature should fail")
	}
	if _, _, err := RunFit(FitConfig{Bandit: base, Feature: "num_tasks", Lo: 0, Hi: 1, Steps: 1}); err == nil {
		t.Fatal("single-step sweep should fail")
	}
	if _, _, err := RunFit(FitConfig{Bandit: base, Feature: "num_tasks", Lo: 5, Hi: 5, Steps: 3}); err == nil {
		t.Fatal("empty sweep should fail")
	}
}

func TestRunSweepOrderingAndOracle(t *testing.T) {
	d := smallCycles(t)
	cfg := SweepConfig{
		Dataset: d,
		NRounds: 80,
		NSim:    3,
		Seed:    17,
		Policies: map[string]PolicyFactory{
			"oracle": func(numArms, dim int, seed uint64) (policy.Policy, error) {
				return policy.NewOracle(numArms, dim, d.Truth)
			},
			"random": func(numArms, dim int, seed uint64) (policy.Policy, error) {
				return policy.NewRandom(numArms, dim, seed)
			},
			"algorithm1": func(numArms, dim int, seed uint64) (policy.Policy, error) {
				return policy.NewDecayingEpsilonGreedy(d.Hardware, dim, core.Options{Seed: seed})
			},
		},
	}
	rows, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	byName := map[string]SweepRow{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	// Oracle: perfect accuracy, zero regret.
	if byName["oracle"].FinalAccuracy != 1 || byName["oracle"].MeanRegret > 1e-9 {
		t.Fatalf("oracle row = %+v", byName["oracle"])
	}
	// Random must have positive regret, above the oracle's.
	if byName["random"].MeanRegret <= byName["oracle"].MeanRegret {
		t.Fatal("random regret should exceed oracle regret")
	}
	// Algorithm 1 should beat random on both accuracy and regret.
	if byName["algorithm1"].FinalAccuracy <= byName["random"].FinalAccuracy {
		t.Fatalf("algorithm1 accuracy %v not above random %v",
			byName["algorithm1"].FinalAccuracy, byName["random"].FinalAccuracy)
	}
	if byName["algorithm1"].MeanRegret >= byName["random"].MeanRegret {
		t.Fatalf("algorithm1 regret %v not below random %v",
			byName["algorithm1"].MeanRegret, byName["random"].MeanRegret)
	}
}

func TestRunSweepValidation(t *testing.T) {
	d := smallCycles(t)
	if _, err := RunSweep(SweepConfig{Dataset: d, NRounds: 1, NSim: 1}); err == nil {
		t.Fatal("no policies should fail")
	}
	if _, err := RunSweep(SweepConfig{Dataset: nil, NRounds: 1, NSim: 1}); err == nil {
		t.Fatal("nil dataset should fail")
	}
}

func TestRunToleranceGrid(t *testing.T) {
	d, err := workloads.GenerateMatMul(workloads.MatMulOptions{Seed: 6, RepsSmall: 2, RepsLarge: 2})
	if err != nil {
		t.Fatal(err)
	}
	base := BanditConfig{
		Dataset: d,
		Options: core.Options{},
		NRounds: 15,
		NSim:    2,
		Seed:    19,
	}
	points, err := RunToleranceGrid(base, []float64{0, 0.05}, []float64{0, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("grid points = %d, want 4", len(points))
	}
	cost := map[string]float64{}
	for _, p := range points {
		cost[p.Label] = p.MeanCost
	}
	// More tolerance must never increase the selected-hardware cost: the
	// envelope only grows, and efficiency picks the cheapest inside it.
	if cost["tr=0,ts=20"] > cost["tr=0,ts=0"]+1e-9 {
		t.Fatalf("seconds tolerance raised cost: %v > %v", cost["tr=0,ts=20"], cost["tr=0,ts=0"])
	}
	if cost["tr=0.05,ts=0"] > cost["tr=0,ts=0"]+1e-9 {
		t.Fatalf("ratio tolerance raised cost: %v > %v", cost["tr=0.05,ts=0"], cost["tr=0,ts=0"])
	}
}

func TestOutputWriters(t *testing.T) {
	cfg := BanditConfig{Dataset: smallCycles(t), NRounds: 5, NSim: 2, Seed: 1}
	res, err := RunBandit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRoundsCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("rounds csv lines = %d, want 6", len(lines))
	}
	md := MarkdownRounds(res, nil)
	if !strings.Contains(md, "Baseline (full fit)") {
		t.Fatal("markdown missing baseline line")
	}
	lr, err := RunLinReg(LinRegConfig{Dataset: smallCycles(t), NModels: 5, TrainN: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteLinRegCSV(&buf, lr); err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); got != 6 {
		t.Fatalf("linreg csv lines = %d, want 6", got)
	}
	series, _, err := RunFit(FitConfig{
		Bandit:  BanditConfig{Dataset: smallCycles(t), NRounds: 5, NSim: 1, Seed: 1},
		Feature: "num_tasks", Lo: 100, Hi: 500, Steps: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteFitCSV(&buf, series, "num_tasks"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hardware,num_tasks") {
		t.Fatal("fit csv missing header")
	}
	buf.Reset()
	if err := WriteSweepCSV(&buf, []SweepRow{{Policy: "x", FinalAccuracy: 1}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "policy,final_accuracy") {
		t.Fatal("sweep csv missing header")
	}
}

func TestHardwareSeparabilityDrivesAccuracy(t *testing.T) {
	// Integration check across workloads: separable hardware (cycles)
	// must yield materially higher accuracy than near-identical hardware
	// (bp3d) under the same protocol — the paper's headline contrast.
	cycles := smallCycles(t)
	bp3d, err := workloads.GenerateBP3D(workloads.BP3DOptions{Seed: 23, NumRuns: 200})
	if err != nil {
		t.Fatal(err)
	}
	run := func(d *workloads.Dataset) float64 {
		res, err := RunBandit(BanditConfig{
			Dataset: d, Options: core.Options{}, NRounds: 60, NSim: 5, Seed: 29,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Rounds[len(res.Rounds)-1].AccMean
	}
	accCycles := run(cycles)
	accBP3D := run(bp3d)
	if accCycles <= accBP3D {
		t.Fatalf("cycles accuracy %v not above bp3d %v", accCycles, accBP3D)
	}
}

var _ = hardware.NDPDefault // keep the import for helper extensions
