package experiment

import (
	"fmt"
	"io"
	"strings"
)

// WriteRoundsCSV writes the per-round aggregates in the column layout
// the paper's figures plot (round, rmse mean/std, accuracy mean/std).
func WriteRoundsCSV(w io.Writer, res *BanditResult) error {
	if _, err := fmt.Fprintln(w, "round,rmse_mean,rmse_std,acc_mean,acc_std"); err != nil {
		return err
	}
	for _, r := range res.Rounds {
		if _, err := fmt.Fprintf(w, "%d,%g,%g,%g,%g\n",
			r.Round, r.RMSEMean, r.RMSEStd, r.AccMean, r.AccStd); err != nil {
			return err
		}
	}
	return nil
}

// WriteLinRegCSV writes the per-model score distribution.
func WriteLinRegCSV(w io.Writer, res *LinRegResult) error {
	if _, err := fmt.Fprintln(w, "model,rmse,r2,train_seconds"); err != nil {
		return err
	}
	for i := range res.RMSE {
		if _, err := fmt.Fprintf(w, "%d,%g,%g,%g\n",
			i, res.RMSE[i], res.R2[i], res.TrainSeconds[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteFitCSV writes fit-overlay series in long form.
func WriteFitCSV(w io.Writer, series []FitSeries, feature string) error {
	if _, err := fmt.Fprintf(w, "hardware,%s,actual,predicted,full_fit\n", feature); err != nil {
		return err
	}
	for _, s := range series {
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%g,%g,%g,%g\n",
				s.ArmName, s.X[i], s.Actual[i], s.Predicted[i], s.FullFit[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteSweepCSV writes a policy sweep.
func WriteSweepCSV(w io.Writer, rows []SweepRow) error {
	if _, err := fmt.Fprintln(w, "policy,final_accuracy,mean_regret_s,total_runtime_s,total_reward,mean_chosen_cost"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%g,%g,%g,%g,%g\n",
			r.Policy, r.FinalAccuracy, r.MeanRegret, r.TotalRuntime, r.TotalReward, r.MeanChosenCost); err != nil {
			return err
		}
	}
	return nil
}

// MarkdownRounds renders selected rounds as a Markdown table for
// EXPERIMENTS.md (every round would be noise; pick holds the rounds to
// include, nil meaning {1, 5, 10, 25, 50, last}).
func MarkdownRounds(res *BanditResult, pick []int) string {
	if pick == nil {
		pick = []int{1, 5, 10, 25, 50, len(res.Rounds)}
	}
	var b strings.Builder
	b.WriteString("| round | RMSE (mean ± std) | accuracy (mean ± std) |\n")
	b.WriteString("|---|---|---|\n")
	seen := map[int]bool{}
	for _, r := range pick {
		if r < 1 || r > len(res.Rounds) || seen[r] {
			continue
		}
		seen[r] = true
		st := res.Rounds[r-1]
		fmt.Fprintf(&b, "| %d | %.4g ± %.4g | %.3f ± %.3f |\n",
			st.Round, st.RMSEMean, st.RMSEStd, st.AccMean, st.AccStd)
	}
	fmt.Fprintf(&b, "\nBaseline (full fit): RMSE %.4g, accuracy %.3f; random accuracy %.3f.\n",
		res.BaselineRMSE, res.BaselineAccuracy, res.RandomAccuracy)
	return b.String()
}
