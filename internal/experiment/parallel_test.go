package experiment

import (
	"testing"

	"banditware/internal/core"
	"banditware/internal/workloads"
)

func TestParallelMatchesSerial(t *testing.T) {
	d, err := workloads.GenerateCycles(workloads.CyclesOptions{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	base := BanditConfig{
		Dataset: d,
		Options: core.Options{ToleranceSeconds: 20},
		NRounds: 30,
		NSim:    8,
		Seed:    41,
	}
	serial := base
	serial.Parallel = 1
	sres, err := RunBandit(serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, -1} {
		par := base
		par.Parallel = workers
		pres, err := RunBandit(par)
		if err != nil {
			t.Fatal(err)
		}
		for r := range sres.Rounds {
			if sres.Rounds[r] != pres.Rounds[r] {
				t.Fatalf("workers=%d: round %d diverged: %+v vs %+v",
					workers, r, sres.Rounds[r], pres.Rounds[r])
			}
		}
		if len(pres.FinalModels) != len(sres.FinalModels) {
			t.Fatal("final model count diverged")
		}
		for i := range sres.FinalModels {
			if sres.FinalModels[i].Bias != pres.FinalModels[i].Bias {
				t.Fatalf("workers=%d: final model %d diverged", workers, i)
			}
		}
	}
}

func TestParallelMoreWorkersThanSims(t *testing.T) {
	d, err := workloads.GenerateCycles(workloads.CyclesOptions{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBandit(BanditConfig{
		Dataset:  d,
		NRounds:  5,
		NSim:     2,
		Seed:     43,
		Parallel: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 5 {
		t.Fatal("truncated result")
	}
}
