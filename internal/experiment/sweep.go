package experiment

import (
	"errors"
	"fmt"
	"sort"

	"banditware/internal/policy"
	"banditware/internal/reward"
	"banditware/internal/rng"
	"banditware/internal/stats"
	"banditware/internal/workloads"
)

// PolicyFactory builds a fresh policy instance for one simulation.
// Factories receive a seed so stochastic policies stay reproducible yet
// independent across simulations.
type PolicyFactory func(numArms, dim int, seed uint64) (policy.Policy, error)

// SweepConfig configures a policy-comparison sweep — the ablation axis
// the paper defers to future work ("different and more complex contextual
// bandit algorithms").
type SweepConfig struct {
	Dataset  *workloads.Dataset
	NRounds  int
	NSim     int
	Seed     uint64
	Policies map[string]PolicyFactory
	// Reward selects the learning signal, exactly as a serving stream's
	// StreamConfig.Reward does: each observed runtime is wrapped in an
	// Outcome and scored against the chosen arm's hardware by the same
	// reward functions the server uses (internal/reward), so offline
	// sweeps evaluate the reward regime a stream would deploy with. The
	// zero value is the runtime reward — the paper's protocol unchanged.
	Reward reward.Spec
}

// SweepRow reports one policy's aggregate behaviour.
type SweepRow struct {
	Policy string
	// FinalAccuracy is the strict best-arm accuracy over the trace after
	// the last round (mean over simulations). "Best" is reward-best: the
	// arm minimising the configured reward of the ground-truth runtime
	// (identical to fastest under the default runtime reward).
	FinalAccuracy float64
	// MeanRegret is the per-round mean of reward(chosen) − reward(best),
	// averaged over rounds and simulations — the bandit-literature
	// regret, in the reward's (runtime-denominated) units.
	MeanRegret float64
	// TotalRuntime is the mean cumulative observed runtime across a
	// simulation (what a user would actually have waited); TotalReward
	// the mean cumulative reward score (identical under the default
	// reward).
	TotalRuntime float64
	TotalReward  float64
	// MeanChosenCost is the mean hardware.Config.Cost of the arms the
	// policy chose online — the resource footprint the reward regime
	// steers toward.
	MeanChosenCost float64
}

// RunSweep runs every policy through the same online protocol and
// reports accuracy and regret.
func RunSweep(cfg SweepConfig) ([]SweepRow, error) {
	if cfg.Dataset == nil {
		return nil, errors.New("experiment: nil dataset")
	}
	if err := cfg.Dataset.Validate(); err != nil {
		return nil, err
	}
	if cfg.NRounds <= 0 || cfg.NSim <= 0 {
		return nil, fmt.Errorf("experiment: need positive rounds/sims, got %d/%d", cfg.NRounds, cfg.NSim)
	}
	if len(cfg.Policies) == 0 {
		return nil, errors.New("experiment: no policies to sweep")
	}
	d := cfg.Dataset
	dim := d.Dim()
	numArms := len(d.Hardware)

	rewardFn, _, err := reward.Compile(cfg.Reward)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	// score maps a runtime on an arm to the learning/evaluation signal —
	// the same collapse a serving stream with this RewardSpec applies.
	score := func(arm int, rt float64) float64 {
		return rewardFn(reward.Outcome{Runtime: rt}, d.Hardware[arm])
	}
	// rewardBest is the ground-truth best arm under the reward: the arm
	// minimising the reward of its true (noise-free) runtime. Under the
	// default runtime reward this is exactly d.BestArm(x, 0, 0).
	rewardBest := func(x []float64) int {
		best, bestScore := 0, 0.0
		for arm := 0; arm < numArms; arm++ {
			s := score(arm, d.Truth(arm, x))
			if arm == 0 || s < bestScore {
				best, bestScore = arm, s
			}
		}
		return best
	}

	// Deterministic policy order: sort names.
	names := make([]string, 0, len(cfg.Policies))
	for n := range cfg.Policies {
		names = append(names, n)
	}
	sort.Strings(names)

	var rows []SweepRow
	for _, name := range names {
		factory := cfg.Policies[name]
		root := rng.New(cfg.Seed)
		accs := make([]float64, 0, cfg.NSim)
		regrets := make([]float64, 0, cfg.NSim)
		totals := make([]float64, 0, cfg.NSim)
		totalRewards := make([]float64, 0, cfg.NSim)
		costs := make([]float64, 0, cfg.NSim)
		for sim := 0; sim < cfg.NSim; sim++ {
			simRng := root.Split()
			p, err := factory(numArms, dim, simRng.Uint64())
			if err != nil {
				return nil, fmt.Errorf("experiment: policy %q: %w", name, err)
			}
			var regret, total, totalReward, cost float64
			for round := 0; round < cfg.NRounds; round++ {
				run := d.Runs[simRng.Intn(len(d.Runs))]
				arm, err := p.Select(run.Features)
				if err != nil {
					return nil, fmt.Errorf("experiment: policy %q select: %w", name, err)
				}
				rt := d.SampleRuntime(arm, run.Features, simRng)
				sc := score(arm, rt)
				if err := p.Update(arm, run.Features, sc); err != nil {
					return nil, fmt.Errorf("experiment: policy %q update: %w", name, err)
				}
				best := rewardBest(run.Features)
				regret += score(arm, d.Truth(arm, run.Features)) - score(best, d.Truth(best, run.Features))
				total += rt
				totalReward += sc
				cost += d.Hardware[arm].Cost()
			}
			// Final strict accuracy over the trace, using the learned
			// model's choice rather than the (possibly exploring) Select.
			choose := p.Select
			if e, ok := p.(policy.Exploiter); ok {
				choose = e.Exploit
			}
			correct := 0
			for _, run := range d.Runs {
				arm, err := choose(run.Features)
				if err != nil {
					return nil, err
				}
				if arm == rewardBest(run.Features) {
					correct++
				}
			}
			accs = append(accs, float64(correct)/float64(len(d.Runs)))
			regrets = append(regrets, regret/float64(cfg.NRounds))
			totals = append(totals, total)
			totalRewards = append(totalRewards, totalReward)
			costs = append(costs, cost/float64(cfg.NRounds))
		}
		rows = append(rows, SweepRow{
			Policy:         name,
			FinalAccuracy:  stats.Mean(accs),
			MeanRegret:     stats.Mean(regrets),
			TotalRuntime:   stats.Mean(totals),
			TotalReward:    stats.Mean(totalRewards),
			MeanChosenCost: stats.Mean(costs),
		})
	}
	return rows, nil
}

// ParamPoint is one cell of a parameter-grid ablation.
type ParamPoint struct {
	Label string
	// FinalAccuracy and FinalRMSE summarise the last round.
	FinalAccuracy float64
	FinalRMSE     float64
	// MeanCost is the mean hardware resource cost of the arms the
	// tolerant selection picks over the trace after training — the
	// quantity the tolerance knobs trade runtime against.
	MeanCost float64
}

// RunToleranceGrid ablates the (tolerance_ratio × tolerance_seconds)
// grid: each cell runs the full bandit experiment and reports final
// accuracy plus the mean resource cost of selected hardware.
func RunToleranceGrid(base BanditConfig, ratios, seconds []float64) ([]ParamPoint, error) {
	if err := base.validate(); err != nil {
		return nil, err
	}
	var out []ParamPoint
	for _, tr := range ratios {
		for _, ts := range seconds {
			cfg := base
			cfg.Options.ToleranceRatio = tr
			cfg.Options.ToleranceSeconds = ts
			res, err := RunBandit(cfg)
			if err != nil {
				return nil, err
			}
			last := res.Rounds[len(res.Rounds)-1]
			cost, err := meanSelectedCost(cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, ParamPoint{
				Label:         fmt.Sprintf("tr=%g,ts=%g", tr, ts),
				FinalAccuracy: last.AccMean,
				FinalRMSE:     last.RMSEMean,
				MeanCost:      cost,
			})
		}
	}
	return out, nil
}

// meanSelectedCost reports the mean hardware cost of the ground-truth
// tolerant-best arms over the trace: the resource footprint the tolerance
// settings steer toward.
func meanSelectedCost(cfg BanditConfig) (float64, error) {
	d := cfg.Dataset
	tr, ts := cfg.Options.ToleranceRatio, cfg.Options.ToleranceSeconds
	total := 0.0
	for _, run := range d.Runs {
		best := d.BestArm(run.Features, tr, ts)
		total += d.Hardware[best].Cost()
	}
	return total / float64(len(d.Runs)), nil
}
