package experiment

import (
	"errors"
	"fmt"
	"sort"

	"banditware/internal/policy"
	"banditware/internal/rng"
	"banditware/internal/stats"
	"banditware/internal/workloads"
)

// PolicyFactory builds a fresh policy instance for one simulation.
// Factories receive a seed so stochastic policies stay reproducible yet
// independent across simulations.
type PolicyFactory func(numArms, dim int, seed uint64) (policy.Policy, error)

// SweepConfig configures a policy-comparison sweep — the ablation axis
// the paper defers to future work ("different and more complex contextual
// bandit algorithms").
type SweepConfig struct {
	Dataset  *workloads.Dataset
	NRounds  int
	NSim     int
	Seed     uint64
	Policies map[string]PolicyFactory
}

// SweepRow reports one policy's aggregate behaviour.
type SweepRow struct {
	Policy string
	// FinalAccuracy is the strict best-arm accuracy over the trace after
	// the last round (mean over simulations).
	FinalAccuracy float64
	// MeanRegret is the per-round mean of truth(chosen) − truth(best),
	// averaged over rounds and simulations — the bandit-literature regret
	// in seconds.
	MeanRegret float64
	// TotalRuntime is the mean cumulative observed runtime across a
	// simulation (what a user would actually have waited).
	TotalRuntime float64
}

// RunSweep runs every policy through the same online protocol and
// reports accuracy and regret.
func RunSweep(cfg SweepConfig) ([]SweepRow, error) {
	if cfg.Dataset == nil {
		return nil, errors.New("experiment: nil dataset")
	}
	if err := cfg.Dataset.Validate(); err != nil {
		return nil, err
	}
	if cfg.NRounds <= 0 || cfg.NSim <= 0 {
		return nil, fmt.Errorf("experiment: need positive rounds/sims, got %d/%d", cfg.NRounds, cfg.NSim)
	}
	if len(cfg.Policies) == 0 {
		return nil, errors.New("experiment: no policies to sweep")
	}
	d := cfg.Dataset
	dim := d.Dim()
	numArms := len(d.Hardware)

	// Deterministic policy order: sort names.
	names := make([]string, 0, len(cfg.Policies))
	for n := range cfg.Policies {
		names = append(names, n)
	}
	sort.Strings(names)

	var rows []SweepRow
	for _, name := range names {
		factory := cfg.Policies[name]
		root := rng.New(cfg.Seed)
		accs := make([]float64, 0, cfg.NSim)
		regrets := make([]float64, 0, cfg.NSim)
		totals := make([]float64, 0, cfg.NSim)
		for sim := 0; sim < cfg.NSim; sim++ {
			simRng := root.Split()
			p, err := factory(numArms, dim, simRng.Uint64())
			if err != nil {
				return nil, fmt.Errorf("experiment: policy %q: %w", name, err)
			}
			var regret, total float64
			for round := 0; round < cfg.NRounds; round++ {
				run := d.Runs[simRng.Intn(len(d.Runs))]
				arm, err := p.Select(run.Features)
				if err != nil {
					return nil, fmt.Errorf("experiment: policy %q select: %w", name, err)
				}
				rt := d.SampleRuntime(arm, run.Features, simRng)
				if err := p.Update(arm, run.Features, rt); err != nil {
					return nil, fmt.Errorf("experiment: policy %q update: %w", name, err)
				}
				best := d.BestArm(run.Features, 0, 0)
				regret += d.Truth(arm, run.Features) - d.Truth(best, run.Features)
				total += rt
			}
			// Final strict accuracy over the trace, using the learned
			// model's choice rather than the (possibly exploring) Select.
			choose := p.Select
			if e, ok := p.(policy.Exploiter); ok {
				choose = e.Exploit
			}
			correct := 0
			for _, run := range d.Runs {
				arm, err := choose(run.Features)
				if err != nil {
					return nil, err
				}
				if arm == d.BestArm(run.Features, 0, 0) {
					correct++
				}
			}
			accs = append(accs, float64(correct)/float64(len(d.Runs)))
			regrets = append(regrets, regret/float64(cfg.NRounds))
			totals = append(totals, total)
		}
		rows = append(rows, SweepRow{
			Policy:        name,
			FinalAccuracy: stats.Mean(accs),
			MeanRegret:    stats.Mean(regrets),
			TotalRuntime:  stats.Mean(totals),
		})
	}
	return rows, nil
}

// ParamPoint is one cell of a parameter-grid ablation.
type ParamPoint struct {
	Label string
	// FinalAccuracy and FinalRMSE summarise the last round.
	FinalAccuracy float64
	FinalRMSE     float64
	// MeanCost is the mean hardware resource cost of the arms the
	// tolerant selection picks over the trace after training — the
	// quantity the tolerance knobs trade runtime against.
	MeanCost float64
}

// RunToleranceGrid ablates the (tolerance_ratio × tolerance_seconds)
// grid: each cell runs the full bandit experiment and reports final
// accuracy plus the mean resource cost of selected hardware.
func RunToleranceGrid(base BanditConfig, ratios, seconds []float64) ([]ParamPoint, error) {
	if err := base.validate(); err != nil {
		return nil, err
	}
	var out []ParamPoint
	for _, tr := range ratios {
		for _, ts := range seconds {
			cfg := base
			cfg.Options.ToleranceRatio = tr
			cfg.Options.ToleranceSeconds = ts
			res, err := RunBandit(cfg)
			if err != nil {
				return nil, err
			}
			last := res.Rounds[len(res.Rounds)-1]
			cost, err := meanSelectedCost(cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, ParamPoint{
				Label:         fmt.Sprintf("tr=%g,ts=%g", tr, ts),
				FinalAccuracy: last.AccMean,
				FinalRMSE:     last.RMSEMean,
				MeanCost:      cost,
			})
		}
	}
	return out, nil
}

// meanSelectedCost reports the mean hardware cost of the ground-truth
// tolerant-best arms over the trace: the resource footprint the tolerance
// settings steer toward.
func meanSelectedCost(cfg BanditConfig) (float64, error) {
	d := cfg.Dataset
	tr, ts := cfg.Options.ToleranceRatio, cfg.Options.ToleranceSeconds
	total := 0.0
	for _, run := range d.Runs {
		best := d.BestArm(run.Features, tr, ts)
		total += d.Hardware[best].Cost()
	}
	return total / float64(len(d.Runs)), nil
}
