package experiment

import (
	"errors"
	"fmt"

	"banditware/internal/regress"
	"banditware/internal/workloads"
)

// FitSeries holds one arm's predicted-vs-actual overlay along a sweep of
// the dataset's key feature — the content of the paper's Figures 3 and 6.
type FitSeries struct {
	ArmName string
	// X is the swept feature value (num_tasks for Cycles, area for BP3D).
	X []float64
	// Actual is the ground-truth expected runtime.
	Actual []float64
	// Predicted is the bandit's learned model evaluated at X.
	Predicted []float64
	// FullFit is the batch OLS fit on the whole trace at X (the
	// "actual fitting" diamonds of Figure 3).
	FullFit []float64
}

// FitConfig configures a fit-overlay experiment.
type FitConfig struct {
	// Bandit is the online-simulation config; its FinalModels provide the
	// predicted curves.
	Bandit BanditConfig
	// Feature names the swept feature; it must exist in the dataset.
	Feature string
	// Lo, Hi, Steps define the sweep grid.
	Lo, Hi float64
	Steps  int
}

// RunFit runs one bandit experiment and evaluates the learned per-arm
// models along the feature sweep against ground truth and the full-trace
// OLS fit. For multi-feature datasets the non-swept features are pinned
// at their trace means.
func RunFit(cfg FitConfig) ([]FitSeries, *BanditResult, error) {
	d := cfg.Bandit.Dataset
	if d == nil {
		return nil, nil, errors.New("experiment: nil dataset")
	}
	fi := d.FeatureIndex(cfg.Feature)
	if fi < 0 {
		return nil, nil, fmt.Errorf("experiment: no feature %q", cfg.Feature)
	}
	if cfg.Steps < 2 {
		return nil, nil, fmt.Errorf("experiment: need >= 2 sweep steps, got %d", cfg.Steps)
	}
	if cfg.Hi <= cfg.Lo {
		return nil, nil, fmt.Errorf("experiment: empty sweep [%v, %v]", cfg.Lo, cfg.Hi)
	}
	res, err := RunBandit(cfg.Bandit)
	if err != nil {
		return nil, nil, err
	}
	// Full-trace OLS per arm (the paper's "actual fitting").
	byArmX, byArmY := d.ByArm()
	rec, err := regress.FitRecommender(d.Hardware, byArmX, byArmY, 0)
	if err != nil {
		return nil, nil, err
	}
	// Pin non-swept features at their means.
	means := featureMeans(d)
	names := d.Hardware.Names()
	series := make([]FitSeries, len(d.Hardware))
	for arm := range series {
		s := FitSeries{ArmName: names[arm]}
		for step := 0; step < cfg.Steps; step++ {
			v := cfg.Lo + (cfg.Hi-cfg.Lo)*float64(step)/float64(cfg.Steps-1)
			x := append([]float64(nil), means...)
			x[fi] = v
			s.X = append(s.X, v)
			s.Actual = append(s.Actual, d.Truth(arm, x))
			s.Predicted = append(s.Predicted, res.FinalModels[arm].Predict(x))
			s.FullFit = append(s.FullFit, rec.Models[arm].Predict(x))
		}
		series[arm] = s
	}
	return series, res, nil
}

func featureMeans(d *workloads.Dataset) []float64 {
	means := make([]float64, d.Dim())
	if len(d.Runs) == 0 {
		return means
	}
	for _, r := range d.Runs {
		for j, v := range r.Features {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(len(d.Runs))
	}
	return means
}
