package experiment

import (
	"testing"

	"banditware/internal/workloads"
)

func TestRunLinRegPooledBeatsPerArmOnTinySamples(t *testing.T) {
	// With 25 samples over 3 near-identical arms, per-arm 8-parameter
	// fits are underdetermined while a pooled fit is not: pooled must
	// yield a materially smaller median normalised RMSE.
	d, err := workloads.GenerateBP3D(workloads.BP3DOptions{Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := RunLinReg(LinRegConfig{
		Dataset: d, NModels: 25, TrainN: 25,
		Normalize: true, ScaleFeatures: true, Pooled: true, Seed: 91,
	})
	if err != nil {
		t.Fatal(err)
	}
	perArm, err := RunLinReg(LinRegConfig{
		Dataset: d, NModels: 25, TrainN: 25,
		Normalize: true, ScaleFeatures: true, Seed: 91,
	})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := pooled.RMSESummary()
	if err != nil {
		t.Fatal(err)
	}
	sa, err := perArm.RMSESummary()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Median >= sa.Median {
		t.Fatalf("pooled median NRMSE %v not below per-arm %v", sp.Median, sa.Median)
	}
	// Pooled fits on this trace land in the paper's Figure-5 band.
	if sp.Median < 0.5 || sp.Median > 1.2 {
		t.Fatalf("pooled median NRMSE %v outside the plausible band", sp.Median)
	}
}

func TestMarkdownRoundsFiltering(t *testing.T) {
	d, err := workloads.GenerateCycles(workloads.CyclesOptions{Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBandit(BanditConfig{Dataset: d, NRounds: 10, NSim: 2, Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-range and duplicate picks must be dropped silently.
	md := MarkdownRounds(res, []int{0, 1, 1, 99, 10})
	rows := 0
	for _, line := range splitLines(md) {
		if len(line) > 0 && line[0] == '|' {
			rows++
		}
	}
	// Header + separator + two valid picks (1 and 10).
	if rows != 4 {
		t.Fatalf("markdown rows = %d, want 4\n%s", rows, md)
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
