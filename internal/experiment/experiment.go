// Package experiment is the harness that regenerates every table and
// figure of the paper's evaluation: the online bandit simulations with
// per-round RMSE/accuracy aggregated over independent replicas
// (Figures 4, 7, 9–12), the linear-regression baseline distributions
// (Figures 5 and 8), the model-fit overlays (Figures 3 and 6), and the
// policy/parameter ablations.
//
// Metric definitions (shared by all experiments):
//
//   - Full fit (baseline): one OLS model per arm fitted on the entire
//     trace; its pooled RMSE is the paper's red/orange reference line.
//   - Round-r RMSE: pooled RMSE of the bandit's per-arm models over the
//     entire trace after r online rounds.
//   - Round-r accuracy: fraction of trace rows where the bandit's
//     tolerant selection equals the ground-truth tolerant-best arm.
//   - Per round, mean ± stddev aggregates over NSim independent
//     simulations (the paper's blue bars).
package experiment

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"banditware/internal/core"
	"banditware/internal/regress"
	"banditware/internal/rng"
	"banditware/internal/stats"
	"banditware/internal/workloads"
)

// BanditConfig configures one online-bandit experiment.
type BanditConfig struct {
	// Dataset is the workload trace with generative ground truth.
	Dataset *workloads.Dataset
	// Options are the Algorithm 1 parameters (α, ε₀, tolerances...).
	Options core.Options
	// NRounds is the number of online rounds per simulation.
	NRounds int
	// NSim is the number of independent simulations aggregated per round.
	NSim int
	// Seed drives the whole experiment deterministically.
	Seed uint64
	// AccuracySample caps how many trace rows the accuracy evaluation
	// scans per round (0 = all rows). Sampling keeps 100-sim × 80-round
	// matmul runs fast without changing the estimate materially.
	AccuracySample int
	// NoAutoScale disables the default behaviour of deriving
	// core.Options.FeatureScale from the trace's per-feature standard
	// deviations (which keeps early-round fits well-conditioned when
	// features span many orders of magnitude, as BP3D's do).
	NoAutoScale bool
	// Parallel is the number of worker goroutines running simulations
	// concurrently. Simulations are independent and each derives its own
	// random stream up front, so results are bit-identical for any
	// worker count. 0 or 1 runs serially; negative selects GOMAXPROCS.
	Parallel int
}

func (c BanditConfig) validate() error {
	if c.Dataset == nil {
		return errors.New("experiment: nil dataset")
	}
	if err := c.Dataset.Validate(); err != nil {
		return err
	}
	if c.NRounds <= 0 || c.NSim <= 0 {
		return fmt.Errorf("experiment: need positive rounds/sims, got %d/%d", c.NRounds, c.NSim)
	}
	return nil
}

// RoundStats aggregates one round across simulations.
type RoundStats struct {
	Round    int
	RMSEMean float64
	RMSEStd  float64
	AccMean  float64
	AccStd   float64
}

// BanditResult is the output of RunBandit.
type BanditResult struct {
	Rounds []RoundStats
	// BaselineRMSE is the full-fit pooled RMSE (the red line).
	BaselineRMSE float64
	// BaselineAccuracy is the full-fit model's tolerant-selection accuracy.
	BaselineAccuracy float64
	// RandomAccuracy is the uniform-guess floor 1/numArms.
	RandomAccuracy float64
	// FinalModels holds the per-arm models of the first simulation after
	// the last round, for fit overlays (Figures 3 and 6).
	FinalModels []regress.Model
}

// RunBandit executes the online-bandit experiment: NSim independent
// simulations of NRounds rounds each. Per round, a workflow is drawn
// uniformly from the trace, Algorithm 1 recommends an arm, the observed
// runtime is synthesised from the dataset's generative model for that
// (features, arm) pair, and the bandit updates. After every round the
// bandit's models are scored over the full trace.
func RunBandit(cfg BanditConfig) (*BanditResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := cfg.Dataset
	xs, y, arms := d.Pooled()
	dim := d.Dim()

	baseRMSE, baseAcc, err := fullFitBaseline(cfg)
	if err != nil {
		return nil, err
	}
	res := &BanditResult{
		BaselineRMSE:     baseRMSE,
		BaselineAccuracy: baseAcc,
		RandomAccuracy:   1 / float64(len(d.Hardware)),
	}

	baseOpts := cfg.Options
	if baseOpts.FeatureScale == nil && !cfg.NoAutoScale {
		baseOpts.FeatureScale = featureScales(d)
		if baseOpts.RidgeLambda == 0 {
			// Oracle ridge weight in standardized feature space:
			// λ* ≈ d·σ²/‖w‖², with σ² estimated by the full-fit residual
			// variance and ‖w‖² by the explained variance of the trace.
			// High-noise traces (BP3D) get a strong prior that tames the
			// underdetermined early rounds; low-noise traces (Cycles) get
			// a nearly-free prior so convergence is unbiased.
			vy := stats.PopVariance(y)
			signal := vy - baseRMSE*baseRMSE
			if signal < 0.01*vy {
				signal = 0.01 * vy
			}
			if signal > 0 {
				baseOpts.RidgeLambda = float64(dim) * baseRMSE * baseRMSE / signal
			}
		}
	}

	// Each simulation derives its random stream up front from the root
	// source, so execution order cannot affect results and the worker
	// pool below is deterministic for any worker count.
	simRngs := make([]*rng.Source, cfg.NSim)
	root := rng.New(cfg.Seed)
	for sim := range simRngs {
		simRngs[sim] = root.Split()
	}

	// simOutcome carries one simulation's per-round metrics.
	type simOutcome struct {
		rmse, acc []float64
		models    []regress.Model // sim 0 only
		err       error
	}
	outcomes := make([]simOutcome, cfg.NSim)

	runSim := func(sim int) simOutcome {
		simRng := simRngs[sim]
		opts := baseOpts
		opts.Seed = simRng.Uint64()
		b, err := core.New(d.Hardware, dim, opts)
		if err != nil {
			return simOutcome{err: err}
		}
		out := simOutcome{
			rmse: make([]float64, cfg.NRounds),
			acc:  make([]float64, cfg.NRounds),
		}
		for round := 0; round < cfg.NRounds; round++ {
			run := d.Runs[simRng.Intn(len(d.Runs))]
			dec, err := b.Recommend(run.Features)
			if err != nil {
				return simOutcome{err: err}
			}
			rt := d.SampleRuntime(dec.Arm, run.Features, simRng)
			if err := b.Observe(dec.Arm, run.Features, rt); err != nil {
				return simOutcome{err: err}
			}
			rmse, err := pooledRMSE(b, xs, y, arms)
			if err != nil {
				return simOutcome{err: err}
			}
			out.rmse[round] = rmse
			out.acc[round] = selectionAccuracy(b, cfg, simRng)
		}
		if sim == 0 {
			out.models = make([]regress.Model, len(d.Hardware))
			for i := range out.models {
				m, err := b.Model(i)
				if err != nil {
					return simOutcome{err: err}
				}
				out.models[i] = m
			}
		}
		return out
	}

	workers := cfg.Parallel
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.NSim {
		workers = cfg.NSim
	}
	if workers <= 1 {
		for sim := 0; sim < cfg.NSim; sim++ {
			outcomes[sim] = runSim(sim)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for sim := range next {
					outcomes[sim] = runSim(sim)
				}
			}()
		}
		for sim := 0; sim < cfg.NSim; sim++ {
			next <- sim
		}
		close(next)
		wg.Wait()
	}

	for sim := range outcomes {
		if outcomes[sim].err != nil {
			return nil, outcomes[sim].err
		}
	}
	res.FinalModels = outcomes[0].models

	res.Rounds = make([]RoundStats, cfg.NRounds)
	col := make([]float64, cfg.NSim)
	for r := 0; r < cfg.NRounds; r++ {
		for sim := range outcomes {
			col[sim] = outcomes[sim].rmse[r]
		}
		rmseMean, rmseStd := stats.Mean(col), stats.StdDev(col)
		for sim := range outcomes {
			col[sim] = outcomes[sim].acc[r]
		}
		res.Rounds[r] = RoundStats{
			Round:    r + 1,
			RMSEMean: rmseMean,
			RMSEStd:  rmseStd,
			AccMean:  stats.Mean(col),
			AccStd:   stats.StdDev(col),
		}
	}
	return res, nil
}

// featureScales derives per-feature divisors from the trace: the
// population standard deviation, falling back to the mean magnitude and
// then 1 for constant features.
func featureScales(d *workloads.Dataset) []float64 {
	dim := d.Dim()
	scales := make([]float64, dim)
	if len(d.Runs) == 0 {
		for j := range scales {
			scales[j] = 1
		}
		return scales
	}
	for j := 0; j < dim; j++ {
		col := make([]float64, len(d.Runs))
		for i, r := range d.Runs {
			col[i] = r.Features[j]
		}
		s := stats.StdDev(col)
		if s <= 0 || math.IsNaN(s) {
			m := math.Abs(stats.Mean(col))
			if m > 0 {
				s = m
			} else {
				s = 1
			}
		}
		scales[j] = s
	}
	return scales
}

// pooledRMSE scores the bandit's per-arm models over the whole trace:
// row i is predicted by the model of the arm it actually ran on.
func pooledRMSE(b *core.Bandit, xs [][]float64, y []float64, arms []int) (float64, error) {
	pred := make([]float64, len(xs))
	models := make([]regress.Model, b.NumArms())
	for i := range models {
		m, err := b.Model(i)
		if err != nil {
			return 0, err
		}
		models[i] = m
	}
	for i := range xs {
		pred[i] = models[arms[i]].Predict(xs[i])
	}
	return stats.RMSE(pred, y)
}

// selectionAccuracy measures how often the bandit's tolerant selection
// matches the ground-truth tolerant-best arm across the trace (or a
// sample of it).
func selectionAccuracy(b *core.Bandit, cfg BanditConfig, r *rng.Source) float64 {
	d := cfg.Dataset
	n := len(d.Runs)
	idxs := make([]int, 0, n)
	if cfg.AccuracySample > 0 && cfg.AccuracySample < n {
		idxs = append(idxs, r.Sample(n, cfg.AccuracySample)...)
	} else {
		for i := 0; i < n; i++ {
			idxs = append(idxs, i)
		}
	}
	tr, ts := cfg.Options.ToleranceRatio, cfg.Options.ToleranceSeconds
	correct := 0
	for _, i := range idxs {
		x := d.Runs[i].Features
		preds, err := b.PredictAll(x)
		if err != nil {
			return 0
		}
		sel := core.TolerantSelect(preds, d.Hardware, tr, ts)
		if sel == d.BestArm(x, tr, ts) {
			correct++
		}
	}
	return float64(correct) / float64(len(idxs))
}

// fullFitBaseline fits per-arm OLS on the whole trace and scores its
// pooled RMSE and tolerant-selection accuracy — the theoretical best the
// bandit can converge to.
func fullFitBaseline(cfg BanditConfig) (rmse, acc float64, err error) {
	d := cfg.Dataset
	byArmX, byArmY := d.ByArm()
	rec, err := regress.FitRecommender(d.Hardware, byArmX, byArmY, 0)
	if err != nil {
		return 0, 0, err
	}
	xs, y, arms := d.Pooled()
	score, err := rec.EvaluatePooled(arms, xs, y)
	if err != nil {
		return 0, 0, err
	}
	tr, ts := cfg.Options.ToleranceRatio, cfg.Options.ToleranceSeconds
	correct := 0
	for _, run := range d.Runs {
		preds := rec.PredictAllArms(run.Features)
		sel := core.TolerantSelect(preds, d.Hardware, tr, ts)
		if sel == d.BestArm(run.Features, tr, ts) {
			correct++
		}
	}
	return score.RMSE, float64(correct) / float64(len(d.Runs)), nil
}
