package experiment

import (
	"testing"

	"banditware/internal/stats"
	"banditware/internal/workloads"
)

func TestRunDriftRecovery(t *testing.T) {
	d, err := workloads.GenerateCycles(workloads.CyclesOptions{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDrift(DriftConfig{
		Dataset:          d,
		NRounds:          240,
		NSim:             4,
		Seed:             31,
		ForgettingFactor: 0.95,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapRound != 120 {
		t.Fatalf("swap round = %d, want 120", res.SwapRound)
	}
	if len(res.Rounds) != 240 || len(res.AccStatic) != 240 || len(res.AccForgetting) != 240 {
		t.Fatal("ragged drift result")
	}
	// Both bandits learn before the swap.
	preStatic := stats.Mean(res.AccStatic[100:120])
	preForget := stats.Mean(res.AccForgetting[100:120])
	if preStatic < 0.5 || preForget < 0.5 {
		t.Fatalf("pre-swap accuracies %.2f/%.2f, want > 0.5", preStatic, preForget)
	}
	// Right after the swap both crash.
	crash := stats.Mean(res.AccForgetting[res.SwapRound : res.SwapRound+5])
	if crash > 0.6 {
		t.Fatalf("post-swap accuracy %.2f did not crash", crash)
	}
	// By the end, the forgetting bandit must have recovered materially
	// better than the static one, whose long memory anchors it to the
	// old world.
	endStatic := stats.Mean(res.AccStatic[220:])
	endForget := stats.Mean(res.AccForgetting[220:])
	if endForget <= endStatic {
		t.Fatalf("forgetting end accuracy %.2f not above static %.2f", endForget, endStatic)
	}
	if endForget < 0.4 {
		t.Fatalf("forgetting bandit failed to recover: %.2f", endForget)
	}
}

func TestRunDriftValidation(t *testing.T) {
	d, err := workloads.GenerateCycles(workloads.CyclesOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDrift(DriftConfig{Dataset: nil, NRounds: 10, NSim: 1}); err == nil {
		t.Fatal("nil dataset should fail")
	}
	if _, err := RunDrift(DriftConfig{Dataset: d, NRounds: 0, NSim: 1}); err == nil {
		t.Fatal("zero rounds should fail")
	}
}

func TestRunAdaptiveDrift(t *testing.T) {
	d, err := workloads.GenerateCycles(workloads.CyclesOptions{Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAdaptiveDrift(AdaptiveDriftConfig{
		Dataset:          d,
		NRounds:          240,
		NSim:             4,
		Seed:             47,
		ForgettingFactor: 0.95,
		WindowSize:       40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapRound != 120 || len(res.Rounds) != 240 {
		t.Fatalf("shape: swap %d, %d rounds", res.SwapRound, len(res.Rounds))
	}
	for _, m := range AdaptiveDriftModes {
		if len(res.Acc[m]) != 240 {
			t.Fatalf("mode %q: ragged accuracy series", m)
		}
	}
	tail := func(m string) float64 { return stats.Mean(res.Acc[m][220:]) }
	static, forget, window := tail("none"), tail("forgetting"), tail("window")
	// Both adaptive modes recover past the static bandit by the end.
	if forget <= static || window <= static {
		t.Fatalf("adaptive end accuracies %.2f/%.2f did not beat static %.2f", forget, window, static)
	}
	// Every mode's detector noticed the swap, and never before it: the
	// swap is the only mean shift in the run.
	for _, m := range AdaptiveDriftModes {
		if res.DetectRate[m] < 0.5 {
			t.Errorf("mode %q: detect rate %.2f, want ≥ 0.5", m, res.DetectRate[m])
		}
		if first := res.MeanFirstDetection[m]; first > 0 && first <= float64(res.SwapRound) {
			t.Errorf("mode %q: mean first detection at round %.0f, before the swap at %d", m, first, res.SwapRound)
		}
	}
}

func TestRunAdaptiveDriftValidation(t *testing.T) {
	d, err := workloads.GenerateCycles(workloads.CyclesOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunAdaptiveDrift(AdaptiveDriftConfig{Dataset: nil, NRounds: 10, NSim: 1}); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := RunAdaptiveDrift(AdaptiveDriftConfig{Dataset: d, NRounds: 0, NSim: 1}); err == nil {
		t.Fatal("zero rounds accepted")
	}
	bad := AdaptiveDriftConfig{Dataset: d, NRounds: 10, NSim: 1}
	bad.Detector.Delta = -1
	if _, err := RunAdaptiveDrift(bad); err == nil {
		t.Fatal("bad detector config accepted")
	}
}
