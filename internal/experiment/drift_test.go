package experiment

import (
	"testing"

	"banditware/internal/stats"
	"banditware/internal/workloads"
)

func TestRunDriftRecovery(t *testing.T) {
	d, err := workloads.GenerateCycles(workloads.CyclesOptions{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDrift(DriftConfig{
		Dataset:          d,
		NRounds:          240,
		NSim:             4,
		Seed:             31,
		ForgettingFactor: 0.95,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapRound != 120 {
		t.Fatalf("swap round = %d, want 120", res.SwapRound)
	}
	if len(res.Rounds) != 240 || len(res.AccStatic) != 240 || len(res.AccForgetting) != 240 {
		t.Fatal("ragged drift result")
	}
	// Both bandits learn before the swap.
	preStatic := stats.Mean(res.AccStatic[100:120])
	preForget := stats.Mean(res.AccForgetting[100:120])
	if preStatic < 0.5 || preForget < 0.5 {
		t.Fatalf("pre-swap accuracies %.2f/%.2f, want > 0.5", preStatic, preForget)
	}
	// Right after the swap both crash.
	crash := stats.Mean(res.AccForgetting[res.SwapRound : res.SwapRound+5])
	if crash > 0.6 {
		t.Fatalf("post-swap accuracy %.2f did not crash", crash)
	}
	// By the end, the forgetting bandit must have recovered materially
	// better than the static one, whose long memory anchors it to the
	// old world.
	endStatic := stats.Mean(res.AccStatic[220:])
	endForget := stats.Mean(res.AccForgetting[220:])
	if endForget <= endStatic {
		t.Fatalf("forgetting end accuracy %.2f not above static %.2f", endForget, endStatic)
	}
	if endForget < 0.4 {
		t.Fatalf("forgetting bandit failed to recover: %.2f", endForget)
	}
}

func TestRunDriftValidation(t *testing.T) {
	d, err := workloads.GenerateCycles(workloads.CyclesOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDrift(DriftConfig{Dataset: nil, NRounds: 10, NSim: 1}); err == nil {
		t.Fatal("nil dataset should fail")
	}
	if _, err := RunDrift(DriftConfig{Dataset: d, NRounds: 0, NSim: 1}); err == nil {
		t.Fatal("zero rounds should fail")
	}
}
