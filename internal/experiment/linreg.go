package experiment

import (
	"errors"
	"fmt"
	"time"

	"banditware/internal/regress"
	"banditware/internal/rng"
	"banditware/internal/stats"
	"banditware/internal/workloads"
)

// LinRegConfig configures the linear-regression baseline experiment
// (Figures 5 and 8): train NModels independent recommenders on small
// random samples and record the distribution of their scores over the
// full trace.
type LinRegConfig struct {
	// Dataset is the workload trace.
	Dataset *workloads.Dataset
	// NModels is the number of independent models. 0 selects the
	// paper's 100.
	NModels int
	// TrainN is the per-model training sample size. 0 selects the
	// paper's 25.
	TrainN int
	// Normalize reports RMSE in units of the trace's runtime standard
	// deviation (the scale-free form the paper's BP3D Figure 5 uses).
	Normalize bool
	// ScaleFeatures standardises features (per-column z-score over the
	// full trace) before fitting and evaluation. Equivalent predictions
	// on well-conditioned data; essential when features span many orders
	// of magnitude (25-sample BP3D fits on raw byte counts are
	// numerically meaningless).
	ScaleFeatures bool
	// Pooled fits one model over the whole sample, ignoring which
	// hardware each row ran on, instead of one model per hardware arm.
	// With tiny samples over near-identical hardware (the paper's
	// 25-sample BP3D setting: 25 rows across 3 arms cannot support three
	// 8-parameter fits) pooling is the only statistically meaningful
	// estimator, and it reproduces the paper's Figure-5 score bands.
	Pooled bool
	// Seed drives sampling.
	Seed uint64
}

// LinRegResult holds the per-model score distributions.
type LinRegResult struct {
	RMSE         []float64
	R2           []float64
	TrainSeconds []float64
}

// RMSESummary returns the five-number summary of the RMSE distribution.
func (r *LinRegResult) RMSESummary() (stats.Summary, error) { return stats.Summarize(r.RMSE) }

// R2Summary returns the five-number summary of the R² distribution.
func (r *LinRegResult) R2Summary() (stats.Summary, error) { return stats.Summarize(r.R2) }

// RunLinReg trains NModels per-arm OLS recommenders, each on TrainN rows
// sampled without replacement from the trace, and scores each over the
// full trace — the paper's comparison baseline.
func RunLinReg(cfg LinRegConfig) (*LinRegResult, error) {
	if cfg.Dataset == nil {
		return nil, errors.New("experiment: nil dataset")
	}
	if err := cfg.Dataset.Validate(); err != nil {
		return nil, err
	}
	if cfg.NModels == 0 {
		cfg.NModels = 100
	}
	if cfg.TrainN == 0 {
		cfg.TrainN = 25
	}
	if cfg.NModels < 0 || cfg.TrainN < 0 {
		return nil, fmt.Errorf("experiment: negative NModels/TrainN %d/%d", cfg.NModels, cfg.TrainN)
	}
	d := cfg.Dataset
	xs, y, arms := d.Pooled()
	if cfg.ScaleFeatures {
		xs, _, _ = regress.Standardize(xs)
	}
	r := rng.New(cfg.Seed)
	res := &LinRegResult{
		RMSE:         make([]float64, 0, cfg.NModels),
		R2:           make([]float64, 0, cfg.NModels),
		TrainSeconds: make([]float64, 0, cfg.NModels),
	}
	for m := 0; m < cfg.NModels; m++ {
		sample := regress.SampleRows(len(d.Runs), cfg.TrainN, r)
		var score regress.Score
		var elapsed float64
		if cfg.Pooled {
			trainX := make([][]float64, 0, len(sample))
			trainY := make([]float64, 0, len(sample))
			for _, i := range sample {
				trainX = append(trainX, xs[i])
				trainY = append(trainY, d.Runs[i].Runtime)
			}
			start := time.Now()
			model, err := regress.FitOLS(trainX, trainY, 0)
			elapsed = time.Since(start).Seconds()
			if err != nil {
				return nil, fmt.Errorf("experiment: model %d: %w", m, err)
			}
			score, err = regress.Evaluate(model, xs, y)
			if err != nil {
				return nil, err
			}
		} else {
			trainX := make([][][]float64, len(d.Hardware))
			trainY := make([][]float64, len(d.Hardware))
			for _, i := range sample {
				run := d.Runs[i]
				trainX[run.Arm] = append(trainX[run.Arm], xs[i])
				trainY[run.Arm] = append(trainY[run.Arm], run.Runtime)
			}
			start := time.Now()
			rec, err := regress.FitRecommender(d.Hardware, trainX, trainY, 0)
			elapsed = time.Since(start).Seconds()
			if err != nil {
				return nil, fmt.Errorf("experiment: model %d: %w", m, err)
			}
			score, err = rec.EvaluatePooled(arms, xs, y)
			if err != nil {
				return nil, err
			}
		}
		rmse := score.RMSE
		if cfg.Normalize {
			rmse = score.NRMSE
		}
		res.RMSE = append(res.RMSE, rmse)
		res.R2 = append(res.R2, score.R2)
		res.TrainSeconds = append(res.TrainSeconds, elapsed)
	}
	return res, nil
}
