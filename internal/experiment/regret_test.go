package experiment

import (
	"bytes"
	"strings"
	"testing"

	"banditware/internal/core"
	"banditware/internal/policy"
	"banditware/internal/workloads"
)

func regretPolicies(d *workloads.Dataset) map[string]PolicyFactory {
	return map[string]PolicyFactory{
		"oracle": func(n, dim int, seed uint64) (policy.Policy, error) {
			return policy.NewOracle(n, dim, d.Truth)
		},
		"random": func(n, dim int, seed uint64) (policy.Policy, error) {
			return policy.NewRandom(n, dim, seed)
		},
		"algorithm1": func(n, dim int, seed uint64) (policy.Policy, error) {
			return policy.NewDecayingEpsilonGreedy(d.Hardware, dim, core.Options{Seed: seed})
		},
	}
}

func TestRunRegretOrdering(t *testing.T) {
	d, err := workloads.GenerateCycles(workloads.CyclesOptions{Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	curves, err := RunRegret(RegretConfig{
		Dataset:  d,
		NRounds:  150,
		NSim:     4,
		Seed:     61,
		Policies: regretPolicies(d),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 3 {
		t.Fatalf("curves = %d, want 3", len(curves))
	}
	byName := map[string]RegretCurve{}
	for _, c := range curves {
		byName[c.Policy] = c
		// Cumulative regret is non-decreasing.
		for r := 1; r < len(c.Cumulative); r++ {
			if c.Cumulative[r] < c.Cumulative[r-1]-1e-9 {
				t.Fatalf("%s: cumulative regret decreased at round %d", c.Policy, r)
			}
		}
	}
	last := len(byName["oracle"].Cumulative) - 1
	if byName["oracle"].Cumulative[last] != 0 {
		t.Fatalf("oracle final regret = %v, want 0", byName["oracle"].Cumulative[last])
	}
	if byName["algorithm1"].Cumulative[last] >= byName["random"].Cumulative[last] {
		t.Fatalf("algorithm1 regret %v not below random %v",
			byName["algorithm1"].Cumulative[last], byName["random"].Cumulative[last])
	}
	// Algorithm 1's regret growth should slow down: the second half must
	// add less regret than the first half (learning).
	mid := len(byName["algorithm1"].Cumulative) / 2
	a1 := byName["algorithm1"].Cumulative
	firstHalf := a1[mid-1]
	secondHalf := a1[last] - a1[mid-1]
	if secondHalf >= firstHalf {
		t.Fatalf("algorithm1 regret did not flatten: halves %v vs %v", firstHalf, secondHalf)
	}
}

func TestRunRegretValidation(t *testing.T) {
	d, err := workloads.GenerateCycles(workloads.CyclesOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunRegret(RegretConfig{Dataset: d, NRounds: 10, NSim: 1}); err == nil {
		t.Fatal("no policies should fail")
	}
	if _, err := RunRegret(RegretConfig{Dataset: nil, NRounds: 10, NSim: 1,
		Policies: regretPolicies(d)}); err == nil {
		t.Fatal("nil dataset should fail")
	}
}

func TestCompareRegret(t *testing.T) {
	d, err := workloads.GenerateCycles(workloads.CyclesOptions{Seed: 67})
	if err != nil {
		t.Fatal(err)
	}
	cfg := RegretConfig{
		Dataset:  d,
		NRounds:  120,
		NSim:     6,
		Seed:     67,
		Policies: regretPolicies(d),
	}
	res, err := CompareRegret(cfg, "oracle", "random")
	if err != nil {
		t.Fatal(err)
	}
	// Oracle regret (0) vs random regret (large): decisive.
	if res.P > 0.01 {
		t.Fatalf("oracle-vs-random p = %v, want < 0.01", res.P)
	}
	if res.T >= 0 {
		t.Fatalf("t = %v, want negative (oracle regret below random)", res.T)
	}
	if _, err := CompareRegret(cfg, "oracle", "nope"); err == nil {
		t.Fatal("unknown policy should fail")
	}
}

func TestWriteRegretCSV(t *testing.T) {
	curves := []RegretCurve{{
		Policy:     "x",
		Cumulative: []float64{1, 2},
		Std:        []float64{0.1, 0.2},
	}}
	var buf bytes.Buffer
	if err := WriteRegretCSV(&buf, curves); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want 3", len(lines))
	}
}
