package experiment

import (
	"math"
	"testing"

	"banditware/internal/core"
	"banditware/internal/hardware"
	"banditware/internal/policy"
	"banditware/internal/reward"
	"banditware/internal/rng"
	"banditware/internal/workloads"
)

// costTradeoffDataset builds the offline mirror of the serving layer's
// cost_weighted acceptance scenario: the fast arm is slightly faster
// (8s vs 10s) but far more expensive (Cost 32 vs 6).
func costTradeoffDataset(t *testing.T) *workloads.Dataset {
	t.Helper()
	hw := hardware.Set{
		{Name: "cheap", CPUs: 2, MemoryGB: 16},
		{Name: "fast", CPUs: 16, MemoryGB: 64},
	}
	truth := func(arm int, x []float64) float64 {
		if arm == 1 {
			return 8 + 0.01*x[0]
		}
		return 10 + 0.01*x[0]
	}
	d := &workloads.Dataset{
		App:          "cost-tradeoff",
		Hardware:     hw,
		FeatureNames: []string{"size"},
		Truth:        truth,
		Noise:        func(int, []float64) float64 { return 0.1 },
	}
	r := rng.New(5)
	for i := 0; i < 60; i++ {
		x := []float64{r.Uniform(1, 20)}
		arm := i % 2
		d.Runs = append(d.Runs, workloads.Run{
			ID: i, Arm: arm, Features: x,
			Runtime: d.SampleRuntime(arm, x, r),
		})
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestRunSweepRewardSteersCost: the same policy swept under the
// cost_weighted reward settles on cheaper hardware than under the
// default runtime reward — the offline counterpart of the serving
// layer's per-stream RewardSpec, scored by the same reward functions.
func TestRunSweepRewardSteersCost(t *testing.T) {
	d := costTradeoffDataset(t)
	policies := map[string]PolicyFactory{
		"algorithm1": func(numArms, dim int, seed uint64) (policy.Policy, error) {
			return policy.NewDecayingEpsilonGreedy(d.Hardware, dim, core.Options{Seed: seed})
		},
	}
	base := SweepConfig{Dataset: d, NRounds: 150, NSim: 4, Seed: 9, Policies: policies}

	byRuntime, err := RunSweep(base)
	if err != nil {
		t.Fatal(err)
	}
	costCfg := base
	costCfg.Reward = reward.Spec{Type: reward.TypeCostWeighted, Lambda: 1}
	byCost, err := RunSweep(costCfg)
	if err != nil {
		t.Fatal(err)
	}

	rt, cw := byRuntime[0], byCost[0]
	// Under runtime the fast arm is best; the learner's mean chosen cost
	// should approach the fast arm's 32. Under cost_weighted the cheap
	// arm wins (16 < 40), so the mean chosen cost must drop.
	if cw.MeanChosenCost >= rt.MeanChosenCost {
		t.Fatalf("cost_weighted sweep chose cost %.1f, runtime sweep %.1f — reward did not steer",
			cw.MeanChosenCost, rt.MeanChosenCost)
	}
	// The default reward keeps the historical semantics: reward == runtime.
	if math.Abs(rt.TotalReward-rt.TotalRuntime) > 1e-9 {
		t.Fatalf("default-reward sweep diverged: reward %.3f, runtime %.3f", rt.TotalReward, rt.TotalRuntime)
	}
	// The cost reward carries the λ·Cost surcharge on every round.
	if cw.TotalReward <= cw.TotalRuntime {
		t.Fatalf("cost sweep totals: reward %.3f <= runtime %.3f", cw.TotalReward, cw.TotalRuntime)
	}
	// And its accuracy is judged against the reward-best arm (cheap), so
	// a converged learner scores high there too.
	if cw.FinalAccuracy < 0.9 {
		t.Fatalf("cost sweep final accuracy = %.2f", cw.FinalAccuracy)
	}
}

// TestRunSweepRejectsBadReward: a malformed reward spec fails the sweep
// up front.
func TestRunSweepRejectsBadReward(t *testing.T) {
	d := costTradeoffDataset(t)
	cfg := SweepConfig{
		Dataset: d, NRounds: 5, NSim: 1, Seed: 1,
		Policies: map[string]PolicyFactory{
			"random": func(numArms, dim int, seed uint64) (policy.Policy, error) {
				return policy.NewRandom(numArms, dim, seed)
			},
		},
		Reward: reward.Spec{Type: "fastest"},
	}
	if _, err := RunSweep(cfg); err == nil {
		t.Fatal("bad reward spec accepted")
	}
}
