package experiment

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"banditware/internal/rng"
	"banditware/internal/stats"
	"banditware/internal/workloads"
)

// RegretConfig configures a cumulative-regret comparison: every policy
// plays the same online protocol and we record the running sum of
// truth(chosen) − truth(best) per round — the standard bandit-literature
// learning curve, complementing the paper's accuracy/RMSE views.
type RegretConfig struct {
	Dataset  *workloads.Dataset
	NRounds  int
	NSim     int
	Seed     uint64
	Policies map[string]PolicyFactory
}

// RegretCurve is one policy's mean cumulative regret per round.
type RegretCurve struct {
	Policy string
	// Cumulative[r] is the mean (over simulations) cumulative regret in
	// seconds after round r+1.
	Cumulative []float64
	// Std[r] is the across-simulation standard deviation.
	Std []float64
}

// RunRegret produces one curve per policy, all driven by identical
// arrival streams (common random numbers, so curves are directly
// comparable).
func RunRegret(cfg RegretConfig) ([]RegretCurve, error) {
	if cfg.Dataset == nil {
		return nil, errors.New("experiment: nil dataset")
	}
	if err := cfg.Dataset.Validate(); err != nil {
		return nil, err
	}
	if cfg.NRounds <= 0 || cfg.NSim <= 0 {
		return nil, fmt.Errorf("experiment: need positive rounds/sims, got %d/%d", cfg.NRounds, cfg.NSim)
	}
	if len(cfg.Policies) == 0 {
		return nil, errors.New("experiment: no policies")
	}
	d := cfg.Dataset
	dim := d.Dim()
	numArms := len(d.Hardware)

	names := make([]string, 0, len(cfg.Policies))
	for n := range cfg.Policies {
		names = append(names, n)
	}
	sort.Strings(names)

	// Pre-draw the shared workflow arrival streams (common random
	// numbers across policies).
	type step struct {
		runIdx int
		noise  []float64 // per-arm runtime noise draws for this step
	}
	streams := make([][]step, cfg.NSim)
	root := rng.New(cfg.Seed)
	for sim := range streams {
		simRng := root.Split()
		steps := make([]step, cfg.NRounds)
		for r := range steps {
			idx := simRng.Intn(len(d.Runs))
			noise := make([]float64, numArms)
			for a := range noise {
				noise[a] = simRng.Normal(0, 1)
			}
			steps[r] = step{runIdx: idx, noise: noise}
		}
		streams[sim] = steps
	}

	var curves []RegretCurve
	for _, name := range names {
		factory := cfg.Policies[name]
		perRound := make([][]float64, cfg.NRounds)
		for sim := 0; sim < cfg.NSim; sim++ {
			p, err := factory(numArms, dim, cfg.Seed+uint64(sim)*7919)
			if err != nil {
				return nil, fmt.Errorf("experiment: policy %q: %w", name, err)
			}
			cum := 0.0
			for r, st := range streams[sim] {
				run := d.Runs[st.runIdx]
				arm, err := p.Select(run.Features)
				if err != nil {
					return nil, err
				}
				rt := d.Truth(arm, run.Features) + st.noise[arm]*d.Noise(arm, run.Features)
				if err := p.Update(arm, run.Features, rt); err != nil {
					return nil, err
				}
				best := d.BestArm(run.Features, 0, 0)
				cum += d.Truth(arm, run.Features) - d.Truth(best, run.Features)
				perRound[r] = append(perRound[r], cum)
			}
		}
		curve := RegretCurve{Policy: name}
		for r := range perRound {
			curve.Cumulative = append(curve.Cumulative, stats.Mean(perRound[r]))
			curve.Std = append(curve.Std, stats.StdDev(perRound[r]))
		}
		curves = append(curves, curve)
	}
	return curves, nil
}

// CompareRegret runs a Welch t-test on the final cumulative regrets of
// two named curves' underlying simulations... it operates on the curve
// summaries, so it re-runs the two policies with per-simulation
// retention. For large claims prefer RunRegret + WelchTTest on raw
// per-sim values; this helper answers "is A reliably better than B?".
func CompareRegret(cfg RegretConfig, a, b string) (stats.TTestResult, error) {
	finals := func(name string) ([]float64, error) {
		factory, ok := cfg.Policies[name]
		if !ok {
			return nil, fmt.Errorf("experiment: unknown policy %q", name)
		}
		sub := cfg
		sub.Policies = map[string]PolicyFactory{name: factory}
		// Re-run retaining per-sim final regrets.
		d := sub.Dataset
		numArms := len(d.Hardware)
		root := rng.New(sub.Seed)
		out := make([]float64, 0, sub.NSim)
		for sim := 0; sim < sub.NSim; sim++ {
			simRng := root.Split()
			p, err := factory(numArms, d.Dim(), sub.Seed+uint64(sim)*7919)
			if err != nil {
				return nil, err
			}
			cum := 0.0
			for r := 0; r < sub.NRounds; r++ {
				run := d.Runs[simRng.Intn(len(d.Runs))]
				// Re-draw noise in stream order (same construction as
				// RunRegret's streams).
				noise := make([]float64, numArms)
				for a := range noise {
					noise[a] = simRng.Normal(0, 1)
				}
				arm, err := p.Select(run.Features)
				if err != nil {
					return nil, err
				}
				rt := d.Truth(arm, run.Features) + noise[arm]*d.Noise(arm, run.Features)
				if err := p.Update(arm, run.Features, rt); err != nil {
					return nil, err
				}
				best := d.BestArm(run.Features, 0, 0)
				cum += d.Truth(arm, run.Features) - d.Truth(best, run.Features)
			}
			out = append(out, cum)
		}
		return out, nil
	}
	fa, err := finals(a)
	if err != nil {
		return stats.TTestResult{}, err
	}
	fb, err := finals(b)
	if err != nil {
		return stats.TTestResult{}, err
	}
	return stats.WelchTTest(fa, fb)
}

// WriteRegretCSV writes curves in long form (policy, round, cum, std).
func WriteRegretCSV(w io.Writer, curves []RegretCurve) error {
	if _, err := fmt.Fprintln(w, "policy,round,cumulative_regret_s,std"); err != nil {
		return err
	}
	for _, c := range curves {
		for r := range c.Cumulative {
			if _, err := fmt.Fprintf(w, "%s,%d,%g,%g\n", c.Policy, r+1, c.Cumulative[r], c.Std[r]); err != nil {
				return err
			}
		}
	}
	return nil
}
