package stats

import (
	"math"
	"testing"

	"banditware/internal/rng"
)

func TestEWMA(t *testing.T) {
	e, err := NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(e.Value()) {
		t.Fatal("empty EWMA should be NaN")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatalf("first value = %v, want 10", e.Value())
	}
	e.Add(20)
	if e.Value() != 15 {
		t.Fatalf("second value = %v, want 15", e.Value())
	}
	if e.N() != 2 {
		t.Fatalf("N = %d", e.N())
	}
	if _, err := NewEWMA(0); err == nil {
		t.Fatal("alpha 0 should fail")
	}
	if _, err := NewEWMA(1.5); err == nil {
		t.Fatal("alpha > 1 should fail")
	}
}

func TestEWMATracksDrift(t *testing.T) {
	e, _ := NewEWMA(0.2)
	for i := 0; i < 100; i++ {
		e.Add(5)
	}
	for i := 0; i < 100; i++ {
		e.Add(50)
	}
	if math.Abs(e.Value()-50) > 1 {
		t.Fatalf("EWMA failed to track drift: %v", e.Value())
	}
}

func TestWelchTTestDistinguishes(t *testing.T) {
	r := rng.New(5)
	xs := make([]float64, 60)
	ys := make([]float64, 60)
	for i := range xs {
		xs[i] = r.Normal(10, 2)
		ys[i] = r.Normal(13, 3)
	}
	res, err := WelchTTest(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-4 {
		t.Fatalf("clearly different means got p = %v", res.P)
	}
	if res.T >= 0 {
		t.Fatalf("t should be negative (mx < my): %v", res.T)
	}
}

func TestWelchTTestNull(t *testing.T) {
	// Same distribution: p should usually be large; average over seeds.
	rejections := 0
	const trials = 200
	for seed := uint64(0); seed < trials; seed++ {
		r := rng.New(seed + 100)
		xs := make([]float64, 30)
		ys := make([]float64, 30)
		for i := range xs {
			xs[i] = r.Normal(7, 2)
			ys[i] = r.Normal(7, 2)
		}
		res, err := WelchTTest(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0.05 {
			rejections++
		}
	}
	// Expected false-rejection rate 5%; allow generous slack.
	if rejections > trials/8 {
		t.Fatalf("null rejected %d/%d times at alpha=0.05", rejections, trials)
	}
}

func TestWelchTTestDegenerate(t *testing.T) {
	if _, err := WelchTTest([]float64{1}, []float64{1, 2}); err != ErrEmpty {
		t.Fatal("short sample should be ErrEmpty")
	}
	res, err := WelchTTest([]float64{3, 3, 3}, []float64{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 || res.T != 0 {
		t.Fatalf("identical constants: %+v", res)
	}
	res, err = WelchTTest([]float64{3, 3, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 {
		t.Fatalf("disjoint constants: %+v", res)
	}
}

func TestRegIncBetaKnown(t *testing.T) {
	// I_x(1, 1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := regIncBeta(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Fatalf("I_%v(1,1) = %v", x, got)
		}
	}
	// Symmetry: I_x(a, b) = 1 − I_{1−x}(b, a).
	got := regIncBeta(2.5, 1.5, 0.3)
	sym := 1 - regIncBeta(1.5, 2.5, 0.7)
	if math.Abs(got-sym) > 1e-10 {
		t.Fatalf("symmetry violated: %v vs %v", got, sym)
	}
	if regIncBeta(2, 3, 0) != 0 || regIncBeta(2, 3, 1) != 1 {
		t.Fatal("boundary values wrong")
	}
}

func TestStudentTKnownQuantiles(t *testing.T) {
	// For df=10, P(T > 2.228) ≈ 0.025 (the classic 95% two-sided value).
	p := studentTCDFUpper(2.228, 10)
	if math.Abs(p-0.025) > 0.002 {
		t.Fatalf("P(T>2.228; df=10) = %v, want ~0.025", p)
	}
	// Large df approaches the normal: P(T > 1.96) ≈ 0.025.
	p = studentTCDFUpper(1.96, 1000)
	if math.Abs(p-0.025) > 0.002 {
		t.Fatalf("P(T>1.96; df=1000) = %v, want ~0.025", p)
	}
	// Negative t mirrors.
	if got := studentTCDFUpper(-1, 5) + studentTCDFUpper(1, 5); math.Abs(got-1) > 1e-12 {
		t.Fatal("tail symmetry violated")
	}
}
