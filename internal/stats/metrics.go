package stats

import (
	"errors"
	"math"
)

// ErrLengthMismatch is returned when paired metric inputs differ in length.
var ErrLengthMismatch = errors.New("stats: prediction/actual length mismatch")

// RMSE returns the root-mean-squared error between predictions and actuals.
// It returns an error if the slices differ in length or are empty.
func RMSE(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) {
		return 0, ErrLengthMismatch
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for i := range pred {
		d := pred[i] - actual[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred))), nil
}

// MAE returns the mean absolute error between predictions and actuals.
func MAE(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) {
		return 0, ErrLengthMismatch
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for i := range pred {
		sum += math.Abs(pred[i] - actual[i])
	}
	return sum / float64(len(pred)), nil
}

// R2 returns the coefficient of determination of predictions against
// actuals: 1 - SS_res/SS_tot. A constant actual vector yields R2 = 0 when
// predictions match it exactly and -Inf otherwise is avoided by returning 0
// for zero total variance with zero residual, and negative values are
// possible for models worse than predicting the mean.
func R2(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) {
		return 0, ErrLengthMismatch
	}
	if len(pred) == 0 {
		return 0, ErrEmpty
	}
	mean := Mean(actual)
	var ssRes, ssTot float64
	for i := range actual {
		r := actual[i] - pred[i]
		ssRes += r * r
		t := actual[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 0, nil
		}
		return math.Inf(-1), nil
	}
	return 1 - ssRes/ssTot, nil
}

// NRMSE returns the RMSE normalised by the standard deviation of the actual
// values (a scale-free error in "fractions of a standard deviation", the
// unit the paper's Figure 5 reports for BP3D).
func NRMSE(pred, actual []float64) (float64, error) {
	rmse, err := RMSE(pred, actual)
	if err != nil {
		return 0, err
	}
	sd := math.Sqrt(PopVariance(actual))
	if sd == 0 {
		return math.Inf(1), nil
	}
	return rmse / sd, nil
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Histogram counts xs into nbins equal-width bins spanning [Min, Max].
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram builds a histogram of xs with nbins bins. Values exactly at
// the upper edge fall in the last bin. It returns ErrEmpty for empty input
// and an error for nbins < 1.
func NewHistogram(xs []float64, nbins int) (Histogram, error) {
	if len(xs) == 0 {
		return Histogram{}, ErrEmpty
	}
	if nbins < 1 {
		return Histogram{}, errors.New("stats: nbins < 1")
	}
	lo, hi := Min(xs), Max(xs)
	h := Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
	if lo == hi {
		h.Counts[0] = len(xs)
		return h, nil
	}
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i >= nbins {
			i = nbins - 1
		}
		if i < 0 {
			i = 0
		}
		h.Counts[i]++
	}
	return h, nil
}

// BinCenter returns the midpoint of bin i.
func (h Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}
