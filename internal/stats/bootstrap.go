package stats

import (
	"banditware/internal/rng"
)

// BootstrapCI estimates a two-sided percentile confidence interval for the
// statistic stat over sample xs using nresamples bootstrap resamples.
// level is the confidence level (e.g. 0.95). The source r drives resampling
// so results are reproducible.
func BootstrapCI(xs []float64, stat func([]float64) float64, nresamples int, level float64, r *rng.Source) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	if nresamples < 1 {
		nresamples = 1000
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	vals := make([]float64, nresamples)
	resample := make([]float64, len(xs))
	for i := 0; i < nresamples; i++ {
		for j := range resample {
			resample[j] = xs[r.Intn(len(xs))]
		}
		vals[i] = stat(resample)
	}
	alpha := (1 - level) / 2
	return Quantile(vals, alpha), Quantile(vals, 1-alpha), nil
}

// MeanCI is a convenience wrapper: bootstrap CI of the mean.
func MeanCI(xs []float64, nresamples int, level float64, r *rng.Source) (lo, hi float64, err error) {
	return BootstrapCI(xs, Mean, nresamples, level, r)
}
