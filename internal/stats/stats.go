// Package stats provides the descriptive statistics and model-quality
// metrics used throughout the BanditWare evaluation: means and variances,
// quantiles, histograms, online (Welford) accumulation, RMSE / MAE / R²,
// and bootstrap confidence intervals.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one observation.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or NaN if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (divisor n-1).
// It returns 0 for inputs with fewer than two elements.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// PopVariance returns the population variance of xs (divisor n).
func PopVariance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// Min returns the minimum of xs, or +Inf if xs is empty.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf if xs is empty.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMin returns the index of the smallest element of xs, or -1 if empty.
// Ties resolve to the lowest index. NaN elements are never selected unless
// all elements are NaN, in which case 0 is returned.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := -1
	for i, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		if best == -1 || x < xs[best] {
			best = i
		}
	}
	if best == -1 {
		return 0
	}
	return best
}

// ArgMax returns the index of the largest element of xs, or -1 if empty.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := -1
	for i, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		if best == -1 || x > xs[best] {
			best = i
		}
	}
	if best == -1 {
		return 0
	}
	return best
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (the "type 7" estimator used by
// numpy and R). It returns NaN for empty input or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the median of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summary holds the five-number summary plus mean and standard deviation of
// a sample. It is the row format used by the figure-5/figure-8 box plots.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
}

// Summarize computes a Summary of xs. It returns ErrEmpty for empty input.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    StdDev(xs),
		Min:    sorted[0],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
	}, nil
}

// Range returns Max-Min of xs (the "total range" the paper reports for its
// linear-regression score distributions).
func Range(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Max(xs) - Min(xs)
}

// Welford accumulates a running mean and variance in a single pass using
// Welford's numerically stable online algorithm. The zero value is ready to
// use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations added.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (NaN before any observation).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the running unbiased sample variance (0 before two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Merge combines another Welford accumulator into w (parallel variance
// combination, Chan et al.).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}
