package stats

import (
	"math"
	"testing"

	"banditware/internal/rng"
)

func TestLogHistogramConfigErrors(t *testing.T) {
	cases := []struct{ min, max, relErr float64 }{
		{0, 1, 0.01},
		{-1, 1, 0.01},
		{1, 1, 0.01},
		{2, 1, 0.01},
		{1, math.Inf(1), 0.01},
		{1, 10, 0},
		{1, 10, -0.5},
		{1, 10, 1},
	}
	for _, c := range cases {
		if _, err := NewLogHistogram(c.min, c.max, c.relErr); err == nil {
			t.Errorf("NewLogHistogram(%g, %g, %g): want error", c.min, c.max, c.relErr)
		}
	}
}

func TestLogHistogramEmpty(t *testing.T) {
	h, err := NewLogHistogram(1e-6, 100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if h.Count() != 0 {
		t.Fatalf("Count = %d, want 0", h.Count())
	}
	if !math.IsNaN(h.Quantile(0.5)) || !math.IsNaN(h.Mean()) {
		t.Fatal("empty histogram should report NaN quantiles and mean")
	}
}

// quantilesAgree asserts the histogram's quantile estimates track the
// exact stats.Quantile of the raw sample within the configured relative
// resolution (plus the rank-definition gap between nearest-rank and
// interpolated quantiles, which one sample's spacing bounds).
func quantilesAgree(t *testing.T, xs []float64, relErr float64) {
	t.Helper()
	h, err := NewLogHistogram(1e-7, 1e4, relErr)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		h.Add(x)
	}
	if h.Count() != uint64(len(xs)) {
		t.Fatalf("Count = %d, want %d", h.Count(), len(xs))
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := Quantile(xs, q)
		got := h.Quantile(q)
		// Nearest-rank vs interpolated can differ by one order
		// statistic; bound the comparison by the neighbouring exact
		// quantiles widened by the bucket resolution.
		lo := Quantile(xs, math.Max(0, q-1.5/float64(len(xs)))) * (1 - 3*relErr)
		hi := Quantile(xs, math.Min(1, q+1.5/float64(len(xs)))) * (1 + 3*relErr)
		if got < lo || got > hi {
			t.Errorf("q=%g: histogram %.6g outside [%.6g, %.6g] (exact %.6g)", q, got, lo, hi, exact)
		}
	}
	if got, want := h.Quantile(0), Min(xs); got != want {
		t.Errorf("Quantile(0) = %g, want exact min %g", got, want)
	}
	if got, want := h.Quantile(1), Max(xs); got != want {
		t.Errorf("Quantile(1) = %g, want exact max %g", got, want)
	}
	if got, want := h.Mean(), Mean(xs); math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Errorf("Mean = %g, want exact %g", got, want)
	}
}

func TestLogHistogramQuantilesUniform(t *testing.T) {
	r := rng.New(7)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = r.Uniform(1e-5, 2.0)
	}
	quantilesAgree(t, xs, 0.01)
}

func TestLogHistogramQuantilesHeavyTail(t *testing.T) {
	// Log-normal-ish latencies: most mass near 100µs with a long tail —
	// the shape per-request latency actually has.
	r := rng.New(11)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = 1e-4 * math.Exp(r.Normal(0, 1.5))
	}
	quantilesAgree(t, xs, 0.005)
}

func TestLogHistogramClampsOutOfRange(t *testing.T) {
	h, err := NewLogHistogram(1e-3, 1.0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(1e-9) // below min: clamps into first bucket
	h.Add(50)   // above max: overflow bucket
	if h.Count() != 2 {
		t.Fatalf("Count = %d, want 2", h.Count())
	}
	if h.Overflow() != 1 {
		t.Fatalf("Overflow = %d, want 1", h.Overflow())
	}
	// Quantiles stay inside the observed range even for clamped values.
	if q := h.Quantile(0.5); q < 1e-9 || q > 50 {
		t.Fatalf("Quantile(0.5) = %g outside observed range", q)
	}
	if got := h.Quantile(1); got != 50 {
		t.Fatalf("Quantile(1) = %g, want 50", got)
	}
}

func TestLogHistogramMerge(t *testing.T) {
	r := rng.New(3)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = r.Uniform(1e-5, 1.0)
	}
	whole, err := NewLogHistogram(1e-7, 1e4, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]*LogHistogram, 4)
	for i := range parts {
		parts[i], _ = NewLogHistogram(1e-7, 1e4, 0.01)
	}
	for i, x := range xs {
		whole.Add(x)
		parts[i%len(parts)].Add(x)
	}
	merged, _ := NewLogHistogram(1e-7, 1e4, 0.01)
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Count() != whole.Count() {
		t.Fatalf("merged count = %d, want %d", merged.Count(), whole.Count())
	}
	// Summation order differs between the merged and whole-sample paths,
	// so compare sums to floating-point tolerance only.
	if math.Abs(merged.Sum()-whole.Sum()) > 1e-9*whole.Sum() {
		t.Fatalf("merged sum = %g, want %g", merged.Sum(), whole.Sum())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merged min/max differ from whole-sample histogram")
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if got, want := merged.Quantile(q), whole.Quantile(q); got != want {
			t.Errorf("q=%g: merged %g != whole %g", q, got, want)
		}
	}
	other, _ := NewLogHistogram(1e-6, 1e4, 0.01)
	if err := merged.Merge(other); err == nil {
		t.Fatal("merging a histogram with a different layout should fail")
	}
}

func BenchmarkLogHistogramAdd(b *testing.B) {
	h, err := NewLogHistogram(1e-7, 1e4, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; b.Loop(); i++ {
		h.Add(1e-4 + float64(i%1000)*1e-6)
	}
}
