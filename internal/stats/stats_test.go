package stats

import (
	"math"
	"testing"
	"testing/quick"

	"banditware/internal/rng"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with divisor n-1: sum sq dev = 32, /7.
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEqual(got, want, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
	if Variance([]float64{5}) != 0 {
		t.Fatal("Variance of single element should be 0")
	}
}

func TestPopVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := PopVariance(xs); !almostEqual(got, 4.0, 1e-12) {
		t.Fatalf("PopVariance = %v, want 4", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max should be ±Inf")
	}
}

func TestArgMinArgMax(t *testing.T) {
	xs := []float64{3, -1, 7, -1}
	if got := ArgMin(xs); got != 1 {
		t.Fatalf("ArgMin = %d, want 1 (first of ties)", got)
	}
	if got := ArgMax(xs); got != 2 {
		t.Fatalf("ArgMax = %d, want 2", got)
	}
	if ArgMin(nil) != -1 || ArgMax(nil) != -1 {
		t.Fatal("empty ArgMin/ArgMax should be -1")
	}
}

func TestArgMinSkipsNaN(t *testing.T) {
	xs := []float64{math.NaN(), 5, 2}
	if got := ArgMin(xs); got != 2 {
		t.Fatalf("ArgMin with NaN = %d, want 2", got)
	}
	allNaN := []float64{math.NaN(), math.NaN()}
	if got := ArgMin(allNaN); got != 0 {
		t.Fatalf("ArgMin all-NaN = %d, want 0", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{1, 2}, 0.5); !almostEqual(got, 1.5, 1e-12) {
		t.Fatalf("interpolated median = %v, want 1.5", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("Quantile of empty should be NaN")
	}
	if !math.IsNaN(Quantile(xs, 1.5)) {
		t.Fatal("Quantile out of range should be NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Min != 1 || s.Max != 8 {
		t.Fatalf("bad summary %+v", s)
	}
	if !almostEqual(s.Median, 4.5, 1e-12) {
		t.Fatalf("median = %v, want 4.5", s.Median)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("Summarize(nil) err = %v, want ErrEmpty", err)
	}
}

func TestRangeStat(t *testing.T) {
	if got := Range([]float64{3, 9, 5}); got != 6 {
		t.Fatalf("Range = %v, want 6", got)
	}
	if !math.IsNaN(Range(nil)) {
		t.Fatal("Range(nil) should be NaN")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		if n < 2 {
			return true
		}
		r := rng.New(seed)
		xs := make([]float64, int(n))
		var w Welford
		for i := range xs {
			xs[i] = r.Normal(5, 2)
			w.Add(xs[i])
		}
		return almostEqual(w.Mean(), Mean(xs), 1e-10) &&
			almostEqual(w.Variance(), Variance(xs), 1e-10)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMerge(t *testing.T) {
	r := rng.New(99)
	xs := make([]float64, 1000)
	var a, b, whole Welford
	for i := range xs {
		xs[i] = r.Normal(0, 1)
		whole.Add(xs[i])
		if i < 400 {
			a.Add(xs[i])
		} else {
			b.Add(xs[i])
		}
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if !almostEqual(a.Mean(), whole.Mean(), 1e-10) {
		t.Fatalf("merged mean %v != %v", a.Mean(), whole.Mean())
	}
	if !almostEqual(a.Variance(), whole.Variance(), 1e-10) {
		t.Fatalf("merged variance %v != %v", a.Variance(), whole.Variance())
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(2)
	saved := a
	a.Merge(b)
	if a != saved {
		t.Fatal("merging empty changed the accumulator")
	}
	b.Merge(a)
	if b.N() != 2 || !almostEqual(b.Mean(), 1.5, 1e-12) {
		t.Fatal("merging into empty failed")
	}
}

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{1, 2, 3}, []float64{1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(4.0 / 3.0)
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("RMSE = %v, want %v", got, want)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Fatal("expected length mismatch error")
	}
	if _, err := RMSE(nil, nil); err != ErrEmpty {
		t.Fatal("expected ErrEmpty")
	}
}

func TestMAE(t *testing.T) {
	got, err := MAE([]float64{1, 2, 3}, []float64{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 1.0, 1e-12) {
		t.Fatalf("MAE = %v, want 1", got)
	}
}

func TestR2(t *testing.T) {
	actual := []float64{1, 2, 3, 4}
	if got, _ := R2(actual, actual); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("perfect R2 = %v, want 1", got)
	}
	mean := Mean(actual)
	pred := []float64{mean, mean, mean, mean}
	if got, _ := R2(pred, actual); !almostEqual(got, 0, 1e-12) {
		t.Fatalf("mean-predictor R2 = %v, want 0", got)
	}
	// Worse than the mean ⇒ negative.
	bad := []float64{4, 3, 2, 1}
	if got, _ := R2(bad, actual); got >= 0 {
		t.Fatalf("anti-correlated R2 = %v, want negative", got)
	}
}

func TestR2ConstantActual(t *testing.T) {
	actual := []float64{2, 2, 2}
	if got, _ := R2([]float64{2, 2, 2}, actual); got != 0 {
		t.Fatalf("constant/exact R2 = %v, want 0", got)
	}
	if got, _ := R2([]float64{1, 2, 3}, actual); !math.IsInf(got, -1) {
		t.Fatalf("constant/mismatch R2 = %v, want -Inf", got)
	}
}

func TestNRMSE(t *testing.T) {
	actual := []float64{0, 2, 4, 6}
	pred := []float64{1, 3, 5, 7} // constant offset 1
	got, err := NRMSE(pred, actual)
	if err != nil {
		t.Fatal(err)
	}
	sd := math.Sqrt(PopVariance(actual))
	if !almostEqual(got, 1/sd, 1e-12) {
		t.Fatalf("NRMSE = %v, want %v", got, 1/sd)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got, _ := Pearson(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got, _ := Pearson(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", got)
	}
	flat := []float64{5, 5, 5, 5}
	if got, _ := Pearson(xs, flat); got != 0 {
		t.Fatalf("Pearson with zero-variance arg = %v, want 0", got)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 11 {
		t.Fatalf("histogram total = %d, want 11", total)
	}
	// Upper edge value (10) must land in the last bin.
	if h.Counts[4] == 0 {
		t.Fatal("upper edge value missing from last bin")
	}
	if _, err := NewHistogram(nil, 3); err != ErrEmpty {
		t.Fatal("expected ErrEmpty")
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Fatal("expected error for nbins=0")
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h, err := NewHistogram([]float64{5, 5, 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 3 {
		t.Fatalf("degenerate histogram: %v", h.Counts)
	}
}

func TestBootstrapCI(t *testing.T) {
	r := rng.New(7)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Normal(10, 2)
	}
	lo, hi, err := MeanCI(xs, 500, 0.95, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if lo >= hi {
		t.Fatalf("CI inverted: [%v, %v]", lo, hi)
	}
	if lo > 10 || hi < 10 {
		t.Fatalf("CI [%v, %v] does not cover true mean 10", lo, hi)
	}
	if hi-lo > 1 {
		t.Fatalf("CI suspiciously wide: [%v, %v]", lo, hi)
	}
	if _, _, err := MeanCI(nil, 10, 0.95, rng.New(1)); err != ErrEmpty {
		t.Fatal("expected ErrEmpty")
	}
}

func TestRMSEIdentityWithR2(t *testing.T) {
	// R2 = 1 - (RMSE^2 * n) / SS_tot; check the identity on random data.
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 50
		actual := make([]float64, n)
		pred := make([]float64, n)
		for i := range actual {
			actual[i] = r.Normal(0, 3)
			pred[i] = actual[i] + r.Normal(0, 1)
		}
		rmse, _ := RMSE(pred, actual)
		r2, _ := R2(pred, actual)
		mean := Mean(actual)
		ssTot := 0.0
		for _, a := range actual {
			ssTot += (a - mean) * (a - mean)
		}
		want := 1 - rmse*rmse*float64(n)/ssTot
		return almostEqual(r2, want, 1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
