package stats

import (
	"errors"
	"math"
)

// EWMA is an exponentially weighted moving average; the zero value with
// a subsequent SetAlpha (or NewEWMA) is ready to use.
type EWMA struct {
	alpha float64
	value float64
	n     int
}

// NewEWMA returns an accumulator with smoothing factor alpha in (0, 1];
// higher alpha weights recent observations more.
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, errors.New("stats: EWMA alpha outside (0,1]")
	}
	return &EWMA{alpha: alpha}, nil
}

// Add incorporates one observation.
func (e *EWMA) Add(x float64) {
	if e.n == 0 {
		e.value = x
	} else {
		e.value = e.alpha*x + (1-e.alpha)*e.value
	}
	e.n++
}

// Value returns the current average (NaN before any observation).
func (e *EWMA) Value() float64 {
	if e.n == 0 {
		return math.NaN()
	}
	return e.value
}

// N returns the number of observations added.
func (e *EWMA) N() int { return e.n }

// TTestResult reports a two-sample Welch t-test.
type TTestResult struct {
	T  float64 // t statistic
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// WelchTTest compares the means of two independent samples without
// assuming equal variances — the right test for comparing policy regrets
// or runtimes across simulation replicas. It returns ErrEmpty when either
// sample has fewer than two elements.
func WelchTTest(xs, ys []float64) (TTestResult, error) {
	if len(xs) < 2 || len(ys) < 2 {
		return TTestResult{}, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	vx, vy := Variance(xs), Variance(ys)
	nx, ny := float64(len(xs)), float64(len(ys))
	sx, sy := vx/nx, vy/ny
	se := math.Sqrt(sx + sy)
	if se == 0 {
		// Identical constant samples: no evidence of difference.
		if mx == my {
			return TTestResult{T: 0, DF: nx + ny - 2, P: 1}, nil
		}
		return TTestResult{T: math.Inf(sign(mx - my)), DF: nx + ny - 2, P: 0}, nil
	}
	t := (mx - my) / se
	df := (sx + sy) * (sx + sy) / (sx*sx/(nx-1) + sy*sy/(ny-1))
	p := 2 * studentTCDFUpper(math.Abs(t), df)
	if p > 1 {
		p = 1
	}
	return TTestResult{T: t, DF: df, P: p}, nil
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// studentTCDFUpper returns P(T > t) for Student's t with df degrees of
// freedom, via the regularised incomplete beta function:
// P(T > t) = I_{df/(df+t²)}(df/2, 1/2) / 2 for t >= 0.
func studentTCDFUpper(t, df float64) float64 {
	if t < 0 {
		return 1 - studentTCDFUpper(-t, df)
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularised incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes' betacf
// construction, reimplemented from the published mathematics).
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(v float64) float64 {
	lg, _ := math.Lgamma(v)
	return lg
}

// betaCF evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 1e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
