package stats

import (
	"errors"
	"fmt"
	"math"
)

// LogHistogram is a bounded streaming histogram with HDR-style
// log-spaced buckets: values in [Min, Max] land in geometrically
// growing buckets whose width bounds the relative quantile error, so
// millions of per-request latencies can be recorded in O(1) time and
// fixed memory, then queried for p50/p99/p999 without retaining the
// samples. Values below Min clamp into the first bucket and values
// above Max into a dedicated overflow bucket, so Add never loses a
// count. The zero value is not usable; construct with NewLogHistogram.
//
// LogHistogram is not safe for concurrent use. Load-generator workers
// each own one and Merge them at the end, which keeps the record path
// free of atomics and locks.
type LogHistogram struct {
	min, max  float64
	base      float64 // bucket growth factor, 1+2*relErr
	invLnBase float64 // 1/ln(base), cached for Add
	counts    []uint64
	overflow  uint64
	total     uint64
	sum       float64
	vmin      float64 // smallest value observed
	vmax      float64 // largest value observed
}

// ErrHistogramConfig reports an invalid histogram construction or an
// attempt to merge histograms with different bucket layouts.
var ErrHistogramConfig = errors.New("stats: bad histogram config")

// NewLogHistogram builds a histogram tracking values in [min, max] with
// relative quantile error at most relErr (e.g. 0.01 for 1%). min and
// max must be positive with min < max, and relErr in (0, 1).
func NewLogHistogram(min, max, relErr float64) (*LogHistogram, error) {
	if !(min > 0) || !(max > min) || math.IsInf(max, 0) {
		return nil, fmt.Errorf("%w: need 0 < min < max, got [%g, %g]", ErrHistogramConfig, min, max)
	}
	if !(relErr > 0) || relErr >= 1 {
		return nil, fmt.Errorf("%w: relErr %g outside (0, 1)", ErrHistogramConfig, relErr)
	}
	// A value anywhere inside a bucket is reported as the bucket's
	// geometric midpoint, so a growth factor of 1+2e keeps the
	// round-trip error within e of the true value.
	base := 1 + 2*relErr
	n := int(math.Ceil(math.Log(max/min)/math.Log(base))) + 1
	return &LogHistogram{
		min:       min,
		max:       max,
		base:      base,
		invLnBase: 1 / math.Log(base),
		counts:    make([]uint64, n),
		vmin:      math.Inf(1),
		vmax:      math.Inf(-1),
	}, nil
}

// bucket returns the bucket index for v, clamped to the tracked range;
// values above max return len(counts) to select the overflow bucket.
func (h *LogHistogram) bucket(v float64) int {
	if v <= h.min {
		return 0
	}
	if v > h.max {
		return len(h.counts)
	}
	i := int(math.Log(v/h.min) * h.invLnBase)
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	return i
}

// bucketValue returns the representative (geometric midpoint) value of
// bucket i.
func (h *LogHistogram) bucketValue(i int) float64 {
	if i >= len(h.counts) {
		// Overflow bucket: the best available answer is the largest
		// value actually seen.
		return h.vmax
	}
	lo := h.min * math.Pow(h.base, float64(i))
	return lo * math.Sqrt(h.base)
}

// Add records one value. NaN values are ignored.
func (h *LogHistogram) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	if i := h.bucket(v); i >= len(h.counts) {
		h.overflow++
	} else {
		h.counts[i]++
	}
	h.total++
	h.sum += v
	if v < h.vmin {
		h.vmin = v
	}
	if v > h.vmax {
		h.vmax = v
	}
}

// Count returns the number of recorded values.
func (h *LogHistogram) Count() uint64 { return h.total }

// Sum returns the exact sum of recorded values.
func (h *LogHistogram) Sum() float64 { return h.sum }

// Mean returns the exact mean of recorded values (NaN when empty).
func (h *LogHistogram) Mean() float64 {
	if h.total == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.total)
}

// Min returns the smallest recorded value exactly (+Inf when empty).
func (h *LogHistogram) Min() float64 { return h.vmin }

// Max returns the largest recorded value exactly (-Inf when empty).
func (h *LogHistogram) Max() float64 { return h.vmax }

// Quantile returns the q-th quantile (0 <= q <= 1) of the recorded
// values to within the histogram's relative error. The extremes are
// exact: Quantile(0) is Min and Quantile(1) is Max. It returns NaN for
// an empty histogram or q outside [0, 1].
func (h *LogHistogram) Quantile(q float64) float64 {
	if h.total == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	if q == 0 {
		return h.vmin
	}
	if q == 1 {
		return h.vmax
	}
	// Rank of the target observation, 1-based, matching the nearest-rank
	// definition; the bucket holding that rank answers the query.
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := h.bucketValue(i)
			// Never report outside the observed range: the first and
			// last buckets cover values beyond vmin/vmax.
			return math.Min(math.Max(v, h.vmin), h.vmax)
		}
	}
	return h.vmax
}

// Merge folds another histogram with the identical bucket layout into
// h, summing counts. Worker-local histograms merge this way after a
// run so the hot path stays lock-free.
func (h *LogHistogram) Merge(o *LogHistogram) error {
	if o.min != h.min || o.max != h.max || o.base != h.base || len(o.counts) != len(h.counts) {
		return fmt.Errorf("%w: merging [%g, %g]x%g into [%g, %g]x%g",
			ErrHistogramConfig, o.min, o.max, o.base, h.min, h.max, h.base)
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.overflow += o.overflow
	h.total += o.total
	h.sum += o.sum
	if o.vmin < h.vmin {
		h.vmin = o.vmin
	}
	if o.vmax > h.vmax {
		h.vmax = o.vmax
	}
	return nil
}

// Overflow returns how many recorded values exceeded the tracked max
// (they are still counted in totals and report as Max in quantiles).
func (h *LogHistogram) Overflow() uint64 { return h.overflow }
