package core

import (
	"bytes"
	"math"
	"testing"

	"banditware/internal/hardware"
)

func windowHW() hardware.Set {
	return hardware.Set{
		{Name: "H0", CPUs: 2, MemoryGB: 16},
		{Name: "H1", CPUs: 4, MemoryGB: 32},
	}
}

// TestWindowedBanditTracksRegimeChange: with a sliding window, an arm
// whose behaviour changes mid-run is re-learned from post-change data
// only — the pre-change observations leave the window entirely — while
// an infinite-memory bandit still averages the two regimes.
func TestWindowedBanditTracksRegimeChange(t *testing.T) {
	const window = 20
	windowed, err := New(windowHW(), 1, Options{ZeroEpsilon: true, WindowSize: window, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	static, err := New(windowHW(), 1, Options{ZeroEpsilon: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Regime 1: arm 0 runtime = 10 + 2x (200 observations), then
	// regime 2: arm 0 runtime = 100 + 5x (window-many observations).
	feed := func(b *Bandit, n int, f func(x float64) float64) {
		for i := 0; i < n; i++ {
			x := float64(i%10 + 1)
			if err := b.Observe(0, []float64{x}, f(x)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, b := range []*Bandit{windowed, static} {
		feed(b, 200, func(x float64) float64 { return 10 + 2*x })
		feed(b, window, func(x float64) float64 { return 100 + 5*x })
	}
	wp, err := windowed.PredictAll([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := static.PredictAll([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	want := 100 + 5*5.0
	if diff := wp[0] - want; diff < -1 || diff > 1 {
		t.Fatalf("windowed prediction %v, want ≈ %v", wp[0], want)
	}
	// The static bandit still predicts near the blended average.
	if sp[0] > 60 {
		t.Fatalf("static prediction %v unexpectedly adapted (want ≪ %v)", sp[0], want)
	}
}

// TestWindowedBanditCapsStoredObservations: the per-arm buffer never
// exceeds the window.
func TestWindowedBanditCapsStoredObservations(t *testing.T) {
	b, err := New(windowHW(), 1, Options{ZeroEpsilon: true, WindowSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := b.Observe(i%2, []float64{float64(i)}, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for arm := 0; arm < 2; arm++ {
		n, err := b.ArmObservations(arm)
		if err != nil {
			t.Fatal(err)
		}
		if n != 8 {
			t.Fatalf("arm %d retains %d observations, want 8", arm, n)
		}
	}
}

// TestWindowedStateRoundTrip: the window buffers persist through
// SaveState/LoadState, so a restored bandit keeps sliding correctly.
func TestWindowedStateRoundTrip(t *testing.T) {
	b, err := New(windowHW(), 1, Options{ZeroEpsilon: true, WindowSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := b.Observe(0, []float64{float64(i)}, float64(3*i+1)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := b.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Both continue with identical updates and must agree exactly.
	for i := 12; i < 20; i++ {
		x, y := []float64{float64(i)}, float64(3*i+1)
		if err := b.Observe(0, x, y); err != nil {
			t.Fatal(err)
		}
		if err := back.Observe(0, x, y); err != nil {
			t.Fatal(err)
		}
	}
	p1, _ := b.PredictAll([]float64{7})
	p2, _ := back.PredictAll([]float64{7})
	if p1[0] != p2[0] {
		t.Fatalf("restored windowed bandit diverged: %v vs %v", p1[0], p2[0])
	}
	n, _ := back.ArmObservations(0)
	if n != 5 {
		t.Fatalf("restored window holds %d observations, want 5", n)
	}
}

// TestWindowOptionValidation: bad windows and conflicting modes are
// rejected.
func TestWindowOptionValidation(t *testing.T) {
	if _, err := New(windowHW(), 1, Options{WindowSize: -1}); err == nil {
		t.Fatal("negative window accepted")
	}
	if _, err := New(windowHW(), 1, Options{WindowSize: 8, ForgettingFactor: 0.9}); err == nil {
		t.Fatal("window + forgetting accepted")
	}
	if _, err := New(windowHW(), 1, Options{WindowSize: 8, BatchRefit: true}); err == nil {
		t.Fatal("window + batch refit accepted")
	}
}

// TestResetArm: resetting one arm restores its prior model and leaves
// the others (and ε, round) untouched.
func TestResetArm(t *testing.T) {
	b, err := New(windowHW(), 1, Options{ZeroEpsilon: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		x := []float64{float64(i%10 + 1)}
		if err := b.Observe(0, x, 10+2*x[0]); err != nil {
			t.Fatal(err)
		}
		if err := b.Observe(1, x, 5+x[0]); err != nil {
			t.Fatal(err)
		}
	}
	round := b.Round()
	if err := b.ResetArm(0); err != nil {
		t.Fatal(err)
	}
	preds, err := b.PredictAll([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if preds[0] != 0 {
		t.Fatalf("reset arm still predicts %v, want 0", preds[0])
	}
	if diff := preds[1] - 10; diff < -0.5 || diff > 0.5 {
		t.Fatalf("untouched arm prediction %v, want ≈ 10", preds[1])
	}
	if b.Round() != round {
		t.Fatalf("round changed across reset: %d vs %d", b.Round(), round)
	}
	if n, _ := b.ArmObservations(0); n != 0 {
		t.Fatalf("reset arm reports %d observations", n)
	}
	if err := b.ResetArm(5); err == nil {
		t.Fatal("out-of-range reset accepted")
	}
}

// TestWindowedRejectedObservationDoesNotPoisonArm: a non-finite
// observation is rejected without entering the window buffer, so
// subsequent valid observations (and snapshots) are unaffected. Before
// AppendWindow validated up front, the rejected features were buffered
// first and every later rebuild of the arm failed forever.
func TestWindowedRejectedObservationDoesNotPoisonArm(t *testing.T) {
	b, err := New(windowHW(), 1, Options{ZeroEpsilon: true, WindowSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Observe(0, []float64{1}, 10); err != nil {
		t.Fatal(err)
	}
	if err := b.Observe(0, []float64{math.Inf(1)}, 5); err == nil {
		t.Fatal("non-finite features accepted")
	}
	if err := b.Observe(0, []float64{2}, math.NaN()); err == nil {
		t.Fatal("non-finite runtime accepted")
	}
	for i := 0; i < 6; i++ {
		if err := b.Observe(0, []float64{float64(i + 2)}, float64(10+3*i)); err != nil {
			t.Fatalf("valid observation after rejection: %v", err)
		}
	}
	if n, _ := b.ArmObservations(0); n != 4 {
		t.Fatalf("window holds %d observations, want 4", n)
	}
	var buf bytes.Buffer
	if err := b.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadState(&buf); err != nil {
		t.Fatalf("snapshot after rejected observation: %v", err)
	}
}
