package core

import (
	"fmt"

	"banditware/internal/hardware"
	"banditware/internal/regress"
)

// AddArm grows the bandit with one new hardware configuration at
// runtime. The new arm starts from the ridge prior (callers that want
// a warm start merge sufficient statistics afterwards via
// MergeArmDelta). Returns the new arm's index.
//
// The hardware set is copied on append: callers may hold references
// to the previous Hardware() slice.
func (b *Bandit) AddArm(cfg hardware.Config) (int, error) {
	hw := append(append(hardware.Set{}, b.hw...), cfg)
	if err := hw.Validate(); err != nil {
		return 0, err
	}
	forget := b.opts.ForgettingFactor
	if forget == 0 {
		forget = 1
	}
	rls, err := regress.NewRLSForgetting(b.dim, b.opts.RidgeLambda, forget)
	if err != nil {
		return 0, err
	}
	b.hw = hw
	b.arms = append(b.arms, &arm{rls: rls, model: regress.Zero(b.dim)})
	return len(b.arms) - 1, nil
}

// RemoveArm retires arm i, discarding its estimator and shifting the
// indices of every later arm down by one. The last remaining arm
// cannot be removed.
func (b *Bandit) RemoveArm(i int) error {
	if i < 0 || i >= len(b.arms) {
		return ErrArm
	}
	if len(b.arms) == 1 {
		return fmt.Errorf("core: cannot remove the last arm")
	}
	b.hw = append(append(hardware.Set{}, b.hw[:i]...), b.hw[i+1:]...)
	b.arms = append(b.arms[:i], b.arms[i+1:]...)
	return nil
}
