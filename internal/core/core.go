// Package core implements the paper's primary contribution: Algorithm 1,
// the Decaying Contextual ε-Greedy Strategy with Tolerant Selection.
//
// A Bandit maintains one linear runtime model R̂(H_i, x) = wᵢᵀx + bᵢ per
// hardware arm. For each incoming workflow it either explores (uniformly
// random arm, probability ε) or exploits via tolerant selection: among all
// arms whose predicted runtime is within
//
//	R_limit = (1 + tolerance_ratio)·R̂(H_fastest, x) + tolerance_seconds
//
// it chooses the most resource-efficient arm. After observing the actual
// runtime it refits the chosen arm's model and decays ε ← α·ε.
//
// Per-arm fitting uses recursive least squares, which is algebraically
// equivalent to the paper's per-round batch least-squares refit (up to the
// infinitesimal ridge prior) while costing O(d²) per observation. A
// paper-literal batch refit mode is available for cross-checking
// (Options.BatchRefit); the equivalence is verified in the tests.
package core

import (
	"errors"
	"fmt"
	"math"

	"banditware/internal/hardware"
	"banditware/internal/regress"
	"banditware/internal/rng"
	"banditware/internal/stats"
)

// Errors returned by the bandit.
var (
	ErrDim      = errors.New("core: feature dimension mismatch")
	ErrArm      = errors.New("core: arm index out of range")
	ErrBadValue = errors.New("core: non-finite observation")
)

// Options configures Algorithm 1. The zero value selects the paper's
// experimental settings (α = 0.99, ε₀ = 1, zero tolerances).
type Options struct {
	// Alpha is the multiplicative ε decay factor per observed workflow.
	// 0 selects the paper's 0.99.
	Alpha float64
	// Epsilon0 is the initial exploration probability. Negative values are
	// rejected; 0 means "use the paper's 1.0" unless ZeroEpsilon is set.
	Epsilon0 float64
	// ZeroEpsilon forces ε₀ = 0 (pure exploitation), distinguishing an
	// intentional zero from the unset zero value.
	ZeroEpsilon bool
	// MinEpsilon is a floor on ε (an extension; the paper decays to 0).
	MinEpsilon float64
	// ToleranceRatio is the paper's tolerance_ratio (t_r).
	ToleranceRatio float64
	// ToleranceSeconds is the paper's tolerance_seconds (t_s).
	ToleranceSeconds float64
	// RidgeLambda is the RLS prior weight; 0 selects regress.DefaultLambda.
	RidgeLambda float64
	// ForgettingFactor, when in (0, 1), makes the per-arm models discount
	// old observations exponentially (effective memory ≈ 1/(1−factor)
	// samples), so the recommender tracks hardware whose performance
	// drifts over time. 0 (and 1) mean no forgetting — the paper's
	// stationary setting.
	ForgettingFactor float64
	// WindowSize, when positive, makes each arm retain only its last
	// WindowSize observations and refit from that sliding window on
	// every Observe — a hard-memory alternative to ForgettingFactor for
	// non-stationary environments (old observations vanish entirely
	// instead of fading). Mutually exclusive with ForgettingFactor and
	// BatchRefit. Costs O(WindowSize·d²) per observe.
	WindowSize int `json:"WindowSize,omitempty"`
	// Seed drives the exploration randomness.
	Seed uint64
	// BatchRefit stores every observation and refits the chosen arm by
	// batch least squares on each Observe — the literal Algorithm 1 line
	// 11. Slower (O(n·d²) per observe) and numerically equivalent.
	BatchRefit bool
	// FeatureScale holds optional per-feature divisors applied before
	// fitting and prediction. When workload features span many orders of
	// magnitude (BurnPro3D mixes byte counts ~10¹⁰ with moisture
	// fractions ~0.3) the unscaled early-round least-squares models
	// extrapolate wildly; dividing by a rough magnitude (e.g. the
	// trace's per-feature standard deviation) keeps them tame. Exported
	// models (Model, SaveState) are always in raw feature space.
	FeatureScale []float64
}

func (o Options) withDefaults() Options {
	if o.Alpha == 0 {
		o.Alpha = 0.99
	}
	if o.Epsilon0 == 0 && !o.ZeroEpsilon {
		o.Epsilon0 = 1
	}
	return o
}

// Validate rejects non-sensical parameters.
func (o Options) Validate() error {
	o = o.withDefaults()
	if o.Alpha < 0 || o.Alpha > 1 {
		return fmt.Errorf("core: alpha %v outside [0,1]", o.Alpha)
	}
	if o.Epsilon0 < 0 || o.Epsilon0 > 1 {
		return fmt.Errorf("core: epsilon0 %v outside [0,1]", o.Epsilon0)
	}
	if o.MinEpsilon < 0 || o.MinEpsilon > 1 {
		return fmt.Errorf("core: min epsilon %v outside [0,1]", o.MinEpsilon)
	}
	if o.ToleranceRatio < 0 {
		return fmt.Errorf("core: negative tolerance ratio %v", o.ToleranceRatio)
	}
	if o.ToleranceSeconds < 0 {
		return fmt.Errorf("core: negative tolerance seconds %v", o.ToleranceSeconds)
	}
	if o.ForgettingFactor < 0 || o.ForgettingFactor > 1 {
		return fmt.Errorf("core: forgetting factor %v outside [0,1]", o.ForgettingFactor)
	}
	if o.WindowSize < 0 {
		return fmt.Errorf("core: negative window size %d", o.WindowSize)
	}
	if o.WindowSize > 0 {
		if o.ForgettingFactor > 0 && o.ForgettingFactor < 1 {
			return fmt.Errorf("core: window size and forgetting factor are mutually exclusive")
		}
		if o.BatchRefit {
			return fmt.Errorf("core: window size and batch refit are mutually exclusive")
		}
	}
	return nil
}

// arm is the per-hardware state: the online model plus (optionally) the
// stored observations D_i for batch refitting and introspection.
type arm struct {
	rls   *regress.RLS
	xs    [][]float64
	ys    []float64
	model regress.Model // snapshot used for predictions

	// residual variance tracker (squared one-step-ahead prediction
	// errors) feeding the confidence intervals.
	resid stats.Welford
}

// Bandit is the Algorithm 1 recommender. It is not safe for concurrent
// use; wrap it or shard per goroutine.
type Bandit struct {
	opts  Options
	hw    hardware.Set
	dim   int
	eps   float64
	arms  []*arm
	rnd   *rng.Source
	round int

	scaleBuf []float64 // scratch for feature scaling
	predBuf  []float64 // scratch predictions for Exploit/Observe
	candBuf  []int     // scratch tolerant-selection candidate set
}

// scaled returns x divided elementwise by the configured feature scale
// (or x itself when no scaling is configured). The returned slice is a
// shared scratch buffer — do not retain it.
func (b *Bandit) scaled(x []float64) []float64 {
	if b.opts.FeatureScale == nil {
		return x
	}
	for i, v := range x {
		b.scaleBuf[i] = v / b.opts.FeatureScale[i]
	}
	return b.scaleBuf
}

// New constructs a bandit over the given hardware set for workflows with
// dim features.
func New(hw hardware.Set, dim int, opts Options) (*Bandit, error) {
	if err := hw.Validate(); err != nil {
		return nil, err
	}
	if dim < 0 {
		return nil, fmt.Errorf("core: negative feature dimension %d", dim)
	}
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.FeatureScale != nil {
		if len(opts.FeatureScale) != dim {
			return nil, fmt.Errorf("core: feature scale has %d entries, want %d", len(opts.FeatureScale), dim)
		}
		for i, s := range opts.FeatureScale {
			if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
				return nil, fmt.Errorf("core: feature scale[%d] = %v must be positive and finite", i, s)
			}
		}
	}
	b := &Bandit{
		opts:     opts,
		hw:       hw,
		dim:      dim,
		eps:      opts.Epsilon0,
		rnd:      rng.New(opts.Seed),
		scaleBuf: make([]float64, dim),
	}
	forget := opts.ForgettingFactor
	if forget == 0 {
		forget = 1
	}
	b.arms = make([]*arm, len(hw))
	for i := range b.arms {
		rls, err := regress.NewRLSForgetting(dim, opts.RidgeLambda, forget)
		if err != nil {
			return nil, err
		}
		b.arms[i] = &arm{rls: rls, model: regress.Zero(dim)}
	}
	return b, nil
}

// NumArms returns the number of hardware arms.
func (b *Bandit) NumArms() int { return len(b.arms) }

// Dim returns the feature dimension.
func (b *Bandit) Dim() int { return b.dim }

// Epsilon returns the current exploration probability.
func (b *Bandit) Epsilon() float64 { return b.eps }

// Round returns the number of observations absorbed so far.
func (b *Bandit) Round() int { return b.round }

// Hardware returns the hardware set (shared; do not mutate).
func (b *Bandit) Hardware() hardware.Set { return b.hw }

// Model returns a snapshot of arm i's current linear model in raw
// feature space (feature scaling, if configured, is folded into the
// weights).
func (b *Bandit) Model(i int) (regress.Model, error) {
	if i < 0 || i >= len(b.arms) {
		return regress.Model{}, ErrArm
	}
	m := b.arms[i].model.Clone()
	if b.opts.FeatureScale != nil {
		for j := range m.Weights {
			m.Weights[j] /= b.opts.FeatureScale[j]
		}
	}
	return m, nil
}

// ArmObservations returns how many observations arm i has absorbed.
func (b *Bandit) ArmObservations(i int) (int, error) {
	if i < 0 || i >= len(b.arms) {
		return 0, ErrArm
	}
	return b.arms[i].rls.N(), nil
}

// PredictAll returns the estimated runtime R̂(H_i, x) for every arm
// (Algorithm 1, line 5).
func (b *Bandit) PredictAll(x []float64) ([]float64, error) {
	return b.PredictAllInto(x, make([]float64, 0, len(b.arms)))
}

// PredictAllInto is PredictAll appending into out (typically a reused
// buffer sliced to out[:0]) — the allocation-free form for hot paths.
func (b *Bandit) PredictAllInto(x, out []float64) ([]float64, error) {
	if len(x) != b.dim {
		return nil, ErrDim
	}
	sx := b.scaled(x)
	for _, a := range b.arms {
		out = append(out, a.model.Predict(sx))
	}
	return out, nil
}

// Decision records one recommendation.
type Decision struct {
	// Arm is the selected hardware index.
	Arm int
	// Explored reports whether the arm came from the ε random branch.
	Explored bool
	// Predicted holds the per-arm runtime estimates used.
	Predicted []float64
	// Epsilon is the exploration probability at decision time.
	Epsilon float64
}

// Recommend runs lines 5–7 of Algorithm 1 for a workflow with features x.
// It does not change any state except consuming randomness.
func (b *Bandit) Recommend(x []float64) (Decision, error) {
	var d Decision
	if err := b.RecommendInto(x, &d); err != nil {
		return Decision{}, err
	}
	return d, nil
}

// RecommendInto is Recommend writing into d, reusing d.Predicted's
// backing array — the allocation-free form for hot paths. It consumes
// exactly the randomness Recommend would, so the two are drop-in
// equivalent on a fixed seed.
func (b *Bandit) RecommendInto(x []float64, d *Decision) error {
	preds, err := b.PredictAllInto(x, d.Predicted[:0])
	if err != nil {
		return err
	}
	d.Predicted = preds
	d.Epsilon = b.eps
	d.Explored = false
	if b.rnd.Float64() < b.eps {
		d.Arm = b.rnd.Intn(len(b.arms))
		d.Explored = true
		return nil
	}
	d.Arm, b.candBuf = tolerantSelectInto(preds, b.hw, b.opts.ToleranceRatio, b.opts.ToleranceSeconds, b.candBuf[:0])
	return nil
}

// TolerantSelect implements Algorithm 1's exploitation branch: find the
// minimum predicted runtime, form the tolerance threshold
// R_limit = (1+tr)·R̂_fastest + ts, and among arms within the threshold
// return the most resource-efficient. Non-finite predictions are excluded;
// if every prediction is non-finite, arm 0 is returned.
//
// Runtimes are physically non-negative, so the envelope is anchored at
// max(R̂_fastest, 0): a linear model extrapolating below zero (common when
// fitting a line to superlinear data at small inputs) must not collapse
// the tolerance window to nothing.
func TolerantSelect(preds []float64, hw hardware.Set, tr, ts float64) int {
	arm, _ := tolerantSelectInto(preds, hw, tr, ts, nil)
	return arm
}

// tolerantSelectInto is TolerantSelect building its candidate set in
// buf (typically a reused scratch sliced to buf[:0]); it returns the
// chosen arm and the possibly-grown buffer for the caller to retain.
func tolerantSelectInto(preds []float64, hw hardware.Set, tr, ts float64, buf []int) (int, []int) {
	fastest := -1
	for i, p := range preds {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			continue
		}
		if fastest == -1 || p < preds[fastest] {
			fastest = i
		}
	}
	if fastest == -1 {
		return 0, buf
	}
	base := preds[fastest]
	if base < 0 {
		base = 0
	}
	limit := (1+tr)*base + ts
	for i, p := range preds {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			continue
		}
		if p <= limit {
			buf = append(buf, i)
		}
	}
	// The fastest arm is within its own envelope except when a negative
	// prediction shrinks the ratio term below itself; keep it reachable.
	if len(buf) == 0 {
		return fastest, buf
	}
	if best := hw.MostEfficient(buf); best >= 0 {
		return best, buf
	}
	return fastest, buf
}

// Interval is a symmetric prediction interval.
type Interval struct {
	Lo, Mid, Hi float64
}

// PredictWithCI returns, for every arm, the runtime estimate with an
// approximate prediction interval Mid ± z·σ̂ᵢ·√(1 + u), where σ̂ᵢ is the
// arm's one-step-ahead residual standard deviation and u = xᵀ(XᵀX+λI)⁻¹x
// is the parameter-uncertainty term from the arm's estimator. z <= 0
// selects 1.96 (~95%). Arms with fewer than two observations report
// infinite intervals — honest ignorance.
func (b *Bandit) PredictWithCI(x []float64, z float64) ([]Interval, error) {
	if len(x) != b.dim {
		return nil, ErrDim
	}
	if z <= 0 {
		z = 1.96
	}
	sx := b.scaled(x)
	out := make([]Interval, len(b.arms))
	for i, a := range b.arms {
		mid := a.model.Predict(sx)
		out[i].Mid = mid
		if a.resid.N() < 2 {
			out[i].Lo = math.Inf(-1)
			out[i].Hi = math.Inf(1)
			continue
		}
		u := a.rls.Uncertainty(sx)
		half := z * a.resid.StdDev() * math.Sqrt(1+u)
		out[i].Lo = mid - half
		out[i].Hi = mid + half
	}
	return out, nil
}

// Exploit returns the tolerant selection for features x without consuming
// any exploration randomness — the pure "line 7" decision. Evaluation
// harnesses use it to measure model quality independent of ε.
func (b *Bandit) Exploit(x []float64) (int, error) {
	preds, err := b.PredictAllInto(x, b.predBuf[:0])
	if err != nil {
		return 0, err
	}
	b.predBuf = preds
	var arm int
	arm, b.candBuf = tolerantSelectInto(preds, b.hw, b.opts.ToleranceRatio, b.opts.ToleranceSeconds, b.candBuf[:0])
	return arm, nil
}

// Observe runs lines 9–12 of Algorithm 1: record the actual runtime of the
// workflow on the chosen arm, refit that arm's model, and decay ε.
func (b *Bandit) Observe(armIdx int, x []float64, runtime float64) error {
	if armIdx < 0 || armIdx >= len(b.arms) {
		return ErrArm
	}
	if len(x) != b.dim {
		return ErrDim
	}
	if math.IsNaN(runtime) || math.IsInf(runtime, 0) {
		return ErrBadValue
	}
	a := b.arms[armIdx]
	sx := b.scaled(x)
	// One-step-ahead residual, recorded before the model absorbs the
	// observation (an honest out-of-sample error).
	a.resid.Add(runtime - a.model.Predict(sx))
	if b.opts.WindowSize > 0 {
		// Sliding window: retain the last WindowSize observations and
		// rebuild the arm's estimator from them, so evicted observations
		// leave no trace (contrast forgetting, which only fades them).
		// AppendWindow validates before buffering, so a rejected
		// observation never poisons the window.
		var err error
		a.xs, a.ys, err = regress.AppendWindow(a.xs, a.ys, sx, runtime, b.opts.WindowSize)
		if err != nil {
			return err
		}
		fresh, err := regress.RefitWindow(b.dim, b.opts.RidgeLambda, a.xs, a.ys)
		if err != nil {
			return err
		}
		a.rls = fresh
		a.rls.ModelInto(&a.model)
		b.decayLocked()
		return nil
	}
	if err := a.rls.Update(sx, runtime); err != nil {
		return err
	}
	if b.opts.BatchRefit {
		a.xs = append(a.xs, append([]float64(nil), sx...))
		a.ys = append(a.ys, runtime)
		m, err := regress.FitOLS(a.xs, a.ys, b.opts.RidgeLambda)
		if err != nil {
			// Degenerate designs (e.g. a single repeated point) fall back
			// to the online estimate, which is always defined.
			m = a.rls.Model()
		}
		a.model = m
	} else {
		a.rls.ModelInto(&a.model)
	}
	b.decayLocked()
	return nil
}

// decayLocked advances the round counter and decays ε — the shared tail
// of every Observe path.
func (b *Bandit) decayLocked() {
	b.round++
	b.eps *= b.opts.Alpha
	if b.eps < b.opts.MinEpsilon {
		b.eps = b.opts.MinEpsilon
	}
}

// ResetArm drops arm i's learned state — estimator, model, stored
// window/batch observations, residual tracker — restoring it to the
// freshly constructed prior. The round counter, ε, and the other arms
// are untouched. The serving layer uses it to refit a single arm after
// an online drift detection.
func (b *Bandit) ResetArm(i int) error {
	if i < 0 || i >= len(b.arms) {
		return ErrArm
	}
	forget := b.opts.ForgettingFactor
	if forget == 0 {
		forget = 1
	}
	rls, err := regress.NewRLSForgetting(b.dim, b.opts.RidgeLambda, forget)
	if err != nil {
		return err
	}
	b.arms[i] = &arm{rls: rls, model: regress.Zero(b.dim)}
	return nil
}

// Step is the full Algorithm 1 loop body for one workflow: recommend, let
// the caller run the workflow via run (which returns the actual runtime on
// the chosen hardware), then observe. It returns the decision and runtime.
func (b *Bandit) Step(x []float64, run func(armIdx int) float64) (Decision, float64, error) {
	d, err := b.Recommend(x)
	if err != nil {
		return Decision{}, 0, err
	}
	rt := run(d.Arm)
	if err := b.Observe(d.Arm, x, rt); err != nil {
		return d, rt, err
	}
	return d, rt, nil
}
