package core

import (
	"encoding/json"
	"fmt"
	"io"

	"banditware/internal/hardware"
	"banditware/internal/regress"
)

// stateVersion guards the persisted wire format.
const stateVersion = 1

// armState is the wire form of one arm.
type armState struct {
	RLS *regress.RLS `json:"rls"`
	Xs  [][]float64  `json:"xs,omitempty"`
	Ys  []float64    `json:"ys,omitempty"`
}

// banditState is the wire form of a Bandit.
type banditState struct {
	Version  int             `json:"version"`
	Options  Options         `json:"options"`
	Hardware hardware.Set    `json:"hardware"`
	Dim      int             `json:"dim"`
	Epsilon  float64         `json:"epsilon"`
	Round    int             `json:"round"`
	Seed     uint64          `json:"seed"`
	Arms     []armState      `json:"arms"`
	Models   []regress.Model `json:"models"`
}

// SaveState serialises the bandit (models, stored data, ε, round counter)
// as JSON. The exploration RNG position is not captured — a restored
// bandit draws a fresh exploration stream from the recorded seed, which
// preserves the distribution of behaviour but not the exact draw sequence.
func (b *Bandit) SaveState(w io.Writer) error {
	st := banditState{
		Version:  stateVersion,
		Options:  b.opts,
		Hardware: b.hw,
		Dim:      b.dim,
		Epsilon:  b.eps,
		Round:    b.round,
		Seed:     b.opts.Seed,
		Arms:     make([]armState, len(b.arms)),
		Models:   make([]regress.Model, len(b.arms)),
	}
	for i, a := range b.arms {
		st.Arms[i] = armState{RLS: a.rls, Xs: a.xs, Ys: a.ys}
		st.Models[i] = a.model.Clone()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(st)
}

// LoadState reconstructs a bandit serialised by SaveState.
func LoadState(r io.Reader) (*Bandit, error) {
	var st banditState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: decoding state: %w", err)
	}
	if st.Version != stateVersion {
		return nil, fmt.Errorf("core: unsupported state version %d", st.Version)
	}
	if len(st.Arms) != len(st.Hardware) || len(st.Models) != len(st.Hardware) {
		return nil, fmt.Errorf("core: corrupt state: %d arms, %d models, %d hardware",
			len(st.Arms), len(st.Models), len(st.Hardware))
	}
	b, err := New(st.Hardware, st.Dim, st.Options)
	if err != nil {
		return nil, err
	}
	b.eps = st.Epsilon
	b.round = st.Round
	for i := range st.Arms {
		if st.Arms[i].RLS == nil {
			return nil, fmt.Errorf("core: corrupt state: arm %d missing estimator", i)
		}
		b.arms[i].rls = st.Arms[i].RLS
		b.arms[i].xs = st.Arms[i].Xs
		b.arms[i].ys = st.Arms[i].Ys
		b.arms[i].model = st.Models[i]
	}
	return b, nil
}
