package core

import (
	"errors"
	"fmt"

	"banditware/internal/regress"
)

// ErrNotMergeable reports a delta operation on a bandit whose
// configuration is not stats-additive: sliding windows and batch refit
// keep raw observation buffers (a delta would have to ship and splice
// them), and exponential forgetting makes old contributions decay so
// "state minus base" is no longer a sum of per-observation terms.
var ErrNotMergeable = errors.New("core: bandit configuration is not delta-mergeable")

// DeltaMergeable reports whether this bandit's per-arm state is a pure
// sum of observation contributions, i.e. whether sufficient-statistic
// deltas can be extracted from and merged into it.
func (b *Bandit) DeltaMergeable() error {
	if b.opts.WindowSize > 0 {
		return fmt.Errorf("%w: sliding-window adaptation", ErrNotMergeable)
	}
	if b.opts.BatchRefit {
		return fmt.Errorf("%w: batch refit retains raw observations", ErrNotMergeable)
	}
	if f := b.opts.ForgettingFactor; f > 0 && f < 1 {
		return fmt.Errorf("%w: exponential forgetting", ErrNotMergeable)
	}
	return nil
}

// ArmSufficient returns arm i's current information-form sufficient
// statistics (A = P + Σxxᵀ, b = Σy·x over scaled features).
func (b *Bandit) ArmSufficient(i int) (regress.Sufficient, error) {
	if err := b.DeltaMergeable(); err != nil {
		return regress.Sufficient{}, err
	}
	if i < 0 || i >= len(b.arms) {
		return regress.Sufficient{}, ErrArm
	}
	return b.arms[i].rls.Sufficient(), nil
}

// ArmPrior returns the information-form prior of arm i — its state
// before any observation. Delta extraction falls back to the prior as
// the base when an arm was reset since the last sync.
func (b *Bandit) ArmPrior(i int) (regress.Sufficient, error) {
	if err := b.DeltaMergeable(); err != nil {
		return regress.Sufficient{}, err
	}
	if i < 0 || i >= len(b.arms) {
		return regress.Sufficient{}, ErrArm
	}
	return b.arms[i].rls.Prior(), nil
}

// MergeArmDelta folds an additive sufficient-statistic delta (extracted
// from a peer replica's copy of the same arm) into arm i and refreshes
// the arm's prediction model. The residual-variance tracker is not
// merged — it feeds only the advisory confidence intervals and remains
// a local estimate.
func (b *Bandit) MergeArmDelta(i int, delta regress.Sufficient) error {
	if err := b.DeltaMergeable(); err != nil {
		return err
	}
	if i < 0 || i >= len(b.arms) {
		return ErrArm
	}
	a := b.arms[i]
	if err := a.rls.ApplyDelta(delta); err != nil {
		return err
	}
	a.model = a.rls.Model()
	return nil
}

// AbsorbRounds replays k rounds' worth of ε decay and round-counter
// advance, as if this bandit had observed the k observations a peer's
// delta carries. Each round applies the same ε ← α·ε (floored at
// MinEpsilon) step as Observe, so a replica that merges peers' rounds
// walks the exact decay schedule of a single node seeing all traffic.
func (b *Bandit) AbsorbRounds(k int) error {
	if k < 0 {
		return fmt.Errorf("core: negative round count %d", k)
	}
	for j := 0; j < k; j++ {
		b.decayLocked()
	}
	return nil
}
