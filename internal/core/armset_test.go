package core

import (
	"testing"

	"banditware/internal/hardware"
)

func churnSet() hardware.Set {
	return hardware.Set{
		{Name: "small", CPUs: 2, MemoryGB: 8},
		{Name: "big", CPUs: 8, MemoryGB: 32},
	}
}

func TestBanditAddArm(t *testing.T) {
	b, err := New(churnSet(), 1, Options{Seed: 1, Epsilon0: 0})
	if err != nil {
		t.Fatal(err)
	}
	before := b.Hardware()
	for i := 0; i < 40; i++ {
		x := []float64{float64(i % 5)}
		if err := b.Observe(0, x, 5); err != nil {
			t.Fatal(err)
		}
		if err := b.Observe(1, x, 3); err != nil {
			t.Fatal(err)
		}
	}
	idx, err := b.AddArm(hardware.Config{Name: "huge", CPUs: 32, MemoryGB: 128})
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 || b.NumArms() != 3 || len(b.Hardware()) != 3 {
		t.Fatalf("AddArm: idx=%d NumArms=%d hw=%d", idx, b.NumArms(), len(b.Hardware()))
	}
	if len(before) != 2 {
		t.Fatalf("prior Hardware() slice mutated: len=%d", len(before))
	}
	// Duplicate names rejected, set untouched.
	if _, err := b.AddArm(hardware.Config{Name: "big", CPUs: 1, MemoryGB: 1}); err == nil {
		t.Fatal("duplicate hardware name accepted")
	}
	if b.NumArms() != 3 {
		t.Fatalf("failed AddArm changed arm count to %d", b.NumArms())
	}
	// New arm learns and can win.
	for i := 0; i < 60; i++ {
		x := []float64{float64(i % 5)}
		if err := b.Observe(2, x, 1); err != nil {
			t.Fatal(err)
		}
	}
	arm, err := b.Exploit([]float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if arm != 2 {
		t.Fatalf("Exploit after training new arm = %d, want 2", arm)
	}
}

func TestBanditRemoveArm(t *testing.T) {
	b, err := New(churnSet(), 1, Options{Seed: 1, Epsilon0: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		x := []float64{float64(i % 5)}
		if err := b.Observe(0, x, 2); err != nil {
			t.Fatal(err)
		}
		if err := b.Observe(1, x, 7); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.RemoveArm(5); err != ErrArm {
		t.Fatalf("RemoveArm(5) = %v, want ErrArm", err)
	}
	if err := b.RemoveArm(0); err != nil {
		t.Fatal(err)
	}
	if b.NumArms() != 1 || b.Hardware()[0].Name != "big" {
		t.Fatalf("after remove: NumArms=%d hw[0]=%s", b.NumArms(), b.Hardware()[0].Name)
	}
	// The surviving arm kept its estimator (trained on runtime 7).
	preds, err := b.PredictAll([]float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if preds[0] < 5 || preds[0] > 9 {
		t.Fatalf("surviving arm prediction %v, want ~7", preds[0])
	}
	if err := b.RemoveArm(0); err == nil {
		t.Fatal("removed the last arm")
	}
}
