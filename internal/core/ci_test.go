package core

import (
	"math"
	"testing"

	"banditware/internal/rng"
)

func TestPredictWithCI(t *testing.T) {
	b := newTestBandit(t, 1, Options{Seed: 71})
	// Before any observations: infinite intervals.
	ivs, err := b.PredictWithCI([]float64{10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, iv := range ivs {
		if !math.IsInf(iv.Lo, -1) || !math.IsInf(iv.Hi, 1) {
			t.Fatal("untrained arm should report infinite interval")
		}
	}
	// Train arm 0 on y = 3x + 5 with σ = 2.
	r := rng.New(72)
	for i := 0; i < 200; i++ {
		x := []float64{r.Uniform(0, 20)}
		if err := b.Observe(0, x, 3*x[0]+5+r.Normal(0, 2)); err != nil {
			t.Fatal(err)
		}
	}
	ivs, err = b.PredictWithCI([]float64{10}, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	iv := ivs[0]
	truth := 3*10.0 + 5
	if iv.Lo > truth || iv.Hi < truth {
		t.Fatalf("95%% interval [%v, %v] misses truth %v", iv.Lo, iv.Hi, truth)
	}
	// Interval should be a handful of σ wide, not degenerate or huge.
	// (The residual tracker includes the large early-round errors, so the
	// width overestimates σ initially — by 200 rounds it must be sane.)
	width := iv.Hi - iv.Lo
	if width < 2 || width > 60 {
		t.Fatalf("interval width = %v, want O(4σ)", width)
	}
	// Untrained arm 1 still infinite.
	if !math.IsInf(ivs[1].Hi, 1) {
		t.Fatal("arm 1 should still be untrained")
	}
}

func TestPredictWithCIDimError(t *testing.T) {
	b := newTestBandit(t, 2, Options{})
	if _, err := b.PredictWithCI([]float64{1}, 0); err != ErrDim {
		t.Fatal("wrong dim should be ErrDim")
	}
}

func TestPredictWithCIShrinksWithData(t *testing.T) {
	b := newTestBandit(t, 1, Options{Seed: 73})
	r := rng.New(74)
	feed := func(n int) {
		for i := 0; i < n; i++ {
			x := []float64{r.Uniform(0, 20)}
			_ = b.Observe(0, x, 2*x[0]+r.Normal(0, 1))
		}
	}
	feed(10)
	iv10, _ := b.PredictWithCI([]float64{10}, 0)
	feed(500)
	iv500, _ := b.PredictWithCI([]float64{10}, 0)
	if iv500[0].Hi-iv500[0].Lo >= iv10[0].Hi-iv10[0].Lo {
		t.Fatalf("interval did not shrink with data: %v -> %v",
			iv10[0].Hi-iv10[0].Lo, iv500[0].Hi-iv500[0].Lo)
	}
}
