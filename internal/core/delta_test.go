package core

import (
	"errors"
	"math"
	"testing"

	"banditware/internal/hardware"
)

func deltaHW() hardware.Set {
	return hardware.Set{
		{Name: "small", CPUs: 2, MemoryGB: 4},
		{Name: "medium", CPUs: 8, MemoryGB: 16},
		{Name: "large", CPUs: 32, MemoryGB: 64},
	}
}

func relClose(a, b, tol float64) bool {
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// TestBanditDeltaMergeMatchesSingleNode shards one seeded trace across
// three bandits, merges their arm deltas and rounds into a fresh
// bandit, and checks the merged bandit matches the single-node bandit
// that saw the whole trace: same models, same ε (float-exact — the
// decay walks the identical multiplication sequence), same exploit
// decisions.
func TestBanditDeltaMergeMatchesSingleNode(t *testing.T) {
	hw := deltaHW()
	const dim, n, shards = 2, 300, 3
	opts := Options{Seed: 11, MinEpsilon: 0.01}

	single, err := New(hw, dim, opts)
	if err != nil {
		t.Fatal(err)
	}
	fleet := make([]*Bandit, shards)
	for k := range fleet {
		if fleet[k], err = New(hw, dim, opts); err != nil {
			t.Fatal(err)
		}
	}
	truth := func(arm int, x []float64) float64 {
		return float64(arm+1)*x[0] + 0.5*float64(2-arm)*x[1] + 3
	}
	for i := 0; i < n; i++ {
		x := []float64{float64(i%7) / 3, float64(i%5) / 2}
		arm := i % len(hw)
		y := truth(arm, x)
		if err := single.Observe(arm, x, y); err != nil {
			t.Fatal(err)
		}
		if err := fleet[i%shards].Observe(arm, x, y); err != nil {
			t.Fatal(err)
		}
	}

	merged, err := New(hw, dim, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range fleet {
		for a := 0; a < len(hw); a++ {
			cur, err := b.ArmSufficient(a)
			if err != nil {
				t.Fatal(err)
			}
			prior, err := b.ArmPrior(a)
			if err != nil {
				t.Fatal(err)
			}
			delta, err := cur.Sub(prior)
			if err != nil {
				t.Fatal(err)
			}
			if err := merged.MergeArmDelta(a, delta); err != nil {
				t.Fatal(err)
			}
		}
		if err := merged.AbsorbRounds(b.Round()); err != nil {
			t.Fatal(err)
		}
	}

	if merged.Round() != single.Round() {
		t.Fatalf("round = %d, want %d", merged.Round(), single.Round())
	}
	if merged.Epsilon() != single.Epsilon() {
		t.Fatalf("epsilon = %g, want %g (must be float-exact)", merged.Epsilon(), single.Epsilon())
	}
	for a := 0; a < len(hw); a++ {
		mm, err1 := merged.Model(a)
		sm, err2 := single.Model(a)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		for j := range mm.Weights {
			if !relClose(mm.Weights[j], sm.Weights[j], 1e-8) {
				t.Fatalf("arm %d w[%d] = %g, want %g", a, j, mm.Weights[j], sm.Weights[j])
			}
		}
		if !relClose(mm.Bias, sm.Bias, 1e-8) {
			t.Fatalf("arm %d bias = %g, want %g", a, mm.Bias, sm.Bias)
		}
		mn, _ := merged.ArmObservations(a)
		sn, _ := single.ArmObservations(a)
		if mn != sn {
			t.Fatalf("arm %d n = %d, want %d", a, mn, sn)
		}
	}
	for i := 0; i < 40; i++ {
		x := []float64{float64(i) / 13, float64(i%9) / 4}
		ma, err1 := merged.Exploit(x)
		sa, err2 := single.Exploit(x)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if ma != sa {
			t.Fatalf("exploit(%v) = %d, want %d", x, ma, sa)
		}
	}
}

func TestBanditDeltaNonMergeableModes(t *testing.T) {
	hw := deltaHW()
	cases := []struct {
		name string
		opts Options
	}{
		{"window", Options{WindowSize: 8}},
		{"forgetting", Options{ForgettingFactor: 0.95}},
		{"batch", Options{BatchRefit: true}},
	}
	for _, c := range cases {
		b, err := New(hw, 2, c.opts)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if err := b.DeltaMergeable(); !errors.Is(err, ErrNotMergeable) {
			t.Fatalf("%s: DeltaMergeable = %v, want ErrNotMergeable", c.name, err)
		}
		if _, err := b.ArmSufficient(0); !errors.Is(err, ErrNotMergeable) {
			t.Fatalf("%s: ArmSufficient = %v, want ErrNotMergeable", c.name, err)
		}
	}
	// The default stationary configuration is mergeable.
	b, err := New(hw, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.DeltaMergeable(); err != nil {
		t.Fatalf("stationary bandit not mergeable: %v", err)
	}
}

func TestBanditDeltaBadArgs(t *testing.T) {
	b, err := New(deltaHW(), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.ArmSufficient(9); !errors.Is(err, ErrArm) {
		t.Fatalf("out-of-range arm: %v", err)
	}
	if err := b.AbsorbRounds(-1); err == nil {
		t.Fatal("negative rounds accepted")
	}
}
