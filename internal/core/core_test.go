package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"banditware/internal/hardware"
	"banditware/internal/rng"
)

func testHW() hardware.Set { return hardware.NDPDefault() }

func newTestBandit(t *testing.T, dim int, opts Options) *Bandit {
	t.Helper()
	b, err := New(testHW(), dim, opts)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New(hardware.Set{}, 1, Options{}); err == nil {
		t.Fatal("empty hardware should fail")
	}
	if _, err := New(testHW(), -1, Options{}); err == nil {
		t.Fatal("negative dim should fail")
	}
	if _, err := New(testHW(), 1, Options{Alpha: 1.5}); err == nil {
		t.Fatal("alpha > 1 should fail")
	}
	if _, err := New(testHW(), 1, Options{Epsilon0: 2}); err == nil {
		t.Fatal("epsilon0 > 1 should fail")
	}
	if _, err := New(testHW(), 1, Options{ToleranceRatio: -0.1}); err == nil {
		t.Fatal("negative tolerance ratio should fail")
	}
	if _, err := New(testHW(), 1, Options{ToleranceSeconds: -1}); err == nil {
		t.Fatal("negative tolerance seconds should fail")
	}
	if _, err := New(testHW(), 1, Options{MinEpsilon: 2}); err == nil {
		t.Fatal("min epsilon > 1 should fail")
	}
}

func TestDefaults(t *testing.T) {
	b := newTestBandit(t, 1, Options{})
	if b.Epsilon() != 1 {
		t.Fatalf("default epsilon = %v, want 1 (paper's ε₀)", b.Epsilon())
	}
	if b.NumArms() != 3 || b.Dim() != 1 || b.Round() != 0 {
		t.Fatal("bad initial state")
	}
	// Untrained arms predict 0 — the w=0, b=0 initialisation of line 2.
	preds, err := b.PredictAll([]float64{100})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range preds {
		if p != 0 {
			t.Fatalf("untrained prediction = %v, want 0", p)
		}
	}
}

func TestZeroEpsilonOption(t *testing.T) {
	b := newTestBandit(t, 1, Options{ZeroEpsilon: true})
	if b.Epsilon() != 0 {
		t.Fatalf("ZeroEpsilon bandit has ε = %v", b.Epsilon())
	}
	// Pure exploitation: identical features must always pick the same arm.
	d1, err := b.Recommend([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		d, err := b.Recommend([]float64{1})
		if err != nil {
			t.Fatal(err)
		}
		if d.Explored || d.Arm != d1.Arm {
			t.Fatal("ZeroEpsilon bandit explored")
		}
	}
}

func TestEpsilonDecay(t *testing.T) {
	b := newTestBandit(t, 1, Options{Alpha: 0.9})
	for i := 0; i < 5; i++ {
		if err := b.Observe(0, []float64{1}, 10); err != nil {
			t.Fatal(err)
		}
	}
	want := math.Pow(0.9, 5)
	if math.Abs(b.Epsilon()-want) > 1e-12 {
		t.Fatalf("epsilon = %v, want %v", b.Epsilon(), want)
	}
	if b.Round() != 5 {
		t.Fatalf("round = %d, want 5", b.Round())
	}
}

func TestMinEpsilonFloor(t *testing.T) {
	b := newTestBandit(t, 1, Options{Alpha: 0.5, MinEpsilon: 0.1})
	for i := 0; i < 20; i++ {
		_ = b.Observe(0, []float64{1}, 10)
	}
	if b.Epsilon() != 0.1 {
		t.Fatalf("epsilon = %v, want floor 0.1", b.Epsilon())
	}
}

func TestObserveErrors(t *testing.T) {
	b := newTestBandit(t, 2, Options{})
	if err := b.Observe(-1, []float64{1, 2}, 1); err != ErrArm {
		t.Fatal("negative arm should be ErrArm")
	}
	if err := b.Observe(5, []float64{1, 2}, 1); err != ErrArm {
		t.Fatal("arm out of range should be ErrArm")
	}
	if err := b.Observe(0, []float64{1}, 1); err != ErrDim {
		t.Fatal("wrong dim should be ErrDim")
	}
	if err := b.Observe(0, []float64{1, 2}, math.NaN()); err != ErrBadValue {
		t.Fatal("NaN runtime should be ErrBadValue")
	}
	if b.Round() != 0 {
		t.Fatal("failed observes must not advance the round")
	}
}

func TestRecommendDimError(t *testing.T) {
	b := newTestBandit(t, 2, Options{})
	if _, err := b.Recommend([]float64{1}); err != ErrDim {
		t.Fatal("wrong dim should be ErrDim")
	}
	if _, err := b.PredictAll([]float64{1, 2, 3}); err != ErrDim {
		t.Fatal("wrong dim should be ErrDim")
	}
}

func TestModelAccessors(t *testing.T) {
	b := newTestBandit(t, 1, Options{})
	if _, err := b.Model(9); err != ErrArm {
		t.Fatal("Model out of range should be ErrArm")
	}
	if _, err := b.ArmObservations(-1); err != ErrArm {
		t.Fatal("ArmObservations out of range should be ErrArm")
	}
	_ = b.Observe(1, []float64{2}, 8)
	n, err := b.ArmObservations(1)
	if err != nil || n != 1 {
		t.Fatalf("ArmObservations = %d, %v", n, err)
	}
	m, err := b.Model(1)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the returned model must not affect the bandit.
	m.Weights[0] = 1e9
	preds, _ := b.PredictAll([]float64{2})
	if preds[1] > 1e6 {
		t.Fatal("Model returned shared storage")
	}
}

func TestLearnsLinearModels(t *testing.T) {
	// True models: runtime_i = slope_i·x + intercept_i, clearly separated.
	slopes := []float64{6, 3, 1}
	intercepts := []float64{10, 50, 200}
	b := newTestBandit(t, 1, Options{Seed: 42})
	r := rng.New(7)
	for round := 0; round < 400; round++ {
		x := []float64{r.Uniform(10, 100)}
		d, err := b.Recommend(x)
		if err != nil {
			t.Fatal(err)
		}
		rt := slopes[d.Arm]*x[0] + intercepts[d.Arm] + r.Normal(0, 1)
		if err := b.Observe(d.Arm, x, rt); err != nil {
			t.Fatal(err)
		}
	}
	for i := range slopes {
		m, err := b.Model(i)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.Weights[0]-slopes[i]) > 0.2 {
			t.Fatalf("arm %d slope = %v, want %v", i, m.Weights[0], slopes[i])
		}
		if math.Abs(m.Bias-intercepts[i]) > 10 {
			t.Fatalf("arm %d intercept = %v, want %v", i, m.Bias, intercepts[i])
		}
	}
	// After decay, recommendations should pick the true best arm. At x=10:
	// arm0=70, arm1=80, arm2=210 ⇒ arm 0. At x=100: 610/350/300 ⇒ arm 2.
	dLow, _ := b.Recommend([]float64{10})
	dHigh, _ := b.Recommend([]float64{100})
	if dLow.Explored || dHigh.Explored {
		t.Skip("rare residual exploration draw; behaviour covered below")
	}
	if dLow.Arm != 0 {
		t.Fatalf("at x=10 recommended arm %d, want 0", dLow.Arm)
	}
	if dHigh.Arm != 2 {
		t.Fatalf("at x=100 recommended arm %d, want 2", dHigh.Arm)
	}
}

func TestBatchRefitMatchesRLS(t *testing.T) {
	// The paper-literal batch refit and the RLS path must agree.
	mk := func(batch bool) *Bandit {
		b, err := New(testHW(), 1, Options{Seed: 5, BatchRefit: batch})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	online, batch := mk(false), mk(true)
	r := rng.New(11)
	for i := 0; i < 60; i++ {
		x := []float64{r.Uniform(0, 50)}
		armIdx := i % 3
		rt := 2*x[0] + 5 + r.Normal(0, 0.1)
		if err := online.Observe(armIdx, x, rt); err != nil {
			t.Fatal(err)
		}
		if err := batch.Observe(armIdx, x, rt); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		mo, _ := online.Model(i)
		mb, _ := batch.Model(i)
		if math.Abs(mo.Weights[0]-mb.Weights[0]) > 1e-3 || math.Abs(mo.Bias-mb.Bias) > 1e-2 {
			t.Fatalf("arm %d: online %+v vs batch %+v", i, mo, mb)
		}
	}
}

func TestTolerantSelectExact(t *testing.T) {
	hw := testHW() // H0 cost 6, H1 cost 9, H2 cost 8
	// No tolerance: strict argmin.
	if got := TolerantSelect([]float64{30, 10, 20}, hw, 0, 0); got != 1 {
		t.Fatalf("strict argmin = %d, want 1", got)
	}
	// Seconds tolerance: H0 (cost 6) within 10+15 ⇒ most efficient wins.
	if got := TolerantSelect([]float64{22, 10, 20}, hw, 0, 15); got != 0 {
		t.Fatalf("tolerant pick = %d, want 0", got)
	}
	// Ratio tolerance: limit = 1.5·10 = 15; only H1 qualifies.
	if got := TolerantSelect([]float64{30, 10, 16}, hw, 0.5, 0); got != 1 {
		t.Fatalf("ratio pick = %d, want 1", got)
	}
	// Ratio tolerance admitting H2 (pred 14 ≤ 15): H2 cost 8 < H1 cost 9.
	if got := TolerantSelect([]float64{30, 10, 14}, hw, 0.5, 0); got != 2 {
		t.Fatalf("ratio pick = %d, want 2", got)
	}
}

func TestTolerantSelectNaN(t *testing.T) {
	hw := testHW()
	if got := TolerantSelect([]float64{math.NaN(), 5, 4}, hw, 0, 0); got != 2 {
		t.Fatalf("NaN handling pick = %d, want 2", got)
	}
	all := []float64{math.NaN(), math.Inf(1), math.NaN()}
	if got := TolerantSelect(all, hw, 0, 0); got != 0 {
		t.Fatalf("all-NaN pick = %d, want fallback 0", got)
	}
}

func TestTolerantSelectNegativePredictions(t *testing.T) {
	hw := testHW()
	// Negative fastest prediction with a ratio shrinks the envelope below
	// itself; the fastest arm must still be returned.
	got := TolerantSelect([]float64{-100, 50, 60}, hw, 0.5, 0)
	if got != 0 {
		t.Fatalf("negative-pred pick = %d, want 0", got)
	}
}

func TestTolerantSelectEnvelopeInvariant(t *testing.T) {
	// Property: the selected arm's prediction never exceeds
	// (1+tr)·min + ts when the envelope is non-degenerate, and the
	// selection is always a valid index.
	hw := hardware.MatMulDefault()
	check := func(seed uint64, trRaw, tsRaw uint8) bool {
		r := rng.New(seed)
		preds := make([]float64, len(hw))
		for i := range preds {
			preds[i] = r.Uniform(0, 1000)
		}
		tr := float64(trRaw%50) / 100
		ts := float64(tsRaw % 100)
		sel := TolerantSelect(preds, hw, tr, ts)
		if sel < 0 || sel >= len(hw) {
			return false
		}
		minPred := preds[0]
		for _, p := range preds {
			if p < minPred {
				minPred = p
			}
		}
		return preds[sel] <= (1+tr)*minPred+ts+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTolerantSelectPrefersEfficientUnderTolerance(t *testing.T) {
	// With an enormous tolerance every arm qualifies, so the selection
	// must be the globally most efficient arm.
	hw := hardware.MatMulDefault()
	preds := []float64{500, 400, 300, 200, 100}
	got := TolerantSelect(preds, hw, 0, 1e9)
	want := hw.MostEfficient(nil)
	if got != want {
		t.Fatalf("huge tolerance pick = %d, want %d", got, want)
	}
}

func TestExplorationFraction(t *testing.T) {
	// With ε fixed at 1 (alpha=1), every decision must explore; arms
	// should be near-uniformly distributed.
	b, err := New(testHW(), 1, Options{Alpha: 1, Epsilon0: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		d, err := b.Recommend([]float64{1})
		if err != nil {
			t.Fatal(err)
		}
		if !d.Explored {
			t.Fatal("ε=1 decision did not explore")
		}
		counts[d.Arm]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("arm %d explored %d/3000 times, want ~1000", i, c)
		}
	}
}

func TestStepLoop(t *testing.T) {
	b := newTestBandit(t, 1, Options{Seed: 9})
	d, rt, err := b.Step([]float64{5}, func(arm int) float64 { return float64(arm + 1) })
	if err != nil {
		t.Fatal(err)
	}
	if rt != float64(d.Arm+1) {
		t.Fatalf("Step runtime = %v for arm %d", rt, d.Arm)
	}
	if b.Round() != 1 {
		t.Fatal("Step did not advance the round")
	}
}

func TestSaveLoadState(t *testing.T) {
	b := newTestBandit(t, 2, Options{Seed: 21, ToleranceSeconds: 20})
	r := rng.New(2)
	for i := 0; i < 50; i++ {
		x := []float64{r.Uniform(0, 10), r.Uniform(0, 10)}
		d, err := b.Recommend(x)
		if err != nil {
			t.Fatal(err)
		}
		_ = b.Observe(d.Arm, x, 3*x[0]+2*x[1]+float64(d.Arm)*5)
	}
	var buf bytes.Buffer
	if err := b.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Round() != b.Round() || math.Abs(back.Epsilon()-b.Epsilon()) > 1e-15 {
		t.Fatal("round/epsilon not restored")
	}
	x := []float64{4, 6}
	origPreds, _ := b.PredictAll(x)
	backPreds, _ := back.PredictAll(x)
	for i := range origPreds {
		if math.Abs(origPreds[i]-backPreds[i]) > 1e-9 {
			t.Fatalf("arm %d prediction drifted after restore: %v vs %v",
				i, origPreds[i], backPreds[i])
		}
	}
	// Restored bandit must continue learning.
	if err := back.Observe(0, x, 25); err != nil {
		t.Fatal(err)
	}
}

func TestLoadStateErrors(t *testing.T) {
	if _, err := LoadState(strings.NewReader("{")); err == nil {
		t.Fatal("truncated json should fail")
	}
	if _, err := LoadState(strings.NewReader(`{"version":99}`)); err == nil {
		t.Fatal("wrong version should fail")
	}
	if _, err := LoadState(strings.NewReader(`{"version":1,"hardware":[{"Name":"H0","CPUs":1,"MemoryGB":1}],"dim":1,"arms":[],"models":[]}`)); err == nil {
		t.Fatal("arm/hardware count mismatch should fail")
	}
}

func TestDecisionPredictionsAreCopies(t *testing.T) {
	b := newTestBandit(t, 1, Options{ZeroEpsilon: true})
	d, err := b.Recommend([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	d.Predicted[0] = 999
	preds, _ := b.PredictAll([]float64{1})
	if preds[0] == 999 {
		t.Fatal("Decision shares prediction storage with the bandit")
	}
}
