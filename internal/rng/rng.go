// Package rng provides deterministic, splittable pseudo-random number
// generation for reproducible experiments.
//
// Every experiment in this repository is seeded explicitly, and independent
// simulation replicas derive their own statistically-independent streams via
// Split, so results are bit-for-bit reproducible regardless of goroutine
// scheduling.
//
// The generator is xoshiro256** (Blackman & Vigna) seeded through SplitMix64,
// the construction recommended by its authors. It is not cryptographically
// secure; it is a simulation generator.
package rng

import "math"

// Source is a deterministic pseudo-random source. It is NOT safe for
// concurrent use; derive one Source per goroutine with Split.
type Source struct {
	s [4]uint64

	// spare state for the Marsaglia polar normal method.
	hasSpare bool
	spare    float64
}

// New returns a Source seeded from the given seed. Distinct seeds yield
// statistically independent streams.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed re-initialises the source in place from seed.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	// xoshiro must not start in the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
}

// splitmix64 advances a SplitMix64 state and returns (nextState, output).
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return state, z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Split derives a new Source whose stream is statistically independent of
// the parent's continued stream. The parent advances by one draw.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation would be faster; the
	// simple modulo of a 64-bit draw has bias < 2^-32 for any n that fits in
	// an int, which is negligible for simulation purposes.
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a draw from the normal distribution with the given mean and
// standard deviation, using the Marsaglia polar method.
func (r *Source) Normal(mean, std float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mean + std*r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			m := math.Sqrt(-2 * math.Log(s) / s)
			r.spare = v * m
			r.hasSpare = true
			return mean + std*u*m
		}
	}
}

// Exp returns a draw from the exponential distribution with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	// -log(1-U) avoids log(0) since Float64 never returns 1.
	return -math.Log(1-r.Float64()) / rate
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher–Yates).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes the first n elements using the provided
// swap function (Fisher–Yates).
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k indices drawn without replacement from [0, n).
// It panics if k > n or k < 0.
func (r *Source) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample k out of range")
	}
	p := r.Perm(n)
	return p[:k]
}

// Bernoulli returns true with probability p.
func (r *Source) Bernoulli(p float64) bool {
	return r.Float64() < p
}
