package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDistinctSeeds(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child's stream must differ from the parent's continued stream.
	equal := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			equal++
		}
	}
	if equal > 0 {
		t.Fatalf("child stream collided with parent %d/100 times", equal)
	}
}

func TestSplitDeterminism(t *testing.T) {
	c1 := New(9).Split()
	c2 := New(9).Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8500 || c > 11500 {
			t.Fatalf("Intn(7) bucket %d has count %d, want ~10000", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("normal std = %v, want ~3", math.Sqrt(variance))
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(2)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("exp mean = %v, want ~0.5", mean)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		p := New(seed).Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSample(t *testing.T) {
	r := New(23)
	s := r.Sample(10, 4)
	if len(s) != 4 {
		t.Fatalf("Sample(10,4) returned %d items", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Sample produced invalid or duplicate index %d", v)
		}
		seen[v] = true
	}
}

func TestSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3,4) did not panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestUniformRange(t *testing.T) {
	r := New(29)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(-5, 5)
		if v < -5 || v >= 5 {
			t.Fatalf("Uniform(-5,5) = %v out of range", v)
		}
	}
}

func TestBernoulli(t *testing.T) {
	r := New(31)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", p)
	}
}

func TestShuffle(t *testing.T) {
	r := New(37)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, 10)
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("Shuffle duplicated element %d", v)
		}
		seen[v] = true
	}
}

func TestZeroStateRecovery(t *testing.T) {
	// Seeds that would map to the all-zero xoshiro state must be rescued.
	// (No 64-bit seed actually does under SplitMix64, but Reseed guards it;
	// exercise the guard by checking any seed still produces output.)
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("generator stuck at zero")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Normal(0, 1)
	}
	_ = sink
}
