package loadgen

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// ReportFormat and ReportVersion identify the bwload report schema.
// Consumers (CI validation, later perf-comparison tooling) key on
// these fields; bump the version on any incompatible shape change and
// teach Validate both.
const (
	ReportFormat  = "banditware-bwload-report"
	ReportVersion = 1
)

// Report is the stable JSON document bwload emits: environment, trace
// configuration, and one Result per (target, mode) run. The checked-in
// BENCH_serve_baseline.json is exactly this document from a pinned-seed
// run.
type Report struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	// Date is the RFC3339 day the report was recorded (informational).
	Date      string `json:"date,omitempty"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// Trace echoes the generation config so a reader can regenerate the
	// identical trace.
	Trace   TraceConfig `json:"trace"`
	Results []Result    `json:"results"`
}

// ErrBadReport reports a document that fails report-schema validation.
var ErrBadReport = errors.New("loadgen: bad report")

// Validate checks the report's structural invariants: format/version
// markers, at least one result, positive counts and throughput, and
// monotone latency quantiles. It does not fail on recorded errors —
// whether errors are acceptable is the caller's policy (bwload -quick
// treats any as fatal).
func (r *Report) Validate() error {
	if r.Format != ReportFormat {
		return fmt.Errorf("%w: format %q, want %q", ErrBadReport, r.Format, ReportFormat)
	}
	if r.Version != ReportVersion {
		return fmt.Errorf("%w: version %d, want %d", ErrBadReport, r.Version, ReportVersion)
	}
	if r.GoVersion == "" || r.GOOS == "" || r.GOARCH == "" || r.NumCPU < 1 {
		return fmt.Errorf("%w: missing environment fields", ErrBadReport)
	}
	if len(r.Results) == 0 {
		return fmt.Errorf("%w: no results", ErrBadReport)
	}
	for i := range r.Results {
		if err := r.Results[i].validate(); err != nil {
			return fmt.Errorf("%w: result %d (%s/%s): %v", ErrBadReport, i, r.Results[i].Target, r.Results[i].Mode, err)
		}
	}
	return nil
}

func (res *Result) validate() error {
	if res.Target == "" {
		return errors.New("missing target")
	}
	if res.Mode != string(ModeClosed) && res.Mode != string(ModeOpen) {
		return fmt.Errorf("unknown mode %q", res.Mode)
	}
	if res.Failed != "" {
		// A failed partial result records configuration only; the
		// measurement invariants below do not apply to it.
		return nil
	}
	if res.Requests == 0 {
		return errors.New("zero requests")
	}
	if res.Churn && res.ChurnEvents == 0 {
		return errors.New("churn run applied zero lifecycle transitions")
	}
	if !res.Churn && res.ChurnEvents != 0 {
		return fmt.Errorf("non-churn run records %d churn events", res.ChurnEvents)
	}
	if res.Requests != res.Recommends+res.Observes {
		return fmt.Errorf("requests %d != recommends %d + observes %d", res.Requests, res.Recommends, res.Observes)
	}
	if res.ElapsedSeconds <= 0 || res.ThroughputRPS <= 0 {
		return errors.New("non-positive elapsed/throughput")
	}
	if res.Recommend.Count == 0 {
		return errors.New("empty recommend latency summary")
	}
	for _, s := range []LatencySummary{res.Recommend, res.Observe} {
		if s.Count == 0 {
			continue
		}
		if !(s.P50US > 0) {
			return errors.New("non-positive p50")
		}
		if s.P50US > s.P90US || s.P90US > s.P99US || s.P99US > s.P999US || s.P999US > s.MaxUS {
			return fmt.Errorf("non-monotone quantiles p50=%g p90=%g p99=%g p999=%g max=%g",
				s.P50US, s.P90US, s.P99US, s.P999US, s.MaxUS)
		}
	}
	return nil
}

// TotalErrors sums recorded errors across results.
func (r *Report) TotalErrors() uint64 {
	var n uint64
	for i := range r.Results {
		n += r.Results[i].Errors
	}
	return n
}

// ParseReport strictly decodes and validates a report document:
// unknown fields are rejected, so drift between a writer and this
// schema fails loudly.
func ParseReport(data []byte) (*Report, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadReport, err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// ReadReport loads and validates a report file.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseReport(data)
}

// EncodeJSON serialises the report with stable indentation for
// check-in and diffing.
func (r *Report) EncodeJSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
