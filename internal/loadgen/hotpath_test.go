package loadgen

import (
	"testing"
)

func TestRunClosedLoopHotPath(t *testing.T) {
	tr := smokeTrace(t, 0)
	tgt := NewHotPath(0)
	defer tgt.Close()
	res, err := Run(tgt, tr, RunOptions{Mode: ModeClosed, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, "hotpath")
	stats := tgt.Service.Stats()
	if stats.TotalIssued != 400 {
		t.Errorf("service issued tickets = %d, want 400", stats.TotalIssued)
	}
}

func TestRunClosedLoopHotPathAsync(t *testing.T) {
	tr := smokeTrace(t, 0)
	tgt := NewHotPath(1024)
	defer tgt.Close()
	res, err := Run(tgt, tr, RunOptions{Mode: ModeClosed, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, "hotpath")
	tgt.Service.FlushObserves()
	stats := tgt.Service.Stats()
	if stats.AsyncPending != 0 {
		t.Errorf("async pending = %d after flush", stats.AsyncPending)
	}
	if stats.AsyncErrors != 0 {
		t.Errorf("async errors = %d, want 0", stats.AsyncErrors)
	}
}

func TestRunRawVectorsHotPath(t *testing.T) {
	tr := smokeTrace(t, 0)
	tgt := NewHotPath(0)
	defer tgt.Close()
	res, err := Run(tgt, tr, RunOptions{Mode: ModeClosed, Concurrency: 2, Raw: true})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, "hotpath")
}
