package loadgen

import (
	"strings"
	"testing"
)

// TestRunChurnInProc: the drill adds, drains, and retires the churn arm
// on every stream mid-run, the run completes without errors, and the
// result records the full transition count.
func TestRunChurnInProc(t *testing.T) {
	tr := smokeTrace(t, 0)
	tgt := NewInProc()
	defer tgt.Close()
	res, err := Run(tgt, tr, RunOptions{Mode: ModeClosed, Concurrency: 4, Churn: true})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, "inproc")
	if !res.Churn {
		t.Error("result does not record churn mode")
	}
	// add + drain + retire on each of the trace's 8 streams.
	if want := uint64(3 * len(tr.Streams)); res.ChurnEvents != want {
		t.Errorf("churn events = %d, want %d", res.ChurnEvents, want)
	}
	// The drill is add-then-retire: every stream ends on its original set.
	for i := range tr.Streams {
		arms, err := tgt.Service.Arms(tr.Streams[i].Name)
		if err != nil {
			t.Fatal(err)
		}
		if len(arms) != len(tr.Hardware) {
			t.Fatalf("stream %s has %d arms after the drill, want the original %d", tr.Streams[i].Name, len(arms), len(tr.Hardware))
		}
		for _, a := range arms {
			if a.Hardware == "churn(8,64)" {
				t.Fatalf("stream %s still carries the churn arm", tr.Streams[i].Name)
			}
		}
	}
}

// TestRunChurnHTTP: the same drill over the wire, through the arm
// lifecycle routes.
func TestRunChurnHTTP(t *testing.T) {
	tr := smokeTrace(t, 0)
	tgt, err := NewSelfHTTP()
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	res, err := Run(tgt, tr, RunOptions{Mode: ModeClosed, Concurrency: 4, Churn: true})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, "http")
	if !res.Churn || res.ChurnEvents != uint64(3*len(tr.Streams)) {
		t.Errorf("churn marker/events = %v/%d, want true/%d", res.Churn, res.ChurnEvents, 3*len(tr.Streams))
	}
}

// TestRunChurnIncompleteFails: a duration cap that cuts the trace
// before the retire threshold is a run error, not a silent pass — the
// report would otherwise describe a drill that never finished.
func TestRunChurnIncompleteFails(t *testing.T) {
	tr := smokeTrace(t, 0)
	tgt := NewInProc()
	defer tgt.Close()
	_, err := Run(tgt, tr, RunOptions{Mode: ModeClosed, Concurrency: 2, Duration: 1, Churn: true})
	if err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("err = %v, want churn-incomplete failure", err)
	}
}

// TestRunChurnUnsupportedTarget: a target without the ArmChurner
// extension yields a schema-valid failed partial result.
func TestRunChurnUnsupportedTarget(t *testing.T) {
	tr := smokeTrace(t, 0)
	res, err := Run(plainTarget{t: NewInProc()}, tr, RunOptions{Mode: ModeClosed, Churn: true})
	if err == nil {
		t.Fatal("churn against a churn-less target should fail")
	}
	if res == nil || res.Failed == "" || !res.Churn {
		t.Fatalf("partial result = %+v, want Failed and Churn set", res)
	}
}

// plainTarget strips the ArmChurner extension off InProc (explicit
// delegation, not embedding, so the churner methods are not promoted).
type plainTarget struct{ t *InProc }

func (p plainTarget) Name() string { return p.t.Name() }
func (p plainTarget) Setup(tr *Trace) error {
	return p.t.Setup(tr)
}
func (p plainTarget) Recommend(stream string, op *Op, tr *Trace) (Decision, error) {
	return p.t.Recommend(stream, op, tr)
}
func (p plainTarget) RecommendRaw(stream string, op *Op) (Decision, error) {
	return p.t.RecommendRaw(stream, op)
}
func (p plainTarget) Observe(ticket string, runtime float64) error {
	return p.t.Observe(ticket, runtime)
}
func (p plainTarget) Close() error { return p.t.Close() }
