package loadgen

import (
	"testing"
)

// TestFleetTargetChaosRun drives a small trace through the fleet
// target with the chaos drill enabled: the run must complete, the
// drill must reach both of its thresholds (Close errors otherwise),
// and the error count must stay inside the failover-window bound.
func TestFleetTargetChaosRun(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 3-replica fleet over loopback")
	}
	tr, err := Generate(TraceConfig{
		Seed:         3,
		App:          "cycles",
		Streams:      8,
		Requests:     300,
		ZipfSkew:     1.1,
		ObserveRatio: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := NewFleet(FleetConfig{Chaos: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tgt, tr, RunOptions{Mode: ModeClosed, Concurrency: 4})
	if cerr := tgt.Close(); cerr != nil {
		t.Fatalf("fleet close: %v", cerr)
	}
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Target != "fleet" {
		t.Fatalf("target name = %q", res.Target)
	}
	if max := uint64(len(tr.Ops)) / 10; res.Errors > max {
		t.Fatalf("%d of %d ops errored in the failover window, tolerate at most %d",
			res.Errors, len(tr.Ops), max)
	}
}

func TestFleetTargetChaosNeedsPeers(t *testing.T) {
	if _, err := NewFleet(FleetConfig{Replicas: 1, Chaos: true}); err == nil {
		t.Fatal("chaos drill with a single replica must be rejected")
	}
}
