package loadgen

import (
	"fmt"
	"sync"

	"banditware/internal/schema"
	"banditware/internal/serve"
)

// HotPath targets the zero-allocation serving API of an in-process
// Service: RecommendInto / RecommendCtxInto with pooled caller-owned
// tickets, pooled named-context maps, and seq-keyed observes that skip
// ticket-ID rendering entirely. Comparing it against the "inproc"
// target prices exactly what the classic convenience API costs per
// request (fresh Ticket, ID string, per-call context map).
type HotPath struct {
	Service *serve.Service
	// tickets holds *serve.Ticket values workers borrow for the duration
	// of one recommend; the Predicted backing array survives recycling.
	tickets sync.Pool
	// ctxs holds *schema.Context values with reusable Numeric maps,
	// cleared and refilled per request.
	ctxs sync.Pool
}

// NewHotPath builds a hot-path target around a fresh Service.
// observeQueue > 0 enables the async observe queue (model updates
// applied by the background drainer); 0 keeps observes synchronous.
func NewHotPath(observeQueue int) *HotPath {
	t := &HotPath{
		Service: serve.NewService(serve.ServiceOptions{ObserveQueue: observeQueue}),
	}
	t.tickets.New = func() any { return new(serve.Ticket) }
	t.ctxs.New = func() any {
		return &schema.Context{Numeric: make(map[string]float64, 16)}
	}
	return t
}

func (t *HotPath) Name() string { return "hotpath" }

func (t *HotPath) Setup(tr *Trace) error {
	for i, s := range tr.Streams {
		cfg := serve.StreamConfig{
			Hardware: tr.Hardware,
			Schema:   tr.Schema.Clone(),
			Options:  streamOptions(tr.Config.Seed, i),
		}
		if err := t.Service.CreateStream(s.Name, cfg); err != nil {
			return fmt.Errorf("loadgen: create stream %s: %w", s.Name, err)
		}
	}
	return nil
}

func (t *HotPath) Recommend(stream string, op *Op, tr *Trace) (Decision, error) {
	ctx := t.ctxs.Get().(*schema.Context)
	clear(ctx.Numeric)
	for i, n := range tr.FeatureNames {
		ctx.Numeric[n] = op.Features[i]
	}
	tk := t.tickets.Get().(*serve.Ticket)
	err := t.Service.RecommendCtxInto(stream, *ctx, tk)
	d := Decision{Stream: stream, Arm: tk.Arm, Seq: tk.Seq}
	t.tickets.Put(tk)
	t.ctxs.Put(ctx)
	if err != nil {
		return Decision{}, err
	}
	return d, nil
}

func (t *HotPath) RecommendRaw(stream string, op *Op) (Decision, error) {
	tk := t.tickets.Get().(*serve.Ticket)
	err := t.Service.RecommendInto(stream, op.Features, tk)
	d := Decision{Stream: stream, Arm: tk.Arm, Seq: tk.Seq}
	t.tickets.Put(tk)
	if err != nil {
		return Decision{}, err
	}
	return d, nil
}

// Observe satisfies the Target interface for tickets that do carry an
// ID (none issued by this target do); the driver routes this target's
// observes through ObserveSeq.
func (t *HotPath) Observe(ticket string, runtime float64) error {
	return t.Service.Observe(ticket, runtime)
}

// ObserveSeq redeems a ticket by (stream, seq) — the allocation-free
// observe the driver prefers when a decision carries no ID string.
func (t *HotPath) ObserveSeq(stream string, seq uint64, runtime float64) error {
	return t.Service.ObserveSeq(stream, seq, runtime)
}

// Close stops the async observe drainer (when enabled) after a flush.
func (t *HotPath) Close() error { return t.Service.Close() }
