package loadgen

import (
	"bytes"
	"math"
	"testing"
)

// TestTraceDeterminism: same config, same bytes. The whole perf
// trajectory depends on this — two runs of bwload with the same seed
// must replay the identical trace.
func TestTraceDeterminism(t *testing.T) {
	cfg := TraceConfig{Seed: 42, App: "cycles", Streams: 32, Requests: 2000, ZipfSkew: 1.1, ObserveRatio: 0.5, QPS: 500}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	aj, err := a.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("same seed produced different traces (%d vs %d bytes)", len(aj), len(bj))
	}

	// A different seed must actually change the trace.
	cfg.Seed = 43
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cj, _ := c.EncodeJSON()
	if bytes.Equal(aj, cj) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestTraceShape pins the structural invariants every downstream
// consumer assumes.
func TestTraceShape(t *testing.T) {
	cfg := TraceConfig{Seed: 7, App: "cycles", Streams: 16, Requests: 3000, ZipfSkew: 1.2, ObserveRatio: 0.4, QPS: 1000}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Streams) != 16 || len(tr.Ops) != 3000 {
		t.Fatalf("got %d streams, %d ops", len(tr.Streams), len(tr.Ops))
	}
	if tr.Schema == nil || len(tr.Schema.Fields) != len(tr.FeatureNames) {
		t.Fatal("schema does not mirror the feature names")
	}
	observes := 0
	lastAt := int64(-1)
	for i := range tr.Ops {
		op := &tr.Ops[i]
		if op.Stream < 0 || op.Stream >= len(tr.Streams) {
			t.Fatalf("op %d references stream %d of %d", i, op.Stream, len(tr.Streams))
		}
		if len(op.Features) != len(tr.FeatureNames) {
			t.Fatalf("op %d has %d features, want %d", i, len(op.Features), len(tr.FeatureNames))
		}
		if op.Observe {
			observes++
			if len(op.Runtimes) != len(tr.Hardware) {
				t.Fatalf("op %d has %d runtimes, want one per arm (%d)", i, len(op.Runtimes), len(tr.Hardware))
			}
			for _, rt := range op.Runtimes {
				if rt <= 0 || math.IsNaN(rt) || math.IsInf(rt, 0) {
					t.Fatalf("op %d has invalid runtime %g", i, rt)
				}
			}
		} else if op.Runtimes != nil {
			t.Fatalf("op %d carries runtimes without observe", i)
		}
		if i > 0 && op.AtNanos < lastAt {
			t.Fatalf("op %d arrival %d before op %d arrival %d", i, op.AtNanos, i-1, lastAt)
		}
		lastAt = op.AtNanos
	}
	// Observe ratio within sampling tolerance of the configured 0.4.
	frac := float64(observes) / float64(len(tr.Ops))
	if math.Abs(frac-0.4) > 0.05 {
		t.Fatalf("observe fraction %.3f, want ~0.4", frac)
	}
}

// TestTraceZipfSkew checks the hot head / long tail split matches the
// configured skew: each stream's empirical share must track its
// analytic Zipf weight, and the head must dominate.
func TestTraceZipfSkew(t *testing.T) {
	const (
		streams  = 50
		requests = 200000
		skew     = 1.1
	)
	tr, err := Generate(TraceConfig{Seed: 5, Streams: streams, Requests: requests, ZipfSkew: skew, ObserveRatio: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	counts := tr.StreamCounts()
	weights := zipfWeights(streams, skew)
	for i, w := range weights {
		got := float64(counts[i]) / requests
		// Binomial std error ~ sqrt(w/n); 5 sigma plus a small floor.
		tol := 5*math.Sqrt(w/requests) + 2e-4
		if math.Abs(got-w) > tol {
			t.Errorf("stream %d share %.5f, want %.5f ± %.5f", i, got, w, tol)
		}
	}
	// The head stream must dwarf the tail: rank 0 over rank 49 should
	// be about 50^1.1 ≈ 74x.
	headTail := float64(counts[0]) / math.Max(1, float64(counts[streams-1]))
	want := math.Pow(streams, skew)
	if headTail < want/2 || headTail > want*2 {
		t.Errorf("head/tail ratio %.1f, want within 2x of %.1f", headTail, want)
	}
}

// TestTraceUniformWhenUnskewed: skew < 0 is rejected, and explicit
// near-zero skew spreads load evenly.
func TestTraceUniformWhenUnskewed(t *testing.T) {
	if _, err := Generate(TraceConfig{Seed: 1, Streams: 4, Requests: 10, ZipfSkew: -1}); err == nil {
		t.Fatal("negative skew should be rejected")
	}
	tr, err := Generate(TraceConfig{Seed: 1, Streams: 10, Requests: 50000, ZipfSkew: 1e-12, ObserveRatio: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range tr.StreamCounts() {
		got := float64(c) / 50000
		if math.Abs(got-0.1) > 0.01 {
			t.Errorf("stream %d share %.4f, want ~0.1", i, got)
		}
	}
}

func TestTraceConfigValidation(t *testing.T) {
	bad := []TraceConfig{
		{Seed: 1, App: "nope"},
		{Seed: 1, Streams: -2},
		{Seed: 1, Requests: -1},
		{Seed: 1, ObserveRatio: 1.5},
		{Seed: 1, QPS: -3},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: want error for %+v", i, cfg)
		}
	}
}

// TestTraceApps: every supported workload generates a servable trace.
func TestTraceApps(t *testing.T) {
	for _, app := range []string{"cycles", "bp3d", "matmul", "llm"} {
		tr, err := Generate(TraceConfig{Seed: 3, App: app, Streams: 4, Requests: 50})
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if len(tr.FeatureNames) == 0 || len(tr.Hardware) == 0 {
			t.Fatalf("%s: empty feature names or hardware", app)
		}
	}
}
