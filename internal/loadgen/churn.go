package loadgen

import (
	"errors"
	"fmt"

	"banditware/internal/hardware"
	"banditware/internal/serve"
)

// Arm-churn drill: exercise the runtime arm-lifecycle path (add →
// drain → retire) inside a measured load run, the way a hardware
// rollout happens on a live fleet. One warm-started configuration is
// added to every stream a quarter of the way through the trace,
// drained at half, and retired at three quarters, so the run prices
// recommendation traffic while the arm set is growing, rerouting, and
// shrinking — including the cache invalidations each transition forces.

// ArmChurner is the optional Target extension for runtime arm-set
// churn. InProc drives the Service API directly; HTTP targets go over
// the wire, and the fleet target inherits the wire path — the router
// broadcasts lifecycle requests to every replica, keeping the fleet's
// arm sets index-aligned for delta merges.
type ArmChurner interface {
	// AddArm grows the stream with one hardware config in "Name=CPUSxMEM"
	// spec form, warm-started per warm ("", cold, pooled, nearest).
	// Returns the new arm's index.
	AddArm(stream, spec, warm string) (int, error)
	// DrainArm moves the arm out of live serving (traffic reroutes).
	DrainArm(stream string, arm int) error
	// RetireArm removes a drained arm entirely.
	RetireArm(stream string, arm int) error
}

func (t *InProc) AddArm(stream, spec, warm string) (int, error) {
	cfg, err := hardware.Parse(spec)
	if err != nil {
		return 0, err
	}
	return t.Service.AddArm(stream, serve.ArmAdd{Hardware: cfg, Warm: warm})
}

func (t *InProc) DrainArm(stream string, arm int) error {
	return t.Service.DrainArm(stream, arm)
}

func (t *InProc) RetireArm(stream string, arm int) error {
	return t.Service.RetireArm(stream, arm)
}

func (t *HTTP) AddArm(stream, spec, warm string) (int, error) {
	body := map[string]any{"hardware_spec": spec}
	if warm != "" {
		body["warm"] = warm
	}
	var out struct {
		Arm int `json:"arm"`
	}
	if err := t.post("/v1/streams/"+stream+"/arms", body, &out); err != nil {
		return 0, err
	}
	return out.Arm, nil
}

func (t *HTTP) DrainArm(stream string, arm int) error {
	return t.post(fmt.Sprintf("/v1/streams/%s/arms/%d/drain", stream, arm), struct{}{}, nil)
}

func (t *HTTP) RetireArm(stream string, arm int) error {
	return t.del(fmt.Sprintf("/v1/streams/%s/arms/%d", stream, arm))
}

func (t *FleetTarget) AddArm(stream, spec, warm string) (int, error) {
	return t.inner.AddArm(stream, spec, warm)
}

func (t *FleetTarget) DrainArm(stream string, arm int) error {
	return t.inner.DrainArm(stream, arm)
}

func (t *FleetTarget) RetireArm(stream string, arm int) error {
	return t.inner.RetireArm(stream, arm)
}

// churnSpec is the configuration the drill rolls out. The name must not
// collide with any workload family's hardware set (those are H0..Hn /
// family-specific names), and the arm is appended last and retired
// last, so the trace's pre-sampled per-arm runtimes keep their indices
// through the whole drill.
const (
	churnSpec = "churn=8x64"
	churnWarm = "pooled"
)

// churnRun schedules the drill over one replay: thresholds are op
// indices, ticked by the single dispatcher goroutine, so transitions
// land at deterministic points in the trace (the requests in flight
// around each transition overlap it, exactly like a production
// rollout).
type churnRun struct {
	target     ArmChurner
	tr         *Trace
	addAt      int
	drainAt    int
	retireAt   int
	dispatched int
	arm        map[string]int // stream → index of the drill's arm
	events     uint64         // applied lifecycle transitions
	err        error
}

func newChurnRun(tgt Target, tr *Trace) (*churnRun, error) {
	c, ok := tgt.(ArmChurner)
	if !ok {
		return nil, fmt.Errorf("loadgen: target %s does not support arm churn", tgt.Name())
	}
	total := len(tr.Ops)
	if total < 8 {
		return nil, fmt.Errorf("loadgen: churn drill needs at least 8 ops, trace has %d", total)
	}
	return &churnRun{
		target:   c,
		tr:       tr,
		addAt:    total / 4,
		drainAt:  total / 2,
		retireAt: 3 * total / 4,
		arm:      make(map[string]int),
	}, nil
}

// tick advances the drill by one dispatched op. Called only from the
// dispatcher goroutine, so the state needs no locking; the lifecycle
// requests themselves hit targets that are safe for concurrent use.
func (c *churnRun) tick() {
	n := c.dispatched
	c.dispatched++
	switch n {
	case c.addAt:
		for i := range c.tr.Streams {
			name := c.tr.Streams[i].Name
			idx, err := c.target.AddArm(name, churnSpec, churnWarm)
			if err != nil {
				c.fail(fmt.Errorf("loadgen: churn add on %s: %w", name, err))
				continue
			}
			c.arm[name] = idx
			c.events++
		}
	case c.drainAt:
		c.transition("drain", c.target.DrainArm)
	case c.retireAt:
		c.transition("retire", c.target.RetireArm)
	}
}

func (c *churnRun) transition(verb string, apply func(string, int) error) {
	for name, idx := range c.arm {
		if err := apply(name, idx); err != nil {
			c.fail(fmt.Errorf("loadgen: churn %s on %s: %w", verb, name, err))
			continue
		}
		c.events++
	}
}

func (c *churnRun) fail(err error) {
	c.err = errors.Join(c.err, err)
}

// finish reports whether the drill actually ran to completion. A run
// cut short (duration cap hit before the retire threshold) would
// otherwise silently describe a drill that never happened — the same
// contract the chaos drill enforces.
func (c *churnRun) finish() error {
	err := c.err
	if c.dispatched <= c.retireAt {
		err = errors.Join(err, fmt.Errorf("loadgen: churn drill incomplete: %d of %d ops dispatched (retire threshold %d)",
			c.dispatched, len(c.tr.Ops), c.retireAt))
	}
	return err
}
