package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"banditware/internal/core"
	"banditware/internal/serve"
)

// Decision is the part of a recommendation a load-generator worker
// needs to continue the session: the ticket to redeem and the arm whose
// pre-sampled runtime to report. Hot-path targets leave Ticket empty
// and identify the ticket by (Stream, Seq) instead — the driver then
// redeems through the target's SeqObserver.
type Decision struct {
	Ticket string
	Arm    int
	Stream string
	Seq    uint64
}

// SeqObserver is implemented by targets whose decisions carry a
// (stream, seq) ticket identity instead of an ID string; the driver
// prefers it whenever Decision.Ticket is empty.
type SeqObserver interface {
	ObserveSeq(stream string, seq uint64, runtime float64) error
}

// Target abstracts the system under test. Implementations must be safe
// for concurrent use by many workers.
type Target interface {
	// Name identifies the target in reports ("inproc", "http").
	Name() string
	// Setup creates the trace's stream population on the target.
	Setup(tr *Trace) error
	// Recommend issues one recommendation for a named context (the
	// schema'd serving path).
	Recommend(stream string, op *Op, tr *Trace) (Decision, error)
	// RecommendRaw issues one recommendation for a raw feature vector.
	RecommendRaw(stream string, op *Op) (Decision, error)
	// Observe redeems a ticket with a measured runtime.
	Observe(ticket string, runtime float64) error
	// Close releases any resources (sockets, servers).
	Close() error
}

// streamOptions derives the per-stream engine options: a deterministic
// per-stream seed so replays are reproducible, everything else the
// Algorithm 1 defaults.
func streamOptions(traceSeed uint64, streamIdx int) core.Options {
	return core.Options{Seed: traceSeed + uint64(streamIdx)*2654435761 + 1}
}

// InProc targets a banditware Service in the same process — the
// serving layer with zero transport cost, isolating engine + registry +
// ledger latency.
type InProc struct {
	Service *serve.Service
}

// NewInProc builds an in-process target around a fresh Service.
func NewInProc() *InProc {
	return &InProc{Service: serve.NewService(serve.ServiceOptions{})}
}

func (t *InProc) Name() string { return "inproc" }

func (t *InProc) Setup(tr *Trace) error {
	for i, s := range tr.Streams {
		cfg := serve.StreamConfig{
			Hardware: tr.Hardware,
			Schema:   tr.Schema.Clone(),
			Options:  streamOptions(tr.Config.Seed, i),
		}
		if err := t.Service.CreateStream(s.Name, cfg); err != nil {
			return fmt.Errorf("loadgen: create stream %s: %w", s.Name, err)
		}
	}
	return nil
}

func (t *InProc) Recommend(stream string, op *Op, tr *Trace) (Decision, error) {
	tk, err := t.Service.RecommendCtx(stream, tr.Context(op))
	if err != nil {
		return Decision{}, err
	}
	return Decision{Ticket: tk.ID, Arm: tk.Arm}, nil
}

func (t *InProc) RecommendRaw(stream string, op *Op) (Decision, error) {
	tk, err := t.Service.Recommend(stream, op.Features)
	if err != nil {
		return Decision{}, err
	}
	return Decision{Ticket: tk.ID, Arm: tk.Arm}, nil
}

func (t *InProc) Observe(ticket string, runtime float64) error {
	return t.Service.Observe(ticket, runtime)
}

func (t *InProc) Close() error { return nil }

// HTTP targets a serving front-end over a real socket, measuring the
// full request path: JSON encode, TCP, handler dispatch, schema decode,
// engine, JSON response.
type HTTP struct {
	base   string
	client *http.Client
	// server is non-nil when this target owns the listener (self-hosted
	// mode) and must shut it down on Close.
	server *http.Server
	ln     net.Listener
}

// NewHTTP targets an already-running serving front-end at base
// (e.g. "http://127.0.0.1:8080"). Setup creates the trace's streams
// over the API, so the server must be empty of conflicting streams.
func NewHTTP(base string) *HTTP {
	return &HTTP{base: base, client: newLoadClient()}
}

// NewSelfHTTP starts a hardened HTTP server over a fresh in-process
// Service on a real loopback socket and targets it — the standard way
// to measure the HTTP path without an external process.
func NewSelfHTTP() (*HTTP, error) {
	svc := serve.NewService(serve.ServiceOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	server := serve.NewServer(serve.NewHandler(svc))
	go server.Serve(ln)
	return &HTTP{
		base:   "http://" + ln.Addr().String(),
		client: newLoadClient(),
		server: server,
		ln:     ln,
	}, nil
}

// newLoadClient builds an http.Client tuned for load generation:
// generous per-host connection pool so keep-alive sockets, not the
// client, set the concurrency ceiling.
func newLoadClient() *http.Client {
	tr := &http.Transport{
		MaxIdleConns:        1024,
		MaxIdleConnsPerHost: 1024,
		IdleConnTimeout:     90 * time.Second,
	}
	return &http.Client{Transport: tr, Timeout: 30 * time.Second}
}

func (t *HTTP) Name() string { return "http" }

func (t *HTTP) Setup(tr *Trace) error {
	for i, s := range tr.Streams {
		opts := streamOptions(tr.Config.Seed, i)
		body := map[string]any{
			"name":     s.Name,
			"hardware": hardwareWire(tr),
			"schema":   tr.Schema,
			"seed":     opts.Seed,
		}
		if err := t.post("/v1/streams", body, nil); err != nil {
			return fmt.Errorf("loadgen: create stream %s: %w", s.Name, err)
		}
	}
	return nil
}

// hardwareWire renders the trace's hardware set in the create route's
// structured form.
func hardwareWire(tr *Trace) []map[string]any {
	out := make([]map[string]any, len(tr.Hardware))
	for i, h := range tr.Hardware {
		out[i] = map[string]any{
			"name":      h.Name,
			"cpus":      h.CPUs,
			"memory_gb": h.MemoryGB,
			"gpus":      h.GPUs,
		}
	}
	return out
}

// recommendBody is the reusable wire form of one recommend request.
type recommendBody struct {
	Features []float64          `json:"features,omitempty"`
	Context  map[string]float64 `json:"context,omitempty"`
}

// ticketWire is the slice of the ticket response the driver needs.
type ticketWire struct {
	ID  string `json:"id"`
	Arm int    `json:"arm"`
}

func (t *HTTP) Recommend(stream string, op *Op, tr *Trace) (Decision, error) {
	ctx := make(map[string]float64, len(tr.FeatureNames))
	for i, n := range tr.FeatureNames {
		ctx[n] = op.Features[i]
	}
	var tk ticketWire
	if err := t.post("/v1/streams/"+stream+"/recommend", recommendBody{Context: ctx}, &tk); err != nil {
		return Decision{}, err
	}
	return Decision{Ticket: tk.ID, Arm: tk.Arm}, nil
}

func (t *HTTP) RecommendRaw(stream string, op *Op) (Decision, error) {
	var tk ticketWire
	if err := t.post("/v1/streams/"+stream+"/recommend", recommendBody{Features: op.Features}, &tk); err != nil {
		return Decision{}, err
	}
	return Decision{Ticket: tk.ID, Arm: tk.Arm}, nil
}

type observeBody struct {
	Ticket  string  `json:"ticket"`
	Runtime float64 `json:"runtime"`
}

func (t *HTTP) Observe(ticket string, runtime float64) error {
	return t.post("/v1/observe", observeBody{Ticket: ticket, Runtime: runtime}, nil)
}

// post sends one JSON request and decodes the response into out (when
// non-nil). Any non-2xx status is an error carrying the server's
// error body.
func (t *HTTP) post(path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := t.client.Post(t.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("loadgen: %s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	// Drain so the connection returns to the keep-alive pool.
	io.Copy(io.Discard, resp.Body)
	return nil
}

// del sends one DELETE request; any non-2xx status is an error
// carrying the server's error body.
func (t *HTTP) del(path string) error {
	req, err := http.NewRequest(http.MethodDelete, t.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("loadgen: %s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

func (t *HTTP) Close() error {
	t.client.CloseIdleConnections()
	if t.server != nil {
		return t.server.Close()
	}
	return nil
}
