package loadgen

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func smokeTrace(t *testing.T, qps float64) *Trace {
	t.Helper()
	tr, err := Generate(TraceConfig{Seed: 9, App: "cycles", Streams: 8, Requests: 400, ZipfSkew: 1.1, ObserveRatio: 0.5, QPS: qps})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func checkResult(t *testing.T, res *Result, wantTarget string) {
	t.Helper()
	if res.Target != wantTarget {
		t.Errorf("target = %q, want %q", res.Target, wantTarget)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors; samples: %s", res.Errors, strings.Join(res.ErrorSamples, " | "))
	}
	if res.Recommends != 400 {
		t.Errorf("recommends = %d, want 400", res.Recommends)
	}
	if res.Observes == 0 || res.Observes > 400 {
		t.Errorf("observes = %d, want in (0, 400]", res.Observes)
	}
	if res.Requests != res.Recommends+res.Observes {
		t.Errorf("requests = %d, want %d", res.Requests, res.Recommends+res.Observes)
	}
	if res.ThroughputRPS <= 0 {
		t.Errorf("throughput = %g", res.ThroughputRPS)
	}
	if res.Recommend.Count != res.Recommends || !(res.Recommend.P50US > 0) {
		t.Errorf("recommend summary %+v inconsistent", res.Recommend)
	}
	if res.Observe.Count != res.Observes {
		t.Errorf("observe summary count %d, want %d", res.Observe.Count, res.Observes)
	}
}

func TestRunClosedLoopInProc(t *testing.T) {
	tr := smokeTrace(t, 0)
	tgt := NewInProc()
	defer tgt.Close()
	res, err := Run(tgt, tr, RunOptions{Mode: ModeClosed, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, "inproc")
	// The service really served: every stream with traffic advanced its
	// round counter.
	stats := tgt.Service.Stats()
	if stats.TotalIssued != 400 {
		t.Errorf("service issued tickets = %d, want 400", stats.TotalIssued)
	}
	if stats.TotalObserved == 0 {
		t.Error("service saw no observes")
	}
}

func TestRunClosedLoopHTTP(t *testing.T) {
	tr := smokeTrace(t, 0)
	tgt, err := NewSelfHTTP()
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	res, err := Run(tgt, tr, RunOptions{Mode: ModeClosed, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, "http")
}

func TestRunOpenLoopInProc(t *testing.T) {
	// 400 requests at a nominal 200 QPS, replayed 40x fast (~50ms).
	tr := smokeTrace(t, 200)
	tgt := NewInProc()
	defer tgt.Close()
	res, err := Run(tgt, tr, RunOptions{Mode: ModeOpen, Concurrency: runtime.GOMAXPROCS(0), TimeScale: 40})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, "inproc")
	if res.Mode != string(ModeOpen) {
		t.Errorf("mode = %q", res.Mode)
	}
	if res.TargetQPS != 200*40 {
		t.Errorf("target qps = %g, want 8000", res.TargetQPS)
	}
}

func TestRunOpenLoopNeedsArrivals(t *testing.T) {
	tr := smokeTrace(t, 0)
	if _, err := Run(NewInProc(), tr, RunOptions{Mode: ModeOpen}); err == nil {
		t.Fatal("open-loop replay of a trace without arrival times should fail")
	}
}

func TestRunRawVectors(t *testing.T) {
	tr := smokeTrace(t, 0)
	tgt := NewInProc()
	defer tgt.Close()
	res, err := Run(tgt, tr, RunOptions{Mode: ModeClosed, Concurrency: 2, Raw: true})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, "inproc")
	if !res.Raw {
		t.Error("result does not record raw-vector mode")
	}
}

func TestRunDurationCap(t *testing.T) {
	tr, err := Generate(TraceConfig{Seed: 2, Streams: 4, Requests: 200000, ObserveRatio: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	tgt := NewInProc()
	defer tgt.Close()
	start := time.Now()
	res, err := Run(tgt, tr, RunOptions{Mode: ModeClosed, Concurrency: 2, Duration: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("duration cap did not bite (ran %v)", elapsed)
	}
	if res.Recommends == 0 || res.Recommends >= 200000 {
		t.Fatalf("recommends = %d, want a partial run", res.Recommends)
	}
}

// TestRunHTTPErrorsCounted: a target pointed at a server without the
// trace's streams yields request errors, not a driver failure.
func TestRunHTTPErrorsCounted(t *testing.T) {
	tr := smokeTrace(t, 0)
	good, err := NewSelfHTTP()
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	// Target whose Setup is skipped by pre-creating only half the
	// streams: drive requests straight at an empty server instead.
	empty, err := NewSelfHTTP()
	if err != nil {
		t.Fatal(err)
	}
	defer empty.Close()
	// Bypass Setup: run sessions directly so recommend hits 404s.
	st, err := newWorkerState()
	if err != nil {
		t.Fatal(err)
	}
	st.session(empty, tr, &tr.Ops[0], false)
	if st.errors != 1 || st.recommends != 1 {
		t.Fatalf("errors = %d, recommends = %d; want 1, 1", st.errors, st.recommends)
	}
	if len(st.samples) == 0 || !strings.Contains(st.samples[0], "404") {
		t.Fatalf("error sample %q does not carry the status", st.samples)
	}
}

func BenchmarkSessionInProc(b *testing.B) {
	tr, err := Generate(TraceConfig{Seed: 9, Streams: 8, Requests: 1000, ObserveRatio: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	tgt := NewInProc()
	if err := tgt.Setup(tr); err != nil {
		b.Fatal(err)
	}
	st, err := newWorkerState()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; b.Loop(); i++ {
		st.session(tgt, tr, &tr.Ops[i%len(tr.Ops)], false)
	}
	if st.errors > 0 {
		b.Fatalf("%d errors: %v", st.errors, st.samples)
	}
}
