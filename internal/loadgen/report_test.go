package loadgen

import (
	"errors"
	"runtime"
	"strings"
	"testing"
)

func sampleReport(t *testing.T) *Report {
	t.Helper()
	tr := smokeTrace(t, 0)
	tgt := NewInProc()
	defer tgt.Close()
	res, err := Run(tgt, tr, RunOptions{Mode: ModeClosed, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	return &Report{
		Format:    ReportFormat,
		Version:   ReportVersion,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Trace:     tr.Config,
		Results:   []Result{*res},
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := sampleReport(t)
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	data, err := rep.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Results[0].Requests != rep.Results[0].Requests {
		t.Fatalf("round trip lost requests: %d != %d", back.Results[0].Requests, rep.Results[0].Requests)
	}
	if back.Trace != rep.Trace {
		t.Fatalf("round trip changed trace config: %+v != %+v", back.Trace, rep.Trace)
	}
}

func TestReportValidateRejects(t *testing.T) {
	base := sampleReport(t)
	mutations := []struct {
		name string
		mut  func(*Report)
	}{
		{"wrong format", func(r *Report) { r.Format = "nope" }},
		{"wrong version", func(r *Report) { r.Version = 99 }},
		{"no results", func(r *Report) { r.Results = nil }},
		{"missing env", func(r *Report) { r.GoVersion = "" }},
		{"zero requests", func(r *Report) { r.Results[0].Requests = 0 }},
		{"count mismatch", func(r *Report) { r.Results[0].Recommends++ }},
		{"bad mode", func(r *Report) { r.Results[0].Mode = "sideways" }},
		{"no throughput", func(r *Report) { r.Results[0].ThroughputRPS = 0 }},
		{"non-monotone quantiles", func(r *Report) { r.Results[0].Recommend.P99US = r.Results[0].Recommend.P50US / 2 }},
	}
	for _, m := range mutations {
		rep := sampleReport(t)
		m.mut(rep)
		err := rep.Validate()
		if err == nil {
			t.Errorf("%s: validation passed", m.name)
			continue
		}
		if !errors.Is(err, ErrBadReport) {
			t.Errorf("%s: error %v is not ErrBadReport", m.name, err)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("unmutated report invalid: %v", err)
	}
}

// TestFailedPartialResultValidates pins the partial-report contract: a
// run that dies before measuring still yields a schema-valid result
// (configuration recorded, measurements zero) so the report file stays
// parseable, while a non-failed result keeps the full invariants.
func TestFailedPartialResultValidates(t *testing.T) {
	rep := sampleReport(t)
	rep.Results = append(rep.Results, Result{
		Target:    "http",
		Mode:      string(ModeOpen),
		TargetQPS: 1234,
		Failed:    "setup: connection refused",
	})
	if err := rep.Validate(); err != nil {
		t.Fatalf("report with failed partial result rejected: %v", err)
	}
	data, err := rep.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	got := back.Results[len(back.Results)-1]
	if got.Failed == "" || got.TargetQPS != 1234 {
		t.Fatalf("partial result lost failure context: %+v", got)
	}
	// A failed partial still needs target and mode to be attributable.
	rep.Results[1].Target = ""
	if err := rep.Validate(); err == nil {
		t.Fatal("failed partial without a target validated")
	}
}

// TestRunSetupFailureReturnsPartial drives Run against a target whose
// Setup cannot succeed and checks the returned partial result records
// the configured open-loop QPS alongside the error.
func TestRunSetupFailureReturnsPartial(t *testing.T) {
	tr := smokeTrace(t, 0)
	tr.Config.QPS = 500
	tgt := NewHTTP("http://127.0.0.1:1") // reserved port: connection refused
	defer tgt.Close()
	res, err := Run(tgt, tr, RunOptions{Mode: ModeOpen, Concurrency: 2, TimeScale: 4})
	if err == nil {
		t.Fatal("Run against a dead server succeeded")
	}
	if res == nil {
		t.Fatal("Run returned no partial result alongside the error")
	}
	if res.Failed == "" {
		t.Fatalf("partial result has no failure recorded: %+v", res)
	}
	if res.TargetQPS != 500*4 {
		t.Fatalf("partial result target QPS %g, want %g", res.TargetQPS, 500.0*4)
	}
	if res.Requests != 0 || res.ThroughputRPS != 0 {
		t.Fatalf("failed run recorded measurements: %+v", res)
	}
	if err := (&Report{
		Format: ReportFormat, Version: ReportVersion,
		GoVersion: "go", GOOS: "linux", GOARCH: "amd64", NumCPU: 1,
		Results: []Result{*res},
	}).Validate(); err != nil {
		t.Fatalf("partial result does not validate: %v", err)
	}
}

func TestParseReportRejectsUnknownFields(t *testing.T) {
	rep := sampleReport(t)
	data, err := rep.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), `"format"`, `"surprise": 1, "format"`, 1)
	if _, err := ParseReport([]byte(tampered)); err == nil {
		t.Fatal("unknown field accepted")
	}
}
