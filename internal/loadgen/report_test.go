package loadgen

import (
	"errors"
	"runtime"
	"strings"
	"testing"
)

func sampleReport(t *testing.T) *Report {
	t.Helper()
	tr := smokeTrace(t, 0)
	tgt := NewInProc()
	defer tgt.Close()
	res, err := Run(tgt, tr, RunOptions{Mode: ModeClosed, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	return &Report{
		Format:    ReportFormat,
		Version:   ReportVersion,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Trace:     tr.Config,
		Results:   []Result{*res},
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := sampleReport(t)
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	data, err := rep.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Results[0].Requests != rep.Results[0].Requests {
		t.Fatalf("round trip lost requests: %d != %d", back.Results[0].Requests, rep.Results[0].Requests)
	}
	if back.Trace != rep.Trace {
		t.Fatalf("round trip changed trace config: %+v != %+v", back.Trace, rep.Trace)
	}
}

func TestReportValidateRejects(t *testing.T) {
	base := sampleReport(t)
	mutations := []struct {
		name string
		mut  func(*Report)
	}{
		{"wrong format", func(r *Report) { r.Format = "nope" }},
		{"wrong version", func(r *Report) { r.Version = 99 }},
		{"no results", func(r *Report) { r.Results = nil }},
		{"missing env", func(r *Report) { r.GoVersion = "" }},
		{"zero requests", func(r *Report) { r.Results[0].Requests = 0 }},
		{"count mismatch", func(r *Report) { r.Results[0].Recommends++ }},
		{"bad mode", func(r *Report) { r.Results[0].Mode = "sideways" }},
		{"no throughput", func(r *Report) { r.Results[0].ThroughputRPS = 0 }},
		{"non-monotone quantiles", func(r *Report) { r.Results[0].Recommend.P99US = r.Results[0].Recommend.P50US / 2 }},
	}
	for _, m := range mutations {
		rep := sampleReport(t)
		m.mut(rep)
		err := rep.Validate()
		if err == nil {
			t.Errorf("%s: validation passed", m.name)
			continue
		}
		if !errors.Is(err, ErrBadReport) {
			t.Errorf("%s: error %v is not ErrBadReport", m.name, err)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("unmutated report invalid: %v", err)
	}
}

func TestParseReportRejectsUnknownFields(t *testing.T) {
	rep := sampleReport(t)
	data, err := rep.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), `"format"`, `"surprise": 1, "format"`, 1)
	if _, err := ParseReport([]byte(tampered)); err == nil {
		t.Fatal("unknown field accepted")
	}
}
