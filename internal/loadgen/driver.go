package loadgen

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"banditware/internal/stats"
)

// Mode selects how the driver paces requests.
type Mode string

const (
	// ModeClosed is closed-loop load: Concurrency workers each issue
	// the next request as soon as the previous one completes, so the
	// offered load adapts to the target's speed. Throughput under
	// closed-loop load is the capacity number.
	ModeClosed Mode = "closed"
	// ModeOpen is open-loop load: requests are dispatched at the
	// trace's Poisson arrival times regardless of completions (bounded
	// by MaxInFlight), the way independent external clients behave.
	// Latency under open-loop load is the user-visible number.
	ModeOpen Mode = "open"
)

// RunOptions configures one driver run over a trace.
type RunOptions struct {
	// Mode paces the run; default closed.
	Mode Mode
	// Concurrency is the closed-loop worker count, and in open-loop
	// mode the number of request slots (the in-flight bound). Default
	// GOMAXPROCS.
	Concurrency int
	// Duration, when positive, stops issuing new sessions after this
	// wall-clock budget even if trace ops remain.
	Duration time.Duration
	// Raw sends positional feature vectors instead of named schema
	// contexts, isolating schema encode/validate cost by comparison.
	Raw bool
	// TimeScale compresses (>1) or stretches (<1) the trace's open-loop
	// arrival times; 0 means 1 (replay at the recorded QPS).
	TimeScale float64
	// Churn runs the arm-churn drill inside the measured window: a
	// warm-started hardware arm is added to every stream a quarter of
	// the way through the trace, drained at half, and retired at three
	// quarters. The target must implement ArmChurner.
	Churn bool
}

func (o RunOptions) withDefaults() RunOptions {
	if o.Mode == "" {
		o.Mode = ModeClosed
	}
	if o.Concurrency <= 0 {
		o.Concurrency = runtime.GOMAXPROCS(0)
	}
	if o.TimeScale == 0 {
		o.TimeScale = 1
	}
	return o
}

// Histogram bounds: per-request latencies from hundreds of ns
// (in-process recommend) to seconds (overloaded HTTP), at 1% relative
// quantile resolution.
const (
	histMin    = 50e-9
	histMax    = 60.0
	histRelErr = 0.01
)

// LatencySummary condenses one operation type's latency histogram for
// the report. All values are microseconds.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P90US  float64 `json:"p90_us"`
	P99US  float64 `json:"p99_us"`
	P999US float64 `json:"p999_us"`
	MaxUS  float64 `json:"max_us"`
}

func summarize(h *stats.LogHistogram) LatencySummary {
	if h.Count() == 0 {
		return LatencySummary{}
	}
	us := func(sec float64) float64 { return sec * 1e6 }
	return LatencySummary{
		Count:  h.Count(),
		MeanUS: us(h.Mean()),
		P50US:  us(h.Quantile(0.5)),
		P90US:  us(h.Quantile(0.9)),
		P99US:  us(h.Quantile(0.99)),
		P999US: us(h.Quantile(0.999)),
		MaxUS:  us(h.Max()),
	}
}

// Result is the measured outcome of one run against one target.
type Result struct {
	Target      string `json:"target"`
	Mode        string `json:"mode"`
	Concurrency int    `json:"concurrency"`
	Raw         bool   `json:"raw_vectors,omitempty"`
	Requests    uint64 `json:"requests"`
	Recommends  uint64 `json:"recommends"`
	Observes    uint64 `json:"observes"`
	Errors      uint64 `json:"errors"`
	// Chaos marks a run that included the fleet kill/restart drill:
	// errors up to the failover-window bound are expected, and
	// validation policies should tolerate them.
	Chaos bool `json:"chaos,omitempty"`
	// Churn marks a run that included the arm-churn drill (add at a
	// quarter of the trace, drain at half, retire at three quarters, on
	// every stream); ChurnEvents counts the lifecycle transitions
	// applied. Requests racing a retire can lose their pending tickets
	// by design, so validation policies should tolerate a small error
	// count on churn runs.
	Churn          bool    `json:"churn,omitempty"`
	ChurnEvents    uint64  `json:"churn_events,omitempty"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// ThroughputRPS counts every op (recommend and observe) per second
	// of wall clock.
	ThroughputRPS float64 `json:"throughput_rps"`
	// TargetQPS echoes the open-loop offered load (0 for closed loop).
	TargetQPS float64 `json:"target_qps,omitempty"`
	// BehindScheduleOps counts open-loop arrivals the dispatcher could
	// not launch on time because every slot was busy — nonzero means
	// the measured latency underestimates the queueing a real client
	// would see at this load.
	BehindScheduleOps uint64 `json:"behind_schedule_ops,omitempty"`
	// BehindFraction is BehindScheduleOps over dispatched recommends —
	// the share of the offered schedule the driver failed to keep.
	BehindFraction float64 `json:"behind_fraction,omitempty"`
	// Failed carries the run-level error when the run died before
	// producing measurements (e.g. target setup refused). A failed
	// result keeps its configuration fields (target, mode, concurrency,
	// target QPS) so partial reports stay schema-valid and diagnosable;
	// the measurement invariants are not enforced on it.
	Failed    string         `json:"failed,omitempty"`
	Recommend LatencySummary `json:"recommend"`
	Observe   LatencySummary `json:"observe"`
	// AllocsPerOp and BytesPerOp are heap allocation deltas across the
	// run divided by total ops. They include the driver's own footprint
	// (trace replay, histograms), so treat them as an upper bound on
	// the serving path.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	GCCycles    uint32  `json:"gc_cycles"`
	// ErrorSamples holds up to a handful of distinct error strings so a
	// failing run is diagnosable from the report alone.
	ErrorSamples []string `json:"error_samples,omitempty"`
}

// workerState is one worker's private measurement state; merged after
// the run so the record path takes no locks.
type workerState struct {
	recommend  *stats.LogHistogram
	observe    *stats.LogHistogram
	recommends uint64
	observes   uint64
	errors     uint64
	samples    []string
}

func newWorkerState() (*workerState, error) {
	rh, err := stats.NewLogHistogram(histMin, histMax, histRelErr)
	if err != nil {
		return nil, err
	}
	oh, err := stats.NewLogHistogram(histMin, histMax, histRelErr)
	if err != nil {
		return nil, err
	}
	return &workerState{recommend: rh, observe: oh}, nil
}

func (w *workerState) fail(err error) {
	w.errors++
	if len(w.samples) < 3 {
		w.samples = append(w.samples, err.Error())
	}
}

// session executes one trace op end to end: recommend, then the
// observe when the op carries one and the recommend succeeded.
func (w *workerState) session(tgt Target, tr *Trace, op *Op, raw bool) {
	var dec Decision
	var err error
	start := time.Now()
	if raw {
		dec, err = tgt.RecommendRaw(tr.Streams[op.Stream].Name, op)
	} else {
		dec, err = tgt.Recommend(tr.Streams[op.Stream].Name, op, tr)
	}
	w.recommend.Add(time.Since(start).Seconds())
	w.recommends++
	if err != nil {
		w.fail(err)
		return
	}
	if !op.Observe {
		return
	}
	rt := op.Runtimes[0]
	if dec.Arm >= 0 && dec.Arm < len(op.Runtimes) {
		rt = op.Runtimes[dec.Arm]
	}
	start = time.Now()
	if so, ok := tgt.(SeqObserver); ok && dec.Ticket == "" {
		err = so.ObserveSeq(dec.Stream, dec.Seq, rt)
	} else {
		err = tgt.Observe(dec.Ticket, rt)
	}
	w.observe.Add(time.Since(start).Seconds())
	w.observes++
	if err != nil {
		w.fail(err)
	}
}

// Run replays the trace against the target under opts and returns the
// measured result. Setup (stream creation) happens inside Run but is
// excluded from the measured window.
//
// When the run dies before measuring (target setup failure), Run
// returns the error alongside a non-nil partial Result: configuration
// fields filled in, Failed set, measurements zero. Callers that emit
// reports should record the partial result so an errored run still
// leaves a schema-valid document behind.
func Run(tgt Target, tr *Trace, opts RunOptions) (*Result, error) {
	opts = opts.withDefaults()
	if opts.Mode != ModeClosed && opts.Mode != ModeOpen {
		return nil, fmt.Errorf("loadgen: unknown mode %q", opts.Mode)
	}
	if opts.Mode == ModeOpen && tr.Config.QPS <= 0 {
		return nil, fmt.Errorf("loadgen: open-loop replay needs a trace generated with qps > 0")
	}
	if err := tgt.Setup(tr); err != nil {
		res := &Result{
			Target:      tgt.Name(),
			Mode:        string(opts.Mode),
			Concurrency: opts.Concurrency,
			Raw:         opts.Raw,
			Failed:      err.Error(),
		}
		if opts.Mode == ModeOpen {
			res.TargetQPS = tr.Config.QPS * opts.TimeScale
		}
		return res, err
	}

	var churn *churnRun
	if opts.Churn {
		c, err := newChurnRun(tgt, tr)
		if err != nil {
			// Same contract as a setup failure: a schema-valid partial
			// result records the configuration, Failed carries the reason.
			res := &Result{
				Target:      tgt.Name(),
				Mode:        string(opts.Mode),
				Concurrency: opts.Concurrency,
				Raw:         opts.Raw,
				Churn:       true,
				Failed:      err.Error(),
			}
			if opts.Mode == ModeOpen {
				res.TargetQPS = tr.Config.QPS * opts.TimeScale
			}
			return res, err
		}
		churn = c
	}

	states := make([]*workerState, opts.Concurrency)
	for i := range states {
		st, err := newWorkerState()
		if err != nil {
			return nil, err
		}
		states[i] = st
	}

	var memBefore, memAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	var behind uint64
	if opts.Mode == ModeClosed {
		runClosed(tgt, tr, opts, states, start, churn)
	} else {
		behind = runOpen(tgt, tr, opts, states, start, churn)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&memAfter)

	res := &Result{
		Target:            tgt.Name(),
		Mode:              string(opts.Mode),
		Concurrency:       opts.Concurrency,
		Raw:               opts.Raw,
		ElapsedSeconds:    elapsed.Seconds(),
		TargetQPS:         tr.Config.QPS * opts.TimeScale,
		BehindScheduleOps: behind,
	}
	if opts.Mode == ModeClosed {
		res.TargetQPS = 0
	}
	rh, err := stats.NewLogHistogram(histMin, histMax, histRelErr)
	if err != nil {
		return nil, err
	}
	oh, _ := stats.NewLogHistogram(histMin, histMax, histRelErr)
	for _, st := range states {
		if err := rh.Merge(st.recommend); err != nil {
			return nil, err
		}
		if err := oh.Merge(st.observe); err != nil {
			return nil, err
		}
		res.Recommends += st.recommends
		res.Observes += st.observes
		res.Errors += st.errors
		for _, s := range st.samples {
			if len(res.ErrorSamples) < 5 {
				res.ErrorSamples = append(res.ErrorSamples, s)
			}
		}
	}
	res.Requests = res.Recommends + res.Observes
	if elapsed > 0 {
		res.ThroughputRPS = float64(res.Requests) / elapsed.Seconds()
	}
	if res.Recommends > 0 {
		res.BehindFraction = float64(behind) / float64(res.Recommends)
	}
	res.Recommend = summarize(rh)
	res.Observe = summarize(oh)
	if res.Requests > 0 {
		res.AllocsPerOp = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(res.Requests)
		res.BytesPerOp = float64(memAfter.TotalAlloc-memBefore.TotalAlloc) / float64(res.Requests)
	}
	res.GCCycles = memAfter.NumGC - memBefore.NumGC
	if churn != nil {
		res.Churn = true
		res.ChurnEvents = churn.events
		if err := churn.finish(); err != nil {
			return res, err
		}
	}
	return res, nil
}

// runClosed replays the trace with a fixed worker pool; each worker
// runs its next session as soon as the previous one finishes.
//
// Without churn, ops are statically strided across the workers so the
// replay loop itself is dispatch-free — no shared channel on the hot
// path, which matters when the target serves in hundreds of ns. Churn
// runs keep the feeder goroutine: lifecycle transitions must apply at
// their scheduled global op index, which only a single dispatcher can
// order.
func runClosed(tgt Target, tr *Trace, opts RunOptions, states []*workerState, start time.Time, churn *churnRun) {
	var deadline time.Time
	if opts.Duration > 0 {
		deadline = start.Add(opts.Duration)
	}
	if churn == nil {
		runClosedStatic(tgt, tr, opts, states, deadline)
		return
	}
	opCh := make(chan *Op, 2*len(states))
	var wg sync.WaitGroup
	for _, st := range states {
		wg.Add(1)
		go func(st *workerState) {
			defer wg.Done()
			for op := range opCh {
				st.session(tgt, tr, op, opts.Raw)
			}
		}(st)
	}
	for i := range tr.Ops {
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		// Lifecycle transitions apply from the feeder at their scheduled
		// op index; workers already in flight overlap them, exactly like
		// live traffic overlapping a rollout.
		churn.tick()
		opCh <- &tr.Ops[i]
	}
	close(opCh)
	wg.Wait()
}

// runClosedStatic is the dispatch-free closed loop: worker w replays
// ops w, w+W, w+2W, ... back to back. The deadline is polled every few
// ops so the check does not put a clock read on every request.
func runClosedStatic(tgt Target, tr *Trace, opts RunOptions, states []*workerState, deadline time.Time) {
	var wg sync.WaitGroup
	for w, st := range states {
		wg.Add(1)
		go func(w int, st *workerState) {
			defer wg.Done()
			for i := w; i < len(tr.Ops); i += len(states) {
				if !deadline.IsZero() && i/len(states)%64 == 0 && time.Now().After(deadline) {
					return
				}
				st.session(tgt, tr, &tr.Ops[i], opts.Raw)
			}
		}(w, st)
	}
	wg.Wait()
}

// runOpen dispatches ops at their recorded arrival times. Worker states
// double as request slots: the dispatcher blocks when all Concurrency
// slots are in flight (bounding memory) and counts those stalls as
// behind-schedule ops.
func runOpen(tgt Target, tr *Trace, opts RunOptions, states []*workerState, start time.Time, churn *churnRun) (behind uint64) {
	var deadline time.Time
	if opts.Duration > 0 {
		deadline = start.Add(opts.Duration)
	}
	pool := make(chan *workerState, len(states))
	for _, st := range states {
		pool <- st
	}
	var wg sync.WaitGroup
	for i := range tr.Ops {
		op := &tr.Ops[i]
		at := time.Duration(float64(op.AtNanos) / opts.TimeScale)
		arrival := start.Add(at)
		if wait := time.Until(arrival); wait > 0 {
			time.Sleep(wait)
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		// Churn transitions run synchronously on the dispatcher; the
		// brief stall they cause shows up as behind-schedule ops, the
		// honest accounting for a rollout performed under offered load.
		if churn != nil {
			churn.tick()
		}
		var st *workerState
		select {
		case st = <-pool:
		default:
			// All slots busy at this op's arrival time: the offered
			// load exceeds what Concurrency slots can absorb. Block
			// (bounded memory) but record the schedule slip.
			behind++
			st = <-pool
		}
		wg.Add(1)
		go func(st *workerState, op *Op) {
			defer wg.Done()
			st.session(tgt, tr, op, opts.Raw)
			pool <- st
		}(st, op)
	}
	wg.Wait()
	return behind
}
