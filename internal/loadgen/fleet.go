package loadgen

import (
	"errors"
	"fmt"
	"sync/atomic"

	"banditware/internal/dist"
)

// FleetTarget drives a self-hosted scale-out fleet — N replicated
// services behind the consistent-hash router (dist.LocalFleet) — over
// real loopback sockets. Every request takes the full production path:
// client → router proxy → owning replica, with background delta
// replication running between the replicas, so the numbers price the
// extra hop and the sync traffic against the single-node HTTP target.
//
// With Chaos enabled the target also runs the kill/restart drill
// inside the measured run: one replica is hard-killed a third of the
// way through the trace and restarted (bootstrapping from its peers)
// at two thirds. Requests caught in the failover window surface as
// ordinary request errors in the report — the point of the drill is
// that the window stays small.
type FleetTarget struct {
	fleet *dist.LocalFleet
	inner *HTTP

	chaos     bool
	victim    int
	ops       atomic.Int64
	killAt    int64
	restartAt int64
	killed    atomic.Bool
	restarted atomic.Bool

	mu       chan struct{} // 1-slot semaphore guarding chaosErr
	chaosErr error
}

// FleetConfig configures a fleet load target.
type FleetConfig struct {
	// Replicas is the fleet size (0 = 3).
	Replicas int
	// Chaos enables the mid-run kill/restart drill.
	Chaos bool
}

// NewFleet boots a LocalFleet (replicas + router on loopback) and
// targets its router endpoint.
func NewFleet(cfg FleetConfig) (*FleetTarget, error) {
	n := cfg.Replicas
	if n <= 0 {
		n = 3
	}
	if cfg.Chaos && n < 2 {
		return nil, fmt.Errorf("loadgen: chaos drill needs at least 2 replicas, have %d", n)
	}
	f, err := dist.NewLocalFleet(dist.FleetOptions{Replicas: n})
	if err != nil {
		return nil, err
	}
	return &FleetTarget{
		fleet:  f,
		inner:  NewHTTP(f.RouterURL()),
		chaos:  cfg.Chaos,
		victim: 1,
		mu:     make(chan struct{}, 1),
	}, nil
}

func (t *FleetTarget) Name() string { return "fleet" }

// Fleet exposes the underlying fleet (demos reach through for the
// router view after a run).
func (t *FleetTarget) Fleet() *dist.LocalFleet { return t.fleet }

func (t *FleetTarget) Setup(tr *Trace) error {
	if t.chaos {
		total := int64(len(tr.Ops))
		if total < 9 {
			return fmt.Errorf("loadgen: chaos drill needs at least 9 ops, trace has %d", total)
		}
		t.killAt = total / 3
		t.restartAt = 2 * total / 3
	}
	return t.inner.Setup(tr)
}

// step advances the chaos schedule: exactly one worker crosses each
// threshold (atomic counter + CAS), kills or restarts the victim, and
// forces an immediate router health re-probe so the failover window is
// bounded by the in-flight requests, not the poll interval.
func (t *FleetTarget) step() {
	if !t.chaos {
		return
	}
	n := t.ops.Add(1)
	if n >= t.killAt && t.killed.CompareAndSwap(false, true) {
		if err := t.fleet.Kill(t.victim); err != nil {
			t.recordChaosErr(fmt.Errorf("loadgen: chaos kill: %w", err))
		}
		t.fleet.Router().CheckNow()
	}
	if n >= t.restartAt && t.restarted.CompareAndSwap(false, true) {
		if err := t.fleet.Restart(t.victim); err != nil {
			t.recordChaosErr(fmt.Errorf("loadgen: chaos restart: %w", err))
		} else {
			t.fleet.Router().CheckNow()
		}
	}
}

func (t *FleetTarget) recordChaosErr(err error) {
	t.mu <- struct{}{}
	t.chaosErr = errors.Join(t.chaosErr, err)
	<-t.mu
}

func (t *FleetTarget) Recommend(stream string, op *Op, tr *Trace) (Decision, error) {
	t.step()
	return t.inner.Recommend(stream, op, tr)
}

func (t *FleetTarget) RecommendRaw(stream string, op *Op) (Decision, error) {
	t.step()
	return t.inner.RecommendRaw(stream, op)
}

func (t *FleetTarget) Observe(ticket string, runtime float64) error {
	return t.inner.Observe(ticket, runtime)
}

// Close shuts the fleet down. A failed chaos transition (the drill
// could not kill or restart its victim) is reported here: the run's
// latency numbers would otherwise silently describe a drill that never
// happened.
func (t *FleetTarget) Close() error {
	err := errors.Join(t.inner.Close(), t.fleet.Close())
	t.mu <- struct{}{}
	err = errors.Join(err, t.chaosErr)
	<-t.mu
	if t.chaos && t.chaosErr == nil && !t.restarted.Load() {
		err = errors.Join(err, errors.New("loadgen: chaos drill never reached its restart threshold"))
	}
	return err
}
