// Package loadgen is the serving-path load generator: it synthesises
// Zipf-skewed multi-stream request traces from the internal/workloads
// generators and replays them against a serving target — the
// in-process Service or the HTTP front-end over a real socket — in
// closed-loop (fixed concurrency) or open-loop (target QPS, Poisson
// arrivals) mode, capturing per-request latency into streaming
// histograms. cmd/bwload is the CLI; the JSON report schema lives in
// report.go and the checked-in BENCH_serve_baseline.json records the
// first measured baseline.
//
// Everything is deterministic under a seed: the same TraceConfig
// always yields a byte-identical trace (stream population, context
// vectors, arrival times, pre-sampled per-arm runtimes), so perf PRs
// compare like against like.
package loadgen

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"banditware/internal/hardware"
	"banditware/internal/rng"
	"banditware/internal/schema"
	"banditware/internal/workloads"
)

// TraceConfig parameterises trace generation. The zero value is not
// usable directly; Generate applies the documented defaults.
type TraceConfig struct {
	// Seed drives every random choice. Same seed, same trace.
	Seed uint64 `json:"seed"`
	// App selects the workload whose contexts and runtime ground truth
	// the trace draws from: "cycles" (default), "bp3d", "matmul", "llm",
	// "serverless".
	App string `json:"app"`
	// Scenario names the scenario the trace was derived from, when it
	// was built by internal/scenario rather than Generate ("" for plain
	// generated traces). Informational: it flows into the report so
	// scenario runs are distinguishable in the perf trajectory.
	Scenario string `json:"scenario,omitempty"`
	// Streams is the number of recommender streams in the population
	// (default 64). Stream 0 is the Zipf head.
	Streams int `json:"streams"`
	// Requests is the number of recommend requests (default 10000).
	// Observes ride along per ObserveRatio, so the total op count is
	// larger.
	Requests int `json:"requests"`
	// ZipfSkew is the Zipf exponent s of the stream popularity
	// distribution: P(stream i) ∝ 1/(i+1)^s. 0 means uniform;
	// the default is 1.1 (heavy head, long tail).
	ZipfSkew float64 `json:"zipf_skew"`
	// ObserveRatio is the fraction of recommends followed by an
	// observe redeeming the ticket (default 0.5).
	ObserveRatio float64 `json:"observe_ratio"`
	// QPS sets the open-loop arrival rate: request arrival offsets are
	// drawn from a Poisson process at this rate. 0 (the default) leaves
	// arrival times unset, which restricts replay to closed-loop mode.
	QPS float64 `json:"qps,omitempty"`
}

func (c TraceConfig) withDefaults() TraceConfig {
	if c.App == "" {
		c.App = "cycles"
	}
	if c.Streams == 0 {
		c.Streams = 64
	}
	if c.Requests == 0 {
		c.Requests = 10000
	}
	if c.ZipfSkew == 0 {
		c.ZipfSkew = 1.1
	}
	if c.ObserveRatio == 0 {
		c.ObserveRatio = 0.5
	}
	return c
}

func (c TraceConfig) validate() error {
	if c.Streams < 1 {
		return fmt.Errorf("loadgen: streams %d < 1", c.Streams)
	}
	if c.Requests < 1 {
		return fmt.Errorf("loadgen: requests %d < 1", c.Requests)
	}
	if c.ZipfSkew < 0 || math.IsNaN(c.ZipfSkew) || math.IsInf(c.ZipfSkew, 0) {
		return fmt.Errorf("loadgen: bad zipf skew %g", c.ZipfSkew)
	}
	if c.ObserveRatio < 0 || c.ObserveRatio > 1 || math.IsNaN(c.ObserveRatio) {
		return fmt.Errorf("loadgen: observe ratio %g outside [0, 1]", c.ObserveRatio)
	}
	if c.QPS < 0 || math.IsNaN(c.QPS) || math.IsInf(c.QPS, 0) {
		return fmt.Errorf("loadgen: bad qps %g", c.QPS)
	}
	return nil
}

// StreamSpec is one stream in the trace population.
type StreamSpec struct {
	// Name is the stream's registry name ("s0000", "s0001", ...).
	Name string `json:"name"`
	// Weight is the stream's Zipf probability mass.
	Weight float64 `json:"weight"`
}

// Op is one serving-path request: a recommend, optionally followed by
// an observe that redeems the returned ticket.
type Op struct {
	// Stream indexes into Trace.Streams.
	Stream int `json:"stream"`
	// Features is the context vector, ordered by Trace.FeatureNames.
	Features []float64 `json:"features"`
	// Observe marks recommends whose ticket is redeemed afterwards.
	Observe bool `json:"observe,omitempty"`
	// Runtimes holds one pre-sampled runtime per arm for the observe,
	// so the observed value tracks whichever arm the target picks at
	// replay time without breaking determinism.
	Runtimes []float64 `json:"runtimes,omitempty"`
	// AtNanos is the open-loop arrival offset from the run start, in
	// nanoseconds (0 throughout when the trace was generated without a
	// QPS).
	AtNanos int64 `json:"at_ns,omitempty"`
}

// Trace is a generated request trace plus the stream population it
// targets. All streams share the trace's app-derived feature layout and
// hardware set (they are independent recommender instances over the
// same workload family — the "many tenants, one application class"
// shape).
type Trace struct {
	Config       TraceConfig    `json:"config"`
	FeatureNames []string       `json:"feature_names"`
	Hardware     hardware.Set   `json:"hardware"`
	Schema       *schema.Schema `json:"schema"`
	Streams      []StreamSpec   `json:"streams"`
	Ops          []Op           `json:"ops"`
}

// Generate builds a deterministic trace from cfg.
func Generate(cfg TraceConfig) (*Trace, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ds, err := generateDataset(cfg.App, cfg.Seed+1)
	if err != nil {
		return nil, err
	}

	tr := &Trace{
		Config:       cfg,
		FeatureNames: ds.FeatureNames,
		Hardware:     ds.Hardware,
		Schema:       contextSchema(ds.FeatureNames),
	}

	// Stream population with Zipf(s) popularity over ranks.
	weights := zipfWeights(cfg.Streams, cfg.ZipfSkew)
	tr.Streams = make([]StreamSpec, cfg.Streams)
	for i := range tr.Streams {
		tr.Streams[i] = StreamSpec{Name: fmt.Sprintf("s%04d", i), Weight: weights[i]}
	}
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w
		cum[i] = acc
	}

	// One sequential source for the op stream keeps generation
	// order-stable: stream choice, context row, observe coin, runtime
	// noise, and arrival gap are drawn in a fixed per-op order.
	r := rng.New(cfg.Seed)
	var clock float64 // seconds
	tr.Ops = make([]Op, cfg.Requests)
	for i := range tr.Ops {
		op := Op{
			Stream: sampleIndex(cum, r.Float64()),
		}
		run := ds.Runs[r.Intn(len(ds.Runs))]
		op.Features = run.Features
		if r.Float64() < cfg.ObserveRatio {
			op.Observe = true
			op.Runtimes = make([]float64, len(ds.Hardware))
			for arm := range op.Runtimes {
				rt := ds.SampleRuntime(arm, run.Features, r)
				// Outcome validation rejects negative runtimes; the
				// generative noise can cross zero on fast arms.
				if rt < 1e-3 {
					rt = 1e-3
				}
				op.Runtimes[arm] = rt
			}
		}
		if cfg.QPS > 0 {
			clock += r.Exp(cfg.QPS)
			op.AtNanos = int64(clock * 1e9)
		}
		tr.Ops[i] = op
	}
	return tr, nil
}

// generateDataset builds the workload dataset the trace samples
// contexts and ground-truth runtimes from.
func generateDataset(app string, seed uint64) (*workloads.Dataset, error) {
	switch app {
	case "cycles":
		return workloads.GenerateCycles(workloads.CyclesOptions{Seed: seed})
	case "bp3d":
		return workloads.GenerateBP3D(workloads.BP3DOptions{Seed: seed})
	case "matmul":
		return workloads.GenerateMatMul(workloads.MatMulOptions{Seed: seed})
	case "llm":
		return workloads.GenerateLLM(workloads.LLMOptions{Seed: seed})
	case "serverless":
		return workloads.GenerateServerless(workloads.ServerlessOptions{Seed: seed})
	default:
		return nil, fmt.Errorf("loadgen: unknown app %q (want cycles, bp3d, matmul, llm, serverless)", app)
	}
}

// contextSchema declares the named feature layout the streams serve
// under: one required numeric field per workload feature, so every
// named-context request exercises schema validation and encoding.
func contextSchema(names []string) *schema.Schema {
	fields := make([]schema.Field, len(names))
	for i, n := range names {
		fields[i] = schema.Field{Name: n, Required: true}
	}
	return &schema.Schema{Fields: fields}
}

// zipfWeights returns the normalized Zipf(s) probability masses for n
// ranks: w_i ∝ 1/(i+1)^s.
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = math.Pow(float64(i+1), -s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// sampleIndex maps a uniform draw onto the cumulative weight array.
func sampleIndex(cum []float64, u float64) int {
	i := sort.SearchFloat64s(cum, u)
	if i >= len(cum) {
		i = len(cum) - 1
	}
	return i
}

// Context returns op's features as a named schema context (the wire
// form the schema'd serving path consumes).
func (t *Trace) Context(op *Op) schema.Context {
	m := make(map[string]float64, len(t.FeatureNames))
	for i, n := range t.FeatureNames {
		m[n] = op.Features[i]
	}
	return schema.Num(m)
}

// StreamCounts tallies how many ops target each stream.
func (t *Trace) StreamCounts() []int {
	counts := make([]int, len(t.Streams))
	for i := range t.Ops {
		counts[t.Ops[i].Stream]++
	}
	return counts
}

// EncodeJSON serialises the trace deterministically (stable field
// order, no map iteration), so equal traces are byte-identical.
func (t *Trace) EncodeJSON() ([]byte, error) {
	return json.Marshal(t)
}
