package loadgen

import (
	"runtime"
	"strings"
	"testing"
)

// TestOpenLoopStress hammers the open-loop (Poisson arrival) driver
// with a hot-stream trace, high time compression, and more in-flight
// slots than cores, so the arrival dispatcher and the worker-state
// merge run maximally concurrent. Its job is to give the race detector
// surface area: `go test -race -run TestOpenLoopStress` is the CI race
// smoke for this path. The trace's Zipf skew near zero spreads load
// across streams, and the near-uniform popularity plus compressed
// schedule force constant slot churn.
func TestOpenLoopStress(t *testing.T) {
	tr, err := Generate(TraceConfig{
		Seed:         11,
		App:          "cycles",
		Streams:      16,
		Requests:     3000,
		ZipfSkew:     0.05,
		ObserveRatio: 0.9,
		QPS:          1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	tgt := NewInProc()
	defer tgt.Close()
	conc := 4 * runtime.GOMAXPROCS(0)
	// TimeScale 200 compresses the 2 s schedule to ~10 ms of arrival
	// gaps: every op is behind schedule immediately, so all slots stay
	// saturated for the whole run.
	res, err := Run(tgt, tr, RunOptions{Mode: ModeOpen, Concurrency: conc, TimeScale: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors; samples: %s", res.Errors, strings.Join(res.ErrorSamples, " | "))
	}
	if res.Recommends != 3000 {
		t.Fatalf("recommends = %d, want 3000 (dispatcher lost arrivals)", res.Recommends)
	}
	if res.Requests != res.Recommends+res.Observes {
		t.Fatalf("requests = %d, want %d", res.Requests, res.Recommends+res.Observes)
	}
	if res.Recommend.Count != res.Recommends || res.Observe.Count != res.Observes {
		t.Fatalf("latency summaries inconsistent with counts: %+v / %+v", res.Recommend, res.Observe)
	}
	if res.BehindFraction < 0 || res.BehindFraction > 1 {
		t.Fatalf("behind fraction %g outside [0, 1]", res.BehindFraction)
	}
}
