package armset

import (
	"errors"
	"math"
	"testing"

	"banditware/internal/hardware"
)

func TestLifecycleTransitions(t *testing.T) {
	l := NewLifecycle(2)
	if !l.AllActive() || l.Len() != 2 {
		t.Fatalf("fresh lifecycle: AllActive=%v Len=%d", l.AllActive(), l.Len())
	}

	idx := l.Add(true)
	if idx != 2 || l.Status(2) != Trial {
		t.Fatalf("Add(trial) = %d status %s", idx, l.Status(2))
	}
	if l.Servable(2) {
		t.Fatal("trial arm must not be servable")
	}

	// Trial → Active via promote.
	if err := l.Promote(2); err != nil {
		t.Fatalf("Promote(trial): %v", err)
	}
	if !l.Servable(2) {
		t.Fatal("promoted arm must be servable")
	}
	// Promote of an active arm is an invalid transition.
	if err := l.Promote(2); !errors.Is(err, ErrState) {
		t.Fatalf("Promote(active) = %v, want ErrState", err)
	}

	// Active → Draining, then retire.
	if err := l.Drain(0); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if l.Servable(0) {
		t.Fatal("draining arm must not be servable")
	}
	if err := l.Drain(0); !errors.Is(err, ErrState) {
		t.Fatalf("Drain(draining) = %v, want ErrState", err)
	}
	if err := l.Retire(1); !errors.Is(err, ErrState) {
		t.Fatalf("Retire(active) = %v, want ErrState", err)
	}
	if err := l.Retire(0); err != nil {
		t.Fatalf("Retire(draining): %v", err)
	}
	if l.Len() != 2 {
		t.Fatalf("Len after retire = %d, want 2", l.Len())
	}

	// Out-of-range everywhere.
	if err := l.Drain(9); !errors.Is(err, ErrArm) {
		t.Fatalf("Drain(9) = %v, want ErrArm", err)
	}
	if err := l.Promote(-1); !errors.Is(err, ErrArm) {
		t.Fatalf("Promote(-1) = %v, want ErrArm", err)
	}
	if err := l.Retire(9); !errors.Is(err, ErrArm) {
		t.Fatalf("Retire(9) = %v, want ErrArm", err)
	}
}

func TestLifecycleLastActiveGuard(t *testing.T) {
	l := NewLifecycle(1)
	if err := l.Drain(0); !errors.Is(err, ErrLastActive) {
		t.Fatalf("Drain(last active) = %v, want ErrLastActive", err)
	}
	l.Add(true) // a trial arm doesn't count as active
	if err := l.Drain(0); !errors.Is(err, ErrLastActive) {
		t.Fatalf("Drain(last active with trial present) = %v, want ErrLastActive", err)
	}
	if err := l.Drain(1); err != nil { // draining the trial arm is fine
		t.Fatalf("Drain(trial): %v", err)
	}
}

func TestStatusRoundTrip(t *testing.T) {
	for _, s := range []Status{Active, Trial, Draining} {
		got, err := ParseStatus(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseStatus(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseStatus("bogus"); err == nil {
		t.Fatal("ParseStatus(bogus) succeeded")
	}
}

func TestParseWarm(t *testing.T) {
	cases := map[string]Warm{"": WarmCold, "cold": WarmCold, "pooled": WarmPooled, "nearest": WarmNearest}
	for in, want := range cases {
		got, err := ParseWarm(in)
		if err != nil || got != want {
			t.Fatalf("ParseWarm(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseWarm("tepid"); err == nil {
		t.Fatal("ParseWarm(tepid) succeeded")
	}
}

func TestNearest(t *testing.T) {
	set := hardware.Set{
		{Name: "small", CPUs: 2, MemoryGB: 8},
		{Name: "big", CPUs: 32, MemoryGB: 128},
		{Name: "gpu", CPUs: 8, MemoryGB: 64, GPUs: 2},
	}
	if got := Nearest(set, hardware.Config{Name: "n", CPUs: 4, MemoryGB: 16}, nil); got != 0 {
		t.Fatalf("Nearest(small-ish) = %d, want 0", got)
	}
	if got := Nearest(set, hardware.Config{Name: "n", CPUs: 16, MemoryGB: 96, GPUs: 1}, nil); got != 2 {
		t.Fatalf("Nearest(gpu-ish) = %d, want 2", got)
	}
	// Eligibility filter excludes the natural neighbor.
	got := Nearest(set, hardware.Config{Name: "n", CPUs: 4, MemoryGB: 16}, func(i int) bool { return i != 0 })
	if got != 2 && got != 1 {
		t.Fatalf("Nearest(filtered) = %d, want an eligible arm", got)
	}
	if got := Nearest(set, hardware.Config{Name: "n", CPUs: 4}, func(int) bool { return false }); got != -1 {
		t.Fatalf("Nearest(none eligible) = %d, want -1", got)
	}
	if got := Nearest(nil, hardware.Config{Name: "n", CPUs: 4}, nil); got != -1 {
		t.Fatalf("Nearest(empty set) = %d, want -1", got)
	}
}

func TestCacheConfigValidation(t *testing.T) {
	c, err := NewCache(CacheConfig{})
	if err != nil {
		t.Fatalf("NewCache(defaults): %v", err)
	}
	cfg := c.Config()
	if cfg.Capacity != DefaultCacheCapacity || cfg.Budget != DefaultCacheBudget || cfg.Bits != DefaultCacheBits {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	for _, bad := range []CacheConfig{
		{Capacity: -1},
		{Budget: 1.0},
		{Budget: -0.5},
		{Budget: math.NaN()},
		{Bits: 53},
		{Bits: -1},
	} {
		if _, err := NewCache(bad); err == nil {
			t.Fatalf("NewCache(%+v) succeeded, want error", bad)
		}
	}
}

func TestCacheHitMissFallthrough(t *testing.T) {
	c, err := NewCache(CacheConfig{Capacity: 16, Budget: 0.25, Bits: 16})
	if err != nil {
		t.Fatal(err)
	}
	fp := c.Fingerprint([]float64{1.5, 2.5})
	if _, ok := c.Lookup(fp); ok {
		t.Fatal("lookup on empty cache hit")
	}
	c.Store(fp, 3)
	hits, falls := 0, 0
	for i := 0; i < 1000; i++ {
		if arm, ok := c.Lookup(fp); ok {
			if arm != 3 {
				t.Fatalf("cached arm = %d, want 3", arm)
			}
			hits++
		} else {
			falls++
		}
	}
	if falls != 250 {
		t.Fatalf("fall-throughs = %d over 1000 potential hits at budget 0.25, want exactly 250", falls)
	}
	h, m, f := c.Counters()
	if h != uint64(hits) || m != 1 || f != uint64(falls) {
		t.Fatalf("counters = %d/%d/%d, want %d/1/%d", h, m, f, hits, falls)
	}
}

func TestCacheQuantization(t *testing.T) {
	c, err := NewCache(CacheConfig{Bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	a := c.Fingerprint([]float64{1.0000001, 2.0})
	b := c.Fingerprint([]float64{1.0000002, 2.0})
	if a != b {
		t.Fatal("near-identical contexts should collide at 8 bits")
	}
	d := c.Fingerprint([]float64{1.5, 2.0})
	if a == d {
		t.Fatal("distinct contexts should not collide")
	}
}

func TestCacheEvictionFIFO(t *testing.T) {
	c, err := NewCache(CacheConfig{Capacity: 2, Budget: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	f1 := c.Fingerprint([]float64{1})
	f2 := c.Fingerprint([]float64{2})
	f3 := c.Fingerprint([]float64{3})
	c.Store(f1, 0)
	c.Store(f2, 1)
	c.Store(f3, 2) // evicts f1
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, ok := c.Lookup(f1); ok {
		t.Fatal("f1 should have been evicted")
	}
	if arm, ok := c.Lookup(f2); !ok || arm != 1 {
		t.Fatalf("f2 lookup = %d,%v", arm, ok)
	}
	if arm, ok := c.Lookup(f3); !ok || arm != 2 {
		t.Fatalf("f3 lookup = %d,%v", arm, ok)
	}
	c.Store(f1, 5) // evicts f2 (oldest remaining)
	if _, ok := c.Lookup(f2); ok {
		t.Fatal("f2 should have been evicted")
	}
}

func TestCacheResetKeepsCounters(t *testing.T) {
	c, err := NewCache(CacheConfig{Capacity: 8, Budget: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	fp := c.Fingerprint([]float64{4, 2})
	c.Store(fp, 1)
	if _, ok := c.Lookup(fp); !ok {
		t.Fatal("expected hit before reset")
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len after reset = %d", c.Len())
	}
	if _, ok := c.Lookup(fp); ok {
		t.Fatal("hit after reset")
	}
	h, m, _ := c.Counters()
	if h != 1 || m != 1 {
		t.Fatalf("counters after reset = %d/%d, want 1/1", h, m)
	}
	c.SetCounters(10, 20, 30)
	h, m, f := c.Counters()
	if h != 10 || m != 20 || f != 30 {
		t.Fatalf("SetCounters round-trip = %d/%d/%d", h, m, f)
	}
}
