// Package armset manages the lifecycle of a stream's arm set: which
// arms are serving, which are being trialled on shadow traffic, and
// which are draining toward retirement. It also provides warm-start
// selection for newly added arms (pooled prior or nearest-neighbor by
// hardware feature distance) and a bounded recommendation cache with
// an explicit exploration budget.
//
// The package is deliberately free of policy/estimator knowledge: it
// tracks per-arm status and answers "may this arm serve?", while the
// serving layer owns growing or shrinking the underlying estimators.
package armset

import (
	"errors"
	"fmt"

	"banditware/internal/hardware"
)

// Status is the lifecycle state of a single arm.
type Status uint8

const (
	// Active arms serve live traffic.
	Active Status = iota
	// Trial arms exist in the estimator and learn from shadow
	// replay, but are never chosen for live recommendations until
	// promoted.
	Trial
	// Draining arms stop receiving new recommendations; pending
	// tickets still resolve, and the arm can be retired once the
	// operator is satisfied (or promoted back).
	Draining
)

func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Trial:
		return "trial"
	case Draining:
		return "draining"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// ParseStatus is the inverse of Status.String.
func ParseStatus(s string) (Status, error) {
	switch s {
	case "active":
		return Active, nil
	case "trial":
		return Trial, nil
	case "draining":
		return Draining, nil
	default:
		return Active, fmt.Errorf("armset: unknown status %q", s)
	}
}

var (
	// ErrArm reports an arm index outside the current set.
	ErrArm = errors.New("armset: arm index out of range")
	// ErrState reports a lifecycle transition that is not allowed
	// from the arm's current status.
	ErrState = errors.New("armset: invalid lifecycle transition")
	// ErrLastActive reports an operation that would leave the
	// stream with no active arm.
	ErrLastActive = errors.New("armset: operation would leave no active arm")
)

// Lifecycle tracks per-arm status for one stream. It is not
// goroutine-safe; callers hold the stream lock.
type Lifecycle struct {
	statuses []Status
}

// NewLifecycle returns a lifecycle with n active arms.
func NewLifecycle(n int) *Lifecycle {
	return &Lifecycle{statuses: make([]Status, n)}
}

// Len reports the number of arms tracked.
func (l *Lifecycle) Len() int { return len(l.statuses) }

// Status returns the status of arm i, or Active if out of range.
func (l *Lifecycle) Status(i int) Status {
	if i < 0 || i >= len(l.statuses) {
		return Active
	}
	return l.statuses[i]
}

// Statuses returns a copy of all per-arm statuses.
func (l *Lifecycle) Statuses() []Status {
	out := make([]Status, len(l.statuses))
	copy(out, l.statuses)
	return out
}

// AllActive reports whether every arm is in the default Active state.
func (l *Lifecycle) AllActive() bool {
	for _, s := range l.statuses {
		if s != Active {
			return false
		}
	}
	return true
}

// Servable reports whether arm i may be chosen for live traffic.
func (l *Lifecycle) Servable(i int) bool {
	if i < 0 || i >= len(l.statuses) {
		return false
	}
	return l.statuses[i] == Active
}

// ActiveIndices returns the indices of all active arms in order.
func (l *Lifecycle) ActiveIndices() []int {
	out := make([]int, 0, len(l.statuses))
	for i, s := range l.statuses {
		if s == Active {
			out = append(out, i)
		}
	}
	return out
}

// Add appends a new arm, either live (Active) or as a shadow Trial,
// and returns its index.
func (l *Lifecycle) Add(trial bool) int {
	st := Active
	if trial {
		st = Trial
	}
	l.statuses = append(l.statuses, st)
	return len(l.statuses) - 1
}

// Drain moves an Active or Trial arm to Draining. Draining the last
// active arm is rejected: a stream must always have something to
// serve.
func (l *Lifecycle) Drain(i int) error {
	if i < 0 || i >= len(l.statuses) {
		return ErrArm
	}
	switch l.statuses[i] {
	case Active:
		if l.countActive() == 1 {
			return ErrLastActive
		}
	case Trial:
		// fine: trial arms never served live traffic
	default:
		return fmt.Errorf("%w: arm %d is %s", ErrState, i, l.statuses[i])
	}
	l.statuses[i] = Draining
	return nil
}

// Promote moves a Trial or Draining arm back to Active.
func (l *Lifecycle) Promote(i int) error {
	if i < 0 || i >= len(l.statuses) {
		return ErrArm
	}
	switch l.statuses[i] {
	case Trial, Draining:
		l.statuses[i] = Active
		return nil
	default:
		return fmt.Errorf("%w: arm %d is already %s", ErrState, i, l.statuses[i])
	}
}

// Retire removes arm i from the set. Only Draining or Trial arms can
// be retired — an Active arm must be drained first so in-flight
// traffic quiesces deliberately.
func (l *Lifecycle) Retire(i int) error {
	if i < 0 || i >= len(l.statuses) {
		return ErrArm
	}
	switch l.statuses[i] {
	case Draining, Trial:
	default:
		return fmt.Errorf("%w: arm %d is %s; drain it first", ErrState, i, l.statuses[i])
	}
	l.statuses = append(l.statuses[:i], l.statuses[i+1:]...)
	return nil
}

// Restore replaces the tracked statuses wholesale (snapshot load).
func (l *Lifecycle) Restore(statuses []Status) {
	l.statuses = make([]Status, len(statuses))
	copy(l.statuses, statuses)
}

func (l *Lifecycle) countActive() int {
	n := 0
	for _, s := range l.statuses {
		if s == Active {
			n++
		}
	}
	return n
}

// Warm selects how a newly added arm's estimator is initialized.
type Warm uint8

const (
	// WarmCold starts the new arm from the ridge prior only.
	WarmCold Warm = iota
	// WarmPooled seeds the new arm with a scaled average of every
	// existing arm's sufficient statistics.
	WarmPooled
	// WarmNearest seeds the new arm from the existing arm whose
	// hardware configuration is closest in feature space.
	WarmNearest
)

func (w Warm) String() string {
	switch w {
	case WarmCold:
		return "cold"
	case WarmPooled:
		return "pooled"
	case WarmNearest:
		return "nearest"
	default:
		return fmt.Sprintf("warm(%d)", uint8(w))
	}
}

// ParseWarm parses a warm-start mode; the empty string means cold.
func ParseWarm(s string) (Warm, error) {
	switch s {
	case "", "cold":
		return WarmCold, nil
	case "pooled":
		return WarmPooled, nil
	case "nearest":
		return WarmNearest, nil
	default:
		return WarmCold, fmt.Errorf("armset: unknown warm-start mode %q (want cold, pooled, or nearest)", s)
	}
}

// Nearest returns the index of the eligible arm in set whose hardware
// is closest to cfg under a normalized squared distance over (CPUs,
// MemoryGB, GPUs), or -1 if no arm is eligible. Each dimension is
// scaled by its maximum across set and cfg so no single axis
// dominates.
func Nearest(set hardware.Set, cfg hardware.Config, eligible func(int) bool) int {
	maxC := float64(cfg.CPUs)
	maxM := cfg.MemoryGB
	maxG := float64(cfg.GPUs)
	for _, h := range set {
		if float64(h.CPUs) > maxC {
			maxC = float64(h.CPUs)
		}
		if h.MemoryGB > maxM {
			maxM = h.MemoryGB
		}
		if float64(h.GPUs) > maxG {
			maxG = float64(h.GPUs)
		}
	}
	norm := func(v, max float64) float64 {
		if max <= 0 {
			return 0
		}
		return v / max
	}
	best, bestDist := -1, 0.0
	for i, h := range set {
		if eligible != nil && !eligible(i) {
			continue
		}
		dc := norm(float64(h.CPUs), maxC) - norm(float64(cfg.CPUs), maxC)
		dm := norm(h.MemoryGB, maxM) - norm(cfg.MemoryGB, maxM)
		dg := norm(float64(h.GPUs), maxG) - norm(float64(cfg.GPUs), maxG)
		d := dc*dc + dm*dm + dg*dg
		if best == -1 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}
