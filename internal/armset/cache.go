package armset

import (
	"fmt"
	"math"
)

// CacheConfig sizes and tunes a recommendation cache.
type CacheConfig struct {
	// Capacity bounds the number of cached fingerprints (FIFO
	// eviction). Zero means DefaultCacheCapacity.
	Capacity int
	// Budget is the exploration fall-through rate in [0,1): that
	// fraction of would-be cache hits is deliberately routed to
	// the policy so learning never starves. Zero means
	// DefaultCacheBudget.
	Budget float64
	// Bits is the number of float64 mantissa bits retained when
	// fingerprinting a context (1..52). Fewer bits quantize more
	// aggressively, raising the hit rate at the cost of serving
	// slightly stale arms near decision boundaries. Zero means
	// DefaultCacheBits.
	Bits int
}

const (
	// DefaultCacheCapacity bounds a cache when Capacity is unset.
	DefaultCacheCapacity = 4096
	// DefaultCacheBudget is the exploration fall-through rate when
	// Budget is unset: 5% of potential hits consult the policy.
	DefaultCacheBudget = 0.05
	// DefaultCacheBits retains 16 mantissa bits by default —
	// roughly 4–5 significant decimal digits, far finer than any
	// schema-normalized feature needs.
	DefaultCacheBits = 16
)

// withDefaults fills zero fields and validates the rest.
func (c CacheConfig) withDefaults() (CacheConfig, error) {
	if c.Capacity == 0 {
		c.Capacity = DefaultCacheCapacity
	}
	if c.Capacity < 0 {
		return c, fmt.Errorf("armset: cache capacity %d must be positive", c.Capacity)
	}
	if c.Budget == 0 {
		c.Budget = DefaultCacheBudget
	}
	if c.Budget < 0 || c.Budget >= 1 || math.IsNaN(c.Budget) {
		return c, fmt.Errorf("armset: cache budget %v must be in [0,1)", c.Budget)
	}
	if c.Bits == 0 {
		c.Bits = DefaultCacheBits
	}
	if c.Bits < 1 || c.Bits > 52 {
		return c, fmt.Errorf("armset: cache bits %d must be in 1..52", c.Bits)
	}
	return c, nil
}

// Cache is a bounded context-fingerprint → arm map that serves
// repeated exploit decisions in O(1) without touching the policy. A
// deterministic exploration budget routes a fixed fraction of
// would-be hits back to the policy ("fall-through") so the model
// keeps learning on hot contexts. Not goroutine-safe; callers hold
// the stream lock.
type Cache struct {
	cfg  CacheConfig
	mask uint64

	m     map[uint64]int32
	order []uint64 // FIFO ring of inserted fingerprints
	head  int

	acc float64 // fall-through accumulator: one fall-through per 1/budget hits

	hits         uint64
	misses       uint64
	fallthroughs uint64
}

// NewCache builds a cache, filling config defaults.
func NewCache(cfg CacheConfig) (*Cache, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Cache{
		cfg:   cfg,
		mask:  ^uint64(0) << (52 - uint(cfg.Bits)),
		m:     make(map[uint64]int32, cfg.Capacity),
		order: make([]uint64, 0, cfg.Capacity),
	}, nil
}

// Config returns the cache's effective (default-filled) config.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Len reports the number of cached entries.
func (c *Cache) Len() int { return len(c.m) }

// Counters returns cumulative hit / miss / fall-through counts.
// Counters survive Reset: they describe the stream's serving history,
// not the current entry set, and they are per-replica (never shipped
// in delta envelopes — they are not additive across a fleet).
func (c *Cache) Counters() (hits, misses, fallthroughs uint64) {
	return c.hits, c.misses, c.fallthroughs
}

// SetCounters restores counters from a snapshot.
func (c *Cache) SetCounters(hits, misses, fallthroughs uint64) {
	c.hits, c.misses, c.fallthroughs = hits, misses, fallthroughs
}

// Fingerprint hashes a context vector after masking each value to the
// configured number of mantissa bits (FNV-1a over the quantized
// bits). Vectors differing only below the quantization threshold
// collide on purpose.
func (c *Cache) Fingerprint(x []float64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range x {
		b := math.Float64bits(v) & c.mask
		for i := 0; i < 8; i++ {
			h ^= b & 0xff
			h *= prime64
			b >>= 8
		}
	}
	return h
}

// Lookup consults the cache. It returns (arm, true) on a served hit.
// A miss, or a hit consumed by the exploration budget (fall-through),
// returns (-1, false) and the caller must ask the policy.
func (c *Cache) Lookup(fp uint64) (int, bool) {
	arm, ok := c.m[fp]
	if !ok {
		c.misses++
		return -1, false
	}
	c.acc += c.cfg.Budget
	if c.acc >= 1 {
		c.acc--
		c.fallthroughs++
		return -1, false
	}
	c.hits++
	return int(arm), true
}

// Store records an exploit decision for a fingerprint. Explored
// (random) decisions must not be stored — the caller filters them.
// Existing entries are left in place; at capacity the oldest entry is
// evicted first.
func (c *Cache) Store(fp uint64, arm int) {
	if _, ok := c.m[fp]; ok {
		c.m[fp] = int32(arm)
		return
	}
	if len(c.m) >= c.cfg.Capacity {
		old := c.order[c.head]
		delete(c.m, old)
		c.order[c.head] = fp
		c.head = (c.head + 1) % len(c.order)
	} else {
		c.order = append(c.order, fp)
	}
	c.m[fp] = int32(arm)
}

// Reset drops every cached entry (counters survive; see Counters).
// Called on drift resets and on any arm-set change: cached arm
// indices are positional, so add/retire invalidates them wholesale.
func (c *Cache) Reset() {
	if len(c.m) == 0 {
		return
	}
	c.m = make(map[uint64]int32, c.cfg.Capacity)
	c.order = c.order[:0]
	c.head = 0
}
