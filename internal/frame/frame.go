// Package frame implements a small columnar dataframe: typed columns
// (float64, int64, string), CSV input/output with type inference, and the
// relational operations the BanditWare input pipeline needs — select,
// filter, sort, group-by aggregation, and inner join. It is the stand-in
// for the pandas DataFrame the paper feeds to its framework (Figure 1).
package frame

import (
	"errors"
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates column element types.
type Kind int

const (
	Float Kind = iota
	Int
	String
)

func (k Kind) String() string {
	switch k {
	case Float:
		return "float"
	case Int:
		return "int"
	case String:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Errors shared by frame operations.
var (
	ErrNoColumn  = errors.New("frame: no such column")
	ErrKind      = errors.New("frame: wrong column kind")
	ErrLength    = errors.New("frame: column length mismatch")
	ErrDupColumn = errors.New("frame: duplicate column name")
)

// Column is a named, typed vector. Exactly one of the value slices is
// non-nil, matching Kind.
type Column struct {
	Name    string
	Kind    Kind
	Floats  []float64
	Ints    []int64
	Strings []string
}

// Len returns the number of elements in the column.
func (c *Column) Len() int {
	switch c.Kind {
	case Float:
		return len(c.Floats)
	case Int:
		return len(c.Ints)
	default:
		return len(c.Strings)
	}
}

// AsFloat returns element i coerced to float64 (ints convert; strings
// return NaN). Used when feeding mixed frames into numeric models.
func (c *Column) AsFloat(i int) float64 {
	switch c.Kind {
	case Float:
		return c.Floats[i]
	case Int:
		return float64(c.Ints[i])
	default:
		return math.NaN()
	}
}

// cell returns element i as a comparable key for joins/group-by.
func (c *Column) cell(i int) string {
	switch c.Kind {
	case Float:
		return strconv.FormatFloat(c.Floats[i], 'g', -1, 64)
	case Int:
		return strconv.FormatInt(c.Ints[i], 10)
	default:
		return c.Strings[i]
	}
}

// format renders element i for CSV output.
func (c *Column) format(i int) string { return c.cell(i) }

// slice returns a column holding only the rows in idx, preserving order.
func (c *Column) slice(idx []int) *Column {
	out := &Column{Name: c.Name, Kind: c.Kind}
	switch c.Kind {
	case Float:
		out.Floats = make([]float64, len(idx))
		for j, i := range idx {
			out.Floats[j] = c.Floats[i]
		}
	case Int:
		out.Ints = make([]int64, len(idx))
		for j, i := range idx {
			out.Ints[j] = c.Ints[i]
		}
	default:
		out.Strings = make([]string, len(idx))
		for j, i := range idx {
			out.Strings[j] = c.Strings[i]
		}
	}
	return out
}

// FloatCol constructs a float column.
func FloatCol(name string, vals []float64) *Column {
	return &Column{Name: name, Kind: Float, Floats: vals}
}

// IntCol constructs an int column.
func IntCol(name string, vals []int64) *Column {
	return &Column{Name: name, Kind: Int, Ints: vals}
}

// StringCol constructs a string column.
func StringCol(name string, vals []string) *Column {
	return &Column{Name: name, Kind: String, Strings: vals}
}

// Frame is an ordered collection of equal-length columns.
type Frame struct {
	cols  []*Column
	index map[string]int
}

// New builds a frame from columns. All columns must have equal length and
// distinct names.
func New(cols ...*Column) (*Frame, error) {
	f := &Frame{index: make(map[string]int, len(cols))}
	for _, c := range cols {
		if err := f.AddColumn(c); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// AddColumn appends a column; its length must match existing columns.
func (f *Frame) AddColumn(c *Column) error {
	if _, dup := f.index[c.Name]; dup {
		return fmt.Errorf("%w: %q", ErrDupColumn, c.Name)
	}
	if len(f.cols) > 0 && c.Len() != f.NumRows() {
		return fmt.Errorf("%w: column %q has %d rows, frame has %d",
			ErrLength, c.Name, c.Len(), f.NumRows())
	}
	f.index[c.Name] = len(f.cols)
	f.cols = append(f.cols, c)
	return nil
}

// NumRows returns the number of rows (0 for a frame with no columns).
func (f *Frame) NumRows() int {
	if len(f.cols) == 0 {
		return 0
	}
	return f.cols[0].Len()
}

// NumCols returns the number of columns.
func (f *Frame) NumCols() int { return len(f.cols) }

// Names returns the column names in order.
func (f *Frame) Names() []string {
	out := make([]string, len(f.cols))
	for i, c := range f.cols {
		out[i] = c.Name
	}
	return out
}

// Column returns the named column or ErrNoColumn.
func (f *Frame) Column(name string) (*Column, error) {
	i, ok := f.index[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoColumn, name)
	}
	return f.cols[i], nil
}

// Floats returns the named column's float data, coercing an int column.
// It returns ErrKind for string columns.
func (f *Frame) Floats(name string) ([]float64, error) {
	c, err := f.Column(name)
	if err != nil {
		return nil, err
	}
	switch c.Kind {
	case Float:
		return c.Floats, nil
	case Int:
		out := make([]float64, len(c.Ints))
		for i, v := range c.Ints {
			out[i] = float64(v)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: %q is %v", ErrKind, name, c.Kind)
	}
}

// Select returns a new frame with only the named columns, in the given
// order. The returned frame shares column storage with f.
func (f *Frame) Select(names ...string) (*Frame, error) {
	out := &Frame{index: make(map[string]int, len(names))}
	for _, n := range names {
		c, err := f.Column(n)
		if err != nil {
			return nil, err
		}
		if err := out.AddColumn(c); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Take returns a new frame holding the rows of f at the given indices, in
// order. Indices may repeat.
func (f *Frame) Take(idx []int) *Frame {
	out := &Frame{index: make(map[string]int, len(f.cols))}
	for _, c := range f.cols {
		// AddColumn cannot fail here: names are unique and lengths equal.
		_ = out.AddColumn(c.slice(idx))
	}
	return out
}

// Head returns the first n rows (all rows if n exceeds NumRows).
func (f *Frame) Head(n int) *Frame {
	if n > f.NumRows() {
		n = f.NumRows()
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return f.Take(idx)
}

// Row is a cursor over one row of a frame.
type Row struct {
	f *Frame
	i int
}

// RowAt returns a cursor for row i.
func (f *Frame) RowAt(i int) Row { return Row{f: f, i: i} }

// Float returns the named cell coerced to float64 (NaN for strings or
// missing columns).
func (r Row) Float(name string) float64 {
	c, err := r.f.Column(name)
	if err != nil {
		return math.NaN()
	}
	return c.AsFloat(r.i)
}

// String returns the named cell rendered as a string ("" for missing).
func (r Row) String(name string) string {
	c, err := r.f.Column(name)
	if err != nil {
		return ""
	}
	return c.cell(r.i)
}

// Index returns the row index of the cursor.
func (r Row) Index() int { return r.i }
