package frame

import (
	"fmt"

	"banditware/internal/stats"
)

// WithColumn returns a new frame equal to f plus a derived float column
// computed row-by-row. The input frame is unchanged.
func (f *Frame) WithColumn(name string, compute func(Row) float64) (*Frame, error) {
	vals := make([]float64, f.NumRows())
	for i := range vals {
		vals[i] = compute(f.RowAt(i))
	}
	out := &Frame{index: make(map[string]int, len(f.cols)+1)}
	for _, c := range f.cols {
		if err := out.AddColumn(c); err != nil {
			return nil, err
		}
	}
	if err := out.AddColumn(FloatCol(name, vals)); err != nil {
		return nil, err
	}
	return out, nil
}

// Describe returns a summary frame with one row per numeric column:
// name, count, mean, std, min, median, max — the pandas describe()
// analogue used when inspecting traces interactively.
func (f *Frame) Describe() (*Frame, error) {
	var names []string
	var count []int64
	var mean, std, min, median, max []float64
	for _, c := range f.cols {
		if c.Kind == String {
			continue
		}
		vals := make([]float64, c.Len())
		for i := range vals {
			vals[i] = c.AsFloat(i)
		}
		s, err := stats.Summarize(vals)
		if err != nil {
			return nil, fmt.Errorf("frame: describing %q: %w", c.Name, err)
		}
		names = append(names, c.Name)
		count = append(count, int64(s.N))
		mean = append(mean, s.Mean)
		std = append(std, s.Std)
		min = append(min, s.Min)
		median = append(median, s.Median)
		max = append(max, s.Max)
	}
	return New(
		StringCol("column", names),
		IntCol("count", count),
		FloatCol("mean", mean),
		FloatCol("std", std),
		FloatCol("min", min),
		FloatCol("median", median),
		FloatCol("max", max),
	)
}

// LeftJoin joins f with other on the named key, keeping every left row;
// unmatched rows carry zero values ("" / 0) in the right columns. Column
// collisions take the suffix, as in InnerJoin.
func (f *Frame) LeftJoin(other *Frame, on, suffix string) (*Frame, error) {
	kl, err := f.Column(on)
	if err != nil {
		return nil, err
	}
	kr, err := other.Column(on)
	if err != nil {
		return nil, err
	}
	buckets := map[string][]int{}
	for i := 0; i < other.NumRows(); i++ {
		k := kr.cell(i)
		buckets[k] = append(buckets[k], i)
	}
	var leftIdx []int
	var rightIdx []int // -1 = no match
	for i := 0; i < f.NumRows(); i++ {
		matches := buckets[kl.cell(i)]
		if len(matches) == 0 {
			leftIdx = append(leftIdx, i)
			rightIdx = append(rightIdx, -1)
			continue
		}
		for _, j := range matches {
			leftIdx = append(leftIdx, i)
			rightIdx = append(rightIdx, j)
		}
	}
	out := &Frame{index: map[string]int{}}
	for _, c := range f.cols {
		if err := out.AddColumn(c.slice(leftIdx)); err != nil {
			return nil, err
		}
	}
	for _, c := range other.cols {
		if c.Name == on {
			continue
		}
		nc := &Column{Name: c.Name, Kind: c.Kind}
		for _, j := range rightIdx {
			switch c.Kind {
			case Float:
				if j < 0 {
					nc.Floats = append(nc.Floats, 0)
				} else {
					nc.Floats = append(nc.Floats, c.Floats[j])
				}
			case Int:
				if j < 0 {
					nc.Ints = append(nc.Ints, 0)
				} else {
					nc.Ints = append(nc.Ints, c.Ints[j])
				}
			default:
				if j < 0 {
					nc.Strings = append(nc.Strings, "")
				} else {
					nc.Strings = append(nc.Strings, c.Strings[j])
				}
			}
		}
		if _, dup := out.index[nc.Name]; dup {
			nc.Name += suffix
			if _, dup2 := out.index[nc.Name]; dup2 {
				return nil, fmt.Errorf("%w: %q even with suffix", ErrDupColumn, nc.Name)
			}
		}
		if err := out.AddColumn(nc); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DropDuplicates returns the rows whose rendered value of the named
// column appears for the first time (first occurrence kept).
func (f *Frame) DropDuplicates(by string) (*Frame, error) {
	c, err := f.Column(by)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var idx []int
	for i := 0; i < f.NumRows(); i++ {
		k := c.cell(i)
		if seen[k] {
			continue
		}
		seen[k] = true
		idx = append(idx, i)
	}
	return f.Take(idx), nil
}
