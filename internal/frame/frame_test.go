package frame

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"banditware/internal/rng"
	"banditware/internal/stats"
)

func sampleFrame(t *testing.T) *Frame {
	t.Helper()
	f, err := New(
		IntCol("id", []int64{1, 2, 3, 4}),
		FloatCol("runtime", []float64{10.5, 20.25, 5.0, 7.75}),
		StringCol("hw", []string{"H0", "H1", "H0", "H2"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewAndAccessors(t *testing.T) {
	f := sampleFrame(t)
	if f.NumRows() != 4 || f.NumCols() != 3 {
		t.Fatalf("shape = %dx%d", f.NumRows(), f.NumCols())
	}
	got := f.Names()
	want := []string{"id", "runtime", "hw"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v", got)
		}
	}
	c, err := f.Column("runtime")
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind != Float || c.Floats[2] != 5.0 {
		t.Fatalf("bad column: %+v", c)
	}
	if _, err := f.Column("nope"); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("err = %v, want ErrNoColumn", err)
	}
}

func TestDuplicateColumn(t *testing.T) {
	_, err := New(IntCol("a", []int64{1}), FloatCol("a", []float64{2}))
	if !errors.Is(err, ErrDupColumn) {
		t.Fatalf("err = %v, want ErrDupColumn", err)
	}
}

func TestLengthMismatch(t *testing.T) {
	_, err := New(IntCol("a", []int64{1, 2}), FloatCol("b", []float64{1}))
	if !errors.Is(err, ErrLength) {
		t.Fatalf("err = %v, want ErrLength", err)
	}
}

func TestFloatsCoercion(t *testing.T) {
	f := sampleFrame(t)
	ints, err := f.Floats("id")
	if err != nil {
		t.Fatal(err)
	}
	if ints[3] != 4.0 {
		t.Fatalf("int coercion failed: %v", ints)
	}
	if _, err := f.Floats("hw"); !errors.Is(err, ErrKind) {
		t.Fatalf("err = %v, want ErrKind", err)
	}
}

func TestSelect(t *testing.T) {
	f := sampleFrame(t)
	sub, err := f.Select("hw", "id")
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumCols() != 2 || sub.Names()[0] != "hw" {
		t.Fatalf("Select = %v", sub.Names())
	}
	if _, err := f.Select("missing"); !errors.Is(err, ErrNoColumn) {
		t.Fatal("Select of missing column should error")
	}
}

func TestTakeAndHead(t *testing.T) {
	f := sampleFrame(t)
	taken := f.Take([]int{3, 0, 0})
	if taken.NumRows() != 3 {
		t.Fatalf("Take rows = %d", taken.NumRows())
	}
	if taken.RowAt(0).String("hw") != "H2" || taken.RowAt(1).Float("runtime") != 10.5 {
		t.Fatal("Take reordered incorrectly")
	}
	h := f.Head(2)
	if h.NumRows() != 2 {
		t.Fatalf("Head rows = %d", h.NumRows())
	}
	if f.Head(100).NumRows() != 4 {
		t.Fatal("Head beyond length should clamp")
	}
}

func TestRowCursor(t *testing.T) {
	f := sampleFrame(t)
	r := f.RowAt(1)
	if r.Float("runtime") != 20.25 || r.String("hw") != "H1" || r.Index() != 1 {
		t.Fatal("row cursor misread")
	}
	if !math.IsNaN(r.Float("hw")) {
		t.Fatal("Float of string column should be NaN")
	}
	if !math.IsNaN(r.Float("missing")) || r.String("missing") != "" {
		t.Fatal("missing column access should degrade gracefully")
	}
}

func TestFilter(t *testing.T) {
	f := sampleFrame(t)
	fast := f.Filter(func(r Row) bool { return r.Float("runtime") < 11 })
	if fast.NumRows() != 3 {
		t.Fatalf("Filter rows = %d, want 3", fast.NumRows())
	}
	none := f.Filter(func(Row) bool { return false })
	if none.NumRows() != 0 {
		t.Fatal("empty filter should keep zero rows")
	}
}

func TestSortBy(t *testing.T) {
	f := sampleFrame(t)
	sorted, err := f.SortBy("runtime")
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(-1)
	for i := 0; i < sorted.NumRows(); i++ {
		v := sorted.RowAt(i).Float("runtime")
		if v < prev {
			t.Fatalf("not sorted at %d: %v < %v", i, v, prev)
		}
		prev = v
	}
	byName, err := f.SortBy("hw")
	if err != nil {
		t.Fatal(err)
	}
	if byName.RowAt(0).String("hw") != "H0" {
		t.Fatal("string sort failed")
	}
	if _, err := f.SortBy("nope"); !errors.Is(err, ErrNoColumn) {
		t.Fatal("SortBy missing column should error")
	}
}

func TestGroupBy(t *testing.T) {
	f := sampleFrame(t)
	groups, err := f.GroupBy("hw")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	if groups[0].Key != "H0" || len(groups[0].Rows) != 2 {
		t.Fatalf("first group = %+v", groups[0])
	}
	total := 0
	for _, g := range groups {
		total += len(g.Rows)
	}
	if total != f.NumRows() {
		t.Fatalf("group row conservation violated: %d != %d", total, f.NumRows())
	}
}

func TestAgg(t *testing.T) {
	f := sampleFrame(t)
	agg, err := f.Agg("hw", "runtime", "mean_runtime", stats.Mean)
	if err != nil {
		t.Fatal(err)
	}
	if agg.NumRows() != 3 {
		t.Fatalf("agg rows = %d", agg.NumRows())
	}
	if got := agg.RowAt(0).Float("mean_runtime"); got != 7.75 {
		t.Fatalf("H0 mean = %v, want 7.75", got)
	}
}

func TestInnerJoin(t *testing.T) {
	left, _ := New(
		IntCol("id", []int64{1, 2, 3}),
		FloatCol("runtime", []float64{10, 20, 30}),
	)
	right, _ := New(
		IntCol("id", []int64{2, 3, 4}),
		FloatCol("runtime", []float64{21, 31, 41}),
		StringCol("note", []string{"a", "b", "c"}),
	)
	j, err := left.InnerJoin(right, "id", "_h1")
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 2 {
		t.Fatalf("join rows = %d, want 2", j.NumRows())
	}
	names := strings.Join(j.Names(), ",")
	if names != "id,runtime,runtime_h1,note" {
		t.Fatalf("join columns = %s", names)
	}
	if j.RowAt(0).Float("runtime") != 20 || j.RowAt(0).Float("runtime_h1") != 21 {
		t.Fatal("join values misaligned")
	}
}

func TestInnerJoinDuplicateKeys(t *testing.T) {
	left, _ := New(IntCol("id", []int64{1, 1}), FloatCol("x", []float64{1, 2}))
	right, _ := New(IntCol("id", []int64{1, 1}), FloatCol("y", []float64{3, 4}))
	j, err := left.InnerJoin(right, "id", "_r")
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 4 {
		t.Fatalf("cartesian join rows = %d, want 4", j.NumRows())
	}
}

func TestInnerJoinMissingKey(t *testing.T) {
	left, _ := New(IntCol("id", []int64{1}))
	right, _ := New(IntCol("other", []int64{1}))
	if _, err := left.InnerJoin(right, "id", "_r"); !errors.Is(err, ErrNoColumn) {
		t.Fatal("join on missing right key should error")
	}
}

func TestConcat(t *testing.T) {
	a, _ := New(IntCol("id", []int64{1}), StringCol("s", []string{"x"}))
	b, _ := New(IntCol("id", []int64{2}), StringCol("s", []string{"y"}))
	c, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumRows() != 2 || c.RowAt(1).String("s") != "y" {
		t.Fatalf("concat failed: %v rows", c.NumRows())
	}
	bad, _ := New(IntCol("zz", []int64{2}), StringCol("s", []string{"y"}))
	if _, err := Concat(a, bad); err == nil {
		t.Fatal("mismatched concat should error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	f := sampleFrame(t)
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != f.NumRows() || back.NumCols() != f.NumCols() {
		t.Fatalf("round trip shape %dx%d", back.NumRows(), back.NumCols())
	}
	// Types must be re-inferred identically.
	id, _ := back.Column("id")
	if id.Kind != Int {
		t.Fatalf("id kind = %v, want Int", id.Kind)
	}
	rt, _ := back.Column("runtime")
	if rt.Kind != Float {
		t.Fatalf("runtime kind = %v, want Float", rt.Kind)
	}
	hw, _ := back.Column("hw")
	if hw.Kind != String {
		t.Fatalf("hw kind = %v, want String", hw.Kind)
	}
	for i := 0; i < f.NumRows(); i++ {
		if back.RowAt(i).Float("runtime") != f.RowAt(i).Float("runtime") {
			t.Fatalf("runtime row %d mismatch", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty csv should error")
	}
	// Ragged rows are rejected by encoding/csv itself.
	if _, err := ReadCSV(strings.NewReader("a,b\n1\n")); err == nil {
		t.Fatal("ragged csv should error")
	}
}

func TestReadCSVTypeInference(t *testing.T) {
	in := "n,x,s\n1,1.5,foo\n2,2.5,bar\n"
	f, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	n, _ := f.Column("n")
	x, _ := f.Column("x")
	s, _ := f.Column("s")
	if n.Kind != Int || x.Kind != Float || s.Kind != String {
		t.Fatalf("kinds = %v %v %v", n.Kind, x.Kind, s.Kind)
	}
}

func TestFilterTakeInvariant(t *testing.T) {
	// Property: filter(p) + filter(!p) partition the rows.
	check := func(seed uint64, n uint8) bool {
		r := rng.New(seed)
		rows := int(n%50) + 1
		vals := make([]float64, rows)
		for i := range vals {
			vals[i] = r.Float64()
		}
		f, err := New(FloatCol("v", vals))
		if err != nil {
			return false
		}
		hi := f.Filter(func(row Row) bool { return row.Float("v") >= 0.5 })
		lo := f.Filter(func(row Row) bool { return row.Float("v") < 0.5 })
		return hi.NumRows()+lo.NumRows() == rows
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if Float.String() != "float" || Int.String() != "int" || String.String() != "string" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}
