package frame

import (
	"errors"
	"testing"
)

func TestWithColumn(t *testing.T) {
	f := sampleFrame(t)
	g, err := f.WithColumn("runtime_min", func(r Row) float64 { return r.Float("runtime") / 60 })
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCols() != f.NumCols()+1 {
		t.Fatalf("cols = %d", g.NumCols())
	}
	if got := g.RowAt(0).Float("runtime_min"); got != 10.5/60 {
		t.Fatalf("derived value = %v", got)
	}
	// Original unchanged.
	if f.NumCols() != 3 {
		t.Fatal("WithColumn mutated the input frame")
	}
	if _, err := g.WithColumn("runtime", func(Row) float64 { return 0 }); !errors.Is(err, ErrDupColumn) {
		t.Fatal("duplicate derived name should fail")
	}
}

func TestDescribe(t *testing.T) {
	f := sampleFrame(t)
	d, err := f.Describe()
	if err != nil {
		t.Fatal(err)
	}
	// Two numeric columns: id, runtime (hw is string).
	if d.NumRows() != 2 {
		t.Fatalf("describe rows = %d, want 2", d.NumRows())
	}
	var runtimeRow Row
	found := false
	for i := 0; i < d.NumRows(); i++ {
		if d.RowAt(i).String("column") == "runtime" {
			runtimeRow = d.RowAt(i)
			found = true
		}
	}
	if !found {
		t.Fatal("runtime row missing from describe")
	}
	if runtimeRow.Float("min") != 5.0 || runtimeRow.Float("max") != 20.25 {
		t.Fatalf("describe min/max = %v/%v", runtimeRow.Float("min"), runtimeRow.Float("max"))
	}
}

func TestLeftJoin(t *testing.T) {
	left, _ := New(
		IntCol("id", []int64{1, 2, 3}),
		FloatCol("x", []float64{10, 20, 30}),
	)
	right, _ := New(
		IntCol("id", []int64{2}),
		StringCol("tag", []string{"match"}),
	)
	j, err := left.LeftJoin(right, "id", "_r")
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 3 {
		t.Fatalf("left join rows = %d, want 3 (all left rows kept)", j.NumRows())
	}
	if j.RowAt(1).String("tag") != "match" {
		t.Fatal("matched row lost its value")
	}
	if j.RowAt(0).String("tag") != "" || j.RowAt(2).String("tag") != "" {
		t.Fatal("unmatched rows should carry zero values")
	}
}

func TestLeftJoinCollision(t *testing.T) {
	left, _ := New(IntCol("id", []int64{1}), FloatCol("v", []float64{1}))
	right, _ := New(IntCol("id", []int64{1}), FloatCol("v", []float64{9}))
	j, err := left.LeftJoin(right, "id", "_r")
	if err != nil {
		t.Fatal(err)
	}
	if j.RowAt(0).Float("v_r") != 9 {
		t.Fatal("collision suffix not applied")
	}
}

func TestDropDuplicates(t *testing.T) {
	f, _ := New(
		StringCol("hw", []string{"H0", "H1", "H0", "H2", "H1"}),
		IntCol("n", []int64{1, 2, 3, 4, 5}),
	)
	d, err := f.DropDuplicates("hw")
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 3 {
		t.Fatalf("dedup rows = %d, want 3", d.NumRows())
	}
	// First occurrences kept.
	if d.RowAt(0).Float("n") != 1 || d.RowAt(1).Float("n") != 2 || d.RowAt(2).Float("n") != 4 {
		t.Fatal("wrong occurrences kept")
	}
	if _, err := f.DropDuplicates("nope"); !errors.Is(err, ErrNoColumn) {
		t.Fatal("missing column should fail")
	}
}
