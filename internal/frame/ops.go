package frame

import (
	"fmt"
	"sort"
)

// Filter returns the rows for which keep returns true, preserving order.
func (f *Frame) Filter(keep func(Row) bool) *Frame {
	var idx []int
	for i := 0; i < f.NumRows(); i++ {
		if keep(f.RowAt(i)) {
			idx = append(idx, i)
		}
	}
	return f.Take(idx)
}

// SortBy returns a new frame sorted ascending by the named column
// (numeric order for float/int columns, lexicographic for strings).
// The sort is stable.
func (f *Frame) SortBy(name string) (*Frame, error) {
	c, err := f.Column(name)
	if err != nil {
		return nil, err
	}
	idx := make([]int, f.NumRows())
	for i := range idx {
		idx[i] = i
	}
	switch c.Kind {
	case Float:
		sort.SliceStable(idx, func(a, b int) bool { return c.Floats[idx[a]] < c.Floats[idx[b]] })
	case Int:
		sort.SliceStable(idx, func(a, b int) bool { return c.Ints[idx[a]] < c.Ints[idx[b]] })
	default:
		sort.SliceStable(idx, func(a, b int) bool { return c.Strings[idx[a]] < c.Strings[idx[b]] })
	}
	return f.Take(idx), nil
}

// Group holds the row indices of one group-by bucket.
type Group struct {
	Key  string
	Rows []int
}

// GroupBy buckets rows by the rendered value of the named column. Groups
// appear in order of first occurrence.
func (f *Frame) GroupBy(name string) ([]Group, error) {
	c, err := f.Column(name)
	if err != nil {
		return nil, err
	}
	order := map[string]int{}
	var groups []Group
	for i := 0; i < f.NumRows(); i++ {
		k := c.cell(i)
		gi, ok := order[k]
		if !ok {
			gi = len(groups)
			order[k] = gi
			groups = append(groups, Group{Key: k})
		}
		groups[gi].Rows = append(groups[gi].Rows, i)
	}
	return groups, nil
}

// Agg computes an aggregate of the named float column per group, returning
// a two-column frame (key column named by, aggregate named as).
func (f *Frame) Agg(by, col, as string, agg func([]float64) float64) (*Frame, error) {
	groups, err := f.GroupBy(by)
	if err != nil {
		return nil, err
	}
	vals, err := f.Floats(col)
	if err != nil {
		return nil, err
	}
	keys := make([]string, len(groups))
	out := make([]float64, len(groups))
	for i, g := range groups {
		sub := make([]float64, len(g.Rows))
		for j, r := range g.Rows {
			sub[j] = vals[r]
		}
		keys[i] = g.Key
		out[i] = agg(sub)
	}
	return New(StringCol(by, keys), FloatCol(as, out))
}

// InnerJoin joins f with other on equality of the named key column,
// producing one output row per matching pair. Columns from other keep
// their names unless they collide with a column of f, in which case they
// get the given suffix. This is the merge step from the paper's Figure 1
// pipeline (per-hardware frames joined on workflow ID).
func (f *Frame) InnerJoin(other *Frame, on, suffix string) (*Frame, error) {
	kl, err := f.Column(on)
	if err != nil {
		return nil, err
	}
	kr, err := other.Column(on)
	if err != nil {
		return nil, err
	}
	// Hash join: bucket right side by key.
	buckets := map[string][]int{}
	for i := 0; i < other.NumRows(); i++ {
		k := kr.cell(i)
		buckets[k] = append(buckets[k], i)
	}
	var leftIdx, rightIdx []int
	for i := 0; i < f.NumRows(); i++ {
		for _, j := range buckets[kl.cell(i)] {
			leftIdx = append(leftIdx, i)
			rightIdx = append(rightIdx, j)
		}
	}
	out := &Frame{index: map[string]int{}}
	for _, c := range f.cols {
		if err := out.AddColumn(c.slice(leftIdx)); err != nil {
			return nil, err
		}
	}
	for _, c := range other.cols {
		if c.Name == on {
			continue // key already present from the left side
		}
		nc := c.slice(rightIdx)
		if _, dup := out.index[nc.Name]; dup {
			nc.Name = nc.Name + suffix
			if _, dup2 := out.index[nc.Name]; dup2 {
				return nil, fmt.Errorf("%w: %q even with suffix", ErrDupColumn, nc.Name)
			}
		}
		if err := out.AddColumn(nc); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Concat appends the rows of other to f. Both frames must have identical
// column names, kinds, and order.
func Concat(f, other *Frame) (*Frame, error) {
	if f.NumCols() != other.NumCols() {
		return nil, fmt.Errorf("%w: %d vs %d columns", ErrLength, f.NumCols(), other.NumCols())
	}
	out := &Frame{index: map[string]int{}}
	for i, c := range f.cols {
		oc := other.cols[i]
		if oc.Name != c.Name || oc.Kind != c.Kind {
			return nil, fmt.Errorf("frame: Concat column %d mismatch (%s/%v vs %s/%v)",
				i, c.Name, c.Kind, oc.Name, oc.Kind)
		}
		nc := &Column{Name: c.Name, Kind: c.Kind}
		switch c.Kind {
		case Float:
			nc.Floats = append(append([]float64(nil), c.Floats...), oc.Floats...)
		case Int:
			nc.Ints = append(append([]int64(nil), c.Ints...), oc.Ints...)
		default:
			nc.Strings = append(append([]string(nil), c.Strings...), oc.Strings...)
		}
		if err := out.AddColumn(nc); err != nil {
			return nil, err
		}
	}
	return out, nil
}
