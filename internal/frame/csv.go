package frame

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
)

// ReadCSV parses CSV from r into a frame. The first record is the header.
// Column types are inferred: a column where every cell parses as int64
// becomes Int; failing that, float64 becomes Float; otherwise String.
func ReadCSV(r io.Reader) (*Frame, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("frame: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, errors.New("frame: empty csv (no header)")
	}
	header := records[0]
	rows := records[1:]
	cols := make([]*Column, len(header))
	for j, name := range header {
		cells := make([]string, len(rows))
		for i, rec := range rows {
			if j >= len(rec) {
				return nil, fmt.Errorf("frame: row %d has %d fields, want %d", i+1, len(rec), len(header))
			}
			cells[i] = rec[j]
		}
		cols[j] = inferColumn(name, cells)
	}
	return New(cols...)
}

// ReadCSVFile reads a CSV file by path.
func ReadCSVFile(path string) (*Frame, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}

func inferColumn(name string, cells []string) *Column {
	isInt, isFloat := true, true
	for _, s := range cells {
		if isInt {
			if _, err := strconv.ParseInt(s, 10, 64); err != nil {
				isInt = false
			}
		}
		if !isInt && isFloat {
			if _, err := strconv.ParseFloat(s, 64); err != nil {
				isFloat = false
				break
			}
		}
	}
	switch {
	case isInt && len(cells) > 0:
		vals := make([]int64, len(cells))
		for i, s := range cells {
			vals[i], _ = strconv.ParseInt(s, 10, 64)
		}
		return IntCol(name, vals)
	case isFloat && len(cells) > 0:
		vals := make([]float64, len(cells))
		for i, s := range cells {
			vals[i], _ = strconv.ParseFloat(s, 64)
		}
		return FloatCol(name, vals)
	default:
		return StringCol(name, cells)
	}
}

// WriteCSV writes the frame as CSV with a header row.
func (f *Frame) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(f.Names()); err != nil {
		return err
	}
	rec := make([]string, f.NumCols())
	for i := 0; i < f.NumRows(); i++ {
		for j, c := range f.cols {
			rec[j] = c.format(i)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the frame to a CSV file by path.
func (f *Frame) WriteCSVFile(path string) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.WriteCSV(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}
