package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"banditware/internal/core"
	"banditware/internal/rng"
)

// driveStream runs rounds of ticket recommend→observe against a
// synthetic linear runtime surface (slope per arm), returning the last
// exploit choice for a large workflow.
func driveStream(t *testing.T, s *Service, name string, slopes []float64, rounds int) int {
	t.Helper()
	r := rng.New(21)
	for i := 0; i < rounds; i++ {
		x := r.Uniform(10, 100)
		tk, err := s.Recommend(name, []float64{x})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Observe(tk.ID, slopes[tk.Arm]*x+20); err != nil {
			t.Fatal(err)
		}
	}
	arm, err := s.Exploit(name, []float64{80})
	if err != nil {
		t.Fatal(err)
	}
	return arm
}

// TestPolicyStreamServing: a LinUCB-backed stream serves tickets, learns
// from observations, and reports its policy type; interval prediction is
// honestly unsupported.
func TestPolicyStreamServing(t *testing.T) {
	s := NewService(ServiceOptions{})
	err := s.CreateStream("ucb", StreamConfig{
		Hardware: testHW(), Dim: 1,
		Policy: PolicySpec{Type: PolicyLinUCB, Beta: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if arm := driveStream(t, s, "ucb", []float64{5, 3, 1}, 120); arm != 2 {
		t.Fatalf("linucb stream exploits arm %d, want 2", arm)
	}
	info, err := s.StreamInfo("ucb")
	if err != nil {
		t.Fatal(err)
	}
	if info.Policy != PolicyLinUCB || info.Round != 120 || info.Epsilon != 0 {
		t.Fatalf("info = %+v", info)
	}
	// Per-arm models exist; prediction intervals do not.
	if _, err := s.Model("ucb", 0); err != nil {
		t.Fatalf("linucb model: %v", err)
	}
	if _, err := s.PredictWithCI("ucb", []float64{5}, 0); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("linucb CI: %v, want ErrUnsupported", err)
	}
	// Dimension errors surface as the uniform core sentinel.
	if _, err := s.Recommend("ucb", []float64{1, 2}); !errors.Is(err, core.ErrDim) {
		t.Fatalf("dim error: %v, want core.ErrDim", err)
	}
	if _, err := s.RecommendBatch("ucb", [][]float64{{1}, {2, 3}}); !errors.Is(err, core.ErrDim) {
		t.Fatalf("batch dim error: %v, want core.ErrDim", err)
	}
}

// TestEveryPolicyTypeServes: each selectable policy type creates a
// stream and completes a recommend→observe round trip.
func TestEveryPolicyTypeServes(t *testing.T) {
	types := []string{
		PolicyAlgorithm1, PolicyLinUCB, PolicyLinTS,
		PolicyEpsGreedy, PolicyGreedy, PolicySoftmax, PolicyRandom,
	}
	s := NewService(ServiceOptions{})
	for i, typ := range types {
		name := fmt.Sprintf("s-%s", typ)
		err := s.CreateStream(name, StreamConfig{
			Hardware: testHW(), Dim: 1,
			Policy: PolicySpec{Type: typ, Seed: uint64(i + 1)},
		})
		if err != nil {
			t.Fatalf("create %s: %v", typ, err)
		}
		tk, err := s.Recommend(name, []float64{10})
		if err != nil {
			t.Fatalf("%s recommend: %v", typ, err)
		}
		if tk.Arm < 0 || tk.Arm >= len(testHW()) {
			t.Fatalf("%s arm %d out of range", typ, tk.Arm)
		}
		if err := s.Observe(tk.ID, 42); err != nil {
			t.Fatalf("%s observe: %v", typ, err)
		}
		if info, _ := s.StreamInfo(name); info.Policy != typ || info.Round != 1 {
			t.Fatalf("%s info: %+v", typ, info)
		}
	}
	// Model-free policy: PredictAll and Model honestly unsupported.
	if _, err := s.PredictAll("s-random", []float64{1}); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("random PredictAll: %v", err)
	}
	if _, err := s.Model("s-random", 0); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("random Model: %v", err)
	}
	// Unknown policy type is rejected at creation.
	err := s.CreateStream("bad", StreamConfig{
		Hardware: testHW(), Dim: 1, Policy: PolicySpec{Type: "quantum"},
	})
	if !errors.Is(err, ErrUnknownPolicy) {
		t.Fatalf("unknown policy: %v", err)
	}
}

// TestPolicySpecJSONForms: a spec decodes from a bare string or an
// object, resolves aliases, and rejects unknown fields.
func TestPolicySpecJSONForms(t *testing.T) {
	var spec PolicySpec
	if err := json.Unmarshal([]byte(`"linucb"`), &spec); err != nil || spec.Type != "linucb" {
		t.Fatalf("string form: %+v, %v", spec, err)
	}
	if err := json.Unmarshal([]byte(`{"type":"softmax","temperature":0.5,"seed":9}`), &spec); err != nil {
		t.Fatal(err)
	}
	if spec.Type != "softmax" || spec.Temperature != 0.5 || spec.Seed != 9 {
		t.Fatalf("object form: %+v", spec)
	}
	if err := json.Unmarshal([]byte(`{"type":"linucb","bogus":1}`), &spec); err == nil {
		t.Fatal("unknown field accepted")
	}
	for alias, want := range map[string]string{
		"": PolicyAlgorithm1, "alg1": PolicyAlgorithm1, "decaying-eps-greedy": PolicyAlgorithm1,
		"thompson": PolicyLinTS, "epsilon-greedy": PolicyEpsGreedy, "boltzmann": PolicySoftmax,
		"LinUCB": PolicyLinUCB,
	} {
		got, err := PolicySpec{Type: alias}.kind()
		if err != nil || got != want {
			t.Fatalf("kind(%q) = %q, %v; want %q", alias, got, err, want)
		}
	}
}

// TestShadowEvaluation: shadows see every context and observation,
// never serve, accumulate agreement/replay/regret counters, and
// attach/detach with proper errors.
func TestShadowEvaluation(t *testing.T) {
	s := newTestService(t, ServiceOptions{}, "jobs")
	if err := s.AttachShadow("jobs", "ucb", PolicySpec{Type: PolicyLinUCB}); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachShadow("jobs", "rand", PolicySpec{Type: PolicyRandom, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachShadow("jobs", "ucb", PolicySpec{Type: PolicyLinUCB}); !errors.Is(err, ErrShadowExists) {
		t.Fatalf("duplicate shadow: %v", err)
	}
	if err := s.AttachShadow("ghost", "x", PolicySpec{}); !errors.Is(err, ErrStreamNotFound) {
		t.Fatalf("shadow on missing stream: %v", err)
	}
	if err := s.AttachShadow("jobs", "bad name", PolicySpec{}); !errors.Is(err, ErrBadStreamName) {
		t.Fatalf("bad shadow name: %v", err)
	}
	if err := s.AttachShadow("jobs", "bad-type", PolicySpec{Type: "quantum"}); !errors.Is(err, ErrUnknownPolicy) {
		t.Fatalf("bad shadow policy: %v", err)
	}

	const rounds = 80
	driveStream(t, s, "jobs", []float64{5, 3, 1}, rounds)

	shadows, err := s.Shadows("jobs")
	if err != nil {
		t.Fatal(err)
	}
	if len(shadows) != 2 || shadows[0].Name != "ucb" || shadows[1].Name != "rand" {
		t.Fatalf("shadows = %+v", shadows)
	}
	for _, sh := range shadows {
		if sh.Decisions != rounds || sh.Observations != rounds || sh.Round != rounds {
			t.Fatalf("shadow %s counters: %+v", sh.Name, sh)
		}
		if sh.Agreements > sh.Observations {
			t.Fatalf("shadow %s agreements exceed observations: %+v", sh.Name, sh)
		}
		if math.IsNaN(sh.EstimatedRegret) || math.IsInf(sh.EstimatedRegret, 0) {
			t.Fatalf("shadow %s regret not finite: %+v", sh.Name, sh)
		}
		if (sh.Agreements == 0) != (sh.MatchedRuntimeTotal == 0) {
			t.Fatalf("shadow %s matched runtime inconsistent: %+v", sh.Name, sh)
		}
	}
	// LinUCB converges to the same best arm as the primary, so it must
	// agree often; random agrees only ~1/3 of the time.
	if shadows[0].Agreements <= shadows[1].Agreements {
		t.Fatalf("linucb (%d) should out-agree random (%d)", shadows[0].Agreements, shadows[1].Agreements)
	}
	// The shadow's own learning matches the primary's data: after 80
	// off-policy rounds LinUCB should also exploit arm 2. Detach-and-
	// inspect is not possible, so check via StreamInfo instead.
	info, _ := s.StreamInfo("jobs")
	if len(info.Shadows) != 2 {
		t.Fatalf("StreamInfo shadows = %+v", info.Shadows)
	}

	// A shadow attached mid-stream only counts from its attachment.
	if err := s.AttachShadow("jobs", "late", PolicySpec{Type: PolicyGreedy}); err != nil {
		t.Fatal(err)
	}
	tk, err := s.Recommend("jobs", []float64{50})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(tk.ID, 70); err != nil {
		t.Fatal(err)
	}
	shadows, _ = s.Shadows("jobs")
	if late := shadows[2]; late.Name != "late" || late.Decisions != 1 || late.Observations != 1 {
		t.Fatalf("late shadow: %+v", shadows[2])
	}

	// ObserveDirect counts one decision and one observation per call.
	before, _ := s.Shadows("jobs")
	if err := s.ObserveDirect("jobs", 1, []float64{30}, 110); err != nil {
		t.Fatal(err)
	}
	after, _ := s.Shadows("jobs")
	for i := range after {
		if after[i].Decisions != before[i].Decisions+1 || after[i].Observations != before[i].Observations+1 {
			t.Fatalf("direct observe shadow %s: %+v -> %+v", after[i].Name, before[i], after[i])
		}
	}

	// Detach removes exactly the named shadow.
	if err := s.DetachShadow("jobs", "rand"); err != nil {
		t.Fatal(err)
	}
	if err := s.DetachShadow("jobs", "rand"); !errors.Is(err, ErrShadowNotFound) {
		t.Fatalf("double detach: %v", err)
	}
	shadows, _ = s.Shadows("jobs")
	if len(shadows) != 2 || shadows[0].Name != "ucb" || shadows[1].Name != "late" {
		t.Fatalf("after detach: %+v", shadows)
	}
}

// TestDetachPurgesPendingSelections: detaching a shadow drops its
// recorded per-ticket selections, so a new shadow reusing the name is
// never credited with the old one's choices.
func TestDetachPurgesPendingSelections(t *testing.T) {
	s := newTestService(t, ServiceOptions{}, "jobs")
	if err := s.AttachShadow("jobs", "cand", PolicySpec{Type: PolicyGreedy}); err != nil {
		t.Fatal(err)
	}
	tk, err := s.Recommend("jobs", []float64{5}) // cand's arm recorded
	if err != nil {
		t.Fatal(err)
	}
	if err := s.DetachShadow("jobs", "cand"); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachShadow("jobs", "cand", PolicySpec{Type: PolicyRandom, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(tk.ID, 30); err != nil {
		t.Fatal(err)
	}
	shadows, _ := s.Shadows("jobs")
	cand := shadows[0]
	// The new shadow learns from the observation but must carry no
	// agreement/regret credit for a selection it never made.
	if cand.Decisions != 0 || cand.Observations != 1 || cand.Agreements != 0 ||
		cand.MatchedRuntimeTotal != 0 || cand.EstimatedRegret != 0 {
		t.Fatalf("re-attached shadow inherited stale credit: %+v", cand)
	}
}

// TestSaveDetachConcurrent: Save encodes pending tickets' shadow
// selections after releasing the stream locks, while DetachShadow
// mutates them under the lock — the snapshot must copy, not alias (run
// with -race).
func TestSaveDetachConcurrent(t *testing.T) {
	s := newTestService(t, ServiceOptions{}, "jobs")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			name := fmt.Sprintf("sh%d", i)
			if err := s.AttachShadow("jobs", name, PolicySpec{Type: PolicyGreedy}); err != nil {
				t.Error(err)
				return
			}
			if _, err := s.Recommend("jobs", []float64{1}); err != nil { // pending ticket with shadow arm
				t.Error(err)
				return
			}
			if err := s.DetachShadow("jobs", name); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}

// TestSnapshotV2ByteForByte: a service with policy-typed streams,
// shadows, and pending tickets round-trips through Save/Load with its
// serialised state byte-for-byte identical — learned models, counters,
// shadow selections, everything.
func TestSnapshotV2ByteForByte(t *testing.T) {
	clock := &fakeClock{t: time.Unix(9000, 0)}
	s := NewService(ServiceOptions{Now: clock.now, TicketTTL: time.Hour})
	if err := s.CreateStream("alg1", StreamConfig{
		Hardware: testHW(), Dim: 1, Options: core.Options{Seed: 1, ToleranceRatio: 0.1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateStream("ucb", StreamConfig{
		Hardware: testHW(), Dim: 1, Policy: PolicySpec{Type: PolicyLinUCB, Beta: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateStream("soft", StreamConfig{
		Hardware: testHW(), Dim: 1, Policy: PolicySpec{Type: PolicySoftmax, Temperature: 0.7, Seed: 5},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachShadow("alg1", "ucb-shadow", PolicySpec{Type: PolicyLinUCB}); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachShadow("alg1", "ts-shadow", PolicySpec{Type: PolicyLinTS, Seed: 8}); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachShadow("ucb", "alg1-shadow", PolicySpec{Type: PolicyAlgorithm1, Seed: 9}); err != nil {
		t.Fatal(err)
	}

	// Train, leaving every 6th ticket pending (with shadow selections).
	r := rng.New(17)
	var pendings []Ticket
	for _, name := range []string{"alg1", "ucb", "soft"} {
		for i := 0; i < 50; i++ {
			x := r.Uniform(1, 60)
			tk, err := s.Recommend(name, []float64{x})
			if err != nil {
				t.Fatal(err)
			}
			if i%6 == 5 {
				pendings = append(pendings, tk)
				continue
			}
			if err := s.Observe(tk.ID, 4*x+float64(tk.Arm)*15); err != nil {
				t.Fatal(err)
			}
		}
	}

	var first bytes.Buffer
	if err := s.Save(&first); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(first.Bytes()), ServiceOptions{Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := back.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("snapshot not byte-for-byte stable across load/save")
	}

	// The restored service still serves: pending tickets (with their
	// shadow joins) redeem, and shadow counters advance.
	preShadows, _ := back.Shadows("alg1")
	for _, tk := range pendings {
		if err := back.Observe(tk.ID, 99); err != nil {
			t.Fatalf("pending ticket %s lost: %v", tk.ID, err)
		}
	}
	postShadows, _ := back.Shadows("alg1")
	if postShadows[0].Observations <= preShadows[0].Observations {
		t.Fatalf("restored shadow did not observe: %+v -> %+v", preShadows[0], postShadows[0])
	}
}

// TestSnapshotReadsV1: a version-1 envelope (PR 1 format: Algorithm 1
// state in the "bandit" field, no policy tag) loads into the current
// service with models, counters, and pending tickets intact.
func TestSnapshotReadsV1(t *testing.T) {
	b, err := core.New(testHW(), 1, core.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		x := []float64{float64(i%20 + 1)}
		d, err := b.Recommend(x)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Observe(d.Arm, x, 3*x[0]+float64(d.Arm)*5); err != nil {
			t.Fatal(err)
		}
	}
	var banditState bytes.Buffer
	if err := b.SaveState(&banditState); err != nil {
		t.Fatal(err)
	}
	v1 := map[string]any{
		"format":   "banditware-service",
		"version":  1,
		"saved_at": time.Unix(7000, 0).UTC(),
		"streams": []map[string]any{{
			"name":          "legacy-v1",
			"bandit":        json.RawMessage(banditState.Bytes()),
			"max_pending":   64,
			"ticket_ttl_ns": 0,
			"next_seq":      41,
			"issued":        41,
			"observed":      40,
			"evicted":       0,
			"expired":       0,
			"pending": []map[string]any{{
				"id": "legacy-v1#28", "seq": 40, "arm": 1,
				"features": []float64{7}, "issued_at_ns": time.Unix(6999, 0).UnixNano(),
			}},
		}},
	}
	blob, err := json.Marshal(v1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Load(bytes.NewReader(blob), ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	info, err := s.StreamInfo("legacy-v1")
	if err != nil {
		t.Fatal(err)
	}
	if info.Policy != PolicyAlgorithm1 || info.Round != 40 || info.Issued != 41 || info.Pending != 1 {
		t.Fatalf("v1 info = %+v", info)
	}
	// Models survived: predictions match the original bandit.
	want, _ := b.PredictAll([]float64{12})
	got, err := s.PredictAll("legacy-v1", []float64{12})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-12 {
			t.Fatalf("v1 predictions drifted: %v vs %v", want, got)
		}
	}
	// The v1 pending ticket is still redeemable.
	if err := s.Observe("legacy-v1#28", 33); err != nil {
		t.Fatalf("v1 pending ticket: %v", err)
	}
	// Re-saving upgrades to the current version and stays loadable.
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"version": 7`)) {
		t.Fatalf("re-save did not upgrade version:\n%.200s", buf.String())
	}
	if _, err := Load(bytes.NewReader(buf.Bytes()), ServiceOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotRejectsFutureVersion: version 8 is refused rather than
// misread.
func TestSnapshotRejectsFutureVersion(t *testing.T) {
	blob := []byte(`{"format":"banditware-service","version":8,"streams":[]}`)
	if _, err := Load(bytes.NewReader(blob), ServiceOptions{}); err == nil {
		t.Fatal("future version accepted")
	}
}
