package serve

// HTTP coverage of the outcome/reward surface: reward specs on stream
// creation (bare string and object forms) and shadow attachment,
// structured {"outcome": ...} observe bodies on every observe route,
// and the error paths — malformed outcome JSON (400), semantically
// invalid outcomes (422, ticket not burned), and expired tickets
// redeemed with outcomes (410).

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHTTPCreateStreamWithReward(t *testing.T) {
	_, srv := newTestServer(t)
	// Object form.
	var info StreamInfo
	if code := doJSON(t, "POST", srv.URL+"/v1/streams", map[string]any{
		"name": "cost", "hardware_spec": "cheap=2x16;fast=16x64", "dim": 1, "seed": 1,
		"reward": map[string]any{"type": "cost_weighted", "lambda": 0.5},
	}, &info); code != http.StatusCreated {
		t.Fatalf("create with reward object: %d", code)
	}
	if info.Reward.Type != RewardCostWeighted || info.Reward.Lambda != 0.5 {
		t.Fatalf("created reward = %+v", info.Reward)
	}
	// Bare string form canonicalises with defaults.
	if code := doJSON(t, "POST", srv.URL+"/v1/streams", map[string]any{
		"name": "cost2", "hardware_spec": "cheap=2x16", "dim": 1,
		"reward": "cost_weighted",
	}, &info); code != http.StatusCreated {
		t.Fatalf("create with bare reward string: %d", code)
	}
	if info.Reward.Type != RewardCostWeighted || info.Reward.Lambda != 1 {
		t.Fatalf("bare-string reward = %+v", info.Reward)
	}
	// Unknown reward type -> 400 and no stream created.
	var errResp map[string]string
	if code := doJSON(t, "POST", srv.URL+"/v1/streams", map[string]any{
		"name": "bad", "hardware_spec": "cheap=2x16", "dim": 1,
		"reward": "fastest",
	}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("bad reward type: %d (%v)", code, errResp)
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/streams/bad", nil, nil); code != http.StatusNotFound {
		t.Fatalf("half-created stream visible: %d", code)
	}
}

func TestHTTPObserveOutcome(t *testing.T) {
	svc, srv := newTestServer(t)
	createJobsStream(t, srv.URL)

	var tk Ticket
	doJSON(t, "POST", srv.URL+"/v1/streams/jobs/recommend", map[string]any{"features": []float64{4}}, &tk)
	if code := doJSON(t, "POST", srv.URL+"/v1/observe", map[string]any{
		"ticket": tk.ID,
		"outcome": map[string]any{
			"runtime": 61.5,
			"success": true,
			"metrics": map[string]float64{"memory_gb": 3.25, "cost_usd": 0.02},
		},
	}, nil); code != http.StatusOK {
		t.Fatalf("observe outcome: %d", code)
	}
	info, _ := svc.StreamInfo("jobs")
	if info.Observed != 1 || info.RuntimeTotal != 61.5 || info.RewardTotal != 61.5 {
		t.Fatalf("outcome not applied: %+v", info)
	}

	// The stream-scoped route and the direct form take outcomes too.
	doJSON(t, "POST", srv.URL+"/v1/streams/jobs/recommend", map[string]any{"features": []float64{4}}, &tk)
	if code := doJSON(t, "POST", srv.URL+"/v1/streams/jobs/observe", map[string]any{
		"ticket": tk.ID, "outcome": map[string]any{"runtime": 10},
	}, nil); code != http.StatusOK {
		t.Fatal("stream-scoped outcome observe failed")
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/streams/jobs/observe", map[string]any{
		"arm": 1, "features": []float64{4},
		"outcome": map[string]any{"runtime": 9, "success": false},
	}, nil); code != http.StatusOK {
		t.Fatal("direct outcome observe failed")
	}
	info, _ = svc.StreamInfo("jobs")
	if info.Failures != 1 {
		t.Fatalf("failure not counted: %+v", info)
	}

	// Batch observations mix scalar and outcome forms.
	var tks struct {
		Tickets []Ticket `json:"tickets"`
	}
	doJSON(t, "POST", srv.URL+"/v1/streams/jobs/recommend/batch", map[string]any{
		"batch": [][]float64{{1}, {2}},
	}, &tks)
	var batchResp observeBatchResponse
	doJSON(t, "POST", srv.URL+"/v1/streams/jobs/observe/batch", map[string]any{
		"observations": []map[string]any{
			{"ticket": tks.Tickets[0].ID, "runtime": 5},
			{"ticket": tks.Tickets[1].ID, "outcome": map[string]any{"runtime": 6, "metrics": map[string]float64{"energy_joules": 120}}},
		},
	}, &batchResp)
	if batchResp.Applied != 2 {
		t.Fatalf("batch outcome observe: %+v", batchResp)
	}
}

func TestHTTPObserveOutcomeErrorPaths(t *testing.T) {
	svc, srv := newTestServer(t)
	createJobsStream(t, srv.URL)
	var tk Ticket
	doJSON(t, "POST", srv.URL+"/v1/streams/jobs/recommend", map[string]any{"features": []float64{4}}, &tk)

	var errResp map[string]string
	// Malformed outcome JSON (unknown field) -> 400 from strict decode.
	if code := doJSON(t, "POST", srv.URL+"/v1/observe", map[string]any{
		"ticket": tk.ID, "outcome": map[string]any{"runtime": 5, "durations": 3},
	}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("unknown outcome field: %d (%v)", code, errResp)
	}
	// Unknown metric name -> 422.
	if code := doJSON(t, "POST", srv.URL+"/v1/observe", map[string]any{
		"ticket": tk.ID, "outcome": map[string]any{"runtime": 5, "metrics": map[string]float64{"memoryGB": 1}},
	}, &errResp); code != http.StatusUnprocessableEntity {
		t.Fatalf("unknown metric: %d (%v)", code, errResp)
	}
	if !strings.Contains(errResp["error"], "unknown metric") {
		t.Fatalf("unknown metric error body: %v", errResp)
	}
	// Negative runtime -> 422, scalar and outcome forms alike.
	if code := doJSON(t, "POST", srv.URL+"/v1/observe", map[string]any{
		"ticket": tk.ID, "outcome": map[string]any{"runtime": -1},
	}, &errResp); code != http.StatusUnprocessableEntity {
		t.Fatalf("negative outcome runtime: %d", code)
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/observe", map[string]any{
		"ticket": tk.ID, "runtime": -1,
	}, &errResp); code != http.StatusUnprocessableEntity {
		t.Fatalf("negative scalar runtime: %d", code)
	}
	// Giving both forms -> 422, same rule and sentinel on every route.
	if code := doJSON(t, "POST", srv.URL+"/v1/observe", map[string]any{
		"ticket": tk.ID, "runtime": 5, "outcome": map[string]any{"runtime": 5},
	}, &errResp); code != http.StatusUnprocessableEntity {
		t.Fatalf("both forms: %d", code)
	}
	// The batch route applies the same both-forms rule per index.
	var batchResp observeBatchResponse
	doJSON(t, "POST", srv.URL+"/v1/streams/jobs/observe/batch", map[string]any{
		"observations": []map[string]any{
			{"ticket": tk.ID, "runtime": 5, "outcome": map[string]any{"runtime": 5}},
		},
	}, &batchResp)
	if batchResp.Applied != 0 || batchResp.Results[0].OK ||
		!strings.Contains(batchResp.Results[0].Error, "not both") {
		t.Fatalf("batch both forms: %+v", batchResp)
	}
	// A direct observe with an out-of-range arm is a 400, not a dropped
	// connection.
	if code := doJSON(t, "POST", srv.URL+"/v1/streams/jobs/observe", map[string]any{
		"arm": 99, "features": []float64{1}, "runtime": 5,
	}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("out-of-range arm: %d (%v)", code, errResp)
	}
	// None of the rejections burned the ticket or touched the model.
	info, _ := svc.StreamInfo("jobs")
	if info.Observed != 0 || info.Pending != 1 {
		t.Fatalf("rejections changed state: %+v", info)
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/observe", map[string]any{
		"ticket": tk.ID, "outcome": map[string]any{"runtime": 33},
	}, nil); code != http.StatusOK {
		t.Fatalf("ticket burned by rejected outcomes: %d", code)
	}
}

func TestHTTPExpiredTicketWithOutcome(t *testing.T) {
	clock := &fakeClock{t: time.Unix(2000, 0)}
	svc := NewService(ServiceOptions{Now: clock.now, TicketTTL: time.Minute})
	srv := newServerFor(t, svc)
	createJobsStream(t, srv.URL)
	var tk Ticket
	doJSON(t, "POST", srv.URL+"/v1/streams/jobs/recommend", map[string]any{"features": []float64{4}}, &tk)
	clock.advance(2 * time.Minute)
	var errResp map[string]string
	if code := doJSON(t, "POST", srv.URL+"/v1/observe", map[string]any{
		"ticket": tk.ID, "outcome": map[string]any{"runtime": 5, "success": true},
	}, &errResp); code != http.StatusGone {
		t.Fatalf("expired ticket with outcome: %d (%v)", code, errResp)
	}
}

func TestHTTPShadowWithReward(t *testing.T) {
	svc, srv := newTestServer(t)
	createJobsStream(t, srv.URL)
	var resp struct {
		Shadows []ShadowInfo `json:"shadows"`
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/streams/jobs/shadows", map[string]any{
		"name": "cost-view", "policy": "greedy",
		"reward": map[string]any{"type": "cost_weighted", "lambda": 2},
	}, &resp); code != http.StatusCreated {
		t.Fatalf("attach shadow with reward: %d", code)
	}
	if len(resp.Shadows) != 1 || resp.Shadows[0].Reward.Type != RewardCostWeighted {
		t.Fatalf("shadow reward missing: %+v", resp.Shadows)
	}
	var tk Ticket
	doJSON(t, "POST", srv.URL+"/v1/streams/jobs/recommend", map[string]any{"features": []float64{4}}, &tk)
	doJSON(t, "POST", srv.URL+"/v1/observe", map[string]any{"ticket": tk.ID, "runtime": 10}, nil)
	shadows, _ := svc.Shadows("jobs")
	if shadows[0].RewardTotal <= 10 {
		t.Fatalf("shadow reward total missing the cost surcharge: %+v", shadows[0])
	}
	// A bad shadow reward is refused.
	var errResp map[string]string
	if code := doJSON(t, "POST", srv.URL+"/v1/streams/jobs/shadows", map[string]any{
		"name": "bad", "policy": "greedy", "reward": "??",
	}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("bad shadow reward: %d", code)
	}
}

// newServerFor wraps an existing service in a test HTTP server.
func newServerFor(t *testing.T, svc *Service) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHandler(svc))
	t.Cleanup(srv.Close)
	return srv
}
