package serve

import (
	"errors"
	"fmt"

	"banditware/internal/core"
)

// Shadow errors.
var (
	ErrShadowExists   = errors.New("serve: shadow already attached")
	ErrShadowNotFound = errors.New("serve: shadow not found")
)

// shadow is a never-serving policy attached to a stream for live A/B
// evaluation. It sees every context the primary sees (selecting its own
// arm, consuming its own randomness) and learns off-policy from every
// observation (the primary's arm and the measured runtime — the only
// counterfactual-free data available), but its selections never reach a
// client. The counters let an operator compare a candidate policy
// against the serving one on live traffic before switching.
type shadow struct {
	name   string
	engine Engine
	// rw is the shadow's own compiled reward: every observed Outcome is
	// replayed through it, so a shadow can evaluate a different reward
	// regime (not just a different policy) on live traffic. rwInherited
	// records that the shadow took the stream's reward at attach time
	// (such shadows omit the spec from snapshots and re-inherit on
	// load).
	rw          rewardState
	rwInherited bool

	// decisions counts contexts the shadow selected on; observations
	// counts runtimes it absorbed (decisions whose ticket was evicted or
	// expired are never observed).
	decisions    uint64
	observations uint64
	// agreements counts observations where the shadow had chosen the
	// same arm the primary ran; matchedRuntime sums the actual runtimes
	// of those rounds — the replay-style estimate of the shadow's
	// achieved runtime (Li et al.'s offline policy evaluation: rounds
	// where the logged action matches the evaluated policy's choice are
	// unbiased samples of its performance). matchedReward is the same
	// replay sum under the shadow's own reward.
	agreements     uint64
	matchedRuntime float64
	matchedReward  float64
	// rewardTotal sums the shadow's reward score of every observed round
	// (the arm actually run, the Outcome actually measured) — what the
	// serving traffic is worth under this shadow's reward definition.
	rewardTotal float64
	// estRegret accumulates, per observation, the primary model's
	// prediction for the shadow's arm minus that for the arm actually
	// run — a model-based cumulative-regret estimate of switching to
	// the shadow (negative = the shadow's choices look better). It is
	// denominated in the *primary stream's* learning signal: seconds
	// under the default runtime reward, reward units otherwise — never
	// in the shadow's own reward (contrast matchedReward).
	estRegret float64
}

// ShadowInfo is a point-in-time summary of one shadow's evaluation
// counters.
type ShadowInfo struct {
	Name   string `json:"name"`
	Policy string `json:"policy"`
	// Round is how many observations the shadow's own models absorbed.
	Round int `json:"round"`
	// Decisions and Observations count the contexts selected on and the
	// runtimes absorbed.
	Decisions    uint64 `json:"decisions"`
	Observations uint64 `json:"observations"`
	// Agreements counts observations where the shadow agreed with the
	// primary's arm; MatchedRuntimeTotal sums the measured runtimes of
	// those rounds (replay evaluation: divide by Agreements for the
	// shadow's estimated mean runtime). MatchedRewardTotal is the same
	// replay sum scored by the shadow's own reward.
	Agreements          uint64  `json:"agreements"`
	MatchedRuntimeTotal float64 `json:"matched_runtime_total"`
	MatchedRewardTotal  float64 `json:"matched_reward_total"`
	// Reward is the shadow's canonical reward spec (the stream's,
	// inherited, unless the shadow declared its own); RewardTotal sums
	// the shadow's reward score of every observed round — the served
	// traffic's worth under this shadow's reward definition.
	Reward      RewardSpec `json:"reward"`
	RewardTotal float64    `json:"reward_total"`
	// EstimatedRegret is the cumulative model-estimated extra cost of
	// the shadow's choices over the primary's, in the primary stream's
	// learning-signal units — seconds under the default runtime reward,
	// the primary's reward scale otherwise (never the shadow's own
	// reward; contrast MatchedRewardTotal). Negative = the shadow's
	// choices look better under the primary's learned models.
	EstimatedRegret float64 `json:"estimated_regret"`
}

func (sh *shadow) info() ShadowInfo {
	return ShadowInfo{
		Name:                sh.name,
		Policy:              sh.engine.Kind(),
		Round:               sh.engine.Round(),
		Decisions:           sh.decisions,
		Observations:        sh.observations,
		Agreements:          sh.agreements,
		MatchedRuntimeTotal: sh.matchedRuntime,
		MatchedRewardTotal:  sh.matchedReward,
		Reward:              sh.rw.spec,
		RewardTotal:         sh.rewardTotal,
		EstimatedRegret:     sh.estRegret,
	}
}

// shadowsInfoLocked summarises the stream's shadows. Callers hold st.mu.
func (st *stream) shadowsInfoLocked() []ShadowInfo {
	if len(st.shadows) == 0 {
		return nil
	}
	out := make([]ShadowInfo, len(st.shadows))
	for i, sh := range st.shadows {
		out[i] = sh.info()
	}
	return out
}

// shadowRecommendLocked lets every shadow select an arm for x and
// returns the per-shadow choices keyed by shadow name. Callers hold
// st.mu.
func (st *stream) shadowRecommendLocked(x []float64) map[string]int {
	if len(st.shadows) == 0 {
		return nil
	}
	arms := make(map[string]int, len(st.shadows))
	for _, sh := range st.shadows {
		d, err := sh.engine.Recommend(x)
		if err != nil {
			// Shadows share the stream's dimension, so this cannot be a
			// caller error; skip the round rather than fail the primary.
			continue
		}
		sh.decisions++
		arms[sh.name] = d.Arm
	}
	return arms
}

// shadowObserveLocked feeds one completed observation to every shadow:
// off-policy model update under the shadow's own reward, agreement and
// replay counters, and the model-estimated regret of the shadow's
// earlier choice. The same Outcome is replayed through each shadow's
// reward function, so shadows with different RewardSpecs score (and
// learn from) the identical ground truth differently — live A/B of
// reward regimes, not just policies. shadowArms maps shadow name to the
// arm it chose when the context was first seen (shadows attached since
// then are absent and only learn). Callers hold st.mu.
func (st *stream) shadowObserveLocked(shadowArms map[string]int, arm int, x []float64, o Outcome) {
	var preds []float64
	if len(shadowArms) > 0 {
		preds, _ = st.engine.PredictAll(x) // nil when the primary has no model
	}
	hw := st.engine.Hardware()[arm]
	for _, sh := range st.shadows {
		sh.observations++
		// The shadow's own score of the round actually served.
		score := sh.rw.fn(o, hw)
		sh.rewardTotal += score
		if sa, ok := shadowArms[sh.name]; ok {
			if sa == arm {
				sh.agreements++
				sh.matchedRuntime += o.Runtime
				sh.matchedReward += score
			}
			if sa < len(preds) && arm < len(preds) {
				sh.estRegret += preds[sa] - preds[arm]
			}
		}
		// Off-policy update: the primary's arm and the measured outcome
		// are the only ground truth available; the shadow learns from its
		// own reward of them.
		_ = sh.engine.Observe(arm, x, score)
	}
}

// AttachShadow attaches a shadow policy to a stream under shadowName.
// The shadow shares the stream's hardware set, feature dimension, and
// — with this constructor — its reward; it receives every subsequent
// context and observation and never serves traffic. Its evaluation
// counters appear in StreamInfo, Stats, and the shadows HTTP endpoint.
func (s *Service) AttachShadow(streamName, shadowName string, spec PolicySpec) error {
	return s.attachShadow(streamName, shadowName, spec, nil)
}

// AttachShadowReward is AttachShadow with the shadow's own RewardSpec:
// the shadow replays every Outcome through rw instead of the stream's
// reward, so an operator can A/B a reward regime (same or different
// policy) on live traffic before switching the stream over.
func (s *Service) AttachShadowReward(streamName, shadowName string, spec PolicySpec, rw RewardSpec) error {
	return s.attachShadow(streamName, shadowName, spec, &rw)
}

// attachShadow implements both attach forms. rwSpec nil inherits the
// stream's reward.
func (s *Service) attachShadow(streamName, shadowName string, spec PolicySpec, rwSpec *RewardSpec) error {
	st, err := s.stream(streamName)
	if err != nil {
		return err
	}
	if !ValidStreamName(shadowName) {
		return fmt.Errorf("%w: %q", ErrBadStreamName, shadowName)
	}
	var rw rewardState
	inherited := rwSpec == nil
	if !inherited {
		if rw, err = compileReward(*rwSpec); err != nil {
			return err
		}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if inherited {
		rw = st.rw
	}
	for _, sh := range st.shadows {
		if sh.name == shadowName {
			return fmt.Errorf("%w: %q", ErrShadowExists, shadowName)
		}
	}
	// Shadows replay under the stream's adaptation mode, so their models
	// forget (or slide) exactly like the primary's and the A/B
	// comparison stays fair in non-stationary environments. The on-drift
	// response is the primary's alone: shadows are never auto-reset (and
	// carry no detectors), so a model-free shadow attaches fine to a
	// reset stream.
	shAdapt := st.adapt
	shAdapt.OnDrift = DriftObserve
	if k, kerr := spec.kind(); kerr == nil && k == PolicyRandom {
		// Model-free shadows have nothing to forget; attaching one to an
		// adaptive stream must not fail.
		shAdapt = defaultAdapt()
	}
	eng, err := newEngine(st.engine.Hardware(), st.engine.Dim(), core.Options{Seed: spec.Seed}, spec, shAdapt)
	if err != nil {
		return err
	}
	st.shadows = append(st.shadows, &shadow{name: shadowName, engine: eng, rw: rw, rwInherited: inherited})
	return nil
}

// DetachShadow removes a shadow from a stream, dropping its model
// state, counters, and recorded per-ticket selections (so a future
// shadow reusing the name is never credited with this one's choices).
func (s *Service) DetachShadow(streamName, shadowName string) error {
	st, err := s.stream(streamName)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for i, sh := range st.shadows {
		if sh.name == shadowName {
			st.shadows = append(st.shadows[:i], st.shadows[i+1:]...)
			for _, p := range st.ledger.snapshotPending() {
				delete(p.shadowArms, shadowName)
			}
			return nil
		}
	}
	return fmt.Errorf("%w: %q", ErrShadowNotFound, shadowName)
}

// Shadows returns the evaluation counters of every shadow attached to a
// stream, in attachment order.
func (s *Service) Shadows(streamName string) ([]ShadowInfo, error) {
	st, err := s.stream(streamName)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := st.shadowsInfoLocked()
	if out == nil {
		out = []ShadowInfo{} // [] not null over HTTP
	}
	return out, nil
}
