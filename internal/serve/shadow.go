package serve

import (
	"errors"
	"fmt"

	"banditware/internal/core"
)

// Shadow errors.
var (
	ErrShadowExists   = errors.New("serve: shadow already attached")
	ErrShadowNotFound = errors.New("serve: shadow not found")
)

// shadow is a never-serving policy attached to a stream for live A/B
// evaluation. It sees every context the primary sees (selecting its own
// arm, consuming its own randomness) and learns off-policy from every
// observation (the primary's arm and the measured runtime — the only
// counterfactual-free data available), but its selections never reach a
// client. The counters let an operator compare a candidate policy
// against the serving one on live traffic before switching.
type shadow struct {
	name   string
	engine Engine

	// decisions counts contexts the shadow selected on; observations
	// counts runtimes it absorbed (decisions whose ticket was evicted or
	// expired are never observed).
	decisions    uint64
	observations uint64
	// agreements counts observations where the shadow had chosen the
	// same arm the primary ran; matchedRuntime sums the actual runtimes
	// of those rounds — the replay-style estimate of the shadow's
	// achieved runtime (Li et al.'s offline policy evaluation: rounds
	// where the logged action matches the evaluated policy's choice are
	// unbiased samples of its performance).
	agreements     uint64
	matchedRuntime float64
	// estRegret accumulates, per observation, the primary model's
	// predicted runtime of the shadow's arm minus that of the arm
	// actually run — a model-based cumulative-regret estimate of
	// switching to the shadow (negative = shadow looks faster).
	estRegret float64
}

// ShadowInfo is a point-in-time summary of one shadow's evaluation
// counters.
type ShadowInfo struct {
	Name   string `json:"name"`
	Policy string `json:"policy"`
	// Round is how many observations the shadow's own models absorbed.
	Round int `json:"round"`
	// Decisions and Observations count the contexts selected on and the
	// runtimes absorbed.
	Decisions    uint64 `json:"decisions"`
	Observations uint64 `json:"observations"`
	// Agreements counts observations where the shadow agreed with the
	// primary's arm; MatchedRuntimeTotal sums the measured runtimes of
	// those rounds (replay evaluation: divide by Agreements for the
	// shadow's estimated mean runtime).
	Agreements          uint64  `json:"agreements"`
	MatchedRuntimeTotal float64 `json:"matched_runtime_total"`
	// EstimatedRegret is the cumulative model-estimated extra runtime of
	// the shadow's choices over the primary's (negative = the shadow's
	// choices look faster under the primary's learned models).
	EstimatedRegret float64 `json:"estimated_regret"`
}

func (sh *shadow) info() ShadowInfo {
	return ShadowInfo{
		Name:                sh.name,
		Policy:              sh.engine.Kind(),
		Round:               sh.engine.Round(),
		Decisions:           sh.decisions,
		Observations:        sh.observations,
		Agreements:          sh.agreements,
		MatchedRuntimeTotal: sh.matchedRuntime,
		EstimatedRegret:     sh.estRegret,
	}
}

// shadowsInfoLocked summarises the stream's shadows. Callers hold st.mu.
func (st *stream) shadowsInfoLocked() []ShadowInfo {
	if len(st.shadows) == 0 {
		return nil
	}
	out := make([]ShadowInfo, len(st.shadows))
	for i, sh := range st.shadows {
		out[i] = sh.info()
	}
	return out
}

// shadowRecommendLocked lets every shadow select an arm for x and
// returns the per-shadow choices keyed by shadow name. Callers hold
// st.mu.
func (st *stream) shadowRecommendLocked(x []float64) map[string]int {
	if len(st.shadows) == 0 {
		return nil
	}
	arms := make(map[string]int, len(st.shadows))
	for _, sh := range st.shadows {
		d, err := sh.engine.Recommend(x)
		if err != nil {
			// Shadows share the stream's dimension, so this cannot be a
			// caller error; skip the round rather than fail the primary.
			continue
		}
		sh.decisions++
		arms[sh.name] = d.Arm
	}
	return arms
}

// shadowObserveLocked feeds one completed observation to every shadow:
// off-policy model update, agreement/replay counters, and the
// model-estimated regret of the shadow's earlier choice. shadowArms maps
// shadow name to the arm it chose when the context was first seen
// (shadows attached since then are absent and only learn). Callers hold
// st.mu.
func (st *stream) shadowObserveLocked(shadowArms map[string]int, arm int, x []float64, runtime float64) {
	var preds []float64
	if len(shadowArms) > 0 {
		preds, _ = st.engine.PredictAll(x) // nil when the primary has no model
	}
	for _, sh := range st.shadows {
		sh.observations++
		if sa, ok := shadowArms[sh.name]; ok {
			if sa == arm {
				sh.agreements++
				sh.matchedRuntime += runtime
			}
			if sa < len(preds) && arm < len(preds) {
				sh.estRegret += preds[sa] - preds[arm]
			}
		}
		// Off-policy update: the primary's arm and the measured runtime
		// are the only ground truth available.
		_ = sh.engine.Observe(arm, x, runtime)
	}
}

// AttachShadow attaches a shadow policy to a stream under shadowName.
// The shadow shares the stream's hardware set and feature dimension,
// receives every subsequent context and observation, and never serves
// traffic; its evaluation counters appear in StreamInfo, Stats, and the
// shadows HTTP endpoint.
func (s *Service) AttachShadow(streamName, shadowName string, spec PolicySpec) error {
	st, err := s.stream(streamName)
	if err != nil {
		return err
	}
	if !ValidStreamName(shadowName) {
		return fmt.Errorf("%w: %q", ErrBadStreamName, shadowName)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, sh := range st.shadows {
		if sh.name == shadowName {
			return fmt.Errorf("%w: %q", ErrShadowExists, shadowName)
		}
	}
	eng, err := newEngine(st.engine.Hardware(), st.engine.Dim(), core.Options{Seed: spec.Seed}, spec)
	if err != nil {
		return err
	}
	st.shadows = append(st.shadows, &shadow{name: shadowName, engine: eng})
	return nil
}

// DetachShadow removes a shadow from a stream, dropping its model
// state, counters, and recorded per-ticket selections (so a future
// shadow reusing the name is never credited with this one's choices).
func (s *Service) DetachShadow(streamName, shadowName string) error {
	st, err := s.stream(streamName)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for i, sh := range st.shadows {
		if sh.name == shadowName {
			st.shadows = append(st.shadows[:i], st.shadows[i+1:]...)
			for _, p := range st.ledger.snapshotPending() {
				delete(p.shadowArms, shadowName)
			}
			return nil
		}
	}
	return fmt.Errorf("%w: %q", ErrShadowNotFound, shadowName)
}

// Shadows returns the evaluation counters of every shadow attached to a
// stream, in attachment order.
func (s *Service) Shadows(streamName string) ([]ShadowInfo, error) {
	st, err := s.stream(streamName)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := st.shadowsInfoLocked()
	if out == nil {
		out = []ShadowInfo{} // [] not null over HTTP
	}
	return out, nil
}
