package serve

// HTTP coverage for the adaptation/drift surface: the "adapt" create
// field (bare string and object forms), the drift endpoint's success
// and error paths, and the drift counters in stream info and stats.

import (
	"net/http"
	"testing"
)

// TestHTTPCreateWithAdaptSpec: the create route accepts an adapt spec
// in both JSON forms, canonicalises it into the stream info, and
// rejects malformed specs with 400.
func TestHTTPCreateWithAdaptSpec(t *testing.T) {
	_, srv := newTestServer(t)
	var info StreamInfo
	code := doJSON(t, "POST", srv.URL+"/v1/streams", map[string]any{
		"name": "bare", "hardware_spec": "H0=2x16;H1=3x24", "dim": 1,
		"adapt": "forgetting",
	}, &info)
	if code != http.StatusCreated {
		t.Fatalf("bare-string adapt: status %d", code)
	}
	if info.Adapt.Mode != AdaptForgetting || info.Adapt.Factor != 0.98 || info.Adapt.OnDrift != DriftObserve {
		t.Fatalf("bare-string adapt canonicalised to %+v", info.Adapt)
	}
	code = doJSON(t, "POST", srv.URL+"/v1/streams", map[string]any{
		"name": "obj", "hardware_spec": "H0=2x16;H1=3x24", "dim": 1,
		"adapt": map[string]any{"mode": "window", "window": 32, "on_drift": "reset"},
	}, &info)
	if code != http.StatusCreated {
		t.Fatalf("object adapt: status %d", code)
	}
	if info.Adapt.Mode != AdaptWindow || info.Adapt.Window != 32 || info.Adapt.OnDrift != DriftReset {
		t.Fatalf("object adapt canonicalised to %+v", info.Adapt)
	}
	// A stream that never declared adaptation reports the canonical
	// default.
	code = doJSON(t, "POST", srv.URL+"/v1/streams", map[string]any{
		"name": "plain", "hardware_spec": "H0=2x16;H1=3x24", "dim": 1,
	}, &info)
	if code != http.StatusCreated {
		t.Fatalf("plain create: status %d", code)
	}
	if info.Adapt.Mode != AdaptNone || info.Adapt.OnDrift != DriftObserve {
		t.Fatalf("default adapt = %+v", info.Adapt)
	}
	// Malformed specs fail with 400 before anything is created.
	var errResp map[string]string
	for _, adapt := range []any{
		"quantum",
		map[string]any{"mode": "forgetting", "factor": 2},
		map[string]any{"mode": "none", "window": 5},
		map[string]any{"mode": "window", "typo_field": 1},
	} {
		code = doJSON(t, "POST", srv.URL+"/v1/streams", map[string]any{
			"name": "bad", "hardware_spec": "H0=2x16", "dim": 1, "adapt": adapt,
		}, &errResp)
		if code != http.StatusBadRequest {
			t.Fatalf("adapt %v: status %d, want 400 (%v)", adapt, code, errResp)
		}
	}
	var infos []StreamInfo
	doJSON(t, "GET", srv.URL+"/v1/streams", nil, &infos)
	if len(infos) != 3 {
		t.Fatalf("rejected creates left streams behind: %d", len(infos))
	}
}

// TestHTTPDriftEndpoint: the drift route reports per-arm detector
// state, and its counters match stream info and stats after a
// detection.
func TestHTTPDriftEndpoint(t *testing.T) {
	_, srv := newTestServer(t)
	var info StreamInfo
	code := doJSON(t, "POST", srv.URL+"/v1/streams", map[string]any{
		"name": "jobs", "hardware_spec": "H0=2x16;H1=3x24", "dim": 1, "seed": 1,
		"epsilon0": 0,
		"adapt": map[string]any{
			"drift_delta": 0.5, "drift_threshold": 20,
			"drift_min_samples": 3, "drift_warmup": 5,
		},
	}, &info)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	var di DriftInfo
	code = doJSON(t, "GET", srv.URL+"/v1/streams/jobs/drift", nil, &di)
	if code != http.StatusOK {
		t.Fatalf("drift: status %d", code)
	}
	if di.Stream != "jobs" || len(di.Arms) != 2 || di.Detections != 0 {
		t.Fatalf("pristine drift info: %+v", di)
	}
	if di.Arms[1].Hardware == "" || di.Arms[1].Threshold != 20 {
		t.Fatalf("arm drift info: %+v", di.Arms[1])
	}
	// Feed a stable regime then a level shift on arm 0.
	observe := func(rt float64) {
		code := doJSON(t, "POST", srv.URL+"/v1/streams/jobs/observe", map[string]any{
			"arm": 0, "features": []float64{3}, "runtime": rt,
		}, nil)
		if code != http.StatusOK {
			t.Fatalf("observe: status %d", code)
		}
	}
	for i := 0; i < 30; i++ {
		observe(50)
	}
	for i := 0; i < 15; i++ {
		observe(500)
	}
	code = doJSON(t, "GET", srv.URL+"/v1/streams/jobs/drift", nil, &di)
	if code != http.StatusOK {
		t.Fatalf("drift after traffic: status %d", code)
	}
	if di.Detections < 1 || di.Arms[0].Detections < 1 {
		t.Fatalf("no detection after level shift: %+v", di)
	}
	if di.Arms[1].Detections != 0 {
		t.Fatalf("idle arm detected drift: %+v", di)
	}
	doJSON(t, "GET", srv.URL+"/v1/streams/jobs", nil, &info)
	if info.DriftEvents != di.Detections {
		t.Fatalf("stream info drift_events %d, drift endpoint %d", info.DriftEvents, di.Detections)
	}
	if len(info.DriftByArm) != 2 || info.DriftByArm[0] != di.Arms[0].Detections {
		t.Fatalf("stream info drift_by_arm %v", info.DriftByArm)
	}
	var stats Stats
	doJSON(t, "GET", srv.URL+"/v1/stats", nil, &stats)
	if stats.TotalDriftEvents != di.Detections {
		t.Fatalf("stats total_drift_events %d, want %d", stats.TotalDriftEvents, di.Detections)
	}
}

// TestHTTPDriftEndpointErrors: the error paths — unknown stream (404)
// and unsupported methods (405).
func TestHTTPDriftEndpointErrors(t *testing.T) {
	_, srv := newTestServer(t)
	var errResp map[string]string
	code := doJSON(t, "GET", srv.URL+"/v1/streams/ghost/drift", nil, &errResp)
	if code != http.StatusNotFound {
		t.Fatalf("unknown stream: status %d, want 404", code)
	}
	if errResp["error"] == "" {
		t.Fatal("unknown stream: empty error body")
	}
	createJobsStream(t, srv.URL)
	if code := doJSON(t, "POST", srv.URL+"/v1/streams/jobs/drift", map[string]any{}, nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST drift: status %d, want 405", code)
	}
	if code := doJSON(t, "DELETE", srv.URL+"/v1/streams/jobs/drift", nil, nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE drift: status %d, want 405", code)
	}
}
