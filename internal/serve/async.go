package serve

import (
	"sync"
	"sync/atomic"
)

// asyncObserver is the opt-in background observe queue
// (ServiceOptions.ObserveQueue > 0): observe calls validate and resolve
// synchronously, then enqueue the model update to a single drainer
// goroutine instead of applying it under the stream lock, decoupling
// learning cost from serve latency.
//
// Semantics:
//
//   - Bounded + backpressure: the channel holds at most ObserveQueue
//     tasks; a full queue blocks the enqueueing caller (never drops).
//   - Order-preserving: one drainer consumes the global FIFO, so
//     observes apply in exactly the order their calls enqueued them —
//     which is why a drained service is byte-identical (snapshots,
//     deltas) to a synchronous one fed the same sequence.
//   - Lock coalescing: consecutive already-queued tasks for the same
//     stream apply under one lock acquisition — per-arm batching of
//     additive RLS updates without reordering anything.
//   - Drain-on-snapshot: Save, SaveStream, and CaptureDelta flush the
//     queue first (see FlushObserves), so persisted state never misses
//     an acknowledged observe.
//   - Deferred errors: a task that fails at apply time (unknown ticket,
//     bad arm, bad dimension) had already returned nil to its caller;
//     the failure is counted in Stats.AsyncErrors instead.
//
// After Close the queue is gone and every observe path falls back to
// the synchronous apply, so a closed service remains fully usable.
type asyncObserver struct {
	svc  *Service
	ch   chan observeTask
	done chan struct{}

	// mu serialises enqueues against close: enqueuers hold the read
	// side while sending (possibly blocking on a full queue), stop takes
	// the write side to flip closed and close the channel safely.
	mu     sync.RWMutex
	closed bool

	depth atomic.Int64
	errs  atomic.Uint64
	bufs  sync.Pool // *[]float64 feature copies for direct observes
}

// observeTask is one queued model update: a ticket redemption (ticket
// true, keyed by seq) or a direct observe (arm + pooled feature copy).
// A task with flush set is a drain marker: the drainer closes it once
// every earlier task has applied.
type observeTask struct {
	st     *stream
	flush  chan struct{}
	ticket bool
	seq    uint64
	arm    int
	x      *[]float64
	o      Outcome
}

func newAsyncObserver(svc *Service, queue int) *asyncObserver {
	a := &asyncObserver{
		svc:  svc,
		ch:   make(chan observeTask, queue),
		done: make(chan struct{}),
	}
	a.bufs.New = func() any { return new([]float64) }
	go a.run()
	return a
}

// getBuf copies x into a pooled buffer the queue owns.
func (a *asyncObserver) getBuf(x []float64) *[]float64 {
	buf := a.bufs.Get().(*[]float64)
	*buf = append((*buf)[:0], x...)
	return buf
}

func (a *asyncObserver) putBuf(buf *[]float64) { a.bufs.Put(buf) }

// enqueueTicket queues a ticket redemption; false means the queue is
// closed and the caller must apply synchronously.
func (a *asyncObserver) enqueueTicket(st *stream, seq uint64, o Outcome) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		return false
	}
	a.depth.Add(1)
	a.ch <- observeTask{st: st, ticket: true, seq: seq, o: o}
	return true
}

// enqueueDirect queues a direct observe, copying the caller's stable
// feature slice into a pooled buffer; false means closed.
func (a *asyncObserver) enqueueDirect(st *stream, arm int, x []float64, o Outcome) bool {
	return a.enqueueOwned(st, arm, a.getBuf(x), o)
}

// enqueueOwned queues a direct observe whose features were already
// copied with getBuf. On false (closed) ownership of buf returns to
// the caller.
func (a *asyncObserver) enqueueOwned(st *stream, arm int, buf *[]float64, o Outcome) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		return false
	}
	a.depth.Add(1)
	a.ch <- observeTask{st: st, arm: arm, x: buf, o: o}
	return true
}

// flush blocks until every task enqueued before it has applied.
func (a *asyncObserver) flush() {
	a.mu.RLock()
	if a.closed {
		a.mu.RUnlock()
		return
	}
	done := make(chan struct{})
	a.ch <- observeTask{flush: done}
	a.mu.RUnlock()
	<-done
}

// stop drains the queue and shuts the drainer down; observe paths fall
// back to synchronous apply afterwards. Idempotent.
func (a *asyncObserver) stop() {
	a.flush()
	a.mu.Lock()
	if !a.closed {
		a.closed = true
		close(a.ch)
	}
	a.mu.Unlock()
	<-a.done
}

func (a *asyncObserver) pending() uint64 {
	if d := a.depth.Load(); d > 0 {
		return uint64(d)
	}
	return 0
}

func (a *asyncObserver) errors() uint64 { return a.errs.Load() }

// run is the drainer: apply tasks in FIFO order, coalescing
// consecutive already-queued tasks for the same stream under one lock
// acquisition. pending holds the one task pulled off the channel that
// broke a coalescing run (different stream, or a flush marker); it is
// always handled before the next receive, preserving FIFO order.
func (a *asyncObserver) run() {
	defer close(a.done)
	var pending observeTask
	hasPending := false
	for {
		var t observeTask
		if hasPending {
			t, hasPending = pending, false
		} else {
			var ok bool
			t, ok = <-a.ch
			if !ok {
				return
			}
		}
		if t.flush != nil {
			close(t.flush)
			continue
		}
		st := t.st
		st.mu.Lock()
		a.applyLocked(t)
		for {
			n, ok := <-peek(a.ch)
			if !ok {
				break
			}
			if n.flush == nil && n.st == st {
				a.applyLocked(n)
				continue
			}
			pending, hasPending = n, true
			break
		}
		st.mu.Unlock()
	}
}

// peek returns a.ch when a task is immediately available and a closed
// nil-result channel otherwise, so the coalescing loop never blocks
// while holding a stream lock.
func peek(ch chan observeTask) chan observeTask {
	if len(ch) > 0 {
		return ch
	}
	return closedTaskCh
}

var closedTaskCh = func() chan observeTask {
	ch := make(chan observeTask)
	close(ch)
	return ch
}()

// applyLocked applies one task under its stream's lock, recycling the
// feature buffer and counting deferred failures.
func (a *asyncObserver) applyLocked(t observeTask) {
	a.depth.Add(-1)
	var err error
	if t.ticket {
		err = t.st.observeTicketLocked(a.svc.now(), "", t.seq, t.o)
	} else {
		err = t.st.observeDirectLocked(t.arm, *t.x, t.o)
		a.putBuf(t.x)
	}
	if err != nil {
		a.errs.Add(1)
	}
}
