package serve

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"banditware/internal/core"
	"banditware/internal/hardware"
	"banditware/internal/rng"
)

func testHW() hardware.Set {
	return hardware.Set{
		{Name: "H0", CPUs: 2, MemoryGB: 16},
		{Name: "H1", CPUs: 3, MemoryGB: 24},
		{Name: "H2", CPUs: 4, MemoryGB: 16},
	}
}

// fakeClock is a manually advanced clock for TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestService(t *testing.T, opts ServiceOptions, streams ...string) *Service {
	t.Helper()
	s := NewService(opts)
	for i, name := range streams {
		err := s.CreateStream(name, StreamConfig{
			Hardware: testHW(), Dim: 1, Options: core.Options{Seed: uint64(i + 1)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestStreamRegistry(t *testing.T) {
	s := newTestService(t, ServiceOptions{}, "alpha", "beta")
	if err := s.CreateStream("alpha", StreamConfig{Hardware: testHW(), Dim: 1}); !errors.Is(err, ErrStreamExists) {
		t.Fatalf("duplicate create: %v, want ErrStreamExists", err)
	}
	for _, bad := range []string{"", ".", "..", "a/b", "a#b", "white space", string(make([]byte, 200))} {
		if err := s.CreateStream(bad, StreamConfig{Hardware: testHW(), Dim: 1}); !errors.Is(err, ErrBadStreamName) {
			t.Fatalf("create(%q): %v, want ErrBadStreamName", bad, err)
		}
	}
	names := s.StreamNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("names = %v", names)
	}
	if s.NumStreams() != 2 {
		t.Fatalf("NumStreams = %d", s.NumStreams())
	}
	if err := s.RemoveStream("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recommend("alpha", []float64{1}); !errors.Is(err, ErrStreamNotFound) {
		t.Fatalf("recommend on removed stream: %v", err)
	}
	if err := s.RemoveStream("alpha"); !errors.Is(err, ErrStreamNotFound) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestTicketIDRoundTrip(t *testing.T) {
	id := ticketID("my-stream.v2", 0x2a)
	stream, seq, err := ParseTicketID(id)
	if err != nil || stream != "my-stream.v2" || seq != 0x2a {
		t.Fatalf("parsed %q -> %q, %d, %v", id, stream, seq, err)
	}
	for _, bad := range []string{"", "nohash", "#5", "x#", "x#zz"} {
		if _, _, err := ParseTicketID(bad); !errors.Is(err, ErrBadTicket) {
			t.Fatalf("ParseTicketID(%q): %v, want ErrBadTicket", bad, err)
		}
	}
}

func TestTicketLifecycle(t *testing.T) {
	s := newTestService(t, ServiceOptions{}, "jobs")
	tk, err := s.Recommend("jobs", []float64{10})
	if err != nil {
		t.Fatal(err)
	}
	if tk.Stream != "jobs" || tk.ID == "" || len(tk.Predicted) != 3 {
		t.Fatalf("ticket = %+v", tk)
	}
	info, _ := s.StreamInfo("jobs")
	if info.Pending != 1 || info.Issued != 1 {
		t.Fatalf("info = %+v", info)
	}
	// Bad runtime must not burn the ticket.
	if err := s.Observe(tk.ID, math.NaN()); !errors.Is(err, core.ErrBadValue) {
		t.Fatalf("NaN runtime: %v", err)
	}
	if err := s.Observe(tk.ID, 42.0); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Round("jobs"); n != 1 {
		t.Fatalf("round = %d after observe", n)
	}
	if err := s.Observe(tk.ID, 42.0); !errors.Is(err, ErrTicketNotFound) {
		t.Fatalf("double observe: %v", err)
	}
	if err := s.Observe("jobs#ffff", 1); !errors.Is(err, ErrTicketNotFound) {
		t.Fatalf("unknown ticket: %v", err)
	}
	if err := s.Observe("nostream#1", 1); !errors.Is(err, ErrStreamNotFound) {
		t.Fatalf("unknown stream ticket: %v", err)
	}
	if err := s.Observe("garbage", 1); !errors.Is(err, ErrBadTicket) {
		t.Fatalf("garbage ticket: %v", err)
	}
}

func TestTicketExpiryAndEviction(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	s := NewService(ServiceOptions{Now: clock.now, TicketTTL: time.Minute, MaxPending: 3})
	if err := s.CreateStream("jobs", StreamConfig{Hardware: testHW(), Dim: 1}); err != nil {
		t.Fatal(err)
	}
	old, err := s.Recommend("jobs", []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	clock.advance(2 * time.Minute)
	if err := s.Observe(old.ID, 5); !errors.Is(err, ErrTicketExpired) {
		t.Fatalf("expired observe: %v, want ErrTicketExpired", err)
	}
	// Fill past capacity: oldest evicted.
	var ids []string
	for i := 0; i < 4; i++ {
		tk, err := s.Recommend("jobs", []float64{float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, tk.ID)
	}
	if err := s.Observe(ids[0], 5); !errors.Is(err, ErrTicketNotFound) {
		t.Fatalf("evicted observe: %v, want ErrTicketNotFound", err)
	}
	if err := s.Observe(ids[3], 5); err != nil {
		t.Fatalf("fresh observe: %v", err)
	}
	info, _ := s.StreamInfo("jobs")
	if info.Expired != 1 || info.Evicted != 1 {
		t.Fatalf("counters = %+v", info)
	}
}

func TestBatchOps(t *testing.T) {
	s := newTestService(t, ServiceOptions{}, "jobs")
	xs := [][]float64{{1}, {2}, {3}}
	tks, err := s.RecommendBatch("jobs", xs)
	if err != nil || len(tks) != 3 {
		t.Fatalf("batch: %v, %d tickets", err, len(tks))
	}
	// A dimension error anywhere rejects the whole batch atomically.
	before, _ := s.StreamInfo("jobs")
	if _, err := s.RecommendBatch("jobs", [][]float64{{1}, {2, 9}}); !errors.Is(err, core.ErrDim) {
		t.Fatalf("bad batch: %v, want ErrDim", err)
	}
	after, _ := s.StreamInfo("jobs")
	if after.Issued != before.Issued || after.Pending != before.Pending {
		t.Fatalf("failed batch issued tickets: %+v -> %+v", before, after)
	}

	obs := []TicketObservation{
		{TicketID: tks[0].ID, Runtime: 10},
		{TicketID: "garbage", Runtime: 1},
		{TicketID: tks[1].ID, Runtime: 20},
		{TicketID: tks[0].ID, Runtime: 10}, // double
		{TicketID: "ghost#1", Runtime: 1},  // unknown stream
	}
	applied, err := s.ObserveBatch(obs)
	if applied != 2 {
		t.Fatalf("applied = %d, want 2", applied)
	}
	if !errors.Is(err, ErrBadTicket) || !errors.Is(err, ErrTicketNotFound) || !errors.Is(err, ErrStreamNotFound) {
		t.Fatalf("joined error missing parts: %v", err)
	}
	if n, _ := s.Round("jobs"); n != 2 {
		t.Fatalf("round = %d, want 2", n)
	}
}

// TestDeterministicPerStream: with fixed seeds, the decision sequence of
// each stream is identical however the streams are interleaved, and
// matches a standalone bandit with the same options.
func TestDeterministicPerStream(t *testing.T) {
	type step struct {
		x       float64
		runtime float64
	}
	// Shared request trace per stream.
	r := rng.New(7)
	steps := make([]step, 60)
	for i := range steps {
		steps[i] = step{x: r.Uniform(1, 100), runtime: r.Uniform(10, 500)}
	}

	// Reference: isolated bandits.
	ref := make(map[string][]int)
	for name, seed := range map[string]uint64{"a": 11, "b": 22} {
		b, err := core.New(testHW(), 1, core.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range steps {
			d, err := b.Recommend([]float64{st.x})
			if err != nil {
				t.Fatal(err)
			}
			if err := b.Observe(d.Arm, []float64{st.x}, st.runtime); err != nil {
				t.Fatal(err)
			}
			ref[name] = append(ref[name], d.Arm)
		}
	}

	// Service: interleave the two streams step by step through the
	// ticket path.
	s := NewService(ServiceOptions{})
	for name, seed := range map[string]uint64{"a": 11, "b": 22} {
		if err := s.CreateStream(name, StreamConfig{Hardware: testHW(), Dim: 1, Options: core.Options{Seed: seed}}); err != nil {
			t.Fatal(err)
		}
	}
	got := make(map[string][]int)
	for i, st := range steps {
		order := []string{"a", "b"}
		if i%2 == 1 {
			order = []string{"b", "a"}
		}
		for _, name := range order {
			tk, err := s.Recommend(name, []float64{st.x})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Observe(tk.ID, st.runtime); err != nil {
				t.Fatal(err)
			}
			got[name] = append(got[name], tk.Arm)
		}
	}
	for name := range ref {
		for i := range ref[name] {
			if ref[name][i] != got[name][i] {
				t.Fatalf("stream %s diverged at step %d: %d vs %d", name, i, ref[name][i], got[name][i])
			}
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	clock := &fakeClock{t: time.Unix(5000, 0)}
	s := NewService(ServiceOptions{Now: clock.now, TicketTTL: time.Hour})
	seeds := map[string]uint64{"bp3d": 1, "matmul": 2}
	for name, seed := range seeds {
		if err := s.CreateStream(name, StreamConfig{
			Hardware: testHW(), Dim: 1,
			Options: core.Options{Seed: seed, ToleranceRatio: 0.05},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Train both streams and leave some tickets pending.
	r := rng.New(3)
	var pendings []Ticket
	for name := range seeds {
		for i := 0; i < 40; i++ {
			x := r.Uniform(1, 50)
			tk, err := s.Recommend(name, []float64{x})
			if err != nil {
				t.Fatal(err)
			}
			if i%5 == 4 {
				pendings = append(pendings, tk) // never observed pre-snapshot
				continue
			}
			if err := s.Observe(tk.ID, 3*x+float64(tk.Arm)*10); err != nil {
				t.Fatal(err)
			}
		}
	}

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()), ServiceOptions{Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}

	// Identical per-stream models, ε, round counts, and counters.
	for name := range seeds {
		wantInfo, _ := s.StreamInfo(name)
		gotInfo, err := back.StreamInfo(name)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%+v", wantInfo) != fmt.Sprintf("%+v", gotInfo) {
			t.Fatalf("stream %s info drifted:\n  want %+v\n  got  %+v", name, wantInfo, gotInfo)
		}
		for arm := 0; arm < len(testHW()); arm++ {
			want, _ := s.Model(name, arm)
			got, err := back.Model(name, arm)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(want.Bias-got.Bias) > 1e-12 {
				t.Fatalf("stream %s arm %d bias drifted: %v vs %v", name, arm, want.Bias, got.Bias)
			}
			for j := range want.Weights {
				if math.Abs(want.Weights[j]-got.Weights[j]) > 1e-12 {
					t.Fatalf("stream %s arm %d weights drifted", name, arm)
				}
			}
		}
	}
	// Pending tickets survive the snapshot and are still observable.
	for _, tk := range pendings {
		if err := back.Observe(tk.ID, 123); err != nil {
			t.Fatalf("pending ticket %s lost across snapshot: %v", tk.ID, err)
		}
	}
	// ...and still honor their TTL relative to original issue time.
	extra, err := back.Recommend("bp3d", []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	clock.advance(2 * time.Hour)
	if err := back.Observe(extra.ID, 9); !errors.Is(err, ErrTicketExpired) {
		t.Fatalf("restored TTL not enforced: %v", err)
	}
}

func TestLoadLegacySingleRecommenderState(t *testing.T) {
	b, err := core.New(testHW(), 1, core.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		x := []float64{float64(i + 1)}
		d, err := b.Recommend(x)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Observe(d.Arm, x, 2*x[0]+float64(d.Arm)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := b.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := Load(&buf, ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	info, err := s.StreamInfo("default")
	if err != nil {
		t.Fatal(err)
	}
	if info.Round != 30 {
		t.Fatalf("legacy round = %d, want 30", info.Round)
	}
	wantPred, _ := b.PredictAll([]float64{17})
	gotPred, err := s.PredictAll("default", []float64{17})
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantPred {
		if math.Abs(wantPred[i]-gotPred[i]) > 1e-12 {
			t.Fatalf("legacy predictions drifted: %v vs %v", wantPred, gotPred)
		}
	}
}

// TestConcurrentStress drives many goroutines through several streams at
// once; run with -race. Each goroutine does full recommend→observe round
// trips plus occasional reads and snapshots.
func TestConcurrentStress(t *testing.T) {
	streams := []string{"s0", "s1", "s2", "s3", "s4"}
	s := newTestService(t, ServiceOptions{}, streams...)
	const goroutines = 24
	const iters = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := streams[g%len(streams)]
			for i := 0; i < iters; i++ {
				x := []float64{float64(i%50 + 1)}
				tk, err := s.Recommend(name, x)
				if err != nil {
					t.Error(err)
					return
				}
				if err := s.Observe(tk.ID, 5*x[0]+float64(tk.Arm)); err != nil {
					t.Error(err)
					return
				}
				switch i % 25 {
				case 7:
					if _, err := s.PredictAll(name, x); err != nil {
						t.Error(err)
						return
					}
				case 13:
					s.Stats()
				case 19:
					var buf bytes.Buffer
					if err := s.Save(&buf); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	stats := s.Stats()
	wantTotal := uint64(goroutines * iters)
	if stats.TotalObserved != wantTotal || stats.TotalIssued != wantTotal {
		t.Fatalf("totals = %+v, want %d issued+observed", stats, wantTotal)
	}
	if stats.TotalPending != 0 {
		t.Fatalf("pending = %d, want 0", stats.TotalPending)
	}
	var roundSum int
	for _, info := range stats.Streams {
		roundSum += info.Round
	}
	if roundSum != int(wantTotal) {
		t.Fatalf("rounds sum = %d, want %d", roundSum, wantTotal)
	}
}
