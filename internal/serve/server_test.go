package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestNewServerHardening pins every slow-client bound on the
// constructed server: a zero value here means a load generator (or a
// hostile client) could hold a connection open forever.
func TestNewServerHardening(t *testing.T) {
	svc := NewService(ServiceOptions{})
	h := NewHandler(svc)
	srv := NewServer(h)

	if srv.Handler == nil {
		t.Fatal("NewServer dropped the handler")
	}
	checks := []struct {
		name string
		got  time.Duration
		want time.Duration
	}{
		{"ReadHeaderTimeout", srv.ReadHeaderTimeout, DefaultReadHeaderTimeout},
		{"ReadTimeout", srv.ReadTimeout, DefaultReadTimeout},
		{"WriteTimeout", srv.WriteTimeout, DefaultWriteTimeout},
		{"IdleTimeout", srv.IdleTimeout, DefaultIdleTimeout},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
		if c.got <= 0 {
			t.Errorf("%s = %v: unbounded", c.name, c.got)
		}
	}
	if srv.MaxHeaderBytes != DefaultMaxHeaderBytes {
		t.Errorf("MaxHeaderBytes = %d, want %d", srv.MaxHeaderBytes, DefaultMaxHeaderBytes)
	}
	if srv.MaxHeaderBytes <= 0 {
		t.Errorf("MaxHeaderBytes = %d: unbounded", srv.MaxHeaderBytes)
	}
}

// TestNewServerServes sanity-checks the hardened server actually
// serves the API (the timeouts must not interfere with a normal
// round trip).
func TestNewServerServes(t *testing.T) {
	srv := NewServer(NewHandler(NewService(ServiceOptions{})))
	// Drive the handler directly through the configured server's
	// handler field; socket-level serving is covered by the loadgen
	// driver tests.
	if srv.Handler == nil {
		t.Fatal("no handler")
	}
	req := httptest.NewRequest("GET", "/v1/healthz", nil)
	rw := httptest.NewRecorder()
	srv.Handler.ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		t.Fatalf("healthz through hardened server = %d, want 200", rw.Code)
	}
}
