package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"banditware/internal/core"
	"banditware/internal/hardware"
	"banditware/internal/schema"
)

// NewHandler returns the HTTP/JSON front-end for a service (see
// docs/API.md for the full request/response reference):
//
//	GET    /v1/healthz                          liveness probe
//	GET    /v1/readyz                           readiness probe (503 while restoring)
//	GET    /v1/stats                            service-wide stats
//	GET    /v1/streams                          list streams
//	POST   /v1/streams                          create a stream (policy-typed)
//	GET    /v1/streams/{name}                   inspect one stream (+models)
//	DELETE /v1/streams/{name}                   remove a stream
//	POST   /v1/streams/{name}/recommend         issue one decision ticket
//	POST   /v1/streams/{name}/recommend/batch   issue many tickets atomically
//	POST   /v1/streams/{name}/observe           redeem a ticket / direct observe
//	POST   /v1/streams/{name}/observe/batch     redeem many tickets
//	POST   /v1/observe                          redeem a ticket (stream from ID)
//	GET    /v1/streams/{name}/shadows           shadow evaluation counters
//	POST   /v1/streams/{name}/shadows           attach a shadow policy
//	DELETE /v1/streams/{name}/shadows/{shadow}  detach a shadow policy
//	GET    /v1/streams/{name}/drift             drift-monitoring state
//	GET    /v1/streams/{name}/arms              list arms with lifecycle status
//	POST   /v1/streams/{name}/arms              add an arm (hardware + warm start)
//	POST   /v1/streams/{name}/arms/{arm}/drain  drain an arm out of live serving
//	POST   /v1/streams/{name}/arms/{arm}/promote promote a trial/draining arm
//	DELETE /v1/streams/{name}/arms/{arm}        retire a drained/trial arm
//
// Observe routes accept either the scalar {"runtime": ...} form or a
// structured {"outcome": {"runtime": ..., "success": ..., "metrics":
// {...}}} body; stream creation and shadow attachment accept a
// "reward" spec (bare string or object) selecting the stream's reward
// function, and stream creation an "adapt" spec (bare mode string or
// object) selecting its non-stationarity adaptation and on-drift
// response.
//
// All bodies are JSON. Errors are {"error": "..."} with conventional
// status codes (404 unknown stream/ticket/shadow/arm, 410 expired
// ticket, 409 duplicate stream/shadow, 422 for a context rejected by
// the stream's feature schema — with a per-field "fields" list — a
// malformed outcome (negative runtime, unknown metric), an invalid arm
// request, or a rejected arm lifecycle transition, and 400 for other
// bad input).
func NewHandler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, statusResponse{Status: "ok"})
	})
	mux.HandleFunc("GET /v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		// Distinct from healthz: the process is alive but should not
		// take traffic while a snapshot import or delta merge runs.
		if !svc.Ready() {
			writeJSON(w, http.StatusServiceUnavailable, statusResponse{Status: "restoring"})
			return
		}
		writeJSON(w, http.StatusOK, statusResponse{Status: "ready"})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Stats())
	})
	mux.HandleFunc("GET /v1/streams", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Stats().Streams)
	})
	mux.HandleFunc("POST /v1/streams", func(w http.ResponseWriter, r *http.Request) {
		handleCreateStream(svc, w, r)
	})
	mux.HandleFunc("GET /v1/streams/{name}", func(w http.ResponseWriter, r *http.Request) {
		handleInspectStream(svc, w, r)
	})
	mux.HandleFunc("DELETE /v1/streams/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := svc.RemoveStream(r.PathValue("name")); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, removedResponse{Removed: r.PathValue("name")})
	})
	mux.HandleFunc("POST /v1/streams/{name}/recommend", func(w http.ResponseWriter, r *http.Request) {
		handleRecommend(svc, w, r)
	})
	mux.HandleFunc("POST /v1/streams/{name}/recommend/batch", func(w http.ResponseWriter, r *http.Request) {
		handleRecommendBatch(svc, w, r)
	})
	mux.HandleFunc("POST /v1/streams/{name}/observe", func(w http.ResponseWriter, r *http.Request) {
		handleObserve(svc, w, r, r.PathValue("name"))
	})
	mux.HandleFunc("POST /v1/streams/{name}/observe/batch", func(w http.ResponseWriter, r *http.Request) {
		handleObserveBatch(svc, w, r)
	})
	mux.HandleFunc("POST /v1/observe", func(w http.ResponseWriter, r *http.Request) {
		handleObserve(svc, w, r, "")
	})
	mux.HandleFunc("GET /v1/streams/{name}/shadows", func(w http.ResponseWriter, r *http.Request) {
		handleListShadows(svc, w, r)
	})
	mux.HandleFunc("POST /v1/streams/{name}/shadows", func(w http.ResponseWriter, r *http.Request) {
		handleAttachShadow(svc, w, r)
	})
	mux.HandleFunc("DELETE /v1/streams/{name}/shadows/{shadow}", func(w http.ResponseWriter, r *http.Request) {
		if err := svc.DetachShadow(r.PathValue("name"), r.PathValue("shadow")); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, removedResponse{Removed: r.PathValue("shadow")})
	})
	mux.HandleFunc("GET /v1/streams/{name}/drift", func(w http.ResponseWriter, r *http.Request) {
		info, err := svc.Drift(r.PathValue("name"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("GET /v1/streams/{name}/arms", func(w http.ResponseWriter, r *http.Request) {
		arms, err := svc.Arms(r.PathValue("name"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, armsResponse{Arms: arms, Stream: r.PathValue("name")})
	})
	mux.HandleFunc("POST /v1/streams/{name}/arms", func(w http.ResponseWriter, r *http.Request) {
		handleAddArm(svc, w, r)
	})
	mux.HandleFunc("POST /v1/streams/{name}/arms/{arm}/drain", func(w http.ResponseWriter, r *http.Request) {
		handleArmLifecycle(svc, w, r, svc.DrainArm)
	})
	mux.HandleFunc("POST /v1/streams/{name}/arms/{arm}/promote", func(w http.ResponseWriter, r *http.Request) {
		handleArmLifecycle(svc, w, r, svc.PromoteArm)
	})
	mux.HandleFunc("DELETE /v1/streams/{name}/arms/{arm}", func(w http.ResponseWriter, r *http.Request) {
		handleArmLifecycle(svc, w, r, svc.RetireArm)
	})
	return mux
}

// Typed response envelopes. Every response body is a struct (not an
// ad-hoc map): the shape is greppable, the encoder skips the
// map-iteration/sort path, and a field rename is a compile-time event.
// Field order matches the sorted-key order maps used to produce, so
// response bytes are unchanged.
type statusResponse struct {
	Status string `json:"status"`
}

type removedResponse struct {
	Removed string `json:"removed"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// schemaErrorResponse is the 422 schema-violation body: the joined
// message plus the per-field violation list.
type schemaErrorResponse struct {
	Error  string               `json:"error"`
	Fields []*schema.FieldError `json:"fields"`
}

type armsResponse struct {
	Arms   []ArmInfo `json:"arms"`
	Stream string    `json:"stream"`
}

type armAddedResponse struct {
	Arm    int       `json:"arm"`
	Arms   []ArmInfo `json:"arms"`
	Stream string    `json:"stream"`
}

type shadowsResponse struct {
	Shadows []ShadowInfo `json:"shadows"`
	Stream  string       `json:"stream"`
}

type ticketsResponse struct {
	Tickets []Ticket `json:"tickets"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeError maps service errors onto HTTP status codes.
func writeError(w http.ResponseWriter, err error) {
	if errors.Is(err, schema.ErrSchemaViolation) {
		// A context the stream's feature schema rejected: 422 with the
		// per-field violation list so clients can fix each field.
		writeJSON(w, http.StatusUnprocessableEntity, schemaErrorResponse{
			Error:  err.Error(),
			Fields: schemaFieldErrors(err),
		})
		return
	}
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrStreamNotFound), errors.Is(err, ErrTicketNotFound),
		errors.Is(err, ErrShadowNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrTicketExpired):
		code = http.StatusGone
	case errors.Is(err, ErrStreamExists), errors.Is(err, ErrShadowExists):
		code = http.StatusConflict
	case errors.Is(err, ErrBadOutcome):
		// A semantically invalid observation (negative runtime, unknown
		// metric): the request parsed fine, so 422 like schema
		// violations. The ticket, if any, was not redeemed.
		code = http.StatusUnprocessableEntity
	case errors.Is(err, ErrArmNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrArmLifecycle), errors.Is(err, ErrBadArmRequest):
		// The request parsed fine but is semantically invalid (bad warm
		// mode, duplicate hardware name) or the arm's lifecycle state
		// forbids the transition: 422 like other semantic rejections.
		code = http.StatusUnprocessableEntity
	}
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// schemaFieldErrors digs the per-field violations out of a (possibly
// wrapped) schema validation error. The ValidationError is found
// through any fmt.Errorf chain, and flattenJoined splits it into its
// field-level parts.
func schemaFieldErrors(err error) []*schema.FieldError {
	fields := []*schema.FieldError{}
	var v *schema.ValidationError
	if errors.As(err, &v) {
		err = v
	}
	for _, e := range flattenJoined(err) {
		var fe *schema.FieldError
		if errors.As(e, &fe) {
			fields = append(fields, fe)
		}
	}
	return fields
}

// maxBodyBytes bounds request bodies (a batch of 10k 64-feature
// observations fits with room to spare) so one oversized POST cannot
// exhaust server memory.
const maxBodyBytes = 16 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		code := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			code = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, code, errorResponse{Error: "malformed request body: " + err.Error()})
		return false
	}
	return true
}

// hardwareDTO is the wire form of one hardware configuration.
type hardwareDTO struct {
	Name     string  `json:"name,omitempty"`
	CPUs     int     `json:"cpus"`
	MemoryGB float64 `json:"memory_gb"`
	GPUs     int     `json:"gpus,omitempty"`
}

// shadowDTO is the wire form of one shadow attachment. Reward, when
// given, is the shadow's own reward spec; absent means the shadow
// inherits the stream's reward.
type shadowDTO struct {
	Name   string      `json:"name"`
	Policy PolicySpec  `json:"policy"`
	Reward *RewardSpec `json:"reward,omitempty"`
}

// attach attaches the shadow to stream, honouring its optional reward.
func (sh shadowDTO) attach(svc *Service, stream string) error {
	if sh.Reward != nil {
		return svc.AttachShadowReward(stream, sh.Name, sh.Policy, *sh.Reward)
	}
	return svc.AttachShadow(stream, sh.Name, sh.Policy)
}

type createStreamRequest struct {
	Name string `json:"name"`
	// Hardware is the arm set as structured objects; HardwareSpec is the
	// CLI string form ("H0=2x16;H1=3x24"). Exactly one must be given.
	Hardware     []hardwareDTO `json:"hardware,omitempty"`
	HardwareSpec string        `json:"hardware_spec,omitempty"`
	Dim          int           `json:"dim"`

	// Schema optionally declares the stream's named feature layout;
	// when given, dim is derived from it (and must be 0 or match) and
	// recommend/observe accept {"context": {...}} payloads.
	Schema *schema.Schema `json:"schema,omitempty"`

	// Policy selects the stream's decision policy — a bare type string
	// ("linucb") or an object ({"type": "linucb", "beta": 2}). Absent
	// means Algorithm 1 parameterised by the option fields below.
	Policy *PolicySpec `json:"policy,omitempty"`
	// Reward selects the stream's reward function — a bare type string
	// ("cost_weighted") or an object ({"type": "cost_weighted",
	// "lambda": 0.5}). Absent means the runtime reward.
	Reward *RewardSpec `json:"reward,omitempty"`
	// Adapt selects the stream's non-stationarity adaptation — a bare
	// mode string ("forgetting") or an object ({"mode": "forgetting",
	// "factor": 0.95, "on_drift": "reset"}). Absent means mode "none"
	// with observe-only drift detection.
	Adapt *AdaptSpec `json:"adapt,omitempty"`
	// Shadows are shadow policies to attach at creation time.
	Shadows []shadowDTO `json:"shadows,omitempty"`
	// Cache optionally attaches a recommendation cache ({"capacity":
	// ..., "budget": ..., "bits": ...}; zero fields take defaults).
	Cache *CacheSpec `json:"cache,omitempty"`

	// Algorithm 1 options; zero values select the paper's defaults.
	// Ignored (except seed, which also feeds non-Algorithm 1 policies)
	// when policy selects another type. Epsilon0 is a pointer so an
	// explicit 0 (pure exploitation) is distinguishable from "unset".
	Alpha            float64  `json:"alpha,omitempty"`
	Epsilon0         *float64 `json:"epsilon0,omitempty"`
	MinEpsilon       float64  `json:"min_epsilon,omitempty"`
	ToleranceRatio   float64  `json:"tolerance_ratio,omitempty"`
	ToleranceSeconds float64  `json:"tolerance_seconds,omitempty"`
	ForgettingFactor float64  `json:"forgetting_factor,omitempty"`
	Seed             uint64   `json:"seed,omitempty"`

	// Ledger overrides (0 = service defaults).
	MaxPending       int     `json:"max_pending,omitempty"`
	TicketTTLSeconds float64 `json:"ticket_ttl_seconds,omitempty"`
}

func handleCreateStream(svc *Service, w http.ResponseWriter, r *http.Request) {
	var req createStreamRequest
	if !decodeBody(w, r, &req) {
		return
	}
	var set hardware.Set
	switch {
	case len(req.Hardware) > 0 && req.HardwareSpec != "":
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "give hardware or hardware_spec, not both"})
		return
	case len(req.Hardware) > 0:
		for _, h := range req.Hardware {
			set = append(set, hardware.Config{Name: h.Name, CPUs: h.CPUs, MemoryGB: h.MemoryGB, GPUs: h.GPUs})
		}
	case req.HardwareSpec != "":
		var err error
		set, err = hardware.ParseSet(req.HardwareSpec)
		if err != nil {
			writeError(w, err)
			return
		}
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "hardware or hardware_spec is required"})
		return
	}
	opts := core.Options{
		Alpha:            req.Alpha,
		MinEpsilon:       req.MinEpsilon,
		ToleranceRatio:   req.ToleranceRatio,
		ToleranceSeconds: req.ToleranceSeconds,
		ForgettingFactor: req.ForgettingFactor,
		Seed:             req.Seed,
	}
	if req.Epsilon0 != nil {
		opts.Epsilon0 = *req.Epsilon0
		opts.ZeroEpsilon = *req.Epsilon0 == 0
	}
	var spec PolicySpec
	if req.Policy != nil {
		spec = *req.Policy
		if spec.Seed == 0 {
			spec.Seed = req.Seed
		}
	}
	var adaptSpec AdaptSpec
	if req.Adapt != nil {
		adaptSpec = *req.Adapt
	}
	// The canonical adaptation the stream will carry: shadows replay
	// under it (see attachShadow), so shadow pre-validation must build
	// engines the same way. A bad spec fails here, before anything is
	// created.
	shadowAdapt, err := compileAdapt(adaptSpec)
	if err != nil {
		writeError(w, err)
		return
	}
	shadowAdapt.OnDrift = DriftObserve
	// Validate every shadow before creating the stream, so a bad shadow
	// never leaves a transiently servable half-configured stream behind.
	// Engine construction is deterministic, so specs that pass here
	// cannot fail at attach time.
	shadows := make([]shadowDTO, 0, len(req.Shadows))
	seen := make(map[string]bool, len(req.Shadows))
	for _, sh := range req.Shadows {
		// Shadows inherit the stream seed unless they set their own,
		// like the primary policy.
		if sh.Policy.Seed == 0 {
			sh.Policy.Seed = req.Seed
		}
		if !ValidStreamName(sh.Name) {
			writeError(w, fmt.Errorf("shadow: %w: %q", ErrBadStreamName, sh.Name))
			return
		}
		if seen[sh.Name] {
			writeError(w, fmt.Errorf("shadow %q: %w", sh.Name, ErrShadowExists))
			return
		}
		seen[sh.Name] = true
		shadowDim := req.Dim
		if req.Schema != nil {
			shadowDim = req.Schema.EncodedDim()
		}
		shAdapt := shadowAdapt
		if k, kerr := sh.Policy.kind(); kerr == nil && k == PolicyRandom {
			shAdapt = defaultAdapt()
		}
		if _, err := newEngine(set, shadowDim, core.Options{Seed: sh.Policy.Seed}, sh.Policy, shAdapt); err != nil {
			writeError(w, fmt.Errorf("shadow %q: %w", sh.Name, err))
			return
		}
		if sh.Reward != nil {
			if _, err := compileReward(*sh.Reward); err != nil {
				writeError(w, fmt.Errorf("shadow %q: %w", sh.Name, err))
				return
			}
		}
		shadows = append(shadows, sh)
	}
	var rewardSpec RewardSpec
	if req.Reward != nil {
		rewardSpec = *req.Reward
	}
	err = svc.CreateStream(req.Name, StreamConfig{
		Hardware:   set,
		Dim:        req.Dim,
		Schema:     req.Schema,
		Options:    opts,
		Policy:     spec,
		Reward:     rewardSpec,
		Adapt:      adaptSpec,
		MaxPending: req.MaxPending,
		TicketTTL:  time.Duration(req.TicketTTLSeconds * float64(time.Second)),
		Cache:      req.Cache,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	for _, sh := range shadows {
		if err := sh.attach(svc, req.Name); err != nil {
			writeError(w, fmt.Errorf("shadow %q: %w", sh.Name, err))
			return
		}
	}
	info, err := svc.StreamInfo(req.Name)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

type attachShadowRequest struct {
	Name   string     `json:"name"`
	Policy PolicySpec `json:"policy"`
	// Reward is the shadow's own reward spec; absent inherits the
	// stream's.
	Reward *RewardSpec `json:"reward,omitempty"`
}

func handleAttachShadow(svc *Service, w http.ResponseWriter, r *http.Request) {
	var req attachShadowRequest
	if !decodeBody(w, r, &req) {
		return
	}
	stream := r.PathValue("name")
	if err := (shadowDTO{Name: req.Name, Policy: req.Policy, Reward: req.Reward}).attach(svc, stream); err != nil {
		writeError(w, err)
		return
	}
	shadows, err := svc.Shadows(stream)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, shadowsResponse{Shadows: shadows, Stream: stream})
}

func handleListShadows(svc *Service, w http.ResponseWriter, r *http.Request) {
	stream := r.PathValue("name")
	shadows, err := svc.Shadows(stream)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, shadowsResponse{Shadows: shadows, Stream: stream})
}

// modelDTO is the wire form of one arm's learned linear model.
type modelDTO struct {
	Hardware string    `json:"hardware"`
	Weights  []float64 `json:"weights"`
	Bias     float64   `json:"bias"`
}

func handleInspectStream(svc *Service, w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	info, err := svc.StreamInfo(name)
	if err != nil {
		writeError(w, err)
		return
	}
	hw, err := svc.Hardware(name)
	if err != nil {
		writeError(w, err)
		return
	}
	models := make([]modelDTO, len(hw))
	for i := range hw {
		m, err := svc.Model(name, i)
		if errors.Is(err, ErrUnsupported) {
			// Model-free policy (e.g. random): inspect without models.
			models = nil
			break
		}
		if err != nil {
			writeError(w, err)
			return
		}
		models[i] = modelDTO{Hardware: hw[i].String(), Weights: m.Weights, Bias: m.Bias}
	}
	writeJSON(w, http.StatusOK, struct {
		StreamInfo
		Models []modelDTO `json:"models,omitempty"`
	}{info, models})
}

type recommendRequest struct {
	// Features is the raw positional vector form; Context the named form
	// validated and encoded by the stream's feature schema. Exactly one
	// must be given.
	Features []float64       `json:"features,omitempty"`
	Context  *schema.Context `json:"context,omitempty"`
}

func handleRecommend(svc *Service, w http.ResponseWriter, r *http.Request) {
	var req recommendRequest
	if !decodeBody(w, r, &req) {
		return
	}
	var t Ticket
	var err error
	switch {
	case req.Context != nil && req.Features != nil:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "give context or features, not both"})
		return
	case req.Context != nil:
		t, err = svc.RecommendCtx(r.PathValue("name"), *req.Context)
	default:
		t, err = svc.Recommend(r.PathValue("name"), req.Features)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, t)
}

type recommendBatchRequest struct {
	// Batch is the raw vector form; Contexts the named form. Exactly one
	// must be given (a non-empty one, for symmetry with the single
	// recommend route).
	Batch    [][]float64      `json:"batch,omitempty"`
	Contexts []schema.Context `json:"contexts,omitempty"`
}

func handleRecommendBatch(svc *Service, w http.ResponseWriter, r *http.Request) {
	var req recommendBatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	var ts []Ticket
	var err error
	switch {
	case req.Batch != nil && req.Contexts != nil:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "give contexts or batch, not both"})
		return
	case req.Contexts != nil:
		ts, err = svc.RecommendBatchCtx(r.PathValue("name"), req.Contexts)
	default:
		ts, err = svc.RecommendBatch(r.PathValue("name"), req.Batch)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ticketsResponse{Tickets: ts})
}

type observeRequest struct {
	// Ticket path: the decision ticket to redeem.
	Ticket string `json:"ticket,omitempty"`
	// Direct path (requires a stream-scoped URL): the arm the caller
	// tracked itself plus its features — raw (features) or named
	// (context), exactly one. Arm is a pointer so arm 0 is expressible.
	Arm      *int            `json:"arm,omitempty"`
	Features []float64       `json:"features,omitempty"`
	Context  *schema.Context `json:"context,omitempty"`

	// The observation itself: either the scalar runtime (mapped to the
	// default Outcome) or the structured outcome form — not both.
	Runtime float64  `json:"runtime,omitempty"`
	Outcome *Outcome `json:"outcome,omitempty"`
}

// outcome resolves the request's effective Outcome through the same
// rule the batch path applies (TicketObservation.outcome): an
// observation carrying both forms fails with ErrBadOutcome.
func (req observeRequest) outcome() (Outcome, error) {
	return TicketObservation{Runtime: req.Runtime, Outcome: req.Outcome}.outcome()
}

// handleObserve serves both observe endpoints. streamName is "" for the
// top-level /v1/observe (ticket-only; the stream comes from the ticket
// ID) and the path stream for /v1/streams/{name}/observe, where it must
// match a ticket's stream and enables the direct arm+features form.
func handleObserve(svc *Service, w http.ResponseWriter, r *http.Request, streamName string) {
	var req observeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	o, err := req.outcome()
	if err != nil {
		writeError(w, err)
		return
	}
	switch {
	case req.Ticket != "":
		if streamName != "" {
			owner, _, err := ParseTicketID(req.Ticket)
			if err != nil {
				writeError(w, err)
				return
			}
			if owner != streamName {
				writeJSON(w, http.StatusBadRequest, errorResponse{
					Error: fmt.Sprintf("ticket %q belongs to stream %q, not %q", req.Ticket, owner, streamName),
				})
				return
			}
		}
		if err := svc.ObserveOutcome(req.Ticket, o); err != nil {
			writeError(w, err)
			return
		}
	case req.Arm != nil && streamName != "":
		if req.Context != nil && req.Features != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "give context or features, not both"})
			return
		}
		var err error
		if req.Context != nil {
			err = svc.ObserveDirectOutcomeCtx(streamName, *req.Arm, *req.Context, o)
		} else {
			err = svc.ObserveDirectOutcome(streamName, *req.Arm, req.Features, o)
		}
		if err != nil {
			writeError(w, err)
			return
		}
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "observe needs a ticket, or arm plus features/context on a stream URL"})
		return
	}
	writeJSON(w, http.StatusOK, statusResponse{Status: "observed"})
}

type observeBatchRequest struct {
	Observations []TicketObservation `json:"observations"`
}

// observeBatchResult is the outcome of one observation in a batch,
// keyed by its input index so callers can tell exactly which
// observations landed.
type observeBatchResult struct {
	Index int    `json:"index"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

type observeBatchResponse struct {
	Applied int                  `json:"applied"`
	Results []observeBatchResult `json:"results"`
}

func handleObserveBatch(svc *Service, w http.ResponseWriter, r *http.Request) {
	var req observeBatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	// Tickets belonging to another stream fail their own index (without
	// ever reaching that other stream) instead of rejecting the batch:
	// the rest of the observations still land, and the per-index results
	// say exactly which. The cross-stream check applies only to valid
	// observations — a malformed observation must report ErrBadOutcome
	// whatever its ticket, exactly like the single observe route (pinned
	// by TestHTTPObserveErrorConsistency).
	name := r.PathValue("name")
	errs := make([]error, len(req.Observations))
	var forward []TicketObservation
	var forwardIdx []int
	for i, o := range req.Observations {
		if out, oerr := o.outcome(); oerr == nil && validateOutcome(out) == nil {
			owner, _, err := ParseTicketID(o.TicketID)
			if err == nil && owner != name {
				errs[i] = fmt.Errorf("ticket %q belongs to stream %q, not %q", o.TicketID, owner, name)
				continue
			}
		}
		forward = append(forward, o)
		forwardIdx = append(forwardIdx, i)
	}
	applied, fwdErrs := svc.ObserveBatchIndexed(forward)
	for j, err := range fwdErrs {
		errs[forwardIdx[j]] = err
	}
	resp := observeBatchResponse{
		Applied: applied,
		Results: make([]observeBatchResult, len(req.Observations)),
	}
	for i, err := range errs {
		res := observeBatchResult{Index: i, OK: err == nil}
		if err != nil {
			res.Error = err.Error()
		}
		resp.Results[i] = res
	}
	writeJSON(w, http.StatusOK, resp)
}

// flattenJoined unwraps an errors.Join-style multi-error into its leaf
// parts, recursively — so a schema.ValidationError (itself a
// multi-error of per-field violations) nested inside a batch join
// flattens all the way down to individual field errors.
func flattenJoined(err error) []error {
	u, ok := err.(interface{ Unwrap() []error })
	if !ok {
		return []error{err}
	}
	var out []error
	for _, e := range u.Unwrap() {
		out = append(out, flattenJoined(e)...)
	}
	return out
}

// armAddRequest is the wire form of one arm addition. Like stream
// creation, the hardware comes as a structured object or the CLI string
// form — exactly one of the two.
type armAddRequest struct {
	Hardware     *hardwareDTO `json:"hardware,omitempty"`
	HardwareSpec string       `json:"hardware_spec,omitempty"`
	// Warm selects the warm-start mode: "", "cold", "pooled", or
	// "nearest"; WarmWeight scales the donor statistics, in (0, 1]
	// (0 = default).
	Warm       string  `json:"warm,omitempty"`
	WarmWeight float64 `json:"warm_weight,omitempty"`
	// Trial adds the arm in the trial state: learning but not serving
	// until promoted.
	Trial bool `json:"trial,omitempty"`
}

// resolve validates the request and maps it onto the service's ArmAdd.
// Shared by the HTTP handler and the request fuzzer, so every path that
// parses an arm request enforces the same rules.
func (req armAddRequest) resolve() (ArmAdd, error) {
	add := ArmAdd{Warm: req.Warm, WarmWeight: req.WarmWeight, Trial: req.Trial}
	switch {
	case req.Hardware != nil && req.HardwareSpec != "":
		return ArmAdd{}, fmt.Errorf("%w: give hardware or hardware_spec, not both", ErrBadArmRequest)
	case req.Hardware != nil:
		add.Hardware = hardware.Config{
			Name:     req.Hardware.Name,
			CPUs:     req.Hardware.CPUs,
			MemoryGB: req.Hardware.MemoryGB,
			GPUs:     req.Hardware.GPUs,
		}
	case req.HardwareSpec != "":
		set, err := hardware.ParseSet(req.HardwareSpec)
		if err != nil {
			return ArmAdd{}, fmt.Errorf("%w: %v", ErrBadArmRequest, err)
		}
		if len(set) != 1 {
			return ArmAdd{}, fmt.Errorf("%w: hardware_spec must describe exactly one configuration, got %d", ErrBadArmRequest, len(set))
		}
		add.Hardware = set[0]
	default:
		return ArmAdd{}, fmt.Errorf("%w: hardware or hardware_spec is required", ErrBadArmRequest)
	}
	return add, nil
}

func handleAddArm(svc *Service, w http.ResponseWriter, r *http.Request) {
	var req armAddRequest
	if !decodeBody(w, r, &req) {
		return
	}
	add, err := req.resolve()
	if err != nil {
		writeError(w, err)
		return
	}
	name := r.PathValue("name")
	idx, err := svc.AddArm(name, add)
	if err != nil {
		writeError(w, err)
		return
	}
	arms, err := svc.Arms(name)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, armAddedResponse{Arm: idx, Arms: arms, Stream: name})
}

// handleArmLifecycle runs one {name}/arms/{arm} transition (drain,
// promote, retire) and responds with the post-transition arm listing.
func handleArmLifecycle(svc *Service, w http.ResponseWriter, r *http.Request, op func(string, int) error) {
	name := r.PathValue("name")
	arm, err := strconv.Atoi(r.PathValue("arm"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "arm must be an integer index: " + r.PathValue("arm")})
		return
	}
	if err := op(name, arm); err != nil {
		writeError(w, err)
		return
	}
	arms, err := svc.Arms(name)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, armsResponse{Arms: arms, Stream: name})
}
