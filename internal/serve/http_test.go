package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"banditware/internal/core"
)

func newTestServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	svc := NewService(ServiceOptions{})
	srv := httptest.NewServer(NewHandler(svc))
	t.Cleanup(srv.Close)
	return svc, srv
}

// doJSON posts (or GETs when body is nil) and decodes the response.
func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func createJobsStream(t *testing.T, base string) {
	t.Helper()
	var info StreamInfo
	code := doJSON(t, "POST", base+"/v1/streams", map[string]any{
		"name": "jobs", "hardware_spec": "H0=2x16;H1=3x24;H2=4x16", "dim": 1, "seed": 1,
	}, &info)
	if code != http.StatusCreated {
		t.Fatalf("create stream: status %d", code)
	}
	if info.Name != "jobs" || len(info.Hardware) != 3 {
		t.Fatalf("create response: %+v", info)
	}
}

func TestHTTPStreamLifecycle(t *testing.T) {
	_, srv := newTestServer(t)
	createJobsStream(t, srv.URL)

	// Duplicate -> 409.
	var errResp map[string]string
	if code := doJSON(t, "POST", srv.URL+"/v1/streams", map[string]any{
		"name": "jobs", "hardware_spec": "H0=2x16", "dim": 1,
	}, &errResp); code != http.StatusConflict {
		t.Fatalf("duplicate create: %d (%v)", code, errResp)
	}
	// Structured hardware form + explicit epsilon0 = 0.
	if code := doJSON(t, "POST", srv.URL+"/v1/streams", map[string]any{
		"name": "greedy",
		"hardware": []map[string]any{
			{"name": "A", "cpus": 2, "memory_gb": 16},
			{"name": "B", "cpus": 4, "memory_gb": 32},
		},
		"dim": 1, "epsilon0": 0,
	}, nil); code != http.StatusCreated {
		t.Fatalf("structured create: %d", code)
	}
	// Pure exploitation from round 0: never explores.
	var tk Ticket
	doJSON(t, "POST", srv.URL+"/v1/streams/greedy/recommend", map[string]any{"features": []float64{5}}, &tk)
	if tk.Explored || tk.Epsilon != 0 {
		t.Fatalf("epsilon0=0 stream explored: %+v", tk)
	}
	// List + inspect + delete.
	var infos []StreamInfo
	doJSON(t, "GET", srv.URL+"/v1/streams", nil, &infos)
	if len(infos) != 2 {
		t.Fatalf("listed %d streams", len(infos))
	}
	var inspect struct {
		StreamInfo
		Models []modelDTO `json:"models"`
	}
	doJSON(t, "GET", srv.URL+"/v1/streams/jobs", nil, &inspect)
	if inspect.Name != "jobs" || len(inspect.Models) != 3 {
		t.Fatalf("inspect: %+v", inspect)
	}
	if code := doJSON(t, "DELETE", srv.URL+"/v1/streams/greedy", nil, nil); code != http.StatusOK {
		t.Fatalf("delete: %d", code)
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/streams/greedy", nil, &errResp); code != http.StatusNotFound {
		t.Fatalf("inspect deleted: %d", code)
	}
}

func TestHTTPRecommendObserveRoundTrip(t *testing.T) {
	svc, srv := newTestServer(t)
	createJobsStream(t, srv.URL)

	var tk Ticket
	if code := doJSON(t, "POST", srv.URL+"/v1/streams/jobs/recommend",
		map[string]any{"features": []float64{10}}, &tk); code != http.StatusOK {
		t.Fatalf("recommend: %d", code)
	}
	// Stream-scoped observe with the ticket.
	if code := doJSON(t, "POST", srv.URL+"/v1/streams/jobs/observe",
		map[string]any{"ticket": tk.ID, "runtime": 55.5}, nil); code != http.StatusOK {
		t.Fatal("observe failed")
	}
	// Double observe -> 404; wrong-stream observe -> 400; expired -> tested in serve_test.
	var errResp map[string]string
	if code := doJSON(t, "POST", srv.URL+"/v1/observe",
		map[string]any{"ticket": tk.ID, "runtime": 55.5}, &errResp); code != http.StatusNotFound {
		t.Fatalf("double observe: %d", code)
	}
	doJSON(t, "POST", srv.URL+"/v1/streams/jobs/recommend", map[string]any{"features": []float64{10}}, &tk)
	if code := doJSON(t, "POST", srv.URL+"/v1/streams/other/observe",
		map[string]any{"ticket": tk.ID, "runtime": 1}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("cross-stream observe: %d (%v)", code, errResp)
	}
	// Top-level observe routes by ticket ID.
	if code := doJSON(t, "POST", srv.URL+"/v1/observe",
		map[string]any{"ticket": tk.ID, "runtime": 60}, nil); code != http.StatusOK {
		t.Fatal("top-level observe failed")
	}
	// Direct arm+features observe (arm 0 expressible).
	arm := 0
	if code := doJSON(t, "POST", srv.URL+"/v1/streams/jobs/observe",
		map[string]any{"arm": arm, "features": []float64{10}, "runtime": 33}, nil); code != http.StatusOK {
		t.Fatal("direct observe failed")
	}
	if n, _ := svc.Round("jobs"); n != 3 {
		t.Fatalf("round = %d, want 3", n)
	}
	// Unknown stream recommend -> 404.
	if code := doJSON(t, "POST", srv.URL+"/v1/streams/nope/recommend",
		map[string]any{"features": []float64{1}}, &errResp); code != http.StatusNotFound {
		t.Fatalf("unknown stream: %d", code)
	}
	// Malformed body -> 400.
	resp, err := http.Post(srv.URL+"/v1/streams/jobs/recommend", "application/json",
		bytes.NewReader([]byte(`{"featurez": [1]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %d", resp.StatusCode)
	}
}

func TestHTTPBatchEndpoints(t *testing.T) {
	_, srv := newTestServer(t)
	createJobsStream(t, srv.URL)

	var batch struct {
		Tickets []Ticket `json:"tickets"`
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/streams/jobs/recommend/batch",
		map[string]any{"batch": [][]float64{{1}, {2}, {3}}}, &batch); code != http.StatusOK {
		t.Fatalf("recommend batch failed")
	}
	if len(batch.Tickets) != 3 {
		t.Fatalf("got %d tickets", len(batch.Tickets))
	}
	obs := []map[string]any{
		{"ticket": batch.Tickets[0].ID, "runtime": 10.0},
		{"ticket": "jobs#ff", "runtime": 5.0}, // never issued
		{"ticket": batch.Tickets[1].ID, "runtime": 20.0},
		{"ticket": "other#1", "runtime": 1.0}, // another stream's ticket
	}
	var resp observeBatchResponse
	if code := doJSON(t, "POST", srv.URL+"/v1/streams/jobs/observe/batch",
		map[string]any{"observations": obs}, &resp); code != http.StatusOK {
		t.Fatal("observe batch failed")
	}
	// Per-index outcomes: 0 and 2 landed, 1 (unknown ticket) and 3
	// (cross-stream ticket) failed without aborting the rest.
	if resp.Applied != 2 || len(resp.Results) != 4 {
		t.Fatalf("batch response: %+v", resp)
	}
	for i, wantOK := range []bool{true, false, true, false} {
		r := resp.Results[i]
		if r.Index != i || r.OK != wantOK || (r.Error == "") == !wantOK {
			t.Fatalf("result %d: %+v (want ok=%v)", i, r, wantOK)
		}
	}
	if !strings.Contains(resp.Results[3].Error, `belongs to stream "other"`) {
		t.Fatalf("cross-stream error: %q", resp.Results[3].Error)
	}
}

func TestHTTPStats(t *testing.T) {
	_, srv := newTestServer(t)
	// Empty service must list [] rather than null.
	resp, err := http.Get(srv.URL + "/v1/streams")
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	raw.ReadFrom(resp.Body)
	resp.Body.Close()
	if got := bytes.TrimSpace(raw.Bytes()); string(got) != "[]" {
		t.Fatalf("empty stream list = %q, want []", got)
	}
	createJobsStream(t, srv.URL)
	var tk Ticket
	doJSON(t, "POST", srv.URL+"/v1/streams/jobs/recommend", map[string]any{"features": []float64{4}}, &tk)
	var stats Stats
	if code := doJSON(t, "GET", srv.URL+"/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatal("stats failed")
	}
	if stats.TotalIssued != 1 || stats.TotalPending != 1 || len(stats.Streams) != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	var health map[string]string
	if code := doJSON(t, "GET", srv.URL+"/v1/healthz", nil, &health); code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, health)
	}
}

// TestHTTPConcurrentStreams is the acceptance scenario: concurrent
// recommend/observe round trips against ≥2 independent streams through
// the HTTP front-end (run with -race).
func TestHTTPConcurrentStreams(t *testing.T) {
	svc, srv := newTestServer(t)
	streams := []string{"app-a", "app-b", "app-c"}
	for i, name := range streams {
		if err := svc.CreateStream(name, StreamConfig{
			Hardware: testHW(), Dim: 1, Options: core.Options{Seed: uint64(i + 1)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	const clients, iters = 9, 30
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := streams[c%len(streams)]
			for i := 0; i < iters; i++ {
				x := float64(i + 1)
				var tk Ticket
				if code := doJSON(t, "POST", srv.URL+"/v1/streams/"+name+"/recommend",
					map[string]any{"features": []float64{x}}, &tk); code != http.StatusOK {
					t.Errorf("recommend: %d", code)
					return
				}
				url := srv.URL + "/v1/observe"
				if i%2 == 0 {
					url = srv.URL + "/v1/streams/" + name + "/observe"
				}
				if code := doJSON(t, "POST", url,
					map[string]any{"ticket": tk.ID, "runtime": 2*x + float64(tk.Arm)}, nil); code != http.StatusOK {
					t.Errorf("observe: %d", code)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	stats := svc.Stats()
	if stats.TotalObserved != clients*iters {
		t.Fatalf("observed %d, want %d", stats.TotalObserved, clients*iters)
	}
	for _, info := range stats.Streams {
		if info.Round != (clients/len(streams))*iters {
			t.Fatalf("stream %s round = %d, want %d", info.Name, info.Round, (clients/len(streams))*iters)
		}
	}
}
