//go:build race

package serve

// raceEnabled reports whether this test binary was built with the race
// detector; latency pins skip themselves on instrumented builds.
const raceEnabled = true
