package serve

import (
	"errors"
	"testing"
	"time"
)

func mkPending(seq uint64, at time.Time) *pendingTicket {
	return &pendingTicket{seq: seq, arm: 0, features: []float64{1}, issuedAt: at}
}

func TestLedgerTakeOnce(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newLedger(4, 0)
	l.add(mkPending(1, now), now)
	p, err := l.take(1, now)
	if err != nil || p.seq != 1 {
		t.Fatalf("take: %v, %v", p, err)
	}
	if _, err := l.take(1, now); !errors.Is(err, ErrTicketNotFound) {
		t.Fatalf("second take: %v, want ErrTicketNotFound", err)
	}
	if _, err := l.take(999, now); !errors.Is(err, ErrTicketNotFound) {
		t.Fatalf("unknown take: %v, want ErrTicketNotFound", err)
	}
}

func TestLedgerEvictsOldestFirst(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newLedger(2, 0)
	l.add(mkPending(1, now), now)
	l.add(mkPending(2, now), now)
	l.add(mkPending(3, now), now) // evicts seq 1
	if l.evicted != 1 {
		t.Fatalf("evicted = %d, want 1", l.evicted)
	}
	if _, err := l.take(1, now); !errors.Is(err, ErrTicketNotFound) {
		t.Fatalf("evicted ticket still takeable: %v", err)
	}
	if _, err := l.take(2, now); err != nil {
		t.Fatalf("seq 2 should survive: %v", err)
	}
	if _, err := l.take(3, now); err != nil {
		t.Fatalf("seq 3 should survive: %v", err)
	}
}

func TestLedgerExpiry(t *testing.T) {
	start := time.Unix(1000, 0)
	l := newLedger(10, time.Minute)
	l.add(mkPending(1, start), start)
	l.add(mkPending(2, start.Add(30*time.Second)), start.Add(30*time.Second))

	// Within TTL: both takeable.
	if _, err := l.take(1, start.Add(time.Minute)); err != nil {
		t.Fatalf("fresh ticket expired early: %v", err)
	}
	l.add(mkPending(3, start), start) // re-add an old-timestamped one

	// Past seq 3's TTL but within seq 2's: take reports expiry explicitly.
	late := start.Add(2 * time.Minute)
	if _, err := l.take(3, late); !errors.Is(err, ErrTicketExpired) {
		t.Fatalf("take on expired = %v, want ErrTicketExpired", err)
	}
	// Seq 2 expired too (issued at +30s, TTL 1m, now +2m) — the sweep on
	// the next add drops it.
	l.add(mkPending(4, late), late)
	if _, err := l.take(2, late); !errors.Is(err, ErrTicketNotFound) {
		t.Fatalf("swept ticket = %v, want ErrTicketNotFound", err)
	}
	if l.expired != 2 {
		t.Fatalf("expired = %d, want 2", l.expired)
	}
	if l.len() != 1 {
		t.Fatalf("len = %d, want 1 (only seq 4)", l.len())
	}
}

func TestLedgerZeroTTLNeverExpires(t *testing.T) {
	start := time.Unix(1000, 0)
	l := newLedger(10, 0)
	l.add(mkPending(1, start), start)
	if _, err := l.take(1, start.Add(1000*time.Hour)); err != nil {
		t.Fatalf("ttl=0 ticket expired: %v", err)
	}
}

func TestLedgerFreelistRecycles(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newLedger(4, 0)
	p1 := l.newPending()
	p1.seq, p1.features = 1, append(p1.features[:0], 1, 2, 3)
	p1.issuedAt = now
	l.add(p1, now)
	got, err := l.take(1, now)
	if err != nil {
		t.Fatalf("take: %v", err)
	}
	l.release(got)
	p2 := l.newPending()
	if p2 != p1 {
		t.Fatalf("newPending after release returned a fresh struct, want recycled")
	}
	if len(p2.features) != 0 || cap(p2.features) < 3 {
		t.Fatalf("recycled features = len %d cap %d, want len 0 with kept capacity",
			len(p2.features), cap(p2.features))
	}
	if p2.shadowArms != nil {
		t.Fatalf("recycled ticket kept shadowArms")
	}
}
