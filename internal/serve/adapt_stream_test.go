package serve

// Acceptance coverage for non-stationary serving: under a mid-run
// environment swap that changes one arm's behaviour, streams with
// forgetting or window adaptation (or an on_drift auto-reset) recover
// their recommendation accuracy while the static stream stays degraded,
// and the online drift detector fires on the swapped arm only.

import (
	"errors"
	"testing"

	"banditware/internal/core"
	"banditware/internal/rng"
)

// driftEnv is the two-regime test environment: two arms, one feature
// x ∈ [1, 10]. Pre-swap arm 1 is always fastest; post-swap arm 1
// degrades (a co-tenant moved in) and arm 0 — untouched — becomes best.
type driftEnv struct {
	swapped bool
	r       *rng.Source
}

func (e *driftEnv) truth(arm int, x float64) float64 {
	switch {
	case arm == 0:
		return 20 + 2*x
	case !e.swapped:
		return 5 + x
	default:
		return 60 + 3*x
	}
}

func (e *driftEnv) runtime(arm int, x float64) float64 {
	return e.truth(arm, x) + e.r.Normal(0, 0.5)
}

func (e *driftEnv) bestArm(x float64) int {
	if e.truth(0, x) < e.truth(1, x) {
		return 0
	}
	return 1
}

// exploitAccuracy probes the stream's pure-exploitation choice on a
// grid against the environment's current best arm.
func exploitAccuracy(t *testing.T, s *Service, name string, env *driftEnv) float64 {
	t.Helper()
	correct := 0
	const probes = 10
	for i := 1; i <= probes; i++ {
		x := float64(i)
		arm, err := s.Exploit(name, []float64{x})
		if err != nil {
			t.Fatal(err)
		}
		if arm == env.bestArm(x) {
			correct++
		}
	}
	return float64(correct) / probes
}

// adaptTestDetector is a detector tuning sized to the test
// environment's signal scale (runtimes in tens of seconds, noise σ
// 0.5): the post-swap arm-1 residual of ≈ +55 crosses the threshold
// within a handful of observations, while stationary noise never does.
func adaptTestDetector() AdaptSpec {
	return AdaptSpec{
		DriftDelta:      1,
		DriftThreshold:  30,
		DriftMinSamples: 5,
		DriftWarmup:     10,
	}
}

// TestAdaptiveStreamsRecoverFromEnvironmentSwap is the tentpole
// acceptance test: four streams — static, forgetting, window, and
// static-with-auto-reset — serve identical traffic through an
// environment swap. The adaptive three recover to within 10% of their
// pre-drift exploit accuracy; the static stream stays degraded; the
// detector reports drift on the swapped arm only.
func TestAdaptiveStreamsRecoverFromEnvironmentSwap(t *testing.T) {
	s := NewService(ServiceOptions{})
	base := adaptTestDetector()
	specs := map[string]AdaptSpec{
		"static": base,
		"forget": {Mode: AdaptForgetting, Factor: 0.9,
			DriftDelta: base.DriftDelta, DriftThreshold: base.DriftThreshold,
			DriftMinSamples: base.DriftMinSamples, DriftWarmup: base.DriftWarmup},
		"window": {Mode: AdaptWindow, Window: 40,
			DriftDelta: base.DriftDelta, DriftThreshold: base.DriftThreshold,
			DriftMinSamples: base.DriftMinSamples, DriftWarmup: base.DriftWarmup},
		"reset": {OnDrift: DriftReset,
			DriftDelta: base.DriftDelta, DriftThreshold: base.DriftThreshold,
			DriftMinSamples: base.DriftMinSamples, DriftWarmup: base.DriftWarmup},
	}
	names := []string{"static", "forget", "window", "reset"}
	for _, name := range names {
		if err := s.CreateStream(name, StreamConfig{
			Hardware: testHW()[:2], Dim: 1, Adapt: specs[name],
			// Keep a little exploration alive forever so the swapped arm
			// keeps being sampled post-drift at all (the offline drift
			// experiment does the same).
			Options: core.Options{Seed: 42, MinEpsilon: 0.05},
		}); err != nil {
			t.Fatal(err)
		}
	}

	env := &driftEnv{r: rng.New(7)}
	traffic := rng.New(99)
	serve := func(rounds int) {
		for i := 0; i < rounds; i++ {
			x := float64(traffic.Intn(10) + 1)
			for _, name := range names {
				tk, err := s.Recommend(name, []float64{x})
				if err != nil {
					t.Fatal(err)
				}
				if err := s.Observe(tk.ID, env.runtime(tk.Arm, x)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	serve(1500) // regime 1: long enough that infinite memory anchors hard
	preAcc := make(map[string]float64, len(names))
	for _, name := range names {
		preAcc[name] = exploitAccuracy(t, s, name, env)
		if preAcc[name] < 0.9 {
			t.Fatalf("stream %q pre-drift accuracy %.2f, want ≥ 0.9", name, preAcc[name])
		}
		di, err := s.Drift(name)
		if err != nil {
			t.Fatal(err)
		}
		if di.Detections != 0 {
			t.Fatalf("stream %q detected drift in a stationary regime: %+v", name, di)
		}
	}

	env.swapped = true
	serve(300) // regime 2

	for _, name := range []string{"forget", "window", "reset"} {
		acc := exploitAccuracy(t, s, name, env)
		if acc < 0.9*preAcc[name] {
			t.Errorf("stream %q post-drift accuracy %.2f, want within 10%% of pre-drift %.2f",
				name, acc, preAcc[name])
		}
	}
	if acc := exploitAccuracy(t, s, "static", env); acc > 0.5 {
		t.Errorf("static stream post-drift accuracy %.2f — expected it to stay degraded (≤ 0.5)", acc)
	}

	// Detection: every stream saw the swap on arm 1 and nowhere else.
	for _, name := range names {
		di, err := s.Drift(name)
		if err != nil {
			t.Fatal(err)
		}
		if di.Arms[1].Detections < 1 {
			t.Errorf("stream %q: no drift detected on the swapped arm", name)
		}
		if di.Arms[0].Detections != 0 {
			t.Errorf("stream %q: %d spurious detections on the untouched arm", name, di.Arms[0].Detections)
		}
		info, err := s.StreamInfo(name)
		if err != nil {
			t.Fatal(err)
		}
		if info.DriftEvents != di.Detections {
			t.Errorf("stream %q: StreamInfo reports %d drift events, drift endpoint %d",
				name, info.DriftEvents, di.Detections)
		}
		if name == "reset" && di.Resets < 1 {
			t.Errorf("reset stream performed no arm resets (%+v)", di)
		}
	}
	stats := s.Stats()
	var want uint64
	for _, info := range stats.Streams {
		want += info.DriftEvents
	}
	if stats.TotalDriftEvents != want || want == 0 {
		t.Errorf("Stats.TotalDriftEvents = %d, want %d (> 0)", stats.TotalDriftEvents, want)
	}
}

// TestAdaptSpecValidation: malformed adaptation specs are rejected at
// stream creation with ErrBadAdapt.
func TestAdaptSpecValidation(t *testing.T) {
	s := NewService(ServiceOptions{})
	bad := []AdaptSpec{
		{Mode: "quantum"},
		{Mode: AdaptNone, Factor: 0.9},
		{Mode: AdaptNone, Window: 10},
		{Mode: AdaptForgetting, Factor: 1.5},
		{Mode: AdaptForgetting, Window: 10},
		{Mode: AdaptWindow, Window: 1},
		{Mode: AdaptWindow, Factor: 0.9},
		{OnDrift: "panic"},
		{DriftDelta: -1},
		{DriftThreshold: -1},
		{DriftMinSamples: -1},
		{DriftWarmup: -1},
	}
	for _, spec := range bad {
		err := s.CreateStream("x", StreamConfig{Hardware: testHW(), Dim: 1, Adapt: spec})
		if !errors.Is(err, ErrBadAdapt) {
			t.Errorf("spec %+v: error %v, want ErrBadAdapt", spec, err)
		}
	}
	// Adaptation on a model-free policy is refused; on_drift reset too.
	err := s.CreateStream("x", StreamConfig{
		Hardware: testHW(), Dim: 1,
		Policy: PolicySpec{Type: PolicyRandom},
		Adapt:  AdaptSpec{Mode: AdaptForgetting},
	})
	if !errors.Is(err, ErrBadAdapt) {
		t.Errorf("adaptive random stream: error %v, want ErrBadAdapt", err)
	}
	err = s.CreateStream("x", StreamConfig{
		Hardware: testHW(), Dim: 1,
		Policy: PolicySpec{Type: PolicyRandom},
		Adapt:  AdaptSpec{OnDrift: DriftReset},
	})
	if !errors.Is(err, ErrBadAdapt) {
		t.Errorf("reset-on-drift random stream: error %v, want ErrBadAdapt", err)
	}
	// An adaptation mode conflicts with the raw Options memory knobs
	// (two sources of truth) — both directions are rejected, never
	// silently merged.
	err = s.CreateStream("x", StreamConfig{
		Hardware: testHW(), Dim: 1,
		Options: core.Options{ForgettingFactor: 0.9},
		Adapt:   AdaptSpec{Mode: AdaptForgetting, Factor: 0.95},
	})
	if !errors.Is(err, ErrBadAdapt) {
		t.Errorf("conflicting forgetting config: error %v, want ErrBadAdapt", err)
	}
	err = s.CreateStream("x", StreamConfig{
		Hardware: testHW(), Dim: 1,
		Options: core.Options{WindowSize: 10},
		Adapt:   AdaptSpec{Mode: AdaptWindow, Window: 64},
	})
	if !errors.Is(err, ErrBadAdapt) {
		t.Errorf("conflicting window config: error %v, want ErrBadAdapt", err)
	}
	if s.NumStreams() != 0 {
		t.Fatalf("rejected specs left %d streams behind", s.NumStreams())
	}
}

// TestAdaptivePolicyStreams: the adaptation modes work on non-default
// policies too — a LinUCB forgetting stream and a greedy window stream
// re-learn a swapped arm that a static LinUCB stream does not.
func TestAdaptivePolicyStreams(t *testing.T) {
	s := NewService(ServiceOptions{})
	mk := func(name string, policy PolicySpec, adapt AdaptSpec) {
		t.Helper()
		if err := s.CreateStream(name, StreamConfig{
			Hardware: testHW()[:2], Dim: 1, Policy: policy, Adapt: adapt,
		}); err != nil {
			t.Fatal(err)
		}
	}
	mk("ucb-static", PolicySpec{Type: PolicyLinUCB}, AdaptSpec{})
	mk("ucb-forget", PolicySpec{Type: PolicyLinUCB}, AdaptSpec{Mode: AdaptForgetting, Factor: 0.9})
	mk("greedy-window", PolicySpec{Type: PolicyGreedy}, AdaptSpec{Mode: AdaptWindow, Window: 30})
	env := &driftEnv{r: rng.New(5)}
	feed := func(rounds int) {
		for i := 0; i < rounds; i++ {
			x := float64(i%10 + 1)
			for _, name := range []string{"ucb-static", "ucb-forget", "greedy-window"} {
				// Off-policy traffic: both arms observed every round, so
				// adaptation quality is isolated from exploration.
				for arm := 0; arm < 2; arm++ {
					if err := s.ObserveDirect(name, arm, []float64{x}, env.runtime(arm, x)); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	feed(800)
	env.swapped = true
	feed(100)
	for _, name := range []string{"ucb-forget", "greedy-window"} {
		if acc := exploitAccuracy(t, s, name, env); acc < 0.9 {
			t.Errorf("stream %q post-drift accuracy %.2f, want ≥ 0.9", name, acc)
		}
	}
	if acc := exploitAccuracy(t, s, "ucb-static", env); acc > 0.5 {
		t.Errorf("static LinUCB post-drift accuracy %.2f — expected degraded (≤ 0.5)", acc)
	}
}

// TestShadowsInheritAdaptation: a shadow attached to an adaptive stream
// replays under the stream's adaptation (its models forget too), and a
// model-free shadow still attaches.
func TestShadowsInheritAdaptation(t *testing.T) {
	s := NewService(ServiceOptions{})
	if err := s.CreateStream("jobs", StreamConfig{
		Hardware: testHW()[:2], Dim: 1,
		Adapt:   AdaptSpec{Mode: AdaptForgetting, Factor: 0.9},
		Options: core.Options{ZeroEpsilon: true, Seed: 3},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachShadow("jobs", "greedy-shadow", PolicySpec{Type: PolicyGreedy}); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachShadow("jobs", "random-shadow", PolicySpec{Type: PolicyRandom}); err != nil {
		t.Fatalf("model-free shadow on adaptive stream: %v", err)
	}
	env := &driftEnv{r: rng.New(13)}
	feed := func(rounds int) {
		for i := 0; i < rounds; i++ {
			x := float64(i%10 + 1)
			for arm := 0; arm < 2; arm++ {
				if err := s.ObserveDirect("jobs", arm, []float64{x}, env.runtime(arm, x)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	feed(400)
	env.swapped = true
	feed(80)
	shadows, err := s.Shadows("jobs")
	if err != nil {
		t.Fatal(err)
	}
	if len(shadows) != 2 || shadows[0].Observations == 0 {
		t.Fatalf("shadow counters: %+v", shadows)
	}
	arm, err := s.Exploit("jobs", []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if arm != 0 {
		t.Fatalf("adaptive primary exploits arm %d post-swap, want 0", arm)
	}
}
