package serve

import (
	"net/http"
	"testing"

	"banditware/internal/schema"
)

// schemaCreateBody is the wire form of the acceptance-scenario stream:
// no dim — it derives from the schema (1 + 1 + 3 = 5).
var schemaCreateBody = map[string]any{
	"name":          "typed",
	"hardware_spec": "H0=2x16;H1=3x24;H2=4x16",
	"seed":          7,
	"schema": map[string]any{
		"fields": []map[string]any{
			{"name": "num_tasks", "required": true, "min": 0, "max": 10000},
			{"name": "input_mb", "normalize": "minmax", "default": 100},
			{"name": "site", "kind": "categorical", "categories": []string{"expanse", "nautilus", "local"}},
		},
	},
}

func createTypedStream(t *testing.T, base string) StreamInfo {
	t.Helper()
	var info StreamInfo
	if code := doJSON(t, "POST", base+"/v1/streams", schemaCreateBody, &info); code != http.StatusCreated {
		t.Fatalf("create schema stream: status %d", code)
	}
	return info
}

func TestHTTPSchemaStreamLifecycle(t *testing.T) {
	_, srv := newTestServer(t)
	info := createTypedStream(t, srv.URL)
	if info.Dim != 5 {
		t.Fatalf("derived dim = %d, want 5", info.Dim)
	}
	if info.Schema == nil || len(info.Schema.Fields) != 3 || info.Schema.Fields[2].Kind != schema.KindCategorical {
		t.Fatalf("create response schema = %+v", info.Schema)
	}

	// Named context recommend → observe round trip.
	var tk Ticket
	if code := doJSON(t, "POST", srv.URL+"/v1/streams/typed/recommend",
		map[string]any{"context": map[string]any{
			"num_tasks": 200, "input_mb": 512, "site": "nautilus",
		}}, &tk); code != http.StatusOK {
		t.Fatalf("context recommend: %d", code)
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/observe",
		map[string]any{"ticket": tk.ID, "runtime": 61.5}, nil); code != http.StatusOK {
		t.Fatal("observe failed")
	}
	// Direct context observe.
	if code := doJSON(t, "POST", srv.URL+"/v1/streams/typed/observe",
		map[string]any{"arm": 1, "context": map[string]any{"num_tasks": 80, "site": "local"}, "runtime": 25}, nil); code != http.StatusOK {
		t.Fatal("direct context observe failed")
	}
	// Context batch.
	var batch struct {
		Tickets []Ticket `json:"tickets"`
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/streams/typed/recommend/batch",
		map[string]any{"contexts": []map[string]any{
			{"num_tasks": 10}, {"num_tasks": 20, "site": "expanse"},
		}}, &batch); code != http.StatusOK || len(batch.Tickets) != 2 {
		t.Fatalf("context batch: %d (%d tickets)", code, len(batch.Tickets))
	}
	// Inspect surfaces the schema with its live normalization state.
	var inspect struct {
		StreamInfo
		Models []modelDTO `json:"models"`
	}
	doJSON(t, "GET", srv.URL+"/v1/streams/typed", nil, &inspect)
	if inspect.Schema == nil || inspect.Schema.Fields[1].Stats == nil {
		t.Fatalf("inspect schema = %+v", inspect.Schema)
	}
}

// TestHTTPSchemaViolationIs422: malformed contexts return 422 with the
// per-field error list, on the single, direct-observe, and batch routes.
func TestHTTPSchemaViolation422(t *testing.T) {
	_, srv := newTestServer(t)
	createTypedStream(t, srv.URL)

	type fieldErr struct {
		Field string `json:"field"`
		Error string `json:"error"`
	}
	var errResp struct {
		Error  string     `json:"error"`
		Fields []fieldErr `json:"fields"`
	}
	code := doJSON(t, "POST", srv.URL+"/v1/streams/typed/recommend",
		map[string]any{"context": map[string]any{
			"input_mb": -3.5, "site": "mars", "bogus": 1,
		}}, &errResp)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("malformed context: %d, want 422", code)
	}
	// Deterministic field order: declared fields first, then unknown.
	want := []fieldErr{
		{Field: "num_tasks", Error: "required field missing"},
		{Field: "site", Error: `unknown category "mars" (known: expanse, nautilus, local)`},
		{Field: "bogus", Error: "unknown field"},
	}
	if len(errResp.Fields) != len(want) {
		t.Fatalf("fields = %+v", errResp.Fields)
	}
	for i := range want {
		if errResp.Fields[i] != want[i] {
			t.Fatalf("field %d = %+v, want %+v", i, errResp.Fields[i], want[i])
		}
	}

	// Batch: one bad context rejects atomically with its index, still 422.
	errResp.Fields = nil
	code = doJSON(t, "POST", srv.URL+"/v1/streams/typed/recommend/batch",
		map[string]any{"contexts": []map[string]any{
			{"num_tasks": 5}, {"num_tasks": 5, "site": "venus"},
		}}, &errResp)
	if code != http.StatusUnprocessableEntity || len(errResp.Fields) != 1 || errResp.Fields[0].Field != "site" {
		t.Fatalf("batch violation: %d %+v", code, errResp)
	}

	// Direct observe with a bad context: 422, nothing learned.
	errResp.Fields = nil
	code = doJSON(t, "POST", srv.URL+"/v1/streams/typed/observe",
		map[string]any{"arm": 0, "context": map[string]any{"num_tasks": -1}, "runtime": 10}, &errResp)
	if code != http.StatusUnprocessableEntity || len(errResp.Fields) != 1 {
		t.Fatalf("observe violation: %d %+v", code, errResp)
	}

	// Raw-dimension streams 422 through the identity schema too.
	createJobsStream(t, srv.URL)
	code = doJSON(t, "POST", srv.URL+"/v1/streams/jobs/recommend",
		map[string]any{"context": map[string]any{"weight": 1}}, &errResp)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("identity-schema violation: %d", code)
	}

	// Giving both forms at once is a plain 400.
	var plain map[string]string
	code = doJSON(t, "POST", srv.URL+"/v1/streams/typed/recommend",
		map[string]any{"context": map[string]any{"num_tasks": 5}, "features": []float64{1, 2, 3, 4, 5}}, &plain)
	if code != http.StatusBadRequest {
		t.Fatalf("both forms: %d", code)
	}
	// A context with a non-scalar value fails JSON decoding → 400.
	code = doJSON(t, "POST", srv.URL+"/v1/streams/typed/recommend",
		map[string]any{"context": map[string]any{"num_tasks": []int{1}}}, &plain)
	if code != http.StatusBadRequest {
		t.Fatalf("non-scalar context value: %d", code)
	}
}
