package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"banditware/internal/core"
	"banditware/internal/hardware"
	"banditware/internal/policy"
	"banditware/internal/regress"
)

// Engine abstracts the decision core a stream serves from: anything that
// can pick an arm for a context, learn from an observed runtime, and
// serialise its learned state. The paper's Algorithm 1 bandit and every
// internal/policy.Policy adapt to it, so streams are policy-agnostic.
//
// Engines are "concurrency-ready", not concurrency-safe: implementations
// need no internal locking because the owning stream serialises every
// call under its mutex.
type Engine interface {
	// Kind returns the canonical policy type (one of the Policy*
	// constants), recorded in snapshots and surfaced in StreamInfo.
	Kind() string
	// Hardware returns the arm set (shared; do not mutate).
	Hardware() hardware.Set
	// Dim returns the feature dimension.
	Dim() int
	// Recommend picks an arm for features x. Predicted and the
	// exploration fields of the Decision may be zero for policies that
	// do not expose them.
	Recommend(x []float64) (core.Decision, error)
	// Observe trains on one (arm, features, runtime) triple.
	Observe(arm int, x []float64, runtime float64) error
	// Exploit returns the arm the current model considers best without
	// consuming exploration randomness where the policy supports that
	// (policies without a separate exploit mode fall back to Select).
	Exploit(x []float64) (int, error)
	// PredictAll returns per-arm runtime estimates, or ErrUnsupported
	// for model-free policies.
	PredictAll(x []float64) ([]float64, error)
	// Epsilon reports the current exploration probability; engines
	// without a decaying ε report 0.
	Epsilon() float64
	// Round reports how many observations the engine has absorbed.
	Round() int
	// SaveState serialises the engine's full learned state as JSON.
	SaveState(w io.Writer) error
}

// ModelProvider is an optional Engine extension exposing one arm's
// learned linear model for the stream-inspection endpoint.
type ModelProvider interface {
	Model(arm int) (regress.Model, error)
}

// CIProvider is an optional Engine extension exposing per-arm prediction
// intervals. Only the Algorithm 1 engine implements it.
type CIProvider interface {
	PredictWithCI(x []float64, z float64) ([]core.Interval, error)
}

// ArmResetter is an optional Engine extension: ResetArm drops one arm's
// learned model, restoring it to the constructed prior while leaving
// the other arms, the round counter, and ε untouched — the on-drift
// "reset" response. Model-free policies (random) do not implement it.
type ArmResetter interface {
	ResetArm(arm int) error
}

// Engine/policy errors.
var (
	// ErrUnknownPolicy reports a PolicySpec.Type no engine adapter
	// recognises.
	ErrUnknownPolicy = errors.New("serve: unknown policy type")
	// ErrUnsupported reports an operation the stream's policy cannot
	// perform (e.g. prediction intervals on a LinUCB stream).
	ErrUnsupported = errors.New("serve: operation not supported by the stream's policy")
)

// Canonical policy type identifiers accepted in PolicySpec.Type and
// reported by Engine.Kind. PolicyAlgorithm1 is the paper's decaying
// contextual ε-greedy bandit; the rest are the internal/policy
// alternatives.
const (
	PolicyAlgorithm1 = "algorithm1"
	PolicyLinUCB     = policy.TypeLinUCB
	PolicyLinTS      = policy.TypeLinTS
	PolicyEpsGreedy  = policy.TypeEpsGreedy
	PolicyGreedy     = policy.TypeGreedy
	PolicySoftmax    = policy.TypeSoftmax
	PolicyRandom     = policy.TypeRandom
)

// PolicySpec selects and parameterises a stream's (or shadow's) decision
// policy. The zero value selects Algorithm 1 with the stream's Options.
// Parameter fields apply only to the policy type that uses them; a zero
// parameter selects that policy's default. In JSON the spec may be
// either a bare string ("linucb") or an object
// ({"type": "linucb", "beta": 2}).
type PolicySpec struct {
	// Type is one of the Policy* constants (a few aliases are accepted:
	// "", "alg1" and "decaying-eps-greedy" mean algorithm1, "thompson"
	// means lints, "epsilon-greedy" means eps-greedy, "boltzmann" means
	// softmax).
	Type string `json:"type,omitempty"`
	// Beta scales LinUCB's confidence width (default 1).
	Beta float64 `json:"beta,omitempty"`
	// PosteriorScale scales linear Thompson sampling's posterior
	// (default 1).
	PosteriorScale float64 `json:"posterior_scale,omitempty"`
	// Epsilon is the fixed exploration probability of eps-greedy
	// (default 0.1; use type "greedy" for ε = 0).
	Epsilon float64 `json:"epsilon,omitempty"`
	// Temperature is the softmax temperature (default 1).
	Temperature float64 `json:"temperature,omitempty"`
	// Seed drives the policy's exploration randomness. For Algorithm 1
	// it overrides Options.Seed when non-zero.
	Seed uint64 `json:"seed,omitempty"`
}

// UnmarshalJSON accepts either a bare policy-type string or the full
// object form, and rejects unknown object fields.
func (p *PolicySpec) UnmarshalJSON(data []byte) error {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) > 0 && trimmed[0] == '"' {
		var s string
		if err := json.Unmarshal(trimmed, &s); err != nil {
			return err
		}
		*p = PolicySpec{Type: s}
		return nil
	}
	type plain PolicySpec // drops the custom unmarshaller
	var obj plain
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&obj); err != nil {
		return err
	}
	*p = PolicySpec(obj)
	return nil
}

// kind canonicalises Type, resolving aliases.
func (p PolicySpec) kind() (string, error) {
	switch strings.ToLower(strings.TrimSpace(p.Type)) {
	case "", PolicyAlgorithm1, "alg1", policy.TypeDecayingEpsGreedy:
		return PolicyAlgorithm1, nil
	case PolicyLinUCB:
		return PolicyLinUCB, nil
	case PolicyLinTS, "thompson":
		return PolicyLinTS, nil
	case PolicyEpsGreedy, "epsilon-greedy":
		return PolicyEpsGreedy, nil
	case PolicyGreedy:
		return PolicyGreedy, nil
	case PolicySoftmax, "boltzmann":
		return PolicySoftmax, nil
	case PolicyRandom:
		return PolicyRandom, nil
	}
	return "", fmt.Errorf("%w: %q", ErrUnknownPolicy, p.Type)
}

// defaulted returns v, or def when v is zero.
func defaulted(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}

// newEngine builds the engine a stream (or shadow) serves from. opts
// parameterises Algorithm 1 and is ignored by the other policies, which
// take their parameters from spec. adapt (already canonical — see
// compileAdapt) configures model forgetting or windowing: Algorithm 1
// takes it through its Options, the linear-model policies through
// policy.Adaptive; policies without models (random) reject any mode but
// "none".
func newEngine(hw hardware.Set, dim int, opts core.Options, spec PolicySpec, adapt AdaptSpec) (Engine, error) {
	kind, err := spec.kind()
	if err != nil {
		return nil, err
	}
	if kind == PolicyAlgorithm1 {
		if spec.Seed != 0 {
			opts.Seed = spec.Seed
		}
		if adapt.Mode != AdaptNone {
			// The adaptation spec is the single source of truth for the
			// memory knobs: a stream that also sets the raw Options
			// equivalents is ambiguous and rejected, not silently merged.
			if opts.ForgettingFactor != 0 {
				return nil, fmt.Errorf("%w: adaptation mode %q conflicts with the stream's forgetting_factor option",
					ErrBadAdapt, adapt.Mode)
			}
			if opts.WindowSize != 0 {
				return nil, fmt.Errorf("%w: adaptation mode %q conflicts with the stream's WindowSize option",
					ErrBadAdapt, adapt.Mode)
			}
		}
		switch adapt.Mode {
		case AdaptForgetting:
			opts.ForgettingFactor = adapt.Factor
		case AdaptWindow:
			opts.WindowSize = adapt.Window
		}
		b, err := core.New(hw, dim, opts)
		if err != nil {
			return nil, err
		}
		return banditEngine{b}, nil
	}
	// core.New validated these for Algorithm 1; the policy constructors
	// never see the hardware set, so validate here.
	if err := hw.Validate(); err != nil {
		return nil, err
	}
	if dim < 0 {
		return nil, fmt.Errorf("serve: negative feature dimension %d", dim)
	}
	n := len(hw)
	canonical := PolicySpec{Type: kind, Seed: spec.Seed}
	var p policy.Policy
	switch kind {
	case PolicyLinUCB:
		canonical.Beta = defaulted(spec.Beta, 1)
		p, err = policy.NewLinUCB(n, dim, canonical.Beta)
	case PolicyLinTS:
		canonical.PosteriorScale = defaulted(spec.PosteriorScale, 1)
		p, err = policy.NewLinTS(n, dim, canonical.PosteriorScale, spec.Seed)
	case PolicyEpsGreedy:
		canonical.Epsilon = defaulted(spec.Epsilon, 0.1)
		p, err = policy.NewFixedEpsilonGreedy(n, dim, canonical.Epsilon, spec.Seed)
	case PolicyGreedy:
		p, err = policy.NewGreedy(n, dim)
	case PolicySoftmax:
		canonical.Temperature = defaulted(spec.Temperature, 1)
		p, err = policy.NewSoftmax(n, dim, canonical.Temperature, spec.Seed)
	case PolicyRandom:
		p, err = policy.NewRandom(n, dim, spec.Seed)
	}
	if err != nil {
		return nil, err
	}
	if adapt.Mode != AdaptNone {
		ad, ok := p.(policy.Adaptive)
		if !ok {
			return nil, fmt.Errorf("%w: policy %s has no models to adapt", ErrBadAdapt, kind)
		}
		forget, window := 1.0, 0
		if adapt.Mode == AdaptForgetting {
			forget = adapt.Factor
		} else {
			window = adapt.Window
		}
		if err := ad.SetAdaptation(forget, window); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadAdapt, err)
		}
	}
	if adapt.OnDrift == DriftReset {
		if _, ok := p.(policy.ArmResetter); !ok {
			return nil, fmt.Errorf("%w: policy %s cannot reset arms (on_drift %q)",
				ErrBadAdapt, kind, DriftReset)
		}
	}
	return &policyEngine{spec: canonical, hw: hw, dim: dim, p: p}, nil
}

// --- Algorithm 1 adapter ---------------------------------------------

// banditEngine adapts the paper's core.Bandit to Engine. All methods but
// Kind come from the embedded bandit, including ModelProvider and
// CIProvider.
type banditEngine struct {
	*core.Bandit
}

// Kind implements Engine.
func (banditEngine) Kind() string { return PolicyAlgorithm1 }

// --- internal/policy adapter -----------------------------------------

// policyEngine adapts an internal/policy.Policy to Engine, tracking the
// round count the Policy interface does not carry and translating policy
// errors to the core sentinels the service reports.
type policyEngine struct {
	spec  PolicySpec // canonical type and effective parameters
	hw    hardware.Set
	dim   int
	p     policy.Policy
	round int
}

// mapPolicyErr translates policy sentinels to the core equivalents so
// callers see one error vocabulary regardless of the stream's policy.
func mapPolicyErr(err error) error {
	switch {
	case errors.Is(err, policy.ErrDim):
		return core.ErrDim
	case errors.Is(err, policy.ErrArm):
		return core.ErrArm
	}
	return err
}

// Kind implements Engine.
func (e *policyEngine) Kind() string { return e.spec.Type }

// Hardware implements Engine.
func (e *policyEngine) Hardware() hardware.Set { return e.hw }

// Dim implements Engine.
func (e *policyEngine) Dim() int { return e.dim }

// Epsilon implements Engine; fixed-parameter policies report 0.
func (e *policyEngine) Epsilon() float64 { return 0 }

// Round implements Engine.
func (e *policyEngine) Round() int { return e.round }

// Recommend implements Engine. Predicted is filled when the policy
// exposes per-arm estimates; Explored/Epsilon stay zero (the Policy
// interface does not report its exploration branch).
func (e *policyEngine) Recommend(x []float64) (core.Decision, error) {
	arm, err := e.p.Select(x)
	if err != nil {
		return core.Decision{}, mapPolicyErr(err)
	}
	d := core.Decision{Arm: arm}
	if pr, ok := e.p.(policy.Predictor); ok {
		if preds, err := pr.PredictAll(x); err == nil {
			d.Predicted = preds
		}
	}
	return d, nil
}

// Observe implements Engine.
func (e *policyEngine) Observe(arm int, x []float64, runtime float64) error {
	if math.IsNaN(runtime) || math.IsInf(runtime, 0) {
		return core.ErrBadValue
	}
	if err := e.p.Update(arm, x, runtime); err != nil {
		return mapPolicyErr(err)
	}
	e.round++
	return nil
}

// Exploit implements Engine, preferring the policy's dedicated exploit
// mode and falling back to Select (which, for policies like Random, may
// consume exploration randomness).
func (e *policyEngine) Exploit(x []float64) (int, error) {
	if ex, ok := e.p.(policy.Exploiter); ok {
		arm, err := ex.Exploit(x)
		return arm, mapPolicyErr(err)
	}
	arm, err := e.p.Select(x)
	return arm, mapPolicyErr(err)
}

// PredictAll implements Engine.
func (e *policyEngine) PredictAll(x []float64) ([]float64, error) {
	pr, ok := e.p.(policy.Predictor)
	if !ok {
		return nil, fmt.Errorf("%w (%s)", ErrUnsupported, e.spec.Type)
	}
	preds, err := pr.PredictAll(x)
	return preds, mapPolicyErr(err)
}

// ResetArm implements ArmResetter for policies that can drop one arm's
// model.
func (e *policyEngine) ResetArm(arm int) error {
	ar, ok := e.p.(policy.ArmResetter)
	if !ok {
		return fmt.Errorf("%w (%s)", ErrUnsupported, e.spec.Type)
	}
	return mapPolicyErr(ar.ResetArm(arm))
}

// Model implements ModelProvider for policies that expose per-arm
// models.
func (e *policyEngine) Model(arm int) (regress.Model, error) {
	am, ok := e.p.(policy.ArmModeler)
	if !ok {
		return regress.Model{}, fmt.Errorf("%w (%s)", ErrUnsupported, e.spec.Type)
	}
	m, err := am.ArmModel(arm)
	return m, mapPolicyErr(err)
}

// policyEngineState is the JSON wire form of a policyEngine.
type policyEngineState struct {
	Spec     PolicySpec   `json:"spec"`
	Hardware hardware.Set `json:"hardware"`
	Dim      int          `json:"dim"`
	Round    int          `json:"round"`
	Policy   policy.State `json:"policy"`
}

// SaveState implements Engine: spec, hardware, round counter, and the
// policy's full learned state in one JSON document.
func (e *policyEngine) SaveState(w io.Writer) error {
	sn, ok := e.p.(policy.Snapshotter)
	if !ok {
		return fmt.Errorf("%w: policy %s has no snapshot support", ErrUnsupported, e.spec.Type)
	}
	ps, err := sn.Snapshot()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(policyEngineState{
		Spec:     e.spec,
		Hardware: e.hw,
		Dim:      e.dim,
		Round:    e.round,
		Policy:   ps,
	})
}

// restorePolicyEngine rebuilds a policyEngine serialised by SaveState.
func restorePolicyEngine(data []byte) (*policyEngine, error) {
	var st policyEngineState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("serve: decoding policy engine state: %w", err)
	}
	if err := st.Hardware.Validate(); err != nil {
		return nil, err
	}
	if st.Policy.NumArms != len(st.Hardware) {
		return nil, fmt.Errorf("serve: corrupt engine state: %d arms, %d hardware",
			st.Policy.NumArms, len(st.Hardware))
	}
	p, err := policy.Restore(st.Policy)
	if err != nil {
		return nil, err
	}
	return &policyEngine{spec: st.Spec, hw: st.Hardware, dim: st.Dim, p: p, round: st.Round}, nil
}

// restoreEngine rebuilds an engine from its snapshotted kind and state.
// An empty kind means Algorithm 1 (the pre-policy snapshot formats).
func restoreEngine(kind string, data []byte) (Engine, error) {
	if kind == "" || kind == PolicyAlgorithm1 {
		b, err := core.LoadState(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		return banditEngine{b}, nil
	}
	eng, err := restorePolicyEngine(data)
	if err != nil {
		return nil, err
	}
	if eng.Kind() != kind {
		return nil, fmt.Errorf("serve: engine state is %q, envelope says %q", eng.Kind(), kind)
	}
	return eng, nil
}
