package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"maps"
	"sort"
	"time"

	"banditware/internal/armset"
	"banditware/internal/core"
	"banditware/internal/drift"
	"banditware/internal/schema"
)

// Snapshot wire format.
//
//   - Version 1 (PR 1) wrapped each stream's Algorithm 1 bandit state
//     (the legacy core format, embedded verbatim as raw JSON in the
//     "bandit" field) together with its ledger configuration, counters,
//     and pending tickets.
//   - Version 2 generalises the stream payload to any engine: "policy"
//     names the engine kind, "engine" carries its state (for Algorithm 1
//     streams these are exactly the version-1 bandit bytes), and streams
//     may carry shadow policies and per-ticket shadow selections.
//   - Version 3 adds the optional per-stream "schema" field: the
//     stream's declared feature schema including its live normalization
//     statistics (internal/schema wire form), so a restored stream
//     validates, encodes, and normalizes contexts exactly as before the
//     snapshot. Streams without a declared schema omit the field, so a
//     schemaless v3 stream body is byte-identical to its v2 form.
//   - Version 4 adds the reward pipeline: an optional per-stream (and
//     per-shadow) "reward" field carrying the canonical RewardSpec, plus
//     outcome aggregates ("reward_total", "runtime_total", "failures";
//     shadows also persist "matched_reward_total"). Streams on the
//     default runtime reward omit the spec, shadows that inherited the
//     stream's reward omit theirs, and all aggregates are omitted when
//     zero — so a default-reward v4 stream body freshly loaded from a
//     v3 file re-saves byte-identically to its v3 form.
//   - Version 5 adds non-stationary serving: an optional per-stream
//     "adapt" field carrying the canonical AdaptSpec (omitted for the
//     default mode-"none"/observe-only spec) and an optional "drift"
//     block persisting the per-arm Page-Hinkley detector states and the
//     auto-reset counter (omitted while every detector is pristine).
//     Engine-side adaptation state — forgetting factors, sliding-window
//     buffers — travels inside the engine payloads (core Options /
//     policy.State), so a default-adaptation stream freshly loaded from
//     a v4 file re-saves byte-identically to its v4 form.
//   - Version 6 adds fleet replication (internal/dist): an optional
//     per-stream "dist" block persisting the foreign contributions the
//     stream absorbed from peers via delta merges (per-arm sufficient
//     statistics, rounds, counters, drift counts — see delta.go), and
//     a sibling *delta envelope* sharing this format name and version
//     but marked "delta": true, carrying per-stream additive changes
//     instead of full state. Load rejects delta envelopes (ApplyDelta
//     consumes them); the dist block is omitted until a stream has
//     merged foreign state — so a single-node v5 stream body re-saves
//     byte-identically to its v5 form.
//   - Version 7 adds arm-set elasticity and the recommendation cache:
//     an optional per-stream "arms" block persisting the per-arm
//     lifecycle statuses (omitted while every arm is active) and the
//     delta-sync arm generations (omitted while no arm was ever
//     reset), and an optional "cache" block persisting the stream's
//     recommendation-cache spec and its hit/miss/fallthrough counters
//     (omitted for streams without a cache). Both blocks are omitted
//     in the steady state, so a static v6 stream body re-saves
//     byte-identically to its v6 form.
//
// Load reads versions 1–7 plus the pre-envelope legacy
// single-recommender format; Save always writes the current version.
const (
	snapshotFormat  = "banditware-service"
	snapshotVersion = 7
)

type pendingSnap struct {
	ID         string         `json:"id"`
	Seq        uint64         `json:"seq"`
	Arm        int            `json:"arm"`
	Features   []float64      `json:"features"`
	IssuedAtNS int64          `json:"issued_at_ns"`
	ShadowArms map[string]int `json:"shadow_arms,omitempty"`
}

type shadowSnap struct {
	Name   string          `json:"name"`
	Policy string          `json:"policy"`
	Engine json.RawMessage `json:"engine"`
	// Reward is the shadow's own reward spec (version 4+); omitted when
	// the shadow inherited the stream's reward, which it re-inherits on
	// load.
	Reward         *RewardSpec `json:"reward,omitempty"`
	Decisions      uint64      `json:"decisions"`
	Observations   uint64      `json:"observations"`
	Agreements     uint64      `json:"agreements"`
	MatchedRuntime float64     `json:"matched_runtime_total"`
	MatchedReward  float64     `json:"matched_reward_total,omitempty"`
	RewardTotal    float64     `json:"reward_total,omitempty"`
	EstRegret      float64     `json:"estimated_regret"`
}

type streamSnap struct {
	Name string `json:"name"`
	// Policy and Engine are the version-2 engine payload; Bandit is the
	// version-1 Algorithm 1 payload. Exactly one of Engine/Bandit is
	// set, matching the envelope version.
	Policy string          `json:"policy,omitempty"`
	Engine json.RawMessage `json:"engine,omitempty"`
	Bandit json.RawMessage `json:"bandit,omitempty"`
	// Schema is the stream's declared feature schema with its live
	// normalization statistics (version 3+; absent for raw-dimension
	// streams and in older envelopes).
	Schema json.RawMessage `json:"schema,omitempty"`
	// Reward is the stream's canonical reward spec and RewardTotal /
	// RuntimeTotal / Failures its outcome aggregates (version 4+).
	// Default-reward streams omit the spec; zero aggregates are omitted
	// — so a stream loaded from a v3 file re-saves byte-identically.
	Reward       *RewardSpec `json:"reward,omitempty"`
	RewardTotal  float64     `json:"reward_total,omitempty"`
	RuntimeTotal float64     `json:"runtime_total,omitempty"`
	Failures     uint64      `json:"failures,omitempty"`
	// Adapt is the stream's canonical adaptation spec and Drift its
	// per-arm detector states plus auto-reset counter (version 5+).
	// Default-adaptation streams omit the spec; the drift block is
	// omitted while every detector is pristine — so a stream loaded
	// from a v4 file re-saves byte-identically.
	Adapt *AdaptSpec      `json:"adapt,omitempty"`
	Drift json.RawMessage `json:"drift,omitempty"`
	// Dist is the stream's accumulated foreign (fleet-replicated) state
	// (version 6+); omitted until the stream has merged peer deltas.
	Dist *distSnap `json:"dist,omitempty"`
	// Arms is the stream's arm lifecycle state and Cache its
	// recommendation-cache spec and counters (version 7+); both are
	// omitted in the steady state (all arms active, no generation
	// bumps, no cache).
	Arms       *armsetSnap   `json:"arms,omitempty"`
	Cache      *cacheSnap    `json:"cache,omitempty"`
	Shadows    []shadowSnap  `json:"shadows,omitempty"`
	MaxPending int           `json:"max_pending"`
	TicketTTL  time.Duration `json:"ticket_ttl_ns"`
	NextSeq    uint64        `json:"next_seq"`
	Issued     uint64        `json:"issued"`
	Observed   uint64        `json:"observed"`
	Evicted    uint64        `json:"evicted"`
	Expired    uint64        `json:"expired"`
	Pending    []pendingSnap `json:"pending,omitempty"`
}

// driftSnap is the wire form of a stream's drift-monitoring state: one
// Page-Hinkley detector per arm (in arm order) and the auto-reset
// counter.
type driftSnap struct {
	Arms   []*drift.PageHinkley `json:"arms"`
	Resets uint64               `json:"resets,omitempty"`
}

// armsetSnap is the version-7 wire form of a stream's arm lifecycle
// state: per-arm statuses (in arm order; omitted while all active) and
// the delta-sync arm generations (omitted while all zero).
type armsetSnap struct {
	Statuses []string `json:"statuses,omitempty"`
	Gens     []uint64 `json:"gens,omitempty"`
}

// cacheSnap is the version-7 wire form of a stream's recommendation
// cache: its canonical spec plus the lifetime counters. Cached entries
// themselves are not persisted — a restored replica re-fills its cache
// from live traffic.
type cacheSnap struct {
	Spec         CacheSpec `json:"spec"`
	Hits         uint64    `json:"hits,omitempty"`
	Misses       uint64    `json:"misses,omitempty"`
	Fallthroughs uint64    `json:"fallthroughs,omitempty"`
}

type serviceSnap struct {
	Format  string       `json:"format"`
	Version int          `json:"version"`
	SavedAt time.Time    `json:"saved_at"`
	Streams []streamSnap `json:"streams"`
}

// Save serialises the whole service — every stream's engine state,
// shadow policies and counters, ε, round counter, ledger counters, and
// pending tickets — into one versioned JSON envelope. The snapshot is a
// consistent point in time: all stream locks are held (in name order)
// while state is captured, so no observation is split across the cut.
// Streams registered while Save runs may be missed; removal of captured
// streams is not.
func (s *Service) Save(w io.Writer) error {
	s.FlushObserves()         // async mode: acknowledged observes land before the cut
	streams := s.allStreams() // sorted by name: fixed lock order
	snap := serviceSnap{
		Format:  snapshotFormat,
		Version: snapshotVersion,
		SavedAt: s.now(),
		Streams: make([]streamSnap, 0, len(streams)),
	}
	for _, st := range streams {
		st.mu.Lock()
	}
	var err error
	for _, st := range streams {
		var ss streamSnap
		ss, err = st.snapshotLocked()
		if err != nil {
			break
		}
		snap.Streams = append(snap.Streams, ss)
	}
	for i := len(streams) - 1; i >= 0; i-- {
		streams[i].mu.Unlock()
	}
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

func (st *stream) snapshotLocked() (streamSnap, error) {
	var buf bytes.Buffer
	if err := st.engine.SaveState(&buf); err != nil {
		return streamSnap{}, fmt.Errorf("serve: snapshotting stream %q: %w", st.name, err)
	}
	var schemaRaw json.RawMessage
	if st.schemaDeclared {
		// Marshalled under the stream lock: Encode mutates the schema's
		// normalization statistics, and the envelope encode happens after
		// the locks are released.
		raw, err := json.Marshal(st.sch)
		if err != nil {
			return streamSnap{}, fmt.Errorf("serve: snapshotting schema of stream %q: %w", st.name, err)
		}
		schemaRaw = raw
	}
	var rewardSpec *RewardSpec
	if !st.rw.spec.IsDefault() {
		spec := st.rw.spec
		rewardSpec = &spec
	}
	var adaptSpec *AdaptSpec
	if !st.adapt.IsDefault() {
		spec := st.adapt
		adaptSpec = &spec
	}
	var driftRaw json.RawMessage
	touched := st.driftResets > 0
	for _, d := range st.detectors {
		touched = touched || d.Touched()
	}
	if touched {
		// Marshalled under the stream lock: Add mutates the detectors,
		// and the envelope encode happens after the locks are released.
		raw, err := json.Marshal(driftSnap{Arms: st.detectors, Resets: st.driftResets})
		if err != nil {
			return streamSnap{}, fmt.Errorf("serve: snapshotting drift state of stream %q: %w", st.name, err)
		}
		driftRaw = raw
	}
	ss := streamSnap{
		Name:         st.name,
		Policy:       st.engine.Kind(),
		Engine:       json.RawMessage(buf.Bytes()),
		Schema:       schemaRaw,
		Reward:       rewardSpec,
		RewardTotal:  st.rewardTotal,
		RuntimeTotal: st.runtimeTotal,
		Failures:     st.failures,
		Adapt:        adaptSpec,
		Drift:        driftRaw,
		Dist:         st.distSnapLocked(),
		Arms:         st.armsetSnapLocked(),
		Cache:        st.cacheSnapLocked(),
		MaxPending:   st.ledger.cap,
		TicketTTL:    st.ledger.ttl,
		NextSeq:      st.nextSeq,
		Issued:       st.issued,
		Observed:     st.observed,
		Evicted:      st.ledger.evicted,
		Expired:      st.ledger.expired,
	}
	for _, sh := range st.shadows {
		var sbuf bytes.Buffer
		if err := sh.engine.SaveState(&sbuf); err != nil {
			return streamSnap{}, fmt.Errorf("serve: snapshotting shadow %q of stream %q: %w", sh.name, st.name, err)
		}
		var shReward *RewardSpec
		if !sh.rwInherited {
			spec := sh.rw.spec
			shReward = &spec
		}
		ss.Shadows = append(ss.Shadows, shadowSnap{
			Name:           sh.name,
			Policy:         sh.engine.Kind(),
			Engine:         json.RawMessage(sbuf.Bytes()),
			Reward:         shReward,
			Decisions:      sh.decisions,
			Observations:   sh.observations,
			Agreements:     sh.agreements,
			MatchedRuntime: sh.matchedRuntime,
			MatchedReward:  sh.matchedReward,
			RewardTotal:    sh.rewardTotal,
			EstRegret:      sh.estRegret,
		})
	}
	for _, p := range st.ledger.snapshotPending() {
		ss.Pending = append(ss.Pending, pendingSnap{
			ID:  ticketID(st.name, p.seq),
			Seq: p.seq,
			Arm: p.arm,
			// Cloned, not aliased: the JSON encode happens after the
			// stream lock is released — DetachShadow mutates the live
			// map under that lock, and the ledger recycles redeemed
			// tickets' feature buffers.
			Features:   append([]float64(nil), p.features...),
			IssuedAtNS: p.issuedAt.UnixNano(),
			ShadowArms: maps.Clone(p.shadowArms),
		})
	}
	return ss, nil
}

// armsetSnapLocked returns the stream's persisted arm lifecycle state,
// or nil in the steady state (every arm active, every generation zero)
// so pre-churn stream bodies stay byte-stable across versions.
func (st *stream) armsetSnapLocked() *armsetSnap {
	var as armsetSnap
	as.Statuses = st.armStatesLocked()
	for _, g := range st.armGen {
		if g != 0 {
			as.Gens = append([]uint64(nil), st.armGen...)
			break
		}
	}
	if as.Statuses == nil && as.Gens == nil {
		return nil
	}
	return &as
}

// restoreArmsetLocked rebuilds a stream's arm lifecycle state from its
// persisted form, validating both blocks against the restored engine's
// arm count.
func (st *stream) restoreArmsetLocked(as *armsetSnap) error {
	arms := len(st.engine.Hardware())
	if len(as.Statuses) > 0 {
		if len(as.Statuses) != arms {
			return fmt.Errorf("%d statuses for %d arms", len(as.Statuses), arms)
		}
		statuses := make([]armset.Status, arms)
		active := 0
		for i, s := range as.Statuses {
			parsed, err := armset.ParseStatus(s)
			if err != nil {
				return fmt.Errorf("arm %d: %w", i, err)
			}
			statuses[i] = parsed
			if parsed == armset.Active {
				active++
			}
		}
		if active == 0 {
			return fmt.Errorf("no active arm")
		}
		st.life.Restore(statuses)
	}
	if len(as.Gens) > 0 {
		if len(as.Gens) != arms {
			return fmt.Errorf("%d arm generations for %d arms", len(as.Gens), arms)
		}
		st.armGen = append([]uint64(nil), as.Gens...)
	}
	return nil
}

// cacheSnapLocked returns the stream's persisted cache state, or nil
// for streams without a cache.
func (st *stream) cacheSnapLocked() *cacheSnap {
	if st.cache == nil || st.cacheSpec == nil {
		return nil
	}
	h, m, f := st.cache.Counters()
	return &cacheSnap{Spec: *st.cacheSpec, Hits: h, Misses: m, Fallthroughs: f}
}

// SaveStream serialises one stream's engine in its native state format —
// for Algorithm 1 streams, the legacy single-recommender format
// (core.SaveState), loadable by both the single-recommender loader and
// Load. Ticket-ledger state, shadows, and counters are not part of that
// format; use Save for a full snapshot.
func (s *Service) SaveStream(name string, w io.Writer) error {
	s.FlushObserves()
	st, err := s.stream(name)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.engine.SaveState(w)
}

// Load restores a service from a snapshot written by Save: the current
// version-7 envelope, the earlier envelope versions (6: fleet
// replication, 5: adaptation, 4: rewards, 3: schemas, 2: policy-typed
// streams, 1: pre-policy), or — for backward
// compatibility — the legacy single-recommender state format
// (core.SaveState / Recommender.Save), which is restored as a single
// Algorithm 1 stream named "default".
func Load(r io.Reader, opts ServiceOptions) (*Service, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("serve: reading snapshot: %w", err)
	}
	var probe struct {
		Format string `json:"format"`
		Delta  bool   `json:"delta"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("serve: decoding snapshot: %w", err)
	}
	if probe.Delta {
		return nil, fmt.Errorf("%w: delta envelopes carry changes, not full state (use Service.ApplyDelta)", ErrBadDelta)
	}
	s := NewService(opts)
	if probe.Format == "" {
		// Legacy single-recommender state.
		b, err := core.LoadState(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("serve: loading legacy recommender state: %w", err)
		}
		if err := s.AdoptBandit("default", b, 0, 0); err != nil {
			return nil, err
		}
		return s, nil
	}
	if probe.Format != snapshotFormat {
		return nil, fmt.Errorf("serve: unknown snapshot format %q", probe.Format)
	}
	var snap serviceSnap
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("serve: decoding snapshot: %w", err)
	}
	if snap.Version < 1 || snap.Version > snapshotVersion {
		return nil, fmt.Errorf("serve: unsupported snapshot version %d", snap.Version)
	}
	for _, ss := range snap.Streams {
		kind, raw := ss.Policy, ss.Engine
		if raw == nil {
			// Version 1: the Algorithm 1 state lives in "bandit".
			kind, raw = "", ss.Bandit
		}
		eng, err := restoreEngine(kind, raw)
		if err != nil {
			return nil, fmt.Errorf("serve: restoring stream %q: %w", ss.Name, err)
		}
		var sch *schema.Schema
		if ss.Schema != nil {
			sch, err = schema.Parse(ss.Schema)
			if err != nil {
				return nil, fmt.Errorf("serve: restoring schema of stream %q: %w", ss.Name, err)
			}
			if got := sch.EncodedDim(); got != eng.Dim() {
				return nil, fmt.Errorf("serve: restoring stream %q: schema encodes %d dims, engine has %d",
					ss.Name, got, eng.Dim())
			}
		}
		rw := defaultReward()
		if ss.Reward != nil {
			rw, err = compileReward(*ss.Reward)
			if err != nil {
				return nil, fmt.Errorf("serve: restoring reward of stream %q: %w", ss.Name, err)
			}
		}
		adapt := defaultAdapt()
		if ss.Adapt != nil {
			adapt, err = compileAdapt(*ss.Adapt)
			if err != nil {
				return nil, fmt.Errorf("serve: restoring adaptation of stream %q: %w", ss.Name, err)
			}
		}
		var cacheSpec *CacheSpec
		if ss.Cache != nil {
			spec := ss.Cache.Spec
			cacheSpec = &spec
		}
		if err := s.adopt(ss.Name, eng, sch, rw, adapt, ss.MaxPending, ss.TicketTTL, cacheSpec); err != nil {
			return nil, err
		}
		st, err := s.stream(ss.Name)
		if err != nil {
			return nil, err
		}
		if ss.Cache != nil {
			st.cache.SetCounters(ss.Cache.Hits, ss.Cache.Misses, ss.Cache.Fallthroughs)
		}
		if ss.Arms != nil {
			if err := st.restoreArmsetLocked(ss.Arms); err != nil {
				return nil, fmt.Errorf("serve: restoring arm state of stream %q: %w", ss.Name, err)
			}
		}
		if ss.Drift != nil {
			var ds driftSnap
			if err := json.Unmarshal(ss.Drift, &ds); err != nil {
				return nil, fmt.Errorf("serve: restoring drift state of stream %q: %w", ss.Name, err)
			}
			if len(ds.Arms) != len(st.detectors) {
				return nil, fmt.Errorf("serve: restoring drift state of stream %q: %d detectors for %d arms",
					ss.Name, len(ds.Arms), len(st.detectors))
			}
			for i, d := range ds.Arms {
				if d == nil {
					return nil, fmt.Errorf("serve: restoring drift state of stream %q: arm %d detector missing", ss.Name, i)
				}
			}
			st.detectors = ds.Arms
			st.driftResets = ds.Resets
		}
		if ss.Dist != nil {
			if err := st.restoreDistLocked(ss.Dist); err != nil {
				return nil, fmt.Errorf("serve: restoring dist state of stream %q: %w", ss.Name, err)
			}
		}
		st.nextSeq = ss.NextSeq
		st.issued = ss.Issued
		st.observed = ss.Observed
		st.rewardTotal = ss.RewardTotal
		st.runtimeTotal = ss.RuntimeTotal
		st.failures = ss.Failures
		st.ledger.evicted = ss.Evicted
		st.ledger.expired = ss.Expired
		for _, shs := range ss.Shadows {
			seng, err := restoreEngine(shs.Policy, shs.Engine)
			if err != nil {
				return nil, fmt.Errorf("serve: restoring shadow %q of stream %q: %w", shs.Name, ss.Name, err)
			}
			// A shadow without a recorded reward inherited the stream's
			// at attach time; re-inherit it (pre-v4 shadows land here).
			shRw, shInherited := st.rw, true
			if shs.Reward != nil {
				shRw, err = compileReward(*shs.Reward)
				if err != nil {
					return nil, fmt.Errorf("serve: restoring reward of shadow %q of stream %q: %w", shs.Name, ss.Name, err)
				}
				shInherited = false
			}
			st.shadows = append(st.shadows, &shadow{
				name:           shs.Name,
				engine:         seng,
				rw:             shRw,
				rwInherited:    shInherited,
				decisions:      shs.Decisions,
				observations:   shs.Observations,
				agreements:     shs.Agreements,
				matchedRuntime: shs.MatchedRuntime,
				matchedReward:  shs.MatchedReward,
				rewardTotal:    shs.RewardTotal,
				estRegret:      shs.EstRegret,
			})
		}
		pend := append([]pendingSnap(nil), ss.Pending...)
		sort.Slice(pend, func(i, j int) bool { return pend[i].Seq < pend[j].Seq })
		for _, p := range pend {
			st.ledger.restore(&pendingTicket{
				seq:        p.Seq,
				arm:        p.Arm,
				features:   p.Features,
				issuedAt:   time.Unix(0, p.IssuedAtNS),
				shadowArms: p.ShadowArms,
			})
		}
	}
	return s, nil
}
