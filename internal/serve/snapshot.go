package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"banditware/internal/core"
)

// Snapshot wire format. Version 1 wraps each stream's bandit state (the
// legacy core format, embedded verbatim as raw JSON) together with its
// ledger configuration, counters, and pending tickets.
const (
	snapshotFormat  = "banditware-service"
	snapshotVersion = 1
)

type pendingSnap struct {
	ID         string    `json:"id"`
	Seq        uint64    `json:"seq"`
	Arm        int       `json:"arm"`
	Features   []float64 `json:"features"`
	IssuedAtNS int64     `json:"issued_at_ns"`
}

type streamSnap struct {
	Name       string          `json:"name"`
	Bandit     json.RawMessage `json:"bandit"`
	MaxPending int             `json:"max_pending"`
	TicketTTL  time.Duration   `json:"ticket_ttl_ns"`
	NextSeq    uint64          `json:"next_seq"`
	Issued     uint64          `json:"issued"`
	Observed   uint64          `json:"observed"`
	Evicted    uint64          `json:"evicted"`
	Expired    uint64          `json:"expired"`
	Pending    []pendingSnap   `json:"pending,omitempty"`
}

type serviceSnap struct {
	Format  string       `json:"format"`
	Version int          `json:"version"`
	SavedAt time.Time    `json:"saved_at"`
	Streams []streamSnap `json:"streams"`
}

// Save serialises the whole service — every stream's models, ε, round
// counter, ledger counters, and pending tickets — into one versioned
// JSON envelope. The snapshot is a consistent point in time: all stream
// locks are held (in name order) while state is captured, so no
// observation is split across the cut. Streams registered while Save
// runs may be missed; removal of captured streams is not.
func (s *Service) Save(w io.Writer) error {
	streams := s.allStreams() // sorted by name: fixed lock order
	snap := serviceSnap{
		Format:  snapshotFormat,
		Version: snapshotVersion,
		SavedAt: s.now(),
		Streams: make([]streamSnap, 0, len(streams)),
	}
	for _, st := range streams {
		st.mu.Lock()
	}
	var err error
	for _, st := range streams {
		var ss streamSnap
		ss, err = st.snapshotLocked()
		if err != nil {
			break
		}
		snap.Streams = append(snap.Streams, ss)
	}
	for i := len(streams) - 1; i >= 0; i-- {
		streams[i].mu.Unlock()
	}
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

func (st *stream) snapshotLocked() (streamSnap, error) {
	var buf bytes.Buffer
	if err := st.bandit.SaveState(&buf); err != nil {
		return streamSnap{}, fmt.Errorf("serve: snapshotting stream %q: %w", st.name, err)
	}
	ss := streamSnap{
		Name:       st.name,
		Bandit:     json.RawMessage(buf.Bytes()),
		MaxPending: st.ledger.cap,
		TicketTTL:  st.ledger.ttl,
		NextSeq:    st.nextSeq,
		Issued:     st.issued,
		Observed:   st.observed,
		Evicted:    st.ledger.evicted,
		Expired:    st.ledger.expired,
	}
	for _, p := range st.ledger.snapshotPending() {
		ss.Pending = append(ss.Pending, pendingSnap{
			ID:         p.id,
			Seq:        p.seq,
			Arm:        p.arm,
			Features:   p.features,
			IssuedAtNS: p.issuedAt.UnixNano(),
		})
	}
	return ss, nil
}

// SaveStream serialises one stream in the legacy single-recommender
// format (core.SaveState), loadable by both the single-recommender
// loader and Load. Ticket-ledger state and counters are not part of
// that format; use Save for a full snapshot.
func (s *Service) SaveStream(name string, w io.Writer) error {
	st, err := s.stream(name)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.bandit.SaveState(w)
}

// Load restores a service from a snapshot written by Save. For backward
// compatibility it also accepts the legacy single-recommender state
// format (core.SaveState / Recommender.Save): such state is restored as
// a single stream named "default".
func Load(r io.Reader, opts ServiceOptions) (*Service, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("serve: reading snapshot: %w", err)
	}
	var probe struct {
		Format string `json:"format"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("serve: decoding snapshot: %w", err)
	}
	s := NewService(opts)
	if probe.Format == "" {
		// Legacy single-recommender state.
		b, err := core.LoadState(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("serve: loading legacy recommender state: %w", err)
		}
		if err := s.AdoptBandit("default", b, 0, 0); err != nil {
			return nil, err
		}
		return s, nil
	}
	if probe.Format != snapshotFormat {
		return nil, fmt.Errorf("serve: unknown snapshot format %q", probe.Format)
	}
	var snap serviceSnap
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("serve: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("serve: unsupported snapshot version %d", snap.Version)
	}
	for _, ss := range snap.Streams {
		b, err := core.LoadState(bytes.NewReader(ss.Bandit))
		if err != nil {
			return nil, fmt.Errorf("serve: restoring stream %q: %w", ss.Name, err)
		}
		if err := s.AdoptBandit(ss.Name, b, ss.MaxPending, ss.TicketTTL); err != nil {
			return nil, err
		}
		st, err := s.stream(ss.Name)
		if err != nil {
			return nil, err
		}
		st.nextSeq = ss.NextSeq
		st.issued = ss.Issued
		st.observed = ss.Observed
		st.ledger.evicted = ss.Evicted
		st.ledger.expired = ss.Expired
		pend := append([]pendingSnap(nil), ss.Pending...)
		sort.Slice(pend, func(i, j int) bool { return pend[i].Seq < pend[j].Seq })
		for _, p := range pend {
			st.ledger.restore(&pendingTicket{
				id:       p.ID,
				seq:      p.Seq,
				arm:      p.Arm,
				features: p.Features,
				issuedAt: time.Unix(0, p.IssuedAtNS),
			})
		}
	}
	return s, nil
}
