package serve

import "banditware/internal/schema"

// Zero-allocation serving API.
//
// The classic Recommend/Observe pair allocates per call by contract: a
// fresh Ticket with its own Predicted slice and a rendered ID string.
// The *Into / *Seq variants below keep those contracts out of the hot
// path: the caller owns one Ticket and hands it back every call (its
// Predicted backing array is reused), the ticket identity travels as
// the integer Seq instead of a formatted string, and observes key by
// (stream, seq) directly. On a warmed stream the full
// RecommendInto → ObserveSeq cycle allocates nothing
// (pinned by alloc_test.go).
//
// The two APIs are interchangeable mid-stream: RecommendInto consumes
// exploration randomness exactly like Recommend, and a ticket issued by
// either can be redeemed by ObserveOutcome (by ID) or ObserveSeqOutcome
// (by Seq — every tracked Ticket carries it).

// RecommendInto is Recommend writing into a caller-reused Ticket: every
// field is (re)set, t.Predicted's backing array is reused, and the ID
// string is not rendered — t.ID is "" and t.Seq carries the ticket
// identity for ObserveSeq. Use ticket.ID() / ticketID rendering only
// off the hot path.
func (s *Service) RecommendInto(name string, x []float64, t *Ticket) error {
	st, err := s.stream(name)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.recommendIntoLocked(s.now(), x, t, true, false)
}

// RecommendCtxInto is RecommendCtx writing into a caller-reused Ticket:
// the context is validated and encoded by the stream's compiled encoder
// into a stream-retained scratch buffer, then served exactly like
// RecommendInto.
func (s *Service) RecommendCtxInto(name string, ctx schema.Context, t *Ticket) error {
	st, err := s.stream(name)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	x, err := st.enc.EncodeInto(ctx, st.encScratch[:0])
	if err != nil {
		return err
	}
	st.encScratch = x
	return st.recommendIntoLocked(s.now(), x, t, true, false)
}

// ObserveSeqOutcome redeems a ticket by its sequence number (Ticket.Seq)
// — ObserveOutcome without the ID round-trip. Semantics are identical:
// the outcome is validated before the ticket is resolved, each ticket
// redeems exactly once, and with the async observe queue enabled the
// model update is deferred to the background drainer.
func (s *Service) ObserveSeqOutcome(name string, seq uint64, o Outcome) error {
	if err := validateOutcome(o); err != nil {
		return err
	}
	st, err := s.stream(name)
	if err != nil {
		return err
	}
	if s.async != nil && s.async.enqueueTicket(st, seq, o) {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.observeTicketLocked(s.now(), "", seq, o)
}

// ObserveSeq redeems a ticket by sequence number with a bare runtime —
// ObserveSeqOutcome with the scalar mapped to the default Outcome.
func (s *Service) ObserveSeq(name string, seq uint64, runtime float64) error {
	return s.ObserveSeqOutcome(name, seq, Outcome{Runtime: runtime})
}

// FlushObserves blocks until every async observe enqueued before the
// call has been applied. A no-op in synchronous mode. Save, SaveStream,
// CaptureDelta, and ImportSnapshot flush implicitly, so persisted state
// never misses an acknowledged observe.
func (s *Service) FlushObserves() {
	if s.async != nil {
		s.async.flush()
	}
}

// Close drains and stops the async observe drainer. The service remains
// fully usable afterwards — observe paths fall back to the synchronous
// apply. A no-op in synchronous mode; safe to call more than once.
func (s *Service) Close() error {
	if s.async != nil {
		s.async.stop()
	}
	return nil
}
