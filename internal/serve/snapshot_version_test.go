package serve

// Cross-version snapshot coverage: every format the loader claims to
// read (legacy, v1, v2, v3, v4) loads into the current service,
// re-saves as v4, and — for the current format — round-trips
// byte-for-byte, with and without declared schemas, rewards, and live
// normalization state. TestSnapshotReadsV1 (v1 → v4) and
// TestLoadLegacySingleRecommenderState (legacy → v4) cover the older
// two writers; TestSnapshotReadsV3 pins the byte-stable v3 → v4
// upgrade for default-reward streams.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"banditware/internal/core"
	"banditware/internal/schema"
)

// buildMixedService assembles the snapshot torture case: an Algorithm 1
// stream with a declared schema (live min-max state), a LinUCB stream
// without one, a shadow, and pending tickets on both paths.
func buildMixedService(t *testing.T, clock *fakeClock) (*Service, []Ticket) {
	t.Helper()
	s := NewService(ServiceOptions{Now: clock.now, TicketTTL: time.Hour})
	if err := s.CreateStream("typed", StreamConfig{
		Hardware: testHW(), Schema: testSchemaFields(), Options: core.Options{Seed: 4},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateStream("plain", StreamConfig{
		Hardware: testHW(), Dim: 1, Policy: PolicySpec{Type: PolicyLinUCB, Beta: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachShadow("typed", "greedy-shadow", PolicySpec{Type: PolicyGreedy}); err != nil {
		t.Fatal(err)
	}
	var pendings []Ticket
	for i := 0; i < 40; i++ {
		ctx := schema.Context{
			Numeric:     map[string]float64{"num_tasks": float64(1 + i*53%300), "input_mb": float64(5 + i*29%800)},
			Categorical: map[string]string{"site": []string{"expanse", "nautilus", "local"}[i%3]},
		}
		tk, err := s.RecommendCtx("typed", ctx)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := s.Recommend("plain", []float64{float64(i%9 + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if i%8 == 7 {
			pendings = append(pendings, tk, raw)
			continue
		}
		if err := s.Observe(tk.ID, float64(10+i%13*7)); err != nil {
			t.Fatal(err)
		}
		if err := s.Observe(raw.ID, float64(30+i%5*11)); err != nil {
			t.Fatal(err)
		}
	}
	return s, pendings
}

// TestSnapshotV4ByteForByte: the current envelope — schemas, live
// normalization statistics, outcome aggregates, shadows, pending
// tickets — survives a load/save cycle byte-for-byte, and the restored
// service still serves.
func TestSnapshotV4ByteForByte(t *testing.T) {
	clock := &fakeClock{t: time.Unix(9500, 0)}
	s, pendings := buildMixedService(t, clock)

	var first bytes.Buffer
	if err := s.Save(&first); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(first.Bytes(), []byte(`"version": 4`)) {
		t.Fatalf("save is not version 4:\n%.120s", first.String())
	}
	if !bytes.Contains(first.Bytes(), []byte(`"schema"`)) {
		t.Fatal("v4 envelope is missing the schema field")
	}
	back, err := Load(bytes.NewReader(first.Bytes()), ServiceOptions{Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := back.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("v4 snapshot not byte-for-byte stable across load/save")
	}
	// Restored pending tickets (on both the schema and the raw stream)
	// still redeem.
	for _, tk := range pendings {
		if err := back.Observe(tk.ID, 77); err != nil {
			t.Fatalf("pending ticket %s lost: %v", tk.ID, err)
		}
	}
	// And context traffic keeps flowing against the restored schema.
	if _, err := back.RecommendCtx("typed", schema.Num(map[string]float64{"num_tasks": 50})); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotReadsV2: a version-2 envelope (PR 2 format: policy-typed
// streams, no schema field) loads into the current service and upgrades
// to a byte-identical v3 on re-save — schemaless v3 stream bodies are
// exactly their v2 form, so only the version number moves.
func TestSnapshotReadsV2(t *testing.T) {
	clock := &fakeClock{t: time.Unix(9600, 0)}
	s := NewService(ServiceOptions{Now: clock.now, TicketTTL: time.Hour})
	if err := s.CreateStream("alg1", StreamConfig{
		Hardware: testHW(), Dim: 1, Options: core.Options{Seed: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateStream("ucb", StreamConfig{
		Hardware: testHW(), Dim: 1, Policy: PolicySpec{Type: PolicyLinUCB, Beta: 1.5},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachShadow("alg1", "ts-shadow", PolicySpec{Type: PolicyLinTS, Seed: 6}); err != nil {
		t.Fatal(err)
	}
	var pending Ticket
	for i := 0; i < 30; i++ {
		for _, name := range []string{"alg1", "ucb"} {
			tk, err := s.Recommend(name, []float64{float64(i%12 + 1)})
			if err != nil {
				t.Fatal(err)
			}
			if name == "alg1" && i == 29 {
				pending = tk
				continue
			}
			if err := s.Observe(tk.ID, float64(15+i%9*6)); err != nil {
				t.Fatal(err)
			}
		}
	}
	var current bytes.Buffer
	if err := s.Save(&current); err != nil {
		t.Fatal(err)
	}
	// What the PR 2 writer would have produced: the same schemaless
	// stream bodies under "version": 2, without the v4 reward fields.
	v2 := stripRewardFields(reversion(t, current.Bytes(), 4, 2))
	back, err := Load(bytes.NewReader(v2), ServiceOptions{Now: clock.now})
	if err != nil {
		t.Fatalf("loading v2 envelope: %v", err)
	}
	info, err := back.StreamInfo("alg1")
	if err != nil {
		t.Fatal(err)
	}
	if info.Round != 29 || info.Pending != 1 || len(info.Shadows) != 1 {
		t.Fatalf("v2 restore info = %+v", info)
	}
	if info.Reward.Type != RewardRuntime {
		t.Fatalf("v2 restore reward = %+v, want runtime default", info.Reward)
	}
	if p, _ := back.Policy("ucb"); p != PolicyLinUCB {
		t.Fatalf("v2 restore policy = %q", p)
	}
	// The v2 pending ticket still redeems, and re-saving upgrades the
	// envelope to a v4 that differs from the v2 file only in its
	// version number (the reward aggregates restart at zero, which the
	// writer omits).
	var resaved bytes.Buffer
	if err := back.Save(&resaved); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resaved.Bytes(), reversion(t, v2, 2, 4)) {
		t.Fatal("v2 → v4 upgrade is not byte-identical modulo the version number")
	}
	if err := back.Observe(pending.ID, 44); err != nil {
		t.Fatalf("v2 pending ticket: %v", err)
	}
}

// reversion rewrites the envelope's version marker.
func reversion(t *testing.T, b []byte, from, to int) []byte {
	t.Helper()
	fromB := []byte(fmt.Sprintf(`"version": %d`, from))
	toB := []byte(fmt.Sprintf(`"version": %d`, to))
	out := bytes.Replace(b, fromB, toB, 1)
	if bytes.Equal(out, b) {
		t.Fatalf("version marker %s not found in envelope", fromB)
	}
	return out
}

// stripRewardFields removes the version-4 reward lines ("reward",
// "reward_total", "runtime_total", "matched_reward_total", "failures")
// from an indented envelope, producing the bytes the pre-reward writers
// emitted. Each field lives on its own line and is never the last
// member of its object, so whole-line removal keeps the JSON valid.
func stripRewardFields(b []byte) []byte {
	var out [][]byte
	for _, line := range bytes.Split(b, []byte("\n")) {
		trimmed := bytes.TrimSpace(line)
		if bytes.HasPrefix(trimmed, []byte(`"reward":`)) ||
			bytes.HasPrefix(trimmed, []byte(`"reward_total":`)) ||
			bytes.HasPrefix(trimmed, []byte(`"runtime_total":`)) ||
			bytes.HasPrefix(trimmed, []byte(`"matched_reward_total":`)) ||
			bytes.HasPrefix(trimmed, []byte(`"failures":`)) {
			continue
		}
		out = append(out, line)
	}
	return bytes.Join(out, []byte("\n"))
}

// TestSnapshotReadsV3: a version-3 envelope (PR 3 format: schemas, no
// reward fields) loads into the current service — default runtime
// reward, zero aggregates — and upgrades on re-save to a v4 that
// differs from the v3 file only in its version number: the promised
// byte-stable upgrade for default-reward streams.
func TestSnapshotReadsV3(t *testing.T) {
	clock := &fakeClock{t: time.Unix(9650, 0)}
	s, pendings := buildMixedService(t, clock)
	var current bytes.Buffer
	if err := s.Save(&current); err != nil {
		t.Fatal(err)
	}
	// What the PR 3 writer would have produced for the same service.
	v3 := stripRewardFields(reversion(t, current.Bytes(), 4, 3))
	back, err := Load(bytes.NewReader(v3), ServiceOptions{Now: clock.now})
	if err != nil {
		t.Fatalf("loading v3 envelope: %v", err)
	}
	info, err := back.StreamInfo("typed")
	if err != nil {
		t.Fatal(err)
	}
	if info.Reward.Type != RewardRuntime || info.RewardTotal != 0 {
		t.Fatalf("v3 restore reward state = %+v", info)
	}
	if info.Schema == nil || len(info.Shadows) != 1 {
		t.Fatalf("v3 restore lost schema/shadows: %+v", info)
	}
	var resaved bytes.Buffer
	if err := back.Save(&resaved); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resaved.Bytes(), reversion(t, v3, 3, 4)) {
		t.Fatal("v3 → v4 upgrade is not byte-stable for default-reward streams")
	}
	// The restored service keeps serving: pending v3 tickets redeem and
	// the reward aggregates resume from zero.
	for _, tk := range pendings {
		if err := back.Observe(tk.ID, 55); err != nil {
			t.Fatalf("v3 pending ticket %s: %v", tk.ID, err)
		}
	}
	info, _ = back.StreamInfo("typed")
	if info.RewardTotal == 0 || info.RewardTotal != info.RuntimeTotal {
		t.Fatalf("post-upgrade aggregates = %+v", info)
	}
}

// TestSnapshotRestoreRejectsCorruptSchema: a v3 stream whose schema
// disagrees with its engine dimension (or fails schema validation) is
// refused rather than silently mis-encoding every future context.
func TestSnapshotRestoreRejectsCorruptSchema(t *testing.T) {
	clock := &fakeClock{t: time.Unix(9700, 0)}
	s, _ := buildMixedService(t, clock)
	var snap bytes.Buffer
	if err := s.Save(&snap); err != nil {
		t.Fatal(err)
	}
	// Drop a category from the one-hot field: the schema still
	// validates, but its encoded dimension no longer matches the engine.
	corrupt := bytes.Replace(snap.Bytes(),
		[]byte(`"expanse",`), nil, 1)
	if bytes.Equal(corrupt, snap.Bytes()) {
		t.Fatal("category marker not found")
	}
	if _, err := Load(bytes.NewReader(corrupt), ServiceOptions{}); err == nil {
		t.Fatal("dimension-mismatched schema accepted")
	}
	// An outright invalid schema (duplicate field names) is refused too.
	corrupt = bytes.Replace(snap.Bytes(),
		[]byte(`"name": "input_mb"`), []byte(`"name": "num_tasks"`), 1)
	if bytes.Equal(corrupt, snap.Bytes()) {
		t.Fatal("field marker not found")
	}
	if _, err := Load(bytes.NewReader(corrupt), ServiceOptions{}); err == nil {
		t.Fatal("invalid schema accepted")
	}
}
