package serve

// Cross-version snapshot coverage: every format the loader claims to
// read (legacy, v1, v2, v3, v4, v5, v6, v7) loads into the current
// service, re-saves as v7, and — for the current format — round-trips
// byte-for-byte, with and without declared schemas, rewards, live
// normalization state, and drift-detector state. TestSnapshotReadsV1
// (v1 → v7) and TestLoadLegacySingleRecommenderState (legacy → v7)
// cover the older two writers; TestSnapshotReadsV3, TestSnapshotReadsV4,
// TestSnapshotReadsV5 and TestSnapshotReadsV6 pin the byte-stable
// upgrades for default-reward / default-adaptation / single-node /
// static-arm-set streams.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"banditware/internal/core"
	"banditware/internal/schema"
)

// buildMixedService assembles the snapshot torture case: an Algorithm 1
// stream with a declared schema (live min-max state), a LinUCB stream
// without one, a shadow, and pending tickets on both paths.
func buildMixedService(t *testing.T, clock *fakeClock) (*Service, []Ticket) {
	t.Helper()
	s := NewService(ServiceOptions{Now: clock.now, TicketTTL: time.Hour})
	if err := s.CreateStream("typed", StreamConfig{
		Hardware: testHW(), Schema: testSchemaFields(), Options: core.Options{Seed: 4},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateStream("plain", StreamConfig{
		Hardware: testHW(), Dim: 1, Policy: PolicySpec{Type: PolicyLinUCB, Beta: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachShadow("typed", "greedy-shadow", PolicySpec{Type: PolicyGreedy}); err != nil {
		t.Fatal(err)
	}
	var pendings []Ticket
	for i := 0; i < 40; i++ {
		ctx := schema.Context{
			Numeric:     map[string]float64{"num_tasks": float64(1 + i*53%300), "input_mb": float64(5 + i*29%800)},
			Categorical: map[string]string{"site": []string{"expanse", "nautilus", "local"}[i%3]},
		}
		tk, err := s.RecommendCtx("typed", ctx)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := s.Recommend("plain", []float64{float64(i%9 + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if i%8 == 7 {
			pendings = append(pendings, tk, raw)
			continue
		}
		if err := s.Observe(tk.ID, float64(10+i%13*7)); err != nil {
			t.Fatal(err)
		}
		if err := s.Observe(raw.ID, float64(30+i%5*11)); err != nil {
			t.Fatal(err)
		}
	}
	return s, pendings
}

// TestSnapshotV7ByteForByte: the current envelope — schemas, live
// normalization statistics, outcome aggregates, drift-detector state,
// shadows, pending tickets — survives a load/save cycle byte-for-byte,
// and the restored service still serves.
func TestSnapshotV7ByteForByte(t *testing.T) {
	clock := &fakeClock{t: time.Unix(9500, 0)}
	s, pendings := buildMixedService(t, clock)

	var first bytes.Buffer
	if err := s.Save(&first); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(first.Bytes(), []byte(`"version": 7`)) {
		t.Fatalf("save is not version 7:\n%.120s", first.String())
	}
	if !bytes.Contains(first.Bytes(), []byte(`"schema"`)) {
		t.Fatal("v7 envelope is missing the schema field")
	}
	if !bytes.Contains(first.Bytes(), []byte(`"drift"`)) {
		t.Fatal("v7 envelope is missing the drift block (detectors saw traffic)")
	}
	if bytes.Contains(first.Bytes(), []byte(`"dist"`)) {
		t.Fatal("single-node envelope grew a dist block (no deltas were merged)")
	}
	back, err := Load(bytes.NewReader(first.Bytes()), ServiceOptions{Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := back.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("v7 snapshot not byte-for-byte stable across load/save")
	}
	// Restored pending tickets (on both the schema and the raw stream)
	// still redeem.
	for _, tk := range pendings {
		if err := back.Observe(tk.ID, 77); err != nil {
			t.Fatalf("pending ticket %s lost: %v", tk.ID, err)
		}
	}
	// And context traffic keeps flowing against the restored schema.
	if _, err := back.RecommendCtx("typed", schema.Num(map[string]float64{"num_tasks": 50})); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotReadsV2: a version-2 envelope (PR 2 format: policy-typed
// streams, no schema field) loads into the current service and upgrades
// to a byte-identical v3 on re-save — schemaless v3 stream bodies are
// exactly their v2 form, so only the version number moves.
func TestSnapshotReadsV2(t *testing.T) {
	clock := &fakeClock{t: time.Unix(9600, 0)}
	s := NewService(ServiceOptions{Now: clock.now, TicketTTL: time.Hour})
	if err := s.CreateStream("alg1", StreamConfig{
		Hardware: testHW(), Dim: 1, Options: core.Options{Seed: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateStream("ucb", StreamConfig{
		Hardware: testHW(), Dim: 1, Policy: PolicySpec{Type: PolicyLinUCB, Beta: 1.5},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachShadow("alg1", "ts-shadow", PolicySpec{Type: PolicyLinTS, Seed: 6}); err != nil {
		t.Fatal(err)
	}
	var pending Ticket
	for i := 0; i < 30; i++ {
		for _, name := range []string{"alg1", "ucb"} {
			tk, err := s.Recommend(name, []float64{float64(i%12 + 1)})
			if err != nil {
				t.Fatal(err)
			}
			if name == "alg1" && i == 29 {
				pending = tk
				continue
			}
			if err := s.Observe(tk.ID, float64(15+i%9*6)); err != nil {
				t.Fatal(err)
			}
		}
	}
	var current bytes.Buffer
	if err := s.Save(&current); err != nil {
		t.Fatal(err)
	}
	// What the PR 2 writer would have produced: the same schemaless
	// stream bodies under "version": 2, without the v4 reward fields or
	// the v5 drift blocks.
	v2 := stripRewardFields(stripDriftBlocks(t, reversion(t, current.Bytes(), 7, 2)))
	back, err := Load(bytes.NewReader(v2), ServiceOptions{Now: clock.now})
	if err != nil {
		t.Fatalf("loading v2 envelope: %v", err)
	}
	info, err := back.StreamInfo("alg1")
	if err != nil {
		t.Fatal(err)
	}
	if info.Round != 29 || info.Pending != 1 || len(info.Shadows) != 1 {
		t.Fatalf("v2 restore info = %+v", info)
	}
	if info.Reward.Type != RewardRuntime {
		t.Fatalf("v2 restore reward = %+v, want runtime default", info.Reward)
	}
	if p, _ := back.Policy("ucb"); p != PolicyLinUCB {
		t.Fatalf("v2 restore policy = %q", p)
	}
	// The v2 pending ticket still redeems, and re-saving upgrades the
	// envelope to a v7 that differs from the v2 file only in its
	// version number (the reward aggregates and drift detectors restart
	// pristine, which the writer omits).
	var resaved bytes.Buffer
	if err := back.Save(&resaved); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resaved.Bytes(), reversion(t, v2, 2, 7)) {
		t.Fatal("v2 → v7 upgrade is not byte-identical modulo the version number")
	}
	if err := back.Observe(pending.ID, 44); err != nil {
		t.Fatalf("v2 pending ticket: %v", err)
	}
}

// reversion rewrites the envelope's version marker.
func reversion(t *testing.T, b []byte, from, to int) []byte {
	t.Helper()
	fromB := []byte(fmt.Sprintf(`"version": %d`, from))
	toB := []byte(fmt.Sprintf(`"version": %d`, to))
	out := bytes.Replace(b, fromB, toB, 1)
	if bytes.Equal(out, b) {
		t.Fatalf("version marker %s not found in envelope", fromB)
	}
	return out
}

// stripRewardFields removes the version-4 reward lines ("reward",
// "reward_total", "runtime_total", "matched_reward_total", "failures")
// from an indented envelope, producing the bytes the pre-reward writers
// emitted. Each field lives on its own line and is never the last
// member of its object, so whole-line removal keeps the JSON valid.
func stripRewardFields(b []byte) []byte {
	var out [][]byte
	for _, line := range bytes.Split(b, []byte("\n")) {
		trimmed := bytes.TrimSpace(line)
		if bytes.HasPrefix(trimmed, []byte(`"reward":`)) ||
			bytes.HasPrefix(trimmed, []byte(`"reward_total":`)) ||
			bytes.HasPrefix(trimmed, []byte(`"runtime_total":`)) ||
			bytes.HasPrefix(trimmed, []byte(`"matched_reward_total":`)) ||
			bytes.HasPrefix(trimmed, []byte(`"failures":`)) {
			continue
		}
		out = append(out, line)
	}
	return bytes.Join(out, []byte("\n"))
}

// TestSnapshotReadsV3: a version-3 envelope (PR 3 format: schemas, no
// reward fields) loads into the current service — default runtime
// reward, zero aggregates, pristine detectors — and upgrades on
// re-save to a v7 that differs from the v3 file only in its version
// number: the promised byte-stable upgrade for default-reward streams.
func TestSnapshotReadsV3(t *testing.T) {
	clock := &fakeClock{t: time.Unix(9650, 0)}
	s, pendings := buildMixedService(t, clock)
	var current bytes.Buffer
	if err := s.Save(&current); err != nil {
		t.Fatal(err)
	}
	// What the PR 3 writer would have produced for the same service.
	v3 := stripRewardFields(stripDriftBlocks(t, reversion(t, current.Bytes(), 7, 3)))
	back, err := Load(bytes.NewReader(v3), ServiceOptions{Now: clock.now})
	if err != nil {
		t.Fatalf("loading v3 envelope: %v", err)
	}
	info, err := back.StreamInfo("typed")
	if err != nil {
		t.Fatal(err)
	}
	if info.Reward.Type != RewardRuntime || info.RewardTotal != 0 {
		t.Fatalf("v3 restore reward state = %+v", info)
	}
	if info.Schema == nil || len(info.Shadows) != 1 {
		t.Fatalf("v3 restore lost schema/shadows: %+v", info)
	}
	var resaved bytes.Buffer
	if err := back.Save(&resaved); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resaved.Bytes(), reversion(t, v3, 3, 7)) {
		t.Fatal("v3 → v7 upgrade is not byte-stable for default-reward streams")
	}
	// The restored service keeps serving: pending v3 tickets redeem and
	// the reward aggregates resume from zero.
	for _, tk := range pendings {
		if err := back.Observe(tk.ID, 55); err != nil {
			t.Fatalf("v3 pending ticket %s: %v", tk.ID, err)
		}
	}
	info, _ = back.StreamInfo("typed")
	if info.RewardTotal == 0 || info.RewardTotal != info.RuntimeTotal {
		t.Fatalf("post-upgrade aggregates = %+v", info)
	}
}

// TestSnapshotRestoreRejectsCorruptSchema: a v3 stream whose schema
// disagrees with its engine dimension (or fails schema validation) is
// refused rather than silently mis-encoding every future context.
func TestSnapshotRestoreRejectsCorruptSchema(t *testing.T) {
	clock := &fakeClock{t: time.Unix(9700, 0)}
	s, _ := buildMixedService(t, clock)
	var snap bytes.Buffer
	if err := s.Save(&snap); err != nil {
		t.Fatal(err)
	}
	// Drop a category from the one-hot field: the schema still
	// validates, but its encoded dimension no longer matches the engine.
	corrupt := bytes.Replace(snap.Bytes(),
		[]byte(`"expanse",`), nil, 1)
	if bytes.Equal(corrupt, snap.Bytes()) {
		t.Fatal("category marker not found")
	}
	if _, err := Load(bytes.NewReader(corrupt), ServiceOptions{}); err == nil {
		t.Fatal("dimension-mismatched schema accepted")
	}
	// An outright invalid schema (duplicate field names) is refused too.
	corrupt = bytes.Replace(snap.Bytes(),
		[]byte(`"name": "input_mb"`), []byte(`"name": "num_tasks"`), 1)
	if bytes.Equal(corrupt, snap.Bytes()) {
		t.Fatal("field marker not found")
	}
	if _, err := Load(bytes.NewReader(corrupt), ServiceOptions{}); err == nil {
		t.Fatal("invalid schema accepted")
	}
}

// stripDriftBlocks removes the version-5 "drift" members — multi-line
// JSON objects holding the per-arm detector states — from an indented
// envelope, producing the bytes the v4 writer emitted. Each block opens
// with a `"drift": {` line and closes at the first `},`/`}` line of the
// same indentation.
func stripDriftBlocks(t *testing.T, b []byte) []byte {
	t.Helper()
	lines := bytes.Split(b, []byte("\n"))
	var out [][]byte
	stripped := 0
	for i := 0; i < len(lines); i++ {
		trimmed := bytes.TrimLeft(lines[i], " ")
		if !bytes.HasPrefix(trimmed, []byte(`"drift": {`)) {
			out = append(out, lines[i])
			continue
		}
		indent := len(lines[i]) - len(trimmed)
		j := i + 1
		for ; j < len(lines); j++ {
			tj := bytes.TrimLeft(lines[j], " ")
			if len(lines[j])-len(tj) == indent && (bytes.Equal(tj, []byte("},")) || bytes.Equal(tj, []byte("}"))) {
				break
			}
		}
		if j == len(lines) {
			t.Fatal("unterminated drift block")
		}
		i = j // skip the whole block including its closing line
		stripped++
	}
	if stripped == 0 {
		t.Fatal("no drift blocks found to strip")
	}
	return bytes.Join(out, []byte("\n"))
}

// TestSnapshotReadsV4: a version-4 envelope (PR 4 format: rewards, no
// adapt/drift fields) loads into the current service — default
// adaptation, pristine detectors — and upgrades on re-save to a v7
// that differs from the v4 file only in its version number: the
// promised byte-stable upgrade for default-adaptation streams.
func TestSnapshotReadsV4(t *testing.T) {
	clock := &fakeClock{t: time.Unix(9800, 0)}
	s, pendings := buildMixedService(t, clock)
	var current bytes.Buffer
	if err := s.Save(&current); err != nil {
		t.Fatal(err)
	}
	// What the PR 4 writer would have produced for the same service.
	v4 := stripDriftBlocks(t, reversion(t, current.Bytes(), 7, 4))
	back, err := Load(bytes.NewReader(v4), ServiceOptions{Now: clock.now})
	if err != nil {
		t.Fatalf("loading v4 envelope: %v", err)
	}
	info, err := back.StreamInfo("typed")
	if err != nil {
		t.Fatal(err)
	}
	if info.Adapt.Mode != AdaptNone || info.Adapt.OnDrift != DriftObserve {
		t.Fatalf("v4 restore adaptation = %+v, want none/observe default", info.Adapt)
	}
	if info.DriftEvents != 0 || info.DriftByArm != nil {
		t.Fatalf("v4 restore drift counters = %d/%v, want pristine", info.DriftEvents, info.DriftByArm)
	}
	di, err := back.Drift("typed")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range di.Arms {
		if a.Samples != 0 || a.Detections != 0 {
			t.Fatalf("v4 restore arm %d detector not pristine: %+v", a.Arm, a)
		}
	}
	var resaved bytes.Buffer
	if err := back.Save(&resaved); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resaved.Bytes(), reversion(t, v4, 4, 7)) {
		t.Fatal("v4 → v7 upgrade is not byte-stable for default-adaptation streams")
	}
	// The restored service keeps serving: pending v4 tickets redeem and
	// the detectors resume monitoring from zero.
	for _, tk := range pendings {
		if err := back.Observe(tk.ID, 55); err != nil {
			t.Fatalf("v4 pending ticket %s: %v", tk.ID, err)
		}
	}
	di, _ = back.Drift("typed")
	warmed := false
	for _, a := range di.Arms {
		warmed = warmed || a.Samples > 0
	}
	if !warmed {
		t.Fatal("post-upgrade detectors absorbed no residuals")
	}
}

// TestSnapshotReadsV5: the v5 writer differed from v6/v7 only in the
// version marker for streams that never merged fleet deltas (the dist
// block is omitted until ApplyDelta runs), so the v5 → v7 upgrade is
// byte-stable for every single-node snapshot.
func TestSnapshotReadsV5(t *testing.T) {
	clock := &fakeClock{t: time.Unix(9850, 0)}
	s, _ := buildMixedService(t, clock)
	var current bytes.Buffer
	if err := s.Save(&current); err != nil {
		t.Fatal(err)
	}
	// What the PR 5 writer would have produced for the same service.
	v5 := reversion(t, current.Bytes(), 7, 5)
	back, err := Load(bytes.NewReader(v5), ServiceOptions{Now: clock.now})
	if err != nil {
		t.Fatalf("loading v5 envelope: %v", err)
	}
	var resaved bytes.Buffer
	if err := back.Save(&resaved); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resaved.Bytes(), current.Bytes()) {
		t.Fatal("v5 → v7 upgrade is not byte-stable for single-node streams")
	}
}

// TestSnapshotReadsV6: the v6 writer differed from v7 only in the
// version marker for streams with a static arm set and no cache (the
// "arms" and "cache" blocks are omitted in the steady state), so the
// v6 → v7 upgrade is byte-stable for every pre-elasticity snapshot.
func TestSnapshotReadsV6(t *testing.T) {
	clock := &fakeClock{t: time.Unix(9875, 0)}
	s, _ := buildMixedService(t, clock)
	var current bytes.Buffer
	if err := s.Save(&current); err != nil {
		t.Fatal(err)
	}
	// "statuses" marks the v7 arms block ("arms" itself also appears
	// inside drift/dist blocks, so it can't discriminate).
	if bytes.Contains(current.Bytes(), []byte(`"statuses"`)) || bytes.Contains(current.Bytes(), []byte(`"cache"`)) {
		t.Fatal("static-arm-set snapshot grew an arms/cache block")
	}
	// What the PR 6 writer would have produced for the same service.
	v6 := reversion(t, current.Bytes(), 7, 6)
	back, err := Load(bytes.NewReader(v6), ServiceOptions{Now: clock.now})
	if err != nil {
		t.Fatalf("loading v6 envelope: %v", err)
	}
	var resaved bytes.Buffer
	if err := back.Save(&resaved); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resaved.Bytes(), current.Bytes()) {
		t.Fatal("v6 → v7 upgrade is not byte-stable for static streams")
	}
}

// TestSnapshotRestoreRejectsCorruptDriftState: a v5 drift block whose
// detector set disagrees with the stream's arms, or whose detector
// state fails validation, is refused rather than silently monitoring
// the wrong thing.
func TestSnapshotRestoreRejectsCorruptDriftState(t *testing.T) {
	clock := &fakeClock{t: time.Unix(9900, 0)}
	s, _ := buildMixedService(t, clock)
	var snap bytes.Buffer
	if err := s.Save(&snap); err != nil {
		t.Fatal(err)
	}
	// Detector-level corruption: a negative min_samples fails the drift
	// package's config validation.
	corrupt := bytes.Replace(snap.Bytes(), []byte(`"min_samples": 30`), []byte(`"min_samples": -30`), 1)
	if bytes.Equal(corrupt, snap.Bytes()) {
		t.Fatal("min_samples marker not found")
	}
	if _, err := Load(bytes.NewReader(corrupt), ServiceOptions{}); err == nil {
		t.Fatal("corrupt detector config accepted")
	}
	// Structural corruption: drop one arm's detector so the count no
	// longer matches the hardware set (via generic JSON surgery — the
	// loader must reject whatever the formatting).
	var env map[string]any
	if err := json.Unmarshal(snap.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	mangled := false
	for _, raw := range env["streams"].([]any) {
		stream := raw.(map[string]any)
		if d, ok := stream["drift"].(map[string]any); ok {
			arms := d["arms"].([]any)
			d["arms"] = arms[:len(arms)-1]
			mangled = true
			break
		}
	}
	if !mangled {
		t.Fatal("no drift block found to mangle")
	}
	blob, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(blob), ServiceOptions{}); err == nil {
		t.Fatal("detector/arm count mismatch accepted")
	}
}

// TestSnapshotAdaptiveStreamRoundTrip: adaptive streams — forgetting,
// window (with live buffers), and an on_drift reset stream with
// recorded detections — survive save/load byte-for-byte and keep their
// adaptation semantics.
func TestSnapshotAdaptiveStreamRoundTrip(t *testing.T) {
	clock := &fakeClock{t: time.Unix(9950, 0)}
	s := NewService(ServiceOptions{Now: clock.now})
	mk := func(name string, adapt AdaptSpec, policy PolicySpec) {
		t.Helper()
		if err := s.CreateStream(name, StreamConfig{
			Hardware: testHW(), Dim: 1, Policy: policy, Adapt: adapt,
			Options: core.Options{ZeroEpsilon: true, Seed: 9},
		}); err != nil {
			t.Fatal(err)
		}
	}
	mk("forget", AdaptSpec{Mode: AdaptForgetting, Factor: 0.9}, PolicySpec{})
	mk("window", AdaptSpec{Mode: AdaptWindow, Window: 8}, PolicySpec{})
	mk("window-ucb", AdaptSpec{Mode: AdaptWindow, Window: 8}, PolicySpec{Type: PolicyLinUCB})
	mk("reset", AdaptSpec{OnDrift: DriftReset, DriftThreshold: 10, DriftDelta: 0.1,
		DriftMinSamples: 3, DriftWarmup: 3}, PolicySpec{})
	names := []string{"forget", "window", "window-ucb", "reset"}
	for i := 0; i < 30; i++ {
		x := []float64{float64(i%5 + 1)}
		for _, name := range names {
			if err := s.ObserveDirect(name, i%3, x, 10+2*x[0]); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Push the reset stream's arm 0 through a drift so detections and
	// resets are non-zero in the snapshot.
	for i := 0; i < 20; i++ {
		if err := s.ObserveDirect("reset", 0, []float64{3}, 500); err != nil {
			t.Fatal(err)
		}
	}
	di, err := s.Drift("reset")
	if err != nil {
		t.Fatal(err)
	}
	if di.Detections == 0 || di.Resets == 0 {
		t.Fatalf("reset stream recorded %d detections / %d resets, want both > 0", di.Detections, di.Resets)
	}

	var first bytes.Buffer
	if err := s.Save(&first); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(first.Bytes()), ServiceOptions{Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := back.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("adaptive snapshot not byte-for-byte stable across load/save")
	}
	for _, name := range names {
		adapt, err := back.StreamAdapt(name)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := s.StreamAdapt(name)
		if adapt != want {
			t.Fatalf("stream %q restored adapt %+v, want %+v", name, adapt, want)
		}
	}
	rdi, err := back.Drift("reset")
	if err != nil {
		t.Fatal(err)
	}
	if rdi.Detections != di.Detections || rdi.Resets != di.Resets {
		t.Fatalf("restored drift state %d/%d, want %d/%d", rdi.Detections, rdi.Resets, di.Detections, di.Resets)
	}
	// The restored window streams keep sliding identically to the
	// originals under further identical traffic.
	for i := 0; i < 20; i++ {
		x := []float64{float64(i%5 + 1)}
		for _, name := range []string{"window", "window-ucb"} {
			if err := s.ObserveDirect(name, 1, x, 100+5*x[0]); err != nil {
				t.Fatal(err)
			}
			if err := back.ObserveDirect(name, 1, x, 100+5*x[0]); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, name := range []string{"window", "window-ucb"} {
		a, err := s.PredictAll(name, []float64{3})
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.PredictAll(name, []float64{3})
		if err != nil {
			t.Fatal(err)
		}
		if a[1] != b[1] {
			t.Fatalf("stream %q diverged after restore: %v vs %v", name, a[1], b[1])
		}
	}
}
