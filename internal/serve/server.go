package serve

import (
	"net/http"
	"time"
)

// Server hardening defaults. A serving front-end sits behind load
// generators and untrusted clients, so every slow-client avenue is
// bounded: header read, whole-request read, response write, idle
// keep-alive, and header size. Request bodies are small JSON documents
// and responses are bounded stream summaries, so generous single-digit
// to double-digit second limits cut off wedged connections without
// ever clipping a legitimate exchange.
const (
	// DefaultReadHeaderTimeout bounds how long a client may dribble
	// request headers.
	DefaultReadHeaderTimeout = 10 * time.Second
	// DefaultReadTimeout bounds reading an entire request including the
	// body, so a slow-loris body can't hold a handler goroutine.
	DefaultReadTimeout = 30 * time.Second
	// DefaultWriteTimeout bounds writing the response.
	DefaultWriteTimeout = 30 * time.Second
	// DefaultIdleTimeout bounds how long a keep-alive connection may sit
	// idle between requests before the server reclaims it.
	DefaultIdleTimeout = 120 * time.Second
	// DefaultMaxHeaderBytes caps request header size (1 MiB, the Go
	// default made explicit so it is pinned by tests).
	DefaultMaxHeaderBytes = 1 << 20
)

// NewServer wraps a handler in an http.Server hardened with the
// default timeouts above. `banditware serve` and the bwload
// self-hosted HTTP target both serve exactly this configuration, so
// load tests measure the production server, not a bare default one.
func NewServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: DefaultReadHeaderTimeout,
		ReadTimeout:       DefaultReadTimeout,
		WriteTimeout:      DefaultWriteTimeout,
		IdleTimeout:       DefaultIdleTimeout,
		MaxHeaderBytes:    DefaultMaxHeaderBytes,
	}
}
