package serve

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"banditware/internal/core"
	"banditware/internal/hardware"
)

// churnRuntime is the noiseless per-arm runtime surface the churn tests
// share: a flat per-arm base plus a small feature slope, so the ranking
// is unambiguous at every context.
func churnRuntime(bases []float64, arm int, x float64) float64 {
	return bases[arm] + 0.1*x
}

// churnServe drives rounds of Recommend/Observe traffic against one
// stream and returns how often each arm was recommended.
func churnServe(t *testing.T, s *Service, name string, bases []float64, rounds int) []int {
	t.Helper()
	counts := make([]int, len(bases))
	for i := 0; i < rounds; i++ {
		x := float64(i%10 + 1)
		tk, err := s.Recommend(name, []float64{x})
		if err != nil {
			t.Fatal(err)
		}
		counts[tk.Arm]++
		if err := s.Observe(tk.ID, churnRuntime(bases, tk.Arm, x)); err != nil {
			t.Fatal(err)
		}
	}
	return counts
}

// TestArmChurnConvergesWithoutRestart is the arm-elasticity acceptance
// test: a live stream gains a strictly better hardware configuration
// mid-trace and converges onto it without being recreated; the favourite
// is then drained and retired and the stream re-converges onto the
// runner-up. Round and observation counters run continuously through
// both churn events, proving no state was dropped.
func TestArmChurnConvergesWithoutRestart(t *testing.T) {
	s := NewService(ServiceOptions{})
	if err := s.CreateStream("jobs", StreamConfig{
		Hardware: testHW(), Dim: 1,
		Options: core.Options{Seed: 17, MinEpsilon: 0.1},
	}); err != nil {
		t.Fatal(err)
	}
	bases := []float64{50, 60, 70}
	churnServe(t, s, "jobs", bases, 200)
	if best, err := s.Exploit("jobs", []float64{5}); err != nil || best != 0 {
		t.Fatalf("pre-churn favourite = %d (err %v), want arm 0", best, err)
	}
	preRound, err := s.Round("jobs")
	if err != nil {
		t.Fatal(err)
	}

	// A strictly better configuration joins mid-trace, warm-started from
	// the pooled statistics of the existing arms.
	idx, err := s.AddArm("jobs", ArmAdd{
		Hardware: hardware.Config{Name: "H3", CPUs: 8, MemoryGB: 64},
		Warm:     "pooled",
	})
	if err != nil {
		t.Fatal(err)
	}
	if idx != 3 {
		t.Fatalf("new arm index = %d, want 3", idx)
	}
	bases = append(bases, 20) // strictly dominates every incumbent

	churnServe(t, s, "jobs", bases, 600)
	if best, err := s.Exploit("jobs", []float64{5}); err != nil || best != idx {
		t.Fatalf("post-add favourite = %d (err %v), want new arm %d", best, err, idx)
	}
	// Pinned convergence margin: with ε floored at 0.05, at least 80% of
	// steady-state traffic lands on the dominant new arm.
	counts := churnServe(t, s, "jobs", bases, 100)
	if frac := float64(counts[idx]) / 100; frac < 0.8 {
		t.Fatalf("new arm served %.0f%% of steady-state traffic, want ≥ 80%%", frac*100)
	}

	// The stream was never recreated: rounds kept counting.
	midRound, err := s.Round("jobs")
	if err != nil {
		t.Fatal(err)
	}
	if midRound <= preRound {
		t.Fatalf("round went %d -> %d across the add — stream state was reset", preRound, midRound)
	}

	// Retire the favourite: drain first (live traffic reroutes, pending
	// tickets still resolve), then remove it entirely.
	if err := s.DrainArm("jobs", idx); err != nil {
		t.Fatal(err)
	}
	drainCounts := churnServe(t, s, "jobs", bases, 60)
	if drainCounts[idx] != 0 {
		t.Fatalf("draining arm %d still served %d requests", idx, drainCounts[idx])
	}
	if err := s.RetireArm("jobs", idx); err != nil {
		t.Fatal(err)
	}
	bases = bases[:3]

	churnServe(t, s, "jobs", bases, 200)
	if best, err := s.Exploit("jobs", []float64{5}); err != nil || best != 0 {
		t.Fatalf("post-retire favourite = %d (err %v), want runner-up arm 0", best, err)
	}
	info, err := s.StreamInfo("jobs")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Hardware) != 3 || info.ArmStates != nil {
		t.Fatalf("post-retire stream: %d arms, states %v — want 3 all-active arms",
			len(info.Hardware), info.ArmStates)
	}
	if info.Round <= midRound {
		t.Fatalf("round went %d -> %d across the retire — stream state was reset", midRound, info.Round)
	}
}

// TestArmLifecycleTransitions pins the transition rules: retiring an
// active arm is rejected, draining the last active arm is rejected, a
// trial arm never serves until promoted, and out-of-range indices map to
// ErrArmNotFound.
func TestArmLifecycleTransitions(t *testing.T) {
	s := NewService(ServiceOptions{})
	if err := s.CreateStream("jobs", StreamConfig{
		Hardware: testHW()[:2], Dim: 1,
		Options: core.Options{Seed: 5, ZeroEpsilon: true},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.RetireArm("jobs", 0); !errors.Is(err, ErrArmLifecycle) {
		t.Fatalf("retiring an active arm: %v, want ErrArmLifecycle", err)
	}
	if err := s.DrainArm("jobs", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.DrainArm("jobs", 1); !errors.Is(err, ErrArmLifecycle) {
		t.Fatalf("draining the last active arm: %v, want ErrArmLifecycle", err)
	}
	if err := s.DrainArm("jobs", 7); !errors.Is(err, ErrArmNotFound) {
		t.Fatalf("draining arm 7 of 2: %v, want ErrArmNotFound", err)
	}
	if err := s.PromoteArm("jobs", 0); err != nil {
		t.Fatal(err)
	}

	// Train arm ranking: trial arm would win on merit but must not serve.
	for i := 0; i < 30; i++ {
		x := []float64{float64(i%5 + 1)}
		for arm := 0; arm < 2; arm++ {
			if err := s.ObserveDirect("jobs", arm, x, 50+10*float64(arm)); err != nil {
				t.Fatal(err)
			}
		}
	}
	idx, err := s.AddArm("jobs", ArmAdd{
		Hardware: hardware.Config{Name: "HT", CPUs: 8, MemoryGB: 64},
		Trial:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	arms, err := s.Arms("jobs")
	if err != nil {
		t.Fatal(err)
	}
	if arms[idx].Status != "trial" {
		t.Fatalf("added arm status = %q, want trial", arms[idx].Status)
	}
	// The trial arm learns (it is strictly best) but is never chosen.
	for i := 0; i < 40; i++ {
		x := []float64{float64(i%5 + 1)}
		if err := s.ObserveDirect("jobs", idx, x, 10); err != nil {
			t.Fatal(err)
		}
		tk, err := s.Recommend("jobs", x)
		if err != nil {
			t.Fatal(err)
		}
		if tk.Arm == idx {
			t.Fatalf("trial arm %d served live traffic", idx)
		}
		if err := s.Observe(tk.ID, 50+10*float64(tk.Arm)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PromoteArm("jobs", idx); err != nil {
		t.Fatal(err)
	}
	if best, err := s.Exploit("jobs", []float64{3}); err != nil || best != idx {
		t.Fatalf("promoted trial arm: exploit = %d (err %v), want %d", best, err, idx)
	}
	tk, err := s.Recommend("jobs", []float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if tk.Arm != idx {
		t.Fatalf("promoted arm not served: got arm %d, want %d", tk.Arm, idx)
	}
}

// TestDrainedArmReroutes: with exploration off, a drained favourite's
// traffic reroutes to the best remaining active arm, and promoting it
// back restores it.
func TestDrainedArmReroutes(t *testing.T) {
	s := NewService(ServiceOptions{})
	if err := s.CreateStream("jobs", StreamConfig{
		Hardware: testHW(), Dim: 1,
		Options: core.Options{Seed: 5, ZeroEpsilon: true},
	}); err != nil {
		t.Fatal(err)
	}
	// Arm 1 best, arm 2 runner-up, arm 0 worst.
	for i := 0; i < 30; i++ {
		x := []float64{float64(i%5 + 1)}
		for arm, rt := range []float64{70, 30, 40} {
			if err := s.ObserveDirect("jobs", arm, x, rt); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.DrainArm("jobs", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		tk, err := s.Recommend("jobs", []float64{float64(i%5 + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if tk.Arm != 2 {
			t.Fatalf("drained favourite: recommendation went to arm %d, want runner-up 2", tk.Arm)
		}
	}
	if err := s.PromoteArm("jobs", 1); err != nil {
		t.Fatal(err)
	}
	tk, err := s.Recommend("jobs", []float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if tk.Arm != 1 {
		t.Fatalf("promoted favourite: recommendation went to arm %d, want 1", tk.Arm)
	}
}

// TestAddArmWarmStart: a warm-started arm ranks sensibly from its first
// request (its prediction tracks the donor's), while a cold add starts
// from the ridge prior alone.
func TestAddArmWarmStart(t *testing.T) {
	mk := func(t *testing.T) *Service {
		s := NewService(ServiceOptions{})
		if err := s.CreateStream("jobs", StreamConfig{
			Hardware: testHW(), Dim: 1,
			Options: core.Options{Seed: 5, ZeroEpsilon: true},
		}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			x := []float64{float64(i%5 + 1)}
			for arm, rt := range []float64{50, 60, 70} {
				if err := s.ObserveDirect("jobs", arm, x, rt); err != nil {
					t.Fatal(err)
				}
			}
		}
		return s
	}

	t.Run("nearest", func(t *testing.T) {
		s := mk(t)
		// {4, 17} is nearest H2 (4 CPUs, 16 GB) in feature space.
		idx, err := s.AddArm("jobs", ArmAdd{
			Hardware: hardware.Config{Name: "H3", CPUs: 4, MemoryGB: 17},
			Warm:     "nearest", WarmWeight: 0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		preds, err := s.PredictAll("jobs", []float64{3})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(preds[idx]-preds[2]) > 5 {
			t.Fatalf("nearest-warmed arm predicts %.1f, donor H2 predicts %.1f — want within 5",
				preds[idx], preds[2])
		}
	})
	t.Run("pooled", func(t *testing.T) {
		s := mk(t)
		idx, err := s.AddArm("jobs", ArmAdd{
			Hardware: hardware.Config{Name: "H3", CPUs: 8, MemoryGB: 64},
			Warm:     "pooled",
		})
		if err != nil {
			t.Fatal(err)
		}
		preds, err := s.PredictAll("jobs", []float64{3})
		if err != nil {
			t.Fatal(err)
		}
		mean := (preds[0] + preds[1] + preds[2]) / 3
		if math.Abs(preds[idx]-mean) > 5 {
			t.Fatalf("pool-warmed arm predicts %.1f, donor mean %.1f — want within 5", preds[idx], mean)
		}
	})
	t.Run("cold", func(t *testing.T) {
		s := mk(t)
		idx, err := s.AddArm("jobs", ArmAdd{
			Hardware: hardware.Config{Name: "H3", CPUs: 8, MemoryGB: 64},
		})
		if err != nil {
			t.Fatal(err)
		}
		preds, err := s.PredictAll("jobs", []float64{3})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(preds[idx]) > 1 {
			t.Fatalf("cold arm predicts %.2f, want ≈ 0 (ridge prior only)", preds[idx])
		}
	})
	t.Run("bad requests", func(t *testing.T) {
		s := mk(t)
		if _, err := s.AddArm("jobs", ArmAdd{
			Hardware: hardware.Config{Name: "H3", CPUs: 8, MemoryGB: 64},
			Warm:     "sideways",
		}); !errors.Is(err, ErrBadArmRequest) {
			t.Fatalf("unknown warm mode: %v, want ErrBadArmRequest", err)
		}
		if _, err := s.AddArm("jobs", ArmAdd{
			Hardware:   hardware.Config{Name: "H3", CPUs: 8, MemoryGB: 64},
			Warm:       "pooled",
			WarmWeight: 1.5,
		}); !errors.Is(err, ErrBadArmRequest) {
			t.Fatalf("warm weight 1.5: %v, want ErrBadArmRequest", err)
		}
		if _, err := s.AddArm("jobs", ArmAdd{
			Hardware: hardware.Config{Name: "H0", CPUs: 8, MemoryGB: 64},
		}); !errors.Is(err, ErrBadArmRequest) {
			t.Fatalf("duplicate hardware name: %v, want ErrBadArmRequest", err)
		}
	})
}

// TestConcurrentChurnAndServe hammers the serving paths from several
// goroutines while the main goroutine churns the arm set through add,
// drain, promote, and retire cycles. Run under -race (CI does), this
// pins the locking discipline of the lifecycle paths; observation errors
// from tickets evicted by a concurrent retire are expected and ignored.
func TestConcurrentChurnAndServe(t *testing.T) {
	s := NewService(ServiceOptions{})
	if err := s.CreateStream("jobs", StreamConfig{
		Hardware: testHW(), Dim: 1,
		Options: core.Options{Seed: 3, MinEpsilon: 0.1},
		Cache:   &CacheSpec{Capacity: 64},
	}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				x := []float64{float64((i+g)%8 + 1)}
				tk, err := s.Recommend("jobs", x)
				if err != nil {
					continue
				}
				// The arm set can shift underneath us; the ledger re-indexes
				// pending tickets, so observing by ID stays safe — evicted
				// tickets just report an error.
				_ = s.Observe(tk.ID, 40+float64(tk.Arm))
				_, _ = s.Exploit("jobs", x)
			}
		}(g)
	}
	for cycle := 0; cycle < 20; cycle++ {
		idx, err := s.AddArm("jobs", ArmAdd{
			Hardware: hardware.Config{Name: fmt.Sprintf("C%d", cycle), CPUs: 5 + cycle%3, MemoryGB: 32},
			Warm:     "pooled",
			Trial:    cycle%2 == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		if cycle%2 == 0 {
			if err := s.PromoteArm("jobs", idx); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.DrainArm("jobs", idx); err != nil {
			t.Fatal(err)
		}
		if err := s.RetireArm("jobs", idx); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	arms, err := s.Arms("jobs")
	if err != nil {
		t.Fatal(err)
	}
	if len(arms) != 3 {
		t.Fatalf("after 20 add/retire cycles: %d arms, want the original 3", len(arms))
	}
}

// TestRecommendationCacheHitsAndBudget: repeated contexts are served
// from the cache, the deterministic exploration budget routes exactly
// its configured fraction of would-be hits back through the policy, and
// the counters surface in StreamInfo and the service Stats.
func TestRecommendationCacheHitsAndBudget(t *testing.T) {
	s := NewService(ServiceOptions{})
	if err := s.CreateStream("jobs", StreamConfig{
		Hardware: testHW(), Dim: 1,
		Options: core.Options{Seed: 5, ZeroEpsilon: true},
		Cache:   &CacheSpec{Capacity: 128, Budget: 0.25, Bits: 16},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		x := []float64{float64(i%5 + 1)}
		for arm, rt := range []float64{30, 50, 70} {
			if err := s.ObserveDirect("jobs", arm, x, rt); err != nil {
				t.Fatal(err)
			}
		}
	}
	x := []float64{3}
	want, err := s.Exploit("jobs", x)
	if err != nil {
		t.Fatal(err)
	}
	const lookups = 101 // 1 miss populates, 100 potential hits follow
	for i := 0; i < lookups; i++ {
		tk, err := s.Recommend("jobs", x)
		if err != nil {
			t.Fatal(err)
		}
		if tk.Arm != want {
			t.Fatalf("lookup %d: arm %d, want exploit arm %d", i, tk.Arm, want)
		}
		if err := s.Observe(tk.ID, 30); err != nil {
			t.Fatal(err)
		}
	}
	info, err := s.StreamInfo("jobs")
	if err != nil {
		t.Fatal(err)
	}
	ci := info.Cache
	if ci == nil {
		t.Fatal("StreamInfo carries no cache block")
	}
	if ci.Capacity != 128 || ci.Budget != 0.25 || ci.Bits != 16 {
		t.Fatalf("cache spec = %+v, want 128/0.25/16", ci)
	}
	if ci.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (only the populating lookup)", ci.Misses)
	}
	if ci.Hits+ci.Fallthroughs != lookups-1 {
		t.Fatalf("hits %d + fallthroughs %d != %d repeat lookups", ci.Hits, ci.Fallthroughs, lookups-1)
	}
	// The accumulator is deterministic: the fall-through rate over
	// would-be hits lands within ±10% of the configured budget.
	rate := float64(ci.Fallthroughs) / float64(ci.Hits+ci.Fallthroughs)
	if rate < 0.25*0.9 || rate > 0.25*1.1 {
		t.Fatalf("fall-through rate %.3f outside ±10%% of budget 0.25", rate)
	}
	if ci.Size != 1 {
		t.Fatalf("cache size = %d, want 1 distinct fingerprint", ci.Size)
	}
	stats := s.Stats()
	if stats.TotalCacheHits != ci.Hits || stats.TotalCacheMisses != ci.Misses ||
		stats.TotalCacheFallthroughs != ci.Fallthroughs {
		t.Fatalf("stats totals (%d, %d, %d) != stream counters (%d, %d, %d)",
			stats.TotalCacheHits, stats.TotalCacheMisses, stats.TotalCacheFallthroughs,
			ci.Hits, ci.Misses, ci.Fallthroughs)
	}
	// Every ticket — cached or not — is redeemable: nothing pending leaked.
	if info.Observed != uint64(lookups)+60 {
		t.Fatalf("observed = %d, want %d", info.Observed, lookups+60)
	}
}

// TestCacheInvalidatedOnArmChurn: every arm-set change drops the cached
// entries (their arm indices are positional) while the counters survive.
func TestCacheInvalidatedOnArmChurn(t *testing.T) {
	s := NewService(ServiceOptions{})
	if err := s.CreateStream("jobs", StreamConfig{
		Hardware: testHW(), Dim: 1,
		Options: core.Options{Seed: 5, ZeroEpsilon: true},
		Cache:   &CacheSpec{Capacity: 64, Budget: 0.1},
	}); err != nil {
		t.Fatal(err)
	}
	fill := func() uint64 {
		t.Helper()
		for i := 0; i < 8; i++ {
			x := []float64{float64(i + 1)}
			for r := 0; r < 3; r++ {
				tk, err := s.Recommend("jobs", x)
				if err != nil {
					t.Fatal(err)
				}
				if err := s.Observe(tk.ID, 40); err != nil {
					t.Fatal(err)
				}
			}
		}
		info, err := s.StreamInfo("jobs")
		if err != nil {
			t.Fatal(err)
		}
		if info.Cache.Size == 0 {
			t.Fatal("cache did not fill")
		}
		return info.Cache.Hits
	}
	size := func() int {
		t.Helper()
		info, err := s.StreamInfo("jobs")
		if err != nil {
			t.Fatal(err)
		}
		return info.Cache.Size
	}

	hits := fill()
	idx, err := s.AddArm("jobs", ArmAdd{Hardware: hardware.Config{Name: "H3", CPUs: 8, MemoryGB: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if n := size(); n != 0 {
		t.Fatalf("cache size %d after AddArm, want 0", n)
	}
	info, err := s.StreamInfo("jobs")
	if err != nil {
		t.Fatal(err)
	}
	if info.Cache.Hits != hits {
		t.Fatalf("hit counter %d after invalidation, want %d (counters survive)", info.Cache.Hits, hits)
	}

	fill()
	if err := s.DrainArm("jobs", idx); err != nil {
		t.Fatal(err)
	}
	if n := size(); n != 0 {
		t.Fatalf("cache size %d after DrainArm, want 0", n)
	}
	fill()
	if err := s.PromoteArm("jobs", idx); err != nil {
		t.Fatal(err)
	}
	if n := size(); n != 0 {
		t.Fatalf("cache size %d after PromoteArm, want 0", n)
	}
	fill()
	if err := s.DrainArm("jobs", idx); err != nil {
		t.Fatal(err)
	}
	if err := s.RetireArm("jobs", idx); err != nil {
		t.Fatal(err)
	}
	if n := size(); n != 0 {
		t.Fatalf("cache size %d after RetireArm, want 0", n)
	}
}

// TestCacheInvalidatedOnDriftReset: a drift reset rebuilds the affected
// arm's model, so cached decisions replaying the pre-reset model are
// dropped.
func TestCacheInvalidatedOnDriftReset(t *testing.T) {
	s := NewService(ServiceOptions{})
	adapt := adaptTestDetector()
	adapt.OnDrift = DriftReset
	if err := s.CreateStream("jobs", StreamConfig{
		Hardware: testHW()[:2], Dim: 1, Adapt: adapt,
		Options: core.Options{Seed: 5, ZeroEpsilon: true},
		Cache:   &CacheSpec{Capacity: 64, Budget: 0.1},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		x := []float64{float64(i%5 + 1)}
		if err := s.ObserveDirect("jobs", 0, x, 40); err != nil {
			t.Fatal(err)
		}
		if err := s.ObserveDirect("jobs", 1, x, 60); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		tk, err := s.Recommend("jobs", []float64{float64(i%3 + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Observe(tk.ID, 40); err != nil {
			t.Fatal(err)
		}
	}
	info, err := s.StreamInfo("jobs")
	if err != nil {
		t.Fatal(err)
	}
	if info.Cache.Size == 0 {
		t.Fatal("cache did not fill before the drift")
	}

	// Arm 1's runtime jumps far past the detector threshold.
	for i := 0; i < 60 && info.DriftEvents == 0; i++ {
		if err := s.ObserveDirect("jobs", 1, []float64{3}, 115); err != nil {
			t.Fatal(err)
		}
		if info, err = s.StreamInfo("jobs"); err != nil {
			t.Fatal(err)
		}
	}
	if info.DriftEvents == 0 {
		t.Fatal("drift was never detected")
	}
	if info.Cache.Size != 0 {
		t.Fatalf("cache size %d after drift reset, want 0", info.Cache.Size)
	}
}

// TestCacheCountersAbsentFromDelta: cache state is per-replica serving
// history, never additive fleet state — the delta wire format carries
// none of it, and applying a delta leaves the receiver's own cache
// untouched.
func TestCacheCountersAbsentFromDelta(t *testing.T) {
	cfg := StreamConfig{
		Hardware: testHW(), Dim: 1,
		Options: core.Options{Seed: 5, ZeroEpsilon: true},
		Cache:   &CacheSpec{Capacity: 64, Budget: 0.1},
	}
	src := NewService(ServiceOptions{})
	dst := NewService(ServiceOptions{})
	for _, s := range []*Service{src, dst} {
		if err := s.CreateStream("jobs", cfg); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		x := []float64{float64(i%5 + 1)}
		tk, err := src.Recommend("jobs", x)
		if err != nil {
			t.Fatal(err)
		}
		if err := src.Observe(tk.ID, 40+float64(tk.Arm)); err != nil {
			t.Fatal(err)
		}
	}
	info, err := src.StreamInfo("jobs")
	if err != nil {
		t.Fatal(err)
	}
	if info.Cache.Hits == 0 {
		t.Fatal("source served no cache hits — the test needs live counters to prove exclusion")
	}

	cap, err := src.CaptureDelta(src.NewSyncState())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	for _, marker := range []string{"cache", "fallthrough", "capacity"} {
		if bytes.Contains(buf.Bytes(), []byte(marker)) {
			t.Fatalf("delta envelope contains %q — cache state must stay replica-local", marker)
		}
	}
	if _, err := dst.ApplyDelta(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	di, err := dst.StreamInfo("jobs")
	if err != nil {
		t.Fatal(err)
	}
	if di.Cache.Hits != 0 || di.Cache.Misses != 0 || di.Cache.Fallthroughs != 0 || di.Cache.Size != 0 {
		t.Fatalf("receiver cache state %+v after merge, want untouched zeros", di.Cache)
	}
}

// BenchmarkRecommendCachedHit measures the cached fast path: fingerprint
// + map lookup + ticket issue, no policy call. The budget is set to its
// smallest expressible value so virtually every iteration is a hit.
// Recorded baseline (container hardware, 2026-08): ~0.3 µs/op vs 0.9 µs
// p50 for the full in-process recommend path (BENCH_serve_baseline.json).
func BenchmarkRecommendCachedHit(b *testing.B) {
	s := NewService(ServiceOptions{})
	if err := s.CreateStream("jobs", StreamConfig{
		Hardware: testHW(), Dim: 1,
		Options: core.Options{Seed: 5, ZeroEpsilon: true},
		Cache:   &CacheSpec{Capacity: 64, Budget: 1e-9},
	}); err != nil {
		b.Fatal(err)
	}
	x := []float64{3, 0}
	if _, err := s.Recommend("jobs", x[:1]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Recommend("jobs", x[:1]); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCachedHitLatencyPin pins the cache's reason to exist: a cached-hit
// recommend must beat the recorded full-path in-process p50 (0.9 µs,
// BENCH_serve_baseline.json). Skipped under the race detector and -short
// — instrumented builds are not representative of serving latency.
func TestCachedHitLatencyPin(t *testing.T) {
	if raceEnabled {
		t.Skip("latency pin is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("skipping latency pin in -short mode")
	}
	res := testing.Benchmark(BenchmarkRecommendCachedHit)
	const baselineP50 = 900 // ns; inproc p50 from BENCH_serve_baseline.json
	if ns := res.NsPerOp(); ns >= baselineP50 {
		t.Fatalf("cached-hit recommend = %d ns/op, want strictly below the %d ns full-path p50", ns, baselineP50)
	}
}
