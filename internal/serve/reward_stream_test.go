package serve

// Reward-pipeline coverage: structured outcomes end to end — the
// cost_weighted acceptance scenario (a cost-aware stream converges to
// cheaper hardware than a runtime stream on the same workload), outcome
// validation ahead of ticket redemption, per-stream reward aggregates,
// shadows replaying outcomes through their own rewards, and v4 snapshot
// round-trips of reward state.

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"banditware/internal/core"
	"banditware/internal/hardware"
)

// rewardTestHW returns a two-arm set where the fast machine is far more
// expensive: cheap Cost = 2 + 16/4 = 6, fast Cost = 16 + 64/4 = 32.
func rewardTestHW() hardware.Set {
	return hardware.Set{
		{Name: "cheap", CPUs: 2, MemoryGB: 16},
		{Name: "fast", CPUs: 16, MemoryGB: 64},
	}
}

// rewardTestRuntime is the ground truth both streams observe: the fast
// machine is slightly faster (8s vs 10s base), so a pure-runtime
// learner must prefer it while a cost-weighted learner must not
// (cheap scores 10 + 6 = 16, fast 8 + 32 = 40 at λ = 1).
func rewardTestRuntime(arm int, x float64) float64 {
	if arm == 1 {
		return 8 + 0.01*x
	}
	return 10 + 0.01*x
}

// TestCostWeightedConvergesToCheaperArm is the acceptance scenario: two
// streams with identical policies, seeds, and traffic — one learning
// from raw runtime, one from the cost_weighted reward — and the
// cost-aware stream demonstrably settles on the cheaper arm while the
// runtime stream settles on the faster, more expensive one.
func TestCostWeightedConvergesToCheaperArm(t *testing.T) {
	s := NewService(ServiceOptions{})
	for name, rw := range map[string]RewardSpec{
		"by-runtime": {},
		"by-cost":    {Type: RewardCostWeighted, Lambda: 1},
	} {
		if err := s.CreateStream(name, StreamConfig{
			Hardware: rewardTestHW(), Dim: 1,
			Options: core.Options{Seed: 11},
			Reward:  rw,
		}); err != nil {
			t.Fatal(err)
		}
	}

	hw := rewardTestHW()
	costTotal := map[string]float64{}
	const rounds = 300
	for i := 0; i < rounds; i++ {
		x := float64(i%17 + 1)
		for _, name := range []string{"by-runtime", "by-cost"} {
			tk, err := s.Recommend(name, []float64{x})
			if err != nil {
				t.Fatal(err)
			}
			costTotal[name] += hw[tk.Arm].Cost()
			if err := s.ObserveOutcome(tk.ID, Outcome{Runtime: rewardTestRuntime(tk.Arm, x)}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Exploitation choices after learning: the runtime stream wants the
	// fast arm, the cost-weighted stream the cheap one.
	rtArm, err := s.Exploit("by-runtime", []float64{9})
	if err != nil {
		t.Fatal(err)
	}
	costArm, err := s.Exploit("by-cost", []float64{9})
	if err != nil {
		t.Fatal(err)
	}
	if rtArm != 1 {
		t.Fatalf("runtime stream exploits arm %d (%s), want 1 (fast)", rtArm, hw[rtArm].Name)
	}
	if costArm != 0 {
		t.Fatalf("cost_weighted stream exploits arm %d (%s), want 0 (cheap)", costArm, hw[costArm].Name)
	}
	// And the whole trajectory spent less hardware: same seeds, same
	// exploration schedule, so the difference is purely the reward.
	if costTotal["by-cost"] >= costTotal["by-runtime"] {
		t.Fatalf("cost stream spent %.0f cost units vs runtime stream's %.0f — not cheaper",
			costTotal["by-cost"], costTotal["by-runtime"])
	}

	// Aggregates: the cost stream's reward total carries the λ·Cost
	// surcharge, so it must exceed its runtime total; the runtime
	// stream's two totals are identical.
	costInfo, _ := s.StreamInfo("by-cost")
	rtInfo, _ := s.StreamInfo("by-runtime")
	if costInfo.RewardTotal <= costInfo.RuntimeTotal {
		t.Fatalf("cost stream totals: reward %.1f <= runtime %.1f", costInfo.RewardTotal, costInfo.RuntimeTotal)
	}
	if rtInfo.RewardTotal != rtInfo.RuntimeTotal {
		t.Fatalf("runtime stream totals diverged: reward %.1f, runtime %.1f", rtInfo.RewardTotal, rtInfo.RuntimeTotal)
	}
	if costInfo.Reward.Type != RewardCostWeighted || costInfo.Reward.Lambda != 1 {
		t.Fatalf("cost stream reward spec = %+v", costInfo.Reward)
	}
	stats := s.Stats()
	if stats.TotalReward != costInfo.RewardTotal+rtInfo.RewardTotal {
		t.Fatalf("stats.TotalReward = %.1f, want %.1f", stats.TotalReward, costInfo.RewardTotal+rtInfo.RewardTotal)
	}
	if stats.TotalRuntime != costInfo.RuntimeTotal+rtInfo.RuntimeTotal {
		t.Fatalf("stats.TotalRuntime = %.1f", stats.TotalRuntime)
	}
}

// TestBadOutcomeDoesNotBurnTicket: negative runtimes and malformed
// metrics are rejected with ErrBadOutcome *before* the ticket is
// redeemed — the same ticket then observes cleanly — and the direct
// path rejects identically without touching the model.
func TestBadOutcomeDoesNotBurnTicket(t *testing.T) {
	s := newTestService(t, ServiceOptions{}, "jobs")
	tk, err := s.Recommend("jobs", []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	bad := []Outcome{
		{Runtime: -5},
		{Runtime: 10, Metrics: map[string]float64{"memoryGB": 1}},
		{Runtime: 10, Metrics: map[string]float64{"memory_gb": -1}},
	}
	for _, o := range bad {
		if err := s.ObserveOutcome(tk.ID, o); !errors.Is(err, ErrBadOutcome) {
			t.Fatalf("ObserveOutcome(%+v) = %v, want ErrBadOutcome", o, err)
		}
	}
	// The scalar path hits the same validation.
	if err := s.Observe(tk.ID, -5); !errors.Is(err, ErrBadOutcome) {
		t.Fatalf("Observe(-5) = %v, want ErrBadOutcome", err)
	}
	info, _ := s.StreamInfo("jobs")
	if info.Observed != 0 || info.Pending != 1 || info.Round != 0 {
		t.Fatalf("rejected outcomes changed state: %+v", info)
	}
	// The ticket survived every rejection.
	if err := s.ObserveOutcome(tk.ID, Outcome{Runtime: 42}); err != nil {
		t.Fatalf("valid observe after rejections: %v", err)
	}

	// Direct observations validate the same way.
	if err := s.ObserveDirect("jobs", 0, []float64{5}, -1); !errors.Is(err, ErrBadOutcome) {
		t.Fatalf("ObserveDirect(-1) = %v, want ErrBadOutcome", err)
	}
	if n, _ := s.Round("jobs"); n != 1 {
		t.Fatalf("round = %d after rejected direct observe, want 1", n)
	}

	// Batch: a bad outcome — or an ambiguous runtime+outcome pair, the
	// same rule the single HTTP route applies — fails only its own
	// index.
	tks, err := s.RecommendBatch("jobs", [][]float64{{1}, {2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	applied, errs := s.ObserveBatchIndexed([]TicketObservation{
		{TicketID: tks[0].ID, Outcome: &Outcome{Runtime: -3}},
		{TicketID: tks[1].ID, Runtime: 7},
		{TicketID: tks[2].ID, Runtime: 7, Outcome: &Outcome{Runtime: 8}},
	})
	if applied != 1 || !errors.Is(errs[0], ErrBadOutcome) || errs[1] != nil || !errors.Is(errs[2], ErrBadOutcome) {
		t.Fatalf("batch: applied=%d errs=%v", applied, errs)
	}
	// Neither rejected index burned its ticket.
	for _, id := range []string{tks[0].ID, tks[2].ID} {
		if err := s.Observe(id, 3); err != nil {
			t.Fatalf("batch-rejected ticket %s burned: %v", id, err)
		}
	}
}

// TestObserveDirectRejectsBadArm: a caller-supplied arm outside the
// hardware set fails with core.ErrArm on every direct path (the reward
// lookup must not index it first).
func TestObserveDirectRejectsBadArm(t *testing.T) {
	s := newTestService(t, ServiceOptions{}, "jobs")
	for _, arm := range []int{-1, 3, 99} {
		if err := s.ObserveDirect("jobs", arm, []float64{1}, 5); !errors.Is(err, core.ErrArm) {
			t.Fatalf("ObserveDirect(arm=%d) = %v, want ErrArm", arm, err)
		}
		if err := s.ObserveDirectOutcome("jobs", arm, []float64{1}, Outcome{Runtime: 5}); !errors.Is(err, core.ErrArm) {
			t.Fatalf("ObserveDirectOutcome(arm=%d) = %v, want ErrArm", arm, err)
		}
	}
	if n, _ := s.Round("jobs"); n != 0 {
		t.Fatalf("round advanced on rejected arms: %d", n)
	}
}

// TestFailurePenaltySteersAwayFromFailingArm: an arm that fails fast
// must lose to a slower arm that succeeds, under the failure_penalty
// reward.
func TestFailurePenaltySteersAwayFromFailingArm(t *testing.T) {
	s := NewService(ServiceOptions{})
	if err := s.CreateStream("flaky", StreamConfig{
		Hardware: rewardTestHW(), Dim: 1,
		Options: core.Options{Seed: 3},
		Reward:  RewardSpec{Type: RewardFailurePenalty, Penalty: 200},
	}); err != nil {
		t.Fatal(err)
	}
	failed := false
	for i := 0; i < 200; i++ {
		x := float64(i%13 + 1)
		tk, err := s.Recommend("flaky", []float64{x})
		if err != nil {
			t.Fatal(err)
		}
		// Arm 1 (fast) runs in 2s but always fails; arm 0 (cheap) takes
		// 30s and succeeds.
		o := Outcome{Runtime: 30}
		if tk.Arm == 1 {
			o = Outcome{Runtime: 2, Success: &failed}
		}
		if err := s.ObserveOutcome(tk.ID, o); err != nil {
			t.Fatal(err)
		}
	}
	arm, err := s.Exploit("flaky", []float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if arm != 0 {
		t.Fatalf("failure_penalty stream exploits the always-failing arm %d", arm)
	}
	info, _ := s.StreamInfo("flaky")
	if info.Failures == 0 {
		t.Fatal("failures counter never advanced")
	}
	if info.RewardTotal <= info.RuntimeTotal {
		t.Fatalf("failure penalties missing from reward total: %+v", info)
	}
}

// TestShadowOwnRewardReplay: a shadow carrying its own RewardSpec
// scores the same outcomes differently from the stream, and its replay
// counters reflect its reward, not the stream's.
func TestShadowOwnRewardReplay(t *testing.T) {
	s := NewService(ServiceOptions{})
	if err := s.CreateStream("jobs", StreamConfig{
		Hardware: rewardTestHW(), Dim: 1, Options: core.Options{Seed: 5},
	}); err != nil {
		t.Fatal(err)
	}
	// One shadow inherits the stream's (runtime) reward, one carries
	// cost_weighted; both use greedy so the comparison is reward-only.
	if err := s.AttachShadow("jobs", "inherit", PolicySpec{Type: PolicyGreedy}); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachShadowReward("jobs", "costly", PolicySpec{Type: PolicyGreedy},
		RewardSpec{Type: RewardCostWeighted, Lambda: 2}); err != nil {
		t.Fatal(err)
	}
	hw := rewardTestHW()
	var runtimeSum, costScoreSum float64
	for i := 0; i < 60; i++ {
		x := float64(i%9 + 1)
		tk, err := s.Recommend("jobs", []float64{x})
		if err != nil {
			t.Fatal(err)
		}
		rt := rewardTestRuntime(tk.Arm, x)
		runtimeSum += rt
		costScoreSum += rt + 2*hw[tk.Arm].Cost()
		if err := s.Observe(tk.ID, rt); err != nil {
			t.Fatal(err)
		}
	}
	shadows, err := s.Shadows("jobs")
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ShadowInfo{}
	for _, sh := range shadows {
		byName[sh.Name] = sh
	}
	inh, costly := byName["inherit"], byName["costly"]
	if inh.Reward.Type != RewardRuntime {
		t.Fatalf("inherited shadow reward = %+v", inh.Reward)
	}
	if costly.Reward.Type != RewardCostWeighted || costly.Reward.Lambda != 2 {
		t.Fatalf("own-reward shadow reward = %+v", costly.Reward)
	}
	if !almostEq(inh.RewardTotal, runtimeSum) {
		t.Fatalf("inherited shadow reward total = %.3f, want %.3f", inh.RewardTotal, runtimeSum)
	}
	if !almostEq(costly.RewardTotal, costScoreSum) {
		t.Fatalf("cost shadow reward total = %.3f, want %.3f", costly.RewardTotal, costScoreSum)
	}
	if costly.RewardTotal <= inh.RewardTotal {
		t.Fatal("cost shadow should score the same traffic higher than the runtime shadow")
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// TestSnapshotV4RewardRoundTrip: reward specs (stream and own-reward
// shadow), aggregates, and failure counters survive a save/load cycle
// byte-for-byte and keep scoring identically afterwards.
func TestSnapshotV4RewardRoundTrip(t *testing.T) {
	clock := &fakeClock{t: time.Unix(9800, 0)}
	s := NewService(ServiceOptions{Now: clock.now})
	if err := s.CreateStream("slo", StreamConfig{
		Hardware: rewardTestHW(), Dim: 1,
		Options: core.Options{Seed: 8},
		Reward:  RewardSpec{Type: RewardDeadline, DeadlineSeconds: 9, Penalty: 4},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachShadowReward("slo", "cost-view", PolicySpec{Type: PolicyGreedy},
		RewardSpec{Type: RewardCostWeighted, Lambda: 0.5}); err != nil {
		t.Fatal(err)
	}
	f := false
	for i := 0; i < 40; i++ {
		x := float64(i%11 + 1)
		tk, err := s.Recommend("slo", []float64{x})
		if err != nil {
			t.Fatal(err)
		}
		o := Outcome{Runtime: rewardTestRuntime(tk.Arm, x)}
		if i%10 == 9 {
			o.Success = &f
		}
		if err := s.ObserveOutcome(tk.ID, o); err != nil {
			t.Fatal(err)
		}
	}
	var first bytes.Buffer
	if err := s.Save(&first); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(first.Bytes(), []byte(`"reward"`)) {
		t.Fatal("v4 envelope is missing the reward spec")
	}
	back, err := Load(bytes.NewReader(first.Bytes()), ServiceOptions{Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := back.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("v4 reward snapshot not byte-for-byte stable")
	}
	wantInfo, _ := s.StreamInfo("slo")
	gotInfo, _ := back.StreamInfo("slo")
	if wantInfo.Reward != gotInfo.Reward ||
		wantInfo.RewardTotal != gotInfo.RewardTotal ||
		wantInfo.RuntimeTotal != gotInfo.RuntimeTotal ||
		wantInfo.Failures != gotInfo.Failures {
		t.Fatalf("reward state drifted:\n  want %+v\n  got  %+v", wantInfo, gotInfo)
	}
	gotShadows, _ := back.Shadows("slo")
	if len(gotShadows) != 1 || gotShadows[0].Reward.Type != RewardCostWeighted {
		t.Fatalf("shadow reward lost across snapshot: %+v", gotShadows)
	}
	// The restored stream still scores deadline misses: a 20s runtime
	// against the 9s deadline adds 4·11 seconds of penalty.
	tk, err := back.Recommend("slo", []float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if err := back.ObserveOutcome(tk.ID, Outcome{Runtime: 20}); err != nil {
		t.Fatal(err)
	}
	after, _ := back.StreamInfo("slo")
	wantDelta := 20 + 4*(20-9.0)
	if !almostEq(after.RewardTotal-gotInfo.RewardTotal, wantDelta) {
		t.Fatalf("restored reward delta = %.3f, want %.3f", after.RewardTotal-gotInfo.RewardTotal, wantDelta)
	}
}

// TestCreateStreamRejectsBadReward: malformed reward specs fail stream
// creation (and shadow attachment) loudly.
func TestCreateStreamRejectsBadReward(t *testing.T) {
	s := NewService(ServiceOptions{})
	err := s.CreateStream("x", StreamConfig{
		Hardware: testHW(), Dim: 1,
		Reward: RewardSpec{Type: "fastest"},
	})
	if !errors.Is(err, ErrBadReward) {
		t.Fatalf("bad reward type: %v, want ErrBadReward", err)
	}
	err = s.CreateStream("x", StreamConfig{
		Hardware: testHW(), Dim: 1,
		Reward: RewardSpec{Type: RewardDeadline}, // missing deadline_seconds
	})
	if !errors.Is(err, ErrBadReward) {
		t.Fatalf("parameterless deadline: %v, want ErrBadReward", err)
	}
	if err := s.CreateStream("x", StreamConfig{Hardware: testHW(), Dim: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachShadowReward("x", "sh", PolicySpec{}, RewardSpec{Type: "??"}); !errors.Is(err, ErrBadReward) {
		t.Fatalf("bad shadow reward: %v, want ErrBadReward", err)
	}
}
