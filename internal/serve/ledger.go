package serve

import (
	"container/list"
	"time"
)

// pendingTicket is one issued-but-unobserved recommendation held in a
// stream's ledger: everything needed to complete the observation later
// without the client echoing its features back. shadowArms records, per
// attached shadow (by name), the arm that shadow chose for the same
// context, so the eventual observation can score the shadow; nil when
// the stream had no shadows at issue time.
type pendingTicket struct {
	id         string
	seq        uint64
	arm        int
	features   []float64
	issuedAt   time.Time
	shadowArms map[string]int
}

// ledger is the bounded pending-decision ledger of one stream. Issue and
// completion of a recommendation are decoupled in real deployments — a
// workflow's runtime arrives minutes or hours after the hardware choice —
// so every tracked Recommend deposits a ticket here and Observe redeems
// it. The ledger is bounded two ways:
//
//   - capacity: when a stream holds cap pending tickets, issuing another
//     evicts the oldest (clients that never report runtimes cannot grow
//     memory without bound);
//   - ttl: tickets older than ttl expire and can no longer be redeemed
//     (a runtime observed hours late would describe a model revision that
//     no longer exists).
//
// Expiry is lazy: expired tickets are dropped from the front of the FIFO
// on the next issue/take/len call that observes them. The ledger is not
// goroutine-safe; the owning stream's mutex guards it.
type ledger struct {
	cap     int           // max pending tickets; > 0 always
	ttl     time.Duration // 0 = tickets never expire
	byID    map[string]*list.Element
	fifo    *list.List // *pendingTicket values, oldest at front
	evicted uint64
	expired uint64
}

func newLedger(capacity int, ttl time.Duration) *ledger {
	if capacity <= 0 {
		capacity = defaultMaxPending
	}
	return &ledger{
		cap:  capacity,
		ttl:  ttl,
		byID: make(map[string]*list.Element),
		fifo: list.New(),
	}
}

func (l *ledger) len() int { return len(l.byID) }

func (l *ledger) remove(e *list.Element) *pendingTicket {
	p := e.Value.(*pendingTicket)
	l.fifo.Remove(e)
	delete(l.byID, p.id)
	return p
}

// sweep drops expired tickets. Tickets are issued in time order, so only
// the front of the FIFO can be stale; stop at the first fresh one.
func (l *ledger) sweep(now time.Time) {
	if l.ttl <= 0 {
		return
	}
	for e := l.fifo.Front(); e != nil; e = l.fifo.Front() {
		if now.Sub(e.Value.(*pendingTicket).issuedAt) <= l.ttl {
			return
		}
		l.remove(e)
		l.expired++
	}
}

// add deposits a freshly issued ticket, evicting the oldest pending
// tickets if the ledger is at capacity.
func (l *ledger) add(p *pendingTicket, now time.Time) {
	l.sweep(now)
	for len(l.byID) >= l.cap {
		l.remove(l.fifo.Front())
		l.evicted++
	}
	l.byID[p.id] = l.fifo.PushBack(p)
}

// take redeems a ticket: removes and returns it. A ticket can be taken
// exactly once; a second take (or a take after eviction) reports
// ErrTicketNotFound, and a take past the ttl reports ErrTicketExpired.
func (l *ledger) take(id string, now time.Time) (*pendingTicket, error) {
	// Look up before sweeping so redeeming an expired ticket reports
	// ErrTicketExpired rather than being swept into ErrTicketNotFound.
	e, ok := l.byID[id]
	if !ok {
		l.sweep(now)
		return nil, ErrTicketNotFound
	}
	p := e.Value.(*pendingTicket)
	l.remove(e)
	l.sweep(now)
	if l.ttl > 0 && now.Sub(p.issuedAt) > l.ttl {
		l.expired++
		return nil, ErrTicketExpired
	}
	return p, nil
}

// restore re-inserts a ticket during snapshot load, bypassing eviction
// and expiry (the snapshot already reflects both).
func (l *ledger) restore(p *pendingTicket) {
	l.byID[p.id] = l.fifo.PushBack(p)
}

// retireArm drops every pending ticket on the retired arm (its runtime
// can no longer train anything — the estimator is gone) and shifts the
// arm indices of every later-arm ticket and shadow selection down by
// one, keeping the ledger aligned with the spliced arm set.
func (l *ledger) retireArm(arm int) {
	for e := l.fifo.Front(); e != nil; {
		next := e.Next()
		p := e.Value.(*pendingTicket)
		if p.arm == arm {
			l.remove(e)
			l.evicted++
			e = next
			continue
		}
		if p.arm > arm {
			p.arm--
		}
		for name, a := range p.shadowArms {
			if a == arm {
				delete(p.shadowArms, name)
			} else if a > arm {
				p.shadowArms[name] = a - 1
			}
		}
		e = next
	}
}

// snapshotPending returns the pending tickets oldest-first.
func (l *ledger) snapshotPending() []*pendingTicket {
	out := make([]*pendingTicket, 0, l.fifo.Len())
	for e := l.fifo.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(*pendingTicket))
	}
	return out
}
