package serve

import (
	"time"
)

// pendingTicket is one issued-but-unobserved recommendation held in a
// stream's ledger: everything needed to complete the observation later
// without the client echoing its features back. shadowArms records, per
// attached shadow (by name), the arm that shadow chose for the same
// context, so the eventual observation can score the shadow; nil when
// the stream had no shadows at issue time.
//
// Tickets are intrusively linked into the ledger's FIFO (prev/next) and
// recycled through a freelist after redemption, so the steady-state
// issue/observe cycle allocates nothing. The ticket-ID string is not
// stored: the key is the sequence number, and the ID is re-rendered
// from (stream, seq) only where a string is needed (snapshots, error
// messages).
type pendingTicket struct {
	seq        uint64
	arm        int
	features   []float64
	issuedAt   time.Time
	shadowArms map[string]int

	prev, next *pendingTicket // FIFO links; next also chains the freelist
}

// ledger is the bounded pending-decision ledger of one stream. Issue and
// completion of a recommendation are decoupled in real deployments — a
// workflow's runtime arrives minutes or hours after the hardware choice —
// so every tracked Recommend deposits a ticket here and Observe redeems
// it. The ledger is bounded two ways:
//
//   - capacity: when a stream holds cap pending tickets, issuing another
//     evicts the oldest (clients that never report runtimes cannot grow
//     memory without bound);
//   - ttl: tickets older than ttl expire and can no longer be redeemed
//     (a runtime observed hours late would describe a model revision that
//     no longer exists).
//
// Expiry is lazy: expired tickets are dropped from the front of the FIFO
// on the next issue/take/len call that observes them. The ledger is not
// goroutine-safe; the owning stream's mutex guards it.
type ledger struct {
	cap     int           // max pending tickets; > 0 always
	ttl     time.Duration // 0 = tickets never expire
	bySeq   map[uint64]*pendingTicket
	head    *pendingTicket // oldest pending ticket
	tail    *pendingTicket // newest pending ticket
	free    *pendingTicket // freelist of recycled tickets, chained via next
	evicted uint64
	expired uint64
}

func newLedger(capacity int, ttl time.Duration) *ledger {
	if capacity <= 0 {
		capacity = defaultMaxPending
	}
	return &ledger{
		cap:   capacity,
		ttl:   ttl,
		bySeq: make(map[uint64]*pendingTicket),
	}
}

func (l *ledger) len() int { return len(l.bySeq) }

// newPending hands out a ticket struct to fill in, recycling one from
// the freelist when available. The features slice keeps its backing
// array (append into features[:0]); shadowArms is left as-is for the
// caller to overwrite.
func (l *ledger) newPending() *pendingTicket {
	if p := l.free; p != nil {
		l.free = p.next
		p.next = nil
		p.features = p.features[:0]
		return p
	}
	return &pendingTicket{}
}

// release returns a redeemed ticket to the freelist once the caller is
// done with its features. Never release a ticket that is still linked
// or whose features the engine could retain (no engine does: every
// window/batch path copies before buffering).
func (l *ledger) release(p *pendingTicket) {
	p.shadowArms = nil
	p.prev = nil
	p.next = l.free
	l.free = p
}

// unlink removes p from the FIFO and the index, leaving p itself intact.
func (l *ledger) unlink(p *pendingTicket) {
	if p.prev != nil {
		p.prev.next = p.next
	} else {
		l.head = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else {
		l.tail = p.prev
	}
	p.prev, p.next = nil, nil
	delete(l.bySeq, p.seq)
}

// pushBack appends p as the newest FIFO entry and indexes it.
func (l *ledger) pushBack(p *pendingTicket) {
	p.prev = l.tail
	p.next = nil
	if l.tail != nil {
		l.tail.next = p
	} else {
		l.head = p
	}
	l.tail = p
	l.bySeq[p.seq] = p
}

// sweep drops expired tickets. Tickets are issued in time order, so only
// the front of the FIFO can be stale; stop at the first fresh one.
func (l *ledger) sweep(now time.Time) {
	if l.ttl <= 0 {
		return
	}
	for p := l.head; p != nil; p = l.head {
		if now.Sub(p.issuedAt) <= l.ttl {
			return
		}
		l.unlink(p)
		l.release(p)
		l.expired++
	}
}

// add deposits a freshly issued ticket, evicting the oldest pending
// tickets if the ledger is at capacity.
func (l *ledger) add(p *pendingTicket, now time.Time) {
	l.sweep(now)
	for len(l.bySeq) >= l.cap {
		old := l.head
		l.unlink(old)
		l.release(old)
		l.evicted++
	}
	l.pushBack(p)
}

// take redeems a ticket: removes and returns it. A ticket can be taken
// exactly once; a second take (or a take after eviction) reports
// ErrTicketNotFound, and a take past the ttl reports ErrTicketExpired.
// The caller must release the returned ticket when done with it.
func (l *ledger) take(seq uint64, now time.Time) (*pendingTicket, error) {
	// Look up before sweeping so redeeming an expired ticket reports
	// ErrTicketExpired rather than being swept into ErrTicketNotFound.
	p, ok := l.bySeq[seq]
	if !ok {
		l.sweep(now)
		return nil, ErrTicketNotFound
	}
	l.unlink(p)
	l.sweep(now)
	if l.ttl > 0 && now.Sub(p.issuedAt) > l.ttl {
		l.release(p)
		l.expired++
		return nil, ErrTicketExpired
	}
	return p, nil
}

// restore re-inserts a ticket during snapshot load, bypassing eviction
// and expiry (the snapshot already reflects both).
func (l *ledger) restore(p *pendingTicket) {
	l.pushBack(p)
}

// retireArm drops every pending ticket on the retired arm (its runtime
// can no longer train anything — the estimator is gone) and shifts the
// arm indices of every later-arm ticket and shadow selection down by
// one, keeping the ledger aligned with the spliced arm set.
func (l *ledger) retireArm(arm int) {
	for p := l.head; p != nil; {
		next := p.next
		if p.arm == arm {
			l.unlink(p)
			l.release(p)
			l.evicted++
			p = next
			continue
		}
		if p.arm > arm {
			p.arm--
		}
		for name, a := range p.shadowArms {
			if a == arm {
				delete(p.shadowArms, name)
			} else if a > arm {
				p.shadowArms[name] = a - 1
			}
		}
		p = next
	}
}

// snapshotPending returns the pending tickets oldest-first. The
// returned tickets stay owned by the ledger (and may be recycled after
// redemption); callers must copy what they keep past the stream lock.
func (l *ledger) snapshotPending() []*pendingTicket {
	out := make([]*pendingTicket, 0, len(l.bySeq))
	for p := l.head; p != nil; p = p.next {
		out = append(out, p)
	}
	return out
}
