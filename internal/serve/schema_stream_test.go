package serve

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"banditware/internal/core"
	"banditware/internal/schema"
)

func fp(v float64) *float64 { return &v }

// testSchema declares the acceptance-scenario feature layout: a
// required bounded numeric, a normalized numeric, and a categorical
// that one-hot expands — encoded dim 1 + 1 + 3 = 5.
func testSchemaFields() *schema.Schema {
	return &schema.Schema{Fields: []schema.Field{
		{Name: "num_tasks", Required: true, Min: fp(0), Max: fp(10000)},
		{Name: "input_mb", Normalize: schema.NormMinMax, Default: fp(100)},
		{Name: "site", Kind: schema.KindCategorical, Categories: []string{"expanse", "nautilus", "local"}},
	}}
}

func newSchemaService(t *testing.T, policy PolicySpec) *Service {
	t.Helper()
	s := NewService(ServiceOptions{})
	err := s.CreateStream("typed", StreamConfig{
		Hardware: testHW(),
		Schema:   testSchemaFields(),
		Options:  core.Options{Seed: 3},
		Policy:   policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCreateStreamDerivesDimFromSchema(t *testing.T) {
	s := newSchemaService(t, PolicySpec{})
	info, err := s.StreamInfo("typed")
	if err != nil {
		t.Fatal(err)
	}
	if info.Dim != 5 {
		t.Fatalf("dim = %d, want 5 (1 numeric + 1 numeric + 3 one-hot)", info.Dim)
	}
	if info.Schema == nil || len(info.Schema.Fields) != 3 {
		t.Fatalf("StreamInfo.Schema = %+v", info.Schema)
	}
	// Conflicting explicit dim is rejected; matching one is accepted.
	err = s.CreateStream("clash", StreamConfig{Hardware: testHW(), Dim: 2, Schema: testSchemaFields()})
	if !errors.Is(err, schema.ErrInvalidSchema) {
		t.Fatalf("dim conflict: %v", err)
	}
	if err := s.CreateStream("match", StreamConfig{Hardware: testHW(), Dim: 5, Schema: testSchemaFields()}); err != nil {
		t.Fatal(err)
	}
	// An invalid schema is rejected at creation.
	err = s.CreateStream("bad", StreamConfig{
		Hardware: testHW(),
		Schema:   &schema.Schema{Fields: []schema.Field{{Name: "a"}, {Name: "a"}}},
	})
	if !errors.Is(err, schema.ErrInvalidSchema) {
		t.Fatalf("invalid schema: %v", err)
	}
}

func TestRecommendCtxServesAndObserves(t *testing.T) {
	s := newSchemaService(t, PolicySpec{})
	ctx := schema.Context{
		Numeric:     map[string]float64{"num_tasks": 200, "input_mb": 512},
		Categorical: map[string]string{"site": "nautilus"},
	}
	tk, err := s.RecommendCtx("typed", ctx)
	if err != nil {
		t.Fatal(err)
	}
	if tk.ID == "" || len(tk.Predicted) != 3 {
		t.Fatalf("ticket = %+v", tk)
	}
	if err := s.Observe(tk.ID, 120); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Round("typed"); n != 1 {
		t.Fatalf("round = %d", n)
	}
	// Direct context observe trains too.
	if err := s.ObserveDirectCtx("typed", 1, ctx, 80); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Round("typed"); n != 2 {
		t.Fatalf("round = %d", n)
	}
	// The schema accumulated normalization state from both encodes.
	sch, err := s.StreamSchema("typed")
	if err != nil {
		t.Fatal(err)
	}
	if sch.Fields[1].Stats == nil || sch.Fields[1].Stats.Count != 2 {
		t.Fatalf("input_mb stats = %+v", sch.Fields[1].Stats)
	}
	// StreamSchema returns a copy: mutating it must not touch the live one.
	sch.Fields[1].Stats.Count = 99
	again, _ := s.StreamSchema("typed")
	if again.Fields[1].Stats.Count != 2 {
		t.Fatal("StreamSchema aliases live state")
	}
}

func TestRecommendCtxRejectsMalformedContexts(t *testing.T) {
	s := newSchemaService(t, PolicySpec{})
	_, err := s.RecommendCtx("typed", schema.Context{
		Numeric:     map[string]float64{"num_tasks": -5, "bogus": 1},
		Categorical: map[string]string{"site": "mars"},
	})
	if !errors.Is(err, schema.ErrSchemaViolation) {
		t.Fatalf("err = %v, want ErrSchemaViolation", err)
	}
	var v *schema.ValidationError
	if !errors.As(err, &v) || len(v.Fields()) != 3 {
		t.Fatalf("validation error = %v", err)
	}
	// Nothing was issued and no normalization state advanced.
	info, _ := s.StreamInfo("typed")
	if info.Issued != 0 || info.Pending != 0 {
		t.Fatalf("rejected context issued a ticket: %+v", info)
	}
	sch, _ := s.StreamSchema("typed")
	if sch.Fields[1].Stats != nil {
		t.Fatalf("rejected context advanced stats: %+v", sch.Fields[1].Stats)
	}
}

func TestRecommendBatchCtxAtomic(t *testing.T) {
	s := newSchemaService(t, PolicySpec{})
	good := schema.Context{Numeric: map[string]float64{"num_tasks": 10}}
	bad := schema.Context{Numeric: map[string]float64{"num_tasks": -1}}
	_, err := s.RecommendBatchCtx("typed", []schema.Context{good, bad})
	if !errors.Is(err, schema.ErrSchemaViolation) {
		t.Fatalf("bad batch: %v", err)
	}
	// Atomic: the valid item issued nothing and advanced no stats.
	info, _ := s.StreamInfo("typed")
	if info.Issued != 0 {
		t.Fatalf("failed batch issued tickets: %+v", info)
	}
	sch, _ := s.StreamSchema("typed")
	if sch.Fields[1].Stats != nil {
		t.Fatal("failed batch advanced normalization stats")
	}
	tks, err := s.RecommendBatchCtx("typed", []schema.Context{good, good, good})
	if err != nil || len(tks) != 3 {
		t.Fatalf("batch: %v (%d tickets)", err, len(tks))
	}
}

// TestRawVectorsUnaffectedBySchemaLayer: a schemaless stream serves raw
// vectors through the identity schema with the exact decision sequence
// of a standalone bandit — the schema layer is invisible to pre-schema
// callers.
func TestRawVectorsUnaffectedBySchemaLayer(t *testing.T) {
	s := newTestService(t, ServiceOptions{}, "plain")
	ref, err := core.New(testHW(), 1, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		x := []float64{float64(i%10 + 1)}
		want, err := ref.Recommend(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Recommend("plain", x)
		if err != nil {
			t.Fatal(err)
		}
		if got.Arm != want.Arm || got.Explored != want.Explored {
			t.Fatalf("round %d: service arm %d/%v, bandit arm %d/%v",
				i, got.Arm, got.Explored, want.Arm, want.Explored)
		}
		rt := 5*x[0] + float64(want.Arm)
		if err := ref.Observe(want.Arm, x, rt); err != nil {
			t.Fatal(err)
		}
		if err := s.Observe(got.ID, rt); err != nil {
			t.Fatal(err)
		}
	}
	// Schemaless streams surface no schema...
	info, _ := s.StreamInfo("plain")
	if info.Schema != nil {
		t.Fatalf("schemaless stream reports a schema: %+v", info.Schema)
	}
	if sch, _ := s.StreamSchema("plain"); sch != nil {
		t.Fatalf("StreamSchema on schemaless stream: %+v", sch)
	}
	// ...but still serve named contexts through the identity layout.
	tk, err := s.RecommendCtx("plain", schema.Num(map[string]float64{"x0": 7}))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(tk.ID, 40); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RecommendCtx("plain", schema.Num(map[string]float64{"weight": 7})); !errors.Is(err, schema.ErrSchemaViolation) {
		t.Fatalf("identity schema accepted unknown field: %v", err)
	}
}

// TestSchemaStreamRawVectorsStillServe: schema streams also accept
// pre-encoded vectors of the encoded dimension (the raw API is not cut
// off by declaring a schema).
func TestSchemaStreamRawVectorsStillServe(t *testing.T) {
	s := newSchemaService(t, PolicySpec{})
	tk, err := s.Recommend("typed", []float64{10, 0.5, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(tk.ID, 60); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recommend("typed", []float64{10}); !errors.Is(err, core.ErrDim) {
		t.Fatalf("short raw vector: %v", err)
	}
}

// TestSchemaSnapshotRestoreIdenticalDecisions is the acceptance
// scenario's persistence leg: a schema stream (deterministic LinUCB
// policy, live min-max state) snapshotted mid-traffic restores to
// byte-identical state and produces the identical subsequent decision
// sequence for the identical subsequent contexts.
func TestSchemaSnapshotRestoreIdenticalDecisions(t *testing.T) {
	mkCtx := func(i int) schema.Context {
		return schema.Context{
			Numeric:     map[string]float64{"num_tasks": float64(50 + i*37%400), "input_mb": float64(10 + i*91%900)},
			Categorical: map[string]string{"site": []string{"expanse", "nautilus", "local"}[i%3]},
		}
	}
	s := newSchemaService(t, PolicySpec{Type: PolicyLinUCB, Beta: 1.5})
	for i := 0; i < 30; i++ {
		tk, err := s.RecommendCtx("typed", mkCtx(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Observe(tk.ID, float64(20+i%7*13)); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := s.Save(&snap); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(snap.Bytes()), ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The restored schema carries the live normalization statistics.
	origSch, _ := s.StreamSchema("typed")
	backSch, _ := back.StreamSchema("typed")
	if !reflect.DeepEqual(origSch, backSch) {
		t.Fatalf("schema diverged across snapshot:\n%+v\nvs\n%+v", origSch, backSch)
	}
	// Identical subsequent decisions on identical subsequent contexts.
	for i := 30; i < 60; i++ {
		want, err := s.RecommendCtx("typed", mkCtx(i))
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.RecommendCtx("typed", mkCtx(i))
		if err != nil {
			t.Fatal(err)
		}
		if got.Arm != want.Arm {
			t.Fatalf("round %d: restored arm %d, original arm %d", i, got.Arm, want.Arm)
		}
		rt := float64(30 + i%11*9)
		if err := s.Observe(want.ID, rt); err != nil {
			t.Fatal(err)
		}
		if err := back.Observe(got.ID, rt); err != nil {
			t.Fatal(err)
		}
	}
}
