package serve

import (
	"fmt"
	"sync/atomic"
	"testing"

	"banditware/internal/core"
)

// Contention benchmarks for the copy-on-write stream registry. Every
// serve-path operation resolves its stream through a lock-free
// atomic.Pointer load, so goroutines serving *different* streams never
// touch a shared lock — throughput should scale with parallelism until
// the cores run out (compare the 1/4/16-goroutine variants; run with
// -cpu to vary GOMAXPROCS too). Goroutines serving the same stream
// still serialise on that stream's mutex by design: the engine update
// is a read-modify-write of the model.
//
//	go test ./internal/serve/ -run='^$' -bench=Parallel -benchmem

const benchStreams = 16

func newBenchService(b *testing.B, opts ServiceOptions) *Service {
	b.Helper()
	s := NewService(opts)
	for i := 0; i < benchStreams; i++ {
		err := s.CreateStream(fmt.Sprintf("s%02d", i), StreamConfig{
			Hardware: testHW(), Dim: 3, Options: core.Options{Seed: uint64(i + 1)},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	// Warm every stream past its first-allocation phase.
	var tk Ticket
	for i := 0; i < benchStreams; i++ {
		name := fmt.Sprintf("s%02d", i)
		for j := 0; j < 64; j++ {
			if err := s.RecommendInto(name, []float64{1, 2, 3}, &tk); err != nil {
				b.Fatal(err)
			}
			if err := s.ObserveSeq(name, tk.Seq, 2.0); err != nil {
				b.Fatal(err)
			}
		}
	}
	return s
}

// benchParallelCycle drives full recommend+observe cycles from
// par×GOMAXPROCS goroutines, each sticking to its own stream shard so
// the registry (not a stream lock) is the shared structure under test.
func benchParallelCycle(b *testing.B, s *Service, par int) {
	b.Helper()
	names := make([]string, benchStreams)
	for i := range names {
		names[i] = fmt.Sprintf("s%02d", i)
	}
	var gid atomic.Int64
	b.SetParallelism(par)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var tk Ticket
		x := []float64{1, 2, 3}
		// Round-robin goroutine→stream assignment keeps per-stream
		// serialisation out of the measurement as far as parallelism
		// allows.
		id := int(gid.Add(1)) - 1
		name := names[id%benchStreams]
		for pb.Next() {
			if err := s.RecommendInto(name, x, &tk); err != nil {
				b.Fatal(err)
			}
			if err := s.ObserveSeq(name, tk.Seq, 2.0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkParallelRecommendObserve1(b *testing.B) {
	benchParallelCycle(b, newBenchService(b, ServiceOptions{}), 1)
}

func BenchmarkParallelRecommendObserve4(b *testing.B) {
	benchParallelCycle(b, newBenchService(b, ServiceOptions{}), 4)
}

func BenchmarkParallelRecommendObserve16(b *testing.B) {
	benchParallelCycle(b, newBenchService(b, ServiceOptions{}), 16)
}

// BenchmarkParallelRecommendObserveAsync16 is the 16-goroutine variant
// with the async observe queue: observes enqueue to the background
// drainer instead of applying under the stream lock inline.
func BenchmarkParallelRecommendObserveAsync16(b *testing.B) {
	s := newBenchService(b, ServiceOptions{ObserveQueue: 4096})
	defer s.Close()
	benchParallelCycle(b, s, 16)
}

// BenchmarkParallelRegistryRead pins the cost of the lock-free stream
// lookup itself (NumStreams + a stream-resolving read per op) across
// parallelism levels; with the COW registry this is a single atomic
// pointer load and scales linearly.
func BenchmarkParallelRegistryRead(b *testing.B) {
	for _, par := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			s := newBenchService(b, ServiceOptions{})
			b.SetParallelism(par)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := s.Epsilon("s00"); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
