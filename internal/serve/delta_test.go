package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"banditware/internal/core"
	"banditware/internal/hardware"
	"banditware/internal/regress"
)

// deltaTestDim is the feature dimension the delta tests share.
const deltaTestDim = 2

// deltaStreamCfg builds one stream config per policy under test.
func deltaStreamCfg(spec PolicySpec) StreamConfig {
	return StreamConfig{
		Hardware: testHW(),
		Dim:      deltaTestDim,
		Policy:   spec,
		Options:  core.Options{Seed: 11},
	}
}

// deltaObservation is the i-th deterministic observation of the shared
// trace: arm choice, features, and a noiseless per-arm linear runtime.
func deltaObservation(i int) (arm int, x []float64, runtime float64) {
	arm = (i / 3) % len(testHW())
	x = []float64{float64(i%13 + 1), float64(i%7 + 2)}
	w := [][2]float64{{3, 1}, {1, 4}, {2, 2}}[arm]
	runtime = 5 + w[0]*x[0] + w[1]*x[1]
	return arm, x, runtime
}

// armSuff reads one arm's raw sufficient statistics straight from the
// stream's engine.
func armSuff(t *testing.T, s *Service, name string, arm int) regress.Sufficient {
	t.Helper()
	st, err := s.stream(name)
	if err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	src, err := deltaSource(st.engine)
	if err != nil {
		t.Fatal(err)
	}
	suff, err := src.suff(arm)
	if err != nil {
		t.Fatal(err)
	}
	return suff
}

func streamEpsilon(t *testing.T, s *Service, name string) float64 {
	t.Helper()
	st, err := s.stream(name)
	if err != nil {
		t.Fatal(err)
	}
	return st.engine.Epsilon()
}

func streamRound(t *testing.T, s *Service, name string) int {
	t.Helper()
	st, err := s.stream(name)
	if err != nil {
		t.Fatal(err)
	}
	return st.engine.Round()
}

// relClose reports a ≈ b within rel (with an absolute floor for values
// near zero).
func relClose(a, b, rel float64) bool {
	d := math.Abs(a - b)
	if d <= rel {
		return true
	}
	return d <= rel*math.Max(math.Abs(a), math.Abs(b))
}

// suffAt/suffBt index A and b treating the canonical zero (nil slices)
// as all-zeros.
func suffAt(s regress.Sufficient, i int) float64 {
	if s.A == nil {
		return 0
	}
	return s.A[i]
}

func suffBt(s regress.Sufficient, i int) float64 {
	if s.B == nil {
		return 0
	}
	return s.B[i]
}

func suffClose(t *testing.T, got, want regress.Sufficient, label string) {
	t.Helper()
	const tol = 1e-6
	if got.Dim != want.Dim || got.N != want.N {
		t.Fatalf("%s: dim/n = (%d, %d), want (%d, %d)", label, got.Dim, got.N, want.Dim, want.N)
	}
	d := got.Dim + 1
	for i := 0; i < d*d; i++ {
		if !relClose(suffAt(got, i), suffAt(want, i), tol) {
			t.Fatalf("%s: A[%d] = %v, want %v", label, i, suffAt(got, i), suffAt(want, i))
		}
	}
	for i := 0; i < d; i++ {
		if !relClose(suffBt(got, i), suffBt(want, i), tol) {
			t.Fatalf("%s: b[%d] = %v, want %v", label, i, suffBt(got, i), suffBt(want, i))
		}
	}
}

// shipDelta captures svc's delta against a fresh baseline and applies
// it to dst, returning the stats.
func shipDelta(t *testing.T, src *Service, base *SyncState, dst *Service) DeltaStats {
	t.Helper()
	cap, err := src.CaptureDelta(base)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	stats, err := dst.ApplyDelta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cap.Commit()
	return stats
}

// deltaMergeSpecs is the policy matrix both delta-merge property tests
// run over — every shipped, mergeable policy engine.
func deltaMergeSpecs() map[string]PolicySpec {
	return map[string]PolicySpec{
		"algorithm1": {},
		"linucb":     {Type: PolicyLinUCB, Beta: 1.5},
		"lints":      {Type: PolicyLinTS, Seed: 7},
		"eps-greedy": {Type: PolicyEpsGreedy, Epsilon: 0.2, Seed: 9},
		"greedy":     {Type: PolicyGreedy},
		"softmax":    {Type: PolicySoftmax, Temperature: 0.5, Seed: 5},
		"random":     {Type: PolicyRandom, Seed: 3},
	}
}

// Churned-trace schedule: the arm set is 3-wide, grows to 4 at op 60,
// arm 0 drains at 120 and retires at 180 (back to 3 arms with shifted
// indices). deltaChurnWidth reports the arm count in effect at op i.
const (
	deltaChurnAdd    = 60
	deltaChurnDrain  = 120
	deltaChurnRetire = 180
)

func deltaChurnWidth(i int) int {
	if i >= deltaChurnAdd && i < deltaChurnRetire {
		return 4
	}
	return 3
}

// deltaChurnObservation is deltaObservation over the churned arm space:
// the arm index cycles over however many arms exist at op i, and the
// runtime weights are positional (the comparison needs identical inputs
// across services, not a stable hardware semantics).
func deltaChurnObservation(i int) (arm int, x []float64, runtime float64) {
	arm = (i / 3) % deltaChurnWidth(i)
	x = []float64{float64(i%13 + 1), float64(i%7 + 2)}
	w := [][2]float64{{3, 1}, {1, 4}, {2, 2}, {1, 1}}[arm]
	runtime = 5 + w[0]*x[0] + w[1]*x[1]
	return arm, x, runtime
}

// deltaChurnOp applies the churn event scheduled at op i, if any. Adds
// are cold: warm-start masses are replica-local (each shard has seen a
// different slice of the trace), so a warm add would break the merge
// equivalence on purpose — elastic fleets add cold or warm identically
// everywhere.
func deltaChurnOp(t *testing.T, s *Service, i int) {
	t.Helper()
	switch i {
	case deltaChurnAdd:
		if _, err := s.AddArm("s", ArmAdd{
			Hardware: hardware.Config{Name: "H3", CPUs: 8, MemoryGB: 32},
		}); err != nil {
			t.Fatal(err)
		}
	case deltaChurnDrain:
		if err := s.DrainArm("s", 0); err != nil {
			t.Fatal(err)
		}
	case deltaChurnRetire:
		if err := s.RetireArm("s", 0); err != nil {
			t.Fatal(err)
		}
	}
}

// runDeltaMerge drives one policy through the K-shard merge property
// check, optionally with mid-trace arm churn applied identically to the
// single-node reference, every shard, and (before merging) the receiver.
func runDeltaMerge(t *testing.T, name string, spec PolicySpec, churn bool) {
	const T, K = 240, 3
	single := NewService(ServiceOptions{})
	if err := single.CreateStream("s", deltaStreamCfg(spec)); err != nil {
		t.Fatal(err)
	}
	shards := make([]*Service, K)
	for j := range shards {
		shards[j] = NewService(ServiceOptions{})
		if err := shards[j].CreateStream("s", deltaStreamCfg(spec)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < T; i++ {
		arm, x, rt := deltaObservation(i)
		if churn {
			// Lifecycle ops land on every replica at the same trace
			// position, exactly like a fleet-wide rollout step.
			deltaChurnOp(t, single, i)
			for _, sh := range shards {
				deltaChurnOp(t, sh, i)
			}
			arm, x, rt = deltaChurnObservation(i)
		}
		if err := single.ObserveDirect("s", arm, x, rt); err != nil {
			t.Fatal(err)
		}
		if err := shards[i%K].ObserveDirect("s", arm, x, rt); err != nil {
			t.Fatal(err)
		}
	}

	merged := NewService(ServiceOptions{})
	if err := merged.CreateStream("s", deltaStreamCfg(spec)); err != nil {
		t.Fatal(err)
	}
	if churn {
		// The receiver replays the same rollout before merging, so its
		// arm set is index-aligned with the shards' final shape.
		for _, i := range []int{deltaChurnAdd, deltaChurnDrain, deltaChurnRetire} {
			deltaChurnOp(t, merged, i)
		}
	}
	for _, sh := range shards {
		shipDelta(t, sh, sh.NewSyncState(), merged)
	}

	if got, want := streamRound(t, merged, "s"), streamRound(t, single, "s"); got != want {
		t.Fatalf("merged rounds = %d, single-node = %d", got, want)
	}
	gi, err := merged.StreamInfo("s")
	if err != nil {
		t.Fatal(err)
	}
	wi, err := single.StreamInfo("s")
	if err != nil {
		t.Fatal(err)
	}
	if gi.Observed != wi.Observed || gi.RewardTotal != wi.RewardTotal {
		t.Fatalf("merged counters = (%d, %v), single-node = (%d, %v)",
			gi.Observed, gi.RewardTotal, wi.Observed, wi.RewardTotal)
	}
	if name == "algorithm1" {
		if ge, we := streamEpsilon(t, merged, "s"), streamEpsilon(t, single, "s"); ge != we {
			t.Fatalf("merged ε = %v, single-node ε = %v (decay schedule must be float-exact)", ge, we)
		}
	}
	if spec.Type == PolicyRandom {
		return // model-free: rounds and counters are the whole state
	}
	hw, err := single.Hardware("s")
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < len(hw); a++ {
		suffClose(t, armSuff(t, merged, "s", a), armSuff(t, single, "s", a),
			fmt.Sprintf("arm %d", a))
	}
	for i := 0; i < 50; i++ {
		x := []float64{float64(i%17 + 1), float64(i%5 + 1)}
		got, err := merged.Exploit("s", x)
		if err != nil {
			t.Fatal(err)
		}
		want, err := single.Exploit("s", x)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("exploit(%v): merged arm %d, single-node arm %d", x, got, want)
		}
	}
}

// TestDeltaMergeReproducesSingleNode is the delta-merge property test:
// for every shipped policy, splitting a trace across K shard replicas
// and merging their deltas into a fresh service reproduces the model a
// single node learns from the whole trace — sufficient statistics
// within float tolerance, identical exploit decisions, round and
// counter totals exact, and (for Algorithm 1) the ε-decay schedule
// float-exact.
func TestDeltaMergeReproducesSingleNode(t *testing.T) {
	for name, spec := range deltaMergeSpecs() {
		t.Run(name, func(t *testing.T) { runDeltaMerge(t, name, spec, false) })
	}
}

// TestDeltaMergeReproducesSingleNodeUnderChurn re-runs the merge
// property with mid-trace arm churn — a cold add, a drain, and a retire
// at fixed trace positions on every replica. The merged model must still
// be indistinguishable from the single node's for every policy engine,
// proving the retire-time baseline splicing and generation bookkeeping
// keep shard deltas index-aligned through arm-set changes.
func TestDeltaMergeReproducesSingleNodeUnderChurn(t *testing.T) {
	for name, spec := range deltaMergeSpecs() {
		t.Run(name, func(t *testing.T) { runDeltaMerge(t, name, spec, true) })
	}
}

// TestDeltaSyncIncremental pins the two-phase capture/commit contract:
// committed deltas advance the baseline (the next capture is empty),
// uncommitted captures are re-extracted, and a chain of incremental
// syncs converges the receiver onto the sender's model.
func TestDeltaSyncIncremental(t *testing.T) {
	src := NewService(ServiceOptions{})
	dst := NewService(ServiceOptions{})
	cfg := deltaStreamCfg(PolicySpec{Type: PolicyLinUCB})
	if err := src.CreateStream("s", cfg); err != nil {
		t.Fatal(err)
	}
	if err := dst.CreateStream("s", cfg); err != nil {
		t.Fatal(err)
	}
	base := src.NewSyncState()

	for i := 0; i < 30; i++ {
		arm, x, rt := deltaObservation(i)
		if err := src.ObserveDirect("s", arm, x, rt); err != nil {
			t.Fatal(err)
		}
	}
	if stats := shipDelta(t, src, base, dst); stats.Streams != 1 {
		t.Fatalf("first sync stats = %+v", stats)
	}
	// Committed and no new traffic: nothing to ship.
	cap, err := src.CaptureDelta(base)
	if err != nil {
		t.Fatal(err)
	}
	if !cap.Empty() {
		t.Fatalf("capture after commit with no traffic carries %d streams", cap.Streams())
	}

	// A capture that never reaches its peer is dropped uncommitted; the
	// next capture re-extracts the same change.
	for i := 30; i < 60; i++ {
		arm, x, rt := deltaObservation(i)
		if err := src.ObserveDirect("s", arm, x, rt); err != nil {
			t.Fatal(err)
		}
	}
	lost, err := src.CaptureDelta(base)
	if err != nil {
		t.Fatal(err)
	}
	if lost.Empty() {
		t.Fatal("capture with fresh traffic is empty")
	}
	// lost is dropped without Commit. The retry ships the same change.
	shipDelta(t, src, base, dst)

	for a := 0; a < len(testHW()); a++ {
		suffClose(t, armSuff(t, dst, "s", a), armSuff(t, src, "s", a), fmt.Sprintf("arm %d", a))
	}
	si, err := src.StreamInfo("s")
	if err != nil {
		t.Fatal(err)
	}
	di, err := dst.StreamInfo("s")
	if err != nil {
		t.Fatal(err)
	}
	if di.Observed != si.Observed || di.RewardTotal != si.RewardTotal {
		t.Fatalf("receiver counters = (%d, %v), sender = (%d, %v)",
			di.Observed, di.RewardTotal, si.Observed, si.RewardTotal)
	}
}

// TestDeltaNoEcho: contributions merged from a peer are never shipped
// back to it (or re-broadcast), so a two-replica exchange converges in
// one round trip and then goes quiet.
func TestDeltaNoEcho(t *testing.T) {
	cfg := deltaStreamCfg(PolicySpec{Type: PolicyLinUCB})
	a := NewService(ServiceOptions{})
	b := NewService(ServiceOptions{})
	for _, s := range []*Service{a, b} {
		if err := s.CreateStream("s", cfg); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		arm, x, rt := deltaObservation(i)
		if err := a.ObserveDirect("s", arm, x, rt); err != nil {
			t.Fatal(err)
		}
		arm, x, rt = deltaObservation(i + 100)
		if err := b.ObserveDirect("s", arm, x, rt); err != nil {
			t.Fatal(err)
		}
	}
	aToB := a.NewSyncState()
	bToA := b.NewSyncState()
	shipDelta(t, a, aToB, b) // B now holds A's traffic too
	shipDelta(t, b, bToA, a) // B must ship only its own 20 observations

	ai, err := a.StreamInfo("s")
	if err != nil {
		t.Fatal(err)
	}
	bi, err := b.StreamInfo("s")
	if err != nil {
		t.Fatal(err)
	}
	if ai.Observed != 40 || bi.Observed != 40 {
		t.Fatalf("observed after full exchange = (%d, %d), want (40, 40) — echo detected", ai.Observed, bi.Observed)
	}
	for arm := 0; arm < len(testHW()); arm++ {
		suffClose(t, armSuff(t, a, "s", arm), armSuff(t, b, "s", arm), fmt.Sprintf("arm %d", arm))
	}
	// Steady state: neither side has anything new.
	for _, pair := range []struct {
		s    *Service
		base *SyncState
	}{{a, aToB}, {b, bToA}} {
		cap, err := pair.s.CaptureDelta(pair.base)
		if err != nil {
			t.Fatal(err)
		}
		if !cap.Empty() {
			t.Fatalf("steady-state capture carries %d streams", cap.Streams())
		}
	}
}

// TestDeltaSkipsNonMergeable: windowed and forgetting streams are
// reported in Skipped and never serialized, and a delta aimed at one is
// rejected; mergeable streams in the same service replicate normally.
func TestDeltaSkipsNonMergeable(t *testing.T) {
	s := NewService(ServiceOptions{})
	if err := s.CreateStream("ok", deltaStreamCfg(PolicySpec{Type: PolicyLinUCB})); err != nil {
		t.Fatal(err)
	}
	win := deltaStreamCfg(PolicySpec{Type: PolicyLinUCB})
	win.Adapt = AdaptSpec{Mode: AdaptWindow, Window: 8}
	if err := s.CreateStream("windowed", win); err != nil {
		t.Fatal(err)
	}
	forget := deltaStreamCfg(PolicySpec{})
	forget.Adapt = AdaptSpec{Mode: AdaptForgetting, Factor: 0.9}
	if err := s.CreateStream("forgetting", forget); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		arm, x, rt := deltaObservation(i)
		for _, name := range []string{"ok", "windowed", "forgetting"} {
			if err := s.ObserveDirect(name, arm, x, rt); err != nil {
				t.Fatal(err)
			}
		}
	}
	cap, err := s.CaptureDelta(s.NewSyncState())
	if err != nil {
		t.Fatal(err)
	}
	if len(cap.Skipped) != 2 {
		t.Fatalf("Skipped = %v, want the windowed and forgetting streams", cap.Skipped)
	}
	if cap.Streams() != 1 {
		t.Fatalf("capture carries %d streams, want only %q", cap.Streams(), "ok")
	}
	var buf bytes.Buffer
	if err := cap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("windowed")) {
		t.Fatal("non-mergeable stream leaked into the delta envelope")
	}

	// A delta aimed at a non-mergeable stream is a fleet
	// misconfiguration, not a silent skip.
	hostile := strings.Replace(buf.String(), `"name":"ok"`, `"name":"windowed"`, 1)
	if _, err := s.ApplyDelta(strings.NewReader(hostile)); !errors.Is(err, ErrNotMergeable) {
		t.Fatalf("ApplyDelta to windowed stream: %v, want ErrNotMergeable", err)
	}

	// A delta for a stream this replica does not serve is skipped and
	// reported (stream sets converge out of band).
	foreign := strings.Replace(buf.String(), `"name":"ok"`, `"name":"elsewhere"`, 1)
	stats, err := s.ApplyDelta(strings.NewReader(foreign))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.SkippedUnknown) != 1 || stats.SkippedUnknown[0] != "elsewhere" {
		t.Fatalf("stats = %+v, want elsewhere skipped", stats)
	}
}

// TestDeltaArmResetReanchors: a drift-triggered arm reset bumps the
// arm's generation, so the next capture re-anchors (ships the full
// post-reset local state) instead of computing a nonsensical increment
// against the pre-reset baseline.
func TestDeltaArmResetReanchors(t *testing.T) {
	src := NewService(ServiceOptions{})
	dst := NewService(ServiceOptions{})
	cfg := deltaStreamCfg(PolicySpec{})
	for _, s := range []*Service{src, dst} {
		if err := s.CreateStream("s", cfg); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		arm, x, rt := deltaObservation(i)
		if err := src.ObserveDirect("s", arm, x, rt); err != nil {
			t.Fatal(err)
		}
	}
	base := src.NewSyncState()
	shipDelta(t, src, base, dst)

	// Reset arm 0 the way observeDriftLocked does on a drift detection.
	st, err := src.stream("s")
	if err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	if err := st.engine.(ArmResetter).ResetArm(0); err != nil {
		st.mu.Unlock()
		t.Fatal(err)
	}
	st.bumpArmGenLocked(0)
	st.mu.Unlock()

	for i := 0; i < 9; i++ { // 9 observations, arms 0..2 each get 3
		arm, x, rt := deltaObservation(i * 3)
		if err := src.ObserveDirect("s", arm, x, rt); err != nil {
			t.Fatal(err)
		}
	}
	cap, err := src.CaptureDelta(base)
	if err != nil {
		t.Fatal(err)
	}
	if cap.Empty() {
		t.Fatal("post-reset capture is empty")
	}
	sd := cap.snap.Streams[0]
	// Arm 0 re-anchors: the shipped delta is exactly src's post-reset
	// local state, not an increment against the stale baseline.
	suffClose(t, sd.Arms[0], armSuff(t, src, "s", 0), "re-anchored arm 0")
	var buf bytes.Buffer
	if err := cap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.ApplyDelta(&buf); err != nil {
		t.Fatal(err)
	}
	cap.Commit()
	// Replication is grow-only: the receiver keeps the pre-reset
	// contributions on top of the re-anchored state.
	if got, want := armSuff(t, dst, "s", 0).N, armSuff(t, src, "s", 0).N; got <= want {
		t.Fatalf("receiver arm 0 n = %d, want > sender's post-reset %d", got, want)
	}
}

// TestImportSnapshotRebaselines: a replica bootstrapped from a peer's
// snapshot treats everything it imported as foreign — its first delta
// capture is empty, only post-import traffic ships, and captures taken
// before the import cannot corrupt baselines (the epoch check).
func TestImportSnapshotRebaselines(t *testing.T) {
	donor := NewService(ServiceOptions{})
	if err := donor.CreateStream("s", deltaStreamCfg(PolicySpec{})); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		arm, x, rt := deltaObservation(i)
		if err := donor.ObserveDirect("s", arm, x, rt); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := donor.Save(&snap); err != nil {
		t.Fatal(err)
	}

	joiner := NewService(ServiceOptions{})
	stale := joiner.NewSyncState()
	if err := joiner.ImportSnapshot(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !joiner.Ready() {
		t.Fatal("service not ready after import returned")
	}
	if got, want := streamRound(t, joiner, "s"), streamRound(t, donor, "s"); got != want {
		t.Fatalf("imported rounds = %d, donor = %d", got, want)
	}

	cap, err := joiner.CaptureDelta(joiner.NewSyncState())
	if err != nil {
		t.Fatal(err)
	}
	if !cap.Empty() {
		t.Fatalf("first capture after import carries %d streams — imported state re-shipped", cap.Streams())
	}

	// Only the joiner's own post-import traffic replicates back.
	for i := 0; i < 5; i++ {
		arm, x, rt := deltaObservation(i + 200)
		if err := joiner.ObserveDirect("s", arm, x, rt); err != nil {
			t.Fatal(err)
		}
	}
	before, err := donor.StreamInfo("s")
	if err != nil {
		t.Fatal(err)
	}
	shipDelta(t, joiner, joiner.NewSyncState(), donor)
	after, err := donor.StreamInfo("s")
	if err != nil {
		t.Fatal(err)
	}
	if after.Observed != before.Observed+5 {
		t.Fatalf("donor observed %d → %d, want +5 (imported state echoed back)", before.Observed, after.Observed)
	}

	// A capture taken against a pre-import baseline no-ops on Commit
	// (epoch mismatch) rather than planting stale baselines.
	preImport, err := joiner.CaptureDelta(stale)
	if err != nil {
		t.Fatal(err)
	}
	if err := joiner.ImportSnapshot(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	preImport.Commit() // must be a no-op
	cap2, err := joiner.CaptureDelta(stale)
	if err != nil {
		t.Fatal(err)
	}
	if !cap2.Empty() {
		t.Fatalf("capture after re-import carries %d streams", cap2.Streams())
	}
}

// TestReadyzEndpoint: /v1/readyz is distinct from /v1/healthz — the
// process is alive (healthz 200) but not ready (readyz 503) while a
// snapshot import or delta merge is in flight.
func TestReadyzEndpoint(t *testing.T) {
	svc := NewService(ServiceOptions{})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	get := func(path string) (int, map[string]string) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	if code, body := get("/v1/readyz"); code != 200 || body["status"] != "ready" {
		t.Fatalf("idle readyz = %d %v", code, body)
	}
	svc.beginMaintenance()
	if code, body := get("/v1/readyz"); code != 503 || body["status"] != "restoring" {
		t.Fatalf("maintenance readyz = %d %v, want 503 restoring", code, body)
	}
	if code, _ := get("/v1/healthz"); code != 200 {
		t.Fatalf("healthz during maintenance = %d, want 200 (liveness is not readiness)", code)
	}
	svc.endMaintenance()
	if code, _ := get("/v1/readyz"); code != 200 {
		t.Fatalf("readyz after maintenance = %d", code)
	}
}

// TestApplyDeltaRejectsMalformed walks the envelope validations.
func TestApplyDeltaRejectsMalformed(t *testing.T) {
	svc := NewService(ServiceOptions{})
	if err := svc.CreateStream("s", deltaStreamCfg(PolicySpec{Type: PolicyLinUCB})); err != nil {
		t.Fatal(err)
	}
	head := `{"format":"banditware-service","version":6,"delta":true,"saved_at_ns":1,"streams":`
	cases := map[string]string{
		"not a delta":       `{"format":"banditware-service","version":6,"delta":false,"streams":[]}`,
		"wrong format":      `{"format":"other","version":6,"delta":true,"streams":[]}`,
		"wrong version":     `{"format":"banditware-service","version":5,"delta":true,"streams":[]}`,
		"policy mismatch":   head + `[{"name":"s","policy":"lints","dim":2}]}`,
		"dim mismatch":      head + `[{"name":"s","policy":"linucb","dim":3}]}`,
		"negative rounds":   head + `[{"name":"s","policy":"linucb","dim":2,"rounds":-1}]}`,
		"arm count":         head + `[{"name":"s","policy":"linucb","dim":2,"arms":[{"dim":2}]}]}`,
		"non-finite totals": head + `[{"name":"s","policy":"linucb","dim":2,"reward_total":1e999}]}`,
	}
	for name, payload := range cases {
		if _, err := svc.ApplyDelta(strings.NewReader(payload)); !errors.Is(err, ErrBadDelta) {
			t.Fatalf("%s: err = %v, want ErrBadDelta", name, err)
		}
	}
	if !svc.Ready() {
		t.Fatal("service stuck not-ready after rejected deltas")
	}
}
