package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"banditware/internal/policy"
	"banditware/internal/regress"
)

// Delta replication (snapshot versions 6–7; the delta wire format is
// identical in both — version 7's arm lifecycle and cache counters are
// replica-local and never travel in delta envelopes).
//
// A fleet of replicas each learns on its own slice of the traffic and
// periodically exchanges *deltas*: the additive change in per-arm
// sufficient statistics (internal/regress.Sufficient), decay rounds,
// outcome counters, and drift detections since the last successful
// sync with that peer. Because the linear-model state is a plain sum
// of per-observation terms, merging every replica's deltas reproduces
// — exactly, up to float re-factoring — the model a single node would
// have learned from the union of the traffic.
//
// The echo problem: a replica's stream state mixes its own traffic
// with contributions merged from peers, and a naive "current minus
// last-shipped" delta would re-broadcast those peer contributions,
// double-counting them at the third replica. Each stream therefore
// tracks its cumulative *foreign* contributions (mergedState, updated
// by ApplyDelta) so delta extraction can ship only the local share:
//
//	local = current − prior − merged
//	delta to peer P = local − (local at last commit to P)
//
// Per-peer baselines live in a SyncState; CaptureDelta/Commit are a
// two-phase pair so a delta that fails to reach its peer is simply
// re-extracted next round (exactly-once effect without retry buffers).
//
// Streams whose state is not a pure sum — sliding windows, exponential
// forgetting, batch refit — are not replicated; CaptureDelta reports
// them in Skipped and ApplyDelta rejects deltas aimed at them.
var (
	// ErrNotMergeable reports a delta operation on a stream whose
	// engine state is not additive (windowed, forgetting, batch-refit).
	ErrNotMergeable = errors.New("serve: stream is not delta-mergeable")
	// ErrBadDelta reports a malformed or mismatched delta envelope.
	ErrBadDelta = errors.New("serve: invalid delta envelope")
)

// streamDelta is the wire form of one stream's additive change: the
// per-arm sufficient-statistic deltas (index-aligned with the arm set;
// canonical-zero entries mark unchanged arms), the ε-decay rounds to
// absorb, the outcome counter increments, and per-arm drift detections.
type streamDelta struct {
	Name         string               `json:"name"`
	Policy       string               `json:"policy"`
	Dim          int                  `json:"dim"`
	Rounds       int                  `json:"rounds,omitempty"`
	Arms         []regress.Sufficient `json:"arms,omitempty"`
	Issued       uint64               `json:"issued,omitempty"`
	Observed     uint64               `json:"observed,omitempty"`
	RewardTotal  float64              `json:"reward_total,omitempty"`
	RuntimeTotal float64              `json:"runtime_total,omitempty"`
	Failures     uint64               `json:"failures,omitempty"`
	DriftByArm   []uint64             `json:"drift_by_arm,omitempty"`
}

// deltaSnap is the delta envelope. It shares the snapshot format name
// and version so fleet members negotiate one compatibility story, and
// carries "delta": true so a delta can never be mistaken for a full
// snapshot (Load rejects it; ApplyDelta requires it).
type deltaSnap struct {
	Format  string        `json:"format"`
	Version int           `json:"version"`
	Delta   bool          `json:"delta"`
	SavedAt int64         `json:"saved_at_ns"`
	Streams []streamDelta `json:"streams"`
}

// mergedState accumulates the foreign contributions a stream has
// absorbed via ApplyDelta (and, after ImportSnapshot, the imported
// state itself), so delta extraction can subtract them out. driftBase
// marks detector counts that arrived with an imported snapshot — they
// live inside the local detectors but are not local detections.
type mergedState struct {
	arms      []regress.Sufficient
	rounds    int
	issued    uint64
	observed  uint64
	failures  uint64
	reward    float64
	runtime   float64
	drift     []uint64
	driftBase []uint64
}

func (m *mergedState) empty() bool {
	if m == nil {
		return true
	}
	if m.rounds != 0 || m.issued != 0 || m.observed != 0 || m.failures != 0 ||
		m.reward != 0 || m.runtime != 0 {
		return false
	}
	for _, a := range m.arms {
		if !a.IsZero() {
			return false
		}
	}
	for _, d := range m.drift {
		if d != 0 {
			return false
		}
	}
	for _, d := range m.driftBase {
		if d != 0 {
			return false
		}
	}
	return true
}

func (st *stream) ensureMergedLocked(arms, dim int) *mergedState {
	if st.merged == nil {
		st.merged = &mergedState{
			arms:  make([]regress.Sufficient, arms),
			drift: make([]uint64, arms),
		}
		for i := range st.merged.arms {
			st.merged.arms[i] = regress.Sufficient{Dim: dim}
		}
	}
	return st.merged
}

// bumpArmGenLocked records a local arm reset: sync baselines holding
// the old generation re-anchor (ship the full post-reset state), and
// the arm's foreign contributions are gone from the model, so the
// merged accumulator is wiped too.
func (st *stream) bumpArmGenLocked(arm int) {
	if st.armGen == nil {
		st.armGen = make([]uint64, len(st.engine.Hardware()))
	}
	if arm < len(st.armGen) {
		st.armGen[arm]++
	}
	if st.merged != nil && arm < len(st.merged.arms) {
		st.merged.arms[arm] = regress.Sufficient{Dim: st.engine.Dim()}
	}
}

func (st *stream) armGenAt(arm int) uint64 {
	if arm < len(st.armGen) {
		return st.armGen[arm]
	}
	return 0
}

// engineDeltaSource adapts the two engine families' delta hooks behind
// one function set. modelFree engines (random) have no arm statistics
// but still replicate rounds and counters.
type engineDeltaSource struct {
	modelFree bool
	suff      func(arm int) (regress.Sufficient, error)
	prior     func(arm int) (regress.Sufficient, error)
	merge     func(arm int, delta regress.Sufficient) error
	absorb    func(k int) error
}

// deltaSource resolves an engine's delta hooks, or ErrNotMergeable for
// configurations whose state is not additive.
func deltaSource(eng Engine) (engineDeltaSource, error) {
	switch e := eng.(type) {
	case banditEngine:
		if err := e.DeltaMergeable(); err != nil {
			return engineDeltaSource{}, fmt.Errorf("%w: %v", ErrNotMergeable, err)
		}
		return engineDeltaSource{
			suff:   e.ArmSufficient,
			prior:  e.ArmPrior,
			merge:  e.MergeArmDelta,
			absorb: e.AbsorbRounds,
		}, nil
	case *policyEngine:
		absorb := func(k int) error {
			if k < 0 {
				return fmt.Errorf("serve: negative round count %d", k)
			}
			e.round += k
			return nil
		}
		dm, ok := e.p.(policy.DeltaMergeable)
		if !ok {
			// Model-free policy: nothing to merge beyond rounds/counters.
			return engineDeltaSource{modelFree: true, absorb: absorb}, nil
		}
		// Probe one arm so windowed/forgetting configurations surface as
		// ErrNotMergeable up front (the configuration is fixed for the
		// engine's lifetime, so a passing probe holds forever).
		if _, err := dm.ArmSufficient(0); err != nil {
			if errors.Is(err, policy.ErrNotMergeable) {
				return engineDeltaSource{}, fmt.Errorf("%w: %v", ErrNotMergeable, err)
			}
			return engineDeltaSource{}, mapPolicyErr(err)
		}
		return engineDeltaSource{
			suff: dm.ArmSufficient,
			prior: func(arm int) (regress.Sufficient, error) {
				s, err := dm.ArmPrior(arm)
				return s, mapPolicyErr(err)
			},
			merge: func(arm int, delta regress.Sufficient) error {
				return mapPolicyErr(dm.MergeArmSufficient(arm, delta))
			},
			absorb: absorb,
		}, nil
	}
	return engineDeltaSource{}, fmt.Errorf("%w: engine %T has no delta support", ErrNotMergeable, eng)
}

// peerStreamBase is one peer's acknowledged baseline for one stream:
// the local contributions (and arm reset generations, detector counts,
// counters) the peer had received as of the last committed sync.
type peerStreamBase struct {
	arms     []regress.Sufficient
	gens     []uint64
	rounds   int
	issued   uint64
	observed uint64
	failures uint64
	reward   float64
	runtime  float64
	drift    []uint64
}

// SyncState tracks what one peer has already acknowledged, one per
// (replica, peer) pair. Obtain with Service.NewSyncState; it is
// advanced only by DeltaCapture.Commit and invalidated wholesale by
// ImportSnapshot (the epoch check), so a crashed sync never corrupts
// the baseline.
type SyncState struct {
	epoch   uint64
	streams map[string]*peerStreamBase
}

// NewSyncState registers a fresh per-peer sync baseline. The first
// capture against it ships each stream's full local state. States stay
// registered for the service's lifetime (a dropped peer's state is a
// few KB; fleets are small).
func (s *Service) NewSyncState() *SyncState {
	ss := &SyncState{streams: make(map[string]*peerStreamBase)}
	s.syncMu.Lock()
	s.syncStates = append(s.syncStates, ss)
	s.syncMu.Unlock()
	return ss
}

// DeltaCapture is an extracted-but-uncommitted delta: Encode ships it,
// and Commit advances the peer baseline only after the peer accepted
// it. Dropping an uncommitted capture is safe — the next capture
// re-extracts the same (plus newer) changes.
type DeltaCapture struct {
	svc     *Service
	base    *SyncState
	epoch   uint64
	snap    deltaSnap
	next    map[string]*peerStreamBase
	Skipped []string
}

// CaptureDelta extracts, for every delta-mergeable stream, the local
// change since base's last committed sync. Non-mergeable streams are
// reported in the capture's Skipped list, not replicated.
func (s *Service) CaptureDelta(base *SyncState) (*DeltaCapture, error) {
	if base == nil {
		return nil, errors.New("serve: nil sync state")
	}
	s.FlushObserves() // async mode: acknowledged observes land before the cut
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	c := &DeltaCapture{
		svc:   s,
		base:  base,
		epoch: base.epoch,
		snap: deltaSnap{
			Format:  snapshotFormat,
			Version: snapshotVersion,
			Delta:   true,
			SavedAt: s.now().UnixNano(),
		},
		next: make(map[string]*peerStreamBase),
	}
	for _, st := range s.allStreams() {
		st.mu.Lock()
		sd, nb, err := st.captureDeltaLocked(base.streams[st.name])
		st.mu.Unlock()
		if err != nil {
			if errors.Is(err, ErrNotMergeable) {
				c.Skipped = append(c.Skipped, st.name)
				continue
			}
			return nil, fmt.Errorf("serve: capturing delta of stream %q: %w", st.name, err)
		}
		c.next[st.name] = nb
		if sd != nil {
			c.snap.Streams = append(c.snap.Streams, *sd)
		}
	}
	return c, nil
}

// Empty reports whether the capture carries no changes (nothing to
// ship; Commit is still valid and cheap).
func (c *DeltaCapture) Empty() bool { return len(c.snap.Streams) == 0 }

// Streams returns the number of streams with changes in this capture.
func (c *DeltaCapture) Streams() int { return len(c.snap.Streams) }

// Encode writes the delta envelope as JSON.
func (c *DeltaCapture) Encode(w io.Writer) error {
	return json.NewEncoder(w).Encode(c.snap)
}

// Commit advances the peer baseline to this capture: everything it
// carried is now the peer's problem. A no-op if the service re-based
// (ImportSnapshot) since the capture was taken.
func (c *DeltaCapture) Commit() {
	c.svc.syncMu.Lock()
	defer c.svc.syncMu.Unlock()
	if c.base.epoch != c.epoch {
		return
	}
	c.base.streams = c.next
}

// captureDeltaLocked extracts this stream's change since prev (nil:
// first sync — ship everything local) and the baseline a commit should
// advance to. Returns a nil streamDelta when nothing changed.
func (st *stream) captureDeltaLocked(prev *peerStreamBase) (*streamDelta, *peerStreamBase, error) {
	src, err := deltaSource(st.engine)
	if err != nil {
		return nil, nil, err
	}
	dim := st.engine.Dim()
	arms := len(st.engine.Hardware())
	m := st.merged // may be nil: no foreign contributions yet
	var mRounds int
	var mIssued, mObserved, mFailures uint64
	var mReward, mRuntime float64
	if m != nil {
		mRounds, mIssued, mObserved, mFailures = m.rounds, m.issued, m.observed, m.failures
		mReward, mRuntime = m.reward, m.runtime
	}

	nb := &peerStreamBase{
		rounds:   st.engine.Round() - mRounds,
		issued:   st.issued - mIssued,
		observed: st.observed - mObserved,
		failures: st.failures - mFailures,
		reward:   st.rewardTotal - mReward,
		runtime:  st.runtimeTotal - mRuntime,
	}
	var zero peerStreamBase
	pb := &zero
	if prev != nil {
		pb = prev
	}
	sd := streamDelta{Name: st.name, Policy: st.engine.Kind(), Dim: dim}
	// Counter deltas clamp at zero defensively (a stale baseline after a
	// stream was deleted and recreated); the commit self-heals the base.
	if nb.rounds > pb.rounds {
		sd.Rounds = nb.rounds - pb.rounds
	}
	if nb.issued > pb.issued {
		sd.Issued = nb.issued - pb.issued
	}
	if nb.observed > pb.observed {
		sd.Observed = nb.observed - pb.observed
	}
	if nb.failures > pb.failures {
		sd.Failures = nb.failures - pb.failures
	}
	sd.RewardTotal = nb.reward - pb.reward
	sd.RuntimeTotal = nb.runtime - pb.runtime
	changed := sd.Rounds > 0 || sd.Issued > 0 || sd.Observed > 0 || sd.Failures > 0 ||
		sd.RewardTotal != 0 || sd.RuntimeTotal != 0

	if !src.modelFree {
		nb.arms = make([]regress.Sufficient, arms)
		nb.gens = make([]uint64, arms)
		armDeltas := make([]regress.Sufficient, arms)
		anyArm := false
		for a := 0; a < arms; a++ {
			cur, err := src.suff(a)
			if err != nil {
				return nil, nil, err
			}
			prior, err := src.prior(a)
			if err != nil {
				return nil, nil, err
			}
			local, err := cur.Sub(prior)
			if err != nil {
				return nil, nil, err
			}
			if m != nil && a < len(m.arms) && !m.arms[a].IsZero() {
				if local, err = local.Sub(m.arms[a]); err != nil {
					return nil, nil, err
				}
			}
			gen := st.armGenAt(a)
			nb.arms[a], nb.gens[a] = local, gen
			d := local
			// Same generation and a sane baseline: ship the increment.
			// Otherwise the arm was reset (or the baseline belongs to a
			// different incarnation of the stream) — re-anchor by shipping
			// the full local state; peers keep their pre-reset
			// contributions (replication is grow-only).
			if a < len(pb.arms) && a < len(pb.gens) && pb.gens[a] == gen &&
				pb.arms[a].Dim == dim {
				if d, err = local.Sub(pb.arms[a]); err != nil {
					return nil, nil, err
				}
				if d.N < 0 {
					d = local
				}
			}
			// Merging a peer's delta reconstructs A from a fresh Cholesky
			// factor, so the local share picks up roundoff relative to the
			// exactly-summed merged accumulator. An observation-free delta
			// at machine precision is that residue — shipping it would keep
			// an otherwise idle fleet syncing forever.
			if negligibleResidue(d, local) {
				d = regress.Sufficient{Dim: dim}
			}
			armDeltas[a] = d
			anyArm = anyArm || !d.IsZero()
		}
		if anyArm {
			sd.Arms = armDeltas
			changed = true
		}
	}

	// Drift: ship new local detections (detector counts minus the
	// imported baseline); foreign detections live in merged.drift and are
	// never re-shipped.
	det := make([]uint64, arms)
	for i := 0; i < arms && i < len(st.detectors); i++ {
		det[i] = st.detectors[i].Detections()
		if m != nil && i < len(m.driftBase) {
			if det[i] >= m.driftBase[i] {
				det[i] -= m.driftBase[i]
			} else {
				det[i] = 0
			}
		}
	}
	nb.drift = det
	driftDelta := make([]uint64, arms)
	anyDrift := false
	for a := range det {
		var p uint64
		if a < len(pb.drift) {
			p = pb.drift[a]
		}
		if det[a] > p {
			driftDelta[a] = det[a] - p
			anyDrift = true
		}
	}
	if anyDrift {
		sd.DriftByArm = driftDelta
		changed = true
	}

	if !changed {
		return nil, nb, nil
	}
	return &sd, nb, nil
}

// negligibleResidue reports whether an arm delta carries no
// observations (N = 0) and only float residue — every entry below
// machine-precision scale relative to the arm's local statistics. A
// real observation always increments N, so an N = 0 delta with tiny
// entries can only be re-factoring roundoff.
func negligibleResidue(d, local regress.Sufficient) bool {
	if d.N != 0 {
		return false
	}
	const tol = 1e-9
	scale := 1.0
	for _, v := range local.A {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	for _, v := range local.B {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	for _, v := range d.A {
		if math.Abs(v) > tol*scale {
			return false
		}
	}
	for _, v := range d.B {
		if math.Abs(v) > tol*scale {
			return false
		}
	}
	return true
}

// DeltaStats summarises one ApplyDelta call.
type DeltaStats struct {
	// Streams, Arms, Rounds count what was merged: streams touched,
	// non-zero arm deltas folded in, decay rounds absorbed.
	Streams int `json:"streams"`
	Arms    int `json:"arms"`
	Rounds  int `json:"rounds"`
	// SkippedUnknown lists delta streams this replica does not serve
	// (stream sets are converging; not an error).
	SkippedUnknown []string `json:"skipped_unknown,omitempty"`
}

// ApplyDelta merges a peer's delta envelope (DeltaCapture.Encode) into
// this service. The service reports not-ready (Ready, /v1/readyz)
// while the merge runs. Deltas for streams this replica does not serve
// are skipped and reported; a malformed or mismatched stream delta
// aborts with an error (earlier streams in the envelope stay merged —
// re-sending a delta is safe only after the underlying mismatch is
// fixed, so treat an error as a fleet misconfiguration).
func (s *Service) ApplyDelta(r io.Reader) (DeltaStats, error) {
	var stats DeltaStats
	var snap deltaSnap
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return stats, fmt.Errorf("%w: %v", ErrBadDelta, err)
	}
	if snap.Format != snapshotFormat {
		return stats, fmt.Errorf("%w: format %q", ErrBadDelta, snap.Format)
	}
	if !snap.Delta {
		return stats, fmt.Errorf("%w: full snapshot envelope (use Load or ImportSnapshot)", ErrBadDelta)
	}
	// The delta wire format is unchanged between versions 6 and 7 (the
	// version-7 additions — arm lifecycle, cache counters — are replica-
	// local and never travel in delta envelopes), so a mixed-version
	// fleet keeps syncing during a rolling upgrade.
	if snap.Version != snapshotVersion && snap.Version != snapshotVersion-1 {
		return stats, fmt.Errorf("%w: version %d, this replica speaks %d", ErrBadDelta, snap.Version, snapshotVersion)
	}
	s.beginMaintenance()
	defer s.endMaintenance()
	for _, sd := range snap.Streams {
		st, err := s.stream(sd.Name)
		if errors.Is(err, ErrStreamNotFound) {
			stats.SkippedUnknown = append(stats.SkippedUnknown, sd.Name)
			continue
		}
		if err != nil {
			return stats, err
		}
		st.mu.Lock()
		err = st.applyDeltaLocked(&sd, &stats)
		st.mu.Unlock()
		if err != nil {
			return stats, fmt.Errorf("serve: applying delta to stream %q: %w", sd.Name, err)
		}
		stats.Streams++
	}
	return stats, nil
}

func (st *stream) applyDeltaLocked(sd *streamDelta, stats *DeltaStats) error {
	src, err := deltaSource(st.engine)
	if err != nil {
		return err
	}
	dim := st.engine.Dim()
	arms := len(st.engine.Hardware())
	switch {
	case sd.Policy != st.engine.Kind():
		return fmt.Errorf("%w: delta for policy %q, stream runs %q", ErrBadDelta, sd.Policy, st.engine.Kind())
	case sd.Dim != dim:
		return fmt.Errorf("%w: delta dimension %d, stream has %d", ErrBadDelta, sd.Dim, dim)
	case sd.Rounds < 0:
		return fmt.Errorf("%w: negative rounds %d", ErrBadDelta, sd.Rounds)
	case len(sd.Arms) > 0 && len(sd.Arms) != arms:
		return fmt.Errorf("%w: %d arm deltas for %d arms", ErrBadDelta, len(sd.Arms), arms)
	case len(sd.Arms) > 0 && src.modelFree:
		return fmt.Errorf("%w: arm deltas for model-free policy %q", ErrBadDelta, sd.Policy)
	case len(sd.DriftByArm) > 0 && len(sd.DriftByArm) != arms:
		return fmt.Errorf("%w: %d drift counts for %d arms", ErrBadDelta, len(sd.DriftByArm), arms)
	case math.IsNaN(sd.RewardTotal) || math.IsInf(sd.RewardTotal, 0) ||
		math.IsNaN(sd.RuntimeTotal) || math.IsInf(sd.RuntimeTotal, 0):
		return fmt.Errorf("%w: non-finite totals", ErrBadDelta)
	}
	m := st.ensureMergedLocked(arms, dim)
	for a, d := range sd.Arms {
		if d.IsZero() {
			continue
		}
		if err := src.merge(a, d); err != nil {
			return err
		}
		sum, err := m.arms[a].Add(d)
		if err != nil {
			return err
		}
		m.arms[a] = sum
		stats.Arms++
	}
	if sd.Rounds > 0 {
		if err := src.absorb(sd.Rounds); err != nil {
			return err
		}
		m.rounds += sd.Rounds
		stats.Rounds += sd.Rounds
	}
	st.issued += sd.Issued
	m.issued += sd.Issued
	st.observed += sd.Observed
	m.observed += sd.Observed
	st.failures += sd.Failures
	m.failures += sd.Failures
	st.rewardTotal += sd.RewardTotal
	m.reward += sd.RewardTotal
	st.runtimeTotal += sd.RuntimeTotal
	m.runtime += sd.RuntimeTotal
	for a, n := range sd.DriftByArm {
		if a < len(m.drift) {
			m.drift[a] += n
		}
	}
	return nil
}

// ImportSnapshot replaces this service's streams with a peer's full
// snapshot (Save output) — the bootstrap path for a replica joining or
// rejoining a fleet. The imported state is marked foreign, so the next
// delta capture ships nothing the donor fleet already has, and every
// registered SyncState is re-based. The service reports not-ready
// while the import runs; on error the existing streams are untouched.
func (s *Service) ImportSnapshot(r io.Reader) error {
	s.beginMaintenance()
	defer s.endMaintenance()
	s.FlushObserves() // apply acknowledged observes to the outgoing streams
	tmp, err := Load(r, s.opts)
	if err != nil {
		return err
	}
	for _, st := range tmp.allStreams() {
		st.mu.Lock()
		st.rebaselineForeignLocked()
		st.mu.Unlock()
	}
	next := *tmp.streams.Load()
	s.regMu.Lock()
	s.streams.Store(&next)
	s.regMu.Unlock()
	s.syncMu.Lock()
	for _, ss := range s.syncStates {
		ss.epoch++
		ss.streams = make(map[string]*peerStreamBase)
	}
	s.syncMu.Unlock()
	return nil
}

// rebaselineForeignLocked marks a stream's entire current state as
// foreign: local share zero, so delta extraction starts from here.
func (st *stream) rebaselineForeignLocked() {
	src, err := deltaSource(st.engine)
	if err != nil {
		return // non-mergeable streams are not replicated
	}
	arms := len(st.engine.Hardware())
	dim := st.engine.Dim()
	m := st.ensureMergedLocked(arms, dim)
	if !src.modelFree {
		for a := 0; a < arms; a++ {
			cur, err := src.suff(a)
			if err != nil {
				continue
			}
			prior, err := src.prior(a)
			if err != nil {
				continue
			}
			if local, err := cur.Sub(prior); err == nil {
				m.arms[a] = local
			}
		}
	}
	m.rounds = st.engine.Round()
	m.issued, m.observed, m.failures = st.issued, st.observed, st.failures
	m.reward, m.runtime = st.rewardTotal, st.runtimeTotal
	db := make([]uint64, arms)
	for i := 0; i < arms && i < len(st.detectors); i++ {
		db[i] = st.detectors[i].Detections()
	}
	m.driftBase = db
}

// Ready reports whether the service is fully serving: false while a
// snapshot import or delta merge is in flight. Routers use this (via
// GET /v1/readyz) to hold traffic off a replica that is restoring.
func (s *Service) Ready() bool { return s.maintenance.Load() == 0 }

func (s *Service) beginMaintenance() { s.maintenance.Add(1) }
func (s *Service) endMaintenance()   { s.maintenance.Add(-1) }

// distSnap is the version-6 persisted form of a stream's mergedState,
// omitted entirely (keeping v5 bodies byte-stable) until the stream
// has absorbed foreign contributions.
type distSnap struct {
	Arms         []regress.Sufficient `json:"arms,omitempty"`
	Rounds       int                  `json:"rounds,omitempty"`
	Issued       uint64               `json:"issued,omitempty"`
	Observed     uint64               `json:"observed,omitempty"`
	RewardTotal  float64              `json:"reward_total,omitempty"`
	RuntimeTotal float64              `json:"runtime_total,omitempty"`
	Failures     uint64               `json:"failures,omitempty"`
	Drift        []uint64             `json:"drift,omitempty"`
	DriftBase    []uint64             `json:"drift_base,omitempty"`
}

// distSnapLocked returns the stream's persisted merged state, or nil
// when it has never absorbed foreign contributions.
func (st *stream) distSnapLocked() *distSnap {
	m := st.merged
	if m.empty() {
		return nil
	}
	ds := &distSnap{
		Rounds:       m.rounds,
		Issued:       m.issued,
		Observed:     m.observed,
		RewardTotal:  m.reward,
		RuntimeTotal: m.runtime,
		Failures:     m.failures,
	}
	for _, a := range m.arms {
		if !a.IsZero() {
			ds.Arms = m.arms
			break
		}
	}
	for _, d := range m.drift {
		if d != 0 {
			ds.Drift = m.drift
			break
		}
	}
	for _, d := range m.driftBase {
		if d != 0 {
			ds.DriftBase = m.driftBase
			break
		}
	}
	return ds
}

// restoreDistLocked rebuilds a stream's mergedState from its persisted
// form.
func (st *stream) restoreDistLocked(ds *distSnap) error {
	arms := len(st.engine.Hardware())
	dim := st.engine.Dim()
	if len(ds.Arms) > 0 && len(ds.Arms) != arms {
		return fmt.Errorf("%d merged arm entries for %d arms", len(ds.Arms), arms)
	}
	for i, a := range ds.Arms {
		if a.Dim != dim {
			return fmt.Errorf("merged arm %d has dimension %d, want %d", i, a.Dim, dim)
		}
		if err := a.Validate(); err != nil {
			return fmt.Errorf("merged arm %d: %w", i, err)
		}
	}
	if len(ds.Drift) > 0 && len(ds.Drift) != arms {
		return fmt.Errorf("%d merged drift counts for %d arms", len(ds.Drift), arms)
	}
	if len(ds.DriftBase) > 0 && len(ds.DriftBase) != arms {
		return fmt.Errorf("%d drift-base counts for %d arms", len(ds.DriftBase), arms)
	}
	if ds.Rounds < 0 {
		return fmt.Errorf("negative merged rounds %d", ds.Rounds)
	}
	if math.IsNaN(ds.RewardTotal) || math.IsInf(ds.RewardTotal, 0) ||
		math.IsNaN(ds.RuntimeTotal) || math.IsInf(ds.RuntimeTotal, 0) {
		return errors.New("non-finite merged totals")
	}
	m := st.ensureMergedLocked(arms, dim)
	copy(m.arms, ds.Arms)
	m.rounds = ds.Rounds
	m.issued, m.observed, m.failures = ds.Issued, ds.Observed, ds.Failures
	m.reward, m.runtime = ds.RewardTotal, ds.RuntimeTotal
	copy(m.drift, ds.Drift)
	if len(ds.DriftBase) > 0 {
		m.driftBase = append([]uint64(nil), ds.DriftBase...)
	}
	return nil
}
