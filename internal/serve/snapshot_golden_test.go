package serve

// On-disk cross-version snapshot fixtures. The in-process version tests
// (snapshot_version_test.go) synthesize old envelopes from the current
// writer; these goldens pin the same compatibility promise against
// checked-in files under testdata/snapshots/, so a loader regression
// against bytes written by an older release fails even if the writer
// and the strip helpers drift together.
//
// Regenerate with:
//
//	UPDATE_SNAPSHOT_GOLDENS=1 go test -run TestRegenerateSnapshotGoldens ./internal/serve/
//
// and review the diff — rewriting a fixture is a compatibility event.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"banditware/internal/core"
	"banditware/internal/hardware"
	"banditware/internal/schema"
)

const goldenDir = "testdata/snapshots"

// goldenClock pins saved_at in every fixture.
func goldenClock() *fakeClock { return &fakeClock{t: time.Unix(9500, 0)} }

// buildGoldenV2Service mirrors the PR 2 shape: schemaless raw-vector
// streams, a shadow, one pending ticket.
func buildGoldenV2Service(t *testing.T, clock *fakeClock) *Service {
	t.Helper()
	s := NewService(ServiceOptions{Now: clock.now, TicketTTL: time.Hour})
	if err := s.CreateStream("alg1", StreamConfig{
		Hardware: testHW(), Dim: 1, Options: core.Options{Seed: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateStream("ucb", StreamConfig{
		Hardware: testHW(), Dim: 1, Policy: PolicySpec{Type: PolicyLinUCB, Beta: 1.5},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachShadow("alg1", "ts-shadow", PolicySpec{Type: PolicyLinTS, Seed: 6}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		for _, name := range []string{"alg1", "ucb"} {
			tk, err := s.Recommend(name, []float64{float64(i%12 + 1)})
			if err != nil {
				t.Fatal(err)
			}
			if name == "alg1" && i == 29 {
				continue // leave one ticket pending
			}
			if err := s.Observe(tk.ID, float64(15+i%9*6)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s
}

// buildGoldenV1Envelope mirrors the PR 1 writer: Algorithm 1 state in
// the "bandit" field, no policy tag, one pending ticket.
func buildGoldenV1Envelope(t *testing.T) []byte {
	t.Helper()
	b, err := core.New(testHW(), 1, core.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		x := []float64{float64(i%20 + 1)}
		d, err := b.Recommend(x)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Observe(d.Arm, x, 3*x[0]+float64(d.Arm)*5); err != nil {
			t.Fatal(err)
		}
	}
	var banditState bytes.Buffer
	if err := b.SaveState(&banditState); err != nil {
		t.Fatal(err)
	}
	v1 := map[string]any{
		"format":   "banditware-service",
		"version":  1,
		"saved_at": time.Unix(9500, 0).UTC(),
		"streams": []map[string]any{{
			"name":          "legacy-v1",
			"bandit":        json.RawMessage(banditState.Bytes()),
			"max_pending":   64,
			"ticket_ttl_ns": 0,
			"next_seq":      41,
			"issued":        41,
			"observed":      40,
			"evicted":       0,
			"expired":       0,
			"pending": []map[string]any{{
				"id": "legacy-v1#28", "seq": 40, "arm": 1,
				"features": []float64{7}, "issued_at_ns": time.Unix(9499, 0).UnixNano(),
			}},
		}},
	}
	blob, err := json.MarshalIndent(v1, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(blob, '\n')
}

// buildGoldenDelta produces a deterministic peer delta for the mixed
// service's two streams: a fleet peer with the same stream set learns
// on its own traffic slice, and the delta is everything it learned.
func buildGoldenDelta(t *testing.T) []byte {
	t.Helper()
	clock := goldenClock()
	peer := NewService(ServiceOptions{Now: clock.now, TicketTTL: time.Hour})
	if err := peer.CreateStream("typed", StreamConfig{
		Hardware: testHW(), Schema: testSchemaFields(), Options: core.Options{Seed: 4},
	}); err != nil {
		t.Fatal(err)
	}
	if err := peer.CreateStream("plain", StreamConfig{
		Hardware: testHW(), Dim: 1, Policy: PolicySpec{Type: PolicyLinUCB, Beta: 2},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		ctx := schema.Context{
			Numeric:     map[string]float64{"num_tasks": float64(10 + i*31%200), "input_mb": float64(3 + i*17%500)},
			Categorical: map[string]string{"site": []string{"expanse", "nautilus", "local"}[i%3]},
		}
		if err := peer.ObserveDirectCtx("typed", i%len(testHW()), ctx, float64(12+i%11*5)); err != nil {
			t.Fatal(err)
		}
		if err := peer.ObserveDirect("plain", i%len(testHW()), []float64{float64(i%7 + 1)}, float64(25+i%6*9)); err != nil {
			t.Fatal(err)
		}
	}
	cap, err := peer.CaptureDelta(peer.NewSyncState())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRegenerateSnapshotGoldens rewrites the fixtures from the current
// writer. Skipped unless explicitly requested.
func TestRegenerateSnapshotGoldens(t *testing.T) {
	if os.Getenv("UPDATE_SNAPSHOT_GOLDENS") == "" {
		t.Skip("set UPDATE_SNAPSHOT_GOLDENS=1 to rewrite testdata/snapshots/")
	}
	if err := os.MkdirAll(goldenDir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		if err := os.WriteFile(filepath.Join(goldenDir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// v5/v4/v3 share the mixed service before any fleet merge; the
	// older envelopes are the byte-stable downgrades the version tests
	// pin. v6 is the same service after absorbing a peer's delta (the
	// dist blocks appear; the v6 body is the v7 save re-versioned,
	// which the byte-stable upgrade promise makes exact for static arm
	// sets), and v6-delta.json is that delta envelope itself (the delta
	// wire format is unchanged in v7). v7.json and v7-churn.json pin
	// the current writer: a cache-enabled service, and one that churned
	// its arm set mid-traffic.
	mixed, _ := buildMixedService(t, goldenClock())
	var single bytes.Buffer
	if err := mixed.Save(&single); err != nil {
		t.Fatal(err)
	}
	write("v5.json", reversion(t, single.Bytes(), 7, 5))
	write("v4.json", stripDriftBlocks(t, reversion(t, single.Bytes(), 7, 4)))
	write("v3.json", stripRewardFields(stripDriftBlocks(t, reversion(t, single.Bytes(), 7, 3))))

	delta := buildGoldenDelta(t)
	// Delta envelopes are compact JSON, so the version marker has no
	// space (reversion expects the indented form).
	v6delta := bytes.Replace(delta, []byte(`"version":7`), []byte(`"version":6`), 1)
	if bytes.Equal(v6delta, delta) {
		t.Fatal("delta version marker not found")
	}
	write("v6-delta.json", v6delta)
	if _, err := mixed.ApplyDelta(bytes.NewReader(delta)); err != nil {
		t.Fatal(err)
	}
	var v6 bytes.Buffer
	if err := mixed.Save(&v6); err != nil {
		t.Fatal(err)
	}
	write("v6.json", reversion(t, v6.Bytes(), 7, 6))

	var v2cur bytes.Buffer
	if err := buildGoldenV2Service(t, goldenClock()).Save(&v2cur); err != nil {
		t.Fatal(err)
	}
	write("v2.json", stripRewardFields(stripDriftBlocks(t, reversion(t, v2cur.Bytes(), 7, 2))))

	write("v1.json", buildGoldenV1Envelope(t))

	var v7 bytes.Buffer
	if err := buildGoldenV7Service(t, goldenClock(), false).Save(&v7); err != nil {
		t.Fatal(err)
	}
	write("v7.json", v7.Bytes())
	var churn bytes.Buffer
	if err := buildGoldenV7Service(t, goldenClock(), true).Save(&churn); err != nil {
		t.Fatal(err)
	}
	write("v7-churn.json", churn.Bytes())
}

// buildGoldenV7Service mirrors the PR 9 additions: a cache-enabled
// stream, and — with churn — a mid-traffic arm add (warm-started),
// drain, and trial add, so the v7 "arms" and "cache" blocks are
// exercised with non-steady state.
func buildGoldenV7Service(t *testing.T, clock *fakeClock, churn bool) *Service {
	t.Helper()
	s := NewService(ServiceOptions{Now: clock.now, TicketTTL: time.Hour})
	if err := s.CreateStream("cached", StreamConfig{
		Hardware: testHW(), Dim: 1,
		Options: core.Options{Seed: 11, ZeroEpsilon: true},
		Cache:   &CacheSpec{Capacity: 64, Budget: 0.25, Bits: 16},
	}); err != nil {
		t.Fatal(err)
	}
	serve := func(rounds int) {
		t.Helper()
		for i := 0; i < rounds; i++ {
			tk, err := s.Recommend("cached", []float64{float64(i%6 + 1)})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Observe(tk.ID, float64(20+i%9*4+tk.Arm*7)); err != nil {
				t.Fatal(err)
			}
		}
	}
	serve(40)
	if !churn {
		return s
	}
	if _, err := s.AddArm("cached", ArmAdd{
		Hardware: hardware.Config{Name: "fresh", CPUs: 16, MemoryGB: 64},
		Warm:     "pooled",
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.DrainArm("cached", 0); err != nil {
		t.Fatal(err)
	}
	serve(20)
	if _, err := s.AddArm("cached", ArmAdd{
		Hardware: hardware.Config{Name: "probe", CPUs: 4, MemoryGB: 16, GPUs: 1},
		Warm:     "nearest", Trial: true,
	}); err != nil {
		t.Fatal(err)
	}
	serve(10)
	return s
}

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(goldenDir, name))
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with UPDATE_SNAPSHOT_GOLDENS=1): %v", err)
	}
	return data
}

// TestSnapshotGoldenFixtures loads every checked-in envelope version
// into the current service and pins per-version facts plus the upgrade
// promises: v7 and v7-churn round-trip byte-for-byte (arms/cache
// blocks included); the delta fixture is rejected by Load, applied by
// ApplyDelta, and reproduces the v6 fixture from the v5 one; v2–v6
// re-save as a v7 that differs from the fixture only in its version
// marker; v1 upgrades with models, counters, and pending tickets
// intact.
func TestSnapshotGoldenFixtures(t *testing.T) {
	load := func(t *testing.T, name string) *Service {
		t.Helper()
		s, err := Load(bytes.NewReader(readGolden(t, name)), ServiceOptions{Now: goldenClock().now})
		if err != nil {
			t.Fatalf("loading %s: %v", name, err)
		}
		return s
	}
	resave := func(t *testing.T, s *Service) []byte {
		t.Helper()
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	t.Run("v6", func(t *testing.T) {
		fixture := readGolden(t, "v6.json")
		s := load(t, "v6.json")
		if !bytes.Equal(resave(t, s), reversion(t, fixture, 6, 7)) {
			t.Fatal("v6 → v7 upgrade is not byte-stable modulo the version marker")
		}
		info, err := s.StreamInfo("typed")
		if err != nil {
			t.Fatal(err)
		}
		if info.Schema == nil || len(info.Shadows) != 1 || info.Pending != 5 {
			t.Fatalf("v6 restore info = %+v", info)
		}
		if !bytes.Contains(fixture, []byte(`"drift"`)) {
			t.Fatal("v6 fixture lost its drift blocks")
		}
		// The fixture service absorbed a fleet peer's delta, so its dist
		// blocks (the foreign-contribution accounting) must survive the
		// round trip.
		if !bytes.Contains(fixture, []byte(`"dist"`)) {
			t.Fatal("v6 fixture lost its dist blocks")
		}
	})

	t.Run("v6-delta.json", func(t *testing.T) {
		fixture := readGolden(t, "v6-delta.json")
		// A delta envelope is not a snapshot: Load must refuse it …
		if _, err := Load(bytes.NewReader(fixture), ServiceOptions{}); err == nil {
			t.Fatal("Load accepted a delta envelope")
		}
		// … while ApplyDelta consumes it. Applying to the pre-merge v5
		// service reproduces the v6 fixture's fleet state.
		s := load(t, "v5.json")
		stats, err := s.ApplyDelta(bytes.NewReader(fixture))
		if err != nil {
			t.Fatal(err)
		}
		if stats.Streams != 2 || stats.Arms == 0 || stats.Rounds == 0 || len(stats.SkippedUnknown) != 0 {
			t.Fatalf("delta fixture stats = %+v", stats)
		}
		if !bytes.Equal(resave(t, s), reversion(t, readGolden(t, "v6.json"), 6, 7)) {
			t.Fatal("v5 fixture + delta fixture does not reproduce the v6 fixture")
		}
	})

	for _, tc := range []struct {
		name    string
		version int
	}{{"v5.json", 5}, {"v4.json", 4}, {"v3.json", 3}, {"v2.json", 2}} {
		t.Run(tc.name, func(t *testing.T) {
			fixture := readGolden(t, tc.name)
			s := load(t, tc.name)
			if got, want := resave(t, s), reversion(t, fixture, tc.version, 7); !bytes.Equal(got, want) {
				t.Fatalf("%s → v7 upgrade is not byte-stable modulo the version marker", tc.name)
			}
			name := "typed"
			if tc.version == 2 {
				name = "alg1"
			}
			info, err := s.StreamInfo(name)
			if err != nil {
				t.Fatal(err)
			}
			if info.Reward.Type != RewardRuntime {
				t.Fatalf("%s restore reward = %+v, want runtime default", tc.name, info.Reward)
			}
			// v4 carried reward aggregates; the pre-reward envelopes
			// restart them at zero.
			if tc.version >= 4 && info.RewardTotal == 0 {
				t.Fatalf("%s restore dropped reward aggregates: %+v", tc.name, info)
			}
			if tc.version < 4 && info.RewardTotal != 0 {
				t.Fatalf("%s restore invented reward aggregates: %+v", tc.name, info)
			}
			if len(info.Shadows) != 1 {
				t.Fatalf("%s restore lost shadows: %+v", tc.name, info)
			}
		})
	}

	t.Run("v1.json", func(t *testing.T) {
		s := load(t, "v1.json")
		info, err := s.StreamInfo("legacy-v1")
		if err != nil {
			t.Fatal(err)
		}
		if info.Policy != PolicyAlgorithm1 || info.Round != 40 || info.Issued != 41 || info.Pending != 1 {
			t.Fatalf("v1 restore info = %+v", info)
		}
		if err := s.Observe("legacy-v1#28", 42); err != nil {
			t.Fatalf("v1 pending ticket lost: %v", err)
		}
		if !bytes.Contains(resave(t, s), []byte(`"version": 7`)) {
			t.Fatal("v1 re-save is not a v7 envelope")
		}
	})

	t.Run("v7.json", func(t *testing.T) {
		fixture := readGolden(t, "v7.json")
		s := load(t, "v7.json")
		if !bytes.Equal(resave(t, s), fixture) {
			t.Fatal("v7 fixture does not round-trip byte-for-byte")
		}
		if !bytes.Contains(fixture, []byte(`"cache"`)) {
			t.Fatal("v7 fixture lost its cache block")
		}
		info, err := s.StreamInfo("cached")
		if err != nil {
			t.Fatal(err)
		}
		if info.Cache == nil || info.Cache.Hits == 0 {
			t.Fatalf("v7 restore lost cache counters: %+v", info.Cache)
		}
		if info.ArmStates != nil {
			t.Fatalf("static v7 fixture restored arm states %v", info.ArmStates)
		}
	})

	t.Run("v7-churn.json", func(t *testing.T) {
		fixture := readGolden(t, "v7-churn.json")
		s := load(t, "v7-churn.json")
		if !bytes.Equal(resave(t, s), fixture) {
			t.Fatal("v7-churn fixture does not round-trip byte-for-byte")
		}
		if !bytes.Contains(fixture, []byte(`"arms"`)) {
			t.Fatal("v7-churn fixture lost its arms block")
		}
		info, err := s.StreamInfo("cached")
		if err != nil {
			t.Fatal(err)
		}
		want := []string{"draining", "active", "active", "active", "trial"}
		if len(info.ArmStates) != len(want) {
			t.Fatalf("v7-churn restore arm states = %v, want %v", info.ArmStates, want)
		}
		for i, st := range want {
			if info.ArmStates[i] != st {
				t.Fatalf("v7-churn restore arm states = %v, want %v", info.ArmStates, want)
			}
		}
		// The restored stream keeps serving under its lifecycle: the
		// draining arm 0 and trial arm 4 never take live traffic.
		for i := 0; i < 30; i++ {
			tk, err := s.Recommend("cached", []float64{float64(i%6 + 1)})
			if err != nil {
				t.Fatal(err)
			}
			if tk.Arm == 0 || tk.Arm == 4 {
				t.Fatalf("non-servable arm %d issued on restored stream", tk.Arm)
			}
		}
	})
}
