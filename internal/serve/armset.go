package serve

import (
	"errors"
	"fmt"
	"math"

	"banditware/internal/armset"
	"banditware/internal/core"
	"banditware/internal/hardware"
	"banditware/internal/policy"
	"banditware/internal/regress"
)

// Arm-set elasticity: runtime add / drain / promote / retire of a
// stream's hardware configurations, plus the per-stream recommendation
// cache. The lifecycle state machine itself lives in internal/armset;
// this file threads it through the serving layer — growing engines and
// shadows in place, warm-starting new arms from existing sufficient
// statistics, keeping the delta-sync baselines index-aligned across a
// retire, and invalidating the cache whenever positional arm indices
// change meaning.

// ArmEditor is an optional Engine extension for arm-set elasticity:
// AddArm appends one untrained arm for a new hardware configuration and
// RemoveArm retires arm i, shifting later indices down by one. Both
// engine families implement it (for policy engines, only when the
// underlying policy does — Oracle cannot be grown).
type ArmEditor interface {
	AddArm(cfg hardware.Config) error
	RemoveArm(arm int) error
}

// AddArm implements ArmEditor, shadowing the embedded bandit's
// (int, error) signature.
func (e banditEngine) AddArm(cfg hardware.Config) error {
	_, err := e.Bandit.AddArm(cfg)
	return err
}

// RemoveArm implements ArmEditor.
func (e banditEngine) RemoveArm(arm int) error { return e.Bandit.RemoveArm(arm) }

// AddArm implements ArmEditor for policies that support arm editing.
func (e *policyEngine) AddArm(cfg hardware.Config) error {
	ed, ok := e.p.(policy.ArmEditor)
	if !ok {
		return fmt.Errorf("%w (%s)", ErrUnsupported, e.spec.Type)
	}
	hw := append(append(hardware.Set{}, e.hw...), cfg)
	if err := hw.Validate(); err != nil {
		return err
	}
	if err := ed.AddArm(); err != nil {
		return mapPolicyErr(err)
	}
	e.hw = hw
	return nil
}

// RemoveArm implements ArmEditor for policies that support arm editing.
func (e *policyEngine) RemoveArm(arm int) error {
	ed, ok := e.p.(policy.ArmEditor)
	if !ok {
		return fmt.Errorf("%w (%s)", ErrUnsupported, e.spec.Type)
	}
	if err := ed.RemoveArm(arm); err != nil {
		return mapPolicyErr(err)
	}
	e.hw = append(append(hardware.Set{}, e.hw[:arm]...), e.hw[arm+1:]...)
	return nil
}

// Arm lifecycle errors.
var (
	// ErrArmNotFound reports an arm index outside the stream's current
	// set. HTTP maps it to 404.
	ErrArmNotFound = errors.New("serve: arm not found")
	// ErrArmLifecycle reports a lifecycle transition the arm's current
	// status does not allow (retiring an active arm, draining the last
	// active arm, ...). HTTP maps it to 422.
	ErrArmLifecycle = errors.New("serve: arm lifecycle transition rejected")
	// ErrBadArmRequest reports a semantically invalid arm request
	// (unknown warm mode, duplicate hardware name, out-of-range warm
	// weight). HTTP maps it to 422.
	ErrBadArmRequest = errors.New("serve: invalid arm request")
)

// mapArmsetErr translates armset sentinels into the service vocabulary.
func mapArmsetErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, armset.ErrArm):
		return fmt.Errorf("%w: %v", ErrArmNotFound, err)
	case errors.Is(err, armset.ErrState), errors.Is(err, armset.ErrLastActive):
		return fmt.Errorf("%w: %v", ErrArmLifecycle, err)
	}
	return err
}

// defaultWarmWeight scales a warm-started arm's seed statistics when the
// request does not say: a quarter of the donor mass is enough to rank
// sanely from the first request without drowning the arm's own data.
const defaultWarmWeight = 0.25

// ArmAdd describes one arm addition.
type ArmAdd struct {
	// Hardware is the new arm's configuration (name must be unique in
	// the stream's set).
	Hardware hardware.Config
	// Warm selects how the new arm's estimator is seeded: "" or "cold"
	// (ridge prior only), "pooled" (scaled average of every existing
	// arm's learned statistics), or "nearest" (scaled statistics of the
	// arm closest in hardware feature space). Warm starts degrade to
	// cold on engines whose state is not mergeable (windowed,
	// forgetting, model-free).
	Warm string
	// WarmWeight scales the donor statistics, in (0, 1]; 0 selects
	// defaultWarmWeight.
	WarmWeight float64
	// Trial adds the arm in the Trial state: it exists in the engine
	// and learns (warm start, direct observes, shadow replay) but is
	// never chosen for live traffic until promoted.
	Trial bool
}

// ArmInfo is one arm's listing entry.
type ArmInfo struct {
	Arm      int    `json:"arm"`
	Hardware string `json:"hardware"`
	Status   string `json:"status"`
}

// Arms lists the named stream's arms with their lifecycle status.
func (s *Service) Arms(name string) ([]ArmInfo, error) {
	st, err := s.stream(name)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]ArmInfo, len(st.armLabels))
	for i, label := range st.armLabels {
		out[i] = ArmInfo{Arm: i, Hardware: label, Status: st.life.Status(i).String()}
	}
	return out, nil
}

// AddArm grows the named stream with one new hardware configuration at
// runtime — no stream recreation, no lost state. The engine and every
// shadow gain an estimator for the new arm; the warm-start mode seeds it
// from existing arms' statistics where the engine supports merging.
// Returns the new arm's index.
func (s *Service) AddArm(name string, add ArmAdd) (int, error) {
	warm, err := armset.ParseWarm(add.Warm)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadArmRequest, err)
	}
	weight := add.WarmWeight
	if weight == 0 {
		weight = defaultWarmWeight
	}
	if weight < 0 || weight > 1 || math.IsNaN(weight) {
		return 0, fmt.Errorf("%w: warm weight %v outside (0, 1]", ErrBadArmRequest, add.WarmWeight)
	}
	st, err := s.stream(name)
	if err != nil {
		return 0, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.addArmLocked(add.Hardware, warm, weight, add.Trial)
}

// addArmLocked grows the engine, shadows, and per-arm bookkeeping by one
// arm. Callers hold st.mu.
func (st *stream) addArmLocked(cfg hardware.Config, warm armset.Warm, weight float64, trial bool) (int, error) {
	ed, ok := st.engine.(ArmEditor)
	if !ok {
		return 0, fmt.Errorf("%w (%s)", ErrUnsupported, st.engine.Kind())
	}
	// Nothing mutates until every participant is known editable and the
	// grown hardware set validates, so a rejected add leaves the stream
	// exactly as it was.
	for _, sh := range st.shadows {
		if _, ok := sh.engine.(ArmEditor); !ok {
			return 0, fmt.Errorf("%w: shadow %q policy %s cannot grow its arm set",
				ErrUnsupported, sh.name, sh.engine.Kind())
		}
	}
	grown := append(append(hardware.Set{}, st.engine.Hardware()...), cfg)
	if err := grown.Validate(); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadArmRequest, err)
	}
	// The warm mass is resolved before the arm set changes: nearest-
	// neighbor distance and the pooled average run over the pre-add set.
	warmMass, haveWarm := st.warmMassLocked(cfg, warm, weight)

	if err := ed.AddArm(cfg); err != nil {
		return 0, err
	}
	for _, sh := range st.shadows {
		// Pre-checked editable above; the grown set already validated, so
		// a failure here is unreachable — but a shadow is advisory state,
		// never worth failing the stream's add over.
		_ = sh.engine.(ArmEditor).AddArm(cfg)
	}
	idx := len(st.engine.Hardware()) - 1
	st.armLabels = append(st.armLabels, cfg.String())
	st.detectors = append(st.detectors, newDetectors(st.adapt, 1)...)
	if st.armGen != nil {
		st.armGen = append(st.armGen, 0)
	}
	if st.merged != nil {
		st.merged.arms = append(st.merged.arms, regress.Sufficient{Dim: st.engine.Dim()})
		st.merged.drift = append(st.merged.drift, 0)
		if st.merged.driftBase != nil {
			st.merged.driftBase = append(st.merged.driftBase, 0)
		}
	}
	st.life.Add(trial)
	if haveWarm {
		if src, err := deltaSource(st.engine); err == nil && src.merge != nil {
			if err := src.merge(idx, warmMass); err == nil {
				// The warm seed is borrowed knowledge, not local traffic:
				// record it as foreign so delta capture never ships it and
				// fleet merges stay echo-free.
				m := st.ensureMergedLocked(len(st.engine.Hardware()), st.engine.Dim())
				if sum, err := m.arms[idx].Add(warmMass); err == nil {
					m.arms[idx] = sum
				}
			}
		}
	}
	st.invalidateCacheLocked()
	return idx, nil
}

// warmMassLocked resolves the scaled donor statistics for a new arm, or
// (zero, false) when the warm start degrades to cold — cold mode, a
// non-mergeable engine, or no donor with any learned mass. Callers hold
// st.mu and call before the arm set grows.
func (st *stream) warmMassLocked(cfg hardware.Config, warm armset.Warm, weight float64) (regress.Sufficient, bool) {
	if warm == armset.WarmCold {
		return regress.Sufficient{}, false
	}
	src, err := deltaSource(st.engine)
	if err != nil || src.modelFree {
		return regress.Sufficient{}, false
	}
	hw := st.engine.Hardware()
	dim := st.engine.Dim()
	// learned is an arm's full data mass — everything above the ridge
	// prior, local and fleet-merged alike — the most informed seed
	// available on this replica.
	learned := func(a int) (regress.Sufficient, bool) {
		cur, err := src.suff(a)
		if err != nil {
			return regress.Sufficient{}, false
		}
		prior, err := src.prior(a)
		if err != nil {
			return regress.Sufficient{}, false
		}
		l, err := cur.Sub(prior)
		if err != nil {
			return regress.Sufficient{}, false
		}
		return l, true
	}
	var donor regress.Sufficient
	switch warm {
	case armset.WarmNearest:
		nn := armset.Nearest(hw, cfg, nil)
		if nn < 0 {
			return regress.Sufficient{}, false
		}
		d, ok := learned(nn)
		if !ok {
			return regress.Sufficient{}, false
		}
		donor = d
	case armset.WarmPooled:
		sum := regress.Sufficient{Dim: dim}
		n := 0
		for a := range hw {
			d, ok := learned(a)
			if !ok {
				continue
			}
			s2, err := sum.Add(d)
			if err != nil {
				continue
			}
			sum, n = s2, n+1
		}
		if n == 0 {
			return regress.Sufficient{}, false
		}
		donor = scaleSufficient(sum, 1/float64(n))
	}
	mass := scaleSufficient(donor, weight)
	if mass.IsZero() {
		return regress.Sufficient{}, false
	}
	return mass, true
}

// scaleSufficient multiplies a sufficient-statistic block by w, rounding
// the observation count to the nearest integer. A nonnegative scale of a
// data Gram mass stays positive semidefinite, so the result is always
// mergeable.
func scaleSufficient(s regress.Sufficient, w float64) regress.Sufficient {
	if s.IsZero() {
		return regress.Sufficient{Dim: s.Dim}
	}
	out := regress.Sufficient{
		Dim: s.Dim,
		N:   int(float64(s.N)*w + 0.5),
		A:   make([]float64, len(s.A)),
		B:   make([]float64, len(s.B)),
	}
	for i, v := range s.A {
		out.A[i] = v * w
	}
	for i, v := range s.B {
		out.B[i] = v * w
	}
	return out
}

// DrainArm moves an arm out of live serving: recommendations reroute to
// the remaining active arms while pending tickets still resolve and the
// arm keeps learning. Draining the last active arm is rejected.
func (s *Service) DrainArm(name string, arm int) error {
	st, err := s.stream(name)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.life.Drain(arm); err != nil {
		return mapArmsetErr(err)
	}
	st.invalidateCacheLocked()
	return nil
}

// PromoteArm moves a Trial or Draining arm back into live serving.
func (s *Service) PromoteArm(name string, arm int) error {
	st, err := s.stream(name)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.life.Promote(arm); err != nil {
		return mapArmsetErr(err)
	}
	st.invalidateCacheLocked()
	return nil
}

// RetireArm removes a Draining or Trial arm from the named stream
// entirely: the engine and every shadow drop its estimator, later arms'
// indices shift down by one, pending tickets on the arm are evicted
// (their runtimes can no longer train anything), and every delta-sync
// baseline is spliced in step so fleet syncs stay aligned. An Active arm
// must be drained first.
func (s *Service) RetireArm(name string, arm int) error {
	st, err := s.stream(name)
	if err != nil {
		return err
	}
	// Lock order matches CaptureDelta: syncMu, then the stream — the
	// per-peer baselines must be spliced under the same cut as the arm
	// set, or a concurrent capture would pair stale baselines with the
	// shifted arm indices.
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.retireArmLocked(s, arm)
}

// retireArmLocked removes one arm everywhere. Callers hold s.syncMu and
// st.mu, in that order.
func (st *stream) retireArmLocked(s *Service, arm int) error {
	ed, ok := st.engine.(ArmEditor)
	if !ok {
		return fmt.Errorf("%w (%s)", ErrUnsupported, st.engine.Kind())
	}
	for _, sh := range st.shadows {
		if _, ok := sh.engine.(ArmEditor); !ok {
			return fmt.Errorf("%w: shadow %q policy %s cannot shrink its arm set",
				ErrUnsupported, sh.name, sh.engine.Kind())
		}
	}
	// The lifecycle validates the transition (Draining or Trial only,
	// never the last arm standing) and is the first mutation; everything
	// after cannot fail.
	if err := st.life.Retire(arm); err != nil {
		return mapArmsetErr(err)
	}
	if err := ed.RemoveArm(arm); err != nil {
		return err
	}
	for _, sh := range st.shadows {
		_ = sh.engine.(ArmEditor).RemoveArm(arm)
	}
	st.armLabels = append(st.armLabels[:arm], st.armLabels[arm+1:]...)
	st.detectors = append(st.detectors[:arm], st.detectors[arm+1:]...)
	if st.armGen != nil && arm < len(st.armGen) {
		st.armGen = append(st.armGen[:arm], st.armGen[arm+1:]...)
	}
	if m := st.merged; m != nil {
		if arm < len(m.arms) {
			m.arms = append(m.arms[:arm], m.arms[arm+1:]...)
		}
		if arm < len(m.drift) {
			m.drift = append(m.drift[:arm], m.drift[arm+1:]...)
		}
		if arm < len(m.driftBase) {
			m.driftBase = append(m.driftBase[:arm], m.driftBase[arm+1:]...)
		}
	}
	// Per-peer sync baselines splice in step, so the next capture
	// compares index-aligned slices instead of re-anchoring every arm
	// above the retired one.
	for _, ss := range s.syncStates {
		pb := ss.streams[st.name]
		if pb == nil {
			continue
		}
		if arm < len(pb.arms) {
			pb.arms = append(pb.arms[:arm], pb.arms[arm+1:]...)
		}
		if arm < len(pb.gens) {
			pb.gens = append(pb.gens[:arm], pb.gens[arm+1:]...)
		}
		if arm < len(pb.drift) {
			pb.drift = append(pb.drift[:arm], pb.drift[arm+1:]...)
		}
	}
	st.ledger.retireArm(arm)
	st.invalidateCacheLocked()
	return nil
}

// rerouteLocked redirects a decision that landed on a non-servable
// (draining or trial) arm to the best active arm: lowest predicted
// runtime where the engine has a model, lowest-index active arm
// otherwise. Callers hold st.mu; the lifecycle guarantees at least one
// active arm exists.
func (st *stream) rerouteLocked(d core.Decision, x []float64) core.Decision {
	active := st.life.ActiveIndices()
	if len(active) == 0 {
		return d
	}
	preds := d.Predicted
	if preds == nil {
		if p, err := st.engine.PredictAll(x); err == nil {
			preds = p
		}
	}
	best := active[0]
	if best < len(preds) {
		for _, a := range active[1:] {
			if a < len(preds) && preds[a] < preds[best] {
				best = a
			}
		}
	}
	d.Arm = best
	return d
}

// --- recommendation cache --------------------------------------------

// CacheSpec configures a stream's recommendation cache: a bounded
// context-fingerprint → arm map serving repeated exploit decisions in
// O(1) without touching the policy. Zero fields take the armset
// defaults. The cache treats whatever the engine returned as the
// decision to replay (for non-Algorithm 1 policies, which do not report
// their exploration branch, a stochastic pick may be cached); the
// exploration budget routes that fraction of would-be hits back to the
// policy so learning never starves.
type CacheSpec struct {
	// Capacity bounds the number of cached fingerprints (FIFO
	// eviction); 0 selects armset.DefaultCacheCapacity.
	Capacity int `json:"capacity,omitempty"`
	// Budget is the exploration fall-through rate in [0, 1); 0 selects
	// armset.DefaultCacheBudget.
	Budget float64 `json:"budget,omitempty"`
	// Bits is the number of float64 mantissa bits retained when
	// fingerprinting a context (1..52); 0 selects
	// armset.DefaultCacheBits.
	Bits int `json:"bits,omitempty"`
}

// compile builds the cache and returns the canonical (default-filled)
// spec the stream persists and reports.
func (cs CacheSpec) compile() (*armset.Cache, CacheSpec, error) {
	c, err := armset.NewCache(armset.CacheConfig{Capacity: cs.Capacity, Budget: cs.Budget, Bits: cs.Bits})
	if err != nil {
		return nil, CacheSpec{}, err
	}
	cfg := c.Config()
	return c, CacheSpec{Capacity: cfg.Capacity, Budget: cfg.Budget, Bits: cfg.Bits}, nil
}

// CacheInfo is the live state of a stream's recommendation cache.
type CacheInfo struct {
	Capacity int     `json:"capacity"`
	Budget   float64 `json:"budget"`
	Bits     int     `json:"bits"`
	Size     int     `json:"size"`
	// Hits served from the cache; Misses consulted the policy because
	// the fingerprint was absent; Fallthroughs consulted it although
	// present, spending the exploration budget. Counters are
	// per-replica serving history: they survive invalidation and are
	// never carried in delta envelopes (they are not additive fleet
	// state).
	Hits         uint64 `json:"hits"`
	Misses       uint64 `json:"misses"`
	Fallthroughs uint64 `json:"fallthroughs"`
}

// invalidateCacheLocked drops every cached decision (counters survive).
// Called on any arm-set change — cached arm indices are positional — and
// on drift resets, where the model behind them changed wholesale.
// Callers hold st.mu.
func (st *stream) invalidateCacheLocked() {
	if st.cache != nil {
		st.cache.Reset()
	}
}

// armStatesLocked renders the per-arm lifecycle statuses, or nil while
// every arm is active (the steady state, omitted from info and
// snapshots). Callers hold st.mu.
func (st *stream) armStatesLocked() []string {
	if st.life.AllActive() {
		return nil
	}
	statuses := st.life.Statuses()
	out := make([]string, len(statuses))
	for i, s := range statuses {
		out[i] = s.String()
	}
	return out
}

// cacheInfoLocked summarises the stream's cache, or nil when it has
// none. Callers hold st.mu.
func (st *stream) cacheInfoLocked() *CacheInfo {
	if st.cache == nil {
		return nil
	}
	cfg := st.cache.Config()
	h, m, f := st.cache.Counters()
	return &CacheInfo{
		Capacity:     cfg.Capacity,
		Budget:       cfg.Budget,
		Bits:         cfg.Bits,
		Size:         st.cache.Len(),
		Hits:         h,
		Misses:       m,
		Fallthroughs: f,
	}
}
