package serve

import (
	"net/http"
	"testing"
)

// armListing is the wire shape of every arm-lifecycle response.
type armListing struct {
	Stream string    `json:"stream"`
	Arm    int       `json:"arm"`
	Arms   []ArmInfo `json:"arms"`
}

// TestHTTPArmLifecycle walks one hardware rollout over the wire: list,
// add (201), drain, promote, retire, and the status-code mapping for
// every rejection class (404 unknown arm, 422 lifecycle/validation, 400
// non-integer index).
func TestHTTPArmLifecycle(t *testing.T) {
	_, srv := newTestServer(t)
	createJobsStream(t, srv.URL)
	base := srv.URL + "/v1/streams/jobs/arms"

	var list armListing
	if code := doJSON(t, "GET", base, nil, &list); code != http.StatusOK {
		t.Fatalf("list arms: status %d", code)
	}
	if len(list.Arms) != 3 || list.Arms[0].Status != "active" {
		t.Fatalf("initial listing: %+v", list.Arms)
	}

	// Add via the CLI string form, in the trial state.
	var added armListing
	if code := doJSON(t, "POST", base, map[string]any{
		"hardware_spec": "H3=8x64", "warm": "pooled", "trial": true,
	}, &added); code != http.StatusCreated {
		t.Fatalf("add arm: status %d (%+v)", code, added)
	}
	if added.Arm != 3 || len(added.Arms) != 4 || added.Arms[3].Status != "trial" {
		t.Fatalf("add response: %+v", added)
	}

	// Add via the structured form.
	if code := doJSON(t, "POST", base, map[string]any{
		"hardware": map[string]any{"name": "H4", "cpus": 6, "memory_gb": 48},
	}, &added); code != http.StatusCreated {
		t.Fatalf("structured add: status %d", code)
	}
	if added.Arm != 4 || added.Arms[4].Status != "active" {
		t.Fatalf("structured add response: %+v", added)
	}

	var out armListing
	if code := doJSON(t, "POST", base+"/3/promote", nil, &out); code != http.StatusOK {
		t.Fatalf("promote: status %d", code)
	}
	if out.Arms[3].Status != "active" {
		t.Fatalf("post-promote listing: %+v", out.Arms)
	}
	if code := doJSON(t, "POST", base+"/3/drain", nil, &out); code != http.StatusOK {
		t.Fatalf("drain: status %d", code)
	}
	if out.Arms[3].Status != "draining" {
		t.Fatalf("post-drain listing: %+v", out.Arms)
	}
	if code := doJSON(t, "DELETE", base+"/3", nil, &out); code != http.StatusOK {
		t.Fatalf("retire: status %d", code)
	}
	if len(out.Arms) != 4 || out.Arms[3].Hardware != "H4(6,48)" {
		t.Fatalf("post-retire listing: %+v", out.Arms)
	}

	// Rejections.
	var errResp map[string]any
	if code := doJSON(t, "POST", base+"/9/drain", nil, &errResp); code != http.StatusNotFound {
		t.Fatalf("drain unknown arm: status %d (%v)", code, errResp)
	}
	if code := doJSON(t, "DELETE", base+"/0", nil, &errResp); code != http.StatusUnprocessableEntity {
		t.Fatalf("retire active arm: status %d (%v)", code, errResp)
	}
	if code := doJSON(t, "POST", base+"/first/drain", nil, &errResp); code != http.StatusBadRequest {
		t.Fatalf("non-integer arm index: status %d (%v)", code, errResp)
	}
	if code := doJSON(t, "POST", base, map[string]any{
		"hardware_spec": "H9=8x64", "warm": "sideways",
	}, &errResp); code != http.StatusUnprocessableEntity {
		t.Fatalf("unknown warm mode: status %d (%v)", code, errResp)
	}
	if code := doJSON(t, "POST", base, map[string]any{
		"hardware":      map[string]any{"name": "H9", "cpus": 6, "memory_gb": 48},
		"hardware_spec": "H9=6x48",
	}, &errResp); code != http.StatusUnprocessableEntity {
		t.Fatalf("both hardware forms: status %d (%v)", code, errResp)
	}
	if code := doJSON(t, "POST", base, map[string]any{}, &errResp); code != http.StatusUnprocessableEntity {
		t.Fatalf("neither hardware form: status %d (%v)", code, errResp)
	}
	if code := doJSON(t, "POST", base, map[string]any{
		"hardware_spec": "H0=2x16",
	}, &errResp); code != http.StatusUnprocessableEntity {
		t.Fatalf("duplicate hardware name: status %d (%v)", code, errResp)
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/streams/ghost/arms", nil, &errResp); code != http.StatusNotFound {
		t.Fatalf("arms of unknown stream: status %d (%v)", code, errResp)
	}
}

// TestHTTPStreamInfoCarriesArmState: arm states and cache counters flow
// through the stream-info and stats endpoints.
func TestHTTPStreamInfoCarriesArmState(t *testing.T) {
	svc, srv := newTestServer(t)
	var info StreamInfo
	if code := doJSON(t, "POST", srv.URL+"/v1/streams", map[string]any{
		"name": "jobs", "hardware_spec": "H0=2x16;H1=3x24", "dim": 1, "seed": 1,
		"cache": map[string]any{"capacity": 32, "budget": 0.5, "bits": 12},
	}, &info); code != http.StatusCreated {
		t.Fatalf("create stream: status %d", code)
	}
	if info.Cache == nil || info.Cache.Capacity != 32 || info.Cache.Bits != 12 {
		t.Fatalf("create response cache block: %+v", info.Cache)
	}
	if err := svc.DrainArm("jobs", 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		tk, err := svc.Recommend("jobs", []float64{2})
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Observe(tk.ID, 30); err != nil {
			t.Fatal(err)
		}
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/streams/jobs", nil, &info); code != http.StatusOK {
		t.Fatalf("stream info: status %d", code)
	}
	if len(info.ArmStates) != 2 || info.ArmStates[0] != "draining" {
		t.Fatalf("arm states over the wire: %v", info.ArmStates)
	}
	if info.Cache == nil || info.Cache.Hits+info.Cache.Misses+info.Cache.Fallthroughs == 0 {
		t.Fatalf("cache counters over the wire: %+v", info.Cache)
	}
	var stats Stats
	if code := doJSON(t, "GET", srv.URL+"/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.TotalCacheHits != info.Cache.Hits || stats.TotalCacheMisses != info.Cache.Misses {
		t.Fatalf("stats cache totals (%d, %d) != stream counters (%d, %d)",
			stats.TotalCacheHits, stats.TotalCacheMisses, info.Cache.Hits, info.Cache.Misses)
	}
}
