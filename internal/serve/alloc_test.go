package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"banditware/internal/core"
	"banditware/internal/schema"
)

// Allocation pins for the serving hot path. The zero-allocation
// contract (RecommendInto / RecommendCtxInto / ObserveSeq /
// ObserveOutcome at 0 allocs/op steady-state) is the PR's tentpole;
// these tests fail the build the moment a change re-introduces a
// per-request allocation. The classic and HTTP paths allocate by
// contract (fresh Ticket, rendered ID, JSON codec) — their pins are
// exact current values, failing only on increase.

// warmCycles runs enough recommend/observe cycles to reach the
// steady state: scratch buffers grown, ledger freelist populated,
// RLS factors allocated, ε decayed past the exploration phase.
const warmCycles = 512

func pinAllocs(t *testing.T, name string, pin float64, f func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	if got := testing.AllocsPerRun(200, f); got > pin {
		t.Errorf("%s: %.1f allocs/op, pinned at %.1f — the hot path regressed", name, got, pin)
	}
}

func TestAllocRecommendObserveSeqZero(t *testing.T) {
	s := newTestService(t, ServiceOptions{}, "hot")
	x := []float64{1.5}
	var tk Ticket
	for i := 0; i < warmCycles; i++ {
		if err := s.RecommendInto("hot", x, &tk); err != nil {
			t.Fatal(err)
		}
		if err := s.ObserveSeq("hot", tk.Seq, 2.0); err != nil {
			t.Fatal(err)
		}
	}
	pinAllocs(t, "RecommendInto+ObserveSeq", 0, func() {
		if err := s.RecommendInto("hot", x, &tk); err != nil {
			t.Fatal(err)
		}
		if err := s.ObserveSeq("hot", tk.Seq, 2.0); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocRecommendIntoZero(t *testing.T) {
	// MaxPending bounds the ledger: once full, each issue evicts and
	// recycles the oldest ticket, so issue-only traffic is allocation
	// free too (no observe required to stay at zero).
	s := NewService(ServiceOptions{MaxPending: 8})
	if err := s.CreateStream("hot", StreamConfig{
		Hardware: testHW(), Dim: 1, Options: core.Options{Seed: 7},
	}); err != nil {
		t.Fatal(err)
	}
	x := []float64{2.5}
	var tk Ticket
	for i := 0; i < warmCycles; i++ {
		if err := s.RecommendInto("hot", x, &tk); err != nil {
			t.Fatal(err)
		}
	}
	pinAllocs(t, "RecommendInto", 0, func() {
		if err := s.RecommendInto("hot", x, &tk); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocRecommendCtxIntoZero(t *testing.T) {
	s := newSchemaService(t, PolicySpec{})
	ctx := schema.Context{
		Numeric:     map[string]float64{"num_tasks": 128, "input_mb": 512},
		Categorical: map[string]string{"site": "expanse"},
	}
	var tk Ticket
	for i := 0; i < warmCycles; i++ {
		if err := s.RecommendCtxInto("typed", ctx, &tk); err != nil {
			t.Fatal(err)
		}
		if err := s.ObserveSeq("typed", tk.Seq, 2.0); err != nil {
			t.Fatal(err)
		}
	}
	pinAllocs(t, "RecommendCtxInto+ObserveSeq", 0, func() {
		if err := s.RecommendCtxInto("typed", ctx, &tk); err != nil {
			t.Fatal(err)
		}
		if err := s.ObserveSeq("typed", tk.Seq, 2.0); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocCachedHitRecommendIntoZero(t *testing.T) {
	s := NewService(ServiceOptions{})
	if err := s.CreateStream("cached", StreamConfig{
		Hardware: testHW(), Dim: 1, Options: core.Options{Seed: 9},
		Cache: &CacheSpec{Capacity: 64},
	}); err != nil {
		t.Fatal(err)
	}
	x := []float64{3.25}
	var tk Ticket
	// Warm until the fingerprint is cached (exploit decisions store it);
	// budget fall-throughs re-run the engine path, which is also 0.
	for i := 0; i < warmCycles; i++ {
		if err := s.RecommendInto("cached", x, &tk); err != nil {
			t.Fatal(err)
		}
		if err := s.ObserveSeq("cached", tk.Seq, 2.0); err != nil {
			t.Fatal(err)
		}
	}
	pinAllocs(t, "cached-hit RecommendInto+ObserveSeq", 0, func() {
		if err := s.RecommendInto("cached", x, &tk); err != nil {
			t.Fatal(err)
		}
		if err := s.ObserveSeq("cached", tk.Seq, 2.0); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocObserveOutcomeClassicZero(t *testing.T) {
	// The classic ID-string observe is allocation free too: ParseTicketID
	// substrings, the registry read is lock-free, and the ledger recycles.
	const runs = 200
	s := NewService(ServiceOptions{MaxPending: runs + 2})
	if err := s.CreateStream("hot", StreamConfig{
		Hardware: testHW(), Dim: 1, Options: core.Options{Seed: 11},
	}); err != nil {
		t.Fatal(err)
	}
	x := []float64{1.25}
	var tk Ticket
	for i := 0; i < warmCycles; i++ {
		if err := s.RecommendInto("hot", x, &tk); err != nil {
			t.Fatal(err)
		}
		if err := s.ObserveSeq("hot", tk.Seq, 2.0); err != nil {
			t.Fatal(err)
		}
	}
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	// AllocsPerRun runs the body once to warm up, then `runs` times.
	ids := make([]string, 0, runs+1)
	for i := 0; i < runs+1; i++ {
		tk, err := s.Recommend("hot", x)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, tk.ID)
	}
	next := 0
	if got := testing.AllocsPerRun(runs, func() {
		if err := s.Observe(ids[next], 2.0); err != nil {
			t.Fatal(err)
		}
		next++
	}); got > 0 {
		t.Errorf("ObserveOutcome: %.1f allocs/op, pinned at 0 — the hot path regressed", got)
	}
}

func TestAllocClassicRecommendPinned(t *testing.T) {
	// Recommend allocates by contract: a rendered ID string and the
	// fresh Ticket's Predicted slice (plus their escape-analysis fallout
	// in the returned Ticket). Pinned at the current exact cost; fails
	// only on increase.
	const pin = 5
	s := newTestService(t, ServiceOptions{}, "hot")
	x := []float64{1.5}
	for i := 0; i < warmCycles; i++ {
		tk, err := s.Recommend("hot", x)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Observe(tk.ID, 2.0); err != nil {
			t.Fatal(err)
		}
	}
	pinAllocs(t, "classic Recommend+Observe", pin, func() {
		tk, err := s.Recommend("hot", x)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Observe(tk.ID, 2.0); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocHTTPRecommendObservePinned(t *testing.T) {
	// The HTTP path pays the JSON codec, header map, and recorder; the
	// pin is the current exact cost so codec or handler regressions
	// surface here. Measured on go1.24; fails only on increase.
	const pin = 75
	s := newTestService(t, ServiceOptions{}, "hot")
	h := NewHandler(s)
	x := []float64{1.5}
	var tk Ticket
	for i := 0; i < warmCycles; i++ {
		if err := s.RecommendInto("hot", x, &tk); err != nil {
			t.Fatal(err)
		}
		if err := s.ObserveSeq("hot", tk.Seq, 2.0); err != nil {
			t.Fatal(err)
		}
	}
	recBody := `{"features":[1.5]}`
	do := func(method, path, body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}
	// One full round trip per run: recommend over HTTP, observe the
	// returned ticket over HTTP. The ticket ID is rendered from the
	// stream's private sequence counter, which only this test advances.
	seq := uint64(0)
	{
		w := do(http.MethodPost, "/v1/streams/hot/recommend", recBody)
		if w.Code != http.StatusOK {
			t.Fatalf("recommend: %d %s", w.Code, w.Body)
		}
		st, err := s.stream("hot")
		if err != nil {
			t.Fatal(err)
		}
		st.mu.Lock()
		seq = st.nextSeq
		st.mu.Unlock()
		id := ticketID("hot", seq-1)
		w = do(http.MethodPost, "/v1/observe", `{"ticket":"`+id+`","runtime":2.0}`)
		if w.Code != http.StatusOK {
			t.Fatalf("observe: %d %s", w.Code, w.Body)
		}
	}
	pinAllocs(t, "HTTP recommend+observe", pin, func() {
		w := do(http.MethodPost, "/v1/streams/hot/recommend", recBody)
		if w.Code != http.StatusOK {
			t.Fatalf("recommend: %d %s", w.Code, w.Body)
		}
		id := ticketID("hot", seq)
		seq++
		w = do(http.MethodPost, "/v1/observe", `{"ticket":"`+id+`","runtime":2.0}`)
		if w.Code != http.StatusOK {
			t.Fatalf("observe: %d %s", w.Code, w.Body)
		}
	})
}

// TestAllocAsyncObserveSteadyState pins the async-queue observe path:
// the enqueue itself stays allocation free (task structs travel by
// value through the channel; direct-observe feature copies come from a
// pool).
func TestAllocAsyncObserveSteadyState(t *testing.T) {
	s := NewService(ServiceOptions{ObserveQueue: 1024})
	defer s.Close()
	if err := s.CreateStream("hot", StreamConfig{
		Hardware: testHW(), Dim: 1, Options: core.Options{Seed: 13},
	}); err != nil {
		t.Fatal(err)
	}
	x := []float64{1.5}
	var tk Ticket
	for i := 0; i < warmCycles; i++ {
		if err := s.RecommendInto("hot", x, &tk); err != nil {
			t.Fatal(err)
		}
		if err := s.ObserveSeq("hot", tk.Seq, 2.0); err != nil {
			t.Fatal(err)
		}
	}
	s.FlushObserves()
	pinAllocs(t, "async RecommendInto+ObserveSeq", 0, func() {
		if err := s.RecommendInto("hot", x, &tk); err != nil {
			t.Fatal(err)
		}
		if err := s.ObserveSeq("hot", tk.Seq, 2.0); err != nil {
			t.Fatal(err)
		}
	})
	s.FlushObserves()
	if n := s.Stats().AsyncErrors; n != 0 {
		t.Fatalf("async errors = %d, want 0", n)
	}
}
