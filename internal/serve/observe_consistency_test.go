package serve

// Pins the unified error behaviour of every observe path: the scalar
// and outcome forms, single and batch, Go API and HTTP, must classify
// the same failure identically — observation validity first
// (ErrBadOutcome, HTTP 422), then ticket shape (ErrBadTicket), then
// stream resolution (ErrStreamNotFound), then ticket redemption.
// Before this was pinned, a malformed observation on the batch path
// reported "stream not found" or "bad ticket" while the single HTTP
// route reported 422 for the identical request.

import (
	"errors"
	"net/http"
	"testing"
)

// badObservations enumerate observation-level failures: each must
// report ErrBadOutcome on every path regardless of the ticket.
func badObservations() map[string]TicketObservation {
	neg := Outcome{Runtime: -5}
	ok := Outcome{Runtime: 5}
	return map[string]TicketObservation{
		"negative runtime (scalar)":  {Runtime: -5},
		"negative runtime (outcome)": {Outcome: &neg},
		"unknown metric":             {Outcome: &Outcome{Runtime: 5, Metrics: map[string]float64{"memoryGB": 1}}},
		"both forms":                 {Runtime: 5, Outcome: &ok},
	}
}

// TestObserveErrorConsistency drives the failure matrix through the Go
// single and batch paths and asserts identical error classes and
// messages.
func TestObserveErrorConsistency(t *testing.T) {
	svc := newTestService(t, ServiceOptions{}, "jobs")
	live, err := svc.Recommend("jobs", []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	tickets := map[string]string{
		"live ticket":    live.ID,
		"unknown ticket": "jobs#ffff",
		"unknown stream": "ghost#1",
		"malformed id":   "no-separator",
	}
	for obsName, obs := range badObservations() {
		for tkName, id := range tickets {
			obs := obs
			obs.TicketID = id
			// Single path: outcome form goes through ObserveOutcome, the
			// scalar form through Observe.
			var single error
			if obs.Outcome != nil && obs.Runtime == 0 {
				single = svc.ObserveOutcome(id, *obs.Outcome)
			} else if obs.Outcome == nil {
				single = svc.Observe(id, obs.Runtime)
			}
			if single != nil && !errors.Is(single, ErrBadOutcome) {
				t.Errorf("%s / %s: single error %v, want ErrBadOutcome", obsName, tkName, single)
			}
			// Batch path: must classify identically, whatever the ticket.
			applied, errs := svc.ObserveBatchIndexed([]TicketObservation{obs})
			if applied != 0 || errs[0] == nil {
				t.Fatalf("%s / %s: batch applied a malformed observation", obsName, tkName)
			}
			if !errors.Is(errs[0], ErrBadOutcome) {
				t.Errorf("%s / %s: batch error %v, want ErrBadOutcome", obsName, tkName, errs[0])
			}
			if single != nil && errs[0].Error() != single.Error() {
				t.Errorf("%s / %s: batch message %q, single message %q", obsName, tkName, errs[0], single)
			}
		}
	}
	// The live ticket survived every malformed observation above.
	if err := svc.Observe(live.ID, 7); err != nil {
		t.Fatalf("live ticket was burned by a rejected observation: %v", err)
	}

	// With a valid observation, ticket/stream failures classify
	// identically on both paths too.
	for tkName, want := range map[string]error{
		"jobs#ffff":    ErrTicketNotFound,
		"ghost#1":      ErrStreamNotFound,
		"no-separator": ErrBadTicket,
	} {
		single := svc.Observe(tkName, 5)
		_, errs := svc.ObserveBatchIndexed([]TicketObservation{{TicketID: tkName, Runtime: 5}})
		if !errors.Is(single, want) || !errors.Is(errs[0], want) {
			t.Errorf("ticket %q: single %v / batch %v, want %v", tkName, single, errs[0], want)
		}
		if single.Error() != errs[0].Error() {
			t.Errorf("ticket %q: batch message %q, single message %q", tkName, errs[0], single)
		}
	}
}

// TestHTTPObserveErrorConsistency drives the same matrix over HTTP: the
// single route answers 422 for every malformed observation (whatever
// the ticket), and the batch route reports the identical error text at
// the item's index.
func TestHTTPObserveErrorConsistency(t *testing.T) {
	svc, srv := newTestServer(t)
	createJobsStream(t, srv.URL)
	live, err := svc.Recommend("jobs", []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	bodies := map[string]map[string]any{
		"negative runtime (scalar)":  {"runtime": -5},
		"negative runtime (outcome)": {"outcome": map[string]any{"runtime": -5}},
		"unknown metric":             {"outcome": map[string]any{"runtime": 5, "metrics": map[string]any{"memoryGB": 1}}},
		"both forms":                 {"runtime": 5, "outcome": map[string]any{"runtime": 5}},
	}
	for obsName, body := range bodies {
		for _, id := range []string{live.ID, "jobs#ffff", "ghost#1", "no-separator"} {
			single := map[string]any{"ticket": id}
			for k, v := range body {
				single[k] = v
			}
			var errResp map[string]any
			code := doJSON(t, "POST", srv.URL+"/v1/observe", single, &errResp)
			if code != http.StatusUnprocessableEntity {
				t.Errorf("%s / %s: single status %d, want 422 (%v)", obsName, id, code, errResp)
				continue
			}
			var batchResp observeBatchResponse
			code = doJSON(t, "POST", srv.URL+"/v1/streams/jobs/observe/batch", map[string]any{
				"observations": []map[string]any{single},
			}, &batchResp)
			if code != http.StatusOK || batchResp.Applied != 0 {
				t.Fatalf("%s / %s: batch status %d applied %d", obsName, id, code, batchResp.Applied)
			}
			if got, want := batchResp.Results[0].Error, errResp["error"].(string); got != want {
				t.Errorf("%s / %s: batch error %q, single error %q", obsName, id, got, want)
			}
		}
	}
	// The live ticket still redeems after every rejection above.
	code := doJSON(t, "POST", srv.URL+"/v1/observe", map[string]any{"ticket": live.ID, "runtime": 9}, nil)
	if code != http.StatusOK {
		t.Fatalf("live ticket was burned: status %d", code)
	}
}
