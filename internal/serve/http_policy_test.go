package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"banditware/internal/rng"
)

// TestHTTPPolicyStreamEndToEnd is the acceptance scenario for pluggable
// policies: a stream created over HTTP with policy "linucb" serves
// recommendations, learns from ticket observations, survives a
// snapshot/restore cycle, and reports shadow-policy regret counters via
// the stats and shadows endpoints.
func TestHTTPPolicyStreamEndToEnd(t *testing.T) {
	svc, srv := newTestServer(t)

	// Create with the bare-string policy form plus one shadow attached
	// at birth.
	var created StreamInfo
	code := doJSON(t, "POST", srv.URL+"/v1/streams", map[string]any{
		"name": "ucb", "hardware_spec": "H0=2x16;H1=3x24;H2=4x16", "dim": 1,
		"policy": "linucb",
		"shadows": []map[string]any{
			{"name": "paper", "policy": map[string]any{"type": "algorithm1", "seed": 4}},
		},
	}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if created.Policy != PolicyLinUCB || len(created.Shadows) != 1 || created.Shadows[0].Name != "paper" {
		t.Fatalf("created = %+v", created)
	}

	// Attach a second shadow through the endpoint (object policy form).
	var attachResp struct {
		Stream  string       `json:"stream"`
		Shadows []ShadowInfo `json:"shadows"`
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/streams/ucb/shadows", map[string]any{
		"name": "soft", "policy": map[string]any{"type": "softmax", "temperature": 0.5, "seed": 6},
	}, &attachResp); code != http.StatusCreated {
		t.Fatalf("attach shadow: %d", code)
	}
	if len(attachResp.Shadows) != 2 {
		t.Fatalf("attach response: %+v", attachResp)
	}
	// Duplicate attach -> 409; unknown policy -> 400.
	var errResp map[string]string
	if code := doJSON(t, "POST", srv.URL+"/v1/streams/ucb/shadows", map[string]any{
		"name": "soft", "policy": "softmax",
	}, &errResp); code != http.StatusConflict {
		t.Fatalf("duplicate shadow: %d (%v)", code, errResp)
	}
	if code := doJSON(t, "POST", srv.URL+"/v1/streams/ucb/shadows", map[string]any{
		"name": "weird", "policy": "quantum",
	}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("unknown shadow policy: %d", code)
	}

	// Drive recommend→observe round trips; slope structure makes arm 2
	// the winner.
	slopes := []float64{5, 3, 1}
	r := rng.New(33)
	const rounds = 120
	for i := 0; i < rounds; i++ {
		x := r.Uniform(10, 100)
		var tk Ticket
		if code := doJSON(t, "POST", srv.URL+"/v1/streams/ucb/recommend",
			map[string]any{"features": []float64{x}}, &tk); code != http.StatusOK {
			t.Fatalf("recommend: %d", code)
		}
		if code := doJSON(t, "POST", srv.URL+"/v1/observe",
			map[string]any{"ticket": tk.ID, "runtime": slopes[tk.Arm]*x + 20}, nil); code != http.StatusOK {
			t.Fatalf("observe: %d", code)
		}
	}
	if arm, err := svc.Exploit("ucb", []float64{80}); err != nil || arm != 2 {
		t.Fatalf("exploit = %d, %v; want 2", arm, err)
	}

	// Stats carries per-stream shadow counters.
	var stats Stats
	doJSON(t, "GET", srv.URL+"/v1/stats", nil, &stats)
	if len(stats.Streams) != 1 || len(stats.Streams[0].Shadows) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	for _, sh := range stats.Streams[0].Shadows {
		if sh.Observations != rounds {
			t.Fatalf("shadow %s observations = %d, want %d", sh.Name, sh.Observations, rounds)
		}
	}

	// The dedicated shadows endpoint reports the same counters.
	var listResp struct {
		Stream  string       `json:"stream"`
		Shadows []ShadowInfo `json:"shadows"`
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/streams/ucb/shadows", nil, &listResp); code != http.StatusOK {
		t.Fatalf("list shadows: %d", code)
	}
	if len(listResp.Shadows) != 2 || listResp.Shadows[0].Decisions != rounds {
		t.Fatalf("shadows = %+v", listResp.Shadows)
	}

	// Snapshot the whole service and restore it behind a fresh server.
	var snap bytes.Buffer
	if err := svc.Save(&snap); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(bytes.NewReader(snap.Bytes()), ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(NewHandler(restored))
	defer srv2.Close()

	// Learned state survived: the restored stream exploits the same arm
	// and keeps serving with shadow counters continuing from where they
	// were.
	if arm, err := restored.Exploit("ucb", []float64{80}); err != nil || arm != 2 {
		t.Fatalf("restored exploit = %d, %v; want 2", arm, err)
	}
	var tk Ticket
	if code := doJSON(t, "POST", srv2.URL+"/v1/streams/ucb/recommend",
		map[string]any{"features": []float64{50}}, &tk); code != http.StatusOK {
		t.Fatalf("restored recommend: %d", code)
	}
	if code := doJSON(t, "POST", srv2.URL+"/v1/observe",
		map[string]any{"ticket": tk.ID, "runtime": 70}, nil); code != http.StatusOK {
		t.Fatalf("restored observe: %d", code)
	}
	doJSON(t, "GET", srv2.URL+"/v1/streams/ucb/shadows", nil, &listResp)
	for _, sh := range listResp.Shadows {
		if sh.Observations != rounds+1 {
			t.Fatalf("restored shadow %s observations = %d, want %d", sh.Name, sh.Observations, rounds+1)
		}
	}

	// Detach over HTTP; a second detach 404s.
	if code := doJSON(t, "DELETE", srv2.URL+"/v1/streams/ucb/shadows/soft", nil, nil); code != http.StatusOK {
		t.Fatalf("detach: %d", code)
	}
	if code := doJSON(t, "DELETE", srv2.URL+"/v1/streams/ucb/shadows/soft", nil, &errResp); code != http.StatusNotFound {
		t.Fatalf("double detach: %d", code)
	}
}

// TestHTTPCreateModelFreeStream: a random-policy stream inspects
// without models and a failed shadow attach rolls the stream back.
func TestHTTPCreateModelFreeStream(t *testing.T) {
	_, srv := newTestServer(t)
	if code := doJSON(t, "POST", srv.URL+"/v1/streams", map[string]any{
		"name": "rnd", "hardware_spec": "H0=2x16;H1=3x24", "dim": 1, "policy": "random",
	}, nil); code != http.StatusCreated {
		t.Fatalf("create random: %d", code)
	}
	var inspect struct {
		StreamInfo
		Models []modelDTO `json:"models"`
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/streams/rnd", nil, &inspect); code != http.StatusOK {
		t.Fatal("inspect failed")
	}
	if inspect.Policy != PolicyRandom || inspect.Models != nil {
		t.Fatalf("inspect = %+v", inspect)
	}
	// A bad shadow in the create body fails the whole create atomically.
	var errResp map[string]string
	if code := doJSON(t, "POST", srv.URL+"/v1/streams", map[string]any{
		"name": "half", "hardware_spec": "H0=2x16", "dim": 1,
		"shadows": []map[string]any{{"name": "x", "policy": "quantum"}},
	}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("bad shadow create: %d (%v)", code, errResp)
	}
	if code := doJSON(t, "GET", srv.URL+"/v1/streams/half", nil, &errResp); code != http.StatusNotFound {
		t.Fatalf("half-created stream exists: %d", code)
	}
}
