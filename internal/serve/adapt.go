package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"banditware/internal/drift"
)

// Canonical adaptation modes accepted in AdaptSpec.Mode.
const (
	// AdaptNone is the default: the stream learns on an infinite
	// horizon, byte-for-byte the pre-adaptation behaviour.
	AdaptNone = "none"
	// AdaptForgetting discounts old observations exponentially
	// (effective memory ≈ 1/(1−factor) samples per arm).
	AdaptForgetting = "forgetting"
	// AdaptWindow retains only the last Window observations per arm and
	// refits from that sliding window.
	AdaptWindow = "window"
)

// Canonical on-drift responses accepted in AdaptSpec.OnDrift.
const (
	// DriftObserve (the default) only counts detections — operators read
	// them from StreamInfo, /v1/stats, or the drift endpoint.
	DriftObserve = "observe"
	// DriftReset additionally resets the affected arm's model on each
	// detection, so it refits from post-drift observations only.
	DriftReset = "reset"
)

// driftWarmupDefault is how many of an arm's first residuals are
// discarded before drift monitoring starts when the spec does not say:
// residuals from a cold model are fit error, not drift.
const driftWarmupDefault = 20

// ErrBadAdapt reports an AdaptSpec no adaptation mode accepts.
var ErrBadAdapt = errors.New("serve: invalid adaptation spec")

// AdaptSpec selects and parameterises a stream's adaptation to
// non-stationary environments: how its models forget (Mode), and how
// the stream responds to online drift detections (OnDrift plus the
// Drift* detector tuning). The zero value is mode "none" with
// observe-only detection — byte-for-byte the pre-adaptation behaviour.
// In JSON the spec may be either a bare mode string ("forgetting") or
// an object ({"mode": "forgetting", "factor": 0.95}).
//
// Every stream, whatever its mode, carries one Page-Hinkley drift
// detector per arm (internal/drift) fed with the arm's reward
// residuals — observed learning signal minus the model's pre-update
// prediction. The detector is denominated in the stream's signal units
// (seconds under the default runtime reward), so tune DriftDelta and
// DriftThreshold to the stream's scale.
type AdaptSpec struct {
	// Mode is one of the Adapt* constants (aliases: "", "forget" and
	// "decay" mean forgetting's family defaults — see kind()).
	Mode string `json:"mode,omitempty"`
	// Factor is the exponential forgetting factor in (0, 1), mode
	// "forgetting" only (default 0.98 — effective memory ≈ 50 samples).
	Factor float64 `json:"factor,omitempty"`
	// Window is the per-arm sliding-window length ≥ 2, mode "window"
	// only (default 64).
	Window int `json:"window,omitempty"`
	// OnDrift is one of the Drift* constants (default "observe").
	OnDrift string `json:"on_drift,omitempty"`
	// Detector tuning; zeros select the defaults (see internal/drift
	// and driftWarmupDefault).
	DriftDelta      float64 `json:"drift_delta,omitempty"`
	DriftThreshold  float64 `json:"drift_threshold,omitempty"`
	DriftMinSamples int     `json:"drift_min_samples,omitempty"`
	DriftWarmup     int     `json:"drift_warmup,omitempty"`
}

// UnmarshalJSON accepts either a bare mode string or the full object
// form, and rejects unknown object fields.
func (a *AdaptSpec) UnmarshalJSON(data []byte) error {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) > 0 && trimmed[0] == '"' {
		var s string
		if err := json.Unmarshal(trimmed, &s); err != nil {
			return err
		}
		*a = AdaptSpec{Mode: s}
		return nil
	}
	type plain AdaptSpec // drops the custom unmarshaller
	var obj plain
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&obj); err != nil {
		return err
	}
	*a = AdaptSpec(obj)
	return nil
}

// IsDefault reports whether the spec is the default adaptation (mode
// none, observe-only, default detector) — such streams omit the spec
// from snapshots, keeping their stream bodies byte-identical to the
// pre-adaptation format.
func (a AdaptSpec) IsDefault() bool {
	return a == AdaptSpec{Mode: AdaptNone, OnDrift: DriftObserve}
}

// kind canonicalises Mode, resolving aliases.
func (a AdaptSpec) kind() (string, error) {
	switch strings.ToLower(strings.TrimSpace(a.Mode)) {
	case "", AdaptNone, "static":
		return AdaptNone, nil
	case AdaptForgetting, "forget", "decay":
		return AdaptForgetting, nil
	case AdaptWindow, "sliding", "sliding-window":
		return AdaptWindow, nil
	}
	return "", fmt.Errorf("%w: unknown mode %q", ErrBadAdapt, a.Mode)
}

// compileAdapt validates a spec and returns its canonical form: mode
// and on-drift resolved and defaulted, the active mode's parameter
// filled in, parameters of inactive modes rejected.
func compileAdapt(spec AdaptSpec) (AdaptSpec, error) {
	mode, err := spec.kind()
	if err != nil {
		return AdaptSpec{}, err
	}
	out := spec
	out.Mode = mode
	switch mode {
	case AdaptNone:
		if spec.Factor != 0 || spec.Window != 0 {
			return AdaptSpec{}, fmt.Errorf("%w: mode %q takes no factor or window", ErrBadAdapt, mode)
		}
	case AdaptForgetting:
		if spec.Window != 0 {
			return AdaptSpec{}, fmt.Errorf("%w: mode %q takes no window", ErrBadAdapt, mode)
		}
		if out.Factor == 0 {
			out.Factor = 0.98
		}
		if out.Factor <= 0 || out.Factor >= 1 {
			return AdaptSpec{}, fmt.Errorf("%w: forgetting factor %v outside (0, 1)", ErrBadAdapt, out.Factor)
		}
	case AdaptWindow:
		if spec.Factor != 0 {
			return AdaptSpec{}, fmt.Errorf("%w: mode %q takes no factor", ErrBadAdapt, mode)
		}
		if out.Window == 0 {
			out.Window = 64
		}
		if out.Window < 2 {
			return AdaptSpec{}, fmt.Errorf("%w: window %d below minimum 2", ErrBadAdapt, out.Window)
		}
	}
	switch strings.ToLower(strings.TrimSpace(spec.OnDrift)) {
	case "", DriftObserve, "count":
		out.OnDrift = DriftObserve
	case DriftReset, "auto-reset":
		out.OnDrift = DriftReset
	default:
		return AdaptSpec{}, fmt.Errorf("%w: unknown on_drift %q", ErrBadAdapt, spec.OnDrift)
	}
	if err := spec.detectorConfig().Validate(); err != nil {
		return AdaptSpec{}, fmt.Errorf("%w: %v", ErrBadAdapt, err)
	}
	return out, nil
}

// detectorConfig maps the spec's detector tuning to the drift package's
// config, applying the serving layer's warmup default.
func (a AdaptSpec) detectorConfig() drift.Config {
	warmup := a.DriftWarmup
	if warmup == 0 {
		warmup = driftWarmupDefault
	}
	return drift.Config{
		Delta:      a.DriftDelta,
		Threshold:  a.DriftThreshold,
		MinSamples: a.DriftMinSamples,
		Warmup:     warmup,
	}
}

// newDetectors builds one pristine per-arm detector set for a stream.
// The spec must already be canonical (compileAdapt), so construction
// cannot fail.
func newDetectors(spec AdaptSpec, arms int) []*drift.PageHinkley {
	out := make([]*drift.PageHinkley, arms)
	for i := range out {
		d, err := drift.New(spec.detectorConfig())
		if err != nil {
			panic("serve: compiled adaptation spec failed detector construction: " + err.Error())
		}
		out[i] = d
	}
	return out
}

// observeDriftLocked feeds one reward residual to the chosen arm's
// detector and applies the stream's on-drift response to a detection.
// residual is score − predicted (the engine's pre-update estimate for
// the arm); callers that have no prediction skip the call. Callers hold
// st.mu.
func (st *stream) observeDriftLocked(arm int, residual float64) {
	if !st.detectors[arm].Add(residual) {
		return
	}
	if st.adapt.OnDrift == DriftReset {
		if ar, ok := st.engine.(ArmResetter); ok && ar.ResetArm(arm) == nil {
			st.driftResets++
			// Re-anchor delta-sync baselines: the reset dropped the arm's
			// foreign contributions along with the local ones.
			st.bumpArmGenLocked(arm)
			// Cached decisions replay the pre-reset model; drop them.
			st.invalidateCacheLocked()
		}
	}
}

// driftEventsLocked sums the per-arm detection counts — local detector
// detections plus detections merged from fleet peers. Callers hold
// st.mu.
func (st *stream) driftEventsLocked() uint64 {
	var total uint64
	for i := range st.detectors {
		total += st.armDriftCountLocked(i)
	}
	return total
}

// driftByArmLocked returns the per-arm detection counts (local plus
// merged), or nil when no arm has any. Callers hold st.mu.
func (st *stream) driftByArmLocked() []uint64 {
	any := false
	out := make([]uint64, len(st.detectors))
	for i := range st.detectors {
		out[i] = st.armDriftCountLocked(i)
		any = any || out[i] > 0
	}
	if !any {
		return nil
	}
	return out
}

// armDriftCountLocked is one arm's fleet-wide detection count: its
// local detector's lifetime count plus detections replicated from
// peers. Callers hold st.mu.
func (st *stream) armDriftCountLocked(arm int) uint64 {
	n := st.detectors[arm].Detections()
	if st.merged != nil && arm < len(st.merged.drift) {
		n += st.merged.drift[arm]
	}
	return n
}

// ArmDrift is the live drift-monitoring state of one arm.
type ArmDrift struct {
	Arm      int    `json:"arm"`
	Hardware string `json:"hardware"`
	// Detections is the arm's lifetime drift-detection count.
	Detections uint64 `json:"detections"`
	// Samples counts the residuals absorbed since the detector's last
	// reset (warmup included); Mean is their running mean and Stat the
	// current Page-Hinkley excursion statistic, compared against
	// Threshold.
	Samples   int     `json:"samples"`
	Mean      float64 `json:"mean"`
	Stat      float64 `json:"stat"`
	Threshold float64 `json:"threshold"`
}

// DriftInfo is a point-in-time summary of one stream's drift
// monitoring: the adaptation spec, totals, and per-arm detector state.
type DriftInfo struct {
	Stream string    `json:"stream"`
	Adapt  AdaptSpec `json:"adapt"`
	// Detections totals the per-arm detection counts; Resets counts the
	// arm-model resets an on_drift="reset" stream has performed.
	Detections uint64     `json:"detections"`
	Resets     uint64     `json:"resets"`
	Arms       []ArmDrift `json:"arms"`
}

// Drift returns the named stream's drift-monitoring state: per-arm
// Page-Hinkley detector statistics, detection counts, and the stream's
// adaptation spec.
func (s *Service) Drift(name string) (DriftInfo, error) {
	st, err := s.stream(name)
	if err != nil {
		return DriftInfo{}, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	info := DriftInfo{
		Stream: st.name,
		Adapt:  st.adapt,
		Resets: st.driftResets,
		Arms:   make([]ArmDrift, len(st.detectors)),
	}
	for i, d := range st.detectors {
		info.Arms[i] = ArmDrift{
			Arm:        i,
			Hardware:   st.armLabels[i],
			Detections: st.armDriftCountLocked(i),
			Samples:    d.N(),
			Mean:       d.Mean(),
			Stat:       d.Stat(),
			Threshold:  d.Threshold(),
		}
		info.Detections += info.Arms[i].Detections
	}
	return info, nil
}

// StreamAdapt returns the named stream's canonical adaptation spec
// (mode "none" for streams that never declared one).
func (s *Service) StreamAdapt(name string) (AdaptSpec, error) {
	st, err := s.stream(name)
	if err != nil {
		return AdaptSpec{}, err
	}
	return st.adapt, nil
}
