package serve

import (
	"encoding/json"
	"errors"
	"testing"

	"banditware/internal/core"
)

// FuzzAdaptSpec drives the adaptation-spec wire decoder and compiler
// with arbitrary documents. Invariants: decoding and compiling never
// panic, and a compiled spec is canonical — compiling it again is the
// identity, which snapshot round-trips depend on.
func FuzzAdaptSpec(f *testing.F) {
	seeds := []string{
		`"forgetting"`,
		`"window"`,
		`"none"`,
		`"decay"`,
		`{"mode":"forgetting","factor":0.97}`,
		`{"mode":"window","window":200}`,
		`{"mode":"forgetting","factor":0.9,"on_drift":"reset","drift_delta":0.1,"drift_threshold":12,"drift_min_samples":30,"drift_warmup":25}`,
		`{"mode":"none","on_drift":"observe"}`,
		`{"mode":"forgetting","factor":2}`,
		`{"mode":"window","factor":0.5}`,
		`{"mode":"sideways"}`,
		`{"on_drift":"panic"}`,
		`{"mode":"forgetting","factor":0.97,"bogus":1}`,
		`{"drift_min_samples":-5}`,
		`7`,
		`null`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec AdaptSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		out, err := compileAdapt(spec)
		if err != nil {
			return
		}
		again, err := compileAdapt(out)
		if err != nil {
			t.Fatalf("canonical spec %+v does not re-compile: %v", out, err)
		}
		if again != out {
			t.Fatalf("compileAdapt is not idempotent: %+v then %+v", out, again)
		}
	})
}

// FuzzArmLifecycleRequest drives the arm-addition wire decoder, its
// resolve() validation, and the full AddArm path with arbitrary
// documents. Invariants: nothing panics, every resolve rejection wraps
// ErrBadArmRequest, and a resolved request either grows a live stream by
// exactly one arm or is rejected with a service-vocabulary error —
// arbitrary wire input can never leave a stream with a half-applied arm
// set.
func FuzzArmLifecycleRequest(f *testing.F) {
	seeds := []string{
		`{"hardware_spec":"H3=8x64"}`,
		`{"hardware_spec":"H3=8x64x1","warm":"nearest","warm_weight":0.5}`,
		`{"hardware":{"name":"H3","cpus":8,"memory_gb":64}}`,
		`{"hardware":{"name":"H3","cpus":8,"memory_gb":64,"gpus":2},"trial":true}`,
		`{"hardware_spec":"H3=8x64","warm":"pooled","trial":true}`,
		`{"hardware_spec":"H3=8x64","warm":"cold"}`,
		`{"hardware":{"name":"H3","cpus":8,"memory_gb":64},"hardware_spec":"H3=8x64"}`,
		`{"warm":"pooled"}`,
		`{"hardware_spec":"A=1x1;B=2x2"}`,
		`{"hardware_spec":"H3=8x64","warm":"sideways"}`,
		`{"hardware_spec":"H3=8x64","warm_weight":2}`,
		`{"hardware_spec":"H3=8x64","warm_weight":-0.1}`,
		`{"hardware_spec":"H0=2x16"}`,
		`{"hardware":{"cpus":-3,"memory_gb":-1}}`,
		`{"hardware":{"name":"H3","cpus":1e18,"memory_gb":0}}`,
		`{"hardware_spec":""}`,
		`{}`,
		`null`,
		`7`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req armAddRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		add, err := req.resolve()
		if err != nil {
			if !errors.Is(err, ErrBadArmRequest) {
				t.Fatalf("resolve rejection outside the wire vocabulary: %v", err)
			}
			return
		}
		s := NewService(ServiceOptions{})
		if err := s.CreateStream("s", StreamConfig{
			Hardware: testHW(), Dim: 1, Options: core.Options{Seed: 1},
		}); err != nil {
			t.Fatal(err)
		}
		idx, err := s.AddArm("s", add)
		if err != nil {
			if !errors.Is(err, ErrBadArmRequest) && !errors.Is(err, ErrUnsupported) {
				t.Fatalf("AddArm(%+v) rejection outside the service vocabulary: %v", add, err)
			}
			// Rejected adds leave the stream exactly as it was.
			if arms, _ := s.Arms("s"); len(arms) != 3 {
				t.Fatalf("rejected add left %d arms, want 3", len(arms))
			}
			return
		}
		arms, err := s.Arms("s")
		if err != nil {
			t.Fatal(err)
		}
		if idx != 3 || len(arms) != 4 {
			t.Fatalf("accepted add: index %d over %d arms, want 3 over 4", idx, len(arms))
		}
		wantStatus := "active"
		if add.Trial {
			wantStatus = "trial"
		}
		if arms[idx].Status != wantStatus {
			t.Fatalf("accepted add: status %q, want %q", arms[idx].Status, wantStatus)
		}
	})
}
