package serve

import (
	"encoding/json"
	"testing"
)

// FuzzAdaptSpec drives the adaptation-spec wire decoder and compiler
// with arbitrary documents. Invariants: decoding and compiling never
// panic, and a compiled spec is canonical — compiling it again is the
// identity, which snapshot round-trips depend on.
func FuzzAdaptSpec(f *testing.F) {
	seeds := []string{
		`"forgetting"`,
		`"window"`,
		`"none"`,
		`"decay"`,
		`{"mode":"forgetting","factor":0.97}`,
		`{"mode":"window","window":200}`,
		`{"mode":"forgetting","factor":0.9,"on_drift":"reset","drift_delta":0.1,"drift_threshold":12,"drift_min_samples":30,"drift_warmup":25}`,
		`{"mode":"none","on_drift":"observe"}`,
		`{"mode":"forgetting","factor":2}`,
		`{"mode":"window","factor":0.5}`,
		`{"mode":"sideways"}`,
		`{"on_drift":"panic"}`,
		`{"mode":"forgetting","factor":0.97,"bogus":1}`,
		`{"drift_min_samples":-5}`,
		`7`,
		`null`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec AdaptSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		out, err := compileAdapt(spec)
		if err != nil {
			return
		}
		again, err := compileAdapt(out)
		if err != nil {
			t.Fatalf("canonical spec %+v does not re-compile: %v", out, err)
		}
		if again != out {
			t.Fatalf("compileAdapt is not idempotent: %+v then %+v", out, again)
		}
	})
}
