package serve

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"banditware/internal/core"
	"banditware/internal/hardware"
)

// newAsyncPair builds two identically-seeded single-stream services:
// one synchronous, one with the async observe queue. Both share a fixed
// clock so snapshots are comparable byte-for-byte. TTL stays 0: async
// expiry is evaluated at drain time, so a TTL'd trace is the one
// documented case where the two modes may diverge.
func newAsyncPair(t *testing.T, queue int) (syncSvc, asyncSvc *Service) {
	t.Helper()
	fixed := time.Unix(1_700_000_000, 0).UTC()
	now := func() time.Time { return fixed }
	mk := func(opts ServiceOptions) *Service {
		opts.Now = now
		s := NewService(opts)
		err := s.CreateStream("jobs", StreamConfig{
			Hardware: testHW(), Dim: 2, Options: core.Options{Seed: 42},
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	return mk(ServiceOptions{}), mk(ServiceOptions{ObserveQueue: queue})
}

// TestAsyncObserveEquivalence drives the same seeded trace through a
// synchronous service and an async-queue service and requires the
// drained snapshots to be byte-identical: the single drainer preserves
// global FIFO order, so routing the model updates through the queue
// must not lose, reorder, or alter a single observation.
//
// The trace is closed-loop (each decision depends on everything learned
// so far), so the queue is flushed after every observe — otherwise the
// async model legitimately lags the synchronous one and the decision
// trajectories diverge by design, not by defect. The open-loop variant
// below exercises the fully-asynchronous path with no per-op flush.
func TestAsyncObserveEquivalence(t *testing.T) {
	syncSvc, asyncSvc := newAsyncPair(t, 64)
	defer asyncSvc.Close()

	var tkS, tkA Ticket
	for i := 0; i < 500; i++ {
		x := []float64{float64(i%17) / 4, float64(i % 5)}
		if err := syncSvc.RecommendInto("jobs", x, &tkS); err != nil {
			t.Fatal(err)
		}
		if err := asyncSvc.RecommendInto("jobs", x, &tkA); err != nil {
			t.Fatal(err)
		}
		if tkS.Arm != tkA.Arm || tkS.Seq != tkA.Seq {
			t.Fatalf("op %d: sync chose arm %d seq %d, async arm %d seq %d",
				i, tkS.Arm, tkS.Seq, tkA.Arm, tkA.Seq)
		}
		// Leave every 7th ticket pending so snapshots carry ledger state.
		if i%7 == 0 {
			continue
		}
		rt := 1.0 + float64((i*13)%9)
		ok := i%11 != 0
		o := Outcome{Runtime: rt, Success: &ok}
		if err := syncSvc.ObserveSeqOutcome("jobs", tkS.Seq, o); err != nil {
			t.Fatal(err)
		}
		if err := asyncSvc.ObserveSeqOutcome("jobs", tkA.Seq, o); err != nil {
			t.Fatal(err)
		}
		asyncSvc.FlushObserves()
	}

	var bufS, bufA bytes.Buffer
	if err := syncSvc.Save(&bufS); err != nil {
		t.Fatal(err)
	}
	// Save flushes the async queue itself — no explicit FlushObserves.
	if err := asyncSvc.Save(&bufA); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufS.Bytes(), bufA.Bytes()) {
		t.Fatalf("drained async snapshot differs from synchronous snapshot:\nsync:  %d bytes\nasync: %d bytes\n%s",
			bufS.Len(), bufA.Len(), firstDiff(bufS.Bytes(), bufA.Bytes()))
	}
	if n := asyncSvc.Stats().AsyncErrors; n != 0 {
		t.Fatalf("async errors = %d, want 0", n)
	}
}

// TestAsyncOpenLoopEquivalence replays the same open-loop direct-
// observe trace — no decision depends on a pending update — fully
// asynchronously, with no flush until the final Save. The drained
// snapshot must still match the synchronous service byte-for-byte:
// pure apply-path equivalence under real queueing.
func TestAsyncOpenLoopEquivalence(t *testing.T) {
	syncSvc, asyncSvc := newAsyncPair(t, 32)
	defer asyncSvc.Close()
	for i := 0; i < 800; i++ {
		arm := i % 3
		x := []float64{float64(i%13) / 3, float64(i % 6)}
		rt := 0.5 + float64((i*7)%11)
		if err := syncSvc.ObserveDirect("jobs", arm, x, rt); err != nil {
			t.Fatal(err)
		}
		if err := asyncSvc.ObserveDirect("jobs", arm, x, rt); err != nil {
			t.Fatal(err)
		}
	}
	var bufS, bufA bytes.Buffer
	if err := syncSvc.Save(&bufS); err != nil {
		t.Fatal(err)
	}
	if err := asyncSvc.Save(&bufA); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufS.Bytes(), bufA.Bytes()) {
		t.Fatalf("drained async snapshot differs from synchronous snapshot:\n%s",
			firstDiff(bufS.Bytes(), bufA.Bytes()))
	}
	if n := asyncSvc.Stats().AsyncErrors; n != 0 {
		t.Fatalf("async errors = %d, want 0", n)
	}
}

// TestAsyncCaptureDeltaFlushes verifies CaptureDelta sees enqueued
// observes: a delta captured right after an async observe must carry
// the observation (the capture flushes first).
func TestAsyncCaptureDeltaFlushes(t *testing.T) {
	_, s := newAsyncPair(t, 64)
	defer s.Close()
	base := s.NewSyncState()
	var tk Ticket
	if err := s.RecommendInto("jobs", []float64{1, 2}, &tk); err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveSeq("jobs", tk.Seq, 3.0); err != nil {
		t.Fatal(err)
	}
	c, err := s.CaptureDelta(base)
	if err != nil {
		t.Fatal(err)
	}
	if c.Empty() {
		t.Fatal("capture right after an async observe is empty — CaptureDelta did not flush the queue")
	}
}

// TestAsyncCloseFallsBackToSync: a closed service keeps serving, with
// observes applied inline again.
func TestAsyncCloseFallsBackToSync(t *testing.T) {
	_, s := newAsyncPair(t, 8)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	var tk Ticket
	if err := s.RecommendInto("jobs", []float64{1, 2}, &tk); err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveSeq("jobs", tk.Seq, 2.0); err != nil {
		t.Fatal(err)
	}
	// Inline again: a bad seq reports its error synchronously.
	if err := s.ObserveSeq("jobs", 999999, 2.0); err == nil {
		t.Fatal("observe of unknown seq after Close returned nil, want error")
	}
	st := s.Stats()
	if st.AsyncPending != 0 {
		t.Fatalf("pending = %d after Close", st.AsyncPending)
	}
}

// TestAsyncDeferredErrorsCounted: a queue-mode observe of a burned
// ticket returns nil (accepted) and surfaces later as AsyncErrors.
func TestAsyncDeferredErrorsCounted(t *testing.T) {
	_, s := newAsyncPair(t, 8)
	defer s.Close()
	var tk Ticket
	if err := s.RecommendInto("jobs", []float64{1, 2}, &tk); err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveSeq("jobs", tk.Seq, 2.0); err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveSeq("jobs", tk.Seq, 2.0); err != nil {
		t.Fatalf("double redeem in queue mode returned %v, want nil (deferred)", err)
	}
	s.FlushObserves()
	if n := s.Stats().AsyncErrors; n != 1 {
		t.Fatalf("async errors = %d, want 1 (double redemption)", n)
	}
}

// TestAsyncStress hammers an async-queue service from many goroutines —
// hot-path traffic, direct observes, arm churn, snapshot saves, delta
// captures, stats — to let the race detector check the COW registry,
// the pooled ledger, and the drainer's lock discipline. Functional
// assertions are deliberately light; the value is the interleaving.
func TestAsyncStress(t *testing.T) {
	s := NewService(ServiceOptions{ObserveQueue: 128})
	defer s.Close()
	for i := 0; i < 4; i++ {
		err := s.CreateStream(fmt.Sprintf("s%d", i), StreamConfig{
			Hardware: testHW(), Dim: 2, Options: core.Options{Seed: uint64(i + 1)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	const iters = 300
	var wg sync.WaitGroup
	// Hot-path traffic on its own stream per goroutine.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("s%d", g)
			var tk Ticket
			for i := 0; i < iters; i++ {
				x := []float64{float64(i % 7), float64(g)}
				if err := s.RecommendInto(name, x, &tk); err != nil {
					t.Error(err)
					return
				}
				if err := s.ObserveSeq(name, tk.Seq, 1.0+float64(i%5)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	// Direct observes (pooled feature copies through the queue).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := s.ObserveDirect("s3", i%3, []float64{1, float64(i % 4)}, 2.0); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Arm churn: add, drain, retire on the traffic streams.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			name := fmt.Sprintf("s%d", i%3)
			arm, err := s.AddArm(name, ArmAdd{
				Hardware: hardware.Config{Name: fmt.Sprintf("X%d-%d", i%3, i), CPUs: 2 + i%3, MemoryGB: 8},
			})
			if err != nil {
				t.Error(err)
				return
			}
			if err := s.DrainArm(name, arm); err != nil {
				t.Error(err)
				return
			}
			if err := s.RetireArm(name, arm); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Snapshots, deltas, stats, flushes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		base := s.NewSyncState()
		for i := 0; i < 10; i++ {
			if err := s.Save(io.Discard); err != nil {
				t.Error(err)
				return
			}
			if c, err := s.CaptureDelta(base); err != nil {
				t.Error(err)
				return
			} else {
				c.Commit()
			}
			_ = s.Stats()
			s.FlushObserves()
		}
	}()
	wg.Wait()
	s.FlushObserves()
	// Every hot-path observe targeted a live ticket; only churn-evicted
	// tickets (retired arms) may surface as deferred errors, and traffic
	// streams redeem immediately, so none should.
	if st := s.Stats(); st.AsyncPending != 0 {
		t.Fatalf("pending = %d after flush", st.AsyncPending)
	}
}

// firstDiff renders the first divergence between two byte slices for
// snapshot-equivalence failures.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 60
			if lo < 0 {
				lo = 0
			}
			hiA, hiB := i+60, i+60
			if hiA > len(a) {
				hiA = len(a)
			}
			if hiB > len(b) {
				hiB = len(b)
			}
			return fmt.Sprintf("first diff at byte %d:\n  sync:  …%s…\n  async: …%s…", i, a[lo:hiA], b[lo:hiB])
		}
	}
	return fmt.Sprintf("common prefix of %d bytes, lengths %d vs %d", n, len(a), len(b))
}
